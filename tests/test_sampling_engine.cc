#include "engine/sampling_engine.h"

#include <gtest/gtest.h>

#include "core/verify.h"
#include "test_helpers.h"

namespace fastmatch {
namespace {

using testing_util::MakeExactStore;
using testing_util::PlantedDistributions;

struct EngineFixture {
  std::shared_ptr<ColumnStore> store;
  std::shared_ptr<BitmapIndex> index;
  CountMatrix exact;
};

EngineFixture MakeFixture(std::vector<int64_t> counts, int vx, uint64_t seed,
                          int rows_per_block = 50) {
  EngineFixture f;
  std::vector<double> offsets(counts.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    offsets[i] = 0.02 * static_cast<double>(i);
  }
  f.store = MakeExactStore(counts, PlantedDistributions(
                                       static_cast<int>(counts.size()), vx,
                                       offsets),
                           seed, rows_per_block);
  f.index = BitmapIndex::Build(*f.store, 0).value();
  f.exact = ComputeExactCounts(*f.store, 0, {1}).value();
  return f;
}

std::unique_ptr<SamplingEngine> MakeEngine(const EngineFixture& f,
                                           BlockSelection policy,
                                           uint64_t seed = 7,
                                           int lookahead = 16) {
  EngineOptions options;
  options.policy = policy;
  options.lookahead = lookahead;
  options.seed = seed;
  return SamplingEngine::Create(f.store, f.index, 0, {1}, options).value();
}

constexpr BlockSelection kAllPolicies[] = {
    BlockSelection::kScanAll, BlockSelection::kAnyActiveSync,
    BlockSelection::kAnyActiveLookahead};

TEST(SamplingEngineTest, CreateValidation) {
  auto f = MakeFixture({1000, 1000}, 4, 1);
  EngineOptions options;
  options.policy = BlockSelection::kAnyActiveLookahead;
  // Missing index.
  EXPECT_FALSE(SamplingEngine::Create(f.store, nullptr, 0, {1}, options).ok());
  // Index built for the wrong attribute.
  auto x_index = BitmapIndex::Build(*f.store, 1).value();
  EXPECT_FALSE(SamplingEngine::Create(f.store, x_index, 0, {1}, options).ok());
  // ScanAll works without an index.
  options.policy = BlockSelection::kScanAll;
  EXPECT_TRUE(SamplingEngine::Create(f.store, nullptr, 0, {1}, options).ok());
  // Bad lookahead.
  options.policy = BlockSelection::kAnyActiveLookahead;
  options.lookahead = 0;
  EXPECT_FALSE(SamplingEngine::Create(f.store, f.index, 0, {1}, options).ok());
}

TEST(SamplingEngineTest, SampleRowsBlockRounded) {
  auto f = MakeFixture({5000, 5000}, 4, 2);
  auto engine = MakeEngine(f, BlockSelection::kScanAll);
  CountMatrix out(2, 4);
  const int64_t drawn = engine->SampleRows(1000, &out);
  // Reads whole blocks of 50 rows: overshoot < one block.
  EXPECT_GE(drawn, 1000);
  EXPECT_LT(drawn, 1050);
  EXPECT_EQ(out.RowTotal(0) + out.RowTotal(1), drawn);
  EXPECT_EQ(engine->rows_consumed(), drawn);
}

TEST(SamplingEngineTest, FullConsumptionIsExact) {
  for (BlockSelection policy : kAllPolicies) {
    auto f = MakeFixture({3000, 2000, 1000}, 4, 3);
    auto engine = MakeEngine(f, policy);
    CountMatrix out(3, 4);
    engine->SampleRows(1000000, &out);
    EXPECT_TRUE(engine->AllConsumed());
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(out.RowTotal(i), f.exact.RowTotal(i));
      for (int g = 0; g < 4; ++g) {
        EXPECT_EQ(out.At(i, g), f.exact.At(i, g));
      }
    }
  }
}

TEST(SamplingEngineTest, SampleUntilTargetsMeetsTargetsAllPolicies) {
  for (BlockSelection policy : kAllPolicies) {
    auto f = MakeFixture({20000, 20000, 20000, 20000}, 4, 4);
    auto engine = MakeEngine(f, policy);
    CountMatrix out(4, 4);
    std::vector<bool> exhausted(4, false);
    const std::vector<int64_t> targets = {500, -1, 2000, 100};
    engine->SampleUntilTargets(targets, &out, &exhausted);
    EXPECT_GE(out.RowTotal(0), 500) << "policy " << static_cast<int>(policy);
    EXPECT_GE(out.RowTotal(2), 2000);
    EXPECT_GE(out.RowTotal(3), 100);
    EXPECT_FALSE(exhausted[0]);
  }
}

TEST(SamplingEngineTest, WithoutReplacementAcrossPhases) {
  for (BlockSelection policy : kAllPolicies) {
    auto f = MakeFixture({8000, 8000}, 4, 5);
    auto engine = MakeEngine(f, policy);
    CountMatrix total(2, 4);
    engine->SampleRows(2000, &total);
    CountMatrix round(2, 4);
    std::vector<bool> exhausted(2, false);
    engine->SampleUntilTargets({3000, 3000}, &round, &exhausted);
    total.Merge(round);
    round.Reset();
    engine->SampleUntilTargets({100000, 100000}, &round, &exhausted);
    total.Merge(round);
    // Everything consumed exactly once: totals equal the exact counts.
    EXPECT_TRUE(engine->AllConsumed());
    EXPECT_TRUE(exhausted[0]);
    EXPECT_TRUE(exhausted[1]);
    for (int i = 0; i < 2; ++i) {
      for (int g = 0; g < 4; ++g) {
        EXPECT_EQ(total.At(i, g), f.exact.At(i, g))
            << "policy " << static_cast<int>(policy);
      }
    }
  }
}

TEST(SamplingEngineTest, ExhaustionOnImpossibleTarget) {
  for (BlockSelection policy : kAllPolicies) {
    auto f = MakeFixture({500, 50000}, 4, 6);
    auto engine = MakeEngine(f, policy);
    CountMatrix out(2, 4);
    std::vector<bool> exhausted(2, false);
    // Candidate 0 has 500 rows; demand 10000.
    engine->SampleUntilTargets({10000, -1}, &out, &exhausted);
    EXPECT_TRUE(exhausted[0]) << "policy " << static_cast<int>(policy);
    EXPECT_EQ(out.RowTotal(0), 500);
  }
}

TEST(SamplingEngineTest, AnyActiveSkipsBlocksForLocalizedCandidates) {
  // Unshuffled data: candidate 0 in the first half of blocks only,
  // candidate 1 in the second half. Targeting only candidate 1 must not
  // read most candidate-0-only blocks.
  std::vector<Value> z, x;
  for (int i = 0; i < 5000; ++i) z.push_back(0), x.push_back(0);
  for (int i = 0; i < 5000; ++i) z.push_back(1), x.push_back(1);
  StorageOptions opt;
  opt.rows_per_block_override = 50;
  auto store = ColumnStore::FromColumns(Schema({{"Z", 2}, {"X", 4}}),
                                        {std::move(z), std::move(x)}, opt)
                   .value();
  auto index = BitmapIndex::Build(*store, 0).value();

  for (BlockSelection policy : {BlockSelection::kAnyActiveSync,
                                BlockSelection::kAnyActiveLookahead}) {
    EngineOptions options;
    options.policy = policy;
    options.lookahead = 8;
    options.seed = 9;
    auto engine =
        SamplingEngine::Create(store, index, 0, {1}, options).value();
    CountMatrix out(2, 4);
    std::vector<bool> exhausted(2, false);
    engine->SampleUntilTargets({-1, 2000}, &out, &exhausted);
    EXPECT_GE(out.RowTotal(1), 2000);
    // Candidate-0-only blocks must be skipped, not read: at most a
    // handful of stray reads from batch granularity.
    EXPECT_EQ(out.RowTotal(0), 0) << "policy " << static_cast<int>(policy);
    EXPECT_GT(engine->stats().blocks_skipped, 0);
  }
}

TEST(SamplingEngineTest, ScanAllNeverSkips) {
  auto f = MakeFixture({5000, 5000}, 4, 7);
  auto engine = MakeEngine(f, BlockSelection::kScanAll);
  CountMatrix out(2, 4);
  std::vector<bool> exhausted(2, false);
  engine->SampleUntilTargets({1000, 1000}, &out, &exhausted);
  EXPECT_EQ(engine->stats().blocks_skipped, 0);
}

TEST(SamplingEngineTest, DeterministicAcrossRunsScanAll) {
  auto f = MakeFixture({10000, 10000}, 4, 8);
  CountMatrix o1(2, 4), o2(2, 4);
  MakeEngine(f, BlockSelection::kScanAll, 33)->SampleRows(3000, &o1);
  MakeEngine(f, BlockSelection::kScanAll, 33)->SampleRows(3000, &o2);
  for (int i = 0; i < 2; ++i) {
    for (int g = 0; g < 4; ++g) EXPECT_EQ(o1.At(i, g), o2.At(i, g));
  }
}

TEST(SamplingEngineTest, DifferentSeedsStartAtDifferentBlocks) {
  auto f = MakeFixture({10000, 10000}, 4, 9);
  CountMatrix o1(2, 4), o2(2, 4);
  MakeEngine(f, BlockSelection::kScanAll, 1)->SampleRows(500, &o1);
  MakeEngine(f, BlockSelection::kScanAll, 2)->SampleRows(500, &o2);
  bool differs = false;
  for (int i = 0; i < 2 && !differs; ++i) {
    for (int g = 0; g < 4; ++g) {
      if (o1.At(i, g) != o2.At(i, g)) differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(SamplingEngineTest, SamplesAreUniformPerCandidate) {
  // Engine samples whole blocks of shuffled data; each candidate's
  // conditional X distribution in the sample must match its true one.
  auto f = MakeFixture({40000, 40000}, 4, 10);
  auto engine = MakeEngine(f, BlockSelection::kScanAll, 11);
  CountMatrix out(2, 4);
  engine->SampleRows(10000, &out);
  for (int i = 0; i < 2; ++i) {
    const Distribution est = out.NormalizedRow(i);
    const Distribution tru = f.exact.NormalizedRow(i);
    EXPECT_LT(L1Distance(est, tru), 0.06) << "candidate " << i;
  }
}

TEST(SamplingEngineTest, SampleUntilTargetsCountsOnlyFreshSamplesPerCall) {
  // Regression (same bug as RowSampler): fresh counters must start at
  // zero per call, not at out->RowTotal, when the caller reuses one
  // matrix across rounds.
  for (BlockSelection policy : kAllPolicies) {
    auto f = MakeFixture({20000, 20000}, 4, 12);
    auto engine = MakeEngine(f, policy);
    CountMatrix out(2, 4);
    std::vector<bool> exhausted(2, false);
    engine->SampleUntilTargets({500, -1}, &out, &exhausted);
    const int64_t after_first = out.RowTotal(0);
    EXPECT_GE(after_first, 500) << "policy " << static_cast<int>(policy);
    engine->SampleUntilTargets({500, -1}, &out, &exhausted);
    EXPECT_GE(out.RowTotal(0), after_first + 500)
        << "policy " << static_cast<int>(policy);
  }
}

// ------------------------------------------------ degenerate stores

TEST(SamplingEngineTest, EmptyStoreRejected) {
  auto store = std::make_shared<ColumnStore>(Schema({{"Z", 2}, {"X", 4}}));
  EngineOptions options;
  options.policy = BlockSelection::kScanAll;
  auto result = SamplingEngine::Create(store, nullptr, 0, {1}, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SamplingEngineTest, SingleBlockStoreAllPolicies) {
  // The whole relation fits one (short) block: every policy must consume
  // it in one read and account for it exactly once.
  for (BlockSelection policy : kAllPolicies) {
    auto f = MakeFixture({60, 40}, 4, 13, /*rows_per_block=*/128);
    ASSERT_EQ(f.store->num_blocks(), 1);
    auto engine = MakeEngine(f, policy);
    CountMatrix out(2, 4);
    EXPECT_EQ(engine->SampleRows(10, &out), 100);  // block granularity
    EXPECT_TRUE(engine->AllConsumed());
    EXPECT_EQ(engine->stats().blocks_read, 1);
    EXPECT_EQ(engine->stats().rows_read, 100);
    // Every further demand resolves by exhaustion without re-reading.
    std::vector<bool> exhausted(2, false);
    engine->SampleUntilTargets({1000, 1000}, &out, &exhausted);
    EXPECT_TRUE(exhausted[0]);
    EXPECT_TRUE(exhausted[1]);
    EXPECT_EQ(engine->stats().blocks_read, 1)
        << "policy " << static_cast<int>(policy);
    EXPECT_EQ(engine->rows_consumed(), 100);
  }
}

TEST(SamplingEngineTest, SingleBlockImpossibleTargetExhausts) {
  for (BlockSelection policy : kAllPolicies) {
    auto f = MakeFixture({60, 40}, 4, 14, /*rows_per_block=*/128);
    auto engine = MakeEngine(f, policy);
    CountMatrix out(2, 4);
    std::vector<bool> exhausted(2, false);
    engine->SampleUntilTargets({1000, -1}, &out, &exhausted);
    EXPECT_TRUE(exhausted[0]) << "policy " << static_cast<int>(policy);
    EXPECT_EQ(out.RowTotal(0), 60);
    EXPECT_TRUE(engine->AllConsumed());
    EXPECT_EQ(engine->stats().blocks_read, 1);
    EXPECT_EQ(engine->stats().rows_read, engine->rows_consumed());
  }
}

TEST(SamplingEngineTest, StatsConsistentOnFullConsumption) {
  // Without-replacement invariant on the counters: at full consumption
  // every block was read exactly once and rows_read equals the relation.
  for (BlockSelection policy : kAllPolicies) {
    auto f = MakeFixture({3000, 2000}, 4, 15);
    auto engine = MakeEngine(f, policy);
    CountMatrix out(2, 4);
    std::vector<bool> exhausted(2, false);
    engine->SampleUntilTargets({100000, 100000}, &out, &exhausted);
    EXPECT_TRUE(engine->AllConsumed());
    EXPECT_EQ(engine->stats().blocks_read, f.store->num_blocks())
        << "policy " << static_cast<int>(policy);
    EXPECT_EQ(engine->stats().rows_read, f.store->num_rows());
    EXPECT_EQ(engine->rows_consumed(), f.store->num_rows());
  }
}

TEST(SamplingEngineTest, AllCandidatesPrunedSurfacesErrorWithSaneStats) {
  // Degenerate query shape: sigma prunes everyone. HistSim fails with
  // FailedPrecondition and the engine's accounting stays consistent.
  auto f = MakeFixture({500, 500, 500}, 4, 16);
  auto engine = MakeEngine(f, BlockSelection::kAnyActiveLookahead);
  HistSimParams p;
  p.k = 1;
  p.epsilon = 0.1;
  p.delta = 0.05;
  p.sigma = 0.9;
  p.stage1_samples = 2000;  // consumes everything: exact pruning path
  HistSim histsim(p, UniformDistribution(4));
  auto result = histsim.Run(engine.get());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine->stats().rows_read, engine->rows_consumed());
  EXPECT_GT(engine->stats().blocks_read, 0);
  EXPECT_TRUE(engine->AllConsumed());
}

TEST(SamplingEngineTest, LookaheadSizesAgree) {
  // The lookahead batch size must not change which samples are valid:
  // all sizes must meet targets and stay without-replacement.
  auto f = MakeFixture({20000, 20000, 20000}, 4, 11);
  for (int lookahead : {1, 2, 16, 128, 4096}) {
    auto engine =
        MakeEngine(f, BlockSelection::kAnyActiveLookahead, 13, lookahead);
    CountMatrix out(3, 4);
    std::vector<bool> exhausted(3, false);
    engine->SampleUntilTargets({3000, 3000, 3000}, &out, &exhausted);
    for (int i = 0; i < 3; ++i) {
      EXPECT_GE(out.RowTotal(i), 3000) << "lookahead " << lookahead;
    }
    EXPECT_LE(engine->rows_consumed(), f.store->num_rows());
  }
}

}  // namespace
}  // namespace fastmatch
