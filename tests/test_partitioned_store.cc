// Unit tests of PartitionedStore::Split: block-aligned geometry (local
// block b == logical block begin_block + b, same rows-per-block grid),
// verbatim row copies, PartitionOfBlock routing, identity-pool
// allocation, and validation errors.

#include "storage/partitioned_store.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "test_helpers.h"

namespace fastmatch {
namespace {

using testing_util::MakeExactStore;
using testing_util::PlantedDistributions;

std::shared_ptr<ColumnStore> MakeStore(int64_t rows_per_candidate,
                                       uint64_t seed, int rows_per_block) {
  auto dists = PlantedDistributions(6, 4, {0.0, 0.02, 0.05, 0.1, 0.15, 0.2});
  return MakeExactStore(std::vector<int64_t>(6, rows_per_candidate), dists,
                        seed, rows_per_block);
}

TEST(PartitionedStoreTest, SplitValidation) {
  auto store = MakeStore(200, 1, 50);
  EXPECT_FALSE(PartitionedStore::Split(nullptr, 2).ok());
  EXPECT_FALSE(PartitionedStore::Split(store, 0).ok());
  EXPECT_FALSE(PartitionedStore::Split(store, -1).ok());
  // More partitions than blocks cannot be block-aligned.
  EXPECT_FALSE(
      PartitionedStore::Split(store, static_cast<int>(store->num_blocks()) + 1)
          .ok());
  EXPECT_TRUE(PartitionedStore::Split(store, 1).ok());
  EXPECT_TRUE(
      PartitionedStore::Split(store, static_cast<int>(store->num_blocks()))
          .ok());
}

TEST(PartitionedStoreTest, GeometryIsBlockAlignedAndExhaustive) {
  auto store = MakeStore(205, 2, 50);  // short last block
  for (int P : {1, 2, 3, 4, 7}) {
    auto partitioned = PartitionedStore::Split(store, P).value();
    ASSERT_EQ(partitioned->num_partitions(), P);
    EXPECT_EQ(partitioned->num_rows(), store->num_rows());
    EXPECT_EQ(partitioned->num_blocks(), store->num_blocks());
    EXPECT_EQ(partitioned->rows_per_block(), store->rows_per_block());
    EXPECT_EQ(partitioned->source().get(), store.get());

    int64_t total_rows = 0, total_blocks = 0;
    for (int p = 0; p < P; ++p) {
      const ColumnStore& part = *partitioned->partition(p);
      // Same grid: partition-local block b is logical block
      // begin_block + b, which is the whole scatter-gather contract.
      EXPECT_EQ(part.rows_per_block(), store->rows_per_block());
      if (p + 1 < P) {
        EXPECT_EQ(partitioned->partition_begin_block(p) + part.num_blocks(),
                  partitioned->partition_begin_block(p + 1));
      }
      total_rows += part.num_rows();
      total_blocks += part.num_blocks();
    }
    EXPECT_EQ(total_rows, store->num_rows());
    EXPECT_EQ(total_blocks, store->num_blocks());
  }
}

TEST(PartitionedStoreTest, PartitionsHoldVerbatimRowRanges) {
  auto store = MakeStore(137, 3, 25);
  auto partitioned = PartitionedStore::Split(store, 3).value();
  const int num_attrs = store->schema().num_attributes();
  for (int p = 0; p < 3; ++p) {
    const ColumnStore& part = *partitioned->partition(p);
    const RowId offset =
        partitioned->partition_begin_block(p) * store->rows_per_block();
    for (RowId r = 0; r < part.num_rows(); ++r) {
      for (int a = 0; a < num_attrs; ++a) {
        ASSERT_EQ(part.column(a).Get(r), store->column(a).Get(offset + r))
            << "partition " << p << " row " << r << " attr " << a;
      }
    }
  }
}

TEST(PartitionedStoreTest, PartitionOfBlockRoutesEveryLogicalBlock) {
  auto store = MakeStore(411, 4, 30);
  for (int P : {1, 2, 5}) {
    auto partitioned = PartitionedStore::Split(store, P).value();
    for (BlockId b = 0; b < store->num_blocks(); ++b) {
      const int p = partitioned->PartitionOfBlock(b);
      ASSERT_GE(p, 0);
      ASSERT_LT(p, P);
      const BlockId local = b - partitioned->partition_begin_block(p);
      ASSERT_GE(local, 0);
      ASSERT_LT(local, partitioned->partition(p)->num_blocks());
    }
  }
}

TEST(PartitionedStoreTest, IdentitiesAreDistinctPoolTokens) {
  auto store = MakeStore(200, 5, 50);
  auto a = PartitionedStore::Split(store, 2).value();
  auto b = PartitionedStore::Split(store, 2).value();
  // The set's id, every partition store's id, and the source's id are
  // pairwise distinct — they share one process-unique pool, so a
  // registry keyed on ids can hold all of them at once.
  std::set<uint64_t> ids = {store->id(), a->id(), b->id()};
  for (const auto& set : {a, b}) {
    for (int p = 0; p < set->num_partitions(); ++p) {
      ids.insert(set->partition(p)->id());
    }
  }
  EXPECT_EQ(ids.size(), 7u);
}

}  // namespace
}  // namespace fastmatch
