// Cross-module integration: all nine paper queries (Table 3) at reduced
// scale, all four approaches, checking top-k agreement with ground truth
// and the probabilistic guarantees.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/queries.h"

namespace fastmatch {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static constexpr int64_t kRows = 150000;

  static const SyntheticDataset& Dataset(const std::string& name) {
    static std::map<std::string, SyntheticDataset>* cache =
        new std::map<std::string, SyntheticDataset>();
    auto it = cache->find(name);
    if (it == cache->end()) {
      SyntheticDataset ds;
      if (name == "flights") ds = MakeFlightsLike(kRows, 1001);
      if (name == "taxi") ds = MakeTaxiLike(kRows, 1002);
      if (name == "police") ds = MakePoliceLike(kRows, 1003);
      it = cache->emplace(name, std::move(ds)).first;
    }
    return it->second;
  }

  static HistSimParams SmallScaleParams() {
    HistSimParams p;
    p.epsilon = 0.1;       // scaled up: 150k rows instead of 600M
    p.delta = 0.05;
    p.sigma = 0.0008;
    p.stage1_samples = 20000;
    return p;
  }
};

TEST_F(IntegrationTest, AllQueriesAllApproachesSatisfyGuarantees) {
  int violations = 0, runs = 0;
  for (const PaperQuery& spec : PaperQueries()) {
    const auto& ds = Dataset(spec.dataset);
    auto prepared = PrepareQuery(ds, spec, SmallScaleParams(), nullptr);
    ASSERT_TRUE(prepared.ok()) << spec.id << ": "
                               << prepared.status().ToString();
    for (Approach a : {Approach::kScan, Approach::kScanMatch,
                       Approach::kSyncMatch, Approach::kFastMatch}) {
      auto out = RunQuery(prepared->bound, a);
      ASSERT_TRUE(out.ok()) << spec.id << " " << ApproachName(a) << ": "
                            << out.status().ToString();
      EXPECT_EQ(out->match.topk.size(), prepared->truth.topk.size())
          << spec.id << " " << ApproachName(a);
      auto check = CheckGuarantees(out->match, prepared->exact,
                                   prepared->truth, prepared->bound.target,
                                   prepared->bound.params);
      ++runs;
      if (!check.separation_ok || !check.reconstruction_ok) {
        ++violations;
        ADD_FAILURE() << spec.id << " " << ApproachName(a)
                      << " violated guarantees: sep="
                      << check.worst_separation
                      << " rec=" << check.worst_reconstruction;
      }
      // Delta_d is a reporting metric without a guarantee bound; at this
      // reduced scale queries with tiny |VX| have tiny true distances,
      // inflating the *relative* error, so only sanity-check it here.
      // The paper-scale Delta_d reproduction lives in bench_fig9.
      EXPECT_LT(std::abs(check.delta_d), 2.5)
          << spec.id << " " << ApproachName(a);
    }
  }
  // delta = 0.05 per approximate run; zero violations expected in
  // practice (the bound is loose), and the ADD_FAILURE above pinpoints
  // any offender.
  EXPECT_EQ(violations, 0);
  EXPECT_EQ(runs, 36);
}

TEST_F(IntegrationTest, ApproachesAgreeOnWellSeparatedWinners) {
  // flights-q1: the hub cluster gives distinct winners; Scan and
  // FastMatch must agree on a large majority of the top-k (exact
  // agreement is not required: near-ties within epsilon may swap).
  const auto& ds = Dataset("flights");
  auto prepared =
      PrepareQuery(ds, PaperQueries()[0], SmallScaleParams(), nullptr);
  ASSERT_TRUE(prepared.ok());
  auto scan = RunQuery(prepared->bound, Approach::kScan);
  auto fast = RunQuery(prepared->bound, Approach::kFastMatch);
  ASSERT_TRUE(scan.ok());
  ASSERT_TRUE(fast.ok());
  std::set<int> s(scan->match.topk.begin(), scan->match.topk.end());
  int common = 0;
  for (int i : fast->match.topk) common += s.count(i);
  EXPECT_GE(common, static_cast<int>(s.size()) - 3);
}

TEST_F(IntegrationTest, TargetCandidateAlwaysInItsOwnTopK) {
  // The hub target has distance 0 to itself; every approach must return
  // it first.
  const auto& ds = Dataset("flights");
  auto prepared =
      PrepareQuery(ds, PaperQueries()[0], SmallScaleParams(), nullptr);
  ASSERT_TRUE(prepared.ok());
  for (Approach a : {Approach::kScan, Approach::kFastMatch}) {
    auto out = RunQuery(prepared->bound, a);
    ASSERT_TRUE(out.ok());
    ASSERT_FALSE(out->match.topk.empty());
    EXPECT_EQ(out->match.topk[0], static_cast<int>(ds.hub_candidate))
        << ApproachName(a);
  }
}

TEST_F(IntegrationTest, TaxiPrunesHeavyTail) {
  const auto& ds = Dataset("taxi");
  auto prepared =
      PrepareQuery(ds, PaperQueries()[4], SmallScaleParams(), nullptr);
  ASSERT_TRUE(prepared.ok());
  auto out = RunQuery(prepared->bound, Approach::kFastMatch);
  ASSERT_TRUE(out.ok());
  // Thousands of near-empty locations must be pruned in stage 1.
  EXPECT_GT(out->stats.histsim.pruned_candidates, 3000);
  // And none of the pruned may appear in the output.
  for (int i : out->match.topk) {
    EXPECT_FALSE(out->match.pruned[i]);
  }
}

TEST_F(IntegrationTest, FastMatchReadsFewerRowsThanScanMatchOnTaxi) {
  // Block skipping must pay off when most candidates are pruned early.
  const auto& ds = Dataset("taxi");
  auto prepared =
      PrepareQuery(ds, PaperQueries()[4], SmallScaleParams(), nullptr);
  ASSERT_TRUE(prepared.ok());
  auto fast = RunQuery(prepared->bound, Approach::kFastMatch);
  auto scan_match = RunQuery(prepared->bound, Approach::kScanMatch);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(scan_match.ok());
  EXPECT_LE(fast->stats.engine.rows_read, scan_match->stats.engine.rows_read);
}

TEST_F(IntegrationTest, ResultsAreReproducibleUnderSeed) {
  const auto& ds = Dataset("police");
  auto prepared =
      PrepareQuery(ds, PaperQueries()[6], SmallScaleParams(), nullptr);
  ASSERT_TRUE(prepared.ok());
  prepared->bound.params.seed = 77;
  auto a = RunQuery(prepared->bound, Approach::kScanMatch);
  auto b = RunQuery(prepared->bound, Approach::kScanMatch);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->match.topk, b->match.topk);
  EXPECT_EQ(a->stats.engine.rows_read, b->stats.engine.rows_read);
}

}  // namespace
}  // namespace fastmatch
