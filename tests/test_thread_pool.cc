#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

namespace fastmatch {
namespace {

TEST(WorkerPoolTest, ClampsThreadCountToAtLeastOne) {
  WorkerPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  WorkerPool pool2(-3);
  EXPECT_EQ(pool2.size(), 1);
}

TEST(WorkerPoolTest, ParallelForCoversEachIndexExactlyOnce) {
  WorkerPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](int64_t i) {
    hits[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(WorkerPoolTest, ParallelForHandlesEmptyAndSingleRanges) {
  WorkerPool pool(3);
  int calls = 0;
  pool.ParallelFor(0, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // n == 1 runs inline on the caller (no pool thread involved).
  pool.ParallelFor(1, [&](int64_t i) { calls += static_cast<int>(i) + 1; });
  EXPECT_EQ(calls, 1);
}

TEST(WorkerPoolTest, SingleWorkerPoolRunsParallelForInline) {
  WorkerPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(8);
  pool.ParallelFor(8, [&](int64_t i) {
    seen[static_cast<size_t>(i)] = std::this_thread::get_id();
  });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(WorkerPoolTest, SubmitWaitCompletesAllTasks) {
  WorkerPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 100);
}

TEST(WorkerPoolTest, DestructorDrainsOutstandingTasks) {
  std::atomic<int> done{0};
  {
    WorkerPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&] { done.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(done.load(), 50);
}

TEST(WorkerPoolTest, ParallelForSumMatchesSerial) {
  WorkerPool pool(4);
  const int64_t n = 4096;
  std::vector<int64_t> slot(static_cast<size_t>(n), 0);
  pool.ParallelFor(n, [&](int64_t i) { slot[static_cast<size_t>(i)] = i * i; });
  int64_t parallel_sum = 0, serial_sum = 0;
  for (int64_t i = 0; i < n; ++i) {
    parallel_sum += slot[static_cast<size_t>(i)];
    serial_sum += i * i;
  }
  EXPECT_EQ(parallel_sum, serial_sum);
}

// ------------------------------------------------ concurrency stress
// Repeated fork-joins with shared state shake out races in the queue and
// the per-call completion latch (run under FASTMATCH_SANITIZE=thread).

TEST(WorkerPoolStress, RepeatedParallelForRounds) {
  WorkerPool pool(4);
  std::vector<int64_t> cells(256, 0);
  for (int round = 0; round < 200; ++round) {
    pool.ParallelFor(256, [&](int64_t i) { ++cells[static_cast<size_t>(i)]; });
  }
  for (int64_t c : cells) EXPECT_EQ(c, 200);
}

TEST(WorkerPoolStress, InterleavedSubmitAndParallelFor) {
  WorkerPool pool(4);
  std::atomic<int64_t> submitted{0};
  std::atomic<int64_t> forked{0};
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 8; ++i) {
      pool.Submit(
          [&] { submitted.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.ParallelFor(
        64, [&](int64_t) { forked.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(submitted.load(), 50 * 8);
  EXPECT_EQ(forked.load(), 50 * 64);
}

TEST(SharedWorkerPoolTest, QuotaCoversEveryIndexExactlyOnce) {
  SharedWorkerPool pool(4);
  for (int quota : {1, 2, 4, 9}) {
    std::vector<std::atomic<int>> hits(500);
    pool.ParallelFor(
        500,
        [&](int64_t i) {
          hits[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
        },
        quota);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(SharedWorkerPoolTest, QuotaBoundsConcurrency) {
  // A client with quota q must never have more than q of its tasks
  // running at once, however large the shared pool is. The body spins
  // briefly so overlapping tasks actually overlap.
  SharedWorkerPool pool(8);
  for (int quota : {1, 2, 3}) {
    std::atomic<int> live{0};
    std::atomic<int> high_water{0};
    pool.ParallelFor(
        64,
        [&](int64_t) {
          const int now = live.fetch_add(1, std::memory_order_acq_rel) + 1;
          int seen = high_water.load(std::memory_order_relaxed);
          while (now > seen && !high_water.compare_exchange_weak(
                                   seen, now, std::memory_order_relaxed)) {
          }
          std::this_thread::sleep_for(std::chrono::microseconds(50));
          live.fetch_sub(1, std::memory_order_acq_rel);
        },
        quota);
    EXPECT_LE(high_water.load(), quota) << "quota " << quota;
    EXPECT_GE(high_water.load(), 1);
  }
}

TEST(SharedWorkerPoolTest, ConcurrentClientsShareOnePool) {
  // Two caller threads fork work into the same pool under separate
  // quotas; both complete fully — the fork-join state is per call, so
  // clients never observe each other's completions.
  SharedWorkerPool pool(4);
  std::atomic<int64_t> a{0}, b{0};
  std::thread ta([&] {
    for (int round = 0; round < 20; ++round) {
      pool.ParallelFor(
          64, [&](int64_t) { a.fetch_add(1, std::memory_order_relaxed); }, 2);
    }
  });
  std::thread tb([&] {
    for (int round = 0; round < 20; ++round) {
      pool.ParallelFor(
          64, [&](int64_t) { b.fetch_add(1, std::memory_order_relaxed); }, 2);
    }
  });
  ta.join();
  tb.join();
  EXPECT_EQ(a.load(), 20 * 64);
  EXPECT_EQ(b.load(), 20 * 64);
}

TEST(SharedWorkerPoolTest, ProcessPoolIsASingleton) {
  SharedWorkerPool& a = SharedWorkerPool::Process();
  SharedWorkerPool& b = SharedWorkerPool::Process();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.size(), 1);
}

}  // namespace
}  // namespace fastmatch
