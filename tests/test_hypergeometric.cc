#include "stats/hypergeometric.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/math.h"

namespace fastmatch {
namespace {

/// Exact pmf by direct binomial-coefficient arithmetic for small cases.
double ExactPmf(int64_t j, int64_t N, int64_t K, int64_t m) {
  auto choose = [](int64_t n, int64_t k) -> double {
    if (k < 0 || k > n) return 0.0;
    double r = 1;
    for (int64_t i = 0; i < k; ++i) {
      r *= static_cast<double>(n - i) / static_cast<double>(i + 1);
    }
    return r;
  };
  return choose(K, j) * choose(N - K, m - j) / choose(N, m);
}

TEST(HypergeomTest, PmfMatchesExactSmallCases) {
  for (int64_t N : {10, 20, 35}) {
    for (int64_t K : {0L, 3L, 7L, N}) {
      if (K > N) continue;
      for (int64_t m : {0L, 1L, 5L, N}) {
        if (m > N) continue;
        for (int64_t j = -1; j <= m + 1; ++j) {
          const double expected = ExactPmf(j, N, K, m);
          const double actual = HypergeomPmf(j, N, K, m);
          EXPECT_NEAR(actual, expected, 1e-10)
              << "j=" << j << " N=" << N << " K=" << K << " m=" << m;
        }
      }
    }
  }
}

TEST(HypergeomTest, PmfSumsToOne) {
  const int64_t N = 50, K = 18, m = 23;
  double total = 0;
  for (int64_t j = 0; j <= m; ++j) total += HypergeomPmf(j, N, K, m);
  EXPECT_NEAR(total, 1.0, 1e-10);
}

TEST(HypergeomTest, CdfMonotoneAndBounded) {
  const int64_t N = 100, K = 30, m = 40;
  double prev = 0;
  for (int64_t j = 0; j <= m; ++j) {
    const double c = HypergeomCdf(j, N, K, m);
    EXPECT_GE(c + 1e-12, prev);
    EXPECT_LE(c, 1.0 + 1e-12);
    prev = c;
  }
  EXPECT_NEAR(prev, 1.0, 1e-10);
}

TEST(HypergeomTest, CdfMatchesPmfSum) {
  const int64_t N = 60, K = 25, m = 30;
  double acc = 0;
  for (int64_t j = 0; j <= m; ++j) {
    acc += HypergeomPmf(j, N, K, m);
    EXPECT_NEAR(HypergeomCdf(j, N, K, m), std::min(acc, 1.0), 1e-9) << j;
  }
}

TEST(HypergeomTest, SupportEdges) {
  // With N=10, K=7, m=6: at least m-(N-K)=3 successes must be drawn.
  EXPECT_EQ(LogHypergeomPmf(2, 10, 7, 6), NegInf());
  EXPECT_GT(std::exp(LogHypergeomPmf(3, 10, 7, 6)), 0.0);
  // No more than min(K, m) successes.
  EXPECT_EQ(LogHypergeomPmf(7, 10, 7, 6), NegInf());
  EXPECT_EQ(LogHypergeomCdf(2, 10, 7, 6), NegInf());
  EXPECT_DOUBLE_EQ(LogHypergeomCdf(6, 10, 7, 6), 0.0);
}

TEST(HypergeomTest, MeanMatchesTheory) {
  // E[X] = m*K/N.
  const int64_t N = 200, K = 60, m = 50;
  double mean = 0;
  for (int64_t j = 0; j <= m; ++j) mean += j * HypergeomPmf(j, N, K, m);
  EXPECT_NEAR(mean, static_cast<double>(m) * K / N, 1e-8);
}

TEST(HypergeomTest, LargePopulationUnderrepresentationPValue) {
  // The paper's stage-1 setting: N=600M, K=sigma*N=480k, m=500k draws.
  // E[n_i] = 400 under the null; observing 0 must be astronomically
  // unlikely but still a finite, well-behaved log-probability.
  const int64_t N = 600000000, K = 480000, m = 500000;
  const double lp0 = LogHypergeomCdf(0, N, K, m);
  EXPECT_TRUE(std::isfinite(lp0));
  EXPECT_LT(lp0, -350);  // ~ -400 in the Poisson approximation
  EXPECT_GT(lp0, -500);
  // Observing the mean should have high CDF mass (~0.5).
  const double lp_mean = LogHypergeomCdf(400, N, K, m);
  EXPECT_GT(std::exp(lp_mean), 0.4);
  EXPECT_LT(std::exp(lp_mean), 0.65);
}

TEST(HypergeomCdfTableTest, AgreesWithDirectCdf) {
  const int64_t N = 5000, K = 150, m = 800;
  HypergeomCdfTable table(N, K, m, /*j_max=*/150);
  for (int64_t j = 0; j <= 150; ++j) {
    EXPECT_NEAR(table.LogCdf(j), LogHypergeomCdf(j, N, K, m), 1e-9) << j;
  }
}

TEST(HypergeomCdfTableTest, QueriesBeyondPrecomputedRange) {
  const int64_t N = 5000, K = 150, m = 800;
  HypergeomCdfTable table(N, K, m, /*j_max=*/10);
  // Inside support but beyond the table: falls back to direct computation.
  EXPECT_NEAR(table.LogCdf(50), LogHypergeomCdf(50, N, K, m), 1e-9);
  // At/above the support top: log(1) = 0.
  EXPECT_DOUBLE_EQ(table.LogCdf(150), 0.0);
  EXPECT_DOUBLE_EQ(table.LogCdf(100000), 0.0);
}

TEST(HypergeomCdfTableTest, DegenerateParameters) {
  // K = 0: zero successes always; CDF at 0 is already 1.
  HypergeomCdfTable t0(100, 0, 10, 5);
  EXPECT_DOUBLE_EQ(t0.LogCdf(0), 0.0);
  // m = 0: no draws, zero successes certain.
  HypergeomCdfTable t1(100, 40, 0, 5);
  EXPECT_DOUBLE_EQ(t1.LogCdf(0), 0.0);
  // m = N: all drawn, X = K exactly.
  HypergeomCdfTable t2(20, 8, 20, 10);
  EXPECT_EQ(t2.LogCdf(7), NegInf());
  EXPECT_DOUBLE_EQ(t2.LogCdf(8), 0.0);
}

}  // namespace
}  // namespace fastmatch
