#include "util/math.h"

#include <gtest/gtest.h>

#include <cmath>

namespace fastmatch {
namespace {

TEST(LogChooseTest, SmallValuesExact) {
  EXPECT_NEAR(std::exp(LogChoose(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(LogChoose(10, 3)), 120.0, 1e-7);
  EXPECT_NEAR(std::exp(LogChoose(6, 6)), 1.0, 1e-12);
  EXPECT_NEAR(std::exp(LogChoose(6, 0)), 1.0, 1e-12);
}

TEST(LogChooseTest, Symmetry) {
  for (int n = 1; n <= 30; ++n) {
    for (int k = 0; k <= n; ++k) {
      EXPECT_NEAR(LogChoose(n, k), LogChoose(n, n - k), 1e-9);
    }
  }
}

TEST(LogChooseTest, PascalRecurrence) {
  // C(n, k) = C(n-1, k-1) + C(n-1, k), checked in log space.
  for (int n = 2; n <= 40; ++n) {
    for (int k = 1; k < n; ++k) {
      const double lhs = LogChoose(n, k);
      const double rhs = LogAdd(LogChoose(n - 1, k - 1), LogChoose(n - 1, k));
      EXPECT_NEAR(lhs, rhs, 1e-8) << n << " " << k;
    }
  }
}

TEST(LogChooseTest, LargeValuesFinite) {
  const double v = LogChoose(600000000, 500000);
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_GT(v, 0);
}

TEST(LogAddTest, BasicIdentities) {
  EXPECT_NEAR(LogAdd(std::log(2.0), std::log(3.0)), std::log(5.0), 1e-12);
  EXPECT_NEAR(LogAdd(0.0, 0.0), std::log(2.0), 1e-12);
}

TEST(LogAddTest, NegInfIsIdentity) {
  EXPECT_DOUBLE_EQ(LogAdd(NegInf(), 1.5), 1.5);
  EXPECT_DOUBLE_EQ(LogAdd(1.5, NegInf()), 1.5);
  EXPECT_EQ(LogAdd(NegInf(), NegInf()), NegInf());
}

TEST(LogAddTest, ExtremeMagnitudesDoNotOverflow) {
  const double big = 700.0;  // exp(700) overflows a double
  EXPECT_NEAR(LogAdd(big, big), big + std::log(2.0), 1e-9);
  EXPECT_NEAR(LogAdd(big, -big), big, 1e-9);
}

TEST(LogSumExpTest, MatchesDirectComputation) {
  std::vector<double> v = {std::log(1.0), std::log(2.0), std::log(3.0)};
  EXPECT_NEAR(LogSumExp(v), std::log(6.0), 1e-12);
}

TEST(LogSumExpTest, EmptyIsNegInf) {
  EXPECT_EQ(LogSumExp({}), NegInf());
}

TEST(ClampTest, Clamps) {
  EXPECT_EQ(Clamp(5, 0, 1), 1);
  EXPECT_EQ(Clamp(-5, 0, 1), 0);
  EXPECT_EQ(Clamp(0.5, 0, 1), 0.5);
}

TEST(MeanStdDevTest, KnownValues) {
  std::vector<double> v = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_NEAR(Mean(v), 5.0, 1e-12);
  EXPECT_NEAR(StdDev(v), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(MeanStdDevTest, DegenerateSizes) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_EQ(StdDev({}), 0.0);
  EXPECT_EQ(StdDev({3.0}), 0.0);
}

}  // namespace
}  // namespace fastmatch
