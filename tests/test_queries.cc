#include "workload/queries.h"

#include <gtest/gtest.h>

namespace fastmatch {
namespace {

TEST(PaperQueriesTest, AllNineQueriesPresent) {
  auto queries = PaperQueries();
  ASSERT_EQ(queries.size(), 9u);
  EXPECT_EQ(queries[0].id, "flights-q1");
  EXPECT_EQ(queries[8].id, "police-q3");
  // Table 3 k values.
  EXPECT_EQ(queries[2].k, 5);  // flights-q3
  EXPECT_EQ(queries[8].k, 5);  // police-q3
  for (const auto& q : queries) {
    EXPECT_FALSE(q.z_attr.empty());
    EXPECT_FALSE(q.x_attr.empty());
    EXPECT_GE(q.k, 1);
  }
}

TEST(PrepareQueryTest, BindsFlightsQ1) {
  auto ds = MakeFlightsLike(60000, 11);
  HistSimParams params;
  params.stage1_samples = 5000;
  auto prepared = PrepareQuery(ds, PaperQueries()[0], params, nullptr);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_EQ(prepared->bound.z_attr, 0);
  ASSERT_EQ(prepared->bound.x_attrs.size(), 1u);
  EXPECT_EQ(prepared->bound.params.k, 10);
  // Target = hub candidate's exact histogram.
  const Distribution expect =
      prepared->exact.NormalizedRow(static_cast<int>(ds.hub_candidate));
  EXPECT_EQ(prepared->bound.target, expect);
  // Index built on demand.
  ASSERT_NE(prepared->bound.z_index, nullptr);
  EXPECT_EQ(prepared->bound.z_index->attribute(), 0);
  // Ground truth ranks the hub itself first (distance 0).
  ASSERT_FALSE(prepared->truth.topk.empty());
  EXPECT_EQ(prepared->truth.topk[0], static_cast<int>(ds.hub_candidate));
}

TEST(PrepareQueryTest, ExplicitQ3Target) {
  auto ds = MakeFlightsLike(60000, 12);
  HistSimParams params;
  auto prepared = PrepareQuery(ds, PaperQueries()[2], params, nullptr);
  ASSERT_TRUE(prepared.ok());
  ASSERT_EQ(prepared->bound.target.size(), 7u);
  EXPECT_DOUBLE_EQ(prepared->bound.target[0], 0.25);
  EXPECT_DOUBLE_EQ(prepared->bound.target[1], 0.125);
  EXPECT_EQ(prepared->bound.params.k, 5);
}

TEST(PrepareQueryTest, ClosestToUniformTargetIsARealCandidate) {
  auto ds = MakePoliceLike(60000, 13);
  HistSimParams params;
  auto prepared = PrepareQuery(ds, PaperQueries()[6], params, nullptr);
  ASSERT_TRUE(prepared.ok());
  // The resolved target must coincide with some candidate's histogram.
  bool found = false;
  for (int i = 0; i < prepared->exact.num_candidates() && !found; ++i) {
    found = prepared->exact.NormalizedRow(i) == prepared->bound.target;
  }
  EXPECT_TRUE(found);
}

TEST(PrepareQueryTest, ReusesProvidedIndex) {
  auto ds = MakeFlightsLike(30000, 14);
  auto index = BitmapIndex::Build(*ds.store, 0).value();
  HistSimParams params;
  auto prepared = PrepareQuery(ds, PaperQueries()[0], params, index);
  ASSERT_TRUE(prepared.ok());
  EXPECT_EQ(prepared->bound.z_index.get(), index.get());
}

TEST(PrepareQueryTest, MakeTruthTracksParams) {
  auto ds = MakeFlightsLike(60000, 15);
  HistSimParams params;
  auto prepared = PrepareQuery(ds, PaperQueries()[0], params, nullptr);
  ASSERT_TRUE(prepared.ok());
  HistSimParams strict = prepared->bound.params;
  strict.sigma = 0.05;  // much stricter selectivity
  GroundTruth t = MakeTruth(*prepared, strict);
  int eligible = 0;
  for (bool e : t.eligible) eligible += e;
  int eligible_default = 0;
  for (bool e : prepared->truth.eligible) eligible_default += e;
  EXPECT_LT(eligible, eligible_default);
}

}  // namespace
}  // namespace fastmatch
