// Differential suite for the scan kernels: the AVX2 path must produce
// bit-for-bit identical CountMatrix contents (cells, row totals, and
// fresh-count tallies) to the scalar reference on every ValueType pair
// and odd tail length, at the raw-kernel, IoManager, and batch-executor
// levels; density pre-skip must change I/O accounting only, never
// results.

#include "engine/scan_kernel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <random>
#include <utility>
#include <vector>

#include "engine/batch_executor.h"
#include "engine/io_manager.h"
#include "engine/sharded_batch_executor.h"
#include "index/density_map.h"
#include "storage/partitioned_store.h"
#include "test_helpers.h"

namespace fastmatch {
namespace {

using testing_util::PlantedDistributions;

// Rows per slice exercised by every differential: below/at/above the
// 8-lane width, the 4-way unroll, and the 4096-row key tile, always
// including odd tails.
const std::vector<int64_t> kRowCounts = {0,   1,    5,    7,    8,   9,
                                         63,  600,  601,  4095, 4096,
                                         4097, 9001};

template <typename T>
std::vector<T> RandomValues(int64_t rows, uint32_t bound, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<T> values(static_cast<size_t>(rows));
  for (T& v : values) v = static_cast<T>(rng() % bound);
  return values;
}

void ExpectSameMatrix(const CountMatrix& a, const CountMatrix& b) {
  ASSERT_EQ(a.num_candidates(), b.num_candidates());
  ASSERT_EQ(a.num_groups(), b.num_groups());
  for (int c = 0; c < a.num_candidates(); ++c) {
    ASSERT_EQ(a.RowTotal(c), b.RowTotal(c)) << "row total of candidate " << c;
    for (int g = 0; g < a.num_groups(); ++g) {
      ASSERT_EQ(a.At(c, g), b.At(c, g)) << "cell (" << c << ", " << g << ")";
    }
  }
}

/// One typed scalar-vs-AVX2 differential over every slice length.
/// `cands * groups` <= 2048 exercises the sub-histogram accumulator,
/// larger domains the direct-add path.
template <typename ZT, typename XT>
void RunTypedDifferential(int cands, int groups) {
  if (!ScanKernelSimdSupported()) {
    GTEST_SKIP() << "AVX2 kernel unavailable (scalar-only build or CPU)";
  }
  for (int64_t rows : kRowCounts) {
    SCOPED_TRACE("rows=" + std::to_string(rows));
    const auto z = RandomValues<ZT>(rows, static_cast<uint32_t>(cands),
                                    static_cast<uint64_t>(rows) * 31 + 1);
    const auto x = RandomValues<XT>(rows, static_cast<uint32_t>(groups),
                                    static_cast<uint64_t>(rows) * 37 + 2);
    CountMatrix scalar_m(cands, groups);
    CountMatrix simd_m(cands, groups);
    std::vector<int64_t> scalar_t(static_cast<size_t>(cands), 0);
    std::vector<int64_t> simd_t(static_cast<size_t>(cands), 0);
    ScanBlockScalar(z.data(), x.data(), rows, &scalar_m, scalar_t.data());
    ASSERT_TRUE(ScanBlockSimd(z.data(), x.data(), rows, &simd_m,
                              simd_t.data()));
    ExpectSameMatrix(scalar_m, simd_m);
    EXPECT_EQ(scalar_t, simd_t);
  }
}

// All nine ValueType pairs of the typed dispatch, both accumulator
// shapes each.
TEST(ScanKernelDifferential, U8U8) {
  RunTypedDifferential<uint8_t, uint8_t>(23, 11);
  RunTypedDifferential<uint8_t, uint8_t>(97, 65);
}
TEST(ScanKernelDifferential, U8U16) {
  RunTypedDifferential<uint8_t, uint16_t>(23, 11);
  RunTypedDifferential<uint8_t, uint16_t>(41, 130);
}
TEST(ScanKernelDifferential, U8U32) {
  RunTypedDifferential<uint8_t, uint32_t>(23, 11);
  RunTypedDifferential<uint8_t, uint32_t>(17, 400);
}
TEST(ScanKernelDifferential, U16U8) {
  RunTypedDifferential<uint16_t, uint8_t>(23, 11);
  RunTypedDifferential<uint16_t, uint8_t>(1000, 4);
}
TEST(ScanKernelDifferential, U16U16) {
  RunTypedDifferential<uint16_t, uint16_t>(23, 11);
  RunTypedDifferential<uint16_t, uint16_t>(300, 300);
}
TEST(ScanKernelDifferential, U16U32) {
  RunTypedDifferential<uint16_t, uint32_t>(23, 11);
  RunTypedDifferential<uint16_t, uint32_t>(700, 90);
}
TEST(ScanKernelDifferential, U32U8) {
  RunTypedDifferential<uint32_t, uint8_t>(23, 11);
  RunTypedDifferential<uint32_t, uint8_t>(1024, 200);
}
TEST(ScanKernelDifferential, U32U16) {
  RunTypedDifferential<uint32_t, uint16_t>(23, 11);
  RunTypedDifferential<uint32_t, uint16_t>(600, 120);
}
TEST(ScanKernelDifferential, U32U32) {
  RunTypedDifferential<uint32_t, uint32_t>(23, 11);
  // The widest flat domain the suite touches: forces the direct-add
  // accumulator with u32 keys near the top of the suitability range.
  RunTypedDifferential<uint32_t, uint32_t>(1000, 65536);
}

// ------------------------------------------------------ generic path

/// A type-erased column with random codes below `card`.
struct AnyColumn {
  std::vector<uint8_t> bytes;
  ValueType type = ValueType::kU8;
  int card = 0;

  ScanColumn column() const { return {bytes.data(), type, card}; }
};

AnyColumn MakeAnyColumn(int64_t rows, int card, ValueType type,
                        uint64_t seed) {
  AnyColumn col;
  col.type = type;
  col.card = card;
  col.bytes.resize(static_cast<size_t>(rows) * ValueWidth(type));
  std::mt19937_64 rng(seed);
  for (int64_t r = 0; r < rows; ++r) {
    const uint32_t v = static_cast<uint32_t>(rng() % card);
    std::memcpy(col.bytes.data() + r * ValueWidth(type), &v,
                static_cast<size_t>(ValueWidth(type)));
  }
  return col;
}

void RunGenericDifferential(int cands, ValueType z_type,
                            const std::vector<std::pair<int, ValueType>>& xs) {
  if (!ScanKernelSimdSupported()) {
    GTEST_SKIP() << "AVX2 kernel unavailable (scalar-only build or CPU)";
  }
  int groups = 1;
  for (const auto& [card, type] : xs) groups *= card;
  for (int64_t rows : kRowCounts) {
    SCOPED_TRACE("rows=" + std::to_string(rows));
    const AnyColumn z = MakeAnyColumn(rows, cands, z_type,
                                      static_cast<uint64_t>(rows) * 131 + 7);
    std::vector<AnyColumn> x_cols;
    std::vector<ScanColumn> x_scan;
    for (size_t i = 0; i < xs.size(); ++i) {
      x_cols.push_back(MakeAnyColumn(rows, xs[i].first, xs[i].second,
                                     static_cast<uint64_t>(rows) * 17 + i));
      x_scan.push_back(x_cols.back().column());
    }
    CountMatrix scalar_m(cands, groups);
    CountMatrix simd_m(cands, groups);
    CountMatrix brute(cands, groups);
    std::vector<int64_t> scalar_t(static_cast<size_t>(cands), 0);
    std::vector<int64_t> simd_t(static_cast<size_t>(cands), 0);
    ScanBlockGenericScalar(z.column(), x_scan.data(),
                           static_cast<int>(x_scan.size()), rows, &scalar_m,
                           scalar_t.data());
    ASSERT_TRUE(ScanBlockGenericSimd(z.column(), x_scan.data(),
                                     static_cast<int>(x_scan.size()), rows,
                                     &simd_m, simd_t.data()));
    // Independent ground truth so both kernels cannot share one bug.
    for (int64_t r = 0; r < rows; ++r) {
      int g = 0;
      for (const ScanColumn& xc : x_scan) {
        g = g * xc.card +
            static_cast<int>(ScanLoadValue(xc.data, r, xc.type));
      }
      brute.Add(static_cast<int>(ScanLoadValue(z.bytes.data(), r, z.type)),
                g);
    }
    ExpectSameMatrix(scalar_m, simd_m);
    ExpectSameMatrix(brute, simd_m);
    EXPECT_EQ(scalar_t, simd_t);
  }
}

TEST(ScanKernelDifferential, GenericTwoColumns) {
  RunGenericDifferential(23, ValueType::kU8,
                         {{5, ValueType::kU16}, {7, ValueType::kU8}});
}
TEST(ScanKernelDifferential, GenericThreeColumnsMixed) {
  RunGenericDifferential(300, ValueType::kU16,
                         {{5, ValueType::kU8},
                          {3, ValueType::kU32},
                          {4, ValueType::kU16}});
}
TEST(ScanKernelDifferential, GenericWideCandidates) {
  RunGenericDifferential(1000, ValueType::kU32,
                         {{6, ValueType::kU32}, {9, ValueType::kU8}});
}

// ---------------------------------------------------- dispatch gates

TEST(ScanKernelTest, OversizedDomainsFallBackToScalar) {
  // |VZ| past the stack tally: the AVX2 entry refuses, the auto
  // dispatcher still counts correctly through the scalar kernel.
  CountMatrix big_vz(kScanTallyMaxCandidates + 1, 4);
  const std::vector<uint16_t> z = {9};
  const std::vector<uint8_t> x = {3};
  EXPECT_FALSE(ScanBlockSimd(z.data(), x.data(), 1, &big_vz, nullptr));
  EXPECT_FALSE(ScanBlock(z.data(), x.data(), 1, &big_vz, nullptr));
  EXPECT_EQ(big_vz.At(9, 3), 1);
  EXPECT_EQ(big_vz.RowTotal(9), 1);
}

TEST(ScanKernelTest, SelectionReporting) {
  // Compiled => name reflects the runtime decision; not compiled =>
  // everything reports scalar. Either way the three predicates are
  // monotone: enabled => supported => compiled.
  EXPECT_TRUE(!ScanKernelSimdEnabled() || ScanKernelSimdSupported());
  EXPECT_TRUE(!ScanKernelSimdSupported() || ScanKernelSimdCompiled());
  EXPECT_STREQ(ScanKernelName(),
               ScanKernelSimdEnabled() ? "avx2" : "scalar");
}

// ------------------------------------------------- IoManager dispatch

std::shared_ptr<ColumnStore> MakeTypedStore(uint32_t z_card, uint32_t x_card,
                                            uint32_t z_used, uint32_t x_used,
                                            int64_t rows, int rows_per_block,
                                            uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<Value> z(static_cast<size_t>(rows));
  std::vector<Value> x(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    z[static_cast<size_t>(r)] = static_cast<Value>(rng() % z_used);
    x[static_cast<size_t>(r)] = static_cast<Value>(rng() % x_used);
  }
  StorageOptions options;
  options.rows_per_block_override = rows_per_block;
  auto store = ColumnStore::FromColumns(Schema({{"Z", z_card}, {"X", x_card}}),
                                        {std::move(z), std::move(x)}, options);
  FASTMATCH_CHECK(store.ok()) << store.status().ToString();
  return std::move(store).value();
}

/// Reads every block through IoManager (auto-dispatched kernel, fresh
/// counters on) and checks counts against a brute-force fold plus the
/// fresh totals against the matrix row totals.
void RunIoManagerDifferential(uint32_t z_card, uint32_t x_card) {
  // 601 rows at 97 per block: six full blocks and an odd 19-row tail.
  const int64_t rows = 601;
  auto store = MakeTypedStore(z_card, x_card, std::min(z_card, 40u),
                              std::min(x_card, 30u), rows, 97,
                              z_card * 131 + x_card);
  auto io = IoManager::Create(store, 0, {1}).value();
  CountMatrix got(io->num_candidates(), io->num_groups());
  std::vector<std::atomic<int64_t>> fresh(
      static_cast<size_t>(io->num_candidates()));
  for (auto& f : fresh) f.store(0);
  int64_t rows_read = 0;
  for (BlockId b = 0; b < io->pin().num_blocks; ++b) {
    rows_read += io->ReadBlock(b, &got, fresh.data());
  }
  EXPECT_EQ(rows_read, rows);
  CountMatrix want(io->num_candidates(), io->num_groups());
  for (RowId r = 0; r < rows; ++r) {
    want.Add(static_cast<int>(store->column(0).Get(r)),
             static_cast<int>(store->column(1).Get(r)));
  }
  ExpectSameMatrix(want, got);
  for (int c = 0; c < io->num_candidates(); ++c) {
    EXPECT_EQ(fresh[static_cast<size_t>(c)].load(), got.RowTotal(c));
  }
}

TEST(ScanKernelIoManager, TypedDispatchMatchesBruteForce) {
  RunIoManagerDifferential(200, 13);      // u8  x u8
  RunIoManagerDifferential(200, 300);     // u8  x u16
  RunIoManagerDifferential(40, 65537);    // u8  x u32
  RunIoManagerDifferential(300, 13);      // u16 x u8
  RunIoManagerDifferential(300, 300);     // u16 x u16
  RunIoManagerDifferential(65537, 13);    // u32 x u8
  // u16/u32 x u32 pairs allocate card-product matrices too large for a
  // unit test; the raw-kernel differential above covers their
  // arithmetic and the dispatch template is identical.
}

TEST(ScanKernelIoManager, GenericDispatchMatchesBruteForce) {
  const int64_t rows = 601;
  std::mt19937_64 rng(97);
  std::vector<Value> z(static_cast<size_t>(rows));
  std::vector<Value> x1(static_cast<size_t>(rows));
  std::vector<Value> x2(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    z[static_cast<size_t>(r)] = static_cast<Value>(rng() % 23);
    x1[static_cast<size_t>(r)] = static_cast<Value>(rng() % 5);
    x2[static_cast<size_t>(r)] = static_cast<Value>(rng() % 300);
  }
  StorageOptions options;
  options.rows_per_block_override = 97;
  auto store =
      ColumnStore::FromColumns(Schema({{"Z", 23}, {"A", 5}, {"B", 300}}),
                               {std::move(z), std::move(x1), std::move(x2)},
                               options)
          .value();
  auto io = IoManager::Create(store, 0, {1, 2}).value();
  ASSERT_EQ(io->num_groups(), 5 * 300);
  CountMatrix got(io->num_candidates(), io->num_groups());
  std::vector<std::atomic<int64_t>> fresh(
      static_cast<size_t>(io->num_candidates()));
  for (auto& f : fresh) f.store(0);
  for (BlockId b = 0; b < io->pin().num_blocks; ++b) {
    io->ReadBlock(b, &got, fresh.data());
  }
  CountMatrix want(io->num_candidates(), io->num_groups());
  for (RowId r = 0; r < rows; ++r) {
    const int g = static_cast<int>(store->column(1).Get(r)) * 300 +
                  static_cast<int>(store->column(2).Get(r));
    want.Add(static_cast<int>(store->column(0).Get(r)), g);
  }
  ExpectSameMatrix(want, got);
  for (int c = 0; c < io->num_candidates(); ++c) {
    EXPECT_EQ(fresh[static_cast<size_t>(c)].load(), got.RowTotal(c));
  }
}

// --------------------------------------------- density pre-skip runs

HistSimParams SkipParams(uint64_t seed = 42) {
  HistSimParams p;
  p.k = 3;
  p.epsilon = 0.05;
  p.delta = 0.05;
  p.sigma = 0.0;
  p.stage1_samples = 10000;
  p.seed = seed;
  return p;
}

struct PreSkipFixture {
  std::shared_ptr<ColumnStore> store;
  std::shared_ptr<const BitmapIndex> index;
  std::shared_ptr<const DensityMap> density;
  Distribution target;
};

/// Exactly n X-values following `d` (largest-remainder, like
/// MakeExactStore), shuffled with `seed`.
std::vector<Value> ExactXValues(int64_t n, const Distribution& d,
                                uint64_t seed) {
  const int vx = static_cast<int>(d.size());
  std::vector<int64_t> bins(static_cast<size_t>(vx));
  std::vector<std::pair<double, int>> remainders;
  int64_t assigned = 0;
  for (int j = 0; j < vx; ++j) {
    const double want = d[static_cast<size_t>(j)] * static_cast<double>(n);
    bins[static_cast<size_t>(j)] = static_cast<int64_t>(want);
    assigned += bins[static_cast<size_t>(j)];
    remainders.push_back(
        {want - static_cast<double>(bins[static_cast<size_t>(j)]), j});
  }
  std::sort(remainders.begin(), remainders.end(),
            [](auto& a, auto& b) { return a.first > b.first; });
  for (int64_t r = 0; r < n - assigned; ++r) {
    bins[static_cast<size_t>(remainders[static_cast<size_t>(r)].second)]++;
  }
  std::vector<Value> xs;
  xs.reserve(static_cast<size_t>(n));
  for (int j = 0; j < vx; ++j) {
    for (int64_t c = 0; c < bins[static_cast<size_t>(j)]; ++c) {
      xs.push_back(static_cast<Value>(j));
    }
  }
  std::mt19937_64 rng(seed);
  std::shuffle(xs.begin(), xs.end(), rng);
  return xs;
}

/// Appends every (z, x) row of the given candidates, shuffled within
/// the region only — candidates stay localized to this stretch of rows.
void AppendRegion(const std::vector<int>& cands,
                  const std::vector<int64_t>& rows,
                  const std::vector<Distribution>& dists, uint64_t seed,
                  std::vector<Value>* z_col, std::vector<Value>* x_col) {
  std::vector<std::pair<Value, Value>> region;
  for (int i : cands) {
    const int64_t n = rows[static_cast<size_t>(i)];
    for (Value xv : ExactXValues(n, dists[static_cast<size_t>(i)],
                                 seed * 131 + static_cast<uint64_t>(i))) {
      region.push_back({static_cast<Value>(i), xv});
    }
  }
  std::mt19937_64 rng(seed);
  std::shuffle(region.begin(), region.end(), rng);
  for (const auto& [zv, xv] : region) {
    z_col->push_back(zv);
    x_col->push_back(xv);
  }
}

/// sparse=true: the three TOP candidates {0, 1, 2} are rare AND
/// localized — their 600 rows each live only in the trailing ~36
/// blocks, while nine far, abundant candidates fill the leading ~3600.
/// Stage 1 leaves the top candidates with wide-open intervals, so the
/// post-stage-1 target demand is concentrated on them and AnyActive
/// marking can skip almost the whole relation — the pre-skip scenario.
/// sparse=false: candidates are interleaved round-robin, so EVERY
/// 50-row block provably contains all twelve — no block is ever
/// skippable, by construction rather than by chance.
PreSkipFixture MakePreSkipFixture(bool sparse, uint64_t seed) {
  PreSkipFixture f;
  // The far nine sit at L1 distance >= 1.2 from uniform — so wide a gap
  // that stage 1 alone excludes them from top-3 contention, leaving the
  // post-stage-1 demand on the localized top three only.
  std::vector<double> offsets = {0.0,  0.01, 0.02, 0.60, 0.62, 0.64,
                                 0.66, 0.68, 0.70, 0.72, 0.74, 0.76};
  auto dists = PlantedDistributions(12, 8, offsets);
  if (sparse) {
    std::vector<int64_t> rows(12, 20000);
    rows[0] = rows[1] = rows[2] = 600;
    std::vector<Value> z_col, x_col;
    AppendRegion({3, 4, 5, 6, 7, 8, 9, 10, 11}, rows, dists, seed, &z_col,
                 &x_col);
    AppendRegion({0, 1, 2}, rows, dists, seed + 1, &z_col, &x_col);
    StorageOptions options;
    options.rows_per_block_override = 50;
    f.store = ColumnStore::FromColumns(Schema({{"Z", 12}, {"X", 8}}),
                                       {std::move(z_col), std::move(x_col)},
                                       options)
                  .value();
  } else {
    const int64_t per_candidate = 4000;
    std::vector<std::vector<Value>> xs;
    for (int i = 0; i < 12; ++i) {
      xs.push_back(ExactXValues(per_candidate, dists[static_cast<size_t>(i)],
                                seed * 17 + static_cast<uint64_t>(i)));
    }
    std::vector<Value> z_col, x_col;
    for (int64_t r = 0; r < per_candidate * 12; ++r) {
      const int i = static_cast<int>(r % 12);
      z_col.push_back(static_cast<Value>(i));
      x_col.push_back(xs[static_cast<size_t>(i)][static_cast<size_t>(r / 12)]);
    }
    StorageOptions options;
    options.rows_per_block_override = 50;
    f.store = ColumnStore::FromColumns(Schema({{"Z", 12}, {"X", 8}}),
                                       {std::move(z_col), std::move(x_col)},
                                       options)
                  .value();
  }
  f.index = BitmapIndex::Build(*f.store, 0).value();
  f.density = DensityMap::Build(*f.store, 0).value();
  f.target = UniformDistribution(8);
  return f;
}

enum class Authority { kNone, kIndex, kDensity };

BoundQuery PreSkipQuery(const PreSkipFixture& f, Authority authority,
                        uint64_t seed = 42) {
  BoundQuery q;
  q.store = f.store;
  if (authority == Authority::kIndex) q.z_index = f.index;
  if (authority == Authority::kDensity) q.z_density = f.density;
  q.z_attr = 0;
  q.x_attrs = {1};
  q.target = f.target;
  q.params = SkipParams(seed);
  return q;
}

struct PreSkipRun {
  std::vector<BatchItem> items;
  BatchStats stats;
};

PreSkipRun RunPreSkip(const PreSkipFixture& f, Authority authority,
                      int threads) {
  BatchOptions o;
  o.num_threads = threads;
  o.chunk_blocks = 64;
  o.seed = 7;
  auto executor =
      BatchExecutor::Create({PreSkipQuery(f, authority)}, o).value();
  PreSkipRun run;
  run.items = executor->Run();
  run.stats = executor->stats();
  return run;
}

void ExpectSameItems(const std::vector<BatchItem>& a,
                     const std::vector<BatchItem>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].status.ok(), b[i].status.ok());
    if (!a[i].status.ok()) continue;
    EXPECT_EQ(a[i].match.topk, b[i].match.topk);
    EXPECT_EQ(a[i].match.topk_distances, b[i].match.topk_distances);
    EXPECT_EQ(a[i].match.distances, b[i].match.distances);
  }
}

TEST(DensityPreSkipTest, DensityMarksExactlyLikeTheBitmapIndex) {
  // A bitmap bit is set iff the density count is non-zero, so the two
  // authorities must produce the same reads, the same skips, and
  // bit-for-bit the same results — on a store where skipping happens.
  PreSkipFixture f = MakePreSkipFixture(/*sparse=*/true, 3);
  PreSkipRun with_index = RunPreSkip(f, Authority::kIndex, 2);
  PreSkipRun with_density = RunPreSkip(f, Authority::kDensity, 2);
  EXPECT_GT(with_index.stats.blocks_skipped, 0);
  EXPECT_EQ(with_index.stats.blocks_read, with_density.stats.blocks_read);
  EXPECT_EQ(with_index.stats.blocks_skipped,
            with_density.stats.blocks_skipped);
  EXPECT_EQ(with_index.stats.rows_read, with_density.stats.rows_read);
  ExpectSameItems(with_index.items, with_density.items);
}

TEST(DensityPreSkipTest, DensityUnlocksSkippingForIndexlessTemplates) {
  // Without any authority a targets demand forces sequential
  // consumption; a density map alone must lift that without changing
  // any result.
  PreSkipFixture f = MakePreSkipFixture(/*sparse=*/true, 5);
  PreSkipRun none = RunPreSkip(f, Authority::kNone, 2);
  PreSkipRun density = RunPreSkip(f, Authority::kDensity, 2);
  EXPECT_EQ(none.stats.blocks_skipped, 0);
  EXPECT_GT(density.stats.blocks_skipped, 0);
  EXPECT_LT(density.stats.blocks_read, none.stats.blocks_read);
  // Skipping changes which rows of NON-demanded candidates get counted
  // along the way, so intermediate estimates (and exact distances of
  // rows never enumerated) legitimately differ from the sequential run;
  // what must agree is the answer itself. The planted top three sit at
  // distances {0, .02, .04} with the next candidate at 1.2 — far beyond
  // epsilon — so both runs must select exactly {0, 1, 2}.
  for (const PreSkipRun* run : {&none, &density}) {
    ASSERT_EQ(run->items.size(), 1u);
    ASSERT_TRUE(run->items[0].status.ok());
    std::vector<int> topk = run->items[0].match.topk;
    std::sort(topk.begin(), topk.end());
    EXPECT_EQ(topk, (std::vector<int>{0, 1, 2}));
  }
}

TEST(DensityPreSkipTest, NoSkippableBlocksMeansIdenticalAccounting) {
  // Every candidate appears in every block: marking can never skip, so
  // pre-skip on/off must agree on blocks_read exactly, not just on
  // results.
  PreSkipFixture f = MakePreSkipFixture(/*sparse=*/false, 7);
  PreSkipRun none = RunPreSkip(f, Authority::kNone, 2);
  PreSkipRun index = RunPreSkip(f, Authority::kIndex, 2);
  PreSkipRun density = RunPreSkip(f, Authority::kDensity, 2);
  EXPECT_EQ(density.stats.blocks_skipped, 0);
  EXPECT_EQ(none.stats.blocks_read, density.stats.blocks_read);
  EXPECT_EQ(index.stats.blocks_read, density.stats.blocks_read);
  EXPECT_EQ(none.stats.rows_read, density.stats.rows_read);
  ExpectSameItems(none.items, density.items);
  ExpectSameItems(index.items, density.items);
}

TEST(DensityPreSkipTest, BitForBitAcrossThreadCounts) {
  PreSkipFixture f = MakePreSkipFixture(/*sparse=*/true, 11);
  PreSkipRun one = RunPreSkip(f, Authority::kDensity, 1);
  for (int threads : {2, 3, 5}) {
    PreSkipRun more = RunPreSkip(f, Authority::kDensity, threads);
    EXPECT_EQ(one.stats.blocks_read, more.stats.blocks_read);
    ExpectSameItems(one.items, more.items);
  }
}

TEST(DensityPreSkipTest, ShardedRunMatchesUnpartitioned) {
  PreSkipFixture f = MakePreSkipFixture(/*sparse=*/true, 13);
  PreSkipRun plain = RunPreSkip(f, Authority::kDensity, 2);
  for (int partitions : {2, 3}) {
    auto set = PartitionedStore::Split(f.store, partitions).value();
    BoundQuery q = PreSkipQuery(f, Authority::kDensity);
    q.partitions = set;
    BatchOptions o;
    o.num_threads = 2;
    o.chunk_blocks = 64;
    o.seed = 7;
    auto executor = ShardedBatchExecutor::Create({q}, set, o).value();
    std::vector<BatchItem> items = executor->Run();
    EXPECT_EQ(executor->stats().blocks_read, plain.stats.blocks_read);
    EXPECT_EQ(executor->stats().blocks_skipped, plain.stats.blocks_skipped);
    ExpectSameItems(plain.items, items);
  }
}

TEST(DensityPreSkipTest, MismatchedDensityAttributeIsRejectedPerQuery) {
  PreSkipFixture f = MakePreSkipFixture(/*sparse=*/false, 17);
  BoundQuery bad = PreSkipQuery(f, Authority::kNone);
  bad.z_density = DensityMap::Build(*f.store, 1).value();  // X, not Z
  BatchOptions o;
  o.num_threads = 2;
  o.chunk_blocks = 64;
  auto executor = BatchExecutor::Create({bad}, o).value();
  std::vector<BatchItem> items = executor->Run();
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].status.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace fastmatch
