// End-to-end tests of the HistSim algorithm over the reference RowSampler,
// validating the statistics layer independent of the block engine.

#include "core/histsim.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/row_sampler.h"
#include "core/verify.h"
#include "test_helpers.h"

namespace fastmatch {
namespace {

using testing_util::MakeExactStore;
using testing_util::PlantedDistributions;

/// Planted scenario: 12 candidates at staggered l1 distances ~2*offset
/// from the uniform target; offsets well separated so the true top-k is
/// unambiguous.
struct Scenario {
  std::shared_ptr<ColumnStore> store;
  Distribution target;
  std::vector<double> offsets;
  CountMatrix exact;
};

Scenario MakeScenario(int64_t rows_per_candidate, uint64_t seed) {
  Scenario s;
  s.offsets = {0.0, 0.01, 0.02, 0.06, 0.09, 0.12,
               0.15, 0.17, 0.19, 0.21, 0.23, 0.25};
  auto dists = PlantedDistributions(12, 8, s.offsets);
  std::vector<int64_t> counts(12, rows_per_candidate);
  s.store = MakeExactStore(counts, dists, seed);
  s.target = UniformDistribution(8);
  s.exact = ComputeExactCounts(*s.store, 0, {1}).value();
  return s;
}

HistSimParams TestParams() {
  HistSimParams p;
  p.k = 3;
  p.epsilon = 0.05;
  p.delta = 0.05;
  p.sigma = 0.0;  // no pruning in the basic scenario
  p.stage1_samples = 3000;
  p.seed = 42;
  return p;
}

TEST(HistSimTest, FindsWellSeparatedTopK) {
  Scenario s = MakeScenario(20000, 1);
  HistSimParams p = TestParams();
  auto sampler = RowSampler::Create(s.store, 0, {1}, 7).value();
  HistSim histsim(p, s.target);
  auto result = histsim.Run(sampler.get());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // True top-3 = candidates 0, 1, 2 (offsets 0, 0.01, 0.02 vs next 0.06:
  // gap 0.08 > epsilon).
  std::set<int> got(result->topk.begin(), result->topk.end());
  EXPECT_EQ(got, (std::set<int>{0, 1, 2}));
}

TEST(HistSimTest, DistancesSortedAscending) {
  Scenario s = MakeScenario(20000, 2);
  auto sampler = RowSampler::Create(s.store, 0, {1}, 11).value();
  HistSim histsim(TestParams(), s.target);
  auto result = histsim.Run(sampler.get());
  ASSERT_TRUE(result.ok());
  for (size_t i = 1; i < result->topk_distances.size(); ++i) {
    EXPECT_LE(result->topk_distances[i - 1], result->topk_distances[i]);
  }
}

TEST(HistSimTest, GuaranteesHoldAcrossSeeds) {
  Scenario s = MakeScenario(20000, 3);
  HistSimParams p = TestParams();
  GroundTruth truth =
      ComputeGroundTruth(s.exact, s.target, p.metric, p.sigma, p.k);
  int g1_violations = 0, g2_violations = 0;
  for (uint64_t seed = 0; seed < 12; ++seed) {
    auto sampler = RowSampler::Create(s.store, 0, {1}, seed).value();
    p.seed = seed;
    HistSim histsim(p, s.target);
    auto result = histsim.Run(sampler.get());
    ASSERT_TRUE(result.ok());
    auto check = CheckGuarantees(*result, s.exact, truth, s.target, p);
    g1_violations += !check.separation_ok;
    g2_violations += !check.reconstruction_ok;
  }
  // delta = 0.05 per run; 12 runs with zero tolerance would be flaky by
  // design, but the bound is loose in practice: allow at most 1.
  EXPECT_LE(g1_violations, 1);
  EXPECT_LE(g2_violations, 1);
}

TEST(HistSimTest, ReconstructionMeetsEpsilon) {
  Scenario s = MakeScenario(30000, 4);
  HistSimParams p = TestParams();
  auto sampler = RowSampler::Create(s.store, 0, {1}, 13).value();
  HistSim histsim(p, s.target);
  auto result = histsim.Run(sampler.get());
  ASSERT_TRUE(result.ok());
  for (int i : result->topk) {
    const double err = HistDistance(p.metric, result->counts.NormalizedRow(i),
                                    s.exact.NormalizedRow(i));
    EXPECT_LT(err, p.epsilon) << "candidate " << i;
  }
}

TEST(HistSimTest, Stage1PrunesRareCandidates) {
  // One candidate with far fewer rows than sigma*N.
  std::vector<int64_t> counts = {50, 40000, 40000, 40000};
  auto dists = PlantedDistributions(4, 8, {0.0, 0.05, 0.1, 0.15});
  auto store = MakeExactStore(counts, dists, 5);
  HistSimParams p = TestParams();
  p.k = 2;
  p.sigma = 0.01;  // sigma*N ~ 1200 >> 50
  p.stage1_samples = 20000;
  auto sampler = RowSampler::Create(store, 0, {1}, 17).value();
  HistSim histsim(p, UniformDistribution(8));
  auto result = histsim.Run(sampler.get());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->pruned[0]);
  EXPECT_FALSE(result->pruned[1]);
  EXPECT_EQ(result->diag.pruned_candidates, 1);
  // The rare candidate (closest to target!) must not be in the output.
  EXPECT_EQ(std::count(result->topk.begin(), result->topk.end(), 0), 0);
}

TEST(HistSimTest, Stage1KeepsFrequentCandidatesWithHighProbability) {
  std::vector<int64_t> counts(6, 20000);
  auto store = MakeExactStore(
      counts, PlantedDistributions(6, 8, {0, 0.05, 0.1, 0.15, 0.2, 0.25}), 6);
  HistSimParams p = TestParams();
  p.sigma = 0.0008;  // everyone is far above threshold
  p.stage1_samples = 5000;
  auto sampler = RowSampler::Create(store, 0, {1}, 19).value();
  HistSim histsim(p, UniformDistribution(8));
  auto result = histsim.Run(sampler.get());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->diag.pruned_candidates, 0);
}

TEST(HistSimTest, ExhaustionYieldsExactResults) {
  // Tiny dataset: every stage exhausts the data; output must equal truth.
  std::vector<int64_t> counts = {200, 200, 200, 200, 200};
  auto dists = PlantedDistributions(5, 4, {0.0, 0.08, 0.16, 0.24, 0.3});
  auto store = MakeExactStore(counts, dists, 7);
  auto exact = ComputeExactCounts(*store, 0, {1}).value();
  HistSimParams p = TestParams();
  p.k = 2;
  p.sigma = 0;
  p.stage1_samples = 100;
  auto sampler = RowSampler::Create(store, 0, {1}, 23).value();
  HistSim histsim(p, UniformDistribution(4));
  auto result = histsim.Run(sampler.get());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->diag.data_exhausted);
  std::set<int> got(result->topk.begin(), result->topk.end());
  EXPECT_EQ(got, (std::set<int>{0, 1}));
  // Exhausted counts are exact.
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(result->exact[i]);
    EXPECT_EQ(result->counts.RowTotal(i), 200);
  }
}

TEST(HistSimTest, KLargerThanCandidateCount) {
  std::vector<int64_t> counts = {5000, 5000, 5000};
  auto store =
      MakeExactStore(counts, PlantedDistributions(3, 4, {0, 0.1, 0.2}), 8);
  HistSimParams p = TestParams();
  p.k = 10;
  p.sigma = 0;
  auto sampler = RowSampler::Create(store, 0, {1}, 29).value();
  HistSim histsim(p, UniformDistribution(4));
  auto result = histsim.Run(sampler.get());
  ASSERT_TRUE(result.ok());
  // All three candidates returned.
  EXPECT_EQ(result->topk.size(), 3u);
}

TEST(HistSimTest, InvalidParamsRejected) {
  Scenario s = MakeScenario(1000, 9);
  auto sampler = RowSampler::Create(s.store, 0, {1}, 31).value();
  HistSimParams p = TestParams();
  p.epsilon = 0;
  EXPECT_FALSE(HistSim(p, s.target).Run(sampler.get()).ok());
  p = TestParams();
  p.delta = 1.5;
  EXPECT_FALSE(HistSim(p, s.target).Run(sampler.get()).ok());
  p = TestParams();
  p.k = 0;
  EXPECT_FALSE(HistSim(p, s.target).Run(sampler.get()).ok());
}

TEST(HistSimTest, NullSamplerRejected) {
  Scenario s = MakeScenario(1000, 10);
  HistSim histsim(TestParams(), s.target);
  EXPECT_EQ(histsim.Run(nullptr).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(HistSimTest, WrongTargetSizeRejected) {
  Scenario s = MakeScenario(1000, 11);
  auto sampler = RowSampler::Create(s.store, 0, {1}, 37).value();
  HistSim histsim(TestParams(), UniformDistribution(5));  // |VX| is 8
  EXPECT_FALSE(histsim.Run(sampler.get()).ok());
}

TEST(HistSimTest, SeparateEpsilonsForGuarantees) {
  // Appendix A.2.1: tighter reconstruction than separation.
  Scenario s = MakeScenario(30000, 12);
  HistSimParams p = TestParams();
  p.eps_separation = 0.1;
  p.eps_reconstruction = 0.03;
  auto sampler = RowSampler::Create(s.store, 0, {1}, 41).value();
  HistSim histsim(p, s.target);
  auto result = histsim.Run(sampler.get());
  ASSERT_TRUE(result.ok());
  for (int i : result->topk) {
    const double err = HistDistance(p.metric, result->counts.NormalizedRow(i),
                                    s.exact.NormalizedRow(i));
    EXPECT_LT(err, 0.03);
  }
}

TEST(HistSimTest, KRangeExtensionPicksWideGap) {
  // Appendix A.2.3: offsets have a conspicuous gap after the 5th
  // candidate; with k in [2, 6], HistSim should choose the boundary with
  // the widest gap.
  std::vector<double> offsets = {0.0,  0.01, 0.02, 0.03, 0.04,
                                 0.30, 0.32, 0.34, 0.36, 0.38};
  auto dists = PlantedDistributions(10, 8, offsets);
  auto store = MakeExactStore(std::vector<int64_t>(10, 20000), dists, 13);
  HistSimParams p = TestParams();
  p.k = 2;
  p.k_hi = 6;
  auto sampler = RowSampler::Create(store, 0, {1}, 43).value();
  HistSim histsim(p, UniformDistribution(8));
  auto result = histsim.Run(sampler.get());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->diag.chosen_k, 5);
  EXPECT_EQ(result->topk.size(), 5u);
}

TEST(HistSimTest, L2MetricSupported) {
  Scenario s = MakeScenario(20000, 14);
  HistSimParams p = TestParams();
  p.metric = Metric::kL2;
  // The target was resolved under l1 but is a plain distribution; re-use.
  auto sampler = RowSampler::Create(s.store, 0, {1}, 47).value();
  HistSim histsim(p, s.target);
  auto result = histsim.Run(sampler.get());
  ASSERT_TRUE(result.ok());
  std::set<int> got(result->topk.begin(), result->topk.end());
  EXPECT_EQ(got, (std::set<int>{0, 1, 2}));
}

TEST(HistSimTest, TinyEpsilonRejectedInsteadOfOverflowing) {
  // eps = 1e-12 pushes the sample-size formulas past int64: the machine
  // must reject the parameters instead of running on saturated targets.
  Scenario s = MakeScenario(1000, 16);
  auto sampler = RowSampler::Create(s.store, 0, {1}, 59).value();
  HistSimParams p = TestParams();
  p.epsilon = 1e-12;
  auto result = HistSim(p, s.target).Run(sampler.get());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------ machine protocol

TEST(HistSimMachineTest, DrivesToCompletionViaDemands) {
  Scenario s = MakeScenario(20000, 17);
  auto sampler = RowSampler::Create(s.store, 0, {1}, 61).value();
  HistSimMachine machine(TestParams(), s.target);
  ASSERT_TRUE(machine.Begin(sampler->num_candidates(), sampler->num_groups(),
                            sampler->total_rows())
                  .ok());
  EXPECT_EQ(machine.demand().kind, SampleDemand::Kind::kRows);
  int phases = 0;
  while (!machine.done()) {
    ASSERT_LT(phases++, 100) << "machine does not converge";
    const SampleDemand& demand = machine.demand();
    CountMatrix fresh(12, 8);
    std::vector<bool> exhausted(12, false);
    int64_t drawn = 0;
    if (demand.kind == SampleDemand::Kind::kRows) {
      drawn = sampler->SampleRows(demand.rows, &fresh);
    } else {
      const int64_t before = sampler->rows_consumed();
      sampler->SampleUntilTargets(demand.targets, &fresh, &exhausted);
      drawn = sampler->rows_consumed() - before;
    }
    ASSERT_TRUE(
        machine.Supply(fresh, exhausted, sampler->AllConsumed(), drawn).ok());
  }
  MatchResult result = machine.TakeResult();
  std::set<int> got(result.topk.begin(), result.topk.end());
  EXPECT_EQ(got, (std::set<int>{0, 1, 2}));
}

TEST(HistSimMachineTest, ManualDriveMatchesRunDriver) {
  // Driving the machine by hand must be byte-equivalent to HistSim::Run
  // over an identically-seeded sampler (the driver is a thin loop).
  Scenario s = MakeScenario(20000, 18);
  HistSimParams p = TestParams();
  auto s1 = RowSampler::Create(s.store, 0, {1}, 67).value();
  auto s2 = RowSampler::Create(s.store, 0, {1}, 67).value();

  auto run_result = HistSim(p, s.target).Run(s1.get());
  ASSERT_TRUE(run_result.ok());

  HistSimMachine machine(p, s.target);
  ASSERT_TRUE(machine.Begin(s2->num_candidates(), s2->num_groups(),
                            s2->total_rows())
                  .ok());
  while (!machine.done()) {
    const SampleDemand& demand = machine.demand();
    CountMatrix fresh(12, 8);
    std::vector<bool> exhausted(12, false);
    int64_t drawn = 0;
    if (demand.kind == SampleDemand::Kind::kRows) {
      drawn = s2->SampleRows(demand.rows, &fresh);
    } else {
      const int64_t before = s2->rows_consumed();
      s2->SampleUntilTargets(demand.targets, &fresh, &exhausted);
      drawn = s2->rows_consumed() - before;
    }
    ASSERT_TRUE(
        machine.Supply(fresh, exhausted, s2->AllConsumed(), drawn).ok());
  }
  MatchResult manual = machine.TakeResult();
  EXPECT_EQ(manual.topk, run_result->topk);
  for (int i = 0; i < 12; ++i) {
    for (int g = 0; g < 8; ++g) {
      ASSERT_EQ(manual.counts.At(i, g), run_result->counts.At(i, g));
    }
  }
}

TEST(HistSimMachineTest, BeginRejectsProtocolViolations) {
  Scenario s = MakeScenario(1000, 19);
  HistSimMachine machine(TestParams(), s.target);
  ASSERT_TRUE(machine.Begin(12, 8, s.store->num_rows()).ok());
  // Begin twice is a protocol error.
  EXPECT_EQ(machine.Begin(12, 8, s.store->num_rows()).code(),
            StatusCode::kFailedPrecondition);
  // Empty domain / empty relation are rejected up front.
  HistSimMachine m2(TestParams(), s.target);
  EXPECT_FALSE(m2.Begin(0, 8, 100).ok());
  HistSimMachine m3(TestParams(), s.target);
  EXPECT_EQ(m3.Begin(12, 8, 0).code(), StatusCode::kFailedPrecondition);
}

// ------------------------------------------------- warm stage-1 starts
// Begin(..., Stage1Prior): the machine advances past stage 1 on a prior
// sample. The contract is equivalence: a warm Begin must be
// indistinguishable from a cold Begin followed by a Supply of the same
// sample.

TEST(HistSimMachineTest, WarmBeginMatchesColdSupplyBitForBit) {
  Scenario s = MakeScenario(20000, 21);
  HistSimParams p = TestParams();
  auto s1 = RowSampler::Create(s.store, 0, {1}, 71).value();
  auto s2 = RowSampler::Create(s.store, 0, {1}, 71).value();

  // Cold: Begin, then satisfy the stage-1 demand from the sampler.
  HistSimMachine cold(p, s.target);
  ASSERT_TRUE(cold.Begin(12, 8, s.store->num_rows()).ok());
  ASSERT_EQ(cold.demand().kind, SampleDemand::Kind::kRows);
  CountMatrix stage1(12, 8);
  const int64_t drawn = s1->SampleRows(cold.demand().rows, &stage1);
  ASSERT_TRUE(cold.Supply(stage1, std::vector<bool>(12, false),
                          s1->AllConsumed(), drawn)
                  .ok());

  // Warm: the identical stage-1 sample handed to Begin as a prior (s2
  // shares s1's seed, so the two machines' sample streams line up).
  CountMatrix stage1_again(12, 8);
  const int64_t drawn_again = s2->SampleRows(p.stage1_samples, &stage1_again);
  ASSERT_EQ(drawn_again, drawn);
  Stage1Prior prior;
  prior.counts = &stage1_again;
  prior.rows_drawn = drawn_again;
  HistSimMachine warm(p, s.target);
  ASSERT_TRUE(warm.Begin(12, 8, s.store->num_rows(), &prior).ok());

  // From here both machines must issue identical demands and, fed
  // identical streams, produce identical results.
  int phases = 0;
  while (!cold.done() && !warm.done()) {
    ASSERT_LT(phases++, 100) << "machines do not converge";
    ASSERT_EQ(cold.demand().kind, warm.demand().kind);
    ASSERT_EQ(cold.demand().rows, warm.demand().rows);
    ASSERT_EQ(cold.demand().targets, warm.demand().targets);
    for (RowSampler* sampler : {s1.get(), s2.get()}) {
      HistSimMachine& machine = sampler == s1.get() ? cold : warm;
      CountMatrix fresh(12, 8);
      std::vector<bool> exhausted(12, false);
      const int64_t before = sampler->rows_consumed();
      sampler->SampleUntilTargets(machine.demand().targets, &fresh,
                                  &exhausted);
      ASSERT_TRUE(machine
                      .Supply(fresh, exhausted, sampler->AllConsumed(),
                              sampler->rows_consumed() - before)
                      .ok());
    }
  }
  ASSERT_TRUE(cold.done());
  ASSERT_TRUE(warm.done());
  MatchResult cold_result = cold.TakeResult();
  MatchResult warm_result = warm.TakeResult();
  EXPECT_EQ(warm_result.topk, cold_result.topk);
  EXPECT_EQ(warm_result.distances, cold_result.distances);
  EXPECT_EQ(warm_result.exact, cold_result.exact);
  for (int i = 0; i < 12; ++i) {
    for (int g = 0; g < 8; ++g) {
      ASSERT_EQ(warm_result.counts.At(i, g), cold_result.counts.At(i, g));
    }
  }
  EXPECT_FALSE(cold_result.diag.stage1_warm);
  EXPECT_TRUE(warm_result.diag.stage1_warm);
  EXPECT_EQ(warm_result.diag.stage1_samples, cold_result.diag.stage1_samples);
}

TEST(HistSimMachineTest, WarmBeginValidation) {
  Scenario s = MakeScenario(1000, 22);
  CountMatrix counts(12, 8);

  // Missing counts.
  {
    Stage1Prior prior;
    prior.rows_drawn = 100;
    HistSimMachine machine(TestParams(), s.target);
    EXPECT_EQ(machine.Begin(12, 8, s.store->num_rows(), &prior).code(),
              StatusCode::kInvalidArgument);
    EXPECT_TRUE(machine.failed());
  }
  // Non-positive row count.
  {
    Stage1Prior prior;
    prior.counts = &counts;
    prior.rows_drawn = 0;
    HistSimMachine machine(TestParams(), s.target);
    EXPECT_EQ(machine.Begin(12, 8, s.store->num_rows(), &prior).code(),
              StatusCode::kInvalidArgument);
  }
  // Domain mismatch.
  {
    CountMatrix wrong(5, 8);
    Stage1Prior prior;
    prior.counts = &wrong;
    prior.rows_drawn = 100;
    HistSimMachine machine(TestParams(), s.target);
    EXPECT_EQ(machine.Begin(12, 8, s.store->num_rows(), &prior).code(),
              StatusCode::kInvalidArgument);
  }
  // Exhausted-flag size mismatch.
  {
    std::vector<bool> wrong_size(5, false);
    Stage1Prior prior;
    prior.counts = &counts;
    prior.rows_drawn = 100;
    prior.exhausted = &wrong_size;
    HistSimMachine machine(TestParams(), s.target);
    EXPECT_EQ(machine.Begin(12, 8, s.store->num_rows(), &prior).code(),
              StatusCode::kInvalidArgument);
  }
}

TEST(HistSimMachineTest, WarmBeginAllConsumedCompletesInstantly) {
  // A prior covering the whole relation carries exact counts: the
  // machine must finish at Begin with the ground-truth result, never
  // issuing a demand.
  Scenario s = MakeScenario(500, 23);
  Stage1Prior prior;
  prior.counts = &s.exact;
  prior.rows_drawn = s.store->num_rows();
  prior.all_consumed = true;
  HistSimMachine machine(TestParams(), s.target);
  ASSERT_TRUE(machine.Begin(12, 8, s.store->num_rows(), &prior).ok());
  ASSERT_TRUE(machine.done());
  EXPECT_EQ(machine.demand().kind, SampleDemand::Kind::kNone);
  MatchResult result = machine.TakeResult();
  std::set<int> got(result.topk.begin(), result.topk.end());
  EXPECT_EQ(got, (std::set<int>{0, 1, 2}));
  EXPECT_TRUE(result.diag.data_exhausted);
  EXPECT_TRUE(result.diag.stage1_warm);
  for (int i = 0; i < 12; ++i) {
    EXPECT_TRUE(result.exact[i]);
    EXPECT_EQ(result.counts.RowTotal(i), s.exact.RowTotal(i));
  }
}

TEST(HistSimMachineTest, OverlappingPriorDropsDonorExhaustionFlags) {
  // A donor's exhaustion flag certifies counts exact only within the
  // DONOR's window. An overlapping caller rescans those same rows, so
  // honoring the flag would freeze candidate 0 as "exact" while every
  // later Supply keeps merging its duplicate rows — inflated counts
  // reported as exact. The machine must drop the flags (behaving as if
  // the donor sent none) and re-derive exactness from its own window
  // with the prior subtracted.
  std::vector<int64_t> rows = {150, 1500, 1500, 1500, 1500};
  auto dists = PlantedDistributions(5, 4, {0.0, 0.08, 0.16, 0.24, 0.3});
  auto store = MakeExactStore(rows, dists, 25);
  CountMatrix exact = ComputeExactCounts(*store, 0, {1}).value();
  HistSimParams p = TestParams();
  p.k = 2;

  // Donor window: all of candidate 0's rows (exhausted in that window)
  // plus half of every other candidate's.
  CountMatrix prior_counts(5, 4);
  int64_t prior_rows = 0;
  for (int i = 0; i < 5; ++i) {
    int64_t* row = prior_counts.MutableData() + i * 4;
    for (int g = 0; g < 4; ++g) {
      row[g] = i == 0 ? exact.At(i, g) : exact.At(i, g) / 2;
      prior_counts.MutableRowTotals()[i] += row[g];
      prior_rows += row[g];
    }
  }
  std::vector<bool> donor_exhausted(5, false);
  donor_exhausted[0] = true;

  Stage1Prior prior;
  prior.counts = &prior_counts;
  prior.rows_drawn = prior_rows;
  prior.exhausted = &donor_exhausted;
  prior.overlapping = true;
  Stage1Prior no_flags = prior;
  no_flags.exhausted = nullptr;

  const Distribution target = UniformDistribution(4);
  HistSimMachine with_flags(p, target);
  HistSimMachine without_flags(p, target);
  ASSERT_TRUE(with_flags.Begin(5, 4, store->num_rows(), &prior).ok());
  ASSERT_TRUE(without_flags.Begin(5, 4, store->num_rows(), &no_flags).ok());

  auto s1 = RowSampler::Create(store, 0, {1}, 73).value();
  auto s2 = RowSampler::Create(store, 0, {1}, 73).value();
  int phases = 0;
  while (!with_flags.done() && !without_flags.done()) {
    ASSERT_LT(phases++, 100) << "machines do not converge";
    ASSERT_EQ(with_flags.demand().kind, SampleDemand::Kind::kTargets);
    ASSERT_EQ(with_flags.demand().targets, without_flags.demand().targets);
    for (RowSampler* sampler : {s1.get(), s2.get()}) {
      HistSimMachine& machine =
          sampler == s1.get() ? with_flags : without_flags;
      CountMatrix fresh(5, 4);
      std::vector<bool> exhausted(5, false);
      const int64_t before = sampler->rows_consumed();
      sampler->SampleUntilTargets(machine.demand().targets, &fresh,
                                  &exhausted);
      ASSERT_TRUE(machine
                      .Supply(fresh, exhausted, sampler->AllConsumed(),
                              sampler->rows_consumed() - before)
                      .ok());
    }
  }
  ASSERT_TRUE(with_flags.done());
  ASSERT_TRUE(without_flags.done());
  MatchResult got = with_flags.TakeResult();
  MatchResult want = without_flags.TakeResult();
  EXPECT_EQ(got.topk, want.topk);
  EXPECT_EQ(got.distances, want.distances);
  EXPECT_EQ(got.exact, want.exact);
  // The tiny store exhausts under TestParams' sample demands: exact
  // must mean exact, with the donor's duplicated rows subtracted.
  ASSERT_TRUE(got.diag.data_exhausted);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(got.exact[i]);
    EXPECT_EQ(got.counts.RowTotal(i), exact.RowTotal(i))
        << "candidate " << i << " inflated by the overlapping prior";
  }
}

TEST(HistSimTest, DiagnosticsArePopulated) {
  Scenario s = MakeScenario(20000, 15);
  auto sampler = RowSampler::Create(s.store, 0, {1}, 53).value();
  HistSimParams p = TestParams();
  HistSim histsim(p, s.target);
  auto result = histsim.Run(sampler.get());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->diag.stage1_samples, p.stage1_samples);
  EXPECT_GE(result->diag.rounds, 1);
  EXPECT_GT(result->diag.stage2_samples, 0);
  EXPECT_EQ(result->diag.chosen_k, 3);
}

}  // namespace
}  // namespace fastmatch
