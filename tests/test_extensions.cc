// Appendix A extensions, end to end.

#include <gtest/gtest.h>

#include <set>

#include "core/verify.h"
#include "engine/executor.h"
#include "engine/measure_biased.h"
#include "test_helpers.h"
#include "util/random.h"

namespace fastmatch {
namespace {

using testing_util::MakeExactStore;
using testing_util::PlantedDistributions;

TEST(ExtensionsTest, CompositeGroupByThroughEngine) {
  // A.1.3: two grouping attributes; |VX| = 4 * 3 = 12.
  std::vector<Value> z, x1, x2;
  Rng rng(1);
  for (int i = 0; i < 60000; ++i) {
    const Value zi = static_cast<Value>(rng.Uniform(4));
    z.push_back(zi);
    // Candidate 0 and 1 share a joint (x1, x2) shape; 2 and 3 differ.
    if (zi < 2) {
      x1.push_back(static_cast<Value>(rng.Uniform(2)));
      x2.push_back(static_cast<Value>(rng.Uniform(2)));
    } else {
      x1.push_back(static_cast<Value>(2 + rng.Uniform(2)));
      x2.push_back(static_cast<Value>(rng.Uniform(3)));
    }
  }
  auto store = ColumnStore::FromColumns(
                   Schema({{"Z", 4}, {"X1", 4}, {"X2", 3}}),
                   {std::move(z), std::move(x1), std::move(x2)})
                   .value();
  auto exact = ComputeExactCounts(*store, 0, {1, 2}).value();
  ASSERT_EQ(exact.num_groups(), 12);

  BoundQuery q;
  q.store = store;
  q.z_index = BitmapIndex::Build(*store, 0).value();
  q.z_attr = 0;
  q.x_attrs = {1, 2};
  q.target = exact.NormalizedRow(0);  // candidate 0's joint histogram
  q.params.k = 2;
  q.params.epsilon = 0.1;
  q.params.delta = 0.05;
  q.params.sigma = 0;
  q.params.stage1_samples = 5000;
  auto out = RunQuery(q, Approach::kFastMatch);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  std::set<int> got(out->match.topk.begin(), out->match.topk.end());
  EXPECT_EQ(got, (std::set<int>{0, 1}));
}

TEST(ExtensionsTest, L2MetricEndToEnd) {
  // A.2.2: the l2 metric with guarantees inherited from the l1 bound.
  std::vector<double> offsets = {0.0, 0.01, 0.15, 0.2, 0.25};
  auto store = MakeExactStore(std::vector<int64_t>(5, 20000),
                              PlantedDistributions(5, 8, offsets), 2, 50);
  BoundQuery q;
  q.store = store;
  q.z_index = BitmapIndex::Build(*store, 0).value();
  q.z_attr = 0;
  q.x_attrs = {1};
  q.target = UniformDistribution(8);
  q.params.k = 2;
  q.params.metric = Metric::kL2;
  q.params.epsilon = 0.05;
  q.params.delta = 0.05;
  q.params.sigma = 0;
  q.params.stage1_samples = 5000;
  auto out = RunQuery(q, Approach::kFastMatch);
  ASSERT_TRUE(out.ok());
  std::set<int> got(out->match.topk.begin(), out->match.topk.end());
  EXPECT_EQ(got, (std::set<int>{0, 1}));
}

TEST(ExtensionsTest, SumAggregationViaMeasureBiasedSample) {
  // A.1.1 end to end: find candidates whose SUM(Y) histogram matches a
  // target by running COUNT matching over the measure-biased sample.
  std::vector<Value> z, x, y;
  Rng rng(3);
  for (int i = 0; i < 80000; ++i) {
    const Value zi = static_cast<Value>(rng.Uniform(4));
    const Value xi = static_cast<Value>(rng.Uniform(4));
    z.push_back(zi);
    x.push_back(xi);
    // Candidates 0/1: revenue concentrated on bin x (weights x+1);
    // candidates 2/3: reversed.
    const Value yi = zi < 2 ? (xi + 1) : (4 - xi);
    y.push_back(yi);
  }
  auto store = ColumnStore::FromColumns(
                   Schema({{"Z", 4}, {"X", 4}, {"Y", 8}}),
                   {std::move(z), std::move(x), std::move(y)})
                   .value();

  // Exact SUM(Y) histogram of candidate 0 is the target.
  std::vector<double> sum0(4, 0);
  for (RowId r = 0; r < store->num_rows(); ++r) {
    if (store->column(0).Get(r) == 0) {
      sum0[store->column(1).Get(r)] +=
          static_cast<double>(store->column(2).Get(r));
    }
  }
  const Distribution target = Normalize(sum0);

  auto sample = BuildMeasureBiasedSample(*store, 2, 60000, 17).value();
  BoundQuery q;
  q.store = sample;
  q.z_index = BitmapIndex::Build(*sample, 0).value();
  q.z_attr = 0;
  q.x_attrs = {1};
  q.target = target;
  q.params.k = 2;
  q.params.epsilon = 0.08;
  q.params.delta = 0.05;
  q.params.sigma = 0;
  q.params.stage1_samples = 5000;
  auto out = RunQuery(q, Approach::kFastMatch);
  ASSERT_TRUE(out.ok());
  std::set<int> got(out->match.topk.begin(), out->match.topk.end());
  EXPECT_EQ(got, (std::set<int>{0, 1}));
}

TEST(ExtensionsTest, SeparateEpsilonsThroughExecutor) {
  // A.2.1: a loose separation bound with a tight reconstruction bound.
  std::vector<double> offsets = {0.0, 0.02, 0.2, 0.25, 0.3};
  auto store = MakeExactStore(std::vector<int64_t>(5, 30000),
                              PlantedDistributions(5, 8, offsets), 4, 50);
  auto exact = ComputeExactCounts(*store, 0, {1}).value();
  BoundQuery q;
  q.store = store;
  q.z_index = BitmapIndex::Build(*store, 0).value();
  q.z_attr = 0;
  q.x_attrs = {1};
  q.target = UniformDistribution(8);
  q.params.k = 2;
  q.params.eps_separation = 0.15;
  q.params.eps_reconstruction = 0.04;
  q.params.epsilon = 0.15;
  q.params.delta = 0.05;
  q.params.sigma = 0;
  q.params.stage1_samples = 5000;
  auto out = RunQuery(q, Approach::kFastMatch);
  ASSERT_TRUE(out.ok());
  for (int i : out->match.topk) {
    const double err =
        HistDistance(Metric::kL1, out->match.counts.NormalizedRow(i),
                     exact.NormalizedRow(i));
    EXPECT_LT(err, 0.04) << "candidate " << i;
  }
}

TEST(ExtensionsTest, KRangeThroughExecutor) {
  // A.2.3: k in [2, 6] with a planted gap after the 4th candidate.
  std::vector<double> offsets = {0.0, 0.01, 0.02, 0.03,
                                 0.3, 0.32, 0.34, 0.36};
  auto store = MakeExactStore(std::vector<int64_t>(8, 20000),
                              PlantedDistributions(8, 8, offsets), 5, 50);
  BoundQuery q;
  q.store = store;
  q.z_index = BitmapIndex::Build(*store, 0).value();
  q.z_attr = 0;
  q.x_attrs = {1};
  q.target = UniformDistribution(8);
  q.params.k = 2;
  q.params.k_hi = 6;
  q.params.epsilon = 0.05;
  q.params.delta = 0.05;
  q.params.sigma = 0;
  q.params.stage1_samples = 5000;
  auto out = RunQuery(q, Approach::kFastMatch);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->match.diag.chosen_k, 4);
  EXPECT_EQ(out->match.topk.size(), 4u);
}

}  // namespace
}  // namespace fastmatch
