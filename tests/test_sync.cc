// Runtime tests of the annotated synchronization wrappers
// (util/sync.h): mutual exclusion, MutexLock's Unlock()/Lock() window,
// TryLock, and CondVar wait/notify + timed-wait semantics. The
// compile-time half — the thread-safety analysis rejecting misuse — is
// proven by tests/compile_fail/.

#include "util/sync.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

namespace fastmatch {
namespace {

TEST(MutexTest, MutualExclusionUnderContention) {
  Mutex mu;
  int count = 0;
  std::vector<std::thread> threads;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(&mu);
        ++count;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(count, kThreads * kIters);
}

TEST(MutexTest, TryLockReportsContention) {
  Mutex mu;
  ASSERT_TRUE(mu.TryLock());
  // Held here: another thread's TryLock must fail (std::mutex TryLock
  // on the owning thread would be UB, so probe from a second thread).
  bool second = true;
  std::thread probe([&] { second = mu.TryLock(); });
  probe.join();
  EXPECT_FALSE(second);
  mu.Unlock();
  std::thread again([&] {
    ASSERT_TRUE(mu.TryLock());
    mu.Unlock();
  });
  again.join();
}

TEST(MutexLockTest, UnlockWindowReleasesTheMutex) {
  Mutex mu;
  MutexLock lock(&mu);
  lock.Unlock();
  // The mutex must be genuinely free in the window.
  std::thread probe([&] {
    MutexLock inner(&mu);
  });
  probe.join();
  lock.Lock();  // and re-acquirable afterwards
}

TEST(MutexLockTest, DestructorAfterUnlockDoesNotDoubleRelease) {
  Mutex mu;
  {
    MutexLock lock(&mu);
    lock.Unlock();
    // Scope end with held_ == false: the destructor must not unlock an
    // unheld mutex (UB with std::mutex underneath).
  }
  {
    MutexLock lock(&mu);  // still usable
  }
}

TEST(CondVarTest, WaitNotifyRoundTrip) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(&mu);
  });
  {
    MutexLock lock(&mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  int awake = 0;
  std::vector<std::thread> waiters;
  constexpr int kWaiters = 3;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(&mu);
      while (!go) cv.Wait(&mu);
      ++awake;
    });
  }
  {
    MutexLock lock(&mu);
    go = true;
  }
  cv.NotifyAll();
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(awake, kWaiters);
}

TEST(CondVarTest, WaitForTimesOutWhenNeverNotified) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(&mu);
  EXPECT_EQ(cv.WaitFor(&mu, std::chrono::milliseconds(5)),
            std::cv_status::timeout);
}

TEST(CondVarTest, WaitUntilReturnsNoTimeoutOnNotify) {
  Mutex mu;
  CondVar cv;
  bool waiting = false;
  bool ready = false;
  std::cv_status last = std::cv_status::timeout;
  std::thread waiter([&] {
    MutexLock lock(&mu);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    waiting = true;
    while (!ready) {
      last = cv.WaitUntil(&mu, deadline);
      if (last == std::cv_status::timeout) break;
    }
  });
  // Only notify once the waiter is provably inside WaitUntil: observing
  // waiting == true under the lock means the waiter set it and then
  // released the mutex, which Wait* do only while blocking.
  for (;;) {
    MutexLock lock(&mu);
    if (waiting) {
      ready = true;
      break;
    }
  }
  cv.NotifyOne();
  waiter.join();
  EXPECT_EQ(last, std::cv_status::no_timeout);
}

TEST(CondVarTest, WaitReacquiresTheLockBeforeReturning) {
  // After Wait returns, the waiter must hold the mutex again: the
  // notifier immediately tries to take the lock and mutate; the waiter
  // reads its guarded state consistently after waking.
  Mutex mu;
  CondVar cv;
  int phase = 0;
  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (phase != 1) cv.Wait(&mu);
    // Holding the lock here; the main thread's phase=2 write must not
    // interleave until this critical section ends.
    EXPECT_EQ(phase, 1);
    phase = 3;
  });
  {
    MutexLock lock(&mu);
    phase = 1;
  }
  cv.NotifyOne();
  waiter.join();
  MutexLock lock(&mu);
  EXPECT_EQ(phase, 3);
}

}  // namespace
}  // namespace fastmatch
