#include "index/bitvector.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace fastmatch {
namespace {

TEST(BitVectorTest, SetGetClear) {
  BitVector bv(130);
  EXPECT_FALSE(bv.Get(0));
  bv.Set(0);
  bv.Set(63);
  bv.Set(64);
  bv.Set(129);
  EXPECT_TRUE(bv.Get(0));
  EXPECT_TRUE(bv.Get(63));
  EXPECT_TRUE(bv.Get(64));
  EXPECT_TRUE(bv.Get(129));
  EXPECT_FALSE(bv.Get(1));
  EXPECT_FALSE(bv.Get(128));
  bv.Clear(63);
  EXPECT_FALSE(bv.Get(63));
}

TEST(BitVectorTest, PopcountMatchesSetBits) {
  BitVector bv(1000);
  Rng rng(3);
  int expected = 0;
  std::vector<bool> ref(1000, false);
  for (int i = 0; i < 400; ++i) {
    int64_t pos = static_cast<int64_t>(rng.Uniform(1000));
    if (!ref[static_cast<size_t>(pos)]) {
      ref[static_cast<size_t>(pos)] = true;
      ++expected;
    }
    bv.Set(pos);
  }
  EXPECT_EQ(bv.Popcount(), expected);
}

TEST(BitVectorTest, PopcountRangeBruteForce) {
  constexpr int64_t kBits = 300;
  BitVector bv(kBits);
  Rng rng(17);
  std::vector<bool> ref(kBits, false);
  for (int i = 0; i < 120; ++i) {
    int64_t pos = static_cast<int64_t>(rng.Uniform(kBits));
    ref[static_cast<size_t>(pos)] = true;
    bv.Set(pos);
  }
  for (int64_t begin = 0; begin < kBits; begin += 13) {
    for (int64_t end = begin; end <= kBits; end += 29) {
      int64_t expected = 0;
      for (int64_t i = begin; i < end; ++i) expected += ref[static_cast<size_t>(i)];
      EXPECT_EQ(bv.PopcountRange(begin, end), expected)
          << "[" << begin << ", " << end << ")";
      EXPECT_EQ(bv.AnyInRange(begin, end), expected > 0);
    }
  }
}

TEST(BitVectorTest, RangeQueriesOnWordBoundaries) {
  BitVector bv(256);
  bv.Set(64);
  EXPECT_TRUE(bv.AnyInRange(64, 65));
  EXPECT_TRUE(bv.AnyInRange(0, 65));
  EXPECT_TRUE(bv.AnyInRange(64, 128));
  EXPECT_FALSE(bv.AnyInRange(0, 64));
  EXPECT_FALSE(bv.AnyInRange(65, 256));
  EXPECT_EQ(bv.PopcountRange(0, 256), 1);
  EXPECT_EQ(bv.PopcountRange(64, 65), 1);
}

TEST(BitVectorTest, EmptyRange) {
  BitVector bv(100);
  bv.Set(5);
  EXPECT_EQ(bv.PopcountRange(10, 10), 0);
  EXPECT_FALSE(bv.AnyInRange(10, 10));
  EXPECT_FALSE(bv.AnyInRange(10, 5));  // inverted treated as empty
}

TEST(BitVectorTest, SetAllRespectsSize) {
  BitVector bv(70);
  bv.SetAll();
  EXPECT_EQ(bv.Popcount(), 70);
  for (int64_t i = 0; i < 70; ++i) EXPECT_TRUE(bv.Get(i));
}

TEST(BitVectorTest, SetAllExactWordMultiple) {
  BitVector bv(128);
  bv.SetAll();
  EXPECT_EQ(bv.Popcount(), 128);
}

TEST(BitVectorTest, CopySemantics) {
  BitVector a(100);
  a.Set(42);
  BitVector b = a;
  b.Set(43);
  EXPECT_TRUE(a.Get(42));
  EXPECT_FALSE(a.Get(43));
  EXPECT_TRUE(b.Get(42));
  EXPECT_TRUE(b.Get(43));
}

}  // namespace
}  // namespace fastmatch
