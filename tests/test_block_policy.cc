#include "engine/block_policy.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace fastmatch {
namespace {

std::shared_ptr<ColumnStore> RandomStore(int rows, int vz, uint64_t seed,
                                         int rows_per_block) {
  std::vector<Value> z, x;
  Rng rng(seed);
  for (int i = 0; i < rows; ++i) {
    z.push_back(static_cast<Value>(rng.Uniform(static_cast<uint64_t>(vz))));
    x.push_back(static_cast<Value>(rng.Uniform(4)));
  }
  StorageOptions options;
  options.rows_per_block_override = rows_per_block;
  return ColumnStore::FromColumns(
             Schema({{"Z", static_cast<uint32_t>(vz)}, {"X", 4}}),
             {std::move(z), std::move(x)}, options)
      .value();
}

TEST(BlockPolicyTest, NaiveMatchesBruteForce) {
  auto store = RandomStore(997, 40, 1, 7);
  auto index = BitmapIndex::Build(*store, 0).value();
  const std::vector<int> active = {3, 17, 25};
  std::vector<uint8_t> marks;
  MarkAnyActiveNaive(*index, active, 0, static_cast<int>(store->num_blocks()),
                     &marks);
  for (BlockId b = 0; b < store->num_blocks(); ++b) {
    RowId begin, end;
    store->BlockRowRange(b, &begin, &end);
    bool expected = false;
    for (RowId r = begin; r < end; ++r) {
      const Value v = store->column(0).Get(r);
      for (int c : active) {
        if (v == static_cast<Value>(c)) expected = true;
      }
    }
    EXPECT_EQ(marks[static_cast<size_t>(b)] != 0, expected) << "block " << b;
  }
}

TEST(BlockPolicyTest, LookaheadAgreesWithNaiveEverywhere) {
  auto store = RandomStore(5003, 120, 2, 11);
  auto index = BitmapIndex::Build(*store, 0).value();
  Rng rng(3);
  std::vector<uint64_t> scratch;
  for (int trial = 0; trial < 20; ++trial) {
    // Random active set.
    std::vector<int> active;
    for (int c = 0; c < 120; ++c) {
      if (rng.NextBernoulli(0.05)) active.push_back(c);
    }
    if (active.empty()) active.push_back(static_cast<int>(rng.Uniform(120)));
    // Random window.
    const int64_t nb = store->num_blocks();
    const BlockId start = static_cast<BlockId>(rng.Uniform(static_cast<uint64_t>(nb)));
    const int count =
        1 + static_cast<int>(rng.Uniform(static_cast<uint64_t>(nb - start)));
    std::vector<uint8_t> naive, lookahead;
    MarkAnyActiveNaive(*index, active, start, count, &naive);
    MarkAnyActiveLookahead(*index, active, start, count, &scratch, &lookahead);
    EXPECT_EQ(naive, lookahead) << "trial " << trial << " start " << start
                                << " count " << count;
  }
}

TEST(BlockPolicyTest, EmptyActiveSetMarksNothing) {
  auto store = RandomStore(500, 10, 4, 10);
  auto index = BitmapIndex::Build(*store, 0).value();
  std::vector<uint8_t> marks;
  std::vector<uint64_t> scratch;
  MarkAnyActiveNaive(*index, {}, 0, static_cast<int>(store->num_blocks()),
                     &marks);
  for (uint8_t m : marks) EXPECT_EQ(m, 0);
  MarkAnyActiveLookahead(*index, {}, 0,
                         static_cast<int>(store->num_blocks()), &scratch,
                         &marks);
  for (uint8_t m : marks) EXPECT_EQ(m, 0);
}

TEST(BlockPolicyTest, ZeroCountWindow) {
  auto store = RandomStore(500, 10, 5, 10);
  auto index = BitmapIndex::Build(*store, 0).value();
  std::vector<uint8_t> marks;
  std::vector<uint64_t> scratch;
  MarkAnyActiveLookahead(*index, {1}, 3, 0, &scratch, &marks);
  EXPECT_TRUE(marks.empty());
}

TEST(BlockPolicyTest, WindowsAtBitVectorWordBoundaries) {
  auto store = RandomStore(2000, 6, 6, 2);  // 1000 blocks, many words
  auto index = BitmapIndex::Build(*store, 0).value();
  std::vector<uint64_t> scratch;
  const std::vector<int> active = {2, 4};
  for (BlockId start : {0L, 63L, 64L, 65L, 127L, 128L, 500L}) {
    for (int count : {1, 63, 64, 65, 128, 200}) {
      if (start + count > store->num_blocks()) continue;
      std::vector<uint8_t> naive, lookahead;
      MarkAnyActiveNaive(*index, active, start, count, &naive);
      MarkAnyActiveLookahead(*index, active, start, count, &scratch,
                             &lookahead);
      EXPECT_EQ(naive, lookahead) << "start " << start << " count " << count;
    }
  }
}

TEST(BlockPolicyTest, LocalizedCandidateMarksOnlyItsBlocks) {
  // Unshuffled store: candidate 1 occupies rows 100..199 only -> exactly
  // blocks 10..19 at 10 rows/block.
  std::vector<Value> z(500, 0), x(500, 0);
  for (int i = 100; i < 200; ++i) z[static_cast<size_t>(i)] = 1;
  StorageOptions options;
  options.rows_per_block_override = 10;
  auto store = ColumnStore::FromColumns(Schema({{"Z", 3}, {"X", 4}}),
                                        {std::move(z), std::move(x)}, options)
                   .value();
  auto index = BitmapIndex::Build(*store, 0).value();
  std::vector<uint8_t> marks;
  MarkAnyActiveNaive(*index, {1}, 0, 50, &marks);
  for (int b = 0; b < 50; ++b) {
    EXPECT_EQ(marks[static_cast<size_t>(b)] != 0, b >= 10 && b < 20)
        << "block " << b;
  }
}

}  // namespace
}  // namespace fastmatch
