#include "core/target.h"

#include <gtest/gtest.h>

namespace fastmatch {
namespace {

CountMatrix ExampleCounts() {
  // 3 candidates x 4 groups.
  CountMatrix m(3, 4);
  // Candidate 0: uniform-ish.
  for (int g = 0; g < 4; ++g) {
    m.Add(0, g);
    m.Add(0, g);
  }
  // Candidate 1: peaked on group 0.
  for (int i = 0; i < 10; ++i) m.Add(1, 0);
  m.Add(1, 1);
  // Candidate 2: empty.
  return m;
}

TEST(TargetTest, ExplicitNormalizedAndChecked) {
  auto m = ExampleCounts();
  auto d = ResolveTarget(TargetSpec::Explicit({2, 1, 1, 0}), m, Metric::kL1);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ((*d)[0], 0.5);
  EXPECT_DOUBLE_EQ((*d)[3], 0.0);

  auto wrong_size =
      ResolveTarget(TargetSpec::Explicit({1, 1}), m, Metric::kL1);
  EXPECT_EQ(wrong_size.status().code(), StatusCode::kInvalidArgument);

  auto zero = ResolveTarget(TargetSpec::Explicit({0, 0, 0, 0}), m,
                            Metric::kL1);
  EXPECT_EQ(zero.status().code(), StatusCode::kInvalidArgument);
}

TEST(TargetTest, CandidateUsesExactRow) {
  auto m = ExampleCounts();
  auto d = ResolveTarget(TargetSpec::Candidate(1), m, Metric::kL1);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR((*d)[0], 10.0 / 11, 1e-12);
  EXPECT_NEAR((*d)[1], 1.0 / 11, 1e-12);
}

TEST(TargetTest, EmptyCandidateRejected) {
  auto m = ExampleCounts();
  auto d = ResolveTarget(TargetSpec::Candidate(2), m, Metric::kL1);
  EXPECT_EQ(d.status().code(), StatusCode::kFailedPrecondition);
}

TEST(TargetTest, OutOfRangeCandidateRejected) {
  auto m = ExampleCounts();
  auto d = ResolveTarget(TargetSpec::Candidate(9), m, Metric::kL1);
  EXPECT_EQ(d.status().code(), StatusCode::kOutOfRange);
}

TEST(TargetTest, ClosestToUniformPicksUniformCandidate) {
  auto m = ExampleCounts();
  auto d = ResolveTarget(TargetSpec::ClosestToUniform(), m, Metric::kL1);
  ASSERT_TRUE(d.ok());
  // Candidate 0 is exactly uniform; the resolved target is its histogram.
  for (double x : *d) EXPECT_DOUBLE_EQ(x, 0.25);
}

TEST(TargetTest, ClosestToUniformSkipsEmptyCandidates) {
  CountMatrix m(2, 2);
  m.Add(1, 0);  // candidate 0 empty; candidate 1 = [1, 0]
  auto d = ResolveTarget(TargetSpec::ClosestToUniform(), m, Metric::kL1);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ((*d)[0], 1.0);
}

TEST(TargetTest, AllEmptyFails) {
  CountMatrix m(2, 2);
  auto d = ResolveTarget(TargetSpec::ClosestToUniform(), m, Metric::kL1);
  EXPECT_EQ(d.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace fastmatch
