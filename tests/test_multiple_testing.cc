#include "stats/multiple_testing.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace fastmatch {
namespace {

std::vector<double> Logs(std::vector<double> p) {
  for (auto& x : p) x = std::log(x);
  return p;
}

TEST(HolmBonferroniTest, TextbookExample) {
  // Four P-values at alpha = 0.05: thresholds 0.0125, 0.0167, 0.025, 0.05.
  // Sorted p: 0.005 <= 0.0125 (reject), 0.011 <= 0.0167 (reject),
  // 0.02 <= 0.025 (reject), 0.1 > 0.05 (retain).
  auto rejected =
      HolmBonferroniReject(Logs({0.02, 0.005, 0.1, 0.011}), std::log(0.05));
  std::sort(rejected.begin(), rejected.end());
  EXPECT_EQ(rejected, (std::vector<int>{0, 1, 3}));
}

TEST(HolmBonferroniTest, StepDownStopsAtFirstFailure) {
  // Sorted: 0.001 (reject at 0.05/3), 0.04 > 0.05/2 = 0.025 (stop).
  // The third p = 0.045 <= 0.05 individually but must NOT be rejected.
  auto rejected =
      HolmBonferroniReject(Logs({0.045, 0.001, 0.04}), std::log(0.05));
  EXPECT_EQ(rejected, (std::vector<int>{1}));
}

TEST(HolmBonferroniTest, RejectsAllWhenAllTiny) {
  auto rejected =
      HolmBonferroniReject(Logs({1e-10, 1e-12, 1e-11}), std::log(0.05));
  EXPECT_EQ(rejected.size(), 3u);
}

TEST(HolmBonferroniTest, RejectsNoneWhenAllLarge) {
  auto rejected = HolmBonferroniReject(Logs({0.5, 0.9, 0.7}), std::log(0.05));
  EXPECT_TRUE(rejected.empty());
}

TEST(HolmBonferroniTest, EmptyFamily) {
  EXPECT_TRUE(HolmBonferroniReject({}, std::log(0.05)).empty());
}

TEST(HolmBonferroniTest, UniformlyMorePowerfulThanBonferroni) {
  // Any Bonferroni rejection is also a Holm rejection (the paper's stated
  // reason for preferring Holm).
  const std::vector<double> ps = Logs({0.012, 0.002, 0.3, 0.04, 0.018});
  const double log_alpha = std::log(0.05);
  auto bonf = BonferroniReject(ps, log_alpha);
  auto holm = HolmBonferroniReject(ps, log_alpha);
  for (int idx : bonf) {
    EXPECT_NE(std::find(holm.begin(), holm.end(), idx), holm.end())
        << "Bonferroni rejected " << idx << " but Holm did not";
  }
  // And in this instance Holm rejects strictly more.
  EXPECT_GT(holm.size(), bonf.size());
}

TEST(BonferroniTest, ThresholdIsAlphaOverN) {
  // alpha=0.05, n=5 -> threshold 0.01.
  auto rejected =
      BonferroniReject(Logs({0.009, 0.011, 0.01, 0.5, 1e-5}), std::log(0.05));
  std::sort(rejected.begin(), rejected.end());
  EXPECT_EQ(rejected, (std::vector<int>{0, 2, 4}));
}

TEST(SimultaneousTest, AllOrNothing) {
  const double log_alpha = std::log(0.01);
  EXPECT_TRUE(SimultaneousReject(Logs({0.005, 0.0001, 0.01}), log_alpha));
  EXPECT_FALSE(SimultaneousReject(Logs({0.005, 0.02, 0.0001}), log_alpha));
}

TEST(SimultaneousTest, EmptyFamilyRejectsVacuously) {
  EXPECT_TRUE(SimultaneousReject({}, std::log(0.01)));
}

TEST(SimultaneousTest, HandlesNegInfPValues) {
  std::vector<double> ps = {-std::numeric_limits<double>::infinity(), -50.0};
  EXPECT_TRUE(SimultaneousReject(ps, std::log(1e-20)));
}

TEST(HolmBonferroniTest, FamilyWiseErrorSimulation) {
  // All nulls true with uniform P-values: the probability of >= 1
  // rejection must be <= alpha. Simulate and bound empirically.
  uint64_t state = 12345;
  auto next_uniform = [&]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>((state >> 11) + 1) * 0x1.0p-53;
  };
  const double alpha = 0.05;
  int families_with_rejection = 0;
  const int kTrials = 2000;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<double> ps(20);
    for (auto& p : ps) p = std::log(next_uniform());
    if (!HolmBonferroniReject(ps, std::log(alpha)).empty()) {
      ++families_with_rejection;
    }
  }
  // Expected <= 100; allow ~3.5 sigma of slack above alpha * kTrials.
  EXPECT_LT(families_with_rejection, 135);
}

}  // namespace
}  // namespace fastmatch
