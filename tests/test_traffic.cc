// Tests of the multi-query traffic generators: single-store query
// batches (MakeQueryBatch) and the open-loop multi-store arrival stream
// (MakeTrafficStream) that feeds the service-tier scheduler.

#include "workload/traffic.h"

#include <gtest/gtest.h>

#include <map>

#include "test_helpers.h"

namespace fastmatch {
namespace {

using testing_util::MakeExactStore;
using testing_util::PlantedDistributions;

std::shared_ptr<ColumnStore> MakeStore(uint64_t seed) {
  auto dists = PlantedDistributions(6, 4, {0.0, 0.05, 0.1, 0.15, 0.2, 0.25});
  return MakeExactStore(std::vector<int64_t>(6, 500), dists, seed, 50);
}

HistSimParams TrafficParams() {
  HistSimParams p;
  p.k = 2;
  p.epsilon = 0.1;
  p.delta = 0.1;
  p.stage1_samples = 200;
  return p;
}

TEST(MakeQueryBatchTest, Validation) {
  auto store = MakeStore(1);
  TrafficOptions topt;
  topt.params = TrafficParams();
  EXPECT_FALSE(MakeQueryBatch(nullptr, nullptr, 0, {1}, topt).ok());
  topt.num_queries = 0;
  EXPECT_FALSE(MakeQueryBatch(store, nullptr, 0, {1}, topt).ok());
}

TEST(MakeQueryBatchTest, DistinctSeedsSharedTemplate) {
  auto store = MakeStore(2);
  TrafficOptions topt;
  topt.num_queries = 5;
  topt.params = TrafficParams();
  topt.seed = 7;
  auto batch = MakeQueryBatch(store, nullptr, 0, {1}, topt).value();
  ASSERT_EQ(batch.size(), 5u);
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i].store.get(), store.get());
    EXPECT_EQ(batch[i].z_attr, 0);
    EXPECT_EQ(batch[i].x_attrs, std::vector<int>{1});
    EXPECT_EQ(batch[i].target.size(), 4u);
    for (size_t j = i + 1; j < batch.size(); ++j) {
      EXPECT_NE(batch[i].params.seed, batch[j].params.seed);
    }
  }
}

TEST(MakeTrafficStreamTest, Validation) {
  auto store = MakeStore(3);
  TrafficStreamOptions sopt;
  sopt.params = TrafficParams();
  EXPECT_FALSE(MakeTrafficStream({}, sopt).ok());
  StoreTraffic bad_weight{store, nullptr, 0, {1}, /*weight=*/0.0};
  EXPECT_FALSE(MakeTrafficStream({bad_weight}, sopt).ok());
  StoreTraffic null_store{nullptr, nullptr, 0, {1}, 1.0};
  EXPECT_FALSE(MakeTrafficStream({null_store}, sopt).ok());
  StoreTraffic good{store, nullptr, 0, {1}, 1.0};
  sopt.num_queries = 0;
  EXPECT_FALSE(MakeTrafficStream({good}, sopt).ok());
}

TEST(MakeTrafficStreamTest, ArrivalsAreOrderedAndWeighted) {
  auto store_a = MakeStore(4);
  auto store_b = MakeStore(5);
  TrafficStreamOptions sopt;
  sopt.num_queries = 400;
  sopt.mean_interarrival_seconds = 0.001;
  sopt.params = TrafficParams();
  sopt.seed = 11;
  std::vector<StoreTraffic> stores = {
      {store_a, nullptr, 0, {1}, /*weight=*/3.0},
      {store_b, nullptr, 0, {1}, /*weight=*/1.0}};
  auto stream = MakeTrafficStream(stores, sopt).value();
  ASSERT_EQ(stream.size(), 400u);

  std::map<const ColumnStore*, int> per_store;
  double last = 0;
  for (const Arrival& arrival : stream) {
    EXPECT_GE(arrival.at_seconds, last);  // merged clock is monotone
    last = arrival.at_seconds;
    ASSERT_NE(arrival.query.store, nullptr);
    per_store[arrival.query.store.get()]++;
  }
  // 3:1 weights: the split should be roughly 300/100 (generous margin —
  // this is a seeded draw, not a statistical test).
  EXPECT_GT(per_store[store_a.get()], 240);
  EXPECT_GT(per_store[store_b.get()], 40);
  EXPECT_EQ(per_store[store_a.get()] + per_store[store_b.get()], 400);
  // Mean gap lands near the configured rate.
  EXPECT_GT(last, 0.001 * 400 * 0.7);
  EXPECT_LT(last, 0.001 * 400 * 1.4);
}

TEST(MakeTrafficStreamTest, DeterministicForASeed) {
  auto store = MakeStore(6);
  TrafficStreamOptions sopt;
  sopt.num_queries = 50;
  sopt.params = TrafficParams();
  sopt.seed = 21;
  std::vector<StoreTraffic> stores = {{store, nullptr, 0, {1}, 1.0}};
  auto a = MakeTrafficStream(stores, sopt).value();
  auto b = MakeTrafficStream(stores, sopt).value();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at_seconds, b[i].at_seconds);
    EXPECT_EQ(a[i].query.target, b[i].query.target);
    EXPECT_EQ(a[i].query.params.seed, b[i].query.params.seed);
  }
}

TEST(MakeTrafficStreamTest, LifecycleStampsOffByDefault) {
  auto store = MakeStore(7);
  TrafficStreamOptions sopt;
  sopt.num_queries = 40;
  sopt.params = TrafficParams();
  std::vector<StoreTraffic> stores = {{store, nullptr, 0, {1}, 1.0}};
  auto stream = MakeTrafficStream(stores, sopt).value();
  for (const Arrival& arrival : stream) {
    EXPECT_EQ(arrival.deadline_seconds, 0);
    EXPECT_LT(arrival.cancel_at_seconds, 0);
  }
}

TEST(MakeTrafficStreamTest, LifecycleStampsFollowTheFractions) {
  auto store = MakeStore(8);
  TrafficStreamOptions sopt;
  sopt.num_queries = 300;
  sopt.params = TrafficParams();
  sopt.seed = 5;
  sopt.deadline_fraction = 0.3;
  sopt.deadline_seconds = 0.02;
  sopt.cancel_fraction = 0.2;
  sopt.mean_cancel_delay_seconds = 0.004;
  std::vector<StoreTraffic> stores = {{store, nullptr, 0, {1}, 1.0}};
  auto stream = MakeTrafficStream(stores, sopt).value();

  int with_deadline = 0, with_cancel = 0;
  for (const Arrival& arrival : stream) {
    if (arrival.deadline_seconds > 0) {
      ++with_deadline;
      EXPECT_EQ(arrival.deadline_seconds, 0.02);
    }
    if (arrival.cancel_at_seconds >= 0) {
      ++with_cancel;
      // A cancel always happens strictly after the arrival it targets.
      EXPECT_GT(arrival.cancel_at_seconds, arrival.at_seconds);
    }
  }
  // Loose binomial bounds (n=300): the stamps track their fractions.
  EXPECT_GT(with_deadline, 300 * 0.3 / 2);
  EXPECT_LT(with_deadline, 300 * 0.3 * 2);
  EXPECT_GT(with_cancel, 300 * 0.2 / 2);
  EXPECT_LT(with_cancel, 300 * 0.2 * 2);
}

TEST(MakeTrafficStreamTest, ArrivalSequenceInvariantUnderLifecycleKnobs) {
  // The same seed must produce the same stores/gaps/targets whether or
  // not lifecycle stamps are enabled, so benches can compare policies
  // on one stream.
  auto store_a = MakeStore(9);
  auto store_b = MakeStore(10);
  std::vector<StoreTraffic> stores = {{store_a, nullptr, 0, {1}, 1.0},
                                      {store_b, nullptr, 0, {1}, 2.0}};
  TrafficStreamOptions plain;
  plain.num_queries = 80;
  plain.params = TrafficParams();
  plain.seed = 13;
  TrafficStreamOptions stamped = plain;
  stamped.deadline_fraction = 0.5;
  stamped.cancel_fraction = 0.25;
  auto a = MakeTrafficStream(stores, plain).value();
  auto b = MakeTrafficStream(stores, stamped).value();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at_seconds, b[i].at_seconds);
    EXPECT_EQ(a[i].query.store.get(), b[i].query.store.get());
    EXPECT_EQ(a[i].query.target, b[i].query.target);
    EXPECT_EQ(a[i].deadline_seconds, 0);
    EXPECT_LT(a[i].cancel_at_seconds, 0);
  }
}

TEST(MakeTrafficStreamTest, LifecycleValidation) {
  auto store = MakeStore(11);
  std::vector<StoreTraffic> stores = {{store, nullptr, 0, {1}, 1.0}};
  TrafficStreamOptions sopt;
  sopt.num_queries = 10;
  sopt.params = TrafficParams();
  sopt.deadline_fraction = 1.5;
  EXPECT_FALSE(MakeTrafficStream(stores, sopt).ok());
  sopt.deadline_fraction = 0.5;
  sopt.deadline_seconds = 0;
  EXPECT_FALSE(MakeTrafficStream(stores, sopt).ok());
  sopt.deadline_seconds = 0.01;
  sopt.cancel_fraction = -0.1;
  EXPECT_FALSE(MakeTrafficStream(stores, sopt).ok());
  sopt.cancel_fraction = 0.1;
  sopt.mean_cancel_delay_seconds = -1;
  EXPECT_FALSE(MakeTrafficStream(stores, sopt).ok());
  sopt.mean_cancel_delay_seconds = 0.001;
  EXPECT_TRUE(MakeTrafficStream(stores, sopt).ok());
}

}  // namespace
}  // namespace fastmatch
