#include "workload/generator.h"

#include <gtest/gtest.h>

#include "core/distance.h"
#include "core/verify.h"

namespace fastmatch {
namespace {

TEST(GeneratorBlocksTest, LogNormalWeightsPositive) {
  Rng rng(1);
  auto w = LogNormalWeights(100, 1.0, &rng);
  ASSERT_EQ(w.size(), 100u);
  for (double x : w) EXPECT_GT(x, 0);
}

TEST(GeneratorBlocksTest, PrototypesAreDistributions) {
  Rng rng(2);
  auto protos = MakePrototypes(5, 24, 1.0, &rng);
  ASSERT_EQ(protos.size(), 5u);
  for (const auto& p : protos) {
    ASSERT_EQ(p.size(), 24u);
    double total = 0;
    for (double x : p) {
      EXPECT_GE(x, 0);
      total += x;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(GeneratorBlocksTest, ClusterMatesAreCloserThanStrangers) {
  Rng rng(3);
  auto protos = MakePrototypes(4, 24, 1.2, &rng);
  std::vector<int> clusters = {0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3};
  auto cond = MakeConditionals(clusters, protos, 0.15, &rng);
  // Average within-cluster l1 distance must be well below between-cluster.
  double within = 0, between = 0;
  int nw = 0, nb = 0;
  for (size_t i = 0; i < cond.size(); ++i) {
    for (size_t j = i + 1; j < cond.size(); ++j) {
      const double d = L1Distance(cond[i], cond[j]);
      if (clusters[i] == clusters[j]) {
        within += d;
        ++nw;
      } else {
        between += d;
        ++nb;
      }
    }
  }
  EXPECT_LT(within / nw, 0.5 * between / nb);
}

TEST(GeneratorBlocksTest, GenerateRowsRespectsMarginals) {
  Rng rng(4);
  std::vector<GenAttr> attrs(2);
  attrs[0] = {"Z", 4, -1, {0.1, 0.2, 0.3, 0.4}, {}};
  attrs[1] = {"X", 2, 0, {},
              {Distribution{0.9, 0.1}, Distribution{0.1, 0.9},
               Distribution{0.5, 0.5}, Distribution{0.3, 0.7}}};
  auto store = GenerateRows("test", attrs, 40000, &rng);
  ASSERT_EQ(store->num_rows(), 40000);
  auto exact = ComputeExactCounts(*store, 0, {1}).value();
  // Marginal check.
  EXPECT_NEAR(exact.RowTotal(0) / 40000.0, 0.1, 0.01);
  EXPECT_NEAR(exact.RowTotal(3) / 40000.0, 0.4, 0.01);
  // Conditional check for candidate 0: P(X=0 | Z=0) = 0.9.
  const Distribution d0 = exact.NormalizedRow(0);
  EXPECT_NEAR(d0[0], 0.9, 0.03);
  // Candidate 1 mirrored.
  const Distribution d1 = exact.NormalizedRow(1);
  EXPECT_NEAR(d1[1], 0.9, 0.03);
}

class DatasetShapeTest : public ::testing::Test {
 protected:
  static constexpr int64_t kRows = 120000;
};

TEST_F(DatasetShapeTest, FlightsSchemaAndPlants) {
  auto ds = MakeFlightsLike(kRows, 42);
  ASSERT_NE(ds.store, nullptr);
  EXPECT_EQ(ds.store->num_rows(), kRows);
  EXPECT_EQ(ds.store->schema().num_attributes(), 7);
  EXPECT_EQ(ds.store->schema().FindAttribute("Origin").value(), 0);
  EXPECT_EQ(ds.store->schema().attribute(0).cardinality, 347u);
  EXPECT_EQ(
      ds.store->schema()
          .attribute(ds.store->schema().FindAttribute("Dest").value())
          .cardinality,
      351u);

  // The hub dominates; the rare block is present but much smaller.
  auto exact = ComputeExactCounts(
                   *ds.store, 0,
                   {ds.store->schema().FindAttribute("DepartureHour").value()})
                   .value();
  int64_t max_rows = 0;
  for (int i = 0; i < 347; ++i) max_rows = std::max(max_rows, exact.RowTotal(i));
  EXPECT_EQ(exact.RowTotal(static_cast<int>(ds.hub_candidate)), max_rows);
  const int64_t rare = exact.RowTotal(static_cast<int>(ds.rare_candidate));
  EXPECT_GT(rare, kRows / 500);  // above the sigma=0.0008 threshold
  EXPECT_LT(rare, max_rows / 3);
}

TEST_F(DatasetShapeTest, FlightsRareClusterHasNearMatches) {
  auto ds = MakeFlightsLike(kRows, 43);
  const int x = ds.store->schema().FindAttribute("DepartureHour").value();
  auto exact = ComputeExactCounts(*ds.store, 0, {x}).value();
  const Distribution target =
      exact.NormalizedRow(static_cast<int>(ds.rare_candidate));
  // The rare candidate's cluster mates (ids 300..307) are close to it.
  // At this reduced scale each rare candidate only has ~1500 rows, so the
  // empirical histograms carry ~0.2 of sampling noise on top of the
  // planted ~0.3 cluster spread.
  int close = 0;
  for (int i = 300; i < 308; ++i) {
    if (i == static_cast<int>(ds.rare_candidate)) continue;
    if (L1Distance(exact.NormalizedRow(i), target) < 0.5) ++close;
  }
  EXPECT_GE(close, 5);
}

TEST_F(DatasetShapeTest, TaxiHeavyTail) {
  auto ds = MakeTaxiLike(kRows, 44);
  EXPECT_EQ(ds.store->schema().attribute(0).cardinality, 7641u);
  auto exact = ComputeExactCounts(
                   *ds.store, 0,
                   {ds.store->schema().FindAttribute("HourOfDay").value()})
                   .value();
  int near_empty = 0, well_populated = 0;
  for (int i = 0; i < 7641; ++i) {
    const int64_t n = exact.RowTotal(i);
    if (n < 10) ++near_empty;
    if (n > kRows / 200) ++well_populated;
  }
  // The paper: "more than 3000 candidates have fewer than 10 datapoints".
  EXPECT_GT(near_empty, 3000);
  // And a healthy set of hubs for the top-k.
  EXPECT_GE(well_populated, 12);
}

TEST_F(DatasetShapeTest, PoliceSchema) {
  auto ds = MakePoliceLike(kRows, 45);
  EXPECT_EQ(ds.store->schema().num_attributes(), 10);
  EXPECT_EQ(ds.store->schema().attribute(
                            ds.store->schema().FindAttribute("Violation")
                                .value())
                .cardinality,
            2110u);
  EXPECT_EQ(ds.store->schema()
                .attribute(
                    ds.store->schema().FindAttribute("DriverGender").value())
                .cardinality,
            2u);
}

TEST_F(DatasetShapeTest, GenerationIsSeedDeterministic) {
  auto a = MakeFlightsLike(20000, 7);
  auto b = MakeFlightsLike(20000, 7);
  for (RowId r = 0; r < 200; ++r) {
    EXPECT_EQ(a.store->column(0).Get(r), b.store->column(0).Get(r));
    EXPECT_EQ(a.store->column(2).Get(r), b.store->column(2).Get(r));
  }
  auto c = MakeFlightsLike(20000, 8);
  bool differs = false;
  for (RowId r = 0; r < 200 && !differs; ++r) {
    differs = a.store->column(0).Get(r) != c.store->column(0).Get(r);
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace fastmatch
