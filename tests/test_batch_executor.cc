// Tests of the shared-scan batch executor: correctness per query,
// bit-for-bit determinism across worker counts, shared-read accounting
// against independent FastMatch runs, degenerate batches, and a
// concurrency stress for the worker-pool shard-merge path.

#include "engine/batch_executor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/verify.h"
#include "engine/executor.h"
#include "test_helpers.h"
#include "workload/traffic.h"

namespace fastmatch {
namespace {

using testing_util::MakeExactStore;
using testing_util::PlantedDistributions;

struct BatchFixture {
  std::shared_ptr<ColumnStore> store;
  std::shared_ptr<const BitmapIndex> index;
  CountMatrix exact;
  Distribution target;
};

/// 12 candidates at staggered distances from uniform (as in the HistSim
/// scenario) so the true top-3 is {0, 1, 2}.
BatchFixture MakeBatchFixture(int64_t rows_per_candidate, uint64_t seed,
                              int rows_per_block = 50) {
  BatchFixture f;
  std::vector<double> offsets = {0.0,  0.01, 0.02, 0.06, 0.09, 0.12,
                                 0.15, 0.17, 0.19, 0.21, 0.23, 0.25};
  auto dists = PlantedDistributions(12, 8, offsets);
  f.store = MakeExactStore(std::vector<int64_t>(12, rows_per_candidate),
                           dists, seed, rows_per_block);
  f.index = BitmapIndex::Build(*f.store, 0).value();
  f.exact = ComputeExactCounts(*f.store, 0, {1}).value();
  f.target = UniformDistribution(8);
  return f;
}

HistSimParams BatchParams() {
  HistSimParams p;
  p.k = 3;
  p.epsilon = 0.05;
  p.delta = 0.05;
  p.sigma = 0.0;
  p.stage1_samples = 3000;
  p.seed = 42;
  return p;
}

BoundQuery MakeQuery(const BatchFixture& f, Distribution target,
                     uint64_t seed = 42) {
  BoundQuery q;
  q.store = f.store;
  q.z_index = f.index;
  q.z_attr = 0;
  q.x_attrs = {1};
  q.target = std::move(target);
  q.params = BatchParams();
  q.params.seed = seed;
  return q;
}

BatchOptions Options(int threads, uint64_t seed = 7, int chunk = 64) {
  BatchOptions o;
  o.num_threads = threads;
  o.chunk_blocks = chunk;
  o.seed = seed;
  return o;
}

TEST(BatchExecutorTest, CreateValidation) {
  BatchFixture f = MakeBatchFixture(2000, 1);
  // Empty batch.
  EXPECT_FALSE(BatchExecutor::Create({}, Options(2)).ok());
  // Bad options.
  EXPECT_FALSE(
      BatchExecutor::Create({MakeQuery(f, f.target)}, Options(0)).ok());
  EXPECT_FALSE(
      BatchExecutor::Create({MakeQuery(f, f.target)}, Options(2, 7, 0)).ok());
  // Mixed stores are a structural error.
  BatchFixture g = MakeBatchFixture(2000, 2);
  EXPECT_FALSE(
      BatchExecutor::Create({MakeQuery(f, f.target), MakeQuery(g, g.target)},
                            Options(2))
          .ok());
  // A well-formed batch is accepted.
  EXPECT_TRUE(BatchExecutor::Create({MakeQuery(f, f.target)}, Options(2)).ok());
}

TEST(BatchExecutorTest, MalformedIndexRejectedRegardlessOfBatchOrder) {
  // Regression: index validation must apply to every query, not only the
  // one that first binds an index to the template.
  BatchFixture f = MakeBatchFixture(2000, 11);
  auto wrong_index = BitmapIndex::Build(*f.store, 1).value();  // X, not Z
  BoundQuery good = MakeQuery(f, f.target);
  BoundQuery bad = MakeQuery(f, f.target);
  bad.z_index = wrong_index;
  for (const auto& batch :
       {std::vector<BoundQuery>{good, bad}, std::vector<BoundQuery>{bad, good}}) {
    auto executor = BatchExecutor::Create(batch, Options(2)).value();
    std::vector<BatchItem> items = executor->Run();
    int ok = 0, invalid = 0;
    for (const BatchItem& item : items) {
      if (item.status.ok()) {
        ++ok;
      } else if (item.status.code() == StatusCode::kInvalidArgument) {
        ++invalid;
      }
    }
    EXPECT_EQ(ok, 1);
    EXPECT_EQ(invalid, 1);
  }
}

TEST(BatchExecutorTest, SingleQueryFindsTopK) {
  BatchFixture f = MakeBatchFixture(20000, 3);
  auto executor =
      BatchExecutor::Create({MakeQuery(f, f.target)}, Options(2)).value();
  std::vector<BatchItem> items = executor->Run();
  ASSERT_EQ(items.size(), 1u);
  ASSERT_TRUE(items[0].status.ok()) << items[0].status.ToString();
  std::set<int> got(items[0].match.topk.begin(), items[0].match.topk.end());
  EXPECT_EQ(got, (std::set<int>{0, 1, 2}));
  EXPECT_GT(executor->stats().blocks_read, 0);
  EXPECT_EQ(executor->stats().num_templates, 1);
}

TEST(BatchExecutorTest, BitForBitIdenticalAcrossThreadCounts) {
  BatchFixture f = MakeBatchFixture(20000, 4);
  TrafficOptions topt;
  topt.num_queries = 3;
  topt.params = BatchParams();
  topt.seed = 11;
  auto batch = MakeQueryBatch(f.store, f.index, 0, {1}, topt).value();

  std::vector<std::vector<BatchItem>> runs;
  std::vector<int64_t> blocks;
  for (int threads : {1, 2, 5}) {
    auto executor = BatchExecutor::Create(batch, Options(threads)).value();
    runs.push_back(executor->Run());
    blocks.push_back(executor->stats().blocks_read);
  }
  for (size_t r = 1; r < runs.size(); ++r) {
    EXPECT_EQ(blocks[r], blocks[0]);
    ASSERT_EQ(runs[r].size(), runs[0].size());
    for (size_t q = 0; q < runs[r].size(); ++q) {
      ASSERT_TRUE(runs[r][q].status.ok());
      EXPECT_EQ(runs[r][q].match.topk, runs[0][q].match.topk);
      const CountMatrix& a = runs[0][q].match.counts;
      const CountMatrix& b = runs[r][q].match.counts;
      for (int i = 0; i < a.num_candidates(); ++i) {
        for (int g = 0; g < a.num_groups(); ++g) {
          ASSERT_EQ(a.At(i, g), b.At(i, g))
              << "thread-count divergence at query " << q << " cell " << i
              << "," << g;
        }
      }
    }
  }
}

TEST(BatchExecutorTest, SharedScanReadsFewerBlocksThanIndependentRuns) {
  // Small store + eps tight enough that winners need (nearly) full
  // enumeration: a single FastMatch run reads most blocks, so B
  // independent runs pay ~B x that, while the batch pays it once.
  BatchFixture f = MakeBatchFixture(2000, 5);
  const int kBatch = 4;

  BoundQuery single = MakeQuery(f, f.target);
  single.params.epsilon = 0.04;
  auto single_out = RunQuery(single, Approach::kFastMatch);
  ASSERT_TRUE(single_out.ok()) << single_out.status().ToString();
  const int64_t single_blocks = single_out->stats.engine.blocks_read;
  ASSERT_GT(single_blocks, 0);

  std::vector<BoundQuery> batch;
  for (int i = 0; i < kBatch; ++i) {
    BoundQuery q = MakeQuery(f, f.target, /*seed=*/100 + i);
    q.params.epsilon = 0.04;
    batch.push_back(std::move(q));
  }
  auto executor = BatchExecutor::Create(batch, Options(2)).value();
  std::vector<BatchItem> items = executor->Run();
  for (const BatchItem& item : items) {
    ASSERT_TRUE(item.status.ok()) << item.status.ToString();
    std::set<int> got(item.match.topk.begin(), item.match.topk.end());
    EXPECT_EQ(got, (std::set<int>{0, 1, 2}));
  }
  // The acceptance inequality: strictly fewer unique block reads than B
  // independent runs.
  EXPECT_LT(executor->stats().blocks_read, kBatch * single_blocks)
      << "batch=" << executor->stats().blocks_read
      << " single=" << single_blocks;
}

TEST(BatchExecutorTest, CandidateTargetQueriesMeetGuarantees) {
  BatchFixture f = MakeBatchFixture(20000, 6);
  TrafficOptions topt;
  topt.num_queries = 4;
  topt.params = BatchParams();
  topt.seed = 21;
  auto batch = MakeQueryBatch(f.store, f.index, 0, {1}, topt).value();
  auto executor = BatchExecutor::Create(batch, Options(3)).value();
  std::vector<BatchItem> items = executor->Run();
  ASSERT_EQ(items.size(), batch.size());
  int violations = 0;
  for (size_t q = 0; q < items.size(); ++q) {
    ASSERT_TRUE(items[q].status.ok()) << items[q].status.ToString();
    GroundTruth truth =
        ComputeGroundTruth(f.exact, batch[q].target, batch[q].params.metric,
                           batch[q].params.sigma, batch[q].params.k);
    auto check = CheckGuarantees(items[q].match, f.exact, truth,
                                 batch[q].target, batch[q].params);
    violations += !check.separation_ok || !check.reconstruction_ok;
  }
  // delta = 0.05 per query; the bound is loose in practice, but zero
  // tolerance over 4 draws would be flaky by design: allow at most 1.
  EXPECT_LE(violations, 1);
}

TEST(BatchExecutorTest, MixedTemplatesShareTheScan) {
  // Three attributes: queries grouping by X1 and by X2 form two
  // templates; blocks are still read once (block_scans == 2x blocks).
  std::vector<Value> z, x1, x2;
  Rng rng(99);
  for (int i = 0; i < 30000; ++i) {
    const int c = static_cast<int>(rng.Uniform(3));
    z.push_back(static_cast<Value>(c));
    x1.push_back(static_cast<Value>(rng.Uniform(4)));
    x2.push_back(static_cast<Value>((c + static_cast<int>(rng.Uniform(2))) % 3));
  }
  StorageOptions opt;
  opt.rows_per_block_override = 50;
  auto store =
      ColumnStore::FromColumns(Schema({{"Z", 3}, {"X1", 4}, {"X2", 3}}),
                               {std::move(z), std::move(x1), std::move(x2)},
                               opt)
          .value();
  auto index = BitmapIndex::Build(*store, 0).value();

  HistSimParams p = BatchParams();
  p.k = 1;
  p.epsilon = 0.1;
  BoundQuery qa;
  qa.store = store;
  qa.z_index = index;
  qa.z_attr = 0;
  qa.x_attrs = {1};
  qa.target = UniformDistribution(4);
  qa.params = p;
  BoundQuery qb = qa;
  qb.x_attrs = {2};
  qb.target = UniformDistribution(3);

  auto executor = BatchExecutor::Create({qa, qb}, Options(2)).value();
  std::vector<BatchItem> items = executor->Run();
  ASSERT_TRUE(items[0].status.ok()) << items[0].status.ToString();
  ASSERT_TRUE(items[1].status.ok()) << items[1].status.ToString();
  EXPECT_EQ(executor->stats().num_templates, 2);
  // Each unique block read feeds up to both templates (one may finish
  // first); scans never exceed 2 x unique reads — the amortization.
  EXPECT_GE(executor->stats().block_scans, executor->stats().blocks_read);
  EXPECT_LE(executor->stats().block_scans,
            2 * executor->stats().blocks_read);
  // Both queries' estimates line up with their template's ground truth.
  const CountMatrix exact_a = ComputeExactCounts(*store, 0, {1}).value();
  const CountMatrix exact_b = ComputeExactCounts(*store, 0, {2}).value();
  GroundTruth truth_a =
      ComputeGroundTruth(exact_a, qa.target, p.metric, p.sigma, p.k);
  GroundTruth truth_b =
      ComputeGroundTruth(exact_b, qb.target, p.metric, p.sigma, p.k);
  EXPECT_TRUE(CheckGuarantees(items[0].match, exact_a, truth_a, qa.target, p)
                  .separation_ok);
  EXPECT_TRUE(CheckGuarantees(items[1].match, exact_b, truth_b, qb.target, p)
                  .separation_ok);
}

TEST(BatchExecutorTest, PerQueryFailureDoesNotSinkTheBatch) {
  BatchFixture f = MakeBatchFixture(20000, 7);
  BoundQuery good = MakeQuery(f, f.target);
  BoundQuery bad_target = MakeQuery(f, UniformDistribution(5));  // |VX| is 8
  BoundQuery all_pruned = MakeQuery(f, f.target);
  all_pruned.params.sigma = 0.9;  // every candidate is ~1/12 of the data
  all_pruned.params.stage1_samples = f.store->num_rows();  // exact pruning

  auto executor =
      BatchExecutor::Create({good, bad_target, all_pruned}, Options(2))
          .value();
  std::vector<BatchItem> items = executor->Run();
  ASSERT_EQ(items.size(), 3u);
  ASSERT_TRUE(items[0].status.ok()) << items[0].status.ToString();
  std::set<int> got(items[0].match.topk.begin(), items[0].match.topk.end());
  EXPECT_EQ(got, (std::set<int>{0, 1, 2}));
  EXPECT_EQ(items[1].status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(items[2].status.code(), StatusCode::kFailedPrecondition);
}

TEST(BatchExecutorTest, ExhaustionYieldsExactResultsForEveryQuery) {
  // Tiny store: every query exhausts the data; all counts must equal the
  // exact histograms and the top-k must equal ground truth.
  BatchFixture f = MakeBatchFixture(200, 8, /*rows_per_block=*/25);
  HistSimParams p = BatchParams();
  p.k = 2;
  p.stage1_samples = 100;
  std::vector<BoundQuery> batch;
  for (int i = 0; i < 3; ++i) {
    BoundQuery q = MakeQuery(f, f.target, 50 + i);
    q.params = p;
    q.params.seed = 50 + static_cast<uint64_t>(i);
    batch.push_back(std::move(q));
  }
  auto executor = BatchExecutor::Create(batch, Options(2)).value();
  std::vector<BatchItem> items = executor->Run();
  for (const BatchItem& item : items) {
    ASSERT_TRUE(item.status.ok()) << item.status.ToString();
    EXPECT_TRUE(item.match.diag.data_exhausted);
    std::set<int> got(item.match.topk.begin(), item.match.topk.end());
    EXPECT_EQ(got, (std::set<int>{0, 1}));
    for (int i = 0; i < 12; ++i) {
      EXPECT_TRUE(item.match.exact[i]);
      EXPECT_EQ(item.match.counts.RowTotal(i), f.exact.RowTotal(i));
    }
  }
  // The whole store was read exactly once.
  EXPECT_EQ(executor->stats().blocks_read, f.store->num_blocks());
  EXPECT_EQ(executor->stats().rows_read, f.store->num_rows());
}

TEST(BatchExecutorTest, WorksWithoutAnIndex) {
  // No bitmap index: the executor degrades to sequential consumption
  // (scan-all), like ScanMatch.
  BatchFixture f = MakeBatchFixture(20000, 9);
  BoundQuery q = MakeQuery(f, f.target);
  q.z_index = nullptr;
  auto executor = BatchExecutor::Create({q}, Options(2)).value();
  std::vector<BatchItem> items = executor->Run();
  ASSERT_TRUE(items[0].status.ok()) << items[0].status.ToString();
  std::set<int> got(items[0].match.topk.begin(), items[0].match.topk.end());
  EXPECT_EQ(got, (std::set<int>{0, 1, 2}));
  EXPECT_EQ(executor->stats().blocks_skipped, 0);
}

// ------------------------------------------------ concurrency stress
// The shard-merge path under repeated batches and varying pool sizes
// (run under FASTMATCH_SANITIZE=thread to certify the WorkerPool and the
// per-chunk fork-join).

TEST(BatchExecutorStress, RepeatedBatchesKeepResultsConsistent) {
  BatchFixture f = MakeBatchFixture(8000, 10);
  TrafficOptions topt;
  topt.num_queries = 6;
  topt.params = BatchParams();
  topt.params.stage1_samples = 2000;
  for (int trial = 0; trial < 6; ++trial) {
    topt.seed = 100 + static_cast<uint64_t>(trial);
    auto batch = MakeQueryBatch(f.store, f.index, 0, {1}, topt).value();
    auto executor =
        BatchExecutor::Create(batch, Options(1 + trial % 4, topt.seed))
            .value();
    std::vector<BatchItem> items = executor->Run();
    for (const BatchItem& item : items) {
      ASSERT_TRUE(item.status.ok()) << "trial " << trial << ": "
                                    << item.status.ToString();
      // Counts never exceed the exact histograms (without replacement).
      for (int i = 0; i < 12; ++i) {
        ASSERT_LE(item.match.counts.RowTotal(i), f.exact.RowTotal(i));
      }
    }
    ASSERT_LE(executor->stats().blocks_read, f.store->num_blocks());
    ASSERT_LE(executor->stats().rows_read, f.store->num_rows());
  }
}

}  // namespace
}  // namespace fastmatch
