// Tests of the shared-scan batch executor: correctness per query,
// bit-for-bit determinism across worker counts, shared-read accounting
// against independent FastMatch runs, degenerate batches, and a
// concurrency stress for the worker-pool shard-merge path.

#include "engine/batch_executor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/verify.h"
#include "engine/executor.h"
#include "service/stage1_cache.h"
#include "test_helpers.h"
#include "workload/traffic.h"

namespace fastmatch {
namespace {

using testing_util::MakeExactStore;
using testing_util::PlantedDistributions;

struct BatchFixture {
  std::shared_ptr<ColumnStore> store;
  std::shared_ptr<const BitmapIndex> index;
  CountMatrix exact;
  Distribution target;
};

/// 12 candidates at staggered distances from uniform (as in the HistSim
/// scenario) so the true top-3 is {0, 1, 2}.
BatchFixture MakeBatchFixture(int64_t rows_per_candidate, uint64_t seed,
                              int rows_per_block = 50) {
  BatchFixture f;
  std::vector<double> offsets = {0.0,  0.01, 0.02, 0.06, 0.09, 0.12,
                                 0.15, 0.17, 0.19, 0.21, 0.23, 0.25};
  auto dists = PlantedDistributions(12, 8, offsets);
  f.store = MakeExactStore(std::vector<int64_t>(12, rows_per_candidate),
                           dists, seed, rows_per_block);
  f.index = BitmapIndex::Build(*f.store, 0).value();
  f.exact = ComputeExactCounts(*f.store, 0, {1}).value();
  f.target = UniformDistribution(8);
  return f;
}

HistSimParams BatchParams() {
  HistSimParams p;
  p.k = 3;
  p.epsilon = 0.05;
  p.delta = 0.05;
  p.sigma = 0.0;
  p.stage1_samples = 3000;
  p.seed = 42;
  return p;
}

BoundQuery MakeQuery(const BatchFixture& f, Distribution target,
                     uint64_t seed = 42) {
  BoundQuery q;
  q.store = f.store;
  q.z_index = f.index;
  q.z_attr = 0;
  q.x_attrs = {1};
  q.target = std::move(target);
  q.params = BatchParams();
  q.params.seed = seed;
  return q;
}

BatchOptions Options(int threads, uint64_t seed = 7, int chunk = 64) {
  BatchOptions o;
  o.num_threads = threads;
  o.chunk_blocks = chunk;
  o.seed = seed;
  return o;
}

TEST(BatchExecutorTest, CreateValidation) {
  BatchFixture f = MakeBatchFixture(2000, 1);
  // Empty batch.
  EXPECT_FALSE(BatchExecutor::Create({}, Options(2)).ok());
  // Bad options.
  EXPECT_FALSE(
      BatchExecutor::Create({MakeQuery(f, f.target)}, Options(0)).ok());
  EXPECT_FALSE(
      BatchExecutor::Create({MakeQuery(f, f.target)}, Options(2, 7, 0)).ok());
  // Mixed stores are a structural error.
  BatchFixture g = MakeBatchFixture(2000, 2);
  EXPECT_FALSE(
      BatchExecutor::Create({MakeQuery(f, f.target), MakeQuery(g, g.target)},
                            Options(2))
          .ok());
  // A well-formed batch is accepted.
  EXPECT_TRUE(BatchExecutor::Create({MakeQuery(f, f.target)}, Options(2)).ok());
}

TEST(BatchExecutorTest, MalformedIndexRejectedRegardlessOfBatchOrder) {
  // Regression: index validation must apply to every query, not only the
  // one that first binds an index to the template.
  BatchFixture f = MakeBatchFixture(2000, 11);
  auto wrong_index = BitmapIndex::Build(*f.store, 1).value();  // X, not Z
  BoundQuery good = MakeQuery(f, f.target);
  BoundQuery bad = MakeQuery(f, f.target);
  bad.z_index = wrong_index;
  for (const auto& batch :
       {std::vector<BoundQuery>{good, bad}, std::vector<BoundQuery>{bad, good}}) {
    auto executor = BatchExecutor::Create(batch, Options(2)).value();
    std::vector<BatchItem> items = executor->Run();
    int ok = 0, invalid = 0;
    for (const BatchItem& item : items) {
      if (item.status.ok()) {
        ++ok;
      } else if (item.status.code() == StatusCode::kInvalidArgument) {
        ++invalid;
      }
    }
    EXPECT_EQ(ok, 1);
    EXPECT_EQ(invalid, 1);
  }
}

TEST(BatchExecutorTest, SingleQueryFindsTopK) {
  BatchFixture f = MakeBatchFixture(20000, 3);
  auto executor =
      BatchExecutor::Create({MakeQuery(f, f.target)}, Options(2)).value();
  std::vector<BatchItem> items = executor->Run();
  ASSERT_EQ(items.size(), 1u);
  ASSERT_TRUE(items[0].status.ok()) << items[0].status.ToString();
  std::set<int> got(items[0].match.topk.begin(), items[0].match.topk.end());
  EXPECT_EQ(got, (std::set<int>{0, 1, 2}));
  EXPECT_GT(executor->stats().blocks_read, 0);
  EXPECT_EQ(executor->stats().num_templates, 1);
}

TEST(BatchExecutorTest, BitForBitIdenticalAcrossThreadCounts) {
  BatchFixture f = MakeBatchFixture(20000, 4);
  TrafficOptions topt;
  topt.num_queries = 3;
  topt.params = BatchParams();
  topt.seed = 11;
  auto batch = MakeQueryBatch(f.store, f.index, 0, {1}, topt).value();

  std::vector<std::vector<BatchItem>> runs;
  std::vector<int64_t> blocks;
  for (int threads : {1, 2, 5}) {
    auto executor = BatchExecutor::Create(batch, Options(threads)).value();
    runs.push_back(executor->Run());
    blocks.push_back(executor->stats().blocks_read);
  }
  for (size_t r = 1; r < runs.size(); ++r) {
    EXPECT_EQ(blocks[r], blocks[0]);
    ASSERT_EQ(runs[r].size(), runs[0].size());
    for (size_t q = 0; q < runs[r].size(); ++q) {
      ASSERT_TRUE(runs[r][q].status.ok());
      EXPECT_EQ(runs[r][q].match.topk, runs[0][q].match.topk);
      const CountMatrix& a = runs[0][q].match.counts;
      const CountMatrix& b = runs[r][q].match.counts;
      for (int i = 0; i < a.num_candidates(); ++i) {
        for (int g = 0; g < a.num_groups(); ++g) {
          ASSERT_EQ(a.At(i, g), b.At(i, g))
              << "thread-count divergence at query " << q << " cell " << i
              << "," << g;
        }
      }
    }
  }
}

TEST(BatchExecutorTest, SharedScanReadsFewerBlocksThanIndependentRuns) {
  // Small store + eps tight enough that winners need (nearly) full
  // enumeration: a single FastMatch run reads most blocks, so B
  // independent runs pay ~B x that, while the batch pays it once.
  BatchFixture f = MakeBatchFixture(2000, 5);
  const int kBatch = 4;

  BoundQuery single = MakeQuery(f, f.target);
  single.params.epsilon = 0.04;
  auto single_out = RunQuery(single, Approach::kFastMatch);
  ASSERT_TRUE(single_out.ok()) << single_out.status().ToString();
  const int64_t single_blocks = single_out->stats.engine.blocks_read;
  ASSERT_GT(single_blocks, 0);

  std::vector<BoundQuery> batch;
  for (int i = 0; i < kBatch; ++i) {
    BoundQuery q = MakeQuery(f, f.target, /*seed=*/100 + i);
    q.params.epsilon = 0.04;
    batch.push_back(std::move(q));
  }
  auto executor = BatchExecutor::Create(batch, Options(2)).value();
  std::vector<BatchItem> items = executor->Run();
  for (const BatchItem& item : items) {
    ASSERT_TRUE(item.status.ok()) << item.status.ToString();
    std::set<int> got(item.match.topk.begin(), item.match.topk.end());
    EXPECT_EQ(got, (std::set<int>{0, 1, 2}));
  }
  // The acceptance inequality: strictly fewer unique block reads than B
  // independent runs.
  EXPECT_LT(executor->stats().blocks_read, kBatch * single_blocks)
      << "batch=" << executor->stats().blocks_read
      << " single=" << single_blocks;
}

TEST(BatchExecutorTest, CandidateTargetQueriesMeetGuarantees) {
  BatchFixture f = MakeBatchFixture(20000, 6);
  TrafficOptions topt;
  topt.num_queries = 4;
  topt.params = BatchParams();
  topt.seed = 21;
  auto batch = MakeQueryBatch(f.store, f.index, 0, {1}, topt).value();
  auto executor = BatchExecutor::Create(batch, Options(3)).value();
  std::vector<BatchItem> items = executor->Run();
  ASSERT_EQ(items.size(), batch.size());
  int violations = 0;
  for (size_t q = 0; q < items.size(); ++q) {
    ASSERT_TRUE(items[q].status.ok()) << items[q].status.ToString();
    GroundTruth truth =
        ComputeGroundTruth(f.exact, batch[q].target, batch[q].params.metric,
                           batch[q].params.sigma, batch[q].params.k);
    auto check = CheckGuarantees(items[q].match, f.exact, truth,
                                 batch[q].target, batch[q].params);
    violations += !check.separation_ok || !check.reconstruction_ok;
  }
  // delta = 0.05 per query; the bound is loose in practice, but zero
  // tolerance over 4 draws would be flaky by design: allow at most 1.
  EXPECT_LE(violations, 1);
}

TEST(BatchExecutorTest, MixedTemplatesShareTheScan) {
  // Three attributes: queries grouping by X1 and by X2 form two
  // templates; blocks are still read once (block_scans == 2x blocks).
  std::vector<Value> z, x1, x2;
  Rng rng(99);
  for (int i = 0; i < 30000; ++i) {
    const int c = static_cast<int>(rng.Uniform(3));
    z.push_back(static_cast<Value>(c));
    x1.push_back(static_cast<Value>(rng.Uniform(4)));
    x2.push_back(static_cast<Value>((c + static_cast<int>(rng.Uniform(2))) % 3));
  }
  StorageOptions opt;
  opt.rows_per_block_override = 50;
  auto store =
      ColumnStore::FromColumns(Schema({{"Z", 3}, {"X1", 4}, {"X2", 3}}),
                               {std::move(z), std::move(x1), std::move(x2)},
                               opt)
          .value();
  auto index = BitmapIndex::Build(*store, 0).value();

  HistSimParams p = BatchParams();
  p.k = 1;
  p.epsilon = 0.1;
  BoundQuery qa;
  qa.store = store;
  qa.z_index = index;
  qa.z_attr = 0;
  qa.x_attrs = {1};
  qa.target = UniformDistribution(4);
  qa.params = p;
  BoundQuery qb = qa;
  qb.x_attrs = {2};
  qb.target = UniformDistribution(3);

  auto executor = BatchExecutor::Create({qa, qb}, Options(2)).value();
  std::vector<BatchItem> items = executor->Run();
  ASSERT_TRUE(items[0].status.ok()) << items[0].status.ToString();
  ASSERT_TRUE(items[1].status.ok()) << items[1].status.ToString();
  EXPECT_EQ(executor->stats().num_templates, 2);
  // Each unique block read feeds up to both templates (one may finish
  // first); scans never exceed 2 x unique reads — the amortization.
  EXPECT_GE(executor->stats().block_scans, executor->stats().blocks_read);
  EXPECT_LE(executor->stats().block_scans,
            2 * executor->stats().blocks_read);
  // Both queries' estimates line up with their template's ground truth.
  const CountMatrix exact_a = ComputeExactCounts(*store, 0, {1}).value();
  const CountMatrix exact_b = ComputeExactCounts(*store, 0, {2}).value();
  GroundTruth truth_a =
      ComputeGroundTruth(exact_a, qa.target, p.metric, p.sigma, p.k);
  GroundTruth truth_b =
      ComputeGroundTruth(exact_b, qb.target, p.metric, p.sigma, p.k);
  EXPECT_TRUE(CheckGuarantees(items[0].match, exact_a, truth_a, qa.target, p)
                  .separation_ok);
  EXPECT_TRUE(CheckGuarantees(items[1].match, exact_b, truth_b, qb.target, p)
                  .separation_ok);
}

TEST(BatchExecutorTest, PerQueryFailureDoesNotSinkTheBatch) {
  BatchFixture f = MakeBatchFixture(20000, 7);
  BoundQuery good = MakeQuery(f, f.target);
  BoundQuery bad_target = MakeQuery(f, UniformDistribution(5));  // |VX| is 8
  BoundQuery all_pruned = MakeQuery(f, f.target);
  all_pruned.params.sigma = 0.9;  // every candidate is ~1/12 of the data
  all_pruned.params.stage1_samples = f.store->num_rows();  // exact pruning

  auto executor =
      BatchExecutor::Create({good, bad_target, all_pruned}, Options(2))
          .value();
  std::vector<BatchItem> items = executor->Run();
  ASSERT_EQ(items.size(), 3u);
  ASSERT_TRUE(items[0].status.ok()) << items[0].status.ToString();
  std::set<int> got(items[0].match.topk.begin(), items[0].match.topk.end());
  EXPECT_EQ(got, (std::set<int>{0, 1, 2}));
  EXPECT_EQ(items[1].status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(items[2].status.code(), StatusCode::kFailedPrecondition);
}

TEST(BatchExecutorTest, ExhaustionYieldsExactResultsForEveryQuery) {
  // Tiny store: every query exhausts the data; all counts must equal the
  // exact histograms and the top-k must equal ground truth.
  BatchFixture f = MakeBatchFixture(200, 8, /*rows_per_block=*/25);
  HistSimParams p = BatchParams();
  p.k = 2;
  p.stage1_samples = 100;
  std::vector<BoundQuery> batch;
  for (int i = 0; i < 3; ++i) {
    BoundQuery q = MakeQuery(f, f.target, 50 + i);
    q.params = p;
    q.params.seed = 50 + static_cast<uint64_t>(i);
    batch.push_back(std::move(q));
  }
  auto executor = BatchExecutor::Create(batch, Options(2)).value();
  std::vector<BatchItem> items = executor->Run();
  for (const BatchItem& item : items) {
    ASSERT_TRUE(item.status.ok()) << item.status.ToString();
    EXPECT_TRUE(item.match.diag.data_exhausted);
    std::set<int> got(item.match.topk.begin(), item.match.topk.end());
    EXPECT_EQ(got, (std::set<int>{0, 1}));
    for (int i = 0; i < 12; ++i) {
      EXPECT_TRUE(item.match.exact[i]);
      EXPECT_EQ(item.match.counts.RowTotal(i), f.exact.RowTotal(i));
    }
  }
  // The whole store was read exactly once.
  EXPECT_EQ(executor->stats().blocks_read, f.store->num_blocks());
  EXPECT_EQ(executor->stats().rows_read, f.store->num_rows());
}

TEST(BatchExecutorTest, WorksWithoutAnIndex) {
  // No bitmap index: the executor degrades to sequential consumption
  // (scan-all), like ScanMatch.
  BatchFixture f = MakeBatchFixture(20000, 9);
  BoundQuery q = MakeQuery(f, f.target);
  q.z_index = nullptr;
  auto executor = BatchExecutor::Create({q}, Options(2)).value();
  std::vector<BatchItem> items = executor->Run();
  ASSERT_TRUE(items[0].status.ok()) << items[0].status.ToString();
  std::set<int> got(items[0].match.topk.begin(), items[0].match.topk.end());
  EXPECT_EQ(got, (std::set<int>{0, 1, 2}));
  EXPECT_EQ(executor->stats().blocks_skipped, 0);
}

// ------------------------------------------------ streaming admission
// The Start/Step/TakeItems protocol and mid-flight Join: a joined query
// is fed from the scan suffix only and must be bit-for-bit equivalent to
// a solo batch resumed from the donor's captured scan state.

void ExpectSameCounts(const CountMatrix& a, const CountMatrix& b,
                      const char* what) {
  ASSERT_EQ(a.num_candidates(), b.num_candidates());
  ASSERT_EQ(a.num_groups(), b.num_groups());
  for (int i = 0; i < a.num_candidates(); ++i) {
    for (int g = 0; g < a.num_groups(); ++g) {
      ASSERT_EQ(a.At(i, g), b.At(i, g))
          << what << ": divergence at cell " << i << "," << g;
    }
  }
}

TEST(BatchExecutorStreamTest, StepwiseDriveMatchesRun) {
  BatchFixture f = MakeBatchFixture(20000, 12);
  TrafficOptions topt;
  topt.num_queries = 3;
  topt.params = BatchParams();
  topt.seed = 31;
  auto batch = MakeQueryBatch(f.store, f.index, 0, {1}, topt).value();

  auto run_exec = BatchExecutor::Create(batch, Options(2)).value();
  std::vector<BatchItem> run_items = run_exec->Run();

  auto step_exec = BatchExecutor::Create(batch, Options(2)).value();
  step_exec->Start();
  while (step_exec->Step()) {
  }
  EXPECT_TRUE(step_exec->finished());
  EXPECT_EQ(step_exec->num_active(), 0);
  std::vector<BatchItem> step_items = step_exec->TakeItems();

  ASSERT_EQ(run_items.size(), step_items.size());
  EXPECT_EQ(run_exec->stats().blocks_read, step_exec->stats().blocks_read);
  for (size_t q = 0; q < run_items.size(); ++q) {
    ASSERT_TRUE(step_items[q].status.ok());
    EXPECT_EQ(run_items[q].match.topk, step_items[q].match.topk);
    ExpectSameCounts(run_items[q].match.counts, step_items[q].match.counts,
                     "stepwise vs run");
  }
}

TEST(BatchExecutorStreamTest, JoinedQueryMatchesSuffixSoloRunEveryThreadCount) {
  // The acceptance determinism test: run query A to completion, Join B
  // at that chunk boundary, and compare B against a solo batch resumed
  // from the captured scan state — counts must be bit-for-bit identical
  // for every (joined, solo) thread-count combination.
  BatchFixture f = MakeBatchFixture(20000, 13);
  BoundQuery b = MakeQuery(f, f.exact.NormalizedRow(4), /*seed=*/321);

  // A's loose epsilon makes it finish early, leaving a large suffix.
  BoundQuery a = MakeQuery(f, f.target);
  a.params.epsilon = 0.1;

  std::vector<BatchItem> reference;  // joined B at threads=1
  for (int threads : {1, 2, 5}) {
    auto exec = BatchExecutor::Create({a}, Options(threads)).value();
    exec->Start();
    while (exec->Step()) {
    }
    ASSERT_TRUE(exec->finished());
    // A must leave a real suffix behind, or the scenario is vacuous.
    ASSERT_GT(exec->consumed_blocks(), 0);
    ASSERT_LT(exec->consumed_blocks(), f.store->num_blocks());
    ScanResume capture = exec->CaptureScanState();
    ASSERT_EQ(capture.consumed.Popcount(), exec->consumed_blocks());
    for (size_t i = 0; i < capture.exhausted.size(); ++i) {
      ASSERT_FALSE(capture.exhausted[i]) << "unexpected pre-join exhaustion";
    }

    auto joined = exec->Join(b);
    ASSERT_TRUE(joined.ok()) << joined.status().ToString();
    EXPECT_EQ(*joined, 1u);
    while (exec->Step()) {
    }
    std::vector<BatchItem> items = exec->TakeItems();
    ASSERT_EQ(items.size(), 2u);
    ASSERT_TRUE(items[1].status.ok()) << items[1].status.ToString();
    EXPECT_EQ(exec->stats().joined_queries, 1);

    // The suffix-only solo reference, itself at several thread counts.
    for (int solo_threads : {1, 3}) {
      BatchOptions solo_options = Options(solo_threads);
      solo_options.resume = capture;
      auto solo = BatchExecutor::Create({b}, solo_options).value();
      std::vector<BatchItem> solo_items = solo->Run();
      ASSERT_TRUE(solo_items[0].status.ok())
          << solo_items[0].status.ToString();
      EXPECT_EQ(items[1].match.topk, solo_items[0].match.topk);
      EXPECT_EQ(items[1].match.distances, solo_items[0].match.distances);
      EXPECT_EQ(items[1].match.exact, solo_items[0].match.exact);
      ExpectSameCounts(items[1].match.counts, solo_items[0].match.counts,
                       "joined vs suffix-only solo");
    }
    if (reference.empty()) {
      reference = std::move(items);
    } else {
      EXPECT_EQ(items[1].match.topk, reference[1].match.topk);
      ExpectSameCounts(items[1].match.counts, reference[1].match.counts,
                       "joined across thread counts");
    }
  }
}

TEST(BatchExecutorStreamTest, JoinDuringActiveScanDeterministicAcrossThreads) {
  // B joins while A1/A2 are still scanning (a fixed chunk boundary, so
  // every thread count sees the same join point): all three results must
  // be bit-for-bit identical across worker counts.
  BatchFixture f = MakeBatchFixture(20000, 14);
  BoundQuery a1 = MakeQuery(f, f.target, 1);
  BoundQuery a2 = MakeQuery(f, f.exact.NormalizedRow(7), 2);
  BoundQuery b = MakeQuery(f, f.exact.NormalizedRow(2), 3);

  std::vector<std::vector<BatchItem>> runs;
  for (int threads : {1, 2, 5}) {
    auto exec = BatchExecutor::Create({a1, a2}, Options(threads)).value();
    exec->Start();
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(exec->Step()) << "fixture finished before the join point";
    }
    auto joined = exec->Join(b);
    ASSERT_TRUE(joined.ok()) << joined.status().ToString();
    EXPECT_EQ(*joined, 2u);
    while (exec->Step()) {
    }
    runs.push_back(exec->TakeItems());
  }
  for (size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].size(), 3u);
    for (size_t q = 0; q < 3; ++q) {
      ASSERT_TRUE(runs[r][q].status.ok());
      EXPECT_EQ(runs[r][q].match.topk, runs[0][q].match.topk);
      ExpectSameCounts(runs[r][q].match.counts, runs[0][q].match.counts,
                       "mid-scan join across thread counts");
    }
  }
}

TEST(BatchExecutorStreamTest, JoinedQueriesMeetGuarantees) {
  // Statistical sanity: queries admitted mid-flight still satisfy the
  // paper's separation/reconstruction guarantees (their suffix samples
  // are uniform without replacement over the relation).
  BatchFixture f = MakeBatchFixture(20000, 15);
  auto exec =
      BatchExecutor::Create({MakeQuery(f, f.target, 1)}, Options(2)).value();
  exec->Start();
  ASSERT_TRUE(exec->Step());
  ASSERT_TRUE(exec->Step());
  std::vector<BoundQuery> joined_queries = {
      MakeQuery(f, f.exact.NormalizedRow(1), 11),
      MakeQuery(f, f.exact.NormalizedRow(6), 12),
      MakeQuery(f, f.target, 13)};
  std::vector<size_t> indices;
  for (const BoundQuery& q : joined_queries) {
    auto joined = exec->Join(q);
    ASSERT_TRUE(joined.ok()) << joined.status().ToString();
    indices.push_back(*joined);
  }
  while (exec->Step()) {
  }
  std::vector<BatchItem> items = exec->TakeItems();
  EXPECT_EQ(exec->stats().joined_queries, 3);
  int violations = 0;
  for (size_t j = 0; j < joined_queries.size(); ++j) {
    const BatchItem& item = items[indices[j]];
    ASSERT_TRUE(item.status.ok()) << item.status.ToString();
    const HistSimParams& p = joined_queries[j].params;
    GroundTruth truth = ComputeGroundTruth(f.exact, joined_queries[j].target,
                                           p.metric, p.sigma, p.k);
    auto check = CheckGuarantees(item.match, f.exact, truth,
                                 joined_queries[j].target, p);
    violations += !check.separation_ok || !check.reconstruction_ok;
  }
  // delta = 0.05 per query; zero tolerance over 3 draws would be flaky
  // by design — allow at most 1 (same convention as the batch tests).
  EXPECT_LE(violations, 1);
}

TEST(BatchExecutorStreamTest, JoinAfterFinalChunkRejected) {
  // Tiny store: the batch consumes every block. A join arriving after
  // the final chunk has no suffix to sample and must be refused — the
  // caller falls back to a fresh batch.
  BatchFixture f = MakeBatchFixture(200, 16, /*rows_per_block=*/25);
  HistSimParams p = BatchParams();
  p.stage1_samples = 100;
  BoundQuery q = MakeQuery(f, f.target);
  q.params = p;
  auto exec = BatchExecutor::Create({q}, Options(2)).value();
  exec->Start();
  while (exec->Step()) {
  }
  ASSERT_EQ(exec->consumed_blocks(), f.store->num_blocks());

  auto joined = exec->Join(MakeQuery(f, f.target, 99));
  ASSERT_FALSE(joined.ok());
  EXPECT_EQ(joined.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(exec->stats().joined_queries, 0);

  // The fallback: the same query in a fresh batch completes normally.
  auto fresh = BatchExecutor::Create({MakeQuery(f, f.target, 99)}, Options(2))
                   .value();
  std::vector<BatchItem> items = fresh->Run();
  ASSERT_TRUE(items[0].status.ok()) << items[0].status.ToString();
}

TEST(BatchExecutorStreamTest, JoinValidation) {
  BatchFixture f = MakeBatchFixture(2000, 17);
  // Join before Start is a structural error.
  auto exec = BatchExecutor::Create({MakeQuery(f, f.target)}, Options(2))
                  .value();
  EXPECT_EQ(exec->Join(MakeQuery(f, f.target)).status().code(),
            StatusCode::kFailedPrecondition);
  exec->Start();
  // A query over a different store cannot share the scan.
  BatchFixture g = MakeBatchFixture(2000, 18);
  EXPECT_EQ(exec->Join(MakeQuery(g, g.target)).status().code(),
            StatusCode::kInvalidArgument);
  // Per-query binding problems are accepted and surface as item status.
  BoundQuery bad = MakeQuery(f, UniformDistribution(5));  // |VX| is 8
  auto joined = exec->Join(bad);
  ASSERT_TRUE(joined.ok());
  while (exec->Step()) {
  }
  std::vector<BatchItem> items = exec->TakeItems();
  ASSERT_TRUE(items[0].status.ok()) << items[0].status.ToString();
  EXPECT_EQ(items[*joined].status.code(), StatusCode::kInvalidArgument);
}

TEST(BatchExecutorStreamTest, EagerCompletionMatchesRetireTimeDelivery) {
  // The eager-delivery property test: for every seed and thread count,
  // an item surfaced through the completion callback the moment its
  // machine finished must be bit-for-bit identical (counts, top-k,
  // distances) to the same query's item from a plain retire-time run of
  // the identical batch. Eager delivery changes WHEN a result is
  // visible, never WHAT it contains.
  for (uint64_t seed : {41u, 42u, 43u}) {
    BatchFixture f = MakeBatchFixture(8000, seed);
    TrafficOptions topt;
    topt.num_queries = 4;
    topt.params = BatchParams();
    topt.seed = seed * 7 + 1;
    auto batch = MakeQueryBatch(f.store, f.index, 0, {1}, topt).value();
    for (int threads : {1, 2, 5}) {
      // Eager run: collect callback items as they surface.
      auto eager_exec = BatchExecutor::Create(batch, Options(threads)).value();
      std::vector<std::optional<BatchItem>> eager(batch.size());
      size_t callbacks = 0;
      eager_exec->SetCompletionCallback(
          [&](size_t index, const BatchItem& item) {
            ASSERT_LT(index, eager.size());
            ASSERT_FALSE(eager[index].has_value())
                << "completion fired twice for query " << index;
            eager[index] = item;
            ++callbacks;
          });
      eager_exec->Start();
      while (eager_exec->Step()) {
      }
      std::vector<BatchItem> eager_retire = eager_exec->TakeItems();

      // Retire-time reference: same batch, same options, no callback.
      auto retire_exec = BatchExecutor::Create(batch, Options(threads)).value();
      std::vector<BatchItem> retire = retire_exec->Run();

      ASSERT_EQ(callbacks, batch.size());
      ASSERT_EQ(retire.size(), batch.size());
      for (size_t q = 0; q < batch.size(); ++q) {
        ASSERT_TRUE(eager[q].has_value());
        const BatchItem& e = *eager[q];
        ASSERT_TRUE(e.status.ok()) << e.status.ToString();
        ASSERT_TRUE(retire[q].status.ok());
        EXPECT_EQ(e.match.topk, retire[q].match.topk);
        EXPECT_EQ(e.match.distances, retire[q].match.distances);
        EXPECT_EQ(e.match.exact, retire[q].match.exact);
        ExpectSameCounts(e.match.counts, retire[q].match.counts,
                         "eager vs retire-time");
        // And the executor's own TakeItems agrees with its callback.
        EXPECT_EQ(e.match.topk, eager_retire[q].match.topk);
        ExpectSameCounts(e.match.counts, eager_retire[q].match.counts,
                         "callback vs TakeItems");
      }
    }
  }
}

TEST(BatchExecutorStreamTest, EvictRemovesQueryAndSparesTheRest) {
  // Evicting one of two queries mid-scan: the survivor completes with a
  // correct result, the evicted item reports Cancelled, and the
  // completion callback fires for both (the eviction at evict time).
  BatchFixture f = MakeBatchFixture(20000, 31);
  BoundQuery keep = MakeQuery(f, f.target, 1);
  BoundQuery drop = MakeQuery(f, f.exact.NormalizedRow(5), 2);
  drop.params.epsilon = 0.03;  // would run long if not evicted

  auto exec = BatchExecutor::Create({keep, drop}, Options(2)).value();
  std::vector<std::optional<BatchItem>> seen(2);
  exec->SetCompletionCallback([&](size_t index, const BatchItem& item) {
    ASSERT_LT(index, seen.size());
    ASSERT_FALSE(seen[index].has_value());
    seen[index] = item;
  });
  exec->Start();
  ASSERT_TRUE(exec->Step());
  ASSERT_TRUE(exec->Step());
  ASSERT_TRUE(exec->Evict(1).ok());
  ASSERT_TRUE(seen[1].has_value()) << "eviction must fire the callback";
  EXPECT_EQ(seen[1]->status.code(), StatusCode::kCancelled);
  while (exec->Step()) {
  }
  EXPECT_EQ(exec->stats().evicted_queries, 1);
  std::vector<BatchItem> items = exec->TakeItems();
  ASSERT_EQ(items.size(), 2u);
  ASSERT_TRUE(items[0].status.ok()) << items[0].status.ToString();
  std::set<int> got(items[0].match.topk.begin(), items[0].match.topk.end());
  EXPECT_EQ(got, (std::set<int>{0, 1, 2}));
  EXPECT_EQ(items[1].status.code(), StatusCode::kCancelled);
}

TEST(BatchExecutorStreamTest, EvictionShrinksTheUnionDemand) {
  // A solo tight-epsilon query evicted right after Start: the scan must
  // stop almost immediately (no active query contributes demand), so it
  // reads far fewer blocks than the full run.
  BatchFixture f = MakeBatchFixture(20000, 32);
  BoundQuery q = MakeQuery(f, f.target, 3);
  q.params.epsilon = 0.03;

  auto full = BatchExecutor::Create({q}, Options(2)).value();
  std::vector<BatchItem> full_items = full->Run();
  ASSERT_TRUE(full_items[0].status.ok());

  auto evicted = BatchExecutor::Create({q}, Options(2)).value();
  evicted->Start();
  ASSERT_TRUE(evicted->Step());
  ASSERT_TRUE(evicted->Evict(0).ok());
  while (evicted->Step()) {
  }
  std::vector<BatchItem> evicted_items = evicted->TakeItems();
  EXPECT_EQ(evicted_items[0].status.code(), StatusCode::kCancelled);
  EXPECT_LT(evicted->stats().blocks_read, full->stats().blocks_read / 2);
}

TEST(BatchExecutorStreamTest, EvictValidation) {
  BatchFixture f = MakeBatchFixture(2000, 33);
  auto exec = BatchExecutor::Create({MakeQuery(f, f.target)}, Options(2))
                  .value();
  // Before Start.
  EXPECT_EQ(exec->Evict(0).code(), StatusCode::kFailedPrecondition);
  exec->Start();
  // Unknown index.
  EXPECT_EQ(exec->Evict(7).code(), StatusCode::kOutOfRange);
  while (exec->Step()) {
  }
  // Already completed: the result exists; Evict refuses to discard it.
  EXPECT_EQ(exec->Evict(0).code(), StatusCode::kFailedPrecondition);
  std::vector<BatchItem> items = exec->TakeItems();
  EXPECT_TRUE(items[0].status.ok());
}

TEST(BatchExecutorStreamTest, SharedPoolMatchesPrivatePoolBitForBit) {
  // The SharedWorkerPool path must be invisible to results: same batch,
  // same quota, shared vs private pool — identical counts, top-k, and
  // I/O accounting for every quota.
  BatchFixture f = MakeBatchFixture(8000, 34);
  TrafficOptions topt;
  topt.num_queries = 3;
  topt.params = BatchParams();
  topt.seed = 77;
  auto batch = MakeQueryBatch(f.store, f.index, 0, {1}, topt).value();

  SharedWorkerPool shared(4);
  for (int quota : {1, 2, 4}) {
    auto private_exec =
        BatchExecutor::Create(batch, Options(quota)).value();
    std::vector<BatchItem> private_items = private_exec->Run();

    BatchOptions shared_options = Options(quota);
    shared_options.shared_pool = &shared;
    auto shared_exec = BatchExecutor::Create(batch, shared_options).value();
    std::vector<BatchItem> shared_items = shared_exec->Run();

    ASSERT_EQ(private_items.size(), shared_items.size());
    EXPECT_EQ(private_exec->stats().blocks_read,
              shared_exec->stats().blocks_read);
    for (size_t q = 0; q < private_items.size(); ++q) {
      ASSERT_TRUE(shared_items[q].status.ok());
      EXPECT_EQ(private_items[q].match.topk, shared_items[q].match.topk);
      ExpectSameCounts(private_items[q].match.counts,
                       shared_items[q].match.counts,
                       "shared vs private pool");
    }
  }
}

TEST(BatchExecutorStreamTest, ResumeValidation) {
  BatchFixture f = MakeBatchFixture(2000, 19);
  BoundQuery q = MakeQuery(f, f.target);

  BatchOptions bad_size = Options(2);
  bad_size.resume = ScanResume{};
  bad_size.resume->consumed = BitVector(f.store->num_blocks() + 1);
  EXPECT_FALSE(BatchExecutor::Create({q}, bad_size).ok());

  BatchOptions bad_cursor = Options(2);
  bad_cursor.resume = ScanResume{};
  bad_cursor.resume->consumed = BitVector(f.store->num_blocks());
  bad_cursor.resume->cursor = f.store->num_blocks();
  EXPECT_FALSE(BatchExecutor::Create({q}, bad_cursor).ok());

  BatchOptions bad_exhausted = Options(2);
  bad_exhausted.resume = ScanResume{};
  bad_exhausted.resume->consumed = BitVector(f.store->num_blocks());
  bad_exhausted.resume->exhausted.assign(5, false);  // |VZ| is 12
  EXPECT_FALSE(BatchExecutor::Create({q}, bad_exhausted).ok());

  // A resume with every block consumed has nothing to scan: the
  // machines would finish instantly on zero samples (same condition
  // Join() rejects).
  BatchOptions all_consumed = Options(2);
  all_consumed.resume = ScanResume{};
  all_consumed.resume->consumed = BitVector(f.store->num_blocks());
  all_consumed.resume->consumed.SetAll();
  EXPECT_EQ(BatchExecutor::Create({q}, all_consumed).status().code(),
            StatusCode::kFailedPrecondition);

  BatchOptions good = Options(2);
  good.resume = ScanResume{};
  good.resume->consumed = BitVector(f.store->num_blocks());
  good.resume->exhausted.assign(12, false);
  EXPECT_TRUE(BatchExecutor::Create({q}, good).ok());
}

// ------------------------------------------------ warm stage-1 starts
// The stage-1 cache path: a cold batch exports its stage-1 snapshot
// (BatchOptions::stage1_sink), later queries consume it
// (BoundQuery::stage1_warm) and skip stage 1. The acceptance property
// mirrors the suffix-join suite: a cache-served query must be
// bit-for-bit identical to a solo run seeded with the same cached
// stage-1 state, across seeds x thread counts.

TEST(BatchExecutorWarmTest, WarmResumeFromSnapshotMatchesColdRunBitForBit) {
  // The strongest equivalence: a warm run resumed from the snapshot's
  // scan state replays exactly the cold run's post-stage-1 sampling, so
  // the cold result and the warm result are the SAME result — stage 1
  // was simply never re-drawn.
  for (uint64_t seed : {51u, 52u, 53u}) {
    BatchFixture f = MakeBatchFixture(20000, seed);
    BoundQuery q = MakeQuery(f, f.target, /*seed=*/seed);
    for (int threads : {1, 2, 5}) {
      Stage1Cache cache;
      BatchOptions cold_options = Options(threads, /*seed=*/seed * 3 + 1);
      cold_options.stage1_sink = &cache;
      auto cold = BatchExecutor::Create({q}, cold_options).value();
      std::vector<BatchItem> cold_items = cold->Run();
      ASSERT_TRUE(cold_items[0].status.ok())
          << cold_items[0].status.ToString();
      EXPECT_EQ(cold->stats().stage1_exports, 1);
      EXPECT_EQ(cold->stats().warm_queries, 0);

      auto snapshot =
          cache.Lookup(f.store->id(), kWholeStorePartition, 0, {1}, q.params.stage1_samples);
      ASSERT_NE(snapshot, nullptr);
      ASSERT_GE(snapshot->rows_drawn, q.params.stage1_samples);

      BoundQuery warm_q = q;
      warm_q.stage1_warm = snapshot;
      BatchOptions warm_options = Options(threads);
      warm_options.resume = snapshot->scan;
      auto warm = BatchExecutor::Create({warm_q}, warm_options).value();
      std::vector<BatchItem> warm_items = warm->Run();
      ASSERT_TRUE(warm_items[0].status.ok())
          << warm_items[0].status.ToString();
      EXPECT_EQ(warm->stats().warm_queries, 1);
      // A warm query never completes a stage-1 phase from the scan, so
      // nothing is exported even with a sink attached (none here).
      EXPECT_EQ(warm->stats().stage1_exports, 0);
      EXPECT_TRUE(warm_items[0].match.diag.stage1_warm);

      EXPECT_EQ(warm_items[0].match.topk, cold_items[0].match.topk);
      EXPECT_EQ(warm_items[0].match.distances, cold_items[0].match.distances);
      EXPECT_EQ(warm_items[0].match.exact, cold_items[0].match.exact);
      ExpectSameCounts(warm_items[0].match.counts, cold_items[0].match.counts,
                       "warm-resumed vs cold");
      // The warm path's whole point: the stage-1 prefix reads are gone.
      EXPECT_LT(warm->stats().blocks_read, cold->stats().blocks_read);
    }
  }
}

TEST(BatchExecutorWarmTest, WarmJoinMatchesWarmSoloResumeEveryThreadCount) {
  // Mid-flight: W joins a running scan with its stage 1 served from
  // cache, so only its stage-2/3 demands touch the suffix. Reference:
  // a solo batch resumed from the join-point scan state with the same
  // warm snapshot — bit-for-bit identical, like the suffix-join
  // property this mirrors.
  BatchFixture f = MakeBatchFixture(20000, 61);
  BoundQuery w = MakeQuery(f, f.exact.NormalizedRow(4), /*seed=*/321);

  // A's loose epsilon makes it finish early, leaving a large suffix;
  // its stage-1 phase populates the cache for the shared template.
  BoundQuery a = MakeQuery(f, f.target);
  a.params.epsilon = 0.1;

  std::vector<BatchItem> reference;
  for (int threads : {1, 2, 5}) {
    Stage1Cache cache;
    BatchOptions options = Options(threads);
    options.stage1_sink = &cache;
    auto exec = BatchExecutor::Create({a}, options).value();
    exec->Start();
    while (exec->Step()) {
    }
    ASSERT_TRUE(exec->finished());
    ASSERT_GT(exec->consumed_blocks(), 0);
    ASSERT_LT(exec->consumed_blocks(), f.store->num_blocks());
    ScanResume capture = exec->CaptureScanState();

    auto snapshot =
        cache.Lookup(f.store->id(), kWholeStorePartition, 0, {1}, w.params.stage1_samples);
    ASSERT_NE(snapshot, nullptr);
    BoundQuery warm_w = w;
    warm_w.stage1_warm = snapshot;

    auto joined = exec->Join(warm_w);
    ASSERT_TRUE(joined.ok()) << joined.status().ToString();
    while (exec->Step()) {
    }
    std::vector<BatchItem> items = exec->TakeItems();
    ASSERT_EQ(items.size(), 2u);
    ASSERT_TRUE(items[1].status.ok()) << items[1].status.ToString();
    EXPECT_TRUE(items[1].match.diag.stage1_warm);
    EXPECT_EQ(exec->stats().warm_queries, 1);

    for (int solo_threads : {1, 3}) {
      BatchOptions solo_options = Options(solo_threads);
      solo_options.resume = capture;
      auto solo = BatchExecutor::Create({warm_w}, solo_options).value();
      std::vector<BatchItem> solo_items = solo->Run();
      ASSERT_TRUE(solo_items[0].status.ok())
          << solo_items[0].status.ToString();
      EXPECT_EQ(items[1].match.topk, solo_items[0].match.topk);
      EXPECT_EQ(items[1].match.distances, solo_items[0].match.distances);
      EXPECT_EQ(items[1].match.exact, solo_items[0].match.exact);
      ExpectSameCounts(items[1].match.counts, solo_items[0].match.counts,
                       "warm joined vs warm suffix-only solo");
    }
    if (reference.empty()) {
      reference = std::move(items);
    } else {
      EXPECT_EQ(items[1].match.topk, reference[1].match.topk);
      ExpectSameCounts(items[1].match.counts, reference[1].match.counts,
                       "warm joined across thread counts");
    }
  }
}

TEST(BatchExecutorWarmTest, WarmQueriesMeetGuarantees) {
  // Statistical soundness of the overlapping case: warm queries in a
  // FRESH batch (no resume) draw stage-2/3 samples from a scan that may
  // revisit the cached prefix's rows. Each phase's statistics use only
  // its own uniform sample, so the paper's guarantees must still hold.
  BatchFixture f = MakeBatchFixture(20000, 62);
  Stage1Cache cache;

  BatchOptions prime_options = Options(2);
  prime_options.stage1_sink = &cache;
  auto prime =
      BatchExecutor::Create({MakeQuery(f, f.target, 1)}, prime_options)
          .value();
  ASSERT_TRUE(prime->Run()[0].status.ok());
  auto snapshot = cache.Lookup(f.store->id(), kWholeStorePartition, 0, {1}, 3000);
  ASSERT_NE(snapshot, nullptr);

  std::vector<BoundQuery> warm_queries = {
      MakeQuery(f, f.exact.NormalizedRow(1), 11),
      MakeQuery(f, f.exact.NormalizedRow(6), 12),
      MakeQuery(f, f.target, 13)};
  for (BoundQuery& q : warm_queries) q.stage1_warm = snapshot;
  auto exec =
      BatchExecutor::Create(warm_queries, Options(2, /*seed=*/97)).value();
  std::vector<BatchItem> items = exec->Run();
  EXPECT_EQ(exec->stats().warm_queries, 3);
  int violations = 0;
  for (size_t j = 0; j < warm_queries.size(); ++j) {
    ASSERT_TRUE(items[j].status.ok()) << items[j].status.ToString();
    EXPECT_TRUE(items[j].match.diag.stage1_warm);
    const HistSimParams& p = warm_queries[j].params;
    GroundTruth truth = ComputeGroundTruth(f.exact, warm_queries[j].target,
                                           p.metric, p.sigma, p.k);
    auto check = CheckGuarantees(items[j].match, f.exact, truth,
                                 warm_queries[j].target, p);
    violations += !check.separation_ok || !check.reconstruction_ok;
  }
  // delta = 0.05 per query; same flakiness convention as the batch and
  // join suites: allow at most 1 of 3.
  EXPECT_LE(violations, 1);
}

TEST(BatchExecutorWarmTest, MismatchedWarmSnapshotSurfacesAsItemStatus) {
  // A warm snapshot whose domain does not match the query's template is
  // a per-query error, never a batch-sinking one.
  BatchFixture f = MakeBatchFixture(2000, 63);
  auto bogus = std::make_shared<Stage1Snapshot>();
  bogus->counts = CountMatrix(5, 4);  // template is 12 x 8
  bogus->rows_drawn = 1000;
  BoundQuery bad = MakeQuery(f, f.target, 1);
  bad.stage1_warm = bogus;
  BoundQuery good = MakeQuery(f, f.target, 2);

  auto exec = BatchExecutor::Create({bad, good}, Options(2)).value();
  std::vector<BatchItem> items = exec->Run();
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].status.code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(items[1].status.ok()) << items[1].status.ToString();
  std::set<int> got(items[1].match.topk.begin(), items[1].match.topk.end());
  EXPECT_EQ(got, (std::set<int>{0, 1, 2}));
}

TEST(BatchExecutorWarmTest, OverlappingWarmExhaustionReportsTrueExactCounts) {
  // The overlap-exactness hazard: a warm query in a FRESH batch (no
  // resume) rescans rows already behind its cached prior. Pooled totals
  // are fine as estimates, but when the scan then exhausts the store,
  // "exact" must mean the true histograms — the machine subtracts the
  // overlapping prior before trusting an exhaustion signal, so the
  // result equals ground truth rather than prior + truth.
  BatchFixture f = MakeBatchFixture(200, 65, /*rows_per_block=*/25);
  Stage1Cache cache;
  BoundQuery donor = MakeQuery(f, f.target);
  donor.params.stage1_samples = 100;  // a strict prefix, not the store
  BatchOptions donor_options = Options(2, /*seed=*/7, /*chunk=*/2);
  donor_options.stage1_sink = &cache;
  auto prime = BatchExecutor::Create({donor}, donor_options).value();
  ASSERT_TRUE(prime->Run()[0].status.ok());

  auto snapshot = cache.Lookup(f.store->id(), kWholeStorePartition, 0, {1}, 100);
  ASSERT_NE(snapshot, nullptr);
  ASSERT_LT(snapshot->rows_drawn, f.store->num_rows());

  BoundQuery warm = MakeQuery(f, f.target, 9);
  warm.params.stage1_samples = 100;
  warm.stage1_warm = snapshot;
  auto exec =
      BatchExecutor::Create({warm}, Options(2, /*seed=*/31, /*chunk=*/2))
          .value();
  std::vector<BatchItem> items = exec->Run();
  ASSERT_TRUE(items[0].status.ok()) << items[0].status.ToString();
  EXPECT_TRUE(items[0].match.diag.data_exhausted);
  for (int i = 0; i < 12; ++i) {
    EXPECT_TRUE(items[0].match.exact[i]);
    // Exact means exact: the prior's double-counted rows must be gone.
    EXPECT_EQ(items[0].match.counts.RowTotal(i), f.exact.RowTotal(i))
        << "candidate " << i << " counts inflated by the cached prior";
  }
  std::set<int> got(items[0].match.topk.begin(), items[0].match.topk.end());
  EXPECT_EQ(got, (std::set<int>{0, 1, 2}));
}

TEST(BatchExecutorWarmTest, DonorExhaustionFlagsDroppedForOverlappingWarm) {
  // Variant of the hazard above with a donor snapshot that itself
  // carries an exhausted flag (a small candidate fully enumerated in
  // the donor's stage-1 window). The fresh overlapping scan re-delivers
  // that candidate's rows, so honoring the donor's flag would freeze an
  // "exact" count that every later merge keeps inflating; the machine
  // must drop the flags and re-establish exactness from its own window.
  BatchFixture f = MakeBatchFixture(200, 66, /*rows_per_block=*/25);
  auto snapshot = std::make_shared<Stage1Snapshot>();
  snapshot->counts = CountMatrix(12, 8);
  int64_t prior_rows = 0;
  for (int i = 0; i < 12; ++i) {
    int64_t* row = snapshot->counts.MutableData() + i * 8;
    for (int g = 0; g < 8; ++g) {
      row[g] = i == 0 ? f.exact.At(i, g) : f.exact.At(i, g) / 2;
      snapshot->counts.MutableRowTotals()[i] += row[g];
      prior_rows += row[g];
    }
  }
  snapshot->rows_drawn = prior_rows;
  ASSERT_LT(prior_rows, f.store->num_rows());
  snapshot->scan.exhausted.assign(12, false);
  snapshot->scan.exhausted[0] = true;
  // scan.consumed stays default (empty): bind-time disjointness cannot
  // prove the fresh scan avoids the prior's rows, so the prior is
  // treated as overlapping.

  BoundQuery warm = MakeQuery(f, f.target, 9);
  warm.params.stage1_samples = 100;
  warm.stage1_warm = snapshot;
  auto exec =
      BatchExecutor::Create({warm}, Options(2, /*seed=*/33, /*chunk=*/2))
          .value();
  std::vector<BatchItem> items = exec->Run();
  ASSERT_TRUE(items[0].status.ok()) << items[0].status.ToString();
  EXPECT_TRUE(items[0].match.diag.stage1_warm);
  EXPECT_TRUE(items[0].match.diag.data_exhausted);
  for (int i = 0; i < 12; ++i) {
    EXPECT_TRUE(items[0].match.exact[i]);
    EXPECT_EQ(items[0].match.counts.RowTotal(i), f.exact.RowTotal(i))
        << "candidate " << i << " inflated by the donor's exhaustion flag";
  }
  std::set<int> got(items[0].match.topk.begin(), items[0].match.topk.end());
  EXPECT_EQ(got, (std::set<int>{0, 1, 2}));
}

TEST(BatchExecutorWarmTest, FullCoverageSnapshotCompletesAtBind) {
  // A snapshot spanning the whole relation carries exact counts: warm
  // queries complete instantly with the exact result and the scan never
  // starts. (Tiny store: the cold donor's stage-1 draw consumes
  // everything.)
  BatchFixture f = MakeBatchFixture(200, 64, /*rows_per_block=*/25);
  Stage1Cache cache;
  BoundQuery donor = MakeQuery(f, f.target);
  donor.params.stage1_samples = f.store->num_rows();
  BatchOptions donor_options = Options(2);
  donor_options.stage1_sink = &cache;
  auto prime = BatchExecutor::Create({donor}, donor_options).value();
  ASSERT_TRUE(prime->Run()[0].status.ok());

  auto snapshot = cache.Lookup(f.store->id(), kWholeStorePartition, 0, {1}, f.store->num_rows());
  ASSERT_NE(snapshot, nullptr);
  ASSERT_EQ(snapshot->rows_drawn, f.store->num_rows());

  BoundQuery warm = MakeQuery(f, f.exact.NormalizedRow(3), 9);
  warm.stage1_warm = snapshot;
  auto exec = BatchExecutor::Create({warm}, Options(2)).value();
  std::vector<BatchItem> items = exec->Run();
  ASSERT_TRUE(items[0].status.ok()) << items[0].status.ToString();
  EXPECT_EQ(exec->stats().blocks_read, 0);
  EXPECT_TRUE(items[0].match.diag.data_exhausted);
  for (int i = 0; i < 12; ++i) {
    EXPECT_TRUE(items[0].match.exact[i]);
    EXPECT_EQ(items[0].match.counts.RowTotal(i), f.exact.RowTotal(i));
  }
  // Exact distances to candidate 3's own distribution: 3 is the top hit.
  EXPECT_EQ(items[0].match.topk.front(), 3);
}

// ------------------------------------------------ concurrency stress
// The shard-merge path under repeated batches and varying pool sizes
// (run under FASTMATCH_SANITIZE=thread to certify the WorkerPool and the
// per-chunk fork-join).

TEST(BatchExecutorStress, RepeatedBatchesKeepResultsConsistent) {
  BatchFixture f = MakeBatchFixture(8000, 10);
  TrafficOptions topt;
  topt.num_queries = 6;
  topt.params = BatchParams();
  topt.params.stage1_samples = 2000;
  for (int trial = 0; trial < 6; ++trial) {
    topt.seed = 100 + static_cast<uint64_t>(trial);
    auto batch = MakeQueryBatch(f.store, f.index, 0, {1}, topt).value();
    auto executor =
        BatchExecutor::Create(batch, Options(1 + trial % 4, topt.seed))
            .value();
    std::vector<BatchItem> items = executor->Run();
    for (const BatchItem& item : items) {
      ASSERT_TRUE(item.status.ok()) << "trial " << trial << ": "
                                    << item.status.ToString();
      // Counts never exceed the exact histograms (without replacement).
      for (int i = 0; i < 12; ++i) {
        ASSERT_LE(item.match.counts.RowTotal(i), f.exact.RowTotal(i));
      }
    }
    ASSERT_LE(executor->stats().blocks_read, f.store->num_blocks());
    ASSERT_LE(executor->stats().rows_read, f.store->num_rows());
  }
}

}  // namespace
}  // namespace fastmatch
