// Randomized scheduler torture test (ctest label: "stress"; CI runs it
// under TSan with elevated iterations).
//
// N producer threads submit / cancel / abandon queries with mixed
// deadlines and execution budgets across K stores while the scheduler
// reaps idle pipelines on a timeout shorter than the test's natural
// pauses — so admission, eager delivery, eviction, budget harvesting,
// progress publication, shedding, reaping, and shutdown all race
// for real. Half the queries carry each store's partition set, so
// scatter-gather pipelines (keyed by the set's id, separate from the
// plain store pipeline) churn through the same lifecycle storm. The RNG is seeded (FASTMATCH_STRESS_SEED) so failures
// reproduce; FASTMATCH_STRESS_ITERS scales rounds for CI soak runs.
//
// Invariants checked:
//   * every accepted Submit's future resolves (Get never hangs), and
//     resolves exactly once — a double fulfillment would throw
//     std::future_error from the scheduler's promise and abort;
//     stats.completed == stats.submitted seals the count;
//   * terminal states respect the lifecycle: a plain query ends OK
//     with the correct top-k, a deadline query ends OK or
//     DeadlineExceeded, a cancelled query ends OK or Cancelled (a
//     cancel never corrupts a result that beat it), a malformed query
//     ends InvalidArgument, and a budgeted query ends OK — either
//     exact (completion won the race) or best-effort (harvested) —
//     never DeadlineExceeded or Cancelled;
//   * the terminal-state partition seals the ledger: the scheduler's
//     per-code counters sum to the accepted submits, budget-harvested
//     results count under budget_evicted and nowhere else, and only
//     abandoned queries (whose terminal code nobody observes) leave
//     slack between observed tallies and the counters;
//   * progress channels opened mid-storm (track_progress on plain and
//     budgeted queries) deliver: an OK result's poll channel ends on a
//     final update matching the delivered distances bit-for-bit;
//   * the process thread count stays bounded by pool size + pipelines
//     + producers + slack throughout the churn (the SharedWorkerPool /
//     reaping claim), sampled while the storm runs.
//
// FASTMATCH_STAGE1_CACHE=1 re-runs the storm with the stage-1 cache
// enabled (CI's second stress invocation), so warm admission, the
// join-refusal lift, and reap invalidation all race under TSan too.
// The cache-specific churn test (stores dropped and recreated under a
// live cache) is CacheChurnAcrossStoreLifetimes below.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <random>
#include <set>
#include <thread>
#include <vector>

#include "index/bitmap_index.h"
#include "service/query_scheduler.h"
#include "storage/partitioned_store.h"
#include "test_helpers.h"
#include "util/env.h"

namespace fastmatch {
namespace {

using testing_util::MakeExactStore;
using testing_util::PlantedDistributions;

struct StressStore {
  std::shared_ptr<ColumnStore> store;
  std::shared_ptr<const BitmapIndex> index;
  std::shared_ptr<const PartitionedStore> partitions;
};

StressStore MakeStressStore(uint64_t seed) {
  StressStore s;
  std::vector<double> offsets = {0.0,  0.01, 0.02, 0.06, 0.09, 0.12,
                                 0.15, 0.17, 0.19, 0.21, 0.23, 0.25};
  auto dists = PlantedDistributions(12, 8, offsets);
  s.store = MakeExactStore(std::vector<int64_t>(12, 1500), dists, seed, 50);
  s.index = BitmapIndex::Build(*s.store, 0).value();
  s.partitions = PartitionedStore::Split(s.store, 3).value();
  return s;
}

HistSimParams StressParams(uint64_t seed) {
  HistSimParams p;
  p.k = 3;
  p.epsilon = 0.08;
  p.delta = 0.05;
  p.sigma = 0.0;
  p.stage1_samples = 600;
  p.seed = seed;
  return p;
}

enum class Action { kPlain, kDeadline, kCancel, kAbandon, kMalformed, kBudget };

struct Outcome {
  Action action;
  StatusCode code;
  bool topk_ok = false;
  bool best_effort = false;
  // The poll channel's last update reproduced the delivered result
  // (only meaningful when tracked && code == kOk).
  bool tracked = false;
  bool progress_final_ok = false;
};

TEST(LifecycleStressTest, RandomizedSubmitCancelAbandonChurn) {
  const int64_t iters = GetEnvInt64("FASTMATCH_STRESS_ITERS", 1);
  const uint64_t base_seed = static_cast<uint64_t>(
      GetEnvInt64("FASTMATCH_STRESS_SEED", 20180501));
  const int kStores = 3;
  const int kProducers = 4;
  const int kQueriesPerProducer = static_cast<int>(24 * iters);
  const int kRounds = 2;

  SharedWorkerPool pool(3);
  const int baseline_threads = CountProcessThreads();
  if (baseline_threads <= 0) {
    GTEST_SKIP() << "/proc/self/task unavailable on this platform; the "
                    "thread-bound invariant cannot be measured";
  }

  for (int round = 0; round < kRounds; ++round) {
    // Fresh stores every round: pipelines from the previous round are
    // dead, and the new stores may reuse freed addresses — the id-keyed
    // pipeline map must never alias them.
    std::vector<StressStore> stores;
    for (int s = 0; s < kStores; ++s) {
      stores.push_back(
          MakeStressStore(base_seed + static_cast<uint64_t>(round * 100 + s)));
    }

    SchedulerOptions options;
    options.batch.num_threads = 2;
    options.batch.chunk_blocks = 32;
    options.max_batch_queries = 4;
    options.max_queue_wait_seconds = 0.002;
    options.min_join_suffix_fraction = 0.0;
    options.eager_delivery = true;
    options.idle_pipeline_timeout_seconds = 0.02;
    options.pool = &pool;
    // CI soaks the storm twice: cold (default) and with the stage-1
    // cache racing the same churn (FASTMATCH_STAGE1_CACHE=1).
    options.stage1_cache = GetEnvInt64("FASTMATCH_STAGE1_CACHE", 0) != 0;

    std::vector<std::vector<Outcome>> outcomes(kProducers);
    std::atomic<int64_t> accepted{0};
    std::atomic<int> max_threads{0};
    std::atomic<bool> storm_over{false};
    SchedulerStats final_stats;

    {
      QueryScheduler scheduler(options);

      // Thread-count monitor: samples while the storm runs, so the
      // bound is checked at peak churn, not after it subsides.
      std::thread monitor([&] {
        while (!storm_over.load(std::memory_order_relaxed)) {
          const int now = CountProcessThreads();
          int seen = max_threads.load(std::memory_order_relaxed);
          while (now > seen && !max_threads.compare_exchange_weak(
                                   seen, now, std::memory_order_relaxed)) {
          }
          std::this_thread::sleep_for(std::chrono::microseconds(500));
        }
      });

      std::vector<std::thread> producers;
      for (int t = 0; t < kProducers; ++t) {
        producers.emplace_back([&, t] {
          std::mt19937_64 rng(base_seed ^
                              (static_cast<uint64_t>(round * 1000 + t) * 1099511628211ULL));
          std::uniform_real_distribution<double> uni(0.0, 1.0);
          for (int q = 0; q < kQueriesPerProducer; ++q) {
            const StressStore& target_store =
                stores[static_cast<size_t>(rng() % kStores)];
            BoundQuery query;
            query.store = target_store.store;
            query.z_index = target_store.index;
            query.z_attr = 0;
            query.x_attrs = {1};
            query.target = UniformDistribution(8);
            query.params = StressParams(rng());
            // Half the traffic runs scatter-gather: the partition set
            // routes it to the store's sharded pipeline, which lives
            // (and dies, and is reaped) independently of the plain one.
            if (rng() % 2 == 0) query.partitions = target_store.partitions;

            const double draw = uni(rng);
            Action action;
            if (draw < 0.15) {
              action = Action::kDeadline;
            } else if (draw < 0.30) {
              action = Action::kCancel;
            } else if (draw < 0.40) {
              action = Action::kAbandon;
            } else if (draw < 0.45) {
              action = Action::kMalformed;
              query.target = UniformDistribution(5);  // |VX| is 8
            } else if (draw < 0.60) {
              action = Action::kBudget;
            } else {
              action = Action::kPlain;
            }

            SubmitOptions submit;
            if (action == Action::kDeadline) {
              // 50us..2ms: some shed, some slip in before expiring.
              submit.deadline_seconds = 5e-5 + uni(rng) * 2e-3;
            }
            if (action == Action::kBudget) {
              // 50us..2ms: some harvested at the first chunk boundary,
              // some only after real progress, some beaten by the
              // machine completing — the evict-vs-completion race runs
              // for real here.
              submit.budget_seconds = 5e-5 + uni(rng) * 2e-3;
            }
            // Half the plain/budget traffic opens a progress channel,
            // so chunk-boundary publication races eviction, joins, and
            // eager delivery under TSan.
            const bool tracked =
                (action == Action::kPlain || action == Action::kBudget) &&
                rng() % 2 == 0;
            submit.track_progress = tracked;
            auto handle = scheduler.Submit(query, submit);
            if (!handle.ok()) {
              // Back-pressure is the only legal Submit-time refusal in
              // this storm.
              ASSERT_EQ(handle.status().code(),
                        StatusCode::kResourceExhausted);
              continue;
            }
            accepted.fetch_add(1, std::memory_order_relaxed);

            switch (action) {
              case Action::kAbandon:
                // Handle dropped without Get(): must auto-cancel.
                break;
              case Action::kCancel: {
                std::this_thread::sleep_for(std::chrono::microseconds(
                    static_cast<int64_t>(uni(rng) * 2000)));
                handle->Cancel();
                Outcome o{action, StatusCode::kOk, false};
                SchedulerItem item = handle->Get();
                o.code = item.status.code();
                if (item.status.ok()) {
                  std::set<int> got(item.match.topk.begin(),
                                    item.match.topk.end());
                  o.topk_ok = got == std::set<int>{0, 1, 2};
                }
                outcomes[static_cast<size_t>(t)].push_back(o);
                break;
              }
              default: {
                Outcome o{action, StatusCode::kOk, false};
                o.tracked = tracked;
                SchedulerItem item = handle->Get();
                o.code = item.status.code();
                if (item.status.ok()) {
                  std::set<int> got(item.match.topk.begin(),
                                    item.match.topk.end());
                  o.topk_ok = got == std::set<int>{0, 1, 2};
                  o.best_effort = item.match.best_effort;
                  if (tracked) {
                    // An OK result's final update is published before
                    // its future is fulfilled: the poll channel must
                    // already hold it, bit-for-bit.
                    const std::optional<ProgressUpdate> latest =
                        handle->Progress();
                    o.progress_final_ok = latest.has_value() &&
                                          latest->final_update &&
                                          latest->distances ==
                                              item.match.distances &&
                                          latest->error_bars ==
                                              item.match.error_bars;
                  }
                }
                outcomes[static_cast<size_t>(t)].push_back(o);
                break;
              }
            }
            if (uni(rng) < 0.2) {
              // Occasional pauses longer than the reap timeout, so
              // pipelines die and are recreated mid-storm.
              std::this_thread::sleep_for(std::chrono::milliseconds(25));
            }
          }
        });
      }
      for (std::thread& producer : producers) producer.join();

      // Abandoned queries resolve without an observer: wait for the
      // scheduler to account for every accepted query before teardown
      // (bounded poll — shutdown would mask a hang here).
      const int64_t want = accepted.load(std::memory_order_relaxed);
      for (int spin = 0; scheduler.stats().completed < want && spin < 20000;
           ++spin) {
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
      SchedulerStats stats = scheduler.stats();
      EXPECT_EQ(stats.completed, want)
          << "round " << round << ": not every accepted future resolved";
      EXPECT_EQ(stats.submitted, want);
      if (options.stage1_cache) {
        // Every cache lookup is a hit or a miss, nothing double-counted,
        // even while admission races reaps and evictions.
        EXPECT_EQ(stats.stage1_lookups, stats.stage1_hits + stats.stage1_misses)
            << "round " << round << ": cache counters do not reconcile";
        EXPECT_LE(stats.joins_enabled_by_cache, stats.joined_midflight);
      }

      storm_over.store(true, std::memory_order_relaxed);
      monitor.join();
      scheduler.Shutdown();
      final_stats = scheduler.stats();
    }

    // Lifecycle legality per category. Top-k quality is judged in
    // aggregate, not per query: HistSim's separation guarantee is
    // probabilistic (delta per query), so a small fraction of OK
    // results may legally rank a borderline candidate differently.
    // Best-effort (budget-harvested) results are excluded from the
    // quality aggregate — they claim only their error bars, whose
    // honesty test_anytime pins against closed-form ground truth.
    int64_t ok_results = 0, wrong_topk = 0;
    int64_t observed = 0, observed_deadline = 0, observed_cancelled = 0,
            observed_best_effort = 0;
    for (const auto& per_thread : outcomes) {
      for (const Outcome& o : per_thread) {
        ++observed;
        observed_deadline += o.code == StatusCode::kDeadlineExceeded;
        observed_cancelled += o.code == StatusCode::kCancelled;
        observed_best_effort += o.code == StatusCode::kOk && o.best_effort;
        if (o.code == StatusCode::kOk && !o.best_effort) {
          ++ok_results;
          wrong_topk += !o.topk_ok;
        }
        if (o.tracked && o.code == StatusCode::kOk) {
          ASSERT_TRUE(o.progress_final_ok)
              << "a tracked OK query's poll channel did not end on its "
                 "delivered result";
        }
        switch (o.action) {
          case Action::kPlain:
            ASSERT_EQ(o.code, StatusCode::kOk);
            ASSERT_FALSE(o.best_effort) << "harvest without a budget";
            break;
          case Action::kBudget:
            // A budget is never an error: expiry harvests a
            // best-effort OK result, and a completion that won the
            // race delivers the exact one.
            ASSERT_EQ(o.code, StatusCode::kOk) << StatusCodeName(o.code);
            break;
          case Action::kDeadline:
            ASSERT_TRUE(o.code == StatusCode::kOk ||
                        o.code == StatusCode::kDeadlineExceeded)
                << StatusCodeName(o.code);
            break;
          case Action::kCancel:
            // A cancel that lost the race must deliver an intact
            // result, never a corrupted one (checked via topk below).
            ASSERT_TRUE(o.code == StatusCode::kOk ||
                        o.code == StatusCode::kCancelled)
                << StatusCodeName(o.code);
            break;
          case Action::kMalformed:
            ASSERT_EQ(o.code, StatusCode::kInvalidArgument);
            break;
          case Action::kAbandon:
            FAIL() << "abandoned queries record no outcome";
        }
      }
    }
    ASSERT_GT(ok_results, 0);
    // delta = 0.05 per query; 0.25 leaves a wide margin while still
    // catching systematic corruption (e.g. torn counts under races).
    EXPECT_LE(static_cast<double>(wrong_topk),
              0.25 * static_cast<double>(ok_results))
        << "round " << round << ": " << wrong_topk << "/" << ok_results
        << " OK results had a wrong top-k";

    // Terminal-state partition: every accepted submit resolved under
    // exactly one code, and the per-code counters reconcile with the
    // observed outcomes. Only abandoned queries go unobserved (their
    // auto-cancel ends OK or Cancelled), so they are the only slack;
    // budget harvests count under budget_evicted and NOWHERE else —
    // above all not under deadline_exceeded, the bug class this PR
    // fixes.
    const int64_t total = accepted.load(std::memory_order_relaxed);
    const int64_t unobserved = total - observed;
    ASSERT_GE(unobserved, 0);
    EXPECT_EQ(final_stats.budget_evicted, observed_best_effort)
        << "round " << round;
    EXPECT_EQ(final_stats.deadline_exceeded, observed_deadline)
        << "round " << round;
    EXPECT_EQ(final_stats.unavailable, 0)
        << "round " << round << ": all futures resolved before Shutdown";
    EXPECT_GE(final_stats.cancelled, observed_cancelled) << "round " << round;
    EXPECT_LE(final_stats.cancelled, observed_cancelled + unobserved)
        << "round " << round;
    const int64_t ok_or_invalid_terminals =
        total - final_stats.deadline_exceeded - final_stats.cancelled -
        final_stats.unavailable;
    const int64_t observed_ok_or_invalid =
        observed - observed_deadline - observed_cancelled;
    EXPECT_GE(ok_or_invalid_terminals, observed_ok_or_invalid)
        << "round " << round << ": the partition lost a terminal state";
    EXPECT_LE(ok_or_invalid_terminals, observed_ok_or_invalid + unobserved)
        << "round " << round << ": the partition double-counted";

    // Thread bound: shared pool workers + one driver per live pipeline
    // — up to two per store (plain + sharded), and old and new can
    // overlap briefly around a reap — + the janitor + producers +
    // monitor + slack for the test harness.
    const int bound = baseline_threads + pool.size() + 2 * (2 * kStores) + 1 +
                      kProducers + 1 + 4;
    EXPECT_LE(max_threads.load(), bound)
        << "round " << round << ": thread count not bounded";
    EXPECT_GT(max_threads.load(), baseline_threads);
  }
}

// ------------------------------------------------- stage-1 cache churn
// Stores are dropped and recreated under ONE live scheduler while the
// stage-1 cache serves, ages (TTL), and invalidates (reap) entries.
//
// Isolation is made observable two ways: each store generation uses a
// DIFFERENT group cardinality (|VX| alternates 8/10), so a cross-store
// cache hit would fail the machine's domain check and surface as an
// InvalidArgument result (we assert there are none); and each store
// plants a DIFFERENT winner set (rotated offsets), so even a
// same-shaped contamination would corrupt the top-k past the aggregate
// tolerance. ColumnStore ids are never reused by construction — this
// test is the empirical seal on that design.
//
// Counter reconciliation: lookups == hits + misses at every snapshot;
// per phase, the post-TTL wave stale-evicts the aged entries and the
// follow-up wave is served warm (bounded-retry, not single-shot: on a
// single-core box a wave can take arbitrarily long under TSan).

TEST(LifecycleStressTest, CacheChurnAcrossStoreLifetimes) {
  const int64_t iters = GetEnvInt64("FASTMATCH_STRESS_ITERS", 1);
  const uint64_t base_seed = static_cast<uint64_t>(
      GetEnvInt64("FASTMATCH_STRESS_SEED", 20180501));
  const int kStores = 2;
  const int kProducers = 3;
  const int kStormQueries = static_cast<int>(4 * iters);
  const int kPhases = 2;
  const double kTtl = 0.3;

  SharedWorkerPool pool(3);
  SchedulerOptions options;
  options.batch.num_threads = 2;
  options.batch.chunk_blocks = 32;
  options.max_batch_queries = 4;
  options.max_queue_wait_seconds = 0.002;
  options.min_join_suffix_fraction = 0.0;
  options.eager_delivery = true;
  // Long enough that no pipeline dies between waves of one phase; the
  // phase end polls for the reap explicitly.
  options.idle_pipeline_timeout_seconds = 2.0;
  options.stage1_cache = true;
  options.stage1_cache_ttl_seconds = kTtl;
  options.pool = &pool;
  QueryScheduler scheduler(options);

  const std::vector<double> base_offsets = {0.0,  0.01, 0.02, 0.06,
                                            0.09, 0.12, 0.15, 0.17,
                                            0.19, 0.21, 0.23, 0.25};
  const int vz = static_cast<int>(base_offsets.size());

  for (int phase = 0; phase < kPhases; ++phase) {
    // Fresh stores, fresh identities: |VX| alternates by store, winners
    // rotate by (phase, store).
    struct PhaseStore {
      std::shared_ptr<ColumnStore> store;
      std::shared_ptr<const BitmapIndex> index;
      std::shared_ptr<const PartitionedStore> partitions;
      Distribution target;
      std::set<int> winners;
    };
    std::vector<PhaseStore> stores;
    for (int s = 0; s < kStores; ++s) {
      const int vx = 8 + 2 * (s % 2);
      const int rotation = 3 * s + phase;
      std::vector<double> offsets(base_offsets.size());
      PhaseStore ps;
      for (int i = 0; i < vz; ++i) {
        offsets[static_cast<size_t>(i)] =
            base_offsets[static_cast<size_t>((i + rotation) % vz)];
        if ((i + rotation) % vz < 3) ps.winners.insert(i);
      }
      auto dists = PlantedDistributions(vz, vx, offsets);
      ps.store = MakeExactStore(std::vector<int64_t>(vz, 1500), dists,
                                base_seed + static_cast<uint64_t>(
                                                phase * 100 + s),
                                50);
      ps.index = BitmapIndex::Build(*ps.store, 0).value();
      ps.partitions = PartitionedStore::Split(ps.store, 2).value();
      ps.target = UniformDistribution(vx);
      stores.push_back(std::move(ps));
    }

    const auto make_query = [&](int s, uint64_t seed,
                                bool partitioned = false) {
      BoundQuery query;
      query.store = stores[static_cast<size_t>(s)].store;
      query.z_index = stores[static_cast<size_t>(s)].index;
      query.z_attr = 0;
      query.x_attrs = {1};
      query.target = stores[static_cast<size_t>(s)].target;
      query.params = StressParams(seed);
      if (partitioned) {
        query.partitions = stores[static_cast<size_t>(s)].partitions;
      }
      return query;
    };
    std::atomic<int64_t> ok_results{0};
    std::atomic<int64_t> wrong_topk{0};
    std::atomic<int64_t> illegal{0};
    const auto record = [&](int s, const SchedulerItem& item) {
      if (item.status.ok()) {
        ok_results.fetch_add(1, std::memory_order_relaxed);
        std::set<int> got(item.match.topk.begin(), item.match.topk.end());
        if (got != stores[static_cast<size_t>(s)].winners) {
          wrong_topk.fetch_add(1, std::memory_order_relaxed);
        }
      } else {
        // Back-pressure never surfaces through a future, and nothing
        // here cancels or deadlines: any non-OK terminal state — above
        // all InvalidArgument from a cross-store snapshot — is illegal.
        illegal.fetch_add(1, std::memory_order_relaxed);
      }
    };

    // Cold storm: concurrent producers across this generation's stores.
    std::vector<std::thread> producers;
    for (int t = 0; t < kProducers; ++t) {
      producers.emplace_back([&, t] {
        std::mt19937_64 rng(base_seed ^ static_cast<uint64_t>(
                                            (phase * 10 + t + 1) * 2654435761ULL));
        for (int q = 0; q < kStormQueries; ++q) {
          const int s = static_cast<int>(rng() % kStores);
          // Half the storm is scatter-gather: its per-partition cache
          // entries (keyed by the set's id) must honor the same churn
          // invariants, and the phase-end reap must drop them too.
          auto handle =
              scheduler.Submit(make_query(s, rng(), rng() % 2 == 0));
          if (!handle.ok()) {
            ASSERT_EQ(handle.status().code(), StatusCode::kResourceExhausted);
            continue;
          }
          record(s, handle->Get());
        }
      });
    }
    for (std::thread& producer : producers) producer.join();

    // Ensure every store holds an entry before aging it: a mid-storm
    // reap could have invalidated one, and a store the storm's RNG
    // visited last may hold a stale-ish stamp — one sequential query
    // per store either hits (entry exists) or re-primes it cold.
    for (int s = 0; s < kStores; ++s) {
      auto handle = scheduler.Submit(make_query(s, 555 + s));
      ASSERT_TRUE(handle.ok());
      record(s, handle->Get());
      ASSERT_GE(scheduler.stage1_cache()->size(), s + 1);
    }

    // Age every entry past the TTL, then touch each store once: the
    // aged entries must be evicted as stale (and re-primed by the same
    // cold runs).
    const SchedulerStats before_stale = scheduler.stats();
    std::this_thread::sleep_for(
        std::chrono::duration<double>(kTtl * 1.5));
    for (int s = 0; s < kStores; ++s) {
      auto handle = scheduler.Submit(make_query(s, 977 + s));
      ASSERT_TRUE(handle.ok());
      record(s, handle->Get());
    }
    EXPECT_GE(scheduler.stats().stage1_stale_evictions,
              before_stale.stage1_stale_evictions + kStores)
        << "phase " << phase << ": aged entries were not stale-evicted";

    // Warm wave, bounded-retry: fresh entries exist now, so a prompt
    // follow-up is served from cache. A slow box can outlive the TTL
    // between waves — retry instead of asserting a single window.
    bool warm_seen = false;
    for (int attempt = 0; attempt < 10 && !warm_seen; ++attempt) {
      const SchedulerStats before = scheduler.stats();
      for (int s = 0; s < kStores; ++s) {
        auto handle = scheduler.Submit(make_query(s, 1999 + attempt * 10 + s));
        ASSERT_TRUE(handle.ok());
        SchedulerItem item = handle->Get();
        record(s, item);
        warm_seen = warm_seen || item.match.diag.stage1_warm;
      }
      warm_seen = warm_seen ||
                  scheduler.stats().stage1_hits > before.stage1_hits;
    }
    EXPECT_TRUE(warm_seen)
        << "phase " << phase << ": no warm admission in 10 waves";

    // Correctness ledger for the phase: every future legal, top-k
    // matching THIS generation's planted winners within the aggregate
    // tolerance (delta = 0.05 per query).
    EXPECT_EQ(illegal.load(), 0) << "phase " << phase;
    ASSERT_GT(ok_results.load(), 0);
    EXPECT_LE(static_cast<double>(wrong_topk.load()),
              0.25 * static_cast<double>(ok_results.load()))
        << "phase " << phase << ": " << wrong_topk.load() << "/"
        << ok_results.load() << " OK results had a wrong top-k";

    // Drop this generation: stores die, pipelines idle out, and the
    // janitor must invalidate the dead ids' entries (bounded poll, not
    // a single timing window).
    const SchedulerStats before_drop = scheduler.stats();
    stores.clear();
    for (int spin = 0; spin < 40000; ++spin) {
      if (scheduler.stage1_cache()->size() == 0 &&
          scheduler.stats().stage1_store_invalidations >
              before_drop.stage1_store_invalidations) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
    EXPECT_EQ(scheduler.stage1_cache()->size(), 0)
        << "phase " << phase << ": dead stores left cache entries behind";
    EXPECT_GT(scheduler.stats().stage1_store_invalidations,
              before_drop.stage1_store_invalidations);
  }

  // Final reconciliation: every lookup accounted for, joins enabled by
  // the cache are a subset of joins, and every future resolved.
  SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.stage1_lookups, stats.stage1_hits + stats.stage1_misses);
  EXPECT_GT(stats.stage1_hits, 0);
  EXPECT_GT(stats.stage1_inserts, 0);
  EXPECT_LE(stats.joins_enabled_by_cache, stats.joined_midflight);
  EXPECT_EQ(stats.completed, stats.submitted);
  scheduler.Shutdown();
}

}  // namespace
}  // namespace fastmatch
