// Parameterized property sweeps of the sampling engine: across policies,
// lookahead values and block sizes, the engine must (a) meet every
// requested target or prove exhaustion, (b) never read a row twice, and
// (c) reproduce the exact histograms on full consumption.

#include <gtest/gtest.h>

#include "core/verify.h"
#include "engine/sampling_engine.h"
#include "test_helpers.h"

namespace fastmatch {
namespace {

using testing_util::MakeExactStore;
using testing_util::PlantedDistributions;

struct EngineCase {
  BlockSelection policy;
  int lookahead;
  int rows_per_block;
};

std::string PolicyName(BlockSelection p) {
  switch (p) {
    case BlockSelection::kScanAll:
      return "ScanAll";
    case BlockSelection::kAnyActiveSync:
      return "Sync";
    case BlockSelection::kAnyActiveLookahead:
      return "Lookahead";
  }
  return "?";
}

class EngineSweep : public ::testing::TestWithParam<EngineCase> {
 protected:
  void SetUp() override {
    const EngineCase c = GetParam();
    // Uneven candidate sizes, including one small candidate to exercise
    // exhaustion under aggressive targets.
    std::vector<int64_t> counts = {400, 9000, 15000, 27000, 3000};
    auto dists =
        PlantedDistributions(5, 6, {0.0, 0.05, 0.1, 0.15, 0.2});
    store_ = MakeExactStore(counts, dists, 21, c.rows_per_block);
    index_ = BitmapIndex::Build(*store_, 0).value();
    exact_ = ComputeExactCounts(*store_, 0, {1}).value();
  }

  std::unique_ptr<SamplingEngine> NewEngine(uint64_t seed) {
    const EngineCase c = GetParam();
    EngineOptions options;
    options.policy = c.policy;
    options.lookahead = c.lookahead;
    options.seed = seed;
    return SamplingEngine::Create(store_, index_, 0, {1}, options).value();
  }

  std::shared_ptr<ColumnStore> store_;
  std::shared_ptr<BitmapIndex> index_;
  CountMatrix exact_;
};

TEST_P(EngineSweep, TargetsMetOrExhausted) {
  auto engine = NewEngine(3);
  CountMatrix out(5, 6);
  std::vector<bool> exhausted(5, false);
  const std::vector<int64_t> targets = {1000, 2000, -1, 5000, 4000};
  engine->SampleUntilTargets(targets, &out, &exhausted);
  for (int i = 0; i < 5; ++i) {
    if (targets[i] < 0) continue;
    EXPECT_TRUE(out.RowTotal(i) >= targets[i] || exhausted[i])
        << "candidate " << i;
    if (exhausted[i]) {
      // Exhausted candidates are exactly enumerated within this phase
      // plus nothing prior (fresh engine), i.e. equal to exact counts.
      EXPECT_EQ(out.RowTotal(i), exact_.RowTotal(i));
    }
  }
}

TEST_P(EngineSweep, NeverReadsMoreRowsThanExist) {
  auto engine = NewEngine(5);
  CountMatrix out(5, 6);
  std::vector<bool> exhausted(5, false);
  engine->SampleUntilTargets({100000, 100000, 100000, 100000, 100000}, &out,
                             &exhausted);
  EXPECT_LE(engine->rows_consumed(), store_->num_rows());
  EXPECT_TRUE(engine->AllConsumed());
  // Full consumption across phases reproduces exact counts cell-wise.
  for (int i = 0; i < 5; ++i) {
    for (int g = 0; g < 6; ++g) {
      EXPECT_EQ(out.At(i, g), exact_.At(i, g)) << i << "," << g;
    }
  }
}

TEST_P(EngineSweep, MultiPhaseCountsRemainDisjoint) {
  auto engine = NewEngine(7);
  CountMatrix total(5, 6);
  // Phase 1: stage-1 style.
  engine->SampleRows(6000, &total);
  // Phases 2-4: shifting targets.
  for (int64_t t : {500, 1500, 4000}) {
    CountMatrix round(5, 6);
    std::vector<bool> exhausted(5, false);
    engine->SampleUntilTargets({t, t, t, t, t}, &round, &exhausted);
    total.Merge(round);
  }
  // The union of all phases never exceeds the exact counts (without
  // replacement) in any cell.
  for (int i = 0; i < 5; ++i) {
    for (int g = 0; g < 6; ++g) {
      EXPECT_LE(total.At(i, g), exact_.At(i, g)) << i << "," << g;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EngineSweep,
    ::testing::Values(
        EngineCase{BlockSelection::kScanAll, 1, 50},
        EngineCase{BlockSelection::kScanAll, 1, 7},
        EngineCase{BlockSelection::kAnyActiveSync, 1, 50},
        EngineCase{BlockSelection::kAnyActiveSync, 1, 300},
        EngineCase{BlockSelection::kAnyActiveLookahead, 1, 50},
        EngineCase{BlockSelection::kAnyActiveLookahead, 16, 50},
        EngineCase{BlockSelection::kAnyActiveLookahead, 1024, 50},
        EngineCase{BlockSelection::kAnyActiveLookahead, 16, 7},
        EngineCase{BlockSelection::kAnyActiveLookahead, 4096, 300}),
    [](const auto& info) {
      return PolicyName(info.param.policy) + "_la" +
             std::to_string(info.param.lookahead) + "_b" +
             std::to_string(info.param.rows_per_block);
    });

// ------------------------------------------------ concurrency stress

// The lookahead mode races a marker thread against the I/O thread with an
// early-stop handoff; run it repeatedly to shake out interleavings (this
// caught a real bug: exhaustion conclusions derived from discarded
// marks).
TEST(LookaheadStress, RepeatedRunsKeepPostconditions) {
  std::vector<int64_t> counts = {2000, 8000, 12000, 20000};
  auto dists = PlantedDistributions(4, 6, {0.0, 0.07, 0.14, 0.21});
  auto store = MakeExactStore(counts, dists, 31, 25);
  auto index = BitmapIndex::Build(*store, 0).value();
  auto exact = ComputeExactCounts(*store, 0, {1}).value();

  for (int trial = 0; trial < 40; ++trial) {
    EngineOptions options;
    options.policy = BlockSelection::kAnyActiveLookahead;
    options.lookahead = 8 + (trial % 5) * 31;
    options.seed = static_cast<uint64_t>(trial);
    auto engine =
        SamplingEngine::Create(store, index, 0, {1}, options).value();
    CountMatrix out(4, 6);
    std::vector<bool> exhausted(4, false);
    const std::vector<int64_t> targets = {3000, 3000, 3000, 3000};
    engine->SampleUntilTargets(targets, &out, &exhausted);
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(out.RowTotal(i) >= targets[i] || exhausted[i])
          << "trial " << trial << " candidate " << i;
      if (exhausted[i]) {
        // Exhaustion claims must be true: candidate fully enumerated.
        ASSERT_EQ(out.RowTotal(i), exact.RowTotal(i))
            << "trial " << trial << " candidate " << i
            << ": false exhaustion claim";
      }
      ASSERT_LE(out.RowTotal(i), exact.RowTotal(i));
    }
    ASSERT_LE(engine->rows_consumed(), store->num_rows());
  }
}

}  // namespace
}  // namespace fastmatch
