// Append/rebuild equivalence suite for generation-versioned streaming
// ingest (storage/column_store.h AppendBatch):
//
//   * a store grown through AppendBatch waves holds the same row
//     multiset as a fresh-shuffled build and satisfies the same HistSim
//     guarantees (the per-generation sub-shuffle preserves the paper's
//     §4.1 pre-shuffled-relation property per generation prefix),
//     across seeds x thread counts;
//   * a scan pinned at generation g is bit-for-bit stable under
//     concurrent appends — identical results, identical I/O — because
//     appends only ever write rows past every older pin's row count;
//   * ScanResume round-trips its generation: a resume created before an
//     append replays identically after it (the resumed batch re-pins
//     the donor's generation, not the current one);
//   * PartitionedStore::AppendBatch preserves the logical multiset and
//     the guarantees of the scatter-gather scan;
//   * the acceptance property of the stage-1 cache work: a cached prior
//     drawn at generation g is NEVER served at generation g' > g
//     without an explicit revalidation stamp — the executor drops the
//     stale warm start and runs the query cold (this test fails if the
//     generation check is skipped).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "core/verify.h"
#include "engine/batch_executor.h"
#include "engine/executor.h"
#include "engine/sharded_batch_executor.h"
#include "index/bitmap_index.h"
#include "service/stage1_cache.h"
#include "storage/partitioned_store.h"
#include "test_helpers.h"

namespace fastmatch {
namespace {

using testing_util::MakeExactStore;
using testing_util::PlantedDistributions;

constexpr int kCandidates = 12;
constexpr int kGroups = 8;

std::vector<double> StaggeredOffsets() {
  // True top-3 is {0, 1, 2}, same planted structure as the batch tests.
  return {0.0,  0.01, 0.02, 0.06, 0.09, 0.12,
          0.15, 0.17, 0.19, 0.21, 0.23, 0.25};
}

void ExpectSameCounts(const CountMatrix& a, const CountMatrix& b,
                      const char* what) {
  ASSERT_EQ(a.num_candidates(), b.num_candidates());
  ASSERT_EQ(a.num_groups(), b.num_groups());
  for (int i = 0; i < a.num_candidates(); ++i) {
    for (int g = 0; g < a.num_groups(); ++g) {
      ASSERT_EQ(a.At(i, g), b.At(i, g))
          << what << ": divergence at cell " << i << "," << g;
    }
  }
}

/// Extracts rows [begin, end) of a quiescent store as FromColumns /
/// AppendBatch-shaped column vectors.
std::vector<std::vector<Value>> SliceColumns(const ColumnStore& store,
                                             RowId begin, RowId end) {
  std::vector<std::vector<Value>> cols(2);
  for (RowId r = begin; r < end; ++r) {
    cols[0].push_back(store.column(0).Get(r));
    cols[1].push_back(store.column(1).Get(r));
  }
  return cols;
}

/// Builds a store holding the same row multiset as `reference` but grown
/// through streaming ingest: rows [0, initial) arrive as the
/// pre-publication build (generation 1), the rest in `waves`
/// AppendBatch calls (generations 2..waves+1).
std::shared_ptr<ColumnStore> GrowStore(const ColumnStore& reference,
                                       int64_t initial, int waves,
                                       uint64_t seed) {
  StorageOptions options;
  options.rows_per_block_override = reference.rows_per_block();
  auto grown = ColumnStore::FromColumns(
                   reference.schema(), SliceColumns(reference, 0, initial),
                   options)
                   .value();
  grown->Shuffle(seed);
  const int64_t total = reference.num_rows();
  const int64_t per_wave = (total - initial + waves - 1) / waves;
  int64_t at = initial;
  int wave = 0;
  while (at < total) {
    const RowId end = std::min<RowId>(total, at + per_wave);
    auto generation =
        grown->AppendBatch(SliceColumns(reference, at, end),
                           seed * 7919 + static_cast<uint64_t>(++wave));
    EXPECT_TRUE(generation.ok()) << generation.status().ToString();
    EXPECT_EQ(generation.value(), static_cast<uint64_t>(1 + wave));
    at = end;
  }
  return grown;
}

/// A small batch whose X marginal is maximally skewed (every row in the
/// last group): appending it drifts every candidate's distribution.
std::vector<std::vector<Value>> DriftColumns(int64_t rows) {
  std::vector<std::vector<Value>> cols(2);
  for (int64_t r = 0; r < rows; ++r) {
    cols[0].push_back(static_cast<Value>(r % kCandidates));
    cols[1].push_back(kGroups - 1);
  }
  return cols;
}

HistSimParams IngestParams(uint64_t seed = 42) {
  HistSimParams p;
  p.k = 3;
  p.epsilon = 0.05;
  p.delta = 0.05;
  p.sigma = 0.0;
  p.stage1_samples = 3000;
  p.seed = seed;
  return p;
}

BoundQuery MakeQuery(std::shared_ptr<const ColumnStore> store,
                     std::shared_ptr<const BitmapIndex> index,
                     uint64_t seed = 42) {
  BoundQuery q;
  q.store = std::move(store);
  q.z_index = std::move(index);
  q.z_attr = 0;
  q.x_attrs = {1};
  q.target = UniformDistribution(kGroups);
  q.params = IngestParams(seed);
  return q;
}

BatchOptions Options(int threads, uint64_t seed = 7, int chunk = 64) {
  BatchOptions o;
  o.num_threads = threads;
  o.chunk_blocks = chunk;
  o.seed = seed;
  return o;
}

// ------------------------------------------------ append/rebuild equivalence

TEST(IngestEquivalenceTest, AppendBuiltStoreSatisfiesTheSameGuarantees) {
  // The tentpole's sampling-soundness claim, exercised end to end: a
  // store grown by AppendBatch waves is as good a HistSim substrate as
  // one shuffled fresh over the full relation — same exact counts (the
  // multiset survived), same guaranteed top-k (the per-generation
  // sub-shuffle kept sequential scans uniform), across seeds and
  // thread counts.
  for (uint64_t seed : {91u, 92u}) {
    auto dists = PlantedDistributions(kCandidates, kGroups, StaggeredOffsets());
    auto fresh = MakeExactStore(std::vector<int64_t>(kCandidates, 20000),
                                dists, seed, /*rows_per_block=*/50);
    auto grown = GrowStore(*fresh, fresh->num_rows() / 2, /*waves=*/3, seed);
    ASSERT_EQ(grown->num_rows(), fresh->num_rows());
    ASSERT_EQ(grown->num_blocks(), fresh->num_blocks());
    EXPECT_EQ(grown->generation(), 4u);

    CountMatrix exact_fresh = ComputeExactCounts(*fresh, 0, {1}).value();
    CountMatrix exact_grown = ComputeExactCounts(*grown, 0, {1}).value();
    ExpectSameCounts(exact_fresh, exact_grown, "fresh vs append-built");

    auto index = BitmapIndex::Build(*grown, 0).value();
    for (int threads : {1, 3}) {
      auto executor =
          BatchExecutor::Create({MakeQuery(grown, index, seed)},
                                Options(threads, seed * 5 + 1))
              .value();
      EXPECT_EQ(executor->pin().generation, 4u);
      std::vector<BatchItem> items = executor->Run();
      ASSERT_TRUE(items[0].status.ok()) << items[0].status.ToString();
      std::set<int> got(items[0].match.topk.begin(),
                        items[0].match.topk.end());
      EXPECT_EQ(got, (std::set<int>{0, 1, 2}))
          << "seed " << seed << " threads " << threads;
    }
  }
}

TEST(IngestEquivalenceTest, PinnedScanIsBitForBitStableUnderAppends) {
  // An executor pins its generation at Create; appends landing between
  // its steps must be invisible — not "statistically harmless",
  // IDENTICAL: same top-k, same distances, same counts, same blocks
  // read as a run with no appends at all.
  auto dists = PlantedDistributions(kCandidates, kGroups, StaggeredOffsets());
  auto fresh = MakeExactStore(std::vector<int64_t>(kCandidates, 20000), dists,
                              /*seed=*/93, /*rows_per_block=*/50);
  auto store = GrowStore(*fresh, fresh->num_rows() / 2, /*waves=*/2, 93);
  auto index = BitmapIndex::Build(*store, 0).value();
  const uint64_t start_generation = store->generation();

  for (int threads : {1, 3}) {
    BoundQuery q = MakeQuery(store, index);
    auto baseline = BatchExecutor::Create({q}, Options(threads)).value();
    std::vector<BatchItem> expect = baseline->Run();
    ASSERT_TRUE(expect[0].status.ok()) << expect[0].status.ToString();

    auto exec = BatchExecutor::Create({q}, Options(threads)).value();
    EXPECT_EQ(exec->pin().generation, store->generation());
    const int64_t pinned_blocks = exec->pin().num_blocks;
    exec->Start();
    int step = 0;
    while (exec->Step()) {
      if (step < 4) {
        // Maximally drifted rows: if any of them leaked into the pinned
        // scan, counts (and likely the top-k) would change.
        auto generation = store->AppendBatch(DriftColumns(600),
                                             1000 + static_cast<uint64_t>(step));
        ASSERT_TRUE(generation.ok()) << generation.status().ToString();
      }
      ++step;
    }
    std::vector<BatchItem> items = exec->TakeItems();
    ASSERT_TRUE(items[0].status.ok()) << items[0].status.ToString();
    EXPECT_EQ(items[0].match.topk, expect[0].match.topk);
    EXPECT_EQ(items[0].match.distances, expect[0].match.distances);
    EXPECT_EQ(items[0].match.exact, expect[0].match.exact);
    ExpectSameCounts(items[0].match.counts, expect[0].match.counts,
                     "appended-during vs quiescent");
    EXPECT_EQ(exec->stats().blocks_read, baseline->stats().blocks_read);
    EXPECT_EQ(exec->pin().num_blocks, pinned_blocks);
    EXPECT_GT(store->generation(), start_generation);
  }
}

TEST(IngestEquivalenceTest, ResumeRePinsTheDonorGeneration) {
  // ScanResume carries the donor's generation: a batch resumed from it
  // scans exactly the donor's block space even after the store has
  // grown — the resumed run before and after an append are the same
  // run.
  auto dists = PlantedDistributions(kCandidates, kGroups, StaggeredOffsets());
  auto store = MakeExactStore(std::vector<int64_t>(kCandidates, 20000), dists,
                              /*seed=*/95, /*rows_per_block=*/50);
  auto index = BitmapIndex::Build(*store, 0).value();
  BoundQuery q = MakeQuery(store, index);

  auto donor = BatchExecutor::Create({q}, Options(2)).value();
  donor->Start();
  for (int i = 0; i < 3 && donor->Step(); ++i) {
  }
  ScanResume capture = donor->CaptureScanState();
  EXPECT_EQ(capture.generation, 1u);
  while (donor->Step()) {
  }
  donor->TakeItems();

  BatchOptions resumed_options = Options(2);
  resumed_options.resume = capture;
  auto before = BatchExecutor::Create({q}, resumed_options).value();
  std::vector<BatchItem> expect = before->Run();
  ASSERT_TRUE(expect[0].status.ok()) << expect[0].status.ToString();

  ASSERT_TRUE(store->AppendBatch(DriftColumns(2000), 77).ok());
  ASSERT_EQ(store->generation(), 2u);

  auto after = BatchExecutor::Create({q}, resumed_options).value();
  EXPECT_EQ(after->pin().generation, 1u);
  EXPECT_EQ(after->pin().num_blocks, before->pin().num_blocks);
  std::vector<BatchItem> items = after->Run();
  ASSERT_TRUE(items[0].status.ok()) << items[0].status.ToString();
  EXPECT_EQ(items[0].match.topk, expect[0].match.topk);
  EXPECT_EQ(items[0].match.distances, expect[0].match.distances);
  ExpectSameCounts(items[0].match.counts, expect[0].match.counts,
                   "resume after append vs before");
  EXPECT_EQ(after->stats().blocks_read, before->stats().blocks_read);
}

TEST(IngestEquivalenceTest, PartitionedAppendPreservesMultisetAndGuarantees) {
  // PartitionedStore::AppendBatch scatters one shuffled batch across
  // partitions: the logical multiset must survive (per-partition exact
  // counts sum to the reference) and the scatter-gather scan over the
  // grown set must still deliver the planted top-k.
  auto dists = PlantedDistributions(kCandidates, kGroups, StaggeredOffsets());
  auto fresh = MakeExactStore(std::vector<int64_t>(kCandidates, 20000), dists,
                              /*seed=*/96, /*rows_per_block=*/50);
  const int64_t initial = fresh->num_rows() / 2;

  StorageOptions options;
  options.rows_per_block_override = fresh->rows_per_block();
  auto base = ColumnStore::FromColumns(fresh->schema(),
                                       SliceColumns(*fresh, 0, initial),
                                       options)
                  .value();
  base->Shuffle(96);
  auto set = PartitionedStore::Split(base, 3).value();
  ASSERT_EQ(set->generation(), 1u);

  const int64_t per_wave = (fresh->num_rows() - initial + 1) / 2;
  int64_t at = initial;
  while (at < fresh->num_rows()) {
    const RowId end = std::min<RowId>(fresh->num_rows(), at + per_wave);
    auto generation = set->AppendBatch(SliceColumns(*fresh, at, end),
                                       static_cast<uint64_t>(at));
    ASSERT_TRUE(generation.ok()) << generation.status().ToString();
    at = end;
  }
  EXPECT_EQ(set->num_rows(), fresh->num_rows());
  EXPECT_EQ(set->generation(), 3u);

  // Multiset: partition-wise exact counts sum to the reference's.
  CountMatrix sum(kCandidates, kGroups);
  for (int p = 0; p < set->num_partitions(); ++p) {
    sum.Merge(ComputeExactCounts(*set->partition(p), 0, {1}).value());
  }
  ExpectSameCounts(ComputeExactCounts(*fresh, 0, {1}).value(), sum,
                   "fresh vs partition sum");

  for (int threads : {1, 3}) {
    BoundQuery q = MakeQuery(base, /*index=*/nullptr);
    q.partitions = set;
    auto executor =
        ShardedBatchExecutor::Create({q}, set, Options(threads)).value();
    EXPECT_EQ(executor->pin().generation, 3u);
    std::vector<BatchItem> items = executor->Run();
    ASSERT_TRUE(items[0].status.ok()) << items[0].status.ToString();
    std::set<int> got(items[0].match.topk.begin(), items[0].match.topk.end());
    EXPECT_EQ(got, (std::set<int>{0, 1, 2})) << "threads " << threads;
  }
}

// ------------------------------------------------ acceptance pinning

TEST(IngestEquivalenceTest, StaleWarmPriorIsNeverServedAcrossGenerations) {
  // THE acceptance property of this change: a cached stage-1 prior
  // drawn at generation g must never be served at generation g' > g
  // without a passing revalidation. The executor is the last line of
  // defense — a warm start whose generation does not match the batch's
  // pin is DROPPED (counted in stale_warm_dropped) and the query runs
  // cold. If the generation check were skipped, diag.stage1_warm would
  // be true below and this test fails.
  auto dists = PlantedDistributions(kCandidates, kGroups, StaggeredOffsets());
  auto store = MakeExactStore(std::vector<int64_t>(kCandidates, 20000), dists,
                              /*seed=*/97, /*rows_per_block=*/50);
  auto index = BitmapIndex::Build(*store, 0).value();
  BoundQuery q = MakeQuery(store, index);

  Stage1Cache cache;
  BatchOptions cold_options = Options(2);
  cold_options.stage1_sink = &cache;
  auto cold = BatchExecutor::Create({q}, cold_options).value();
  std::vector<BatchItem> cold_items = cold->Run();
  ASSERT_TRUE(cold_items[0].status.ok()) << cold_items[0].status.ToString();

  auto snapshot = cache.Lookup(store->id(), kWholeStorePartition, 0, {1},
                               q.params.stage1_samples);
  ASSERT_NE(snapshot, nullptr);
  ASSERT_EQ(snapshot->scan.generation, 1u);

  // Positive control at the snapshot's own generation: served warm.
  BoundQuery warm_q = q;
  warm_q.stage1_warm = snapshot;
  {
    auto warm = BatchExecutor::Create({warm_q}, Options(2)).value();
    std::vector<BatchItem> items = warm->Run();
    ASSERT_TRUE(items[0].status.ok()) << items[0].status.ToString();
    EXPECT_TRUE(items[0].match.diag.stage1_warm);
    EXPECT_EQ(warm->stats().warm_queries, 1);
    EXPECT_EQ(warm->stats().stale_warm_dropped, 0);
  }

  // The store grows (with drifted rows, to make silent serving WRONG,
  // not just technically stale).
  ASSERT_TRUE(store->AppendBatch(DriftColumns(3000), 55).ok());
  ASSERT_EQ(store->generation(), 2u);

  // Same attachment, no revalidation stamp: the executor pins
  // generation 2, sees a generation-1 prior, and refuses it.
  {
    auto exec = BatchExecutor::Create({warm_q}, Options(2)).value();
    ASSERT_EQ(exec->pin().generation, 2u);
    std::vector<BatchItem> items = exec->Run();
    ASSERT_TRUE(items[0].status.ok()) << items[0].status.ToString();
    EXPECT_FALSE(items[0].match.diag.stage1_warm);
    EXPECT_EQ(exec->stats().warm_queries, 0);
    EXPECT_EQ(exec->stats().stale_warm_dropped, 1);
    // Dropped means ran cold and correct, not served-and-wrong.
    std::set<int> got(items[0].match.topk.begin(), items[0].match.topk.end());
    EXPECT_EQ(got, (std::set<int>{0, 1, 2}));
  }

  // With the service tier's explicit revalidation stamp (the generation
  // a passing drift test promoted the prior to), the same prior IS
  // served at generation 2.
  warm_q.stage1_warm_generation = 2;
  {
    auto exec = BatchExecutor::Create({warm_q}, Options(2)).value();
    std::vector<BatchItem> items = exec->Run();
    ASSERT_TRUE(items[0].status.ok()) << items[0].status.ToString();
    EXPECT_TRUE(items[0].match.diag.stage1_warm);
    EXPECT_EQ(exec->stats().warm_queries, 1);
    EXPECT_EQ(exec->stats().stale_warm_dropped, 0);
  }
}

}  // namespace
}  // namespace fastmatch
