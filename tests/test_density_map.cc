#include "index/density_map.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace fastmatch {
namespace {

std::shared_ptr<ColumnStore> PredStore() {
  // Two candidate-ish attributes A(4), B(3) for predicate tests.
  std::vector<Value> a, b;
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    a.push_back(static_cast<Value>(rng.Uniform(4)));
    b.push_back(static_cast<Value>(rng.Uniform(3)));
  }
  StorageOptions options;
  options.rows_per_block_override = 16;
  return ColumnStore::FromColumns(Schema({{"A", 4}, {"B", 3}}),
                                  {std::move(a), std::move(b)}, options)
      .value();
}

TEST(DensityMapTest, CountsMatchBruteForce) {
  auto store = PredStore();
  auto map = DensityMap::Build(*store, 0).value();
  for (Value v = 0; v < 4; ++v) {
    for (BlockId blk = 0; blk < store->num_blocks(); ++blk) {
      RowId begin, end;
      store->BlockRowRange(blk, &begin, &end);
      int expected = 0;
      for (RowId r = begin; r < end; ++r) {
        if (store->column(0).Get(r) == v) ++expected;
      }
      EXPECT_EQ(map->Count(v, blk), expected);
    }
  }
}

TEST(DensityMapTest, SaturatesAt255) {
  // 300 identical rows in one block.
  std::vector<Value> a(300, 1), b(300, 0);
  StorageOptions options;
  options.rows_per_block_override = 300;
  auto store = ColumnStore::FromColumns(Schema({{"A", 4}, {"B", 3}}),
                                        {std::move(a), std::move(b)}, options)
                   .value();
  auto map = DensityMap::Build(*store, 0).value();
  EXPECT_EQ(map->Count(1, 0), 255);
  EXPECT_EQ(map->Count(0, 0), 0);
}

TEST(PredicateTest, MatchesRow) {
  auto store = PredStore();
  CandidatePredicate single{CandidatePredicate::Op::kSingle, 0, 2, -1, 0};
  CandidatePredicate both{CandidatePredicate::Op::kAnd, 0, 2, 1, 1};
  CandidatePredicate either{CandidatePredicate::Op::kOr, 0, 2, 1, 1};
  for (RowId r = 0; r < store->num_rows(); ++r) {
    const bool a2 = store->column(0).Get(r) == 2;
    const bool b1 = store->column(1).Get(r) == 1;
    EXPECT_EQ(single.Matches(*store, r), a2);
    EXPECT_EQ(both.Matches(*store, r), a2 && b1);
    EXPECT_EQ(either.Matches(*store, r), a2 || b1);
  }
}

TEST(PredicateTest, BlockEstimatesBoundTruth) {
  auto store = PredStore();
  auto map_a = DensityMap::Build(*store, 0).value();
  auto map_b = DensityMap::Build(*store, 1).value();

  CandidatePredicate both{CandidatePredicate::Op::kAnd, 0, 2, 1, 1};
  CandidatePredicate either{CandidatePredicate::Op::kOr, 0, 2, 1, 1};

  for (BlockId blk = 0; blk < store->num_blocks(); ++blk) {
    RowId begin, end;
    store->BlockRowRange(blk, &begin, &end);
    int true_and = 0, true_or = 0;
    for (RowId r = begin; r < end; ++r) {
      true_and += both.Matches(*store, r);
      true_or += either.Matches(*store, r);
    }
    // AND estimate (min) is an upper bound on the true intersection;
    // OR estimate (sum) is an upper bound on the true union. Both are 0
    // only when the truth is 0 (no saturation at this scale), which is
    // exactly the property AnyActive needs: skip only safe blocks.
    const int est_and = EstimateBlockMatches(both, *map_a, map_b.get(), blk);
    const int est_or = EstimateBlockMatches(either, *map_a, map_b.get(), blk);
    EXPECT_GE(est_and, std::min(true_and, 255));
    EXPECT_GE(est_or, std::min(true_or, 255));
    if (est_and == 0) {
      EXPECT_EQ(true_and, 0);
    }
    if (est_or == 0) {
      EXPECT_EQ(true_or, 0);
    }
  }
}

TEST(PredicateTest, SingleEstimateIsExactBelowSaturation) {
  auto store = PredStore();
  auto map_a = DensityMap::Build(*store, 0).value();
  CandidatePredicate single{CandidatePredicate::Op::kSingle, 0, 3, -1, 0};
  for (BlockId blk = 0; blk < store->num_blocks(); ++blk) {
    RowId begin, end;
    store->BlockRowRange(blk, &begin, &end);
    int truth = 0;
    for (RowId r = begin; r < end; ++r) truth += single.Matches(*store, r);
    EXPECT_EQ(EstimateBlockMatches(single, *map_a, nullptr, blk), truth);
  }
}

}  // namespace
}  // namespace fastmatch
