// Drift-injection stress suite for streaming ingest (ctest label
// `stress` via the _stress filename; runs TSan-clean under
// FASTMATCH_SANITIZE=thread):
//
//   * deterministic drift lifecycle through the scheduler: a cached
//     stage-1 prior drawn at generation g is consulted at g' > g,
//     drift-tested, and either PROMOTED (appends that preserve the
//     candidate marginals — the prior is then served warm without being
//     re-drawn) or EVICTED (appends that flood one candidate — the
//     query runs cold), with the SchedulerStats counters proving which
//     path ran;
//   * concurrent appenders + query traffic against one scheduler with
//     the cache on: every future resolves exactly once with a terminal
//     status, and the stage-1 books balance
//     (lookups == hits + misses + revalidations) under churn.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "engine/executor.h"
#include "index/bitmap_index.h"
#include "service/query_scheduler.h"
#include "test_helpers.h"

namespace fastmatch {
namespace {

using testing_util::MakeExactStore;
using testing_util::PlantedDistributions;

constexpr int kCandidates = 12;
constexpr int kGroups = 8;

std::shared_ptr<ColumnStore> MakeStore(uint64_t seed,
                                       int64_t rows_per_candidate = 8000) {
  std::vector<double> offsets = {0.0,  0.01, 0.02, 0.06, 0.09, 0.12,
                                 0.15, 0.17, 0.19, 0.21, 0.23, 0.25};
  return MakeExactStore(
      std::vector<int64_t>(kCandidates, rows_per_candidate),
      PlantedDistributions(kCandidates, kGroups, offsets), seed,
      /*rows_per_block=*/50);
}

/// Rows that preserve the store's uniform candidate marginal: the drift
/// test must call an append of these STABLE.
std::vector<std::vector<Value>> BenignColumns(int64_t rows) {
  std::vector<std::vector<Value>> cols(2);
  for (int64_t r = 0; r < rows; ++r) {
    cols[0].push_back(static_cast<Value>(r % kCandidates));
    cols[1].push_back(static_cast<Value>(r % kGroups));
  }
  return cols;
}

/// Rows that flood candidate 0: the appended relation's candidate
/// marginal moves far from the prior's, so the drift test must reject.
std::vector<std::vector<Value>> FloodColumns(int64_t rows) {
  std::vector<std::vector<Value>> cols(2);
  for (int64_t r = 0; r < rows; ++r) {
    cols[0].push_back(0);
    cols[1].push_back(static_cast<Value>(r % kGroups));
  }
  return cols;
}

BoundQuery MakeQuery(std::shared_ptr<const ColumnStore> store,
                     std::shared_ptr<const BitmapIndex> index,
                     uint64_t seed) {
  BoundQuery q;
  q.store = std::move(store);
  q.z_index = std::move(index);
  q.z_attr = 0;
  q.x_attrs = {1};
  q.target = UniformDistribution(kGroups);
  q.params.k = 3;
  q.params.epsilon = 0.05;
  q.params.delta = 0.05;
  q.params.sigma = 0.0;
  q.params.stage1_samples = 3000;
  q.params.seed = seed;
  return q;
}

SchedulerOptions CacheOptions() {
  SchedulerOptions o;
  o.batch.num_threads = 2;
  o.batch.chunk_blocks = 64;
  o.max_batch_queries = 4;
  o.max_queue_wait_seconds = 0.001;
  o.stage1_cache = true;
  return o;
}

// ------------------------------------------------ deterministic lifecycle

TEST(IngestStressTest, StableAppendPromotesThePriorWithoutRedrawing) {
  auto store = MakeStore(401);
  auto index = BitmapIndex::Build(*store, 0).value();
  QueryScheduler scheduler(CacheOptions());

  // Cold run at generation 1 populates the cache.
  SchedulerItem first =
      scheduler.Submit(MakeQuery(store, index, 11)).value().Get();
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  EXPECT_FALSE(first.match.diag.stage1_warm);
  ASSERT_GE(scheduler.stats().stage1_inserts, 1);

  // A marginal-preserving append: the store grows to generation 2.
  ASSERT_TRUE(store->AppendBatch(BenignColumns(12000), 77).ok());
  ASSERT_EQ(store->generation(), 2u);

  // The next query consults the cache at its pinned generation 2, finds
  // the generation-1 prior, drift-tests it, and — the marginals being
  // intact — PROMOTES and serves it: the query runs warm, stage 1 was
  // never re-drawn, nothing was evicted.
  SchedulerItem second =
      scheduler.Submit(MakeQuery(store, index, 12)).value().Get();
  ASSERT_TRUE(second.status.ok()) << second.status.ToString();
  EXPECT_TRUE(second.match.diag.stage1_warm);
  std::set<int> got(second.match.topk.begin(), second.match.topk.end());
  EXPECT_EQ(got, (std::set<int>{0, 1, 2}));

  SchedulerStats stats = scheduler.stats();
  EXPECT_GE(stats.stage1_revalidations, 1);
  EXPECT_GE(stats.stage1_promotions, 1);
  EXPECT_EQ(stats.stage1_drift_evictions, 0);
  EXPECT_EQ(stats.stage1_lookups,
            stats.stage1_hits + stats.stage1_misses + stats.stage1_revalidations);
}

TEST(IngestStressTest, DriftingAppendEvictsThePriorAndRunsCold) {
  auto store = MakeStore(402);
  auto index = BitmapIndex::Build(*store, 0).value();
  QueryScheduler scheduler(CacheOptions());

  SchedulerItem first =
      scheduler.Submit(MakeQuery(store, index, 21)).value().Get();
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  ASSERT_GE(scheduler.stats().stage1_inserts, 1);

  // Flood candidate 0: its share of the relation moves from 1/12 to
  // over half — far past any sampling noise the drift test tolerates.
  ASSERT_TRUE(store->AppendBatch(FloodColumns(100000), 78).ok());
  ASSERT_EQ(store->generation(), 2u);

  // The consult finds the generation-1 prior, the drift test rejects
  // it, the entry is evicted, and the query runs cold — correctly,
  // against the grown relation.
  SchedulerItem second =
      scheduler.Submit(MakeQuery(store, index, 22)).value().Get();
  ASSERT_TRUE(second.status.ok()) << second.status.ToString();
  EXPECT_FALSE(second.match.diag.stage1_warm);

  SchedulerStats stats = scheduler.stats();
  EXPECT_GE(stats.stage1_revalidations, 1);
  EXPECT_GE(stats.stage1_drift_evictions, 1);
  EXPECT_EQ(stats.stage1_promotions, 0);
  EXPECT_EQ(stats.stage1_lookups,
            stats.stage1_hits + stats.stage1_misses + stats.stage1_revalidations);

  // The drifted prior is GONE, not demoted: a third query (after the
  // second's cold run republished at generation 2) must be served the
  // fresh generation-2 snapshot, not the evicted one.
  SchedulerItem third =
      scheduler.Submit(MakeQuery(store, index, 23)).value().Get();
  ASSERT_TRUE(third.status.ok()) << third.status.ToString();
  if (third.match.diag.stage1_warm) {
    EXPECT_GT(scheduler.stats().stage1_hits, 0);
  }
}

// ------------------------------------------------ concurrent churn

TEST(IngestStressTest, ConcurrentAppendsAndQueriesResolveExactlyOnce) {
  // Appender threads grow the store (benign and drifting batches mixed)
  // while submitter threads keep query traffic flowing through the
  // cache-enabled scheduler. Every accepted future must resolve exactly
  // once with a terminal status; results must be correct whenever they
  // are OK; and the stage-1 books must balance afterwards. Run under
  // TSan in CI (FASTMATCH_SANITIZE=thread) — this is the test that
  // races pinned scans, revalidations, promotions, and evictions
  // against live appends.
  auto store = MakeStore(403);
  auto index = BitmapIndex::Build(*store, 0).value();

  constexpr int kSubmitters = 3;
  constexpr int kQueriesPerSubmitter = 8;
  constexpr int kAppends = 10;

  std::atomic<int64_t> resolved{0};
  std::atomic<int64_t> ok_items{0};
  {
    QueryScheduler scheduler(CacheOptions());

    // Runs ALL its appends even if the query traffic drains first (the
    // final-state assertions depend on it); the early appends race the
    // running batches, the late ones race scheduler teardown.
    std::thread appender([&] {
      for (int i = 0; i < kAppends; ++i) {
        auto batch = (i % 3 == 2) ? FloodColumns(3000) : BenignColumns(3000);
        auto generation =
            store->AppendBatch(batch, 900 + static_cast<uint64_t>(i));
        ASSERT_TRUE(generation.ok()) << generation.status().ToString();
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });

    std::vector<std::thread> submitters;
    for (int t = 0; t < kSubmitters; ++t) {
      submitters.emplace_back([&, t] {
        for (int i = 0; i < kQueriesPerSubmitter; ++i) {
          auto handle = scheduler.Submit(
              MakeQuery(store, index, static_cast<uint64_t>(t * 100 + i)));
          ASSERT_TRUE(handle.ok()) << handle.status().ToString();
          SchedulerItem item = handle.value().Get();
          resolved.fetch_add(1);
          // Terminal statuses only: a result or a lifecycle code.
          if (item.status.ok()) {
            ok_items.fetch_add(1);
            EXPECT_EQ(item.match.topk.size(), 3u);
          } else {
            EXPECT_TRUE(item.status.code() == StatusCode::kCancelled ||
                        item.status.code() == StatusCode::kDeadlineExceeded ||
                        item.status.code() == StatusCode::kUnavailable)
                << item.status.ToString();
          }
        }
      });
    }
    for (std::thread& thread : submitters) thread.join();
    appender.join();

    SchedulerStats stats = scheduler.stats();
    EXPECT_EQ(resolved.load(), kSubmitters * kQueriesPerSubmitter);
    EXPECT_EQ(stats.completed, resolved.load());
    EXPECT_EQ(stats.stage1_lookups, stats.stage1_hits + stats.stage1_misses +
                                        stats.stage1_revalidations);
    // No deadlines or cancels were issued, so everything completed OK.
    EXPECT_EQ(ok_items.load(), resolved.load());
  }

  // The store survived the churn coherently: generation advanced once
  // per append and the live row count matches the growth.
  EXPECT_EQ(store->generation(), 1u + kAppends);
  EXPECT_EQ(store->num_rows(),
            static_cast<int64_t>(kCandidates) * 8000 + kAppends * 3000);
}

}  // namespace
}  // namespace fastmatch
