// Parameterized property sweeps over the statistics substrate.

#include <gtest/gtest.h>

#include <cmath>

#include "stats/deviation.h"
#include "stats/hypergeometric.h"
#include "stats/multiple_testing.h"
#include "util/math.h"
#include "util/random.h"

namespace fastmatch {
namespace {

// ------------------------------------------------------- deviation bound

struct DevCase {
  int64_t vx;
  double delta;
};

class DeviationSweep : public ::testing::TestWithParam<DevCase> {};

TEST_P(DeviationSweep, InversionRoundTrips) {
  const auto [vx, delta] = GetParam();
  const double log_delta = std::log(delta);
  for (double eps : {0.01, 0.02, 0.04, 0.08, 0.16, 0.5}) {
    const int64_t n = DeviationSamples(eps, vx, log_delta);
    ASSERT_GT(n, 0);
    EXPECT_LE(DeviationEpsilon(n, vx, log_delta), eps + 1e-12);
    if (n > 1) {
      EXPECT_GT(DeviationEpsilon(n - 1, vx, log_delta), eps - 1e-9);
    }
  }
}

TEST_P(DeviationSweep, PValueConsistentWithEpsilon) {
  const auto [vx, delta] = GetParam();
  const double log_delta = std::log(delta);
  // Drawing exactly DeviationSamples gives a P-value <= delta when the
  // observed deviation equals eps.
  for (double eps : {0.02, 0.05, 0.1}) {
    const int64_t n = DeviationSamples(eps, vx, log_delta);
    EXPECT_LE(LogDeviationPValue(eps, n, vx), log_delta + 1e-9);
  }
}

TEST_P(DeviationSweep, MonotoneInSamples) {
  const auto [vx, delta] = GetParam();
  const double log_delta = std::log(delta);
  double prev = 10;
  for (int64_t n : {10, 100, 1000, 10000, 100000}) {
    const double eps = DeviationEpsilon(n, vx, log_delta);
    EXPECT_LT(eps, prev);
    prev = eps;
    // P-value at fixed eps decreases in n.
    EXPECT_LE(LogDeviationPValue(0.1, n * 10, vx),
              LogDeviationPValue(0.1, n, vx));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DeviationSweep,
    ::testing::Values(DevCase{2, 0.01}, DevCase{2, 0.2}, DevCase{7, 0.01},
                      DevCase{24, 0.01}, DevCase{24, 0.001},
                      DevCase{351, 0.01}, DevCase{351, 0.1}),
    [](const auto& info) {
      return "vx" + std::to_string(info.param.vx) + "_d" +
             std::to_string(static_cast<int>(info.param.delta * 1000));
    });

// ---------------------------------------------------------- hypergeometric

struct HypCase {
  int64_t N, K, m;
};

class HypergeomSweep : public ::testing::TestWithParam<HypCase> {};

TEST_P(HypergeomSweep, PmfNormalized) {
  const auto [N, K, m] = GetParam();
  double total = 0;
  for (int64_t j = 0; j <= std::min(K, m); ++j) {
    total += HypergeomPmf(j, N, K, m);
  }
  EXPECT_NEAR(total, 1.0, 1e-8);
}

TEST_P(HypergeomSweep, CdfMonotoneMatchesTable) {
  const auto [N, K, m] = GetParam();
  const int64_t top = std::min(K, m);
  HypergeomCdfTable table(N, K, m, top);
  double prev = -1;
  for (int64_t j = 0; j <= top; ++j) {
    const double c = std::exp(table.LogCdf(j));
    EXPECT_GE(c + 1e-12, prev) << j;
    const double direct = LogHypergeomCdf(j, N, K, m);
    if (std::isinf(direct)) {
      // Below the support (j < m - (N - K)): both must report -inf.
      EXPECT_TRUE(std::isinf(table.LogCdf(j))) << j;
    } else {
      EXPECT_NEAR(table.LogCdf(j), direct, 1e-8) << j;
    }
    prev = c;
  }
  EXPECT_NEAR(prev, 1.0, 1e-8);
}

TEST_P(HypergeomSweep, MeanWithinSupport) {
  const auto [N, K, m] = GetParam();
  double mean = 0;
  for (int64_t j = 0; j <= std::min(K, m); ++j) {
    mean += static_cast<double>(j) * HypergeomPmf(j, N, K, m);
  }
  EXPECT_NEAR(mean, static_cast<double>(m) * K / N,
              1e-6 * std::max<double>(1.0, mean));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HypergeomSweep,
    ::testing::Values(HypCase{100, 10, 20}, HypCase{100, 90, 20},
                      HypCase{1000, 1, 999}, HypCase{1000, 500, 500},
                      HypCase{5000, 4, 100}, HypCase{333, 111, 222}),
    [](const auto& info) {
      return "N" + std::to_string(info.param.N) + "_K" +
             std::to_string(info.param.K) + "_m" +
             std::to_string(info.param.m);
    });

// ------------------------------------------------------- multiple testing

class HolmSweep : public ::testing::TestWithParam<int> {};

TEST_P(HolmSweep, DominatesBonferroniOnRandomFamilies) {
  const int family = GetParam();
  Rng rng(static_cast<uint64_t>(family) * 977);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> ps(static_cast<size_t>(family));
    for (auto& p : ps) {
      p = std::log(rng.NextDouble() + 1e-12) * (1 + rng.Uniform(4));
    }
    const double log_alpha = std::log(0.05);
    auto holm = HolmBonferroniReject(ps, log_alpha);
    auto bonf = BonferroniReject(ps, log_alpha);
    // Holm rejects a superset of Bonferroni.
    EXPECT_GE(holm.size(), bonf.size());
    for (int idx : bonf) {
      EXPECT_NE(std::find(holm.begin(), holm.end(), idx), holm.end());
    }
    // And every rejected P-value is individually below alpha.
    for (int idx : holm) {
      EXPECT_LE(ps[static_cast<size_t>(idx)], log_alpha);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(FamilySizes, HolmSweep,
                         ::testing::Values(1, 2, 5, 20, 100, 1000));

}  // namespace
}  // namespace fastmatch
