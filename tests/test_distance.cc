#include "core/distance.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace fastmatch {
namespace {

Distribution RandomDistribution(int n, Rng* rng) {
  std::vector<double> w(static_cast<size_t>(n));
  for (auto& x : w) x = rng->NextDouble() + 1e-3;
  return Normalize(w);
}

TEST(DistanceTest, L1KnownValues) {
  EXPECT_DOUBLE_EQ(L1Distance({0.5, 0.5}, {0.5, 0.5}), 0.0);
  EXPECT_DOUBLE_EQ(L1Distance({1.0, 0.0}, {0.0, 1.0}), 2.0);
  EXPECT_NEAR(L1Distance({0.6, 0.4}, {0.4, 0.6}), 0.4, 1e-12);
}

TEST(DistanceTest, L2KnownValues) {
  EXPECT_DOUBLE_EQ(L2Distance({0.5, 0.5}, {0.5, 0.5}), 0.0);
  EXPECT_NEAR(L2Distance({1.0, 0.0}, {0.0, 1.0}), std::sqrt(2.0), 1e-12);
}

TEST(DistanceTest, MetricAxiomsOnRandomDistributions) {
  Rng rng(101);
  for (int trial = 0; trial < 50; ++trial) {
    Distribution a = RandomDistribution(10, &rng);
    Distribution b = RandomDistribution(10, &rng);
    Distribution c = RandomDistribution(10, &rng);
    for (Metric m : {Metric::kL1, Metric::kL2}) {
      const double dab = HistDistance(m, a, b);
      const double dba = HistDistance(m, b, a);
      const double dac = HistDistance(m, a, c);
      const double dcb = HistDistance(m, c, b);
      EXPECT_DOUBLE_EQ(dab, dba);                    // symmetry
      EXPECT_GE(dab, 0.0);                           // non-negativity
      EXPECT_LE(dab, dac + dcb + 1e-12);             // triangle
      EXPECT_NEAR(HistDistance(m, a, a), 0.0, 1e-12);  // identity
    }
  }
}

TEST(DistanceTest, L1BoundedByTwo) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    Distribution a = RandomDistribution(24, &rng);
    Distribution b = RandomDistribution(24, &rng);
    EXPECT_LE(L1Distance(a, b), 2.0 + 1e-12);
  }
}

TEST(DistanceTest, L2LowerBoundsL1) {
  // ||x||_2 <= ||x||_1: the fact that lets the l2 metric reuse the l1
  // deviation bound (Appendix A.2.2).
  Rng rng(55);
  for (int trial = 0; trial < 50; ++trial) {
    Distribution a = RandomDistribution(16, &rng);
    Distribution b = RandomDistribution(16, &rng);
    EXPECT_LE(L2Distance(a, b), L1Distance(a, b) + 1e-12);
  }
}

TEST(DistanceTest, PaperSection2L2Criticism) {
  // Section 2.1: l2 can be small for distributions with (nearly) disjoint
  // support, while l1 reports them far apart. A spread-out pair of
  // disjoint distributions has l1 = 2 but l2 -> 0 as support grows.
  const int n = 50;
  Distribution a(n * 2, 0.0), b(n * 2, 0.0);
  for (int i = 0; i < n; ++i) a[static_cast<size_t>(i)] = 1.0 / n;
  for (int i = n; i < 2 * n; ++i) b[static_cast<size_t>(i)] = 1.0 / n;
  EXPECT_DOUBLE_EQ(L1Distance(a, b), 2.0);
  EXPECT_LT(L2Distance(a, b), 0.25);
}

TEST(DistanceTest, KLDivergence) {
  EXPECT_NEAR(KLDivergence({0.5, 0.5}, {0.5, 0.5}), 0.0, 1e-12);
  // Infinite when q has zero mass where p does not (the Section 2
  // drawback that rules KL out).
  EXPECT_TRUE(std::isinf(KLDivergence({0.5, 0.5}, {1.0, 0.0})));
  // Asymmetric in general.
  const double kl_pq = KLDivergence({0.7, 0.3}, {0.4, 0.6});
  const double kl_qp = KLDivergence({0.4, 0.6}, {0.7, 0.3});
  EXPECT_GT(kl_pq, 0);
  EXPECT_NE(kl_pq, kl_qp);
}

TEST(DistanceTest, EmptyDistributionGetsMaxDistance) {
  Distribution empty;
  Distribution d = {0.5, 0.5};
  EXPECT_DOUBLE_EQ(HistDistance(Metric::kL1, empty, d), 2.0);
  EXPECT_DOUBLE_EQ(HistDistance(Metric::kL1, d, empty), 2.0);
  EXPECT_DOUBLE_EQ(HistDistance(Metric::kL2, empty, d), std::sqrt(2.0));
}

TEST(DistanceTest, MaxDistanceConstants) {
  EXPECT_DOUBLE_EQ(MaxDistance(Metric::kL1), 2.0);
  EXPECT_DOUBLE_EQ(MaxDistance(Metric::kL2), std::sqrt(2.0));
}

TEST(DistanceTest, MetricNames) {
  EXPECT_EQ(MetricName(Metric::kL1), "l1");
  EXPECT_EQ(MetricName(Metric::kL2), "l2");
}

}  // namespace
}  // namespace fastmatch
