#!/usr/bin/env bash
# run_one.sh <compiler> FAIL|PASS <source.cc> <flag>...
#
# PASS: the TU must compile (syntax-only). FAIL: the TU must be rejected
# AND the diagnostics must mention thread safety — a case failing for an
# unrelated reason (typo, missing include) is a harness bug, not a
# negative-compile proof. Exits 77 (ctest SKIP via SKIP_RETURN_CODE)
# when the compiler is not Clang: only Clang implements -Wthread-safety.
#
# FASTMATCH_REQUIRE_COMPILE_FAIL=1 turns that skip into a hard failure:
# environments that exist to run these proofs (CI's clang
# static-analysis job) set it so a toolchain regression can never
# demote the whole suite to SKIP and pass vacuously.
set -u

compiler="$1"; expect="$2"; source="$3"; shift 3

if ! "${compiler}" --version 2>/dev/null | grep -qi clang; then
  if [ "${FASTMATCH_REQUIRE_COMPILE_FAIL:-0}" != "0" ]; then
    echo "FAIL: ${compiler} is not Clang, but FASTMATCH_REQUIRE_COMPILE_FAIL" \
         "is set — this environment must RUN the negative-compile proofs"
    exit 1
  fi
  echo "SKIP: ${compiler} is not Clang; -Wthread-safety unavailable"
  exit 77
fi

output="$("${compiler}" "$@" "${source}" 2>&1)"
status=$?

case "${expect}" in
  PASS)
    if [ "${status}" -ne 0 ]; then
      echo "expected ${source} to compile, but it failed:"
      echo "${output}"
      exit 1
    fi
    ;;
  FAIL)
    if [ "${status}" -eq 0 ]; then
      echo "expected ${source} to be rejected, but it compiled"
      exit 1
    fi
    if ! echo "${output}" | grep -q "thread-safety"; then
      echo "rejected for the wrong reason (no thread-safety diagnostic):"
      echo "${output}"
      exit 1
    fi
    ;;
  *)
    echo "unknown expectation '${expect}' (want PASS or FAIL)"
    exit 1
    ;;
esac
exit 0
