// MUST NOT COMPILE under -Wthread-safety -Werror: touches a guarded
// member inside a MutexLock's Unlock()/Lock() window — the analysis
// tracks the relockable scoped capability's held state across the gap.
#include "util/sync.h"

namespace fastmatch {

class Window {
 public:
  void Broken() {
    MutexLock lock(&mu_);
    ++count_;       // fine: lock held
    lock.Unlock();
    ++count_;       // expected: requires holding mutex 'mu_'
    lock.Lock();
  }

 private:
  Mutex mu_;
  int count_ FASTMATCH_GUARDED_BY(mu_) = 0;
};

void Use() { Window().Broken(); }

}  // namespace fastmatch
