// MUST NOT COMPILE under -Wthread-safety -Werror: writes a GUARDED_BY
// member with no lock held.
#include "util/sync.h"

namespace fastmatch {

class Counter {
 public:
  void Bump() {
    ++count_;  // expected: writing variable requires holding mutex 'mu_'
  }

 private:
  Mutex mu_;
  int count_ FASTMATCH_GUARDED_BY(mu_) = 0;
};

void Use() { Counter().Bump(); }

}  // namespace fastmatch
