// MUST NOT COMPILE under -Wthread-safety -Wthread-safety-beta -Werror:
// acquires two mutexes against their declared ACQUIRED_AFTER order (the
// shape of the scheduler's shutdown_mu_ -> mu_ hierarchy).
#include "util/sync.h"

namespace fastmatch {

class TwoLocks {
 public:
  void Inverted() {
    MutexLock inner(&inner_mu_);
    MutexLock outer(&outer_mu_);  // expected: 'outer_mu_' acquired after
                                  // 'inner_mu_', order contradiction
  }

 private:
  Mutex outer_mu_;
  Mutex inner_mu_ FASTMATCH_ACQUIRED_AFTER(outer_mu_);
};

void Use() { TwoLocks().Inverted(); }

}  // namespace fastmatch
