// MUST NOT COMPILE under -Wthread-safety -Werror: calls a
// REQUIRES(mu) function (CondVar::Wait) without holding the mutex.
#include "util/sync.h"

namespace fastmatch {

class Waiter {
 public:
  void BrokenWait() {
    cv_.Wait(&mu_);  // expected: requires holding mutex 'mu_'
  }

 private:
  Mutex mu_;
  CondVar cv_;
};

void Use() { Waiter().BrokenWait(); }

}  // namespace fastmatch
