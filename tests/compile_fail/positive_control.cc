// MUST COMPILE cleanly under -Wthread-safety -Wthread-safety-beta
// -Werror: exercises every pattern the case_*.cc files break —
// guarded access under a MutexLock, an explicit cv wait loop, the
// declared lock order, and the Unlock()/Lock() window used correctly.
// If this fails, the harness flags are wrong, not the annotations.
#include "util/sync.h"

namespace fastmatch {

class Correct {
 public:
  void Produce() {
    {
      MutexLock lock(&inner_mu_);
      ++count_;
      ready_ = true;
    }
    cv_.NotifyOne();
  }

  void Consume() {
    MutexLock lock(&inner_mu_);
    while (!ready_) cv_.Wait(&inner_mu_);
    ready_ = false;
  }

  void Ordered() {
    MutexLock outer(&outer_mu_);
    MutexLock inner(&inner_mu_);
  }

  void Windowed() {
    MutexLock lock(&inner_mu_);
    ++count_;
    lock.Unlock();
    // guarded state untouched in the gap
    lock.Lock();
    ++count_;
  }

 private:
  Mutex outer_mu_;
  Mutex inner_mu_ FASTMATCH_ACQUIRED_AFTER(outer_mu_);
  CondVar cv_;
  int count_ FASTMATCH_GUARDED_BY(inner_mu_) = 0;
  bool ready_ FASTMATCH_GUARDED_BY(inner_mu_) = false;
};

void Use() {
  Correct c;
  c.Produce();
  c.Consume();
  c.Ordered();
  c.Windowed();
}

}  // namespace fastmatch
