#include "core/histogram.h"

#include <gtest/gtest.h>

namespace fastmatch {
namespace {

TEST(CountMatrixTest, AddAndRowAccess) {
  CountMatrix m(3, 4);
  m.Add(0, 1);
  m.Add(0, 1);
  m.Add(0, 3);
  m.Add(2, 0);
  EXPECT_EQ(m.At(0, 1), 2);
  EXPECT_EQ(m.At(0, 3), 1);
  EXPECT_EQ(m.At(0, 0), 0);
  EXPECT_EQ(m.RowTotal(0), 3);
  EXPECT_EQ(m.RowTotal(1), 0);
  EXPECT_EQ(m.RowTotal(2), 1);
  auto row = m.Row(0);
  ASSERT_EQ(row.size(), 4u);
  EXPECT_EQ(row[1], 2);
}

TEST(CountMatrixTest, MergeAddsCellwise) {
  CountMatrix a(2, 2), b(2, 2);
  a.Add(0, 0);
  a.Add(1, 1);
  b.Add(0, 0);
  b.Add(0, 1);
  a.Merge(b);
  EXPECT_EQ(a.At(0, 0), 2);
  EXPECT_EQ(a.At(0, 1), 1);
  EXPECT_EQ(a.At(1, 1), 1);
  EXPECT_EQ(a.RowTotal(0), 3);
  EXPECT_EQ(a.RowTotal(1), 1);
}

TEST(CountMatrixTest, ResetZeroesEverything) {
  CountMatrix m(2, 2);
  m.Add(1, 0);
  m.Reset();
  EXPECT_EQ(m.At(1, 0), 0);
  EXPECT_EQ(m.RowTotal(1), 0);
  EXPECT_EQ(m.num_candidates(), 2);
  EXPECT_EQ(m.num_groups(), 2);
}

TEST(CountMatrixTest, NormalizedRow) {
  CountMatrix m(2, 4);
  m.Add(0, 0);
  m.Add(0, 0);
  m.Add(0, 2);
  m.Add(0, 3);
  Distribution d = m.NormalizedRow(0);
  ASSERT_EQ(d.size(), 4u);
  EXPECT_DOUBLE_EQ(d[0], 0.5);
  EXPECT_DOUBLE_EQ(d[1], 0.0);
  EXPECT_DOUBLE_EQ(d[2], 0.25);
  EXPECT_DOUBLE_EQ(d[3], 0.25);
}

TEST(CountMatrixTest, NormalizedRowEmptyWhenZero) {
  CountMatrix m(2, 4);
  EXPECT_TRUE(m.NormalizedRow(1).empty());
}

TEST(NormalizeTest, IntCountsSumToOne) {
  std::vector<int64_t> counts = {1, 2, 3, 4};
  Distribution d = Normalize(std::span<const int64_t>(counts));
  double total = 0;
  for (double x : d) total += x;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(d[3], 0.4);
}

TEST(NormalizeTest, WeightsHandleZeros) {
  EXPECT_TRUE(Normalize(std::vector<double>{0, 0}).empty());
  Distribution d = Normalize(std::vector<double>{0, 2, 2});
  EXPECT_DOUBLE_EQ(d[0], 0.0);
  EXPECT_DOUBLE_EQ(d[1], 0.5);
}

TEST(NormalizeTest, PaperFigure3Property) {
  // The paper's Figure 3: a scaled copy of a histogram is identical
  // post-normalization.
  std::vector<int64_t> base = {10, 20, 5, 15};
  std::vector<int64_t> scaled = {100, 200, 50, 150};
  EXPECT_EQ(Normalize(std::span<const int64_t>(base)),
            Normalize(std::span<const int64_t>(scaled)));
}

TEST(UniformDistributionTest, SumsToOne) {
  Distribution u = UniformDistribution(7);
  ASSERT_EQ(u.size(), 7u);
  for (double x : u) EXPECT_DOUBLE_EQ(x, 1.0 / 7);
}

}  // namespace
}  // namespace fastmatch
