#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace fastmatch {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::InvalidArgument("bad input").message(), "bad input");
}

TEST(StatusTest, LifecycleCodeNames) {
  // The service tier's terminal states render distinctly (the stress
  // suite's outcome accounting keys on these strings in failure output).
  EXPECT_EQ(Status::DeadlineExceeded("late").ToString(),
            "DeadlineExceeded: late");
  EXPECT_EQ(Status::Cancelled("gone").ToString(), "Cancelled: gone");
  EXPECT_EQ(Status::Unavailable("drain").ToString(), "Unavailable: drain");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status s = Status::NotFound("no attribute named 'foo'");
  EXPECT_EQ(s.ToString(), "NotFound: no attribute named 'foo'");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto inner = []() { return Status::OutOfRange("too big"); };
  auto outer = [&]() -> Status {
    FASTMATCH_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kOutOfRange);
}

TEST(StatusTest, ReturnIfErrorPassesThroughOk) {
  auto outer = []() -> Status {
    FASTMATCH_RETURN_IF_ERROR(Status::OK());
    return Status::Internal("reached end");
  };
  EXPECT_EQ(outer().code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueOnSuccess) {
  Result<int> r(7);
  EXPECT_EQ(r.value_or(-1), 7);
}

TEST(ResultTest, MoveOnlyTypesWork) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(9));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 9);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto make = [](bool fail) -> Result<int> {
    if (fail) return Status::Internal("boom");
    return 5;
  };
  auto use = [&](bool fail) -> Result<int> {
    FASTMATCH_ASSIGN_OR_RETURN(int v, make(fail));
    return v * 2;
  };
  EXPECT_EQ(use(false).value(), 10);
  EXPECT_EQ(use(true).status().code(), StatusCode::kInternal);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace fastmatch
