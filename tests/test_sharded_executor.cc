// Tests of scatter-gather batch execution over a PartitionedStore: the
// bit-for-bit equivalence property (a P-way run's per-query counts,
// top-k, and distances equal the P=1 and plain runs, across partition
// counts x thread counts x seeds), partition I/O conservation, create
// validation on both factories, mid-flight join equivalence,
// per-partition stage-1 export, and the per-partition warm-start round
// trip.

#include "engine/sharded_batch_executor.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "core/verify.h"
#include "engine/executor.h"
#include "test_helpers.h"

namespace fastmatch {
namespace {

using testing_util::MakeExactStore;
using testing_util::PlantedDistributions;

struct ShardFixture {
  std::shared_ptr<ColumnStore> store;
  std::shared_ptr<const BitmapIndex> index;
  Distribution target;
};

ShardFixture MakeShardFixture(int64_t rows_per_candidate, uint64_t seed,
                              int rows_per_block = 50) {
  ShardFixture f;
  std::vector<double> offsets = {0.0,  0.01, 0.02, 0.06, 0.09, 0.12,
                                 0.15, 0.17, 0.19, 0.21, 0.23, 0.25};
  auto dists = PlantedDistributions(12, 8, offsets);
  f.store = MakeExactStore(std::vector<int64_t>(12, rows_per_candidate),
                           dists, seed, rows_per_block);
  f.index = BitmapIndex::Build(*f.store, 0).value();
  f.target = UniformDistribution(8);
  return f;
}

HistSimParams ShardParams(uint64_t seed = 42) {
  HistSimParams p;
  p.k = 3;
  p.epsilon = 0.05;
  p.delta = 0.05;
  p.sigma = 0.0;
  p.stage1_samples = 3000;
  p.seed = seed;
  return p;
}

BoundQuery MakeQuery(const ShardFixture& f, uint64_t seed = 42) {
  BoundQuery q;
  q.store = f.store;
  q.z_index = f.index;
  q.z_attr = 0;
  q.x_attrs = {1};
  q.target = f.target;
  q.params = ShardParams(seed);
  return q;
}

BatchOptions Options(int threads, uint64_t seed = 7, int chunk = 64) {
  BatchOptions o;
  o.num_threads = threads;
  o.chunk_blocks = chunk;
  o.seed = seed;
  return o;
}

std::vector<BoundQuery> WithPartitions(
    std::vector<BoundQuery> queries,
    const std::shared_ptr<const PartitionedStore>& partitions) {
  for (BoundQuery& q : queries) q.partitions = partitions;
  return queries;
}

void ExpectItemsIdentical(const std::vector<BatchItem>& got,
                          const std::vector<BatchItem>& want,
                          const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t q = 0; q < got.size(); ++q) {
    ASSERT_EQ(got[q].status.ok(), want[q].status.ok()) << label;
    if (!want[q].status.ok()) continue;
    EXPECT_EQ(got[q].match.topk, want[q].match.topk) << label;
    EXPECT_EQ(got[q].match.distances, want[q].match.distances) << label;
    EXPECT_EQ(got[q].match.topk_distances, want[q].match.topk_distances)
        << label;
    EXPECT_EQ(got[q].match.exact, want[q].match.exact) << label;
    const CountMatrix& a = want[q].match.counts;
    const CountMatrix& b = got[q].match.counts;
    ASSERT_EQ(a.num_candidates(), b.num_candidates()) << label;
    ASSERT_EQ(a.num_groups(), b.num_groups()) << label;
    for (int i = 0; i < a.num_candidates(); ++i) {
      for (int g = 0; g < a.num_groups(); ++g) {
        ASSERT_EQ(a.At(i, g), b.At(i, g))
            << label << " diverged at query " << q << " cell " << i << ","
            << g;
      }
    }
  }
}

TEST(ShardedExecutorTest, CreateValidation) {
  ShardFixture f = MakeShardFixture(2000, 1);
  auto partitions = PartitionedStore::Split(f.store, 2).value();
  auto queries = WithPartitions({MakeQuery(f), MakeQuery(f, 43)}, partitions);

  // Null partition set.
  EXPECT_FALSE(
      ShardedBatchExecutor::Create(queries, nullptr, Options(2)).ok());
  // A query without the set (or with a different set) is structural.
  {
    auto mixed = queries;
    mixed[1].partitions = nullptr;
    EXPECT_FALSE(
        ShardedBatchExecutor::Create(mixed, partitions, Options(2)).ok());
    mixed[1].partitions = PartitionedStore::Split(f.store, 2).value();
    EXPECT_FALSE(
        ShardedBatchExecutor::Create(mixed, partitions, Options(2)).ok());
  }
  // Queries over a store the set was not split from.
  {
    ShardFixture g = MakeShardFixture(2000, 2);
    auto foreign =
        WithPartitions({MakeQuery(g)},
                       PartitionedStore::Split(g.store, 2).value());
    EXPECT_FALSE(
        ShardedBatchExecutor::Create(foreign, partitions, Options(2)).ok());
  }
  // The plain factory refuses partition-carrying queries instead of
  // silently scanning unsharded.
  EXPECT_FALSE(BatchExecutor::Create(queries, Options(2)).ok());
  // Well-formed.
  auto executor =
      ShardedBatchExecutor::Create(queries, partitions, Options(2)).value();
  EXPECT_EQ(executor->partitions().get(), partitions.get());
  EXPECT_EQ(executor->stats().num_partitions, 2);
}

TEST(ShardedExecutorTest, BitForBitEquivalentToPlainRun) {
  // The tentpole property: for every partition count, thread count, and
  // seed pair, the sharded run's per-query counts, top-k, and distances
  // are IDENTICAL to the plain (unpartitioned) run's — the logical scan
  // is the same scan, only the block reads scatter.
  for (uint64_t seed : {4u, 9u}) {
    ShardFixture f = MakeShardFixture(2000, seed);
    std::vector<BoundQuery> batch = {MakeQuery(f, 42), MakeQuery(f, 43),
                                     MakeQuery(f, 44)};
    auto plain = BatchExecutor::Create(batch, Options(2, seed)).value();
    const std::vector<BatchItem> reference = plain->Run();
    const int64_t reference_blocks = plain->stats().blocks_read;

    for (int P : {1, 2, 4, 8}) {
      auto partitions = PartitionedStore::Split(f.store, P).value();
      auto sharded_batch = WithPartitions(batch, partitions);
      for (int threads : {1, 2, 4}) {
        const std::string label = "store-seed " + std::to_string(seed) +
                                  " P=" + std::to_string(P) +
                                  " threads=" + std::to_string(threads);
        auto executor = ShardedBatchExecutor::Create(sharded_batch, partitions,
                                                     Options(threads, seed))
                            .value();
        std::vector<BatchItem> items = executor->Run();
        ExpectItemsIdentical(items, reference, label);
        EXPECT_EQ(executor->stats().blocks_read, reference_blocks) << label;

        // I/O conservation: the scatter re-routes reads, never adds or
        // drops any — per-partition reads sum to the logical totals.
        int64_t part_blocks = 0, part_rows = 0;
        std::set<uint64_t> part_ids;
        for (const PartitionIoStats& ps : executor->partition_stats()) {
          part_blocks += ps.blocks_read;
          part_rows += ps.rows_read;
          part_ids.insert(ps.partition_store_id);
        }
        EXPECT_EQ(part_blocks, executor->stats().blocks_read) << label;
        EXPECT_EQ(part_rows, executor->stats().rows_read) << label;
        EXPECT_EQ(part_ids.size(), static_cast<size_t>(P)) << label;
        if (P > 1) {
          // With uniform marking, every partition of a multi-way split
          // sees some of the scan.
          for (const PartitionIoStats& ps : executor->partition_stats()) {
            EXPECT_GT(ps.blocks_read, 0) << label;
          }
        }
      }
    }
  }
}

TEST(ShardedExecutorTest, MidflightJoinMatchesPlainJoin) {
  // Lifecycle equivalence: a query joining a running sharded scan gets
  // the same answer as the same join against the plain scan.
  ShardFixture f = MakeShardFixture(20000, 6);
  auto partitions = PartitionedStore::Split(f.store, 4).value();

  const auto drive = [&](bool sharded) {
    std::vector<BoundQuery> initial = {MakeQuery(f, 42)};
    BoundQuery late = MakeQuery(f, 43);
    std::unique_ptr<BatchExecutor> executor;
    if (sharded) {
      executor = ShardedBatchExecutor::Create(
                     WithPartitions(initial, partitions), partitions,
                     Options(2))
                     .value();
      late.partitions = partitions;
    } else {
      executor = BatchExecutor::Create(initial, Options(2)).value();
    }
    executor->Start();
    executor->Step();
    executor->Step();
    EXPECT_TRUE(executor->Join(late).ok());
    while (executor->Step()) {
    }
    return executor->TakeItems();
  };

  const std::vector<BatchItem> plain = drive(false);
  const std::vector<BatchItem> sharded = drive(true);
  ExpectItemsIdentical(sharded, plain, "midflight join");
}

TEST(ShardedExecutorTest, JoinRequiresMatchingPartitionSet) {
  ShardFixture f = MakeShardFixture(20000, 7);
  auto partitions = PartitionedStore::Split(f.store, 2).value();
  auto executor =
      ShardedBatchExecutor::Create(WithPartitions({MakeQuery(f)}, partitions),
                                   partitions, Options(2))
          .value();
  executor->Start();
  executor->Step();
  // No partition set on the joiner, or a different set: structural.
  EXPECT_FALSE(executor->Join(MakeQuery(f, 43)).ok());
  {
    BoundQuery other = MakeQuery(f, 43);
    other.partitions = PartitionedStore::Split(f.store, 2).value();
    EXPECT_FALSE(executor->Join(other).ok());
  }
  // And the same set joins fine.
  BoundQuery late = MakeQuery(f, 43);
  late.partitions = partitions;
  EXPECT_TRUE(executor->Join(late).ok());
  while (executor->Step()) {
  }
  auto items = executor->TakeItems();
  ASSERT_EQ(items.size(), 2u);
  EXPECT_TRUE(items[0].status.ok());
  EXPECT_TRUE(items[1].status.ok());
}

/// Records every publish for inspection.
class RecordingSink : public Stage1Sink {
 public:
  struct Publication {
    uint64_t store_id;
    uint64_t partition_id;
    int z_attr;
    std::vector<int> x_attrs;
    std::shared_ptr<const Stage1Snapshot> snapshot;
  };

  void Publish(uint64_t store_id, uint64_t partition_id, int z_attr,
               const std::vector<int>& x_attrs,
               std::shared_ptr<const Stage1Snapshot> snapshot) override {
    publications.push_back(
        {store_id, partition_id, z_attr, x_attrs, std::move(snapshot)});
  }

  std::vector<Publication> publications;
};

TEST(ShardedExecutorTest, ExportsOneSnapshotPerPartition) {
  ShardFixture f = MakeShardFixture(2000, 8);
  const int P = 3;
  auto partitions = PartitionedStore::Split(f.store, P).value();
  // A stage-1 draw large enough that its contiguous scan windows wrap
  // through every partition — otherwise only the partitions the cursor
  // touched have a share, and those are all the export can cover.
  BoundQuery query = MakeQuery(f);
  query.params.stage1_samples = 20000;

  // Reference: the plain run's whole-store export.
  RecordingSink plain_sink;
  BatchOptions plain_options = Options(2);
  plain_options.stage1_sink = &plain_sink;
  BatchExecutor::Create({query}, plain_options).value()->Run();
  ASSERT_EQ(plain_sink.publications.size(), 1u);
  const Stage1Snapshot& whole = *plain_sink.publications[0].snapshot;
  EXPECT_EQ(plain_sink.publications[0].store_id, f.store->id());
  EXPECT_EQ(plain_sink.publications[0].partition_id, kWholeStorePartition);

  RecordingSink sink;
  BatchOptions options = Options(2);
  options.stage1_sink = &sink;
  auto executor = ShardedBatchExecutor::Create(
                      WithPartitions({query}, partitions), partitions, options)
                      .value();
  executor->Run();
  ASSERT_EQ(sink.publications.size(), static_cast<size_t>(P));
  EXPECT_EQ(executor->stats().stage1_exports, P);

  CountMatrix merged(whole.counts.num_candidates(), whole.counts.num_groups());
  int64_t rows = 0;
  std::set<uint64_t> partition_ids;
  for (int p = 0; p < P; ++p) {
    const RecordingSink::Publication& pub = sink.publications[p];
    // Keyed (partition set id, partition store id) — never the source
    // store's id, never kWholeStorePartition.
    EXPECT_EQ(pub.store_id, partitions->id());
    EXPECT_EQ(pub.partition_id, partitions->partition(p)->id());
    partition_ids.insert(pub.partition_id);
    EXPECT_GT(pub.snapshot->rows_drawn, 0);
    // The snapshot's scan state is partition-local: its consumed mask
    // covers the partition's own block range, and partition snapshots
    // never carry exhaustion flags (exhaustion is logical-scan
    // knowledge, not partition-local).
    EXPECT_EQ(pub.snapshot->scan.consumed.size(),
              partitions->partition(p)->num_blocks());
    EXPECT_TRUE(pub.snapshot->scan.exhausted.empty());
    merged.Merge(pub.snapshot->counts);
    rows += pub.snapshot->rows_drawn;
  }
  EXPECT_EQ(partition_ids.size(), static_cast<size_t>(P));
  // Decomposition: the per-partition snapshots sum back to exactly the
  // whole-store export — same logical scan, scattered by partition.
  EXPECT_EQ(rows, whole.rows_drawn);
  for (int i = 0; i < merged.num_candidates(); ++i) {
    for (int g = 0; g < merged.num_groups(); ++g) {
      ASSERT_EQ(merged.At(i, g), whole.counts.At(i, g))
          << "partition decomposition diverged at " << i << "," << g;
    }
  }
}

TEST(ShardedExecutorTest, WarmPartsRoundTripMatchesMergedPrior) {
  // Consume-side round trip: per-partition snapshots exported by one
  // sharded run, attached as stage1_warm_parts to a later run, must
  // behave exactly like a plain query warm-started with the merged
  // overlapping prior (counts and rows summed across partitions).
  ShardFixture f = MakeShardFixture(2000, 10);
  const int P = 3;
  auto partitions = PartitionedStore::Split(f.store, P).value();

  // Large stage-1 draw so every partition contributes a snapshot (a
  // contiguous scan window covers all partitions).
  BoundQuery exporter = MakeQuery(f);
  exporter.params.stage1_samples = 20000;
  RecordingSink sink;
  BatchOptions export_options = Options(2);
  export_options.stage1_sink = &sink;
  ShardedBatchExecutor::Create(WithPartitions({exporter}, partitions),
                               partitions, export_options)
      .value()
      ->Run();
  ASSERT_EQ(sink.publications.size(), static_cast<size_t>(P));

  // Sharded warm run.
  BoundQuery warm_sharded = MakeQuery(f, 77);
  warm_sharded.partitions = partitions;
  warm_sharded.stage1_warm_parts.resize(P);
  for (int p = 0; p < P; ++p) {
    warm_sharded.stage1_warm_parts[p] = sink.publications[p].snapshot;
  }
  auto sharded_exec =
      ShardedBatchExecutor::Create({warm_sharded}, partitions, Options(2))
          .value();
  std::vector<BatchItem> sharded_items = sharded_exec->Run();
  EXPECT_EQ(sharded_exec->stats().warm_queries, 1);

  // Plain equivalent: one merged snapshot, overlapping prior (empty
  // scan state forces the overlapping path, same as the merged parts).
  auto merged = std::make_shared<Stage1Snapshot>();
  merged->counts = CountMatrix(12, 8);
  for (int p = 0; p < P; ++p) {
    merged->counts.Merge(sink.publications[p].snapshot->counts);
    merged->rows_drawn += sink.publications[p].snapshot->rows_drawn;
  }
  BoundQuery warm_plain = MakeQuery(f, 77);
  warm_plain.stage1_warm = merged;
  auto plain_exec = BatchExecutor::Create({warm_plain}, Options(2)).value();
  std::vector<BatchItem> plain_items = plain_exec->Run();
  EXPECT_EQ(plain_exec->stats().warm_queries, 1);

  ExpectItemsIdentical(sharded_items, plain_items, "warm parts round trip");
}

TEST(ShardedExecutorTest, WarmPartsValidation) {
  ShardFixture f = MakeShardFixture(2000, 12);
  auto partitions = PartitionedStore::Split(f.store, 2).value();

  // stage1_warm_parts on an unpartitioned query: per-item error, not a
  // silent ignore.
  {
    BoundQuery q = MakeQuery(f);
    q.stage1_warm_parts.resize(2);
    auto executor = BatchExecutor::Create({q}, Options(2)).value();
    auto items = executor->Run();
    ASSERT_EQ(items.size(), 1u);
    EXPECT_EQ(items[0].status.code(), StatusCode::kInvalidArgument);
  }
  // Wrong slot count on a sharded query.
  {
    BoundQuery q = MakeQuery(f);
    q.partitions = partitions;
    q.stage1_warm_parts.resize(3);
    auto executor =
        ShardedBatchExecutor::Create({q}, partitions, Options(2)).value();
    auto items = executor->Run();
    ASSERT_EQ(items.size(), 1u);
    EXPECT_EQ(items[0].status.code(), StatusCode::kInvalidArgument);
  }
  // Both warm fields set.
  {
    BoundQuery q = MakeQuery(f);
    q.partitions = partitions;
    q.stage1_warm_parts.resize(2);
    auto snap = std::make_shared<Stage1Snapshot>();
    snap->counts = CountMatrix(12, 8);
    snap->rows_drawn = 100;
    q.stage1_warm_parts[0] = snap;
    q.stage1_warm = snap;
    auto executor =
        ShardedBatchExecutor::Create({q}, partitions, Options(2)).value();
    auto items = executor->Run();
    ASSERT_EQ(items.size(), 1u);
    EXPECT_EQ(items[0].status.code(), StatusCode::kInvalidArgument);
  }
  // All-null warm parts degrade to a cold query, not an error (a
  // partial cache miss upstream may legitimately attach nothing).
  {
    BoundQuery q = MakeQuery(f);
    q.partitions = partitions;
    q.stage1_warm_parts.resize(2);
    auto executor =
        ShardedBatchExecutor::Create({q}, partitions, Options(2)).value();
    auto items = executor->Run();
    ASSERT_EQ(items.size(), 1u);
    EXPECT_TRUE(items[0].status.ok()) << items[0].status.ToString();
    EXPECT_EQ(executor->stats().warm_queries, 0);
  }
}

}  // namespace
}  // namespace fastmatch
