// Anytime-query tests: the progressive top-k channel (ProgressUpdate)
// and execution budgets (SubmitOptions::budget_seconds).
//
// What is pinned here:
//   * the executor's progress stream is well-formed — sequences count
//     1, 2, ... with exactly one final update, per-candidate error bars
//     shrink weakly across updates at a fixed seed, and the final
//     update reproduces the delivered MatchResult bit-for-bit — across
//     worker counts and on sharded (scatter-gather) stores;
//   * EvictWithResult() harvests a best-effort OK result whose error
//     bars contain the exact ground-truth distance for every candidate
//     (seeded suite; deterministic at a fixed seed);
//   * the evict-vs-completion race regression: harvesting a query whose
//     machine already finished is refused with FailedPrecondition and
//     the EXACT result — not a best-effort one — is what surfaces;
//   * at the scheduler, budget expiry terminates OK with best_effort
//     set (never DeadlineExceeded / Cancelled), counts under
//     stats().budget_evicted only, and both progress consumers — the
//     QueryHandle::Progress() poll channel and the on_progress
//     callback — observe the same stream.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "core/verify.h"
#include "engine/batch_executor.h"
#include "engine/sharded_batch_executor.h"
#include "index/bitmap_index.h"
#include "service/query_scheduler.h"
#include "storage/partitioned_store.h"
#include "test_helpers.h"
#include "util/sync.h"

namespace fastmatch {
namespace {

using testing_util::MakeExactStore;
using testing_util::PlantedDistributions;

struct AnytimeFixture {
  std::shared_ptr<ColumnStore> store;
  std::shared_ptr<const BitmapIndex> index;
  std::shared_ptr<const PartitionedStore> partitions;
  CountMatrix exact;
  Distribution target;
};

/// 12 candidates at staggered planted distances from uniform, so the
/// true top-3 is {0, 1, 2} and ComputeGroundTruth is closed-form.
AnytimeFixture MakeAnytimeFixture(int64_t rows_per_candidate, uint64_t seed,
                                  int rows_per_block = 50) {
  AnytimeFixture f;
  std::vector<double> offsets = {0.0,  0.01, 0.02, 0.06, 0.09, 0.12,
                                 0.15, 0.17, 0.19, 0.21, 0.23, 0.25};
  auto dists = PlantedDistributions(12, 8, offsets);
  f.store = MakeExactStore(std::vector<int64_t>(12, rows_per_candidate),
                           dists, seed, rows_per_block);
  f.index = BitmapIndex::Build(*f.store, 0).value();
  f.partitions = PartitionedStore::Split(f.store, 3).value();
  f.exact = ComputeExactCounts(*f.store, 0, {1}).value();
  f.target = UniformDistribution(8);
  return f;
}

HistSimParams AnytimeParams(uint64_t seed = 42) {
  HistSimParams p;
  p.k = 3;
  p.epsilon = 0.05;
  p.delta = 0.05;
  p.sigma = 0.0;
  p.stage1_samples = 3000;
  p.seed = seed;
  return p;
}

BoundQuery MakeQuery(const AnytimeFixture& f, uint64_t seed = 42,
                     bool partitioned = false) {
  BoundQuery q;
  q.store = f.store;
  q.z_index = f.index;
  q.z_attr = 0;
  q.x_attrs = {1};
  q.target = f.target;
  q.params = AnytimeParams(seed);
  if (partitioned) q.partitions = f.partitions;
  return q;
}

BatchOptions ExecOptions(int threads, int chunk_blocks = 8) {
  BatchOptions o;
  o.num_threads = threads;
  o.chunk_blocks = chunk_blocks;
  o.seed = 7;
  return o;
}

/// The stream contract: sequences 1..n, bars weakly shrinking per
/// candidate, rows_consumed nondecreasing, exactly the last update
/// final, and the final update equal to the delivered result
/// bit-for-bit (vector operator== on doubles — no tolerance).
void CheckUpdateStream(const std::vector<ProgressUpdate>& updates,
                       const MatchResult& match) {
  ASSERT_FALSE(updates.empty());
  for (size_t j = 0; j < updates.size(); ++j) {
    EXPECT_EQ(updates[j].sequence, j + 1) << "update " << j;
    EXPECT_EQ(updates[j].final_update, j + 1 == updates.size())
        << "update " << j;
    if (j == 0) continue;
    EXPECT_GE(updates[j].rows_consumed, updates[j - 1].rows_consumed)
        << "update " << j;
    ASSERT_EQ(updates[j].error_bars.size(), updates[j - 1].error_bars.size());
    for (size_t i = 0; i < updates[j].error_bars.size(); ++i) {
      // Weak shrinkage: the pooled per-candidate sample only grows, and
      // the Theorem-1 radius is decreasing in it (0 once exact).
      EXPECT_LE(updates[j].error_bars[i], updates[j - 1].error_bars[i])
          << "candidate " << i << " bar grew at update " << j;
    }
  }
  const ProgressUpdate& last = updates.back();
  EXPECT_EQ(last.topk, match.topk);
  EXPECT_EQ(last.topk_distances, match.topk_distances);
  EXPECT_EQ(last.distances, match.distances);
  EXPECT_EQ(last.error_bars, match.error_bars);
  EXPECT_EQ(last.exact, match.exact);
}

/// Honest-bars check against the Scan baseline: every candidate's
/// estimate within its own radius of the exact distance. Theorem 1 at
/// delta/|VZ| per candidate makes this hold jointly with probability
/// > 1 - delta; the bound is conservative enough that the fixed-seed
/// suite below passes deterministically.
void CheckBarsContainTruth(const MatchResult& match,
                           const GroundTruth& truth) {
  ASSERT_EQ(match.distances.size(), truth.distances.size());
  ASSERT_EQ(match.error_bars.size(), truth.distances.size());
  for (size_t i = 0; i < match.distances.size(); ++i) {
    EXPECT_LE(std::abs(match.distances[i] - truth.distances[i]),
              match.error_bars[i] + 1e-12)
        << "candidate " << i << " outside its error bar";
  }
}

// ------------------------------------------------ executor-level stream

TEST(AnytimeTest, ProgressStreamMonotoneAndFinalAcrossWorkerCounts) {
  for (int threads : {1, 2, 4}) {
    AnytimeFixture f = MakeAnytimeFixture(2000, 31);
    std::vector<BoundQuery> queries = {MakeQuery(f, 42), MakeQuery(f, 43)};
    auto executor =
        BatchExecutor::Create(queries, ExecOptions(threads)).value();
    std::vector<std::vector<ProgressUpdate>> streams(queries.size());
    executor->SetProgressCallback(
        [&streams](size_t index, const ProgressUpdate& update) {
          streams[index].push_back(update);
        });
    executor->Start();
    while (executor->Step()) {
    }
    std::vector<BatchItem> items = executor->TakeItems();
    ASSERT_EQ(items.size(), queries.size());
    for (size_t i = 0; i < items.size(); ++i) {
      ASSERT_TRUE(items[i].status.ok()) << items[i].status.ToString();
      EXPECT_FALSE(items[i].match.best_effort);
      // chunk_blocks = 8 (400 rows) against a 3000-row stage-1 demand:
      // at least one intermediate update precedes the final one.
      ASSERT_GE(streams[i].size(), 2u) << "threads=" << threads;
      CheckUpdateStream(streams[i], items[i].match);
    }
  }
}

TEST(AnytimeTest, ProgressStreamOnShardedStore) {
  AnytimeFixture f = MakeAnytimeFixture(2000, 37);
  std::vector<BoundQuery> queries = {MakeQuery(f, 42, /*partitioned=*/true),
                                     MakeQuery(f, 44, /*partitioned=*/true)};
  auto executor =
      ShardedBatchExecutor::Create(queries, f.partitions, ExecOptions(2))
          .value();
  std::vector<std::vector<ProgressUpdate>> streams(queries.size());
  executor->SetProgressCallback(
      [&streams](size_t index, const ProgressUpdate& update) {
        streams[index].push_back(update);
      });
  executor->Start();
  while (executor->Step()) {
  }
  std::vector<BatchItem> items = executor->TakeItems();
  for (size_t i = 0; i < items.size(); ++i) {
    ASSERT_TRUE(items[i].status.ok()) << items[i].status.ToString();
    ASSERT_GE(streams[i].size(), 2u);
    CheckUpdateStream(streams[i], items[i].match);
  }
}

// --------------------------------------------- executor-level harvest

TEST(AnytimeTest, HarvestedResultBarsContainGroundTruth) {
  // Seeded suite: harvest after a couple of chunks, well before the
  // three stages complete, and check the best-effort answer is honest
  // about its uncertainty. Deterministic at fixed seeds.
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) {
    AnytimeFixture f = MakeAnytimeFixture(4000, seed);
    const GroundTruth truth =
        ComputeGroundTruth(f.exact, f.target, AnytimeParams().metric,
                           /*sigma=*/0.0, /*k=*/3);
    auto executor =
        BatchExecutor::Create({MakeQuery(f, 100 + seed)}, ExecOptions(2))
            .value();
    executor->Start();
    executor->Step();
    executor->Step();
    ASSERT_TRUE(executor->EvictWithResult(0).ok());
    EXPECT_TRUE(executor->finished());
    EXPECT_EQ(executor->stats().harvested_queries, 1);
    std::vector<BatchItem> items = executor->TakeItems();
    ASSERT_EQ(items.size(), 1u);
    ASSERT_TRUE(items[0].status.ok()) << items[0].status.ToString();
    const MatchResult& match = items[0].match;
    EXPECT_TRUE(match.best_effort) << "seed " << seed;
    EXPECT_EQ(static_cast<int>(match.topk.size()), 3);
    CheckBarsContainTruth(match, truth);
    // Two chunks of a 480-block scan cannot have enumerated anyone:
    // the bars must confess, not claim exactness.
    for (size_t i = 0; i < match.error_bars.size(); ++i) {
      EXPECT_GT(match.error_bars[i], 0.0) << "candidate " << i;
    }
  }
}

TEST(AnytimeTest, HarvestAfterCompletionIsRefusedAndExactResultSurvives) {
  // Satellite regression: EvictWithResult on a query whose machine
  // completed in the same chunk must NOT clobber the exact result.
  AnytimeFixture f = MakeAnytimeFixture(1500, 17);
  auto executor =
      BatchExecutor::Create({MakeQuery(f, 42)}, ExecOptions(2, 64)).value();
  executor->Start();
  while (executor->Step()) {
  }
  const Status refused = executor->EvictWithResult(0);
  EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition)
      << refused.ToString();
  EXPECT_EQ(executor->stats().harvested_queries, 0);
  std::vector<BatchItem> items = executor->TakeItems();
  ASSERT_EQ(items.size(), 1u);
  ASSERT_TRUE(items[0].status.ok()) << items[0].status.ToString();
  EXPECT_FALSE(items[0].match.best_effort);
  std::set<int> got(items[0].match.topk.begin(), items[0].match.topk.end());
  EXPECT_EQ(got, (std::set<int>{0, 1, 2}));
}

TEST(AnytimeTest, EvictWithResultContract) {
  AnytimeFixture f = MakeAnytimeFixture(1500, 19);
  auto executor =
      BatchExecutor::Create({MakeQuery(f, 42)}, ExecOptions(2)).value();
  // Before Start: structural misuse.
  EXPECT_EQ(executor->EvictWithResult(0).code(),
            StatusCode::kFailedPrecondition);
  executor->Start();
  EXPECT_EQ(executor->EvictWithResult(9).code(), StatusCode::kOutOfRange);
  executor->Step();
  ASSERT_TRUE(executor->EvictWithResult(0).ok());
  // Harvesting twice: the query is no longer active.
  EXPECT_EQ(executor->EvictWithResult(0).code(),
            StatusCode::kFailedPrecondition);
  (void)executor->TakeItems();
}

// ------------------------------------------------- scheduler lifecycle

SchedulerOptions AnytimeSchedOptions() {
  SchedulerOptions options;
  options.batch.num_threads = 2;
  options.batch.chunk_blocks = 4;
  options.max_batch_queries = 8;
  options.max_queue_wait_seconds = 0.002;
  options.min_join_suffix_fraction = 0.0;
  options.eager_delivery = true;
  return options;
}

TEST(AnytimeTest, BudgetExpiryDeliversBestEffortOkResult) {
  AnytimeFixture f = MakeAnytimeFixture(2000, 23);
  const GroundTruth truth = ComputeGroundTruth(
      f.exact, f.target, AnytimeParams().metric, /*sigma=*/0.0, /*k=*/3);
  QueryScheduler scheduler(AnytimeSchedOptions());
  Mutex mu;
  std::vector<ProgressUpdate> stream;
  SubmitOptions submit;
  // A 0.1ms execution budget against a 480-block scan in 4-block
  // chunks: expiry is certain long before the three stages complete.
  submit.budget_seconds = 1e-4;
  submit.track_progress = true;
  submit.on_progress = [&mu, &stream](const ProgressUpdate& update) {
    MutexLock lock(&mu);
    stream.push_back(update);
  };
  auto handle = scheduler.Submit(MakeQuery(f, 42), submit);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  SchedulerItem item = handle->Get();
  ASSERT_TRUE(item.status.ok()) << item.status.ToString();
  EXPECT_TRUE(item.match.best_effort);
  CheckBarsContainTruth(item.match, truth);

  // Both consumers observed the stream, ending in the delivered result.
  {
    MutexLock lock(&mu);
    CheckUpdateStream(stream, item.match);
  }
  std::optional<ProgressUpdate> latest = handle->Progress();
  ASSERT_TRUE(latest.has_value());
  EXPECT_TRUE(latest->final_update);
  EXPECT_EQ(latest->distances, item.match.distances);
  EXPECT_EQ(latest->error_bars, item.match.error_bars);

  // Accounting: a budget expiry is a delivered answer, not an error.
  SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.budget_evicted, 1);
  EXPECT_EQ(stats.deadline_exceeded, 0);
  EXPECT_EQ(stats.cancelled, 0);
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(stats.submitted, 1);
  scheduler.Shutdown();
}

TEST(AnytimeTest, BudgetRaceNeverLosesAnExactResult) {
  // Sweep budgets across the completion time of a SMALL scan so expiry
  // and completion genuinely race. Whichever side wins, the contract
  // holds: the future resolves OK, a non-best-effort result is the
  // exact one, and only harvested queries count under budget_evicted.
  AnytimeFixture f = MakeAnytimeFixture(300, 29);
  QueryScheduler scheduler(AnytimeSchedOptions());
  int64_t best_effort_seen = 0;
  int64_t submitted = 0;
  for (double budget : {0.0, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3}) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      SubmitOptions submit;
      submit.budget_seconds = budget;
      auto handle = scheduler.Submit(MakeQuery(f, seed), submit);
      ASSERT_TRUE(handle.ok()) << handle.status().ToString();
      ++submitted;
      SchedulerItem item = handle->Get();
      ASSERT_TRUE(item.status.ok())
          << "budget " << budget << " seed " << seed << ": "
          << item.status.ToString();
      if (item.match.best_effort) {
        ++best_effort_seen;
        ASSERT_GT(budget, 0.0) << "no budget, yet harvested";
      } else {
        std::set<int> got(item.match.topk.begin(), item.match.topk.end());
        EXPECT_EQ(got, (std::set<int>{0, 1, 2}))
            << "budget " << budget << " seed " << seed;
      }
    }
  }
  SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.budget_evicted, best_effort_seen);
  EXPECT_EQ(stats.deadline_exceeded, 0);
  EXPECT_EQ(stats.cancelled, 0);
  EXPECT_EQ(stats.completed, submitted);
  EXPECT_EQ(stats.submitted, submitted);
  scheduler.Shutdown();
}

TEST(AnytimeTest, SchedulerProgressOnShardedStore) {
  AnytimeFixture f = MakeAnytimeFixture(2000, 41);
  QueryScheduler scheduler(AnytimeSchedOptions());
  Mutex mu;
  std::vector<ProgressUpdate> stream;
  SubmitOptions submit;
  submit.track_progress = true;
  submit.on_progress = [&mu, &stream](const ProgressUpdate& update) {
    MutexLock lock(&mu);
    stream.push_back(update);
  };
  auto handle =
      scheduler.Submit(MakeQuery(f, 42, /*partitioned=*/true), submit);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  SchedulerItem item = handle->Get();
  ASSERT_TRUE(item.status.ok()) << item.status.ToString();
  EXPECT_FALSE(item.match.best_effort);
  {
    MutexLock lock(&mu);
    ASSERT_GE(stream.size(), 2u);
    CheckUpdateStream(stream, item.match);
  }
  std::optional<ProgressUpdate> latest = handle->Progress();
  ASSERT_TRUE(latest.has_value());
  EXPECT_TRUE(latest->final_update);
  scheduler.Shutdown();
}

TEST(AnytimeTest, UntrackedHandleHasNoProgressChannel) {
  AnytimeFixture f = MakeAnytimeFixture(300, 43);
  QueryScheduler scheduler(AnytimeSchedOptions());
  auto handle = scheduler.Submit(MakeQuery(f, 42), SubmitOptions{});
  ASSERT_TRUE(handle.ok());
  EXPECT_FALSE(handle->Progress().has_value());
  SchedulerItem item = handle->Get();
  ASSERT_TRUE(item.status.ok());
  EXPECT_FALSE(handle->Progress().has_value());
  scheduler.Shutdown();
}

}  // namespace
}  // namespace fastmatch
