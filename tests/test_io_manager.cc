// IoManager contract tests: domain validation shared between Create
// and the constructor, and the fresh_counts SINGLE-WRITER contract —
// one thread reads blocks and flushes per-block tallies with relaxed
// load+store while a reader polls; run under TSan this pins the
// lock-free shape (a second writer thread would both race and lose
// updates, breaking the exact-equality assertion below).

#include "engine/io_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>
#include <vector>

#include "storage/column_store.h"

namespace fastmatch {
namespace {

std::shared_ptr<ColumnStore> MakeStore(uint32_t z_card, uint32_t x_card,
                                       int64_t rows, int rows_per_block,
                                       uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<Value> z(static_cast<size_t>(rows));
  std::vector<Value> x(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    z[static_cast<size_t>(r)] = static_cast<Value>(rng() % z_card);
    x[static_cast<size_t>(r)] = static_cast<Value>(rng() % x_card);
  }
  StorageOptions options;
  options.rows_per_block_override = rows_per_block;
  return ColumnStore::FromColumns(Schema({{"Z", z_card}, {"X", x_card}}),
                                  {std::move(z), std::move(x)}, options)
      .value();
}

TEST(IoManagerDomainTest, OversizedCandidateCardinalityIsRejected) {
  // Schema cardinality is declarative: a tiny store may still declare a
  // domain past the (1 << 24) bound, and Create must refuse it before
  // any matrix of that size can be sized.
  auto store = MakeStore((1u << 24) + 1, 4, /*rows=*/64, /*rows_per_block=*/16,
                         /*seed=*/1);
  auto io = IoManager::Create(store, 0, {1});
  ASSERT_FALSE(io.ok());
  EXPECT_EQ(io.status().code(), StatusCode::kInvalidArgument);
}

TEST(IoManagerDomainTest, OversizedSingleXCardinalityIsRejected) {
  auto store = MakeStore(4, (1u << 24) + 1, /*rows=*/64, /*rows_per_block=*/16,
                         /*seed=*/2);
  auto io = IoManager::Create(store, 0, {1});
  ASSERT_FALSE(io.ok());
  EXPECT_EQ(io.status().code(), StatusCode::kInvalidArgument);
}

TEST(IoManagerDomainTest, OversizedCompositeGroupCardinalityIsRejected) {
  // Each factor fits in 24 bits; the product does not. The cumulative
  // check must catch it (and must do so without the u32 -> int cast
  // wrapping a large factor negative first).
  std::mt19937_64 rng(3);
  const int64_t rows = 64;
  std::vector<Value> z(rows), a(rows), b(rows);
  for (int64_t r = 0; r < rows; ++r) {
    z[static_cast<size_t>(r)] = static_cast<Value>(rng() % 4);
    a[static_cast<size_t>(r)] = static_cast<Value>(rng() % 7);
    b[static_cast<size_t>(r)] = static_cast<Value>(rng() % 5);
  }
  StorageOptions options;
  options.rows_per_block_override = 16;
  auto store =
      ColumnStore::FromColumns(Schema({{"Z", 4}, {"A", 5000}, {"B", 5000}}),
                               {std::move(z), std::move(a), std::move(b)},
                               options)
          .value();
  auto io = IoManager::Create(store, 0, {1, 2});
  ASSERT_FALSE(io.ok());
  EXPECT_EQ(io.status().code(), StatusCode::kInvalidArgument);
}

TEST(IoManagerDomainTest, ValidDomainsStillConstruct) {
  auto store = MakeStore(100, 50, /*rows=*/500, /*rows_per_block=*/64,
                         /*seed=*/4);
  auto io = IoManager::Create(store, 0, {1});
  ASSERT_TRUE(io.ok());
  EXPECT_EQ((*io)->num_candidates(), 100);
  EXPECT_EQ((*io)->num_groups(), 50);
}

TEST(IoManagerFreshCountsTest, SingleWriterFlushMatchesRowTotalsExactly) {
  // THE single-writer regression. One writer thread sweeps every block
  // with a fresh_counts array (per-block tally flush, relaxed
  // load+store); a reader thread concurrently polls each counter and
  // asserts it never moves backwards. Under TSan this certifies the
  // relaxed protocol is race-free with one writer; and because the
  // flush is load+store rather than fetch_add, a second writer would
  // lose increments — caught here by the exact equality of the final
  // counter values with the CountMatrix row totals.
  auto store = MakeStore(23, 11, /*rows=*/40001, /*rows_per_block=*/97,
                         /*seed=*/5);
  auto io = IoManager::Create(store, 0, {1}).value();
  const int cands = io->num_candidates();

  CountMatrix counts(cands, io->num_groups());
  std::vector<std::atomic<int64_t>> fresh(static_cast<size_t>(cands));
  for (auto& f : fresh) f.store(0);
  std::atomic<bool> done{false};

  std::thread reader([&] {
    std::vector<int64_t> last(static_cast<size_t>(cands), 0);
    while (!done.load(std::memory_order_acquire)) {
      for (int c = 0; c < cands; ++c) {
        const int64_t now =
            fresh[static_cast<size_t>(c)].load(std::memory_order_relaxed);
        // Monotone per candidate: block-granular jumps, never a rewind.
        EXPECT_GE(now, last[static_cast<size_t>(c)]) << "candidate " << c;
        last[static_cast<size_t>(c)] = now;
      }
    }
  });

  int64_t rows_read = 0;
  for (BlockId b = 0; b < io->pin().num_blocks; ++b) {
    rows_read += io->ReadBlock(b, &counts, fresh.data());
  }
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(rows_read, store->num_rows());
  int64_t total = 0;
  for (int c = 0; c < cands; ++c) {
    EXPECT_EQ(fresh[static_cast<size_t>(c)].load(), counts.RowTotal(c))
        << "candidate " << c;
    total += counts.RowTotal(c);
  }
  EXPECT_EQ(total, store->num_rows());
}

TEST(IoManagerFreshCountsTest, ConcurrentReadersWithPrivateCountersAgree) {
  // The batch executor's real topology: many worker threads read
  // disjoint blocks of one shared pinned view, each into PRIVATE
  // matrices and PRIVATE fresh arrays (so every array still has exactly
  // one writer), merged afterwards. Under TSan this exercises the
  // read-only view sharing; the merged totals must equal a sequential
  // sweep bit-for-bit.
  auto store = MakeStore(23, 11, /*rows=*/40001, /*rows_per_block=*/97,
                         /*seed=*/6);
  auto io = IoManager::Create(store, 0, {1}).value();
  const int cands = io->num_candidates();
  const int groups = io->num_groups();
  const int64_t num_blocks = io->pin().num_blocks;

  constexpr int kThreads = 4;
  std::vector<CountMatrix> parts;
  std::vector<std::vector<std::atomic<int64_t>>> fresh_parts(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    parts.emplace_back(cands, groups);
    fresh_parts[static_cast<size_t>(t)] =
        std::vector<std::atomic<int64_t>>(static_cast<size_t>(cands));
    for (auto& f : fresh_parts[static_cast<size_t>(t)]) f.store(0);
  }
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (BlockId b = t; b < num_blocks; b += kThreads) {
        io->ReadBlock(b, &parts[static_cast<size_t>(t)],
                      fresh_parts[static_cast<size_t>(t)].data());
      }
    });
  }
  for (auto& w : workers) w.join();

  CountMatrix merged(cands, groups);
  for (const CountMatrix& part : parts) merged.Merge(part);
  CountMatrix sequential(cands, groups);
  for (BlockId b = 0; b < num_blocks; ++b) {
    io->ReadBlock(b, &sequential, nullptr);
  }
  for (int c = 0; c < cands; ++c) {
    int64_t fresh_sum = 0;
    for (int t = 0; t < kThreads; ++t) {
      fresh_sum += fresh_parts[static_cast<size_t>(t)][static_cast<size_t>(c)]
                       .load();
    }
    EXPECT_EQ(fresh_sum, sequential.RowTotal(c)) << "candidate " << c;
    EXPECT_EQ(merged.RowTotal(c), sequential.RowTotal(c));
    for (int g = 0; g < groups; ++g) {
      EXPECT_EQ(merged.At(c, g), sequential.At(c, g));
    }
  }
}

}  // namespace
}  // namespace fastmatch
