// Unit tests of the service tier's stage-1 sample cache: lookup/publish
// policy (min-rows coverage, keep-the-bigger-sample), TTL staleness,
// LRU capacity eviction, per-store invalidation, partition-key
// isolation (a partition's snapshot never serves another partition, and
// invalidating the logical store drops every partition's entries),
// generation classification (hit at the entry's own generation,
// revalidation-required for an older entry, miss for a newer one),
// the Promote/EvictDrifted revalidation lifecycle and its
// compare-and-act generation guards, counter reconciliation
// (lookups == hits + misses + revalidations always), and a
// multi-threaded smoke for the internal locking.

#include "service/stage1_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

namespace fastmatch {
namespace {

constexpr uint64_t kWhole = kWholeStorePartition;

std::shared_ptr<const Stage1Snapshot> MakeSnapshot(int64_t rows, int vz = 4,
                                                   int vx = 3) {
  auto snapshot = std::make_shared<Stage1Snapshot>();
  snapshot->counts = CountMatrix(vz, vx);
  snapshot->rows_drawn = rows;
  return snapshot;
}

// A snapshot drawn at a specific store generation (its scan carries the
// generation of the pin it ran under); Publish seeds the entry's
// validity horizon from it.
std::shared_ptr<const Stage1Snapshot> MakeSnapshotAt(int64_t rows,
                                                     uint64_t generation) {
  auto snapshot = std::make_shared<Stage1Snapshot>();
  snapshot->counts = CountMatrix(4, 3);
  snapshot->rows_drawn = rows;
  snapshot->scan.generation = generation;
  return snapshot;
}

TEST(Stage1CacheTest, LookupMissesThenHitsAfterPublish) {
  Stage1Cache cache;
  EXPECT_EQ(cache.Lookup(1, kWhole, 0, {1}, 100), nullptr);
  cache.Publish(1, kWhole, 0, {1}, MakeSnapshot(500));
  auto hit = cache.Lookup(1, kWhole, 0, {1}, 100);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->rows_drawn, 500);

  Stage1CacheStats stats = cache.stats();
  EXPECT_EQ(stats.lookups, 2);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.inserts, 1);
  EXPECT_EQ(cache.size(), 1);
}

TEST(Stage1CacheTest, KeysSeparateStoresAndTemplates) {
  Stage1Cache cache;
  cache.Publish(1, kWhole, 0, {1}, MakeSnapshot(500));
  // Different store id, z attribute, or grouping: all distinct entries.
  EXPECT_EQ(cache.Lookup(2, kWhole, 0, {1}, 1), nullptr);
  EXPECT_EQ(cache.Lookup(1, kWhole, 2, {1}, 1), nullptr);
  EXPECT_EQ(cache.Lookup(1, kWhole, 0, {2}, 1), nullptr);
  EXPECT_EQ(cache.Lookup(1, kWhole, 0, {1, 2}, 1), nullptr);
  EXPECT_NE(cache.Lookup(1, kWhole, 0, {1}, 1), nullptr);
}

TEST(Stage1CacheTest, PartitionKeysNeverCrossServe) {
  // A partition's snapshot samples only that partition's rows: a
  // publish under partition i must never serve partition j, nor the
  // whole-store key, nor vice versa — same store id, same template.
  Stage1Cache cache;
  cache.Publish(9, /*partition_id=*/101, 0, {1}, MakeSnapshot(500));
  EXPECT_EQ(cache.Lookup(9, /*partition_id=*/102, 0, {1}, 1), nullptr);
  EXPECT_EQ(cache.Lookup(9, kWhole, 0, {1}, 1), nullptr);
  auto hit = cache.Lookup(9, /*partition_id=*/101, 0, {1}, 1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->rows_drawn, 500);

  // The reverse direction: a whole-store publish answers only the
  // whole-store sub-key.
  cache.Publish(9, kWhole, 0, {2}, MakeSnapshot(300));
  EXPECT_EQ(cache.Lookup(9, /*partition_id=*/101, 0, {2}, 1), nullptr);
  EXPECT_NE(cache.Lookup(9, kWhole, 0, {2}, 1), nullptr);

  // Publishes under two partitions of one store coexist as separate
  // entries with independent coverage.
  cache.Publish(9, /*partition_id=*/102, 0, {1}, MakeSnapshot(200));
  EXPECT_EQ(cache.size(), 3);
  EXPECT_EQ(cache.Lookup(9, 102, 0, {1}, 300), nullptr);  // too small
  EXPECT_NE(cache.Lookup(9, 101, 0, {1}, 300), nullptr);
}

TEST(Stage1CacheTest, InvalidateStoreDropsAllPartitions) {
  // The janitor invalidates by the logical store id alone; every
  // partition's entries (and the whole-store entry) must vanish
  // together, leaving other stores untouched.
  Stage1Cache cache;
  cache.Publish(7, kWhole, 0, {1}, MakeSnapshot(100));
  cache.Publish(7, /*partition_id=*/31, 0, {1}, MakeSnapshot(100));
  cache.Publish(7, /*partition_id=*/32, 0, {1}, MakeSnapshot(100));
  cache.Publish(7, /*partition_id=*/32, 5, {2}, MakeSnapshot(100));
  cache.Publish(8, /*partition_id=*/31, 0, {1}, MakeSnapshot(100));
  ASSERT_EQ(cache.size(), 5);
  cache.InvalidateStore(7);
  EXPECT_EQ(cache.size(), 1);
  EXPECT_EQ(cache.Lookup(7, kWhole, 0, {1}, 1), nullptr);
  EXPECT_EQ(cache.Lookup(7, 31, 0, {1}, 1), nullptr);
  EXPECT_EQ(cache.Lookup(7, 32, 0, {1}, 1), nullptr);
  EXPECT_EQ(cache.Lookup(7, 32, 5, {2}, 1), nullptr);
  EXPECT_NE(cache.Lookup(8, 31, 0, {1}, 1), nullptr);
  EXPECT_EQ(cache.stats().store_invalidations, 4);
}

TEST(Stage1CacheTest, EntrySmallerThanDemandIsAMiss) {
  Stage1Cache cache;
  cache.Publish(1, kWhole, 0, {1}, MakeSnapshot(500));
  // A 500-row sample cannot satisfy a 1000-row stage-1 demand; the
  // entry stays (smaller demands are still served).
  EXPECT_EQ(cache.Lookup(1, kWhole, 0, {1}, 1000), nullptr);
  EXPECT_NE(cache.Lookup(1, kWhole, 0, {1}, 500), nullptr);
  EXPECT_EQ(cache.size(), 1);
}

TEST(Stage1CacheTest, PublishKeepsTheBiggerSample) {
  Stage1Cache cache;
  cache.Publish(1, kWhole, 0, {1}, MakeSnapshot(1000));
  cache.Publish(1, kWhole, 0, {1}, MakeSnapshot(400));  // dominated: dropped
  auto hit = cache.Lookup(1, kWhole, 0, {1}, 1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->rows_drawn, 1000);
  cache.Publish(1, kWhole, 0, {1}, MakeSnapshot(2000));  // bigger: replaces
  hit = cache.Lookup(1, kWhole, 0, {1}, 1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->rows_drawn, 2000);
  auto resident = hit;
  cache.Publish(1, kWhole, 0, {1}, MakeSnapshot(2000));  // tie: resident wins
  hit = cache.Lookup(1, kWhole, 0, {1}, 1);
  EXPECT_EQ(hit, resident);
  // An all-false exhausted vector (the common executor export)
  // certifies nothing: a tie carrying one must not displace the
  // resident either.
  auto allfalse_mut = std::make_shared<Stage1Snapshot>();
  allfalse_mut->counts = CountMatrix(4, 3);
  allfalse_mut->rows_drawn = 2000;
  allfalse_mut->scan.exhausted = {false, false, false, false};
  cache.Publish(1, kWhole, 0, {1}, allfalse_mut);
  hit = cache.Lookup(1, kWhole, 0, {1}, 1);
  EXPECT_EQ(hit, resident);
  // A tied snapshot with a TRUE exhaustion flag outranks a resident
  // without one: at equal coverage the flag certifies a candidate's
  // exact counts to a disjoint consumer — strictly more information.
  auto flagged_mut = std::make_shared<Stage1Snapshot>();
  flagged_mut->counts = CountMatrix(4, 3);
  flagged_mut->rows_drawn = 2000;
  flagged_mut->scan.exhausted = {true, false, false, false};
  std::shared_ptr<const Stage1Snapshot> flagged = flagged_mut;
  cache.Publish(1, kWhole, 0, {1}, flagged);
  hit = cache.Lookup(1, kWhole, 0, {1}, 1);
  EXPECT_EQ(hit, flagged);
  cache.Publish(1, kWhole, 0, {1}, MakeSnapshot(2000));  // flagless tie:
  hit = cache.Lookup(1, kWhole, 0, {1}, 1);              // dropped
  EXPECT_EQ(hit, flagged);
  EXPECT_EQ(cache.size(), 1);
  Stage1CacheStats stats = cache.stats();
  EXPECT_EQ(stats.publishes, 7);
  // Only real replacements count: the dominated and all three
  // non-upgrading tied publishes were dropped.
  EXPECT_EQ(stats.inserts, 3);
}

TEST(Stage1CacheTest, InvalidSnapshotsIgnored) {
  Stage1Cache cache;
  cache.Publish(1, kWhole, 0, {1}, nullptr);
  cache.Publish(1, kWhole, 0, {1}, MakeSnapshot(0));
  EXPECT_EQ(cache.size(), 0);
}

TEST(Stage1CacheTest, TtlExpiresEntriesAsStale) {
  Stage1CacheOptions options;
  options.ttl_seconds = 1e-9;  // everything is stale by the next lookup
  Stage1Cache cache(options);
  cache.Publish(1, kWhole, 0, {1}, MakeSnapshot(500));
  EXPECT_EQ(cache.Lookup(1, kWhole, 0, {1}, 1), nullptr);
  EXPECT_EQ(cache.size(), 0);
  Stage1CacheStats stats = cache.stats();
  EXPECT_EQ(stats.stale_evictions, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.lookups, stats.hits + stats.misses);
}

TEST(Stage1CacheTest, CapacityEvictsLeastRecentlyUsed) {
  Stage1CacheOptions options;
  options.capacity = 2;
  Stage1Cache cache(options);
  cache.Publish(1, kWhole, 0, {1}, MakeSnapshot(100));
  cache.Publish(2, kWhole, 0, {1}, MakeSnapshot(200));
  // Touch store 1 so store 2 is the LRU entry.
  EXPECT_NE(cache.Lookup(1, kWhole, 0, {1}, 1), nullptr);
  cache.Publish(3, kWhole, 0, {1}, MakeSnapshot(300));
  EXPECT_EQ(cache.size(), 2);
  EXPECT_NE(cache.Lookup(1, kWhole, 0, {1}, 1), nullptr);
  EXPECT_EQ(cache.Lookup(2, kWhole, 0, {1}, 1), nullptr);  // evicted
  EXPECT_NE(cache.Lookup(3, kWhole, 0, {1}, 1), nullptr);
  EXPECT_EQ(cache.stats().capacity_evictions, 1);
}

TEST(Stage1CacheTest, InvalidateStoreDropsOnlyThatStore) {
  Stage1Cache cache;
  cache.Publish(1, kWhole, 0, {1}, MakeSnapshot(100));
  cache.Publish(1, kWhole, 0, {2}, MakeSnapshot(100));
  cache.Publish(2, kWhole, 0, {1}, MakeSnapshot(100));
  cache.InvalidateStore(1);
  EXPECT_EQ(cache.size(), 1);
  EXPECT_EQ(cache.Lookup(1, kWhole, 0, {1}, 1), nullptr);
  EXPECT_EQ(cache.Lookup(1, kWhole, 0, {2}, 1), nullptr);
  EXPECT_NE(cache.Lookup(2, kWhole, 0, {1}, 1), nullptr);
  EXPECT_EQ(cache.stats().store_invalidations, 2);
}

// ------------------------------------------------ generations

TEST(Stage1CacheGenerationTest, LookupClassifiesHitRevalidateAndMiss) {
  Stage1Cache cache;
  cache.Publish(1, kWhole, 0, {1}, MakeSnapshotAt(500, 2));

  // At the entry's own generation: a plain hit.
  Stage1LookupResult at = cache.Lookup(1, kWhole, 0, {1}, 100, 2);
  EXPECT_EQ(at.outcome, Stage1Outcome::kHit);
  ASSERT_NE(at.snapshot, nullptr);
  EXPECT_EQ(at.snapshot->rows_drawn, 500);
  EXPECT_EQ(at.entry_generation, 2u);

  // Querier pinned PAST the entry: the prior describes a prefix of the
  // pinned relation — usable only through a drift test, so the snapshot
  // comes back but the outcome demands revalidation.
  Stage1LookupResult stale = cache.Lookup(1, kWhole, 0, {1}, 100, 5);
  EXPECT_EQ(stale.outcome, Stage1Outcome::kRevalidate);
  ASSERT_NE(stale.snapshot, nullptr);
  EXPECT_EQ(stale.snapshot, at.snapshot);
  EXPECT_EQ(stale.entry_generation, 2u);

  // Querier pinned BEFORE the entry: the entry samples rows the pin has
  // never seen; no revalidation can shrink a sample, so this is a plain
  // miss — but the entry survives for current-generation queriers.
  Stage1LookupResult newer = cache.Lookup(1, kWhole, 0, {1}, 100, 1);
  EXPECT_EQ(newer.outcome, Stage1Outcome::kMiss);
  EXPECT_EQ(newer.snapshot, nullptr);
  EXPECT_EQ(cache.size(), 1);
  EXPECT_EQ(cache.Lookup(1, kWhole, 0, {1}, 100, 2).outcome,
            Stage1Outcome::kHit);

  // generation == 0 is the legacy generation-agnostic mode: any usable
  // entry is a hit regardless of its generation.
  EXPECT_NE(cache.Lookup(1, kWhole, 0, {1}, 100), nullptr);

  Stage1CacheStats stats = cache.stats();
  EXPECT_EQ(stats.revalidations, 1);
  EXPECT_EQ(stats.hits, 3);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.lookups, stats.hits + stats.misses + stats.revalidations);
}

TEST(Stage1CacheGenerationTest, CoverageAndTtlOutrankRevalidation) {
  // A stale-generation entry that is also too SMALL is a miss, not a
  // revalidation candidate: no drift test can grow its sample.
  Stage1Cache cache;
  cache.Publish(1, kWhole, 0, {1}, MakeSnapshotAt(500, 1));
  Stage1LookupResult r = cache.Lookup(1, kWhole, 0, {1}, 1000, 4);
  EXPECT_EQ(r.outcome, Stage1Outcome::kMiss);
  EXPECT_EQ(r.snapshot, nullptr);
  EXPECT_EQ(cache.size(), 1);

  // TTL expiry also wins over revalidation: the entry is simply gone.
  Stage1CacheOptions options;
  options.ttl_seconds = 1e-9;
  Stage1Cache expiring(options);
  expiring.Publish(1, kWhole, 0, {1}, MakeSnapshotAt(500, 1));
  Stage1LookupResult expired = expiring.Lookup(1, kWhole, 0, {1}, 100, 4);
  EXPECT_EQ(expired.outcome, Stage1Outcome::kMiss);
  EXPECT_EQ(expiring.size(), 0);
  EXPECT_EQ(expiring.stats().stale_evictions, 1);
  EXPECT_EQ(expiring.stats().revalidations, 0);
}

TEST(Stage1CacheGenerationTest, PromoteAdvancesTheValidityHorizon) {
  Stage1Cache cache;
  cache.Publish(1, kWhole, 0, {1}, MakeSnapshotAt(500, 1));
  Stage1LookupResult stale = cache.Lookup(1, kWhole, 0, {1}, 100, 3);
  ASSERT_EQ(stale.outcome, Stage1Outcome::kRevalidate);

  // A passing drift test promotes the entry to the querier's
  // generation; the SAME snapshot now serves generation 3 as a hit.
  EXPECT_TRUE(cache.Promote(1, kWhole, 0, {1}, stale.entry_generation, 3));
  Stage1LookupResult hit = cache.Lookup(1, kWhole, 0, {1}, 100, 3);
  EXPECT_EQ(hit.outcome, Stage1Outcome::kHit);
  EXPECT_EQ(hit.snapshot, stale.snapshot);
  EXPECT_EQ(hit.entry_generation, 3u);
  // The shared snapshot keeps its original scan stamp — only the
  // cache's own validity horizon moved.
  EXPECT_EQ(hit.snapshot->scan.generation, 1u);

  // The compare-and-act guard: a promote naming a generation the entry
  // no longer stands at is a stale verdict and must be a no-op.
  EXPECT_FALSE(cache.Promote(1, kWhole, 0, {1}, 1, 4));
  EXPECT_EQ(cache.Lookup(1, kWhole, 0, {1}, 100, 3).outcome,
            Stage1Outcome::kHit);
  // Absent key: no-op too.
  EXPECT_FALSE(cache.Promote(9, kWhole, 0, {1}, 3, 4));
  EXPECT_EQ(cache.stats().promotions, 1);
}

TEST(Stage1CacheGenerationTest, PromoteDoesNotRenewRecencyOrTtl) {
  // LRU: promotion moves only the validity horizon, so a promoted entry
  // keeps its old recency and is still evicted first at capacity.
  Stage1CacheOptions options;
  options.capacity = 2;
  Stage1Cache cache(options);
  cache.Publish(1, kWhole, 0, {1}, MakeSnapshotAt(100, 1));  // oldest tick
  cache.Publish(2, kWhole, 0, {1}, MakeSnapshotAt(200, 1));
  ASSERT_TRUE(cache.Promote(1, kWhole, 0, {1}, 1, 2));
  cache.Publish(3, kWhole, 0, {1}, MakeSnapshotAt(300, 1));
  EXPECT_EQ(cache.size(), 2);
  EXPECT_EQ(cache.Lookup(1, kWhole, 0, {1}, 1), nullptr);  // evicted anyway
  EXPECT_NE(cache.Lookup(2, kWhole, 0, {1}, 1), nullptr);
  EXPECT_NE(cache.Lookup(3, kWhole, 0, {1}, 1), nullptr);

  // TTL: promotion does not refresh the publish stamp either.
  Stage1CacheOptions expiring_options;
  expiring_options.ttl_seconds = 1e-9;
  Stage1Cache expiring(expiring_options);
  expiring.Publish(1, kWhole, 0, {1}, MakeSnapshotAt(100, 1));
  ASSERT_TRUE(expiring.Promote(1, kWhole, 0, {1}, 1, 2));
  EXPECT_EQ(expiring.Lookup(1, kWhole, 0, {1}, 1, 2).outcome,
            Stage1Outcome::kMiss);
  EXPECT_EQ(expiring.stats().stale_evictions, 1);
}

TEST(Stage1CacheGenerationTest, EvictDriftedGuardsOnGeneration) {
  Stage1Cache cache;
  cache.Publish(1, kWhole, 0, {1}, MakeSnapshotAt(500, 1));
  EXPECT_TRUE(cache.EvictDrifted(1, kWhole, 0, {1}, 1));
  EXPECT_EQ(cache.size(), 0);
  EXPECT_EQ(cache.stats().drift_evictions, 1);

  // A newer-generation publish raced in before the drift verdict
  // landed: the verdict is about a dead entry; the newcomer survives.
  cache.Publish(1, kWhole, 0, {1}, MakeSnapshotAt(400, 2));
  EXPECT_FALSE(cache.EvictDrifted(1, kWhole, 0, {1}, 1));
  EXPECT_EQ(cache.size(), 1);
  EXPECT_EQ(cache.Lookup(1, kWhole, 0, {1}, 100, 2).outcome,
            Stage1Outcome::kHit);
  // Absent key: no-op.
  EXPECT_FALSE(cache.EvictDrifted(9, kWhole, 0, {1}, 1));
  EXPECT_EQ(cache.stats().drift_evictions, 1);
}

TEST(Stage1CacheGenerationTest, PublishPrefersNewerGenerations) {
  Stage1Cache cache;
  cache.Publish(1, kWhole, 0, {1}, MakeSnapshotAt(1000, 1));
  // A newer-generation snapshot replaces unconditionally, even when its
  // sample is smaller: it is valid at the frontier, the resident would
  // need a drift test before every future serve.
  cache.Publish(1, kWhole, 0, {1}, MakeSnapshotAt(100, 2));
  Stage1LookupResult hit = cache.Lookup(1, kWhole, 0, {1}, 1, 2);
  ASSERT_EQ(hit.outcome, Stage1Outcome::kHit);
  EXPECT_EQ(hit.snapshot->rows_drawn, 100);
  EXPECT_EQ(hit.entry_generation, 2u);
  // An older-generation snapshot never replaces, no matter how big.
  cache.Publish(1, kWhole, 0, {1}, MakeSnapshotAt(5000, 1));
  hit = cache.Lookup(1, kWhole, 0, {1}, 1, 2);
  ASSERT_EQ(hit.outcome, Stage1Outcome::kHit);
  EXPECT_EQ(hit.snapshot->rows_drawn, 100);
  EXPECT_EQ(cache.stats().inserts, 2);
}

TEST(Stage1CacheTest, CountersReconcileUnderConcurrentChurn) {
  // Publishers, lookers, revalidators, and invalidators hammer one
  // cache; afterwards the books must balance: every lookup is a hit, a
  // miss, or a revalidation — nothing double-counted. Stores 0-2
  // publish whole-store entries, stores 3-4 publish per-partition
  // entries, so partitioned and unpartitioned keys churn together, and
  // snapshots carry generations 1-3 while lookups pin generations 1-3,
  // so all three outcomes occur. (Run under TSan in CI via the regular
  // suite.)
  Stage1Cache cache(Stage1CacheOptions{/*capacity=*/8, /*ttl_seconds=*/0});
  constexpr int kThreads = 4;
  constexpr int kOps = 400;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOps; ++i) {
        // One store per 5-op cycle (publish, lookups, lifecycle,
        // invalidate all target it), cycling across stores — so hits,
        // revalidations, and misses all occur even if the threads
        // happen to run back-to-back instead of interleaved.
        const uint64_t store = static_cast<uint64_t>((t + i / 5) % 5);
        const uint64_t partition =
            store >= 3 ? static_cast<uint64_t>(100 + i % 3) : kWhole;
        const uint64_t generation = static_cast<uint64_t>(1 + i % 3);
        switch (i % 5) {
          case 0:
            cache.Publish(store, partition, 0, {1},
                          MakeSnapshotAt(100 + i, generation));
            break;
          case 1:
          case 2:
            cache.Lookup(store, partition, 0, {1}, 50, generation);
            break;
          case 3: {
            // Full revalidation lifecycle driven off a real lookup, so
            // Promote/EvictDrifted race with publishes the way the
            // scheduler's do.
            Stage1LookupResult r =
                cache.Lookup(store, partition, 0, {1}, 50, generation);
            if (r.outcome == Stage1Outcome::kRevalidate) {
              if (i % 2 == 0) {
                cache.Promote(store, partition, 0, {1}, r.entry_generation,
                              generation);
              } else {
                cache.EvictDrifted(store, partition, 0, {1},
                                   r.entry_generation);
              }
            }
            break;
          }
          default:
            if (i % 40 == 4) {
              cache.InvalidateStore(store);
            } else {
              cache.Lookup(store, partition, 0, {1}, 1000000);  // always miss
            }
            break;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  Stage1CacheStats stats = cache.stats();
  EXPECT_EQ(stats.lookups, stats.hits + stats.misses + stats.revalidations);
  EXPECT_GT(stats.hits, 0);
  EXPECT_GT(stats.misses, 0);
  EXPECT_GT(stats.revalidations, 0);
  EXPECT_LE(cache.size(), 8);
}

}  // namespace
}  // namespace fastmatch
