// Shared fixtures for the fastmatch test suite.

#ifndef FASTMATCH_TESTS_TEST_HELPERS_H_
#define FASTMATCH_TESTS_TEST_HELPERS_H_

#include <memory>
#include <vector>

#include "core/histogram.h"
#include "storage/column_store.h"
#include "util/logging.h"
#include "util/random.h"

namespace fastmatch {
namespace testing_util {

/// \brief Builds a two-column store ("Z", "X") where candidate i has
/// exactly per_candidate_rows[i] rows and its X values follow dists[i]
/// *deterministically* (largest-remainder rounding), then shuffles rows.
/// Exact histograms and distances are therefore known in closed form.
inline std::shared_ptr<ColumnStore> MakeExactStore(
    const std::vector<int64_t>& per_candidate_rows,
    const std::vector<Distribution>& dists, uint64_t seed,
    int rows_per_block = 0) {
  FASTMATCH_CHECK_EQ(per_candidate_rows.size(), dists.size());
  const int vz = static_cast<int>(dists.size());
  const int vx = static_cast<int>(dists[0].size());

  std::vector<Value> z_col, x_col;
  for (int i = 0; i < vz; ++i) {
    const int64_t n = per_candidate_rows[static_cast<size_t>(i)];
    // Largest-remainder apportionment of n rows over vx bins.
    std::vector<int64_t> bins(static_cast<size_t>(vx));
    std::vector<std::pair<double, int>> remainders;
    int64_t assigned = 0;
    for (int j = 0; j < vx; ++j) {
      const double want =
          dists[static_cast<size_t>(i)][static_cast<size_t>(j)] *
          static_cast<double>(n);
      bins[static_cast<size_t>(j)] = static_cast<int64_t>(want);
      assigned += bins[static_cast<size_t>(j)];
      remainders.push_back(
          {want - static_cast<double>(bins[static_cast<size_t>(j)]), j});
    }
    std::sort(remainders.begin(), remainders.end(),
              [](auto& a, auto& b) { return a.first > b.first; });
    for (int64_t r = 0; r < n - assigned; ++r) {
      bins[static_cast<size_t>(remainders[static_cast<size_t>(r)].second)]++;
    }
    for (int j = 0; j < vx; ++j) {
      for (int64_t c = 0; c < bins[static_cast<size_t>(j)]; ++c) {
        z_col.push_back(static_cast<Value>(i));
        x_col.push_back(static_cast<Value>(j));
      }
    }
  }

  StorageOptions options;
  options.rows_per_block_override = rows_per_block;
  auto store = ColumnStore::FromColumns(
      Schema({{"Z", static_cast<uint32_t>(vz)},
              {"X", static_cast<uint32_t>(vx)}}),
      {std::move(z_col), std::move(x_col)}, options);
  FASTMATCH_CHECK(store.ok()) << store.status().ToString();
  (*store)->Shuffle(seed);
  return std::move(store).value();
}

/// \brief Distributions with a planted similarity structure: candidate i
/// is at l1 distance exactly 2*offsets[i] from the uniform base shape.
/// Mass `offset` is moved onto bin 1, taken evenly from all other bins
/// (valid for offset <= (vx-1)/vx).
inline std::vector<Distribution> PlantedDistributions(
    int vz, int vx, const std::vector<double>& offsets) {
  FASTMATCH_CHECK_EQ(static_cast<size_t>(vz), offsets.size());
  FASTMATCH_CHECK_GE(vx, 2);
  std::vector<Distribution> dists;
  Distribution base(static_cast<size_t>(vx), 1.0 / vx);
  for (int i = 0; i < vz; ++i) {
    Distribution d = base;
    const double off = offsets[static_cast<size_t>(i)];
    const double per_bin = off / static_cast<double>(vx - 1);
    FASTMATCH_CHECK_LE(per_bin, base[0]);
    for (int j = 0; j < vx; ++j) d[static_cast<size_t>(j)] -= per_bin;
    d[1] += off + per_bin;
    dists.push_back(std::move(d));
  }
  return dists;
}

}  // namespace testing_util
}  // namespace fastmatch

#endif  // FASTMATCH_TESTS_TEST_HELPERS_H_
