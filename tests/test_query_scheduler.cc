// Tests of the service-tier QueryScheduler: per-store routing, admission
// policy (timeout flush of partial batches, bounded-queue back-pressure),
// streaming mid-flight joins, late arrivals falling back to fresh
// batches, and drain-on-shutdown.

#include "service/query_scheduler.h"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <set>
#include <thread>
#include <vector>

#include "core/verify.h"
#include "index/bitmap_index.h"
#include "test_helpers.h"
#include "workload/traffic.h"

namespace fastmatch {
namespace {

using testing_util::MakeExactStore;
using testing_util::PlantedDistributions;

struct SchedFixture {
  std::shared_ptr<ColumnStore> store;
  std::shared_ptr<const BitmapIndex> index;
  CountMatrix exact;
  Distribution target;
};

/// Same planted shape as the batch-executor tests: true top-3 is
/// {0, 1, 2} under the uniform target.
SchedFixture MakeSchedFixture(int64_t rows_per_candidate, uint64_t seed,
                              int rows_per_block = 50) {
  SchedFixture f;
  std::vector<double> offsets = {0.0,  0.01, 0.02, 0.06, 0.09, 0.12,
                                 0.15, 0.17, 0.19, 0.21, 0.23, 0.25};
  auto dists = PlantedDistributions(12, 8, offsets);
  f.store = MakeExactStore(std::vector<int64_t>(12, rows_per_candidate),
                           dists, seed, rows_per_block);
  f.index = BitmapIndex::Build(*f.store, 0).value();
  f.exact = ComputeExactCounts(*f.store, 0, {1}).value();
  f.target = UniformDistribution(8);
  return f;
}

HistSimParams SchedParams() {
  HistSimParams p;
  p.k = 3;
  p.epsilon = 0.05;
  p.delta = 0.05;
  p.sigma = 0.0;
  p.stage1_samples = 2000;
  p.seed = 42;
  return p;
}

BoundQuery MakeQuery(const SchedFixture& f, uint64_t seed = 42) {
  BoundQuery q;
  q.store = f.store;
  q.z_index = f.index;
  q.z_attr = 0;
  q.x_attrs = {1};
  q.target = f.target;
  q.params = SchedParams();
  q.params.seed = seed;
  return q;
}

SchedulerOptions FastOptions() {
  SchedulerOptions o;
  o.batch.num_threads = 2;
  o.batch.chunk_blocks = 64;
  o.max_batch_queries = 8;
  o.max_queue_wait_seconds = 0.002;
  o.min_join_suffix_fraction = 0.0;
  return o;
}

void ExpectTop3(const SchedulerItem& item) {
  ASSERT_TRUE(item.status.ok()) << item.status.ToString();
  std::set<int> got(item.match.topk.begin(), item.match.topk.end());
  EXPECT_EQ(got, (std::set<int>{0, 1, 2}));
}

TEST(QuerySchedulerTest, CompletesQueriesAcrossStores) {
  SchedFixture f1 = MakeSchedFixture(8000, 1);
  SchedFixture f2 = MakeSchedFixture(8000, 2);
  QueryScheduler scheduler(FastOptions());

  std::vector<std::future<SchedulerItem>> futures;
  for (int i = 0; i < 3; ++i) {
    auto a = scheduler.Submit(MakeQuery(f1, 100 + i));
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    futures.push_back(std::move(*a));
    auto b = scheduler.Submit(MakeQuery(f2, 200 + i));
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    futures.push_back(std::move(*b));
  }
  for (auto& future : futures) ExpectTop3(future.get());

  SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.pipelines, 2);
  EXPECT_EQ(stats.submitted, 6);
  EXPECT_EQ(stats.completed, 6);
  EXPECT_EQ(stats.rejected, 0);
  EXPECT_GE(stats.batches_launched, 2);
}

TEST(QuerySchedulerTest, TimeoutFlushLaunchesPartialBatch) {
  // Two queries against an 8-wide batch: only the queue-wait deadline
  // can launch them.
  SchedFixture f = MakeSchedFixture(4000, 3);
  QueryScheduler scheduler(FastOptions());
  auto a = scheduler.Submit(MakeQuery(f, 1));
  auto b = scheduler.Submit(MakeQuery(f, 2));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectTop3(a->get());
  ExpectTop3(b->get());
  SchedulerStats stats = scheduler.stats();
  EXPECT_GE(stats.timeout_flushes, 1);
  EXPECT_GE(stats.batches_launched, 1);
  EXPECT_EQ(stats.completed, 2);
}

TEST(QuerySchedulerTest, EmptyTimeoutNeverLaunchesABatch) {
  // The flush timer only starts once a query is pending: an idle
  // scheduler must not launch (or crash on) empty batches.
  SchedFixture f = MakeSchedFixture(2000, 4);
  SchedulerOptions options = FastOptions();
  options.max_queue_wait_seconds = 0.001;
  QueryScheduler scheduler(options);
  // Create the store's pipeline, drain it, then leave it idle.
  auto warm = scheduler.Submit(MakeQuery(f, 1));
  ASSERT_TRUE(warm.ok());
  ExpectTop3(warm->get());
  const int64_t batches_after_warm = scheduler.stats().batches_launched;
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(scheduler.stats().batches_launched, batches_after_warm);
  // And the pipeline still accepts work afterwards.
  auto late = scheduler.Submit(MakeQuery(f, 2));
  ASSERT_TRUE(late.ok());
  ExpectTop3(late->get());
}

TEST(QuerySchedulerTest, BackPressureRejectsWhenSaturated) {
  SchedFixture f = MakeSchedFixture(2000, 5);
  SchedulerOptions options = FastOptions();
  options.max_pending_per_store = 2;
  options.max_batch_queries = 8;
  // A long flush deadline keeps the first two queries pending while the
  // third arrives, so the rejection is deterministic.
  options.max_queue_wait_seconds = 5.0;
  QueryScheduler scheduler(options);

  auto a = scheduler.Submit(MakeQuery(f, 1));
  auto b = scheduler.Submit(MakeQuery(f, 2));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto c = scheduler.Submit(MakeQuery(f, 3));
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(scheduler.stats().rejected, 1);

  // Shutdown drains the pending queue; the accepted queries complete.
  scheduler.Shutdown();
  ExpectTop3(a->get());
  ExpectTop3(b->get());
  EXPECT_EQ(scheduler.stats().completed, 2);
}

TEST(QuerySchedulerTest, StreamingAdmissionJoinsARunningScan) {
  // A slow first batch (tight epsilon over a larger store) and a
  // follower submitted right after launch: the follower must join the
  // running scan mid-flight rather than wait for the next batch.
  SchedFixture f = MakeSchedFixture(30000, 6);
  SchedulerOptions options = FastOptions();
  options.max_queue_wait_seconds = 0.001;
  QueryScheduler scheduler(options);

  BoundQuery slow = MakeQuery(f, 1);
  slow.params.epsilon = 0.03;
  auto first = scheduler.Submit(std::move(slow));
  ASSERT_TRUE(first.ok());
  // Wait for the batch to launch (the counter ticks before the executor
  // is even created, well before its scan can finish).
  for (int spin = 0; scheduler.stats().batches_launched < 1 && spin < 10000;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  ASSERT_GE(scheduler.stats().batches_launched, 1);

  auto follower = scheduler.Submit(MakeQuery(f, 2));
  ASSERT_TRUE(follower.ok());
  SchedulerItem follower_item = follower->get();
  ExpectTop3(follower_item);
  ExpectTop3(first->get());

  SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.joined_midflight, 1);
  EXPECT_TRUE(follower_item.joined_midflight);
  EXPECT_EQ(stats.batches_launched, 1);
  EXPECT_EQ(stats.completed, 2);
}

TEST(QuerySchedulerTest, LateArrivalAfterScanEndGetsFreshBatch) {
  // Tiny store: each batch consumes every block, so a query submitted
  // after a batch retires can never join it — it must get a fresh batch
  // (the scheduler-level face of BatchExecutor's empty-suffix Join
  // rejection).
  SchedFixture f = MakeSchedFixture(200, 7, /*rows_per_block=*/25);
  SchedulerOptions options = FastOptions();
  QueryScheduler scheduler(options);

  auto a = scheduler.Submit(MakeQuery(f, 1));
  ASSERT_TRUE(a.ok());
  SchedulerItem first = a->get();
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();

  auto b = scheduler.Submit(MakeQuery(f, 2));
  ASSERT_TRUE(b.ok());
  SchedulerItem second = b->get();
  ASSERT_TRUE(second.status.ok()) << second.status.ToString();
  EXPECT_FALSE(second.joined_midflight);

  SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.batches_launched, 2);
  EXPECT_EQ(stats.joined_midflight, 0);
  EXPECT_EQ(stats.completed, 2);
}

TEST(QuerySchedulerTest, SuffixFractionPolicyRefusesLateJoins) {
  // With min_join_suffix_fraction = 1.0, a join is refused as soon as a
  // single block has been consumed (an untouched scan, fraction exactly
  // 1.0, is still joinable — it is simply a full run). A follower
  // arriving after the scan started therefore always lands in a fresh
  // batch: the latency/amortization policy knob in its extreme position.
  SchedFixture f = MakeSchedFixture(30000, 8);
  SchedulerOptions options = FastOptions();
  options.max_queue_wait_seconds = 0.001;
  options.min_join_suffix_fraction = 1.0;
  QueryScheduler scheduler(options);

  BoundQuery slow = MakeQuery(f, 1);
  slow.params.epsilon = 0.03;
  auto first = scheduler.Submit(std::move(slow));
  ASSERT_TRUE(first.ok());
  for (int spin = 0; scheduler.stats().batches_launched < 1 && spin < 10000;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  // Give the scan time to consume its first chunk; whether the batch is
  // still running (join refused) or already done (nothing to join), the
  // follower must not be admitted mid-flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  auto follower = scheduler.Submit(MakeQuery(f, 2));
  ASSERT_TRUE(follower.ok());
  SchedulerItem follower_item = follower->get();
  ExpectTop3(follower_item);
  ExpectTop3(first->get());
  EXPECT_FALSE(follower_item.joined_midflight);
  EXPECT_EQ(scheduler.stats().joined_midflight, 0);
}

TEST(QuerySchedulerTest, SubmitValidation) {
  SchedFixture f = MakeSchedFixture(2000, 9);
  QueryScheduler scheduler(FastOptions());
  BoundQuery no_store = MakeQuery(f, 1);
  no_store.store = nullptr;
  EXPECT_EQ(scheduler.Submit(std::move(no_store)).status().code(),
            StatusCode::kInvalidArgument);
  scheduler.Shutdown();
  EXPECT_EQ(scheduler.Submit(MakeQuery(f, 2)).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(QuerySchedulerTest, PerQueryFailuresArriveThroughTheFuture) {
  SchedFixture f = MakeSchedFixture(4000, 10);
  QueryScheduler scheduler(FastOptions());
  BoundQuery bad = MakeQuery(f, 1);
  bad.target = UniformDistribution(5);  // |VX| is 8
  auto bad_future = scheduler.Submit(std::move(bad));
  ASSERT_TRUE(bad_future.ok());  // Submit accepts; execution reports
  auto good_future = scheduler.Submit(MakeQuery(f, 2));
  ASSERT_TRUE(good_future.ok());
  SchedulerItem bad_item = bad_future->get();
  EXPECT_EQ(bad_item.status.code(), StatusCode::kInvalidArgument);
  ExpectTop3(good_future->get());
}

}  // namespace
}  // namespace fastmatch
