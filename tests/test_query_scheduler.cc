// Tests of the service-tier QueryScheduler: per-store routing, admission
// policy (timeout flush of partial batches, bounded-queue back-pressure),
// streaming mid-flight joins, late arrivals falling back to fresh
// batches, drain-on-shutdown, and the per-query lifecycle — deadlines,
// cancellation (queued and running), abandoned handles, eager delivery,
// and idle-pipeline reaping. The randomized concurrency torture test
// lives in test_lifecycle_stress.cc.

#include "service/query_scheduler.h"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <set>
#include <thread>
#include <vector>

#include "core/verify.h"
#include "engine/batch_executor.h"
#include "index/bitmap_index.h"
#include "storage/partitioned_store.h"
#include "test_helpers.h"
#include "workload/traffic.h"

namespace fastmatch {
namespace {

using testing_util::MakeExactStore;
using testing_util::PlantedDistributions;

struct SchedFixture {
  std::shared_ptr<ColumnStore> store;
  std::shared_ptr<const BitmapIndex> index;
  CountMatrix exact;
  Distribution target;
};

/// Same planted shape as the batch-executor tests: true top-3 is
/// {0, 1, 2} under the uniform target.
SchedFixture MakeSchedFixture(int64_t rows_per_candidate, uint64_t seed,
                              int rows_per_block = 50) {
  SchedFixture f;
  std::vector<double> offsets = {0.0,  0.01, 0.02, 0.06, 0.09, 0.12,
                                 0.15, 0.17, 0.19, 0.21, 0.23, 0.25};
  auto dists = PlantedDistributions(12, 8, offsets);
  f.store = MakeExactStore(std::vector<int64_t>(12, rows_per_candidate),
                           dists, seed, rows_per_block);
  f.index = BitmapIndex::Build(*f.store, 0).value();
  f.exact = ComputeExactCounts(*f.store, 0, {1}).value();
  f.target = UniformDistribution(8);
  return f;
}

HistSimParams SchedParams() {
  HistSimParams p;
  p.k = 3;
  p.epsilon = 0.05;
  p.delta = 0.05;
  p.sigma = 0.0;
  p.stage1_samples = 2000;
  p.seed = 42;
  return p;
}

BoundQuery MakeQuery(const SchedFixture& f, uint64_t seed = 42) {
  BoundQuery q;
  q.store = f.store;
  q.z_index = f.index;
  q.z_attr = 0;
  q.x_attrs = {1};
  q.target = f.target;
  q.params = SchedParams();
  q.params.seed = seed;
  return q;
}

SchedulerOptions FastOptions() {
  SchedulerOptions o;
  o.batch.num_threads = 2;
  o.batch.chunk_blocks = 64;
  o.max_batch_queries = 8;
  o.max_queue_wait_seconds = 0.002;
  o.min_join_suffix_fraction = 0.0;
  return o;
}

void ExpectTop3(const SchedulerItem& item) {
  ASSERT_TRUE(item.status.ok()) << item.status.ToString();
  std::set<int> got(item.match.topk.begin(), item.match.topk.end());
  EXPECT_EQ(got, (std::set<int>{0, 1, 2}));
}

TEST(QuerySchedulerTest, CompletesQueriesAcrossStores) {
  SchedFixture f1 = MakeSchedFixture(8000, 1);
  SchedFixture f2 = MakeSchedFixture(8000, 2);
  QueryScheduler scheduler(FastOptions());

  std::vector<QueryHandle> handles;
  for (int i = 0; i < 3; ++i) {
    auto a = scheduler.Submit(MakeQuery(f1, 100 + i));
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    handles.push_back(std::move(*a));
    auto b = scheduler.Submit(MakeQuery(f2, 200 + i));
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    handles.push_back(std::move(*b));
  }
  for (auto& handle : handles) ExpectTop3(handle.Get());

  SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.pipelines, 2);
  EXPECT_EQ(stats.submitted, 6);
  EXPECT_EQ(stats.completed, 6);
  EXPECT_EQ(stats.rejected, 0);
  EXPECT_GE(stats.batches_launched, 2);
}

TEST(QuerySchedulerTest, TimeoutFlushLaunchesPartialBatch) {
  // Two queries against an 8-wide batch: only the queue-wait deadline
  // can launch them.
  SchedFixture f = MakeSchedFixture(4000, 3);
  QueryScheduler scheduler(FastOptions());
  auto a = scheduler.Submit(MakeQuery(f, 1));
  auto b = scheduler.Submit(MakeQuery(f, 2));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectTop3(a->Get());
  ExpectTop3(b->Get());
  SchedulerStats stats = scheduler.stats();
  EXPECT_GE(stats.timeout_flushes, 1);
  EXPECT_GE(stats.batches_launched, 1);
  EXPECT_EQ(stats.completed, 2);
}

TEST(QuerySchedulerTest, EmptyTimeoutNeverLaunchesABatch) {
  // The flush timer only starts once a query is pending: an idle
  // scheduler must not launch (or crash on) empty batches.
  SchedFixture f = MakeSchedFixture(2000, 4);
  SchedulerOptions options = FastOptions();
  options.max_queue_wait_seconds = 0.001;
  QueryScheduler scheduler(options);
  // Create the store's pipeline, drain it, then leave it idle.
  auto warm = scheduler.Submit(MakeQuery(f, 1));
  ASSERT_TRUE(warm.ok());
  ExpectTop3(warm->Get());
  const int64_t batches_after_warm = scheduler.stats().batches_launched;
  // Condition-driven negative check: watch the counter across many
  // multiples of the 1 ms flush window and fail fast on any spurious
  // launch, instead of asserting once after a blind sleep (which on a
  // loaded box can elapse before the flush timer ever runs).
  const auto watch_until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(30);
  while (std::chrono::steady_clock::now() < watch_until) {
    ASSERT_EQ(scheduler.stats().batches_launched, batches_after_warm);
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  // And the pipeline still accepts work afterwards.
  auto late = scheduler.Submit(MakeQuery(f, 2));
  ASSERT_TRUE(late.ok());
  ExpectTop3(late->Get());
}

TEST(QuerySchedulerTest, BackPressureRejectsWhenSaturated) {
  SchedFixture f = MakeSchedFixture(2000, 5);
  SchedulerOptions options = FastOptions();
  options.max_pending_per_store = 2;
  options.max_batch_queries = 8;
  // A long flush deadline keeps the first two queries pending while the
  // third arrives, so the rejection is deterministic.
  options.max_queue_wait_seconds = 5.0;
  QueryScheduler scheduler(options);

  auto a = scheduler.Submit(MakeQuery(f, 1));
  auto b = scheduler.Submit(MakeQuery(f, 2));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto c = scheduler.Submit(MakeQuery(f, 3));
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(scheduler.stats().rejected, 1);

  // Shutdown drains the pending queue; the accepted queries complete.
  scheduler.Shutdown();
  ExpectTop3(a->Get());
  ExpectTop3(b->Get());
  EXPECT_EQ(scheduler.stats().completed, 2);
}

TEST(QuerySchedulerTest, StreamingAdmissionJoinsARunningScan) {
  // A slow first batch (tight epsilon over a larger store) and a
  // follower submitted right after launch: the follower joins the
  // running scan mid-flight rather than waiting for the next batch.
  //
  // The race is real concurrency, so landing the follower inside the
  // batch's window is probabilistic — on a single-core host the
  // pipeline thread can run a whole batch before the submitting thread
  // is rescheduled. Each attempt is valid either way (results stay
  // correct); the test retries until one attempt demonstrates the
  // mid-flight join. Join *correctness* (suffix equivalence, bit-for-
  // bit determinism) is proven deterministically in
  // test_batch_executor.cc; this asserts the scheduler wires it up.
  SchedFixture f = MakeSchedFixture(30000, 6);
  bool joined = false;
  for (int attempt = 0; attempt < 40 && !joined; ++attempt) {
    SchedulerOptions options = FastOptions();
    options.max_queue_wait_seconds = 0.001;
    QueryScheduler scheduler(options);

    BoundQuery slow = MakeQuery(f, 1);
    slow.params.epsilon = 0.03;
    auto first = scheduler.Submit(std::move(slow));
    ASSERT_TRUE(first.ok());
    // Wait for the batch to launch (the counter ticks before the
    // executor is even created, well before its scan can finish).
    for (int spin = 0; scheduler.stats().batches_launched < 1 && spin < 10000;
         ++spin) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    ASSERT_GE(scheduler.stats().batches_launched, 1);

    auto follower = scheduler.Submit(MakeQuery(f, 2));
    ASSERT_TRUE(follower.ok());
    SchedulerItem follower_item = follower->Get();
    // Status only, not top-k: each attempt draws fresh samples, and the
    // top-k is a 1-delta probabilistic property — hard-asserting it
    // inside a retry loop multiplies the per-draw violation odds into a
    // test flake. Quality under joins is pinned (with the aggregate
    // tolerance the guarantee actually gives) in test_batch_executor.cc
    // and the stress suite.
    ASSERT_TRUE(follower_item.status.ok()) << follower_item.status.ToString();
    ASSERT_TRUE(first->Get().status.ok());

    SchedulerStats stats = scheduler.stats();
    EXPECT_EQ(stats.completed, 2);
    if (follower_item.joined_midflight) {
      joined = true;
      EXPECT_EQ(stats.joined_midflight, 1);
      EXPECT_EQ(stats.batches_launched, 1);
    } else {
      // Missed the window: the follower ran in its own fresh batch.
      EXPECT_EQ(stats.joined_midflight, 0);
      EXPECT_GE(stats.batches_launched, 2);
    }
  }
  EXPECT_TRUE(joined)
      << "follower never joined a running scan in 40 attempts";
}

TEST(QuerySchedulerTest, LateArrivalAfterScanEndGetsFreshBatch) {
  // Tiny store: each batch consumes every block, so a query submitted
  // after a batch retires can never join it — it must get a fresh batch
  // (the scheduler-level face of BatchExecutor's empty-suffix Join
  // rejection).
  SchedFixture f = MakeSchedFixture(200, 7, /*rows_per_block=*/25);
  SchedulerOptions options = FastOptions();
  QueryScheduler scheduler(options);

  auto a = scheduler.Submit(MakeQuery(f, 1));
  ASSERT_TRUE(a.ok());
  SchedulerItem first = a->Get();
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();

  auto b = scheduler.Submit(MakeQuery(f, 2));
  ASSERT_TRUE(b.ok());
  SchedulerItem second = b->Get();
  ASSERT_TRUE(second.status.ok()) << second.status.ToString();
  EXPECT_FALSE(second.joined_midflight);

  SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.batches_launched, 2);
  EXPECT_EQ(stats.joined_midflight, 0);
  EXPECT_EQ(stats.completed, 2);
}

TEST(QuerySchedulerTest, SuffixFractionPolicyRefusesLateJoins) {
  // With min_join_suffix_fraction = 1.0, a join is refused as soon as a
  // single block has been consumed (an untouched scan, fraction exactly
  // 1.0, is still joinable — it is simply a full run). A follower
  // arriving after the scan started therefore always lands in a fresh
  // batch: the latency/amortization policy knob in its extreme position.
  SchedFixture f = MakeSchedFixture(30000, 8);
  SchedulerOptions options = FastOptions();
  options.max_queue_wait_seconds = 0.001;
  options.min_join_suffix_fraction = 1.0;
  QueryScheduler scheduler(options);

  BoundQuery slow = MakeQuery(f, 1);
  slow.params.epsilon = 0.03;
  SubmitOptions track;
  track.track_progress = true;
  auto first = scheduler.Submit(std::move(slow), track);
  ASSERT_TRUE(first.ok());
  // Condition, not timing: a ProgressUpdate is published only at a
  // chunk boundary, i.e. after the scan has consumed at least one
  // block — from that moment the suffix fraction is < 1.0 for the rest
  // of the batch and a join must be refused. (A blind sleep here let
  // the follower slip in BEFORE the first chunk on a slow box, where
  // the fraction is still exactly 1.0 and joining is legal.) If the
  // batch already finished, the final update satisfies the wait and
  // the follower lands in a fresh batch — still not a mid-flight join.
  for (int spin = 0; !first->Progress().has_value() && spin < 10000; ++spin) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  ASSERT_TRUE(first->Progress().has_value())
      << "scan never reached a chunk boundary";
  auto follower = scheduler.Submit(MakeQuery(f, 2));
  ASSERT_TRUE(follower.ok());
  SchedulerItem follower_item = follower->Get();
  ExpectTop3(follower_item);
  ExpectTop3(first->Get());
  EXPECT_FALSE(follower_item.joined_midflight);
  EXPECT_EQ(scheduler.stats().joined_midflight, 0);
}

TEST(QuerySchedulerTest, SubmitValidation) {
  SchedFixture f = MakeSchedFixture(2000, 9);
  QueryScheduler scheduler(FastOptions());
  BoundQuery no_store = MakeQuery(f, 1);
  no_store.store = nullptr;
  EXPECT_EQ(scheduler.Submit(std::move(no_store)).status().code(),
            StatusCode::kInvalidArgument);
  scheduler.Shutdown();
  EXPECT_EQ(scheduler.Submit(MakeQuery(f, 2)).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(QuerySchedulerTest, PerQueryFailuresArriveThroughTheFuture) {
  SchedFixture f = MakeSchedFixture(4000, 10);
  QueryScheduler scheduler(FastOptions());
  BoundQuery bad = MakeQuery(f, 1);
  bad.target = UniformDistribution(5);  // |VX| is 8
  auto bad_future = scheduler.Submit(std::move(bad));
  ASSERT_TRUE(bad_future.ok());  // Submit accepts; execution reports
  auto good_future = scheduler.Submit(MakeQuery(f, 2));
  ASSERT_TRUE(good_future.ok());
  SchedulerItem bad_item = bad_future->Get();
  EXPECT_EQ(bad_item.status.code(), StatusCode::kInvalidArgument);
  ExpectTop3(good_future->Get());
}

TEST(QueryLifecycleTest, DeadlineExceededWhileQueued) {
  // A 5-second flush window would normally hold the lone query for the
  // whole wait; its 5 ms queue deadline must shed it long before that,
  // with DeadlineExceeded, and without launching any batch.
  SchedFixture f = MakeSchedFixture(2000, 20);
  SchedulerOptions options = FastOptions();
  options.max_queue_wait_seconds = 5.0;
  QueryScheduler scheduler(options);

  SubmitOptions submit;
  submit.deadline_seconds = 0.005;
  auto handle = scheduler.Submit(MakeQuery(f, 1), submit);
  ASSERT_TRUE(handle.ok());
  SchedulerItem item = handle->Get();
  EXPECT_EQ(item.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(item.queue_seconds, 0.005);

  SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.deadline_exceeded, 1);
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(stats.batches_launched, 0);
}

TEST(QueryLifecycleTest, MixedDeadlinesShedOnlyTheExpired) {
  // Two queries gathered together: the one with a generous deadline
  // runs, the one with a tiny deadline is shed at the same boundary.
  SchedFixture f = MakeSchedFixture(2000, 21);
  SchedulerOptions options = FastOptions();
  options.max_queue_wait_seconds = 0.05;
  QueryScheduler scheduler(options);

  SubmitOptions tight;
  tight.deadline_seconds = 0.002;
  SubmitOptions loose;
  loose.deadline_seconds = 60.0;
  auto doomed = scheduler.Submit(MakeQuery(f, 1), tight);
  auto fine = scheduler.Submit(MakeQuery(f, 2), loose);
  ASSERT_TRUE(doomed.ok());
  ASSERT_TRUE(fine.ok());
  EXPECT_EQ(doomed->Get().status.code(), StatusCode::kDeadlineExceeded);
  ExpectTop3(fine->Get());
  EXPECT_EQ(scheduler.stats().deadline_exceeded, 1);
}

TEST(QueryLifecycleTest, CancelWhileQueuedShedsBeforeLaunch) {
  // Cancel lands while the query is still queued (its batch is waiting
  // to fill): the flush boundary sheds it with Cancelled and never
  // runs it.
  SchedFixture f = MakeSchedFixture(2000, 22);
  SchedulerOptions options = FastOptions();
  options.max_queue_wait_seconds = 0.05;
  QueryScheduler scheduler(options);

  auto handle = scheduler.Submit(MakeQuery(f, 1));
  ASSERT_TRUE(handle.ok());
  handle->Cancel();
  SchedulerItem item = handle->Get();
  EXPECT_EQ(item.status.code(), StatusCode::kCancelled);
  SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.cancelled, 1);
  EXPECT_EQ(stats.evicted, 0);
  EXPECT_EQ(stats.batches_launched, 0);
}

TEST(QueryLifecycleTest, CancelDoorbellShedsLongBeforeFlushDeadline) {
  // The cancel doorbell: Cancel() on a queued query rings the
  // pipeline's cv, so the shed happens at the ring — not at the flush
  // deadline. With a 60-second queue window, a future that resolves in
  // milliseconds is only explainable by the doorbell (pre-doorbell, the
  // gather slept the full window before noticing the cancel flag).
  SchedFixture f = MakeSchedFixture(2000, 29);
  SchedulerOptions options = FastOptions();
  options.max_queue_wait_seconds = 60.0;
  QueryScheduler scheduler(options);

  auto handle = scheduler.Submit(MakeQuery(f, 1));
  ASSERT_TRUE(handle.ok());
  const auto start = std::chrono::steady_clock::now();
  handle->Cancel();
  SchedulerItem item = handle->Get();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(item.status.code(), StatusCode::kCancelled);
  // Generous bound for loaded CI machines; still 6x below the only
  // other wake-up the gather has.
  EXPECT_LT(seconds, 10.0);
  SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.cancelled, 1);
  EXPECT_EQ(stats.batches_launched, 0);
}

TEST(QueryLifecycleTest, CancelRunningQueryEvictsFromBatch) {
  // A slow scan (tight epsilon over a larger store) cancelled
  // mid-flight: the query is evicted at a chunk boundary and its future
  // resolves Cancelled well before the scan could have finished.
  SchedFixture f = MakeSchedFixture(30000, 23);
  SchedulerOptions options = FastOptions();
  options.max_queue_wait_seconds = 0.001;
  QueryScheduler scheduler(options);

  BoundQuery slow = MakeQuery(f, 1);
  slow.params.epsilon = 0.03;
  auto handle = scheduler.Submit(std::move(slow));
  ASSERT_TRUE(handle.ok());
  for (int spin = 0; scheduler.stats().batches_launched < 1 && spin < 10000;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  ASSERT_GE(scheduler.stats().batches_launched, 1);

  handle->Cancel();
  SchedulerItem item = handle->Get();
  // The cancel usually wins (the scan has 100+ chunks to go), but a
  // completion racing it is legal — then the result must be intact.
  if (item.status.code() == StatusCode::kCancelled) {
    EXPECT_EQ(scheduler.stats().evicted, 1);
    EXPECT_EQ(scheduler.stats().cancelled, 1);
  } else {
    ExpectTop3(item);
  }
}

TEST(QueryLifecycleTest, AbandonedHandleCancelsTheQuery) {
  // Destroying a handle without taking its result abandons the query;
  // the scheduler stops spending scan work on it (evicts it) instead of
  // running it to completion for nobody.
  SchedFixture f = MakeSchedFixture(30000, 24);
  SchedulerOptions options = FastOptions();
  options.max_queue_wait_seconds = 0.001;
  QueryScheduler scheduler(options);
  {
    BoundQuery slow = MakeQuery(f, 1);
    slow.params.epsilon = 0.03;
    auto handle = scheduler.Submit(std::move(slow));
    ASSERT_TRUE(handle.ok());
    for (int spin = 0; scheduler.stats().batches_launched < 1 && spin < 10000;
         ++spin) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }  // handle dropped here without Get(): abandoned
  // The pipeline observes the cancel at the next chunk boundary.
  for (int spin = 0; scheduler.stats().completed < 1 && spin < 10000; ++spin) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.completed, 1);
  // Cancelled unless the machine won the race (then it completed OK).
  EXPECT_LE(stats.cancelled, 1);
  EXPECT_EQ(stats.cancelled, stats.evicted);
}

TEST(QueryLifecycleTest, EagerDeliveryFulfillsBeforeBatchRetire) {
  // Two queries in one batch: a loose-epsilon query finishes its
  // machine long before a tight-epsilon one. With eager delivery the
  // fast query's future must be ready while the slow one still runs.
  SchedFixture f = MakeSchedFixture(30000, 25);
  SchedulerOptions options = FastOptions();
  options.max_batch_queries = 2;  // launch as soon as both are queued
  options.max_queue_wait_seconds = 5.0;
  QueryScheduler scheduler(options);

  BoundQuery slow = MakeQuery(f, 1);
  slow.params.epsilon = 0.03;
  BoundQuery fast = MakeQuery(f, 2);
  fast.params.epsilon = 0.2;
  auto slow_handle = scheduler.Submit(std::move(slow));
  auto fast_handle = scheduler.Submit(std::move(fast));
  ASSERT_TRUE(slow_handle.ok());
  ASSERT_TRUE(fast_handle.ok());

  ExpectTop3(fast_handle->Get());
  // The fast future resolved eagerly: at that moment the batch was
  // still in flight (the slow machine needs many more chunks), so the
  // eager counter must tick before the slow future resolves.
  const int64_t eager_at_fast = scheduler.stats().eager_delivered;
  ExpectTop3(slow_handle->Get());
  EXPECT_GE(eager_at_fast, 1);
  EXPECT_EQ(scheduler.stats().completed, 2);
}

TEST(QueryLifecycleTest, RetireTimeDeliveryStillWorks) {
  // eager_delivery=false restores batch-retire fulfillment: results are
  // identical, just later; the eager counter stays zero.
  SchedFixture f = MakeSchedFixture(4000, 26);
  SchedulerOptions options = FastOptions();
  options.eager_delivery = false;
  QueryScheduler scheduler(options);
  auto a = scheduler.Submit(MakeQuery(f, 1));
  auto b = scheduler.Submit(MakeQuery(f, 2));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectTop3(a->Get());
  ExpectTop3(b->Get());
  SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.eager_delivered, 0);
  EXPECT_EQ(stats.completed, 2);
}

TEST(QueryLifecycleTest, IdlePipelineIsReapedAndStoreRecovers) {
  // A pipeline idle past the timeout is reaped (driver joined, counter
  // ticks); the same store transparently gets a fresh pipeline on its
  // next Submit.
  SchedFixture f = MakeSchedFixture(2000, 27);
  SchedulerOptions options = FastOptions();
  options.idle_pipeline_timeout_seconds = 0.02;
  QueryScheduler scheduler(options);

  auto warm = scheduler.Submit(MakeQuery(f, 1));
  ASSERT_TRUE(warm.ok());
  ExpectTop3(warm->Get());
  EXPECT_EQ(scheduler.stats().pipelines, 1);

  for (int spin = 0; scheduler.stats().pipelines_reaped < 1 && spin < 10000;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  EXPECT_EQ(scheduler.stats().pipelines_reaped, 1);

  auto late = scheduler.Submit(MakeQuery(f, 2));
  ASSERT_TRUE(late.ok());
  ExpectTop3(late->Get());
  EXPECT_EQ(scheduler.stats().pipelines, 2);
}

TEST(QueryLifecycleTest, FreedStoreAddressReuseDoesNotAliasDeadPipeline) {
  // Pipelines are keyed by ColumnStore::id(), not the store pointer:
  // even if a new store lands at a freed store's exact address, it must
  // get its own pipeline, not the dead store's.
  SchedulerOptions options = FastOptions();
  options.idle_pipeline_timeout_seconds = 0.02;
  QueryScheduler scheduler(options);

  const ColumnStore* first_address = nullptr;
  {
    SchedFixture f = MakeSchedFixture(2000, 28);
    first_address = f.store.get();
    auto handle = scheduler.Submit(MakeQuery(f, 1));
    ASSERT_TRUE(handle.ok());
    ExpectTop3(handle->Get());
  }  // the store (and every query referencing it) is freed here
  for (int spin = 0; scheduler.stats().pipelines_reaped < 1 && spin < 10000;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  ASSERT_EQ(scheduler.stats().pipelines_reaped, 1);

  // A new store — same address or not, its id() differs, so it must
  // route to a fresh pipeline and complete normally.
  SchedFixture g = MakeSchedFixture(2000, 29);
  auto handle = scheduler.Submit(MakeQuery(g, 2));
  ASSERT_TRUE(handle.ok());
  ExpectTop3(handle->Get());
  EXPECT_EQ(scheduler.stats().pipelines, 2);
  // Not asserted (the allocator decides), but the scenario is real:
  // address reuse is why the key is the id.
  (void)first_address;
}

TEST(QueryLifecycleTest, ShutdownResolvesEveryAcceptedQuery) {
  // Queries parked behind a 5-second flush window when Shutdown hits:
  // the drain must resolve every accepted future exactly once, each in
  // a terminal state from {result, DeadlineExceeded, Cancelled,
  // Unavailable} — no hangs, no leaks.
  SchedFixture f = MakeSchedFixture(2000, 30);
  SchedulerOptions options = FastOptions();
  options.max_queue_wait_seconds = 5.0;
  options.max_batch_queries = 16;
  QueryScheduler scheduler(options);

  std::vector<QueryHandle> handles;
  for (int i = 0; i < 6; ++i) {
    auto handle = scheduler.Submit(MakeQuery(f, 100 + i));
    ASSERT_TRUE(handle.ok());
    handles.push_back(std::move(*handle));
  }
  handles[1].Cancel();
  SubmitOptions tight;
  tight.deadline_seconds = 1e-9;  // already expired at the drain
  auto doomed = scheduler.Submit(MakeQuery(f, 200), tight);
  ASSERT_TRUE(doomed.ok());
  handles.push_back(std::move(*doomed));

  scheduler.Shutdown();

  int results = 0, terminal = 0;
  for (auto& handle : handles) {
    SchedulerItem item = handle.Get();  // must not hang
    switch (item.status.code()) {
      case StatusCode::kOk:
        ++results;
        break;
      case StatusCode::kDeadlineExceeded:
      case StatusCode::kCancelled:
      case StatusCode::kUnavailable:
        ++terminal;
        break;
      default:
        FAIL() << "unexpected terminal status " << item.status.ToString();
    }
  }
  EXPECT_EQ(results + terminal, 7);
  EXPECT_GE(terminal, 2);  // the cancelled and the expired query
  SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.completed, 7);
  EXPECT_EQ(stats.submitted, 7);

  // And Submit after Shutdown still fails fast.
  EXPECT_EQ(scheduler.Submit(MakeQuery(f, 3)).status().code(),
            StatusCode::kFailedPrecondition);
}

// ------------------------------------------------- stage-1 cache
// Scheduler-level cache wiring: cold batches populate the per-store
// cache, later admissions (launch and join) are served warm, reaping a
// pipeline invalidates its store's entries. Warm-start *correctness*
// (bit-for-bit equivalence) is proven in test_batch_executor.cc; these
// assert the scheduler drives it.

TEST(Stage1CacheSchedulerTest, DisabledByDefault) {
  SchedFixture f = MakeSchedFixture(4000, 40);
  QueryScheduler scheduler(FastOptions());
  EXPECT_EQ(scheduler.stage1_cache(), nullptr);
  auto a = scheduler.Submit(MakeQuery(f, 1));
  ASSERT_TRUE(a.ok());
  SchedulerItem item = a->Get();
  ExpectTop3(item);
  EXPECT_FALSE(item.match.diag.stage1_warm);
  SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.stage1_lookups, 0);
  EXPECT_EQ(stats.stage1_hits, 0);
  EXPECT_EQ(stats.stage1_inserts, 0);
}

TEST(Stage1CacheSchedulerTest, SecondWaveIsServedWarm) {
  SchedFixture f = MakeSchedFixture(8000, 41);
  SchedulerOptions options = FastOptions();
  options.stage1_cache = true;
  QueryScheduler scheduler(options);
  ASSERT_NE(scheduler.stage1_cache(), nullptr);

  // Wave 1: cold. Stage-1 completions populate the cache.
  std::vector<QueryHandle> wave1;
  for (int i = 0; i < 2; ++i) {
    auto handle = scheduler.Submit(MakeQuery(f, 100 + i));
    ASSERT_TRUE(handle.ok());
    wave1.push_back(std::move(*handle));
  }
  for (auto& handle : wave1) {
    SchedulerItem item = handle.Get();
    ExpectTop3(item);
    EXPECT_FALSE(item.match.diag.stage1_warm);
  }
  SchedulerStats after_wave1 = scheduler.stats();
  EXPECT_GE(after_wave1.stage1_inserts, 1);
  EXPECT_EQ(after_wave1.stage1_hits, 0);

  // Wave 2: every query's template is warm now — all served from cache,
  // no stage-1 rows drawn from the scan.
  std::vector<QueryHandle> wave2;
  for (int i = 0; i < 2; ++i) {
    auto handle = scheduler.Submit(MakeQuery(f, 200 + i));
    ASSERT_TRUE(handle.ok());
    wave2.push_back(std::move(*handle));
  }
  for (auto& handle : wave2) {
    SchedulerItem item = handle.Get();
    ExpectTop3(item);
    EXPECT_TRUE(item.match.diag.stage1_warm);
  }
  SchedulerStats stats = scheduler.stats();
  EXPECT_GE(stats.stage1_hits, 2);
  EXPECT_EQ(stats.stage1_lookups, stats.stage1_hits + stats.stage1_misses);
}

TEST(Stage1CacheSchedulerTest, WarmTemplateLiftsSuffixRefusal) {
  // min_join_suffix_fraction = 1.0 refuses every cold join after the
  // first consumed block (SuffixFractionPolicyRefusesLateJoins). With a
  // warm template, stage 1 never needs the suffix, so the same follower
  // may join — counted in joins_enabled_by_cache. The join window is
  // probabilistic on a single-core host: bounded retries, like the
  // streaming-admission test.
  SchedFixture f = MakeSchedFixture(30000, 42);
  bool lifted = false;
  for (int attempt = 0; attempt < 40 && !lifted; ++attempt) {
    SchedulerOptions options = FastOptions();
    options.max_queue_wait_seconds = 0.001;
    options.min_join_suffix_fraction = 1.0;
    options.stage1_cache = true;
    QueryScheduler scheduler(options);

    // Prime the template: one cold query end to end.
    auto prime = scheduler.Submit(MakeQuery(f, 1));
    ASSERT_TRUE(prime.ok());
    ASSERT_TRUE(prime->Get().status.ok());
    ASSERT_GE(scheduler.stats().stage1_inserts, 1);

    BoundQuery slow = MakeQuery(f, 2);
    slow.params.epsilon = 0.03;
    auto first = scheduler.Submit(std::move(slow));
    ASSERT_TRUE(first.ok());
    for (int spin = 0; scheduler.stats().batches_launched < 2 && spin < 10000;
         ++spin) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }

    auto follower = scheduler.Submit(MakeQuery(f, 3));
    ASSERT_TRUE(follower.ok());
    SchedulerItem follower_item = follower->Get();
    // Status only inside the retry loop — top-k is a 1-delta property
    // per draw; its quality under warm starts is pinned with the proper
    // tolerance in test_batch_executor.cc.
    ASSERT_TRUE(follower_item.status.ok()) << follower_item.status.ToString();
    ASSERT_TRUE(first->Get().status.ok());

    SchedulerStats stats = scheduler.stats();
    // A join that landed before the scan consumed its first block has
    // suffix fraction exactly 1.0 and needed no lift — keep retrying
    // until a join lands mid-scan, where only the cache admits it.
    if (follower_item.joined_midflight && stats.joins_enabled_by_cache >= 1) {
      lifted = true;
      EXPECT_TRUE(follower_item.match.diag.stage1_warm);
      EXPECT_LE(stats.joins_enabled_by_cache, stats.joined_midflight);
    }
  }
  EXPECT_TRUE(lifted)
      << "no cache-enabled join landed in 40 attempts";
}

TEST(Stage1CacheSchedulerTest, RefusedThenJoinedQueryIsNotAFallback) {
  // join_fallbacks counts at the fresh-batch launch, not at the
  // refusal: a cold follower refused by the suffix policy at early
  // chunk boundaries can still join once the running batch's own
  // stage-1 completion publishes its template, and must then leave the
  // counter untouched — the fallback the refusal predicted never
  // happened. The join window is probabilistic on a single-core host:
  // bounded retries, like the streaming-admission test.
  SchedFixture f = MakeSchedFixture(30000, 44);
  bool joined = false;
  for (int attempt = 0; attempt < 40 && !joined; ++attempt) {
    SchedulerOptions options = FastOptions();
    options.max_queue_wait_seconds = 0.001;
    options.min_join_suffix_fraction = 1.0;
    options.stage1_cache = true;
    QueryScheduler scheduler(options);

    BoundQuery slow = MakeQuery(f, 1);
    slow.params.epsilon = 0.03;
    auto first = scheduler.Submit(std::move(slow));
    ASSERT_TRUE(first.ok());
    // Condition-driven sequencing, not a wall-clock guess: a suffix
    // refusal can only be upgraded AFTER the running batch publishes
    // its stage-1 template, so wait for the publish itself
    // (stage1_inserts) and only then submit the follower — its very
    // first admission consult finds the warm template while the batch
    // is still mid-scan. Void the attempt if the batch retired before
    // (or without) publishing; the follower would prove nothing.
    for (int spin = 0;
         scheduler.stats().stage1_inserts < 1 &&
         scheduler.stats().completed < 1 && spin < 10000;
         ++spin) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    if (scheduler.stats().stage1_inserts < 1 ||
        scheduler.stats().completed >= 1) {
      ASSERT_TRUE(first->Get().status.ok());
      continue;
    }
    auto follower = scheduler.Submit(MakeQuery(f, 2));
    ASSERT_TRUE(follower.ok());
    SchedulerItem follower_item = follower->Get();
    ASSERT_TRUE(follower_item.status.ok()) << follower_item.status.ToString();
    ASSERT_TRUE(first->Get().status.ok());

    SchedulerStats stats = scheduler.stats();
    if (follower_item.joined_midflight) {
      joined = true;
      // The follower never launched in a fresh batch, and the first
      // query faced an idle pipeline (no running batch to refuse it):
      // nothing may count as a fallback, however many chunk boundaries
      // refused the follower before the publish upgraded it.
      EXPECT_EQ(stats.join_fallbacks, 0);
    } else {
      // The follower really fell back: one fresh-batch launch of an
      // (at most once-)refused query. Counted at most once, never per
      // re-refusing chunk boundary — and zero when the first batch
      // retired before any consult could refuse.
      EXPECT_EQ(stats.batches_launched, 2);
      EXPECT_LE(stats.join_fallbacks, 1);
    }
  }
  EXPECT_TRUE(joined) << "no mid-flight join landed in 40 attempts";
}

TEST(Stage1CacheSchedulerTest, WarmWaveResumesTheDonorsScan) {
  SchedFixture f = MakeSchedFixture(8000, 45);
  SchedulerOptions options = FastOptions();
  options.stage1_cache = true;
  QueryScheduler scheduler(options);

  // Donor: one cold query end to end. Its published snapshot records
  // the scan prefix the donor consumed.
  auto donor = scheduler.Submit(MakeQuery(f, 1));
  ASSERT_TRUE(donor.ok());
  ExpectTop3(donor->Get());
  std::shared_ptr<const Stage1Snapshot> snap = scheduler.stage1_cache()->Lookup(
      f.store->id(), kWholeStorePartition, 0, {1}, 1);
  ASSERT_NE(snap, nullptr);
  const int64_t num_blocks = f.store->num_blocks();
  const int64_t prefix_blocks = snap->scan.consumed.Popcount();
  ASSERT_GT(prefix_blocks, 0);
  ASSERT_LT(prefix_blocks, num_blocks);

  // The donor's item can be delivered eagerly at a chunk boundary,
  // before its batch retires and adds its blocks to the counter — wait
  // for that accounting so the baseline covers all donor I/O.
  for (int spin = 0; scheduler.stats().batch_blocks_read == 0 && spin < 10000;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  SchedulerStats before = scheduler.stats();
  ASSERT_GE(before.batch_blocks_read, prefix_blocks);
  // Warm wave: every query is served from the same snapshot, so each
  // fresh batch resumes the donor's scan instead of starting its own.
  std::vector<QueryHandle> wave;
  for (int i = 0; i < 3; ++i) {
    auto handle = scheduler.Submit(MakeQuery(f, 10 + i));
    ASSERT_TRUE(handle.ok());
    wave.push_back(std::move(*handle));
  }
  for (auto& handle : wave) {
    SchedulerItem item = handle.Get();
    ExpectTop3(item);
    EXPECT_TRUE(item.match.diag.stage1_warm);
  }

  SchedulerStats after = scheduler.stats();
  const int64_t batches = after.batches_launched - before.batches_launched;
  ASSERT_GE(batches, 1);
  // The wave may flush as one batch or several; each is all-warm from
  // the one snapshot, so each resumes.
  EXPECT_EQ(after.warm_batches_resumed - before.warm_batches_resumed, batches);
  // Zero prefix blocks re-read: a resumed batch can touch at most the
  // suffix the donor left unconsumed.
  EXPECT_LE(after.batch_blocks_read - before.batch_blocks_read,
            batches * (num_blocks - prefix_blocks));
}

TEST(Stage1CacheSchedulerTest, ReapInvalidatesTheStoresEntries) {
  SchedFixture f = MakeSchedFixture(4000, 43);
  SchedulerOptions options = FastOptions();
  options.stage1_cache = true;
  options.idle_pipeline_timeout_seconds = 0.02;
  QueryScheduler scheduler(options);

  auto a = scheduler.Submit(MakeQuery(f, 1));
  ASSERT_TRUE(a.ok());
  ExpectTop3(a->Get());
  ASSERT_GE(scheduler.stage1_cache()->size(), 1);

  // Bounded poll: the janitor reaps the idle pipeline, then drops the
  // store's cache entries.
  for (int spin = 0;
       scheduler.stats().stage1_store_invalidations < 1 && spin < 20000;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  SchedulerStats stats = scheduler.stats();
  EXPECT_GE(stats.pipelines_reaped, 1);
  EXPECT_GE(stats.stage1_store_invalidations, 1);
  EXPECT_EQ(scheduler.stage1_cache()->size(), 0);

  // The store recovers transparently — and re-warms on its next batch.
  auto b = scheduler.Submit(MakeQuery(f, 2));
  ASSERT_TRUE(b.ok());
  ExpectTop3(b->Get());
  EXPECT_GE(scheduler.stats().stage1_inserts, 2);
}

TEST(ShardedSchedulerTest, PartitionedQueriesCompleteThroughTheScheduler) {
  SchedFixture f = MakeSchedFixture(8000, 50);
  auto partitions = PartitionedStore::Split(f.store, 4).value();
  SchedulerOptions options = FastOptions();
  // Under full-suite parallel load the submitting thread can be
  // descheduled between Submits; widen the gather window so all three
  // partitioned queries deterministically land in one sharded batch.
  options.max_queue_wait_seconds = 0.05;
  QueryScheduler scheduler(options);

  std::vector<QueryHandle> handles;
  for (int i = 0; i < 3; ++i) {
    BoundQuery q = MakeQuery(f, 300 + i);
    q.partitions = partitions;
    auto handle = scheduler.Submit(std::move(q));
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    handles.push_back(std::move(*handle));
  }
  // A plain query over the same store routes to its OWN pipeline: the
  // partition set carries its own identity token, and mixing the two
  // forms in one batch would be unlaunchable.
  auto plain = scheduler.Submit(MakeQuery(f, 400));
  ASSERT_TRUE(plain.ok());

  for (auto& handle : handles) ExpectTop3(handle.Get());
  ExpectTop3(plain->Get());

  // Get() delivers eagerly, racing the scheduler's own post-batch
  // accounting; poll the counters to quiescence instead of reading
  // them mid-update.
  for (int spin = 0;
       (scheduler.stats().completed < 4 ||
        scheduler.stats().batch_blocks_read < 1) &&
       spin < 10000;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.pipelines, 2);
  EXPECT_GE(stats.sharded_batches, 1);
  EXPECT_EQ(stats.completed, 4);
  EXPECT_GE(stats.batch_blocks_read, 1);
}

TEST(ShardedSchedulerTest, SubmitRejectsAForeignPartitionSet) {
  SchedFixture f = MakeSchedFixture(2000, 51);
  SchedFixture other = MakeSchedFixture(2000, 52);
  QueryScheduler scheduler(FastOptions());
  BoundQuery q = MakeQuery(f, 1);
  q.partitions = PartitionedStore::Split(other.store, 2).value();
  EXPECT_EQ(scheduler.Submit(std::move(q)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ShardedSchedulerTest, SecondPartitionedWaveIsServedWarmPerPartition) {
  SchedFixture f = MakeSchedFixture(2000, 53);  // 480 blocks
  auto partitions = PartitionedStore::Split(f.store, 2).value();
  SchedulerOptions options = FastOptions();
  options.stage1_cache = true;
  QueryScheduler scheduler(options);

  // Wave 1: cold exporter. A stage-1 demand of 15000 rows (300 blocks)
  // exceeds either partition's 240, so the scan provably crosses both
  // partitions wherever its random start lands — each partition's
  // snapshot is published with margin over wave 2's per-partition
  // demand.
  BoundQuery cold = MakeQuery(f, 500);
  cold.partitions = partitions;
  cold.params.stage1_samples = 15000;
  auto first = scheduler.Submit(std::move(cold));
  ASSERT_TRUE(first.ok());
  ExpectTop3(first->Get());
  ASSERT_GE(scheduler.stage1_cache()->size(), 2);

  // Wave 2 at the default demand (2000 rows, 1000 per partition):
  // every partition's lookup hits, so the merged per-partition prior
  // serves stage 1 whole.
  std::vector<QueryHandle> wave2;
  for (int i = 0; i < 2; ++i) {
    BoundQuery q = MakeQuery(f, 600 + i);
    q.partitions = partitions;
    auto handle = scheduler.Submit(std::move(q));
    ASSERT_TRUE(handle.ok());
    wave2.push_back(std::move(*handle));
  }
  for (auto& handle : wave2) {
    SchedulerItem item = handle.Get();
    ExpectTop3(item);
    EXPECT_TRUE(item.match.diag.stage1_warm);
  }
  SchedulerStats stats = scheduler.stats();
  EXPECT_GE(stats.sharded_batches, 2);
  EXPECT_GE(stats.stage1_hits, 4);  // 2 warm queries x 2 partitions
}

}  // namespace
}  // namespace fastmatch
