#include "engine/measure_biased.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/verify.h"
#include "util/random.h"

namespace fastmatch {
namespace {

/// Store with Z(2), X(3), Y(8): Y is the measure attribute whose
/// dictionary code doubles as its magnitude.
std::shared_ptr<ColumnStore> MeasureStore(uint64_t seed) {
  std::vector<Value> z, x, y;
  Rng rng(seed);
  for (int i = 0; i < 30000; ++i) {
    const Value zi = static_cast<Value>(rng.Uniform(2));
    const Value xi = static_cast<Value>(rng.Uniform(3));
    // Y depends on (z, x) so SUM histograms differ from COUNT histograms.
    const Value yi = static_cast<Value>(1 + (zi == 0 ? xi * 2 : (2 - xi)) +
                                        rng.Uniform(2));
    z.push_back(zi);
    x.push_back(xi);
    y.push_back(yi);
  }
  return ColumnStore::FromColumns(Schema({{"Z", 2}, {"X", 3}, {"Y", 8}}),
                                  {std::move(z), std::move(x), std::move(y)})
      .value();
}

/// Exact SUM(Y) GROUP BY X per candidate.
std::vector<Distribution> ExactSumHistograms(const ColumnStore& store) {
  std::vector<std::vector<double>> sums(2, std::vector<double>(3, 0));
  for (RowId r = 0; r < store.num_rows(); ++r) {
    sums[store.column(0).Get(r)][store.column(1).Get(r)] +=
        static_cast<double>(store.column(2).Get(r));
  }
  return {Normalize(sums[0]), Normalize(sums[1])};
}

TEST(MeasureBiasedTest, SampleHasRequestedSize) {
  auto store = MeasureStore(1);
  auto sample = BuildMeasureBiasedSample(*store, 2, 5000, 7).value();
  EXPECT_EQ(sample->num_rows(), 5000);
  EXPECT_EQ(sample->schema().num_attributes(), 3);
}

TEST(MeasureBiasedTest, CountOnSampleEstimatesSumHistogram) {
  // The core Appendix A.1.1 claim: COUNT(*) histograms on the biased
  // sample converge to the SUM(Y) histograms of the original.
  auto store = MeasureStore(2);
  auto truth = ExactSumHistograms(*store);
  auto sample = BuildMeasureBiasedSample(*store, 2, 60000, 11).value();
  auto counts = ComputeExactCounts(*sample, 0, {1}).value();
  for (int zi = 0; zi < 2; ++zi) {
    const Distribution est = counts.NormalizedRow(zi);
    const double err = L1Distance(est, truth[static_cast<size_t>(zi)]);
    EXPECT_LT(err, 0.03) << "candidate " << zi;
  }
}

TEST(MeasureBiasedTest, ZeroMeasureRowsNeverSampled) {
  std::vector<Value> z = {0, 0, 1, 1}, x = {0, 1, 0, 1}, y = {0, 5, 0, 5};
  auto store = ColumnStore::FromColumns(Schema({{"Z", 2}, {"X", 3}, {"Y", 8}}),
                                        {std::move(z), std::move(x),
                                         std::move(y)})
                   .value();
  auto sample = BuildMeasureBiasedSample(*store, 2, 1000, 13).value();
  // Only rows with Y = 5 (x = 1) can appear.
  for (RowId r = 0; r < sample->num_rows(); ++r) {
    EXPECT_EQ(sample->column(1).Get(r), 1u);
    EXPECT_EQ(sample->column(2).Get(r), 5u);
  }
}

TEST(MeasureBiasedTest, Validation) {
  auto store = MeasureStore(3);
  EXPECT_FALSE(BuildMeasureBiasedSample(*store, -1, 100, 1).ok());
  EXPECT_FALSE(BuildMeasureBiasedSample(*store, 9, 100, 1).ok());
  EXPECT_FALSE(BuildMeasureBiasedSample(*store, 2, 0, 1).ok());

  // All-zero measure attribute.
  std::vector<Value> z = {0, 1}, x = {0, 1}, y = {0, 0};
  auto zero = ColumnStore::FromColumns(Schema({{"Z", 2}, {"X", 3}, {"Y", 8}}),
                                       {std::move(z), std::move(x),
                                        std::move(y)})
                  .value();
  EXPECT_EQ(BuildMeasureBiasedSample(*zero, 2, 100, 1).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(MeasureBiasedTest, DeterministicUnderSeed) {
  auto store = MeasureStore(4);
  auto s1 = BuildMeasureBiasedSample(*store, 2, 1000, 99).value();
  auto s2 = BuildMeasureBiasedSample(*store, 2, 1000, 99).value();
  for (RowId r = 0; r < 1000; ++r) {
    EXPECT_EQ(s1->column(0).Get(r), s2->column(0).Get(r));
    EXPECT_EQ(s1->column(1).Get(r), s2->column(1).Get(r));
  }
}

}  // namespace
}  // namespace fastmatch
