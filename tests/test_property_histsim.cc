// Parameterized end-to-end property sweeps of HistSim: for a grid of
// (epsilon, k, metric), the algorithm must terminate, return k winners,
// and satisfy both guarantees against exact ground truth.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/histsim.h"
#include "core/row_sampler.h"
#include "core/verify.h"
#include "test_helpers.h"

namespace fastmatch {
namespace {

using testing_util::MakeExactStore;
using testing_util::PlantedDistributions;

struct SweepCase {
  double epsilon;
  int k;
  Metric metric;
};

class HistSimSweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  // 14 candidates: a tight cluster of 6 near the target, then strangers
  // with generous gaps, so every k in [1, 6] has a clear answer and
  // larger k crosses into the stranger band.
  static constexpr int kVx = 8;

  void SetUp() override {
    offsets_ = {0.0,  0.005, 0.01, 0.015, 0.02, 0.025, 0.18,
                0.21, 0.24,  0.27, 0.3,   0.33, 0.36,  0.39};
    auto dists = PlantedDistributions(14, kVx, offsets_);
    store_ = MakeExactStore(std::vector<int64_t>(14, 25000), dists, 99, 50);
    exact_ = ComputeExactCounts(*store_, 0, {1}).value();
    target_ = UniformDistribution(kVx);
  }

  std::vector<double> offsets_;
  std::shared_ptr<ColumnStore> store_;
  CountMatrix exact_;
  Distribution target_;
};

TEST_P(HistSimSweep, TerminatesAndSatisfiesGuarantees) {
  const SweepCase c = GetParam();
  HistSimParams p;
  p.k = c.k;
  p.epsilon = c.epsilon;
  p.metric = c.metric;
  p.delta = 0.05;
  p.sigma = 0;
  p.stage1_samples = 5000;

  GroundTruth truth = ComputeGroundTruth(exact_, target_, c.metric, 0, c.k);

  int violations = 0;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    auto sampler = RowSampler::Create(store_, 0, {1}, seed).value();
    HistSim histsim(p, target_);
    auto result = histsim.Run(sampler.get());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->topk.size(), static_cast<size_t>(c.k));
    // Output sorted by estimated distance.
    for (size_t i = 1; i < result->topk_distances.size(); ++i) {
      EXPECT_LE(result->topk_distances[i - 1], result->topk_distances[i]);
    }
    auto check = CheckGuarantees(*result, exact_, truth, target_, p);
    violations += !check.separation_ok || !check.reconstruction_ok;
  }
  // 3 runs at delta = 0.05 each; the bound is loose, tolerate at most 1.
  EXPECT_LE(violations, 1);
}

TEST_P(HistSimSweep, WinnersRespectPlantedCluster) {
  const SweepCase c = GetParam();
  HistSimParams p;
  p.k = c.k;
  p.epsilon = c.epsilon;
  p.metric = c.metric;
  p.delta = 0.05;
  p.sigma = 0;
  p.stage1_samples = 5000;
  auto sampler = RowSampler::Create(store_, 0, {1}, 7).value();
  HistSim histsim(p, target_);
  auto result = histsim.Run(sampler.get());
  ASSERT_TRUE(result.ok());
  // The planted cluster (ids 0..5) sits far closer to the target than
  // the stranger band — the gap exceeds every epsilon in the grid. So:
  // when k <= 6 every winner must come from the cluster, and when k
  // crosses the cluster boundary (k > 6) the whole cluster must be among
  // the winners (the extra slots necessarily go to strangers, whose
  // relative order within their band is not pinned down by the gap).
  std::set<int> winners(result->topk.begin(), result->topk.end());
  if (c.k <= 6) {
    for (int i : result->topk) {
      EXPECT_LT(i, 6);
    }
  } else {
    for (int i = 0; i < 6; ++i) {
      EXPECT_TRUE(winners.count(i))
          << "cluster member " << i << " missing from top-" << c.k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HistSimSweep,
    ::testing::Values(SweepCase{0.03, 1, Metric::kL1},
                      SweepCase{0.03, 3, Metric::kL1},
                      SweepCase{0.03, 6, Metric::kL1},
                      SweepCase{0.06, 3, Metric::kL1},
                      SweepCase{0.06, 8, Metric::kL1},
                      SweepCase{0.12, 3, Metric::kL1},
                      SweepCase{0.12, 12, Metric::kL1},
                      SweepCase{0.06, 3, Metric::kL2},
                      SweepCase{0.12, 6, Metric::kL2}),
    [](const auto& info) {
      return "eps" +
             std::to_string(static_cast<int>(info.param.epsilon * 100)) +
             "_k" + std::to_string(info.param.k) + "_" +
             std::string(MetricName(info.param.metric));
    });

// ---------------------------------------------------------- sigma sweep

class SigmaSweep : public ::testing::TestWithParam<double> {};

TEST_P(SigmaSweep, PrunedCandidatesAreActuallyRare) {
  const double sigma = GetParam();
  // Mixed selectivities spanning the sigma grid.
  std::vector<int64_t> counts = {60,    600,   6000,  20000,
                                 20000, 20000, 20000, 20000};
  auto dists = PlantedDistributions(
      8, 4, {0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35});
  auto store = MakeExactStore(counts, dists, 11, 50);
  const int64_t n = store->num_rows();

  HistSimParams p;
  p.k = 2;
  p.epsilon = 0.08;
  p.delta = 0.05;
  p.sigma = sigma;
  p.stage1_samples = 20000;
  auto sampler = RowSampler::Create(store, 0, {1}, 13).value();
  HistSim histsim(p, UniformDistribution(4));
  auto result = histsim.Run(sampler.get());
  ASSERT_TRUE(result.ok());
  for (int i = 0; i < 8; ++i) {
    if (result->pruned[i]) {
      // Guarantee: pruned implies N_i/N < sigma (w.h.p.).
      EXPECT_LT(static_cast<double>(counts[static_cast<size_t>(i)]),
                sigma * static_cast<double>(n))
          << "candidate " << i << " wrongly pruned at sigma=" << sigma;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, SigmaSweep,
                         ::testing::Values(0.0, 0.0005, 0.002, 0.01, 0.05),
                         [](const auto& info) {
                           return "s" + std::to_string(static_cast<int>(
                                            info.param * 100000));
                         });

}  // namespace
}  // namespace fastmatch
