#include "core/verify.h"

#include <gtest/gtest.h>

#include "core/distance.h"
#include "test_helpers.h"

namespace fastmatch {
namespace {

using testing_util::MakeExactStore;
using testing_util::PlantedDistributions;

TEST(ExactCountsTest, MatchesConstruction) {
  auto dists = PlantedDistributions(3, 4, {0.0, 0.1, 0.2});
  auto store = MakeExactStore({400, 800, 1200}, dists, 1);
  auto exact = ComputeExactCounts(*store, 0, {1}).value();
  EXPECT_EQ(exact.RowTotal(0), 400);
  EXPECT_EQ(exact.RowTotal(1), 800);
  EXPECT_EQ(exact.RowTotal(2), 1200);
  // Candidate 0 is exactly uniform over 4 bins.
  for (int g = 0; g < 4; ++g) EXPECT_EQ(exact.At(0, g), 100);
  // Candidate 1 has offset 0.1: bin 1 holds 0.25 + 0.1 + 0.1/3 of the
  // mass, the rest is spread evenly; largest-remainder rounding keeps
  // every bin within 1 of its ideal count.
  for (int g = 0; g < 4; ++g) {
    EXPECT_NEAR(static_cast<double>(exact.At(1, g)), dists[1][g] * 800, 1.0);
  }
  EXPECT_NEAR(L1Distance(exact.NormalizedRow(1), UniformDistribution(4)),
              0.2, 2e-3);
}

TEST(ExactCountsTest, ValidatesAttributes) {
  auto store = MakeExactStore({100}, PlantedDistributions(1, 4, {0.0}), 2);
  EXPECT_FALSE(ComputeExactCounts(*store, -1, {1}).ok());
  EXPECT_FALSE(ComputeExactCounts(*store, 0, {}).ok());
  EXPECT_FALSE(ComputeExactCounts(*store, 0, {5}).ok());
}

TEST(GroundTruthTest, RanksBySelectivityAndDistance) {
  auto dists = PlantedDistributions(5, 4, {0.0, 0.05, 0.1, 0.15, 0.2});
  auto store = MakeExactStore({100, 10000, 10000, 10000, 10000}, dists, 3);
  auto exact = ComputeExactCounts(*store, 0, {1}).value();
  Distribution target = UniformDistribution(4);

  // Without sigma, candidate 0 (distance 0) leads.
  GroundTruth t0 = ComputeGroundTruth(exact, target, Metric::kL1, 0.0, 2);
  EXPECT_EQ(t0.topk, (std::vector<int>{0, 1}));

  // With sigma = 0.01 (N = 40100, threshold 401), candidate 0 is
  // ineligible and drops out.
  GroundTruth t1 = ComputeGroundTruth(exact, target, Metric::kL1, 0.01, 2);
  EXPECT_FALSE(t1.eligible[0]);
  EXPECT_EQ(t1.topk, (std::vector<int>{1, 2}));
}

TEST(GroundTruthTest, DistancesMatchPlantedOffsets) {
  auto dists = PlantedDistributions(3, 4, {0.0, 0.05, 0.1});
  auto store = MakeExactStore({10000, 10000, 10000}, dists, 4);
  auto exact = ComputeExactCounts(*store, 0, {1}).value();
  GroundTruth t = ComputeGroundTruth(exact, UniformDistribution(4),
                                     Metric::kL1, 0.0, 2);
  EXPECT_NEAR(t.distances[0], 0.0, 1e-3);
  EXPECT_NEAR(t.distances[1], 0.1, 1e-3);  // l1 = 2 * offset
  EXPECT_NEAR(t.distances[2], 0.2, 1e-3);
}

TEST(CheckGuaranteesTest, PerfectAnswerPasses) {
  auto dists = PlantedDistributions(4, 4, {0.0, 0.1, 0.2, 0.3});
  auto store = MakeExactStore({5000, 5000, 5000, 5000}, dists, 5);
  auto exact = ComputeExactCounts(*store, 0, {1}).value();
  Distribution target = UniformDistribution(4);
  HistSimParams params;
  params.k = 2;
  params.epsilon = 0.05;
  params.sigma = 0;
  GroundTruth truth = ComputeGroundTruth(exact, target, Metric::kL1, 0, 2);

  MatchResult result;
  result.topk = truth.topk;
  result.counts = exact;  // exact histograms
  auto check = CheckGuarantees(result, exact, truth, target, params);
  EXPECT_TRUE(check.separation_ok);
  EXPECT_TRUE(check.reconstruction_ok);
  EXPECT_NEAR(check.delta_d, 0.0, 1e-12);
}

TEST(CheckGuaranteesTest, DetectsSeparationViolation) {
  // Output candidate 3 (distance 0.6) while candidate 0 (distance 0) is
  // eligible and excluded: violates Guarantee 1 for eps = 0.05.
  auto dists = PlantedDistributions(4, 4, {0.0, 0.1, 0.2, 0.3});
  auto store = MakeExactStore({5000, 5000, 5000, 5000}, dists, 6);
  auto exact = ComputeExactCounts(*store, 0, {1}).value();
  Distribution target = UniformDistribution(4);
  HistSimParams params;
  params.k = 2;
  params.epsilon = 0.05;
  params.sigma = 0;
  GroundTruth truth = ComputeGroundTruth(exact, target, Metric::kL1, 0, 2);

  MatchResult result;
  result.topk = {2, 3};  // wrong: true top-2 is {0, 1}
  result.counts = exact;
  auto check = CheckGuarantees(result, exact, truth, target, params);
  EXPECT_FALSE(check.separation_ok);
  EXPECT_NEAR(check.worst_separation, 0.6, 1e-3);
}

TEST(CheckGuaranteesTest, SeparationToleratesNearTies) {
  // Candidates 0 and 1 are 0.02 apart (< eps): returning either is fine.
  auto dists = PlantedDistributions(3, 4, {0.0, 0.01, 0.3});
  auto store = MakeExactStore({5000, 5000, 5000}, dists, 7);
  auto exact = ComputeExactCounts(*store, 0, {1}).value();
  Distribution target = UniformDistribution(4);
  HistSimParams params;
  params.k = 1;
  params.epsilon = 0.05;
  params.sigma = 0;
  GroundTruth truth = ComputeGroundTruth(exact, target, Metric::kL1, 0, 1);
  MatchResult result;
  result.topk = {1};  // not the true best (0), but within eps
  result.counts = exact;
  auto check = CheckGuarantees(result, exact, truth, target, params);
  EXPECT_TRUE(check.separation_ok);
}

TEST(CheckGuaranteesTest, DetectsReconstructionViolation) {
  auto dists = PlantedDistributions(2, 4, {0.0, 0.1});
  auto store = MakeExactStore({5000, 5000}, dists, 8);
  auto exact = ComputeExactCounts(*store, 0, {1}).value();
  Distribution target = UniformDistribution(4);
  HistSimParams params;
  params.k = 1;
  params.epsilon = 0.05;
  params.sigma = 0;
  GroundTruth truth = ComputeGroundTruth(exact, target, Metric::kL1, 0, 1);

  MatchResult result;
  result.topk = {0};
  // Badly skewed estimate for candidate 0.
  result.counts = CountMatrix(2, 4);
  for (int i = 0; i < 100; ++i) result.counts.Add(0, 0);
  auto check = CheckGuarantees(result, exact, truth, target, params);
  EXPECT_FALSE(check.reconstruction_ok);
  EXPECT_GT(check.worst_reconstruction, 1.0);
}

TEST(CheckGuaranteesTest, DeltaDUsesEstimatedHistograms) {
  // Estimated counts slightly off: delta_d reflects estimated-vs-true
  // distance sums and can be negative (paper Section 5.3).
  auto dists = PlantedDistributions(2, 4, {0.05, 0.3});
  auto store = MakeExactStore({5000, 5000}, dists, 9);
  auto exact = ComputeExactCounts(*store, 0, {1}).value();
  Distribution target = UniformDistribution(4);
  HistSimParams params;
  params.k = 1;
  params.epsilon = 0.05;
  params.sigma = 0;
  GroundTruth truth = ComputeGroundTruth(exact, target, Metric::kL1, 0, 1);

  MatchResult result;
  result.topk = {0};
  // Estimate for candidate 0 exactly uniform -> estimated distance 0 <
  // true distance 0.1 -> delta_d = -1.
  result.counts = CountMatrix(2, 4);
  for (int g = 0; g < 4; ++g) result.counts.Add(0, g);
  auto check = CheckGuarantees(result, exact, truth, target, params);
  EXPECT_NEAR(check.delta_d, -1.0, 1e-9);
}

}  // namespace
}  // namespace fastmatch
