#include "index/bitmap_index.h"

#include <gtest/gtest.h>

#include "test_helpers.h"
#include "util/random.h"

namespace fastmatch {
namespace {

std::shared_ptr<ColumnStore> SmallStore(int rows_per_block = 10) {
  // Z in [0, 6), X in [0, 4): enough values to exercise bitmap structure.
  std::vector<Value> z, x;
  Rng rng(42);
  for (int i = 0; i < 237; ++i) {
    z.push_back(static_cast<Value>(rng.Uniform(6)));
    x.push_back(static_cast<Value>(rng.Uniform(4)));
  }
  StorageOptions options;
  options.rows_per_block_override = rows_per_block;
  auto store = ColumnStore::FromColumns(Schema({{"Z", 6}, {"X", 4}}),
                                        {std::move(z), std::move(x)}, options);
  return std::move(store).value();
}

TEST(BitmapIndexTest, BitsMatchBruteForce) {
  auto store = SmallStore();
  auto index = BitmapIndex::Build(*store, 0).value();
  ASSERT_EQ(index->num_blocks(), store->num_blocks());
  ASSERT_EQ(index->num_values(), 6u);

  for (Value v = 0; v < 6; ++v) {
    for (BlockId b = 0; b < store->num_blocks(); ++b) {
      RowId begin, end;
      store->BlockRowRange(b, &begin, &end);
      bool expected = false;
      for (RowId r = begin; r < end; ++r) {
        if (store->column(0).Get(r) == v) expected = true;
      }
      EXPECT_EQ(index->BlockContains(v, b), expected)
          << "v=" << v << " b=" << b;
    }
  }
}

TEST(BitmapIndexTest, BlockCountsMatchPopcount) {
  auto store = SmallStore();
  auto index = BitmapIndex::Build(*store, 0).value();
  for (Value v = 0; v < 6; ++v) {
    EXPECT_EQ(index->BlockCount(v), index->bitmap(v).Popcount());
  }
}

TEST(BitmapIndexTest, ValueAbsentFromData) {
  // Cardinality 6 but only values 0..2 appear: values 3..5 have all-zero
  // bitmaps.
  std::vector<Value> z, x;
  for (int i = 0; i < 50; ++i) {
    z.push_back(static_cast<Value>(i % 3));
    x.push_back(0);
  }
  StorageOptions options;
  options.rows_per_block_override = 8;
  auto store = ColumnStore::FromColumns(Schema({{"Z", 6}, {"X", 4}}),
                                        {std::move(z), std::move(x)}, options)
                   .value();
  auto index = BitmapIndex::Build(*store, 0).value();
  for (Value v = 3; v < 6; ++v) {
    EXPECT_EQ(index->BlockCount(v), 0);
    for (BlockId b = 0; b < store->num_blocks(); ++b) {
      EXPECT_FALSE(index->BlockContains(v, b));
    }
  }
}

TEST(BitmapIndexTest, SecondAttributeIndexable) {
  auto store = SmallStore();
  auto index = BitmapIndex::Build(*store, 1).value();
  EXPECT_EQ(index->attribute(), 1);
  EXPECT_EQ(index->num_values(), 4u);
}

TEST(BitmapIndexTest, BadAttributeRejected) {
  auto store = SmallStore();
  EXPECT_EQ(BitmapIndex::Build(*store, -1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(BitmapIndex::Build(*store, 2).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(BitmapIndexTest, ByteSizeIsOneBitPerBlockPerValue) {
  auto store = SmallStore(/*rows_per_block=*/10);  // 24 blocks
  auto index = BitmapIndex::Build(*store, 0).value();
  // 6 values x ceil(24/64) = 1 word = 8 bytes each.
  EXPECT_EQ(index->ByteSize(), 6 * 8);
}

TEST(BitmapIndexTest, SingleRowBlocks) {
  auto store = SmallStore(/*rows_per_block=*/1);
  auto index = BitmapIndex::Build(*store, 0).value();
  // With one row per block, BlockCount(v) equals v's row count.
  std::vector<int64_t> counts(6, 0);
  for (RowId r = 0; r < store->num_rows(); ++r) {
    counts[store->column(0).Get(r)]++;
  }
  for (Value v = 0; v < 6; ++v) {
    EXPECT_EQ(index->BlockCount(v), counts[v]);
  }
}

}  // namespace
}  // namespace fastmatch
