#include "storage/column_store.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace fastmatch {
namespace {

Schema TwoAttrSchema(uint32_t card_a = 10, uint32_t card_b = 300) {
  return Schema({{"A", card_a}, {"B", card_b}});
}

TEST(ValueTypeTest, NarrowestTypeSelection) {
  EXPECT_EQ(NarrowestType(2), ValueType::kU8);
  EXPECT_EQ(NarrowestType(256), ValueType::kU8);
  EXPECT_EQ(NarrowestType(257), ValueType::kU16);
  EXPECT_EQ(NarrowestType(65536), ValueType::kU16);
  EXPECT_EQ(NarrowestType(65537), ValueType::kU32);
  EXPECT_EQ(ValueWidth(ValueType::kU8), 1);
  EXPECT_EQ(ValueWidth(ValueType::kU16), 2);
  EXPECT_EQ(ValueWidth(ValueType::kU32), 4);
}

TEST(SchemaTest, FindAttribute) {
  Schema s = TwoAttrSchema();
  EXPECT_EQ(s.FindAttribute("A").value(), 0);
  EXPECT_EQ(s.FindAttribute("B").value(), 1);
  EXPECT_EQ(s.FindAttribute("C").status().code(), StatusCode::kNotFound);
}

TEST(ColumnTest, AppendGetRoundTripAllWidths) {
  for (ValueType t : {ValueType::kU8, ValueType::kU16, ValueType::kU32}) {
    Column col(t, /*chunk_rows=*/2);  // 3 appends span a chunk boundary
    const Value max_val = t == ValueType::kU8    ? 255
                          : t == ValueType::kU16 ? 65535
                                                 : 4000000000u;
    col.Append(0);
    col.Append(max_val);
    col.Append(max_val / 2);
    ASSERT_EQ(col.size(), 3);
    EXPECT_EQ(col.Get(0), 0u);
    EXPECT_EQ(col.Get(1), max_val);
    EXPECT_EQ(col.Get(2), max_val / 2);
    col.Set(1, 7);
    EXPECT_EQ(col.Get(1), 7u);
  }
}

TEST(ColumnStoreTest, AppendRowAndRead) {
  ColumnStore store(TwoAttrSchema());
  store.AppendRow({3, 250});
  store.AppendRow({7, 0});
  ASSERT_EQ(store.num_rows(), 2);
  EXPECT_EQ(store.column(0).Get(0), 3u);
  EXPECT_EQ(store.column(1).Get(0), 250u);
  EXPECT_EQ(store.column(0).Get(1), 7u);
}

TEST(ColumnStoreTest, FromColumnsValidatesShape) {
  auto ragged = ColumnStore::FromColumns(TwoAttrSchema(), {{1, 2}, {3}});
  EXPECT_EQ(ragged.status().code(), StatusCode::kInvalidArgument);

  auto wrong_count = ColumnStore::FromColumns(TwoAttrSchema(), {{1, 2}});
  EXPECT_EQ(wrong_count.status().code(), StatusCode::kInvalidArgument);

  auto out_of_range =
      ColumnStore::FromColumns(TwoAttrSchema(), {{1, 99}, {3, 4}});
  EXPECT_EQ(out_of_range.status().code(), StatusCode::kOutOfRange);
}

TEST(ColumnStoreTest, BlockMathDefaultBytes) {
  // Widest column has cardinality 300 -> u16 -> 600/2 = 300 rows/block.
  ColumnStore store(TwoAttrSchema());
  EXPECT_EQ(store.rows_per_block(), 300);
  for (int i = 0; i < 650; ++i) store.AppendRow({0, 0});
  EXPECT_EQ(store.num_blocks(), 3);
  RowId begin, end;
  store.BlockRowRange(0, &begin, &end);
  EXPECT_EQ(begin, 0);
  EXPECT_EQ(end, 300);
  store.BlockRowRange(2, &begin, &end);
  EXPECT_EQ(begin, 600);
  EXPECT_EQ(end, 650);  // short last block
  EXPECT_EQ(store.BlockOfRow(0), 0);
  EXPECT_EQ(store.BlockOfRow(299), 0);
  EXPECT_EQ(store.BlockOfRow(300), 1);
  EXPECT_EQ(store.BlockOfRow(649), 2);
}

TEST(ColumnStoreTest, RowsPerBlockOverride) {
  StorageOptions options;
  options.rows_per_block_override = 7;
  ColumnStore store(TwoAttrSchema(), options);
  EXPECT_EQ(store.rows_per_block(), 7);
}

TEST(ColumnStoreTest, ShufflePreservesRowMultiset) {
  ColumnStore store(TwoAttrSchema());
  for (Value i = 0; i < 500; ++i) store.AppendRow({i % 10, i % 300});

  std::map<std::pair<Value, Value>, int> before;
  for (RowId r = 0; r < store.num_rows(); ++r) {
    before[{store.column(0).Get(r), store.column(1).Get(r)}]++;
  }
  store.Shuffle(1234);
  std::map<std::pair<Value, Value>, int> after;
  for (RowId r = 0; r < store.num_rows(); ++r) {
    after[{store.column(0).Get(r), store.column(1).Get(r)}]++;
  }
  EXPECT_EQ(before, after);
}

TEST(ColumnStoreTest, ShuffleKeepsRowsAligned) {
  // Encode the same payload in both columns; alignment must survive.
  ColumnStore store(Schema({{"A", 256}, {"B", 256}}));
  for (Value i = 0; i < 256; ++i) store.AppendRow({i, i});
  store.Shuffle(99);
  for (RowId r = 0; r < store.num_rows(); ++r) {
    EXPECT_EQ(store.column(0).Get(r), store.column(1).Get(r));
  }
}

TEST(ColumnStoreTest, ShuffleIsSeedDeterministic) {
  // ColumnStore is pinned in place (generation mutex, atomic row count)
  // and deliberately immovable; build behind unique_ptr.
  auto make = [] {
    auto s = std::make_unique<ColumnStore>(TwoAttrSchema());
    for (Value i = 0; i < 100; ++i) s->AppendRow({i % 10, i});
    return s;
  };
  auto a = make(), b = make(), c = make();
  a->Shuffle(5);
  b->Shuffle(5);
  c->Shuffle(6);
  bool differs_from_c = false;
  for (RowId r = 0; r < 100; ++r) {
    EXPECT_EQ(a->column(1).Get(r), b->column(1).Get(r));
    differs_from_c |= a->column(1).Get(r) != c->column(1).Get(r);
  }
  EXPECT_TRUE(differs_from_c);
}

TEST(ColumnStoreTest, TotalBytesAccounting) {
  // Physical bytes are chunk-granular: 100 rows at 300 rows/block is one
  // chunk per column, so u8 + u16 columns own 300*1 + 300*2 bytes.
  ColumnStore store(TwoAttrSchema());
  for (int i = 0; i < 100; ++i) store.AppendRow({1, 1});
  EXPECT_EQ(store.TotalBytes(), 900);
  // A second set of chunks starts at row 301.
  for (int i = 0; i < 201; ++i) store.AppendRow({1, 1});
  EXPECT_EQ(store.TotalBytes(), 1800);
}

TEST(ColumnStoreTest, TypedChunkPointersMatchGet) {
  // Chunked storage: rows are addressed per chunk with LOCAL offsets.
  StorageOptions options;
  options.rows_per_block_override = 16;  // 50 rows -> 4 chunks
  ColumnStore store(TwoAttrSchema(), options);
  for (Value i = 0; i < 50; ++i) store.AppendRow({i % 10, i * 3});
  const Column& col = store.column(1);
  for (RowId r = 0; r < 50; ++r) {
    const uint16_t* chunk = col.chunk_data<uint16_t>(r / col.chunk_rows());
    EXPECT_EQ(static_cast<Value>(chunk[r % col.chunk_rows()]),
              col.Get(r));
  }
}

TEST(ColumnStoreTest, IdentityTokensAreUniqueEvenAcrossAddressReuse) {
  // id() is the store's registry key (the scheduler's pipelines hang off
  // it): it must never repeat, even when the allocator hands a new store
  // a freed store's exact address.
  ColumnStore a(TwoAttrSchema());
  ColumnStore b(TwoAttrSchema());
  EXPECT_NE(a.id(), b.id());
  EXPECT_NE(a.id(), 0u);

  uint64_t freed_id = 0;
  const ColumnStore* freed_address = nullptr;
  {
    auto dead = std::make_unique<ColumnStore>(TwoAttrSchema());
    freed_id = dead->id();
    freed_address = dead.get();
  }
  // Allocate until the address recycles (usually the first try for
  // same-size allocations); whether or not it does, ids stay fresh.
  for (int attempt = 0; attempt < 64; ++attempt) {
    auto reborn = std::make_unique<ColumnStore>(TwoAttrSchema());
    EXPECT_NE(reborn->id(), freed_id);
    if (reborn.get() == freed_address) break;
  }
}

}  // namespace
}  // namespace fastmatch
