#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <vector>

namespace fastmatch {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Uniform(bound), bound);
    }
  }
}

TEST(RngTest, UniformBoundOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.Uniform(1), 0u);
}

TEST(RngTest, UniformIsRoughlyUniform) {
  Rng rng(99);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    counts[rng.Uniform(kBuckets)]++;
  }
  // Chi-square with 7 dof; 99.9th percentile ~ 24.3.
  double chi2 = 0;
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  EXPECT_LT(chi2, 24.3);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  constexpr int kN = 50000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < kN; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.03);
  EXPECT_NEAR(sum2 / kN, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 50000; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(hits / 50000.0, 0.3, 0.02);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(23);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto sorted = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, sorted);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(AliasSamplerTest, MatchesWeights) {
  std::vector<double> weights = {1, 2, 3, 4};
  AliasSampler sampler(weights);
  Rng rng(31);
  std::vector<int> counts(4, 0);
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) counts[sampler.Sample(&rng)]++;
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(counts[i] / static_cast<double>(kDraws), weights[i] / 10.0,
                0.01)
        << "bucket " << i;
  }
}

TEST(AliasSamplerTest, ZeroWeightNeverSampled) {
  AliasSampler sampler({0.0, 1.0, 0.0, 2.0});
  Rng rng(37);
  for (int i = 0; i < 10000; ++i) {
    uint32_t v = sampler.Sample(&rng);
    EXPECT_TRUE(v == 1 || v == 3) << v;
  }
}

TEST(AliasSamplerTest, SingleBucket) {
  AliasSampler sampler({5.0});
  Rng rng(41);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.Sample(&rng), 0u);
}

TEST(AliasSamplerTest, HighlySkewedWeights) {
  std::vector<double> weights = {1e-9, 1.0};
  AliasSampler sampler(weights);
  Rng rng(43);
  int rare = 0;
  for (int i = 0; i < 100000; ++i) rare += (sampler.Sample(&rng) == 0);
  EXPECT_LE(rare, 2);
}

TEST(ZipfWeightsTest, DecreasingAndPositive) {
  auto w = ZipfWeights(100, 1.1);
  ASSERT_EQ(w.size(), 100u);
  for (size_t i = 1; i < w.size(); ++i) {
    EXPECT_GT(w[i], 0);
    EXPECT_LT(w[i], w[i - 1]);
  }
  EXPECT_DOUBLE_EQ(w[0], 1.0);
}

TEST(SplitMix64Test, KnownSequenceIsStable) {
  uint64_t s = 0;
  uint64_t first = SplitMix64(&s);
  uint64_t second = SplitMix64(&s);
  EXPECT_NE(first, second);
  // Re-derivable from the same seed.
  uint64_t s2 = 0;
  EXPECT_EQ(SplitMix64(&s2), first);
}

}  // namespace
}  // namespace fastmatch
