#include "engine/executor.h"

#include <gtest/gtest.h>

#include <set>

#include "core/verify.h"
#include "test_helpers.h"

namespace fastmatch {
namespace {

using testing_util::MakeExactStore;
using testing_util::PlantedDistributions;

BoundQuery MakeQuery(uint64_t seed = 1) {
  // 10 candidates; true top-3 = {0, 1, 2} with a wide gap to the rest.
  std::vector<double> offsets = {0.0,  0.01, 0.02, 0.12, 0.15,
                                 0.18, 0.21, 0.24, 0.27, 0.3};
  auto dists = PlantedDistributions(10, 8, offsets);
  auto store =
      MakeExactStore(std::vector<int64_t>(10, 15000), dists, seed, 50);

  BoundQuery q;
  q.store = store;
  q.z_index = BitmapIndex::Build(*store, 0).value();
  q.z_attr = 0;
  q.x_attrs = {1};
  q.target = UniformDistribution(8);
  q.params.k = 3;
  q.params.epsilon = 0.05;
  q.params.delta = 0.05;
  q.params.sigma = 0.0;
  q.params.stage1_samples = 5000;
  q.params.seed = seed;
  q.lookahead = 16;
  return q;
}

constexpr Approach kAll[] = {Approach::kScan, Approach::kScanMatch,
                             Approach::kSyncMatch, Approach::kFastMatch};

TEST(ExecutorTest, ApproachNames) {
  EXPECT_EQ(ApproachName(Approach::kScan), "Scan");
  EXPECT_EQ(ApproachName(Approach::kScanMatch), "ScanMatch");
  EXPECT_EQ(ApproachName(Approach::kSyncMatch), "SyncMatch");
  EXPECT_EQ(ApproachName(Approach::kFastMatch), "FastMatch");
}

TEST(ExecutorTest, AllApproachesFindPlantedTopK) {
  BoundQuery q = MakeQuery();
  for (Approach a : kAll) {
    auto out = RunQuery(q, a);
    ASSERT_TRUE(out.ok()) << ApproachName(a) << ": "
                          << out.status().ToString();
    std::set<int> got(out->match.topk.begin(), out->match.topk.end());
    EXPECT_EQ(got, (std::set<int>{0, 1, 2})) << ApproachName(a);
  }
}

TEST(ExecutorTest, ScanIsExact) {
  BoundQuery q = MakeQuery();
  auto out = RunQuery(q, Approach::kScan);
  ASSERT_TRUE(out.ok());
  auto exact = ComputeExactCounts(*q.store, 0, {1}).value();
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(out->match.exact[i]);
    for (int g = 0; g < 8; ++g) {
      EXPECT_EQ(out->match.counts.At(i, g), exact.At(i, g));
    }
  }
  EXPECT_EQ(out->stats.engine.rows_read, q.store->num_rows());
}

TEST(ExecutorTest, ApproximateApproachesSatisfyGuarantees) {
  BoundQuery q = MakeQuery();
  auto exact = ComputeExactCounts(*q.store, 0, {1}).value();
  GroundTruth truth = ComputeGroundTruth(exact, q.target, q.params.metric,
                                         q.params.sigma, q.params.k);
  for (Approach a :
       {Approach::kScanMatch, Approach::kSyncMatch, Approach::kFastMatch}) {
    int violations = 0;
    for (uint64_t seed = 0; seed < 5; ++seed) {
      q.params.seed = seed;
      auto out = RunQuery(q, a);
      ASSERT_TRUE(out.ok());
      auto check = CheckGuarantees(out->match, exact, truth, q.target,
                                   q.params);
      violations += !check.separation_ok || !check.reconstruction_ok;
    }
    EXPECT_LE(violations, 1) << ApproachName(a);
  }
}

TEST(ExecutorTest, ApproximateApproachesReadLessThanScan) {
  BoundQuery q = MakeQuery();
  // At this tiny scale the default epsilon's stage-3 target is a large
  // fraction of each winner's 15k tuples; relax epsilon so that partial
  // reads are the expected behaviour being tested.
  q.params.epsilon = 0.12;
  auto fast = RunQuery(q, Approach::kFastMatch);
  ASSERT_TRUE(fast.ok());
  EXPECT_LT(fast->stats.engine.rows_read, q.store->num_rows());
}

TEST(ExecutorTest, StatsArePopulated) {
  BoundQuery q = MakeQuery();
  auto out = RunQuery(q, Approach::kFastMatch);
  ASSERT_TRUE(out.ok());
  EXPECT_GT(out->stats.wall_seconds, 0);
  EXPECT_GT(out->stats.engine.blocks_read, 0);
  EXPECT_GT(out->stats.histsim.stage1_samples, 0);
  EXPECT_GE(out->stats.histsim.rounds, 1);
}

TEST(ExecutorTest, ValidatesQuery) {
  BoundQuery q = MakeQuery();
  q.store = nullptr;
  EXPECT_FALSE(RunQuery(q, Approach::kScan).ok());

  q = MakeQuery();
  q.target.clear();
  EXPECT_FALSE(RunQuery(q, Approach::kFastMatch).ok());

  q = MakeQuery();
  q.params.epsilon = -1;
  EXPECT_FALSE(RunQuery(q, Approach::kFastMatch).ok());

  // FastMatch without an index must fail, ScanMatch must succeed.
  q = MakeQuery();
  q.z_index = nullptr;
  EXPECT_FALSE(RunQuery(q, Approach::kFastMatch).ok());
  EXPECT_TRUE(RunQuery(q, Approach::kScanMatch).ok());
}

TEST(ExecutorTest, SigmaPruningExcludesRareCandidates) {
  // Candidate 0 is closest to the target but has few rows: with sigma on,
  // no approach may return it.
  std::vector<double> offsets = {0.0, 0.02, 0.04, 0.2, 0.25, 0.3};
  auto dists = PlantedDistributions(6, 8, offsets);
  auto store = MakeExactStore({300, 30000, 30000, 30000, 30000, 30000},
                              dists, 3, 50);
  BoundQuery q;
  q.store = store;
  q.z_index = BitmapIndex::Build(*store, 0).value();
  q.z_attr = 0;
  q.x_attrs = {1};
  q.target = UniformDistribution(8);
  q.params.k = 2;
  q.params.epsilon = 0.05;
  q.params.delta = 0.05;
  q.params.sigma = 0.01;  // sigma*N ~ 1503 > 300
  q.params.stage1_samples = 30000;
  for (Approach a : kAll) {
    auto out = RunQuery(q, a);
    ASSERT_TRUE(out.ok()) << ApproachName(a);
    for (int i : out->match.topk) EXPECT_NE(i, 0) << ApproachName(a);
  }
}

}  // namespace
}  // namespace fastmatch
