#include "core/row_sampler.h"

#include <gtest/gtest.h>

#include <cmath>

#include "test_helpers.h"

namespace fastmatch {
namespace {

using testing_util::MakeExactStore;
using testing_util::PlantedDistributions;

TEST(RowSamplerTest, CreateValidatesArguments) {
  auto store = MakeExactStore({100, 100}, PlantedDistributions(2, 4, {0, 0.1}),
                              1);
  EXPECT_FALSE(RowSampler::Create(nullptr, 0, {1}, 1).ok());
  EXPECT_FALSE(RowSampler::Create(store, 5, {1}, 1).ok());
  EXPECT_FALSE(RowSampler::Create(store, 0, {}, 1).ok());
  EXPECT_FALSE(RowSampler::Create(store, 0, {9}, 1).ok());
  EXPECT_TRUE(RowSampler::Create(store, 0, {1}, 1).ok());
}

TEST(RowSamplerTest, ReportsDomainSizes) {
  auto store = MakeExactStore({50, 50, 50},
                              PlantedDistributions(3, 6, {0, 0.05, 0.1}), 2);
  auto sampler = RowSampler::Create(store, 0, {1}, 7).value();
  EXPECT_EQ(sampler->num_candidates(), 3);
  EXPECT_EQ(sampler->num_groups(), 6);
  EXPECT_EQ(sampler->total_rows(), 150);
}

TEST(RowSamplerTest, SampleRowsDrawsExactlyM) {
  auto store = MakeExactStore({500, 500},
                              PlantedDistributions(2, 4, {0, 0.1}), 3);
  auto sampler = RowSampler::Create(store, 0, {1}, 11).value();
  CountMatrix out(2, 4);
  EXPECT_EQ(sampler->SampleRows(200, &out), 200);
  EXPECT_EQ(out.RowTotal(0) + out.RowTotal(1), 200);
  EXPECT_EQ(sampler->rows_consumed(), 200);
  EXPECT_FALSE(sampler->AllConsumed());
}

TEST(RowSamplerTest, SampleRowsTruncatesAtDataEnd) {
  auto store =
      MakeExactStore({60, 40}, PlantedDistributions(2, 4, {0, 0.1}), 4);
  auto sampler = RowSampler::Create(store, 0, {1}, 13).value();
  CountMatrix out(2, 4);
  EXPECT_EQ(sampler->SampleRows(1000, &out), 100);
  EXPECT_TRUE(sampler->AllConsumed());
  // Complete consumption reproduces the exact histograms.
  EXPECT_EQ(out.RowTotal(0), 60);
  EXPECT_EQ(out.RowTotal(1), 40);
}

TEST(RowSamplerTest, WithoutReplacementAcrossCalls) {
  auto store =
      MakeExactStore({300, 200}, PlantedDistributions(2, 4, {0, 0.1}), 5);
  auto sampler = RowSampler::Create(store, 0, {1}, 17).value();
  CountMatrix total(2, 4);
  for (int i = 0; i < 10; ++i) sampler->SampleRows(50, &total);
  EXPECT_TRUE(sampler->AllConsumed());
  // All 500 rows seen exactly once.
  EXPECT_EQ(total.RowTotal(0), 300);
  EXPECT_EQ(total.RowTotal(1), 200);
}

TEST(RowSamplerTest, SamplesAreUniformAcrossCandidates) {
  // Candidate proportions 1:3 must be reflected in a large sample.
  auto store = MakeExactStore({20000, 60000},
                              PlantedDistributions(2, 4, {0, 0.1}), 6);
  auto sampler = RowSampler::Create(store, 0, {1}, 19).value();
  CountMatrix out(2, 4);
  sampler->SampleRows(8000, &out);
  const double frac =
      static_cast<double>(out.RowTotal(0)) /
      static_cast<double>(out.RowTotal(0) + out.RowTotal(1));
  EXPECT_NEAR(frac, 0.25, 0.02);
}

TEST(RowSamplerTest, SampleUntilTargetsMeetsAllTargets) {
  auto store = MakeExactStore({5000, 5000, 5000},
                              PlantedDistributions(3, 4, {0, 0.05, 0.1}), 7);
  auto sampler = RowSampler::Create(store, 0, {1}, 23).value();
  CountMatrix out(3, 4);
  std::vector<bool> exhausted(3, false);
  sampler->SampleUntilTargets({500, -1, 800}, &out, &exhausted);
  EXPECT_GE(out.RowTotal(0), 500);
  EXPECT_GE(out.RowTotal(2), 800);
  EXPECT_FALSE(exhausted[0]);
  EXPECT_FALSE(exhausted[2]);
}

TEST(RowSamplerTest, SampleUntilTargetsExhaustsOnImpossibleTarget) {
  auto store =
      MakeExactStore({100, 5000}, PlantedDistributions(2, 4, {0, 0.1}), 8);
  auto sampler = RowSampler::Create(store, 0, {1}, 29).value();
  CountMatrix out(2, 4);
  std::vector<bool> exhausted(2, false);
  sampler->SampleUntilTargets({1000, -1}, &out, &exhausted);
  // Candidate 0 has only 100 rows: the sampler must consume everything
  // and report exhaustion.
  EXPECT_TRUE(exhausted[0]);
  EXPECT_TRUE(exhausted[1]);
  EXPECT_TRUE(sampler->AllConsumed());
  EXPECT_EQ(out.RowTotal(0), 100);
}

TEST(RowSamplerTest, CompositeGroupingAttributes) {
  // Two x attributes of cardinalities 4 and 3 -> 12 composite groups.
  std::vector<Value> z, x1, x2;
  for (int i = 0; i < 240; ++i) {
    z.push_back(static_cast<Value>(i % 2));
    x1.push_back(static_cast<Value>(i % 4));
    x2.push_back(static_cast<Value>(i % 3));
  }
  auto store = ColumnStore::FromColumns(
                   Schema({{"Z", 2}, {"X1", 4}, {"X2", 3}}),
                   {std::move(z), std::move(x1), std::move(x2)})
                   .value();
  auto sampler =
      RowSampler::Create(std::move(store), 0, {1, 2}, 31).value();
  EXPECT_EQ(sampler->num_groups(), 12);
  CountMatrix out(2, 12);
  sampler->SampleRows(240, &out);
  // Row i maps to group (i%4)*3 + (i%3); verify totals land in the right
  // composite bins.
  int64_t total = 0;
  for (int g = 0; g < 12; ++g) total += out.At(0, g) + out.At(1, g);
  EXPECT_EQ(total, 240);
}

TEST(RowSamplerTest, SampleUntilTargetsCountsOnlyFreshSamplesPerCall) {
  // Regression: callers may legally accumulate several rounds into one
  // matrix. The sampler used to seed its fresh counters from
  // out->RowTotal, so a second call on a reused matrix returned without
  // drawing anything. Each call must meet its targets with samples drawn
  // during that call.
  auto store =
      MakeExactStore({5000, 5000}, PlantedDistributions(2, 4, {0, 0.1}), 10);
  auto sampler = RowSampler::Create(store, 0, {1}, 41).value();
  CountMatrix out(2, 4);
  std::vector<bool> exhausted(2, false);
  sampler->SampleUntilTargets({100, -1}, &out, &exhausted);
  EXPECT_EQ(out.RowTotal(0), 100);
  sampler->SampleUntilTargets({100, -1}, &out, &exhausted);
  EXPECT_EQ(out.RowTotal(0), 200);
  EXPECT_FALSE(exhausted[0]);
}

TEST(RowSamplerTest, DeterministicUnderSeed) {
  auto store =
      MakeExactStore({1000, 1000}, PlantedDistributions(2, 4, {0, 0.1}), 9);
  auto s1 = RowSampler::Create(store, 0, {1}, 37).value();
  auto s2 = RowSampler::Create(store, 0, {1}, 37).value();
  CountMatrix o1(2, 4), o2(2, 4);
  s1->SampleRows(300, &o1);
  s2->SampleRows(300, &o2);
  for (int i = 0; i < 2; ++i) {
    for (int g = 0; g < 4; ++g) EXPECT_EQ(o1.At(i, g), o2.At(i, g));
  }
}

}  // namespace
}  // namespace fastmatch
