#include "stats/deviation.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace fastmatch {
namespace {

constexpr double kLog2 = 0.6931471805599453;

TEST(DeviationTest, EpsilonFormula) {
  // eps = sqrt(2/n (|VX| log2 + log(1/delta)))
  const double eps = DeviationEpsilon(1000, 24, std::log(0.01));
  const double expected =
      std::sqrt(2.0 / 1000 * (24 * kLog2 + std::log(100.0)));
  EXPECT_NEAR(eps, expected, 1e-12);
}

TEST(DeviationTest, EpsilonShrinksWithSamples) {
  double prev = std::numeric_limits<double>::infinity();
  for (int64_t n : {10, 100, 1000, 10000, 100000}) {
    const double eps = DeviationEpsilon(n, 24, std::log(0.01));
    EXPECT_LT(eps, prev);
    prev = eps;
  }
}

TEST(DeviationTest, EpsilonGrowsWithSupport) {
  EXPECT_LT(DeviationEpsilon(1000, 2, std::log(0.01)),
            DeviationEpsilon(1000, 24, std::log(0.01)));
  EXPECT_LT(DeviationEpsilon(1000, 24, std::log(0.01)),
            DeviationEpsilon(1000, 351, std::log(0.01)));
}

TEST(DeviationTest, SamplesInvertsEpsilon) {
  for (int64_t vx : {2, 7, 24, 351}) {
    for (double eps : {0.02, 0.04, 0.11}) {
      const int64_t n = DeviationSamples(eps, vx, std::log(0.01));
      // Plugging n back must give deviation <= eps (and n-1 gives > eps).
      EXPECT_LE(DeviationEpsilon(n, vx, std::log(0.01)), eps + 1e-12);
      EXPECT_GT(DeviationEpsilon(n - 1, vx, std::log(0.01)), eps - 1e-9);
    }
  }
}

TEST(DeviationTest, SamplesMatchesEquation1) {
  // n'_i = 2 (|VX| log 2 - log delta_upper) / eps'^2
  const double eps = 0.05;
  const double log_dupper = std::log(0.01 / 3 / 8);
  const int64_t n = DeviationSamples(eps, 24, log_dupper);
  const double expected = 2 * (24 * kLog2 - log_dupper) / (eps * eps);
  EXPECT_EQ(n, static_cast<int64_t>(std::ceil(expected)));
}

TEST(DeviationTest, PValueFormula) {
  // log p = |VX| log 2 - eps^2 n / 2, capped at 0.
  const double lp = LogDeviationPValue(0.1, 5000, 24);
  EXPECT_NEAR(lp, 24 * kLog2 - 0.01 * 5000 / 2, 1e-9);
}

TEST(DeviationTest, PValueCappedAtOne) {
  // Tiny n: the bound exceeds 1 and must cap at log(1) = 0.
  EXPECT_DOUBLE_EQ(LogDeviationPValue(0.1, 1, 24), 0.0);
}

TEST(DeviationTest, NonPositiveEpsilonCannotReject) {
  EXPECT_DOUBLE_EQ(LogDeviationPValue(0.0, 100000, 24), 0.0);
  EXPECT_DOUBLE_EQ(LogDeviationPValue(-0.5, 100000, 24), 0.0);
}

TEST(DeviationTest, InfiniteEpsilonIsFreeRejection) {
  // Encodes the vacuous null of Algorithm 1 line 22 (s - eps/2 < 0).
  const double lp = LogDeviationPValue(
      std::numeric_limits<double>::infinity(), 10, 24);
  EXPECT_EQ(lp, -std::numeric_limits<double>::infinity());
}

TEST(DeviationTest, PValueDecreasesWithSamplesAndEpsilon) {
  EXPECT_GT(LogDeviationPValue(0.05, 1000, 24),
            LogDeviationPValue(0.05, 100000, 24));
  EXPECT_GT(LogDeviationPValue(0.02, 100000, 24),
            LogDeviationPValue(0.08, 100000, 24));
}

TEST(DeviationTest, Stage3SamplesMatchesAlgorithmLine26) {
  // ni >= 2/eps^2 (|VX| log 2 + log(3k/delta))
  const double eps = 0.04;
  const int64_t vx = 24, k = 10;
  const double delta = 0.01;
  const double expected =
      2.0 / (eps * eps) * (vx * kLog2 + std::log(3.0 * k / delta));
  EXPECT_EQ(Stage3Samples(eps, vx, k, delta),
            static_cast<int64_t>(std::ceil(expected)));
  // Paper-scale sanity: ~30k samples for the flights-q1 configuration.
  EXPECT_GT(Stage3Samples(0.04, 24, 10, 0.01), 25000);
  EXPECT_LT(Stage3Samples(0.04, 24, 10, 0.01), 40000);
}

TEST(DeviationTest, Stage3GrowsWithKAndShrinksWithDelta) {
  EXPECT_LT(Stage3Samples(0.04, 24, 5, 0.01), Stage3Samples(0.04, 24, 50, 0.01));
  EXPECT_GT(Stage3Samples(0.04, 24, 10, 0.001),
            Stage3Samples(0.04, 24, 10, 0.1));
}

TEST(DeviationTest, SamplesSaturateInsteadOfOverflowing) {
  // Regression: ceil(n) for tiny eps exceeds 2^63; the old direct
  // static_cast was undefined behaviour. The formula must saturate.
  EXPECT_EQ(DeviationSamples(1e-12, 24, std::log(0.01)),
            kSampleCountSaturated);
  EXPECT_EQ(DeviationSamples(std::numeric_limits<double>::denorm_min(), 2,
                             std::log(0.5)),
            kSampleCountSaturated);
  // Huge support saturates too.
  EXPECT_EQ(DeviationSamples(0.04, int64_t{1} << 62, std::log(0.01)),
            kSampleCountSaturated);
  // Near-boundary values stay positive and unsaturated.
  const int64_t n = DeviationSamples(1e-8, 24, std::log(0.01));
  EXPECT_GT(n, 0);
  EXPECT_LT(n, kSampleCountSaturated);
}

TEST(DeviationTest, Stage3SaturatesInsteadOfOverflowing) {
  EXPECT_EQ(Stage3Samples(1e-12, 24, 10, 0.01), kSampleCountSaturated);
  EXPECT_EQ(Stage3Samples(0.04, int64_t{1} << 60, 10, 0.01),
            kSampleCountSaturated);
  const int64_t n = Stage3Samples(0.001, 351, 100, 0.001);
  EXPECT_GT(n, 0);
  EXPECT_LT(n, kSampleCountSaturated);
}

TEST(DeviationTest, EmpiricalCoverage) {
  // Draw n samples from a known discrete distribution; the empirical l1
  // deviation must be below DeviationEpsilon(n, vx, log delta) in (far)
  // more than 1 - delta of trials. This exercises the bound end to end.
  const int vx = 8;
  const double probs[vx] = {0.3, 0.2, 0.15, 0.1, 0.1, 0.08, 0.05, 0.02};
  uint64_t state = 777;
  auto next_uniform = [&]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state >> 11) * 0x1.0p-53;
  };
  const int64_t n = 2000;
  const double delta = 0.05;
  const double eps = DeviationEpsilon(n, vx, std::log(delta));
  int violations = 0;
  const int kTrials = 300;
  for (int t = 0; t < kTrials; ++t) {
    int counts[vx] = {0};
    for (int64_t i = 0; i < n; ++i) {
      double u = next_uniform(), acc = 0;
      for (int j = 0; j < vx; ++j) {
        acc += probs[j];
        if (u < acc || j == vx - 1) {
          counts[j]++;
          break;
        }
      }
    }
    double l1 = 0;
    for (int j = 0; j < vx; ++j) {
      l1 += std::fabs(static_cast<double>(counts[j]) / n - probs[j]);
    }
    if (l1 >= eps) ++violations;
  }
  // The bound is loose in practice; even 5% violations would be shocking.
  EXPECT_LE(violations, kTrials / 20);
}

}  // namespace
}  // namespace fastmatch
