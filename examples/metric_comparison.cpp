// Reproduces the paper's Section 2 discussion of distance metrics:
//
//   * Figure 3: without normalization, a scaled copy of a histogram looks
//     "far" even though its distribution is identical;
//   * the l2 drawback: (nearly) disjoint distributions can have small l2
//     but always have maximal l1;
//   * Figure 2's flavor: l2 over-penalizes a single mismatched spike
//     relative to l1;
//   * the KL drawback: infinite when the candidate has empty bins.

#include <cstdio>

#include "core/distance.h"
#include "workload/ascii_chart.h"

using namespace fastmatch;

int main() {
  // --- Figure 3: normalization.
  std::vector<int64_t> base = {120, 260, 400, 310, 180, 90};
  std::vector<int64_t> scaled;
  for (int64_t c : base) scaled.push_back(c * 25);
  Distribution p = Normalize(std::span<const int64_t>(base));
  Distribution q = Normalize(std::span<const int64_t>(scaled));
  std::printf("1) Normalization (paper Fig. 3)\n");
  std::printf("   counts {120,...} vs {3000,...}: raw scale differs 25x, "
              "but normalized l1 distance = %.6f\n\n",
              L1Distance(p, q));

  // --- l2 on (nearly) disjoint supports.
  const int n = 24;
  Distribution a(n, 0.0), b(n, 0.0);
  for (int i = 0; i < n / 2; ++i) a[static_cast<size_t>(i)] = 2.0 / n;
  for (int i = n / 2; i < n; ++i) b[static_cast<size_t>(i)] = 2.0 / n;
  std::printf("2) Disjoint supports (why not l2; Batu et al. critique)\n");
  std::printf("   l1 = %.4f (maximal: 2)   l2 = %.4f (looks 'close')\n\n",
              L1Distance(a, b), L2Distance(a, b));

  // --- Figure 2's flavor: one tall mismatched spike vs many small
  // mismatches. l2 prefers the visually-worse candidate.
  Distribution target(n, 1.0 / n);
  Distribution spike = target;   // one large deviation at bin 6
  spike[6] += 0.12;
  for (int i = 0; i < n; ++i) spike[static_cast<size_t>(i)] -= 0.12 / n;
  Distribution smeared = target;  // many small deviations
  for (int i = 0; i < n; ++i) {
    smeared[static_cast<size_t>(i)] += (i % 2 ? 1.0 : -1.0) * 0.0085;
  }
  std::printf("3) One spike vs many small deviations (paper Fig. 2)\n");
  std::printf("   %-22s l1=%.4f  l2=%.4f\n", "spiky candidate:",
              L1Distance(spike, target), L2Distance(spike, target));
  std::printf("   %-22s l1=%.4f  l2=%.4f\n", "smeared candidate:",
              L1Distance(smeared, target), L2Distance(smeared, target));
  std::printf("   l1 ranks the smeared candidate about the same; l2 "
              "penalizes the single spike much more heavily.\n\n");

  // --- KL divergence blows up on empty bins.
  Distribution zero_bin = target;
  zero_bin[3] = 0;
  zero_bin = Normalize(zero_bin);
  std::printf("4) KL divergence drawback\n");
  std::printf("   KL(target || candidate-with-empty-bin) = %f\n\n",
              KLDivergence(target, zero_bin));

  std::printf("Side-by-side of the Fig. 2 style candidates:\n%s",
              RenderComparison(spike, smeared, "spiky", "smeared", 24)
                  .c_str());
  return 0;
}
