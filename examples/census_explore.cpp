// The paper's running example (Q1): "Which countries have similar
// distributions of wealth to that of Greece?"
//
// Builds a synthetic census (country x income bracket) with clustered
// wealth shapes via the workload generator's building blocks, then asks
// FastMatch for the countries whose income-bracket histograms are
// closest to Greece's.

#include <cstdio>

#include "core/target.h"
#include "core/verify.h"
#include "engine/executor.h"
#include "workload/ascii_chart.h"
#include "workload/generator.h"

using namespace fastmatch;

int main() {
  constexpr int kCountries = 195;
  constexpr int kBrackets = 7;
  constexpr Value kGreece = 84;
  Rng rng(2024);

  // Wealth-shape clusters: each country's bracket distribution is its
  // cluster's prototype plus noise; Greece's cluster (3) holds the
  // genuine matches.
  std::vector<int> clusters(kCountries);
  for (int c = 0; c < kCountries; ++c) {
    clusters[static_cast<size_t>(c)] = static_cast<int>(rng.Uniform(8));
  }
  clusters[kGreece] = 3;
  std::vector<Distribution> protos = MakePrototypes(8, kBrackets, 0.9, &rng);

  std::vector<GenAttr> attrs(2);
  attrs[0] = {"country", kCountries, -1,
              LogNormalWeights(kCountries, 1.0, &rng), {}};
  attrs[1] = {"income_bracket", kBrackets, 0, {},
              MakeConditionals(clusters, protos, 0.15, &rng)};
  auto store = GenerateRows("census", attrs, 3000000, &rng);
  auto index = BitmapIndex::Build(*store, 0).value();
  auto exact = ComputeExactCounts(*store, 0, {1}).value();

  // The analyst has Greece's histogram (e.g., from a previous query).
  auto target =
      ResolveTarget(TargetSpec::Candidate(kGreece), exact, Metric::kL1)
          .value();
  std::printf("Target: income distribution of country %d ('Greece')\n%s\n",
              kGreece, RenderHistogram(target, 30).c_str());

  BoundQuery query;
  query.store = store;
  query.z_index = index;
  query.z_attr = 0;
  query.x_attrs = {1};
  query.target = target;
  query.params.k = 6;
  query.params.epsilon = 0.04;
  query.params.delta = 0.01;
  query.params.sigma = 0.0008;
  query.params.stage1_samples = 50000;

  auto out = RunQuery(query, Approach::kFastMatch);
  if (!out.ok()) {
    std::fprintf(stderr, "%s\n", out.status().ToString().c_str());
    return 1;
  }

  std::printf("Countries with wealth distributions most similar to "
              "Greece's:\n\n");
  for (size_t i = 0; i < out->match.topk.size(); ++i) {
    const int cand = out->match.topk[i];
    const bool same_cluster = clusters[static_cast<size_t>(cand)] == 3;
    std::printf("#%zu: country %-4d distance %.4f   %s\n", i + 1, cand,
                out->match.topk_distances[i],
                cand == static_cast<int>(kGreece)
                    ? "(Greece itself)"
                    : (same_cluster ? "(planted match: same wealth cluster)"
                                    : ""));
  }

  // Side-by-side comparison of Greece vs the best non-Greece match.
  for (int cand : out->match.topk) {
    if (cand == static_cast<int>(kGreece)) continue;
    std::printf("\n%s",
                RenderComparison(target, out->match.counts.NormalizedRow(cand),
                                 "Greece", "country " + std::to_string(cand),
                                 24)
                    .c_str());
    break;
  }

  std::printf("\nRead %.1f%% of the data; %d stage-2 rounds.\n",
              100.0 * static_cast<double>(out->stats.engine.rows_read) /
                  static_cast<double>(store->num_rows()),
              out->stats.histsim.rounds);
  return 0;
}
