// Appendix A.1.5: handling an unknown candidate domain.
//
// When no index exists over the candidate attribute and its value set is
// unknown at query time, ScanMatch still works: candidates get state as
// they are discovered, and stage 1 adds one *dummy* candidate standing
// for all still-unseen values. If the dummy's under-representation test
// rejects, then the combined mass of all unseen candidates is below
// sigma, which implies every individual unseen candidate is rare.
//
// This example demonstrates the dummy-candidate bound directly with the
// library's statistics primitives, then runs the query with ScanMatch
// over the discovered domain.

#include <cmath>
#include <cstdio>
#include <set>

#include "core/target.h"
#include "core/verify.h"
#include "engine/executor.h"
#include "stats/hypergeometric.h"
#include "stats/multiple_testing.h"
#include "util/random.h"

using namespace fastmatch;

int main() {
  // A relation whose candidate attribute nominally has 500 values, but
  // only 40 of them actually occur (plus 5 ultra-rare stragglers).
  constexpr int kDomain = 500;
  Rng rng(5);
  std::vector<Value> z, x;
  for (int i = 0; i < 400000; ++i) {
    Value zi;
    const double u = rng.NextDouble();
    if (u < 0.9995) {
      zi = static_cast<Value>(rng.Uniform(40));
    } else {
      zi = static_cast<Value>(40 + rng.Uniform(5));  // ~200 rows total
    }
    z.push_back(zi);
    x.push_back(static_cast<Value>((zi + rng.Uniform(4)) % 8));
  }
  auto store = ColumnStore::FromColumns(Schema({{"Z", kDomain}, {"X", 8}}),
                                        {std::move(z), std::move(x)})
                   .value();
  store->Shuffle(3);

  // ---- Stage-1 style discovery scan: count values as they appear.
  const int64_t kStage1 = 50000;
  std::vector<int64_t> seen(kDomain, 0);
  for (RowId r = 0; r < kStage1; ++r) seen[store->column(0).Get(r)]++;
  std::set<int> discovered;
  for (int v = 0; v < kDomain; ++v) {
    if (seen[v] > 0) discovered.insert(v);
  }
  std::printf("Discovered %zu distinct candidate values in a %lld-row "
              "stage-1 sample (true active domain: 45 of %d).\n",
              discovered.size(), static_cast<long long>(kStage1), kDomain);

  // ---- The dummy candidate: all unseen values combined saw 0 samples.
  // Its under-representation P-value bounds the total unseen mass.
  const double sigma = 0.002;
  const int64_t n_total = store->num_rows();
  const int64_t k_rare = static_cast<int64_t>(std::ceil(sigma * n_total));
  HypergeomCdfTable table(n_total, k_rare, kStage1, /*j_max=*/0);
  const double log_p_dummy = table.LogCdf(0);
  std::printf("Dummy-candidate test: P(unseen mass >= sigma=%g and 0 "
              "samples observed) <= exp(%.1f)\n",
              sigma, log_p_dummy);
  if (log_p_dummy < std::log(0.01 / 3)) {
    std::printf("=> rejected: every unseen candidate has N_i/N < sigma; "
                "none can be a legal query answer.\n\n");
  }

  // ---- Run the actual query restricted to the discovered domain via
  // ScanMatch (no index needed, per the appendix).
  auto exact = ComputeExactCounts(*store, 0, {1}).value();
  auto target = ResolveTarget(TargetSpec::Candidate(7), exact, Metric::kL1)
                    .value();
  BoundQuery query;
  query.store = store;
  query.z_attr = 0;
  query.x_attrs = {1};
  query.target = target;
  query.params.k = 4;
  query.params.epsilon = 0.05;
  query.params.delta = 0.01;
  query.params.sigma = sigma;
  query.params.stage1_samples = kStage1;
  auto out = RunQuery(query, Approach::kScanMatch);
  if (!out.ok()) {
    std::fprintf(stderr, "%s\n", out.status().ToString().c_str());
    return 1;
  }
  std::printf("Top-%d candidates similar to candidate 7 (ScanMatch, "
              "index-free):\n",
              query.params.k);
  for (size_t i = 0; i < out->match.topk.size(); ++i) {
    std::printf("#%zu: candidate %-4d distance %.4f\n", i + 1,
                out->match.topk[i], out->match.topk_distances[i]);
    if (discovered.count(out->match.topk[i]) == 0) {
      std::printf("     (!) returned candidate was not in the discovered "
                  "set - should not happen\n");
    }
  }
  return 0;
}
