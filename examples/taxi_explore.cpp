// The paper's taxi scenario (Q4): Bob notices a location whose pickup
// histogram spikes between 3am and 5am and asks "where else around
// Manhattan do pickup times look like this?"
//
// Uses the taxi-like generator (7641 locations, thousands of them nearly
// empty) to showcase rare-candidate pruning and block skipping.

#include <cstdio>

#include "core/target.h"
#include "core/verify.h"
#include "engine/executor.h"
#include "workload/ascii_chart.h"
#include "workload/generator.h"

using namespace fastmatch;

int main() {
  SyntheticDataset ds = MakeTaxiLike(6000000, 11);
  auto& store = ds.store;
  const int z = store->schema().FindAttribute("Location").value();
  const int x = store->schema().FindAttribute("HourOfDay").value();
  auto index = BitmapIndex::Build(*store, z).value();
  auto exact = ComputeExactCounts(*store, z, {x}).value();

  // Bob's reference location: the planted near-uniform matcher.
  const Value nightclub = ds.hub_candidate;
  auto target =
      ResolveTarget(TargetSpec::Candidate(nightclub), exact, Metric::kL1)
          .value();
  std::printf("Reference: pickup-hour histogram of location %u\n%s\n",
              nightclub, RenderHistogram(target, 30).c_str());

  BoundQuery query;
  query.store = store;
  query.z_index = index;
  query.z_attr = z;
  query.x_attrs = {x};
  query.target = target;
  query.params.k = 10;
  query.params.epsilon = 0.06;
  query.params.delta = 0.01;
  query.params.sigma = 0.0008;
  query.params.stage1_samples = 200000;

  auto out = RunQuery(query, Approach::kFastMatch);
  if (!out.ok()) {
    std::fprintf(stderr, "%s\n", out.status().ToString().c_str());
    return 1;
  }

  std::printf("Locations with pickup-hour distributions most similar to "
              "location %u:\n\n",
              nightclub);
  for (size_t i = 0; i < out->match.topk.size(); ++i) {
    const int cand = out->match.topk[i];
    std::printf("#%zu: location %-6d distance %.4f  (%lld sampled tuples)\n",
                i + 1, cand, out->match.topk_distances[i],
                static_cast<long long>(out->match.counts.RowTotal(cand)));
  }

  std::printf("\nOf %u candidate locations, stage 1 pruned %d as too rare "
              "(sigma=%.4f);\n",
              index->num_values(), out->stats.histsim.pruned_candidates,
              query.params.sigma);
  std::printf("the engine read %lld rows (%.1f%% of the data), skipping "
              "%lld blocks via AnyActive selection.\n",
              static_cast<long long>(out->stats.engine.rows_read),
              100.0 * static_cast<double>(out->stats.engine.rows_read) /
                  static_cast<double>(store->num_rows()),
              static_cast<long long>(out->stats.engine.blocks_skipped));
  return 0;
}
