// Appendix A.1.1: matching SUM-aggregated histograms via measure-biased
// sampling — the paper's Carol scenario: "which products were purchased
// by users with ages most closely following the distribution for this
// product?", weighted by spend instead of purchase count.

#include <cstdio>

#include "core/verify.h"
#include "engine/executor.h"
#include "engine/measure_biased.h"
#include "util/random.h"
#include "workload/ascii_chart.h"

using namespace fastmatch;

int main() {
  constexpr int kProducts = 50;
  constexpr int kAgeBuckets = 10;
  constexpr int kSpendLevels = 16;
  Rng rng(11);

  // Purchases: product, age bucket, spend. Products 0-4 share an age x
  // spend profile (young buyers, higher spend when young); the rest skew
  // older with flat spend.
  std::vector<Value> product, age, spend;
  for (int i = 0; i < 1500000; ++i) {
    const Value pr = static_cast<Value>(rng.Uniform(kProducts));
    product.push_back(pr);
    Value a;
    if (pr < 5) {
      a = static_cast<Value>(rng.NextDouble() < 0.75 ? rng.Uniform(4)
                                                     : rng.Uniform(10));
    } else {
      a = static_cast<Value>(rng.NextDouble() < 0.7 ? 5 + rng.Uniform(5)
                                                    : rng.Uniform(10));
    }
    age.push_back(a);
    // Spend correlates with youth for the first product family.
    const double boost = (pr < 5 && a < 4) ? 2.5 : 1.0;
    spend.push_back(static_cast<Value>(
        1 + std::min<uint64_t>(kSpendLevels - 2,
                               rng.Uniform(static_cast<uint64_t>(
                                   6 * boost)))));
  }
  auto store = ColumnStore::FromColumns(
                   Schema({{"product", kProducts},
                           {"age_bucket", kAgeBuckets},
                           {"spend", kSpendLevels}}),
                   {std::move(product), std::move(age), std::move(spend)})
                   .value();

  // Exact SUM(spend) GROUP BY age for product 0: the target profile.
  std::vector<double> sum0(kAgeBuckets, 0);
  for (RowId r = 0; r < store->num_rows(); ++r) {
    if (store->column(0).Get(r) == 0) {
      sum0[store->column(1).Get(r)] +=
          static_cast<double>(store->column(2).Get(r));
    }
  }
  const Distribution target = Normalize(sum0);
  std::printf("Target: revenue-by-age profile of product 0 (exact "
              "SUM(spend) GROUP BY age)\n%s\n",
              RenderHistogram(target, 30).c_str());

  // One preprocessing pass builds the measure-biased sample; COUNT
  // matching on it estimates SUM histograms of the original relation.
  auto sample =
      BuildMeasureBiasedSample(*store, /*y_attr=*/2, 600000, 23).value();
  std::printf("Measure-biased sample: %lld rows (probability proportional "
              "to spend)\n\n",
              static_cast<long long>(sample->num_rows()));

  BoundQuery query;
  query.store = sample;
  query.z_index = BitmapIndex::Build(*sample, 0).value();
  query.z_attr = 0;
  query.x_attrs = {1};
  query.target = target;
  query.params.k = 5;
  query.params.epsilon = 0.05;
  query.params.delta = 0.01;
  query.params.sigma = 0.001;
  query.params.stage1_samples = 50000;

  auto out = RunQuery(query, Approach::kFastMatch);
  if (!out.ok()) {
    std::fprintf(stderr, "%s\n", out.status().ToString().c_str());
    return 1;
  }

  std::printf("Products whose revenue-by-age profile matches product 0's "
              "(expected: the planted family 0-4):\n");
  for (size_t i = 0; i < out->match.topk.size(); ++i) {
    std::printf("#%zu: product %-4d distance %.4f %s\n", i + 1,
                out->match.topk[i], out->match.topk_distances[i],
                out->match.topk[i] < 5 ? "(planted family)" : "");
  }
  return 0;
}
