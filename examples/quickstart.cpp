// Quickstart: the minimal FastMatch workflow on a tiny synthetic table.
//
//   1. load a relation into a ColumnStore (dictionary-encoded columns);
//   2. shuffle it once (preprocessing, makes scans uniform samples);
//   3. build a block-level bitmap index on the candidate attribute;
//   4. bind a query (candidate attribute, grouping attribute, target,
//      epsilon/delta/sigma) and run it.

#include <cstdio>

#include "core/target.h"
#include "core/verify.h"
#include "engine/executor.h"
#include "util/random.h"
#include "workload/ascii_chart.h"

using namespace fastmatch;

int main() {
  // --- 1. A tiny relation: 200k rows, candidate attr "store" (20
  // values), grouping attr "hour" (12 values). Store 0 is the target;
  // stores 1 and 2 share its shape; the rest are different.
  Rng rng(42);
  std::vector<Value> store_col, hour_col;
  for (int i = 0; i < 200000; ++i) {
    const Value s = static_cast<Value>(rng.Uniform(20));
    store_col.push_back(s);
    // Shape A peaks in the morning; shape B peaks at night.
    const bool shape_a = s <= 2;
    const double u = rng.NextDouble();
    Value h;
    if (shape_a) {
      h = static_cast<Value>(u < 0.7 ? rng.Uniform(4) : rng.Uniform(12));
    } else {
      h = static_cast<Value>(u < 0.7 ? 8 + rng.Uniform(4) : rng.Uniform(12));
    }
    hour_col.push_back(h);
  }
  auto store = ColumnStore::FromColumns(
                   Schema({{"store", 20}, {"hour", 12}}),
                   {std::move(store_col), std::move(hour_col)})
                   .value();

  // --- 2. Preprocessing: shuffle + index.
  store->Shuffle(/*seed=*/1);
  auto index = BitmapIndex::Build(*store, /*attr=*/0).value();

  // --- 3. Resolve the target: "histograms similar to store 0's".
  auto exact = ComputeExactCounts(*store, 0, {1}).value();
  auto target = ResolveTarget(TargetSpec::Candidate(0), exact, Metric::kL1);
  if (!target.ok()) {
    std::fprintf(stderr, "%s\n", target.status().ToString().c_str());
    return 1;
  }

  // --- 4. Run.
  BoundQuery query;
  query.store = store;
  query.z_index = index;
  query.z_attr = 0;
  query.x_attrs = {1};
  query.target = *target;
  query.params.k = 3;
  query.params.epsilon = 0.05;
  query.params.delta = 0.01;
  query.params.sigma = 0.001;
  query.params.stage1_samples = 20000;

  auto out = RunQuery(query, Approach::kFastMatch);
  if (!out.ok()) {
    std::fprintf(stderr, "%s\n", out.status().ToString().c_str());
    return 1;
  }

  std::printf("Top-%d stores with hour-of-day distributions most similar to "
              "store 0:\n\n",
              query.params.k);
  for (size_t i = 0; i < out->match.topk.size(); ++i) {
    const int cand = out->match.topk[i];
    std::printf("#%zu: store %d (estimated l1 distance %.4f%s)\n", i + 1,
                cand, out->match.topk_distances[i],
                out->match.exact[cand] ? ", exact" : "");
    std::printf("%s\n",
                RenderHistogram(out->match.counts.NormalizedRow(cand), 30)
                    .c_str());
  }
  std::printf("Read %lld of %lld rows (%.1f%%), %d stage-2 rounds, "
              "%d candidates pruned as rare.\n",
              static_cast<long long>(out->stats.engine.rows_read),
              static_cast<long long>(store->num_rows()),
              100.0 * static_cast<double>(out->stats.engine.rows_read) /
                  static_cast<double>(store->num_rows()),
              out->stats.histsim.rounds,
              out->stats.histsim.pruned_candidates);
  return 0;
}
