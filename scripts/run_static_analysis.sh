#!/usr/bin/env bash
# Runs the same static-analysis stages as CI's static-analysis job, so a
# local run reproduces a CI failure exactly:
#
#   1. check_invariants.py      — project lint gate (always; pure python)
#   2. clang -Wthread-safety    — full build with the annotation checks,
#                                 then the tests/compile_fail negative
#                                 proofs, hard-required to RUN (a clang
#                                 build must never skip them — CI sets
#                                 FASTMATCH_REQUIRE_COMPILE_FAIL the
#                                 same way)
#   3. clang-tidy               — over build-sa/compile_commands.json
#   4. clang-format --dry-run   — formatting check
#
# Clang-dependent stages are skipped (with a notice) when the tool is not
# installed, never silently: the exit code is non-zero only on real
# findings, so a GCC-only box can still run the gate it is able to run.
# CI installs the full toolchain and therefore runs every stage.
set -u -o pipefail

cd "$(dirname "$0")/.."
failures=0
skipped=0

note() { printf '== %s\n' "$*"; }

note "stage 1/4: check_invariants.py"
if ! python3 scripts/check_invariants.py; then
  failures=$((failures + 1))
fi

CLANG_CXX="${CLANG_CXX:-$(command -v clang++ || true)}"
if [ -n "${CLANG_CXX}" ]; then
  note "stage 2/4: clang -Wthread-safety build (${CLANG_CXX})"
  if ! cmake -B build-sa -S . \
        -DCMAKE_CXX_COMPILER="${CLANG_CXX}" \
        -DCMAKE_BUILD_TYPE=Debug \
        -DFASTMATCH_THREAD_SAFETY=ON \
        -DFASTMATCH_IPO=OFF >/dev/null \
      || ! cmake --build build-sa -j "$(nproc)" \
      || ! FASTMATCH_REQUIRE_COMPILE_FAIL=1 \
           ctest --test-dir build-sa --output-on-failure -L compile_fail; then
    failures=$((failures + 1))
  fi
else
  note "stage 2/4: SKIPPED (clang++ not installed)"
  skipped=$((skipped + 1))
fi

CLANG_TIDY="${CLANG_TIDY:-$(command -v clang-tidy || true)}"
if [ -n "${CLANG_TIDY}" ] && [ -f build-sa/compile_commands.json ]; then
  note "stage 3/4: clang-tidy (${CLANG_TIDY})"
  # Project sources only: the .clang-tidy HeaderFilterRegex scopes header
  # diagnostics the same way.
  mapfile -t tidy_sources < <(git ls-files 'src/**/*.cc')
  if ! "${CLANG_TIDY}" -p build-sa --quiet "${tidy_sources[@]}"; then
    failures=$((failures + 1))
  fi
else
  note "stage 3/4: SKIPPED (clang-tidy or compile_commands.json missing)"
  skipped=$((skipped + 1))
fi

CLANG_FORMAT="${CLANG_FORMAT:-$(command -v clang-format || true)}"
if [ -n "${CLANG_FORMAT}" ]; then
  note "stage 4/4: clang-format --dry-run"
  mapfile -t fmt_sources < <(
    git ls-files '*.cc' '*.h' | grep -Ev '^third_party/')
  if ! "${CLANG_FORMAT}" --dry-run -Werror "${fmt_sources[@]}"; then
    failures=$((failures + 1))
  fi
else
  note "stage 4/4: SKIPPED (clang-format not installed)"
  skipped=$((skipped + 1))
fi

note "done: ${failures} failing stage(s), ${skipped} skipped"
exit "$((failures > 0 ? 1 : 0))"
