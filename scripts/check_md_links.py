#!/usr/bin/env python3
"""Markdown link checker for the docs tree (stdlib only).

Scans the given markdown files/directories for inline links and verifies
that every relative target resolves to an existing file or directory, so
stale file references fail CI instead of rotting silently.

    python3 scripts/check_md_links.py README.md ROADMAP.md docs

Checked:   [text](relative/path), [text](relative/path#fragment)
Ignored:   http(s)://, mailto:, pure-fragment links (#anchor), and
           anything inside fenced code blocks.
Exit code: 0 when every link resolves, 1 otherwise (broken links are
           listed as file:line: target).
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^()\s]+)\)")
FENCE_RE = re.compile(r"^\s*(```|~~~)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def iter_markdown_files(roots):
    for root in roots:
        path = Path(root)
        if path.is_dir():
            yield from sorted(path.rglob("*.md"))
        elif path.suffix == ".md":
            yield path
        else:
            sys.stderr.write(f"check_md_links: not markdown: {path}\n")
            sys.exit(2)


def check_file(md_file):
    broken = []
    in_fence = False
    for lineno, line in enumerate(
        md_file.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for target in LINK_RE.findall(line):
            if target.startswith(SKIP_PREFIXES):
                continue
            resolved = (md_file.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                broken.append(f"{md_file}:{lineno}: {target}")
    return broken


def main(argv):
    roots = argv or ["README.md", "ROADMAP.md", "docs"]
    broken = []
    checked = 0
    for md_file in iter_markdown_files(roots):
        checked += 1
        broken.extend(check_file(md_file))
    if broken:
        print(f"check_md_links: {len(broken)} broken link(s):")
        for entry in broken:
            print(f"  {entry}")
        return 1
    print(f"check_md_links: OK ({checked} file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
