#!/usr/bin/env bash
# Builds the Release bench binaries and runs each one, writing a
# BENCH_<name>.json result file per binary to seed the perf trajectory
# tracked in ROADMAP.md.
#
# Scale knobs (defaults are deliberately small so a laptop run finishes
# in minutes; set FASTMATCH_ROWS=0 to use the paper-scale datasets —
# the bench harness treats 0/absent as "paper defaults", 16-24M rows):
#   FASTMATCH_ROWS   rows per synthetic dataset   (default 200000)
#   FASTMATCH_RUNS   timed runs per configuration (default 2)
#   BUILD_DIR        cmake build tree             (default build-bench)
#   OUT_DIR          where BENCH_*.json land      (default bench-results)
#   BENCH_FILTER     regex of bench names to run  (default: all)

set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-${ROOT}/build-bench}"
OUT_DIR="${OUT_DIR:-${ROOT}/bench-results}"
BENCH_FILTER="${BENCH_FILTER:-.}"

export FASTMATCH_ROWS="${FASTMATCH_ROWS:-200000}"
export FASTMATCH_RUNS="${FASTMATCH_RUNS:-2}"

command -v jq >/dev/null || { echo "run_benches.sh: jq is required" >&2; exit 1; }

cmake -B "${BUILD_DIR}" -S "${ROOT}" \
  -DCMAKE_BUILD_TYPE=Release \
  -DFASTMATCH_BUILD_TESTS=OFF \
  -DFASTMATCH_BUILD_EXAMPLES=OFF
cmake --build "${BUILD_DIR}" -j --target benches

mkdir -p "${OUT_DIR}"

status=0
for exe in "${BUILD_DIR}"/bench/bench_*; do
  [[ -f "${exe}" && -x "${exe}" ]] || continue
  name="$(basename "${exe}")"
  [[ "${name}" =~ ${BENCH_FILTER} ]] || continue
  out_json="${OUT_DIR}/BENCH_${name#bench_}.json"
  echo "=== ${name} -> ${out_json}"

  if [[ "${name}" == "bench_micro_substrate" ]]; then
    # Google Benchmark binary: native JSON reporter.
    if ! "${exe}" --benchmark_format=json \
        --benchmark_out="${out_json}" --benchmark_out_format=json; then
      echo "run_benches.sh: ${name} FAILED" >&2
      status=1
    fi
    continue
  fi

  start="$(date +%s.%N)"
  if output="$("${exe}" 2>&1)"; then exit_code=0; else exit_code=$?; fi
  end="$(date +%s.%N)"

  jq -n \
    --arg bench "${name}" \
    --arg timestamp "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    --arg rows "${FASTMATCH_ROWS}" \
    --arg runs "${FASTMATCH_RUNS}" \
    --argjson seconds "$(echo "${end} ${start}" | awk '{printf "%.3f", $1-$2}')" \
    --argjson exit_code "${exit_code}" \
    --arg output "${output}" \
    '{bench: $bench, timestamp: $timestamp,
      env: {FASTMATCH_ROWS: $rows, FASTMATCH_RUNS: $runs},
      wall_seconds: $seconds, exit_code: $exit_code,
      output_lines: ($output | split("\n"))}' > "${out_json}"

  if [[ "${exit_code}" -ne 0 ]]; then
    echo "run_benches.sh: ${name} exited ${exit_code}" >&2
    status=1
  fi
done

echo "Results in ${OUT_DIR}/"
exit "${status}"
