#!/usr/bin/env bash
# Builds the Release bench binaries and runs each one, writing a
# BENCH_<name>.json result file per binary to seed the perf trajectory
# tracked in ROADMAP.md.
#
# Scale knobs (defaults are deliberately small so a laptop run finishes
# in minutes; set FASTMATCH_ROWS=0 to use the paper-scale datasets —
# the bench harness treats 0/absent as "paper defaults", 16-24M rows):
#   FASTMATCH_ROWS   rows per synthetic dataset   (default 200000)
#   FASTMATCH_RUNS   timed runs per configuration (default 2)
#   BUILD_DIR        cmake build tree             (default build-bench)
#   OUT_DIR          where BENCH_*.json land      (default bench-results)
#   BENCH_FILTER     regex of bench names to run  (default: all)

set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-${ROOT}/build-bench}"
OUT_DIR="${OUT_DIR:-${ROOT}/bench-results}"
BENCH_FILTER="${BENCH_FILTER:-.}"

export FASTMATCH_ROWS="${FASTMATCH_ROWS:-200000}"
export FASTMATCH_RUNS="${FASTMATCH_RUNS:-2}"

command -v jq >/dev/null || { echo "run_benches.sh: jq is required" >&2; exit 1; }

# Host/build provenance stamped into every BENCH_*.json, so the perf
# trajectory stays attributable across PRs and machines.
GIT_SHA="$(git -C "${ROOT}" rev-parse --short=12 HEAD 2>/dev/null || echo unknown)"
if [[ -n "$(git -C "${ROOT}" status --porcelain 2>/dev/null)" ]]; then
  GIT_DIRTY=true
else
  GIT_DIRTY=false
fi
CPU_MODEL="$(awk -F': *' '/model name/{print $2; exit}' /proc/cpuinfo 2>/dev/null || true)"
[[ -n "${CPU_MODEL}" ]] || CPU_MODEL=unknown  # e.g. ARM /proc/cpuinfo
THREADS="$(nproc 2>/dev/null || echo 1)"

# BUILD_DIR gotcha guard: pointing BUILD_DIR at an existing test build
# tree used to silently reconfigure it with -DFASTMATCH_BUILD_TESTS=OFF,
# vanishing the test targets while stale test binaries kept running.
# Preserve whatever the existing cache says about tests/examples (a
# fresh tree still gets the lean bench-only defaults).
TESTS_FLAG=OFF
EXAMPLES_FLAG=OFF
cmake_truthy() {  # CMake's truthy set: 1, ON, YES, TRUE, Y, non-zero number
  case "$(printf '%s' "$1" | tr '[:lower:]' '[:upper:]')" in
    1|ON|YES|TRUE|Y) return 0 ;;
    *) [[ "$1" =~ ^[0-9]+$ && "$1" != 0 ]] ;;
  esac
}
if [[ -f "${BUILD_DIR}/CMakeCache.txt" ]]; then
  cached_tests="$(sed -n 's/^FASTMATCH_BUILD_TESTS:BOOL=//p' "${BUILD_DIR}/CMakeCache.txt")"
  cached_examples="$(sed -n 's/^FASTMATCH_BUILD_EXAMPLES:BOOL=//p' "${BUILD_DIR}/CMakeCache.txt")"
  if cmake_truthy "${cached_tests}" || cmake_truthy "${cached_examples}"; then
    TESTS_FLAG="${cached_tests:-OFF}"
    EXAMPLES_FLAG="${cached_examples:-OFF}"
    echo "run_benches.sh: ${BUILD_DIR} is an existing tree with" \
      "FASTMATCH_BUILD_TESTS=${cached_tests:-unset}," \
      "FASTMATCH_BUILD_EXAMPLES=${cached_examples:-unset};" \
      "preserving those flags instead of disabling them." >&2
  fi
fi

cmake -B "${BUILD_DIR}" -S "${ROOT}" \
  -DCMAKE_BUILD_TYPE=Release \
  -DFASTMATCH_BUILD_TESTS="${TESTS_FLAG}" \
  -DFASTMATCH_BUILD_EXAMPLES="${EXAMPLES_FLAG}"
cmake --build "${BUILD_DIR}" -j --target benches

mkdir -p "${OUT_DIR}"

status=0
for exe in "${BUILD_DIR}"/bench/bench_*; do
  [[ -f "${exe}" && -x "${exe}" ]] || continue
  name="$(basename "${exe}")"
  [[ "${name}" =~ ${BENCH_FILTER} ]] || continue
  out_json="${OUT_DIR}/BENCH_${name#bench_}.json"
  echo "=== ${name} -> ${out_json}"

  if [[ "${name}" == "bench_micro_substrate" ]]; then
    # Google Benchmark binary: native JSON reporter, provenance grafted in.
    if ! "${exe}" --benchmark_format=json \
        --benchmark_out="${out_json}" --benchmark_out_format=json; then
      echo "run_benches.sh: ${name} FAILED" >&2
      status=1
    fi
    # A truncated JSON (crashed bench) must not abort the sweep: keep the
    # raw file and move on, like every other bench failure.
    if [[ -s "${out_json}" ]] && jq --arg git_sha "${GIT_SHA}" \
         --argjson git_dirty "${GIT_DIRTY}" \
         --arg cpu_model "${CPU_MODEL}" --argjson threads "${THREADS}" \
         '. + {provenance: {git_sha: $git_sha, git_dirty: $git_dirty,
               cpu_model: $cpu_model, threads: $threads}}' \
         "${out_json}" > "${out_json}.tmp" 2>/dev/null; then
      mv "${out_json}.tmp" "${out_json}"
    else
      rm -f "${out_json}.tmp"
    fi
    continue
  fi

  start="$(date +%s.%N)"
  if output="$("${exe}" 2>&1)"; then exit_code=0; else exit_code=$?; fi
  end="$(date +%s.%N)"

  jq -n \
    --arg bench "${name}" \
    --arg timestamp "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    --arg rows "${FASTMATCH_ROWS}" \
    --arg runs "${FASTMATCH_RUNS}" \
    --arg git_sha "${GIT_SHA}" \
    --argjson git_dirty "${GIT_DIRTY}" \
    --arg cpu_model "${CPU_MODEL}" \
    --argjson threads "${THREADS}" \
    --argjson seconds "$(echo "${end} ${start}" | awk '{printf "%.3f", $1-$2}')" \
    --argjson exit_code "${exit_code}" \
    --arg output "${output}" \
    '{bench: $bench, timestamp: $timestamp,
      env: {FASTMATCH_ROWS: $rows, FASTMATCH_RUNS: $runs},
      provenance: {git_sha: $git_sha, git_dirty: $git_dirty,
                   cpu_model: $cpu_model, threads: $threads},
      wall_seconds: $seconds, exit_code: $exit_code,
      output_lines: ($output | split("\n"))}' > "${out_json}"

  if [[ "${exit_code}" -ne 0 ]]; then
    echo "run_benches.sh: ${name} exited ${exit_code}" >&2
    status=1
  fi
done

echo "Results in ${OUT_DIR}/"
exit "${status}"
