#!/usr/bin/env python3
"""Project invariant lint gate (CI: static-analysis job).

Enforces the concurrency and status discipline the compiler alone cannot:

  raw-sync     No raw std::mutex / std::lock_guard / std::unique_lock /
               std::condition_variable / std::scoped_lock / shared or
               recursive mutexes anywhere outside src/util/sync.{h,cc}.
               Everything locks through the annotated fastmatch::Mutex /
               MutexLock / CondVar wrappers so Clang -Wthread-safety sees
               every acquisition.

  guarded-by   In any class that owns a fastmatch::Mutex, every mutable
               data member must carry FASTMATCH_GUARDED_BY /
               FASTMATCH_PT_GUARDED_BY. Exempt: the synchronization
               members themselves (Mutex, CondVar), std::atomic,
               std::thread (lifecycle-managed, documented at the decl),
               const members, and members tagged `// lint: unguarded`
               with a justification.

  no-discard   Non-test code must not silence a [[nodiscard]] Status /
               Result with a (void) or static_cast<void> cast; handle or
               propagate instead. `// lint: discard-ok` escapes with a
               justification. ((void)identifier; without a call is the
               unused-parameter idiom and stays legal.)

  nodiscard-attr  util::Status and util::Result keep their [[nodiscard]]
               (the compile-time half of no-discard; this guards the
               attribute against accidental removal).

  lock-hierarchy  Every src/ file that declares a fastmatch::Mutex
               member must be named in the "Concurrency & lock
               hierarchy" section of docs/ARCHITECTURE.md: a new lock
               cannot enter the codebase without a documented place in
               the ordering. (Mutex-free layers — storage partitions,
               the batch executors' single-driver design — stay out by
               construction.)

  lock-free-resolve  In src/service/, promise fulfillment and progress
               publication — set_value / Resolve / FulfillAdmitted /
               ->Publish / on_progress callback invocations — must not
               happen inside a MutexLock scope. Fulfilling a future (or
               running a user's progress callback) under a pipeline lock
               hands control to arbitrary continuation code while the
               scheduler is locked: a continuation that re-enters the
               scheduler deadlocks. The anytime progress channel extends
               this discipline to every ProgressUpdate-producing path.
               `// lint: resolve-ok` escapes with a justification.

  pinned-scan  Engine code (src/engine/) must not read a store's live
               geometry — `store->num_rows()` / `store->num_blocks()`
               and the partition-set equivalents — because stores grow:
               two live reads can straddle an append and describe two
               different relations. Scans read geometry from the
               StorePin they captured at creation (pin().num_rows etc.).
               `// lint: pin-ok` escapes with a justification (e.g. a
               deliberately unpinned admission-time estimate).

Zero third-party dependencies; line-based on purpose (a full C++ parse
buys little for these rules and costs a clang dependency the lint gate
must not have). Exit 0 when clean, 1 with file:line diagnostics if not.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SOURCE_DIRS = ["src", "tests", "bench", "examples"]
SYNC_WRAPPER_FILES = {"src/util/sync.h", "src/util/sync.cc"}

RAW_SYNC = re.compile(
    r"std::(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock|condition_variable|condition_variable_any)\b"
)

# (void)expr-with-a-call or static_cast<void>(...): a discard, not the
# (void)param unused-argument idiom.
VOID_CAST_CALL = re.compile(r"\(\s*void\s*\)\s*[\w:.\->]*\w\s*\(")
STATIC_CAST_VOID = re.compile(r"static_cast\s*<\s*void\s*>")

CLASS_HEAD = re.compile(r"\b(class|struct)\s+(FASTMATCH_\w+\([^)]*\)\s+)?"
                        r"(?P<name>[A-Za-z_]\w*)\s*(final\s*)?(:[^;{]*)?{")
MUTEX_MEMBER = re.compile(r"\bMutex\s+[A-Za-z_]\w*\s*"
                          r"(FASTMATCH_ACQUIRED_(BEFORE|AFTER)\([^)]*\)\s*)?;")
GUARD_ANNOT = re.compile(r"FASTMATCH_(PT_)?GUARDED_BY\(")
MEMBER_DECL = re.compile(r"^\s*(?:mutable\s+)?[A-Za-z_][\w:<>,\s*&]*[\s*&]"
                         r"[A-Za-z_]\w*\s*(?:=[^;]*|{[^}]*})?;")
NON_MEMBER = re.compile(
    r"^\s*(public|private|protected|using|typedef|friend|static|"
    r"FASTMATCH_\w+\s*\(|template|return|if|for|while|switch|case|explicit)\b"
    r"|\boperator\b|=\s*(delete|default)\s*;")
EXEMPT_TYPES = re.compile(
    r"\b(Mutex|CondVar|std::atomic|std::thread|std::jthread)\b")
CONST_MEMBER = re.compile(r"(^\s*const\b|\*\s*const\b|\bconst\s+std::)")

# Promise fulfillment / progress publication: the calls that hand
# control to waiter-side continuation code and therefore must run with
# no scheduler lock held. `a.on_progress(...)` is an invocation;
# `if (a.on_progress)` and assignments don't match (no open paren).
RESOLVE_CALL = re.compile(
    r"\bset_value\s*\(|\bResolve\s*\(|\bFulfillAdmitted\s*\(|"
    r"->\s*Publish\s*\(|\bon_progress\s*\(")
LOCK_DECL = re.compile(r"\bMutexLock\s+[A-Za-z_]\w*\s*\(")

# A live-geometry read: some store-ish receiver's num_rows()/num_blocks().
# Receivers named like pins/views (pin.num_rows is a field, pin().num_rows
# has no call parens after the member) don't match; only receivers whose
# name suggests a growable store do.
PINNED_SCAN = re.compile(
    r"\b(?P<recv>[A-Za-z_]\w*)\s*(?:\.|->)\s*(num_rows|num_blocks)\s*\(")
PINNED_SCAN_RECEIVERS = ("store", "partitions", "source")


def read(path: Path) -> str:
    return path.read_text(encoding="utf-8", errors="replace")


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving line structure
    and the `lint:` escape markers (kept so per-line escapes survive)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if text.startswith("//", i):
            j = text.find("\n", i)
            j = n if j == -1 else j
            comment = text[i:j]
            out.append(comment if "lint:" in comment else " " * len(comment))
            i = j
        elif text.startswith("/*", i):
            j = text.find("*/", i)
            j = n if j == -1 else j + 2
            out.append(re.sub(r"[^\n]", " ", text[i:j]))
            i = j
        elif c in "\"'":
            q, j = c, i + 1
            while j < n and text[j] != q:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(q + " " * (j - i - 2) + (q if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def class_bodies(text: str):
    """Yields (header_line_no, body_text, body_start_line) for every
    class/struct definition, innermost included."""
    for m in CLASS_HEAD.finditer(text):
        open_idx = text.index("{", m.start())
        depth, j = 1, open_idx + 1
        while j < len(text) and depth:
            if text[j] == "{":
                depth += 1
            elif text[j] == "}":
                depth -= 1
            j += 1
        body = text[open_idx + 1:j - 1]
        yield (text.count("\n", 0, m.start()) + 1, body,
               text.count("\n", 0, open_idx) + 1)


def top_level_lines(body: str):
    """Yields (offset_line, line) for lines at the class's own brace
    depth — skips nested function bodies, nested classes, and the
    continuation lines of multi-line declarations (paren depth > 0,
    e.g. a wrapped parameter list whose last line would otherwise look
    like a member declaration)."""
    depth = 0
    parens = 0
    for k, line in enumerate(body.split("\n")):
        stripped = line
        if depth == 0 and parens == 0:
            yield k, stripped
        depth += stripped.count("{") - stripped.count("}")
        depth = max(depth, 0)
        parens += stripped.count("(") - stripped.count(")")
        parens = max(parens, 0)


def check_file(rel: str, text: str, violations: list):
    lines = text.split("\n")
    is_test = rel.startswith("tests/")
    is_wrapper = rel in SYNC_WRAPPER_FILES

    if not is_wrapper:
        for k, line in enumerate(lines, 1):
            if RAW_SYNC.search(line):
                violations.append(
                    (rel, k, "raw-sync",
                     "raw std synchronization primitive; use "
                     "fastmatch::Mutex/MutexLock/CondVar (util/sync.h)"))

    if not is_test:
        for k, line in enumerate(lines, 1):
            if "lint: discard-ok" in line:
                continue
            if VOID_CAST_CALL.search(line) or STATIC_CAST_VOID.search(line):
                violations.append(
                    (rel, k, "no-discard",
                     "(void)-discard of a call result; handle the Status "
                     "or tag `// lint: discard-ok` with a reason"))

    if rel.startswith("src/service/"):
        # Brace-tracked MutexLock scopes: a lock taken at block depth d
        # is live until the depth drops back below d. Any resolving /
        # publishing call while one is live is a violation.
        depth = 0
        lock_depths = []
        for k, line in enumerate(lines, 1):
            if (lock_depths and RESOLVE_CALL.search(line)
                    and "lint: resolve-ok" not in line):
                violations.append(
                    (rel, k, "lock-free-resolve",
                     "promise fulfillment / progress publication inside a "
                     "MutexLock scope; resolve after releasing the lock "
                     "(or tag `// lint: resolve-ok` with a reason)"))
            if LOCK_DECL.search(line):
                lock_depths.append(depth)
            depth += line.count("{") - line.count("}")
            depth = max(depth, 0)
            while lock_depths and depth < lock_depths[-1]:
                lock_depths.pop()

    if rel.startswith("src/engine/"):
        for k, line in enumerate(lines, 1):
            if "lint: pin-ok" in line:
                continue
            for m in PINNED_SCAN.finditer(line):
                recv = m.group("recv").lower()
                if any(s in recv for s in PINNED_SCAN_RECEIVERS):
                    violations.append(
                        (rel, k, "pinned-scan",
                         "live store-geometry read in engine code; read "
                         "num_rows/num_blocks from the scan's StorePin "
                         "(or tag `// lint: pin-ok` with a reason)"))

    for head_line, body, body_start in class_bodies(text):
        if not MUTEX_MEMBER.search(body):
            continue
        for k, line in top_level_lines(body):
            lineno = body_start + k
            if ("lint: unguarded" in line
                    or GUARD_ANNOT.search(line)
                    or EXEMPT_TYPES.search(line)
                    or CONST_MEMBER.search(line)
                    or NON_MEMBER.search(line)
                    or not MEMBER_DECL.match(line)):
                continue
            violations.append(
                (rel, lineno, "guarded-by",
                 "mutable member of a Mutex-owning class lacks "
                 "FASTMATCH_GUARDED_BY (or `// lint: unguarded` + reason)"))
        _ = head_line


def check_lock_hierarchy_doc(mutex_files: list, violations: list):
    """Every Mutex-owning src/ file must appear, by path, in the lock
    hierarchy section of docs/ARCHITECTURE.md."""
    doc_rel = "docs/ARCHITECTURE.md"
    doc_path = REPO / doc_rel
    if not doc_path.exists():
        violations.append((doc_rel, 1, "lock-hierarchy", "file missing"))
        return
    text = read(doc_path)
    m = re.search(r"^##\s+Concurrency & lock hierarchy\s*$", text,
                  re.MULTILINE)
    if not m:
        violations.append(
            (doc_rel, 1, "lock-hierarchy",
             'no "## Concurrency & lock hierarchy" section'))
        return
    end = text.find("\n## ", m.end())
    section = text[m.start():end if end != -1 else len(text)]
    for rel in mutex_files:
        if rel not in section:
            violations.append(
                (rel, 1, "lock-hierarchy",
                 "declares a Mutex member but is not named in the lock "
                 f"hierarchy section of {doc_rel}"))


def check_nodiscard_attr(violations: list):
    for rel, cls in (("src/util/status.h", "Status"),
                     ("src/util/result.h", "Result")):
        path = REPO / rel
        if not path.exists():
            violations.append((rel, 1, "nodiscard-attr", "file missing"))
            continue
        if not re.search(r"class\s+\[\[nodiscard\]\]\s+" + cls, read(path)):
            violations.append(
                (rel, 1, "nodiscard-attr",
                 f"class {cls} must stay [[nodiscard]]"))


def main() -> int:
    violations = []
    mutex_files = []
    for d in SOURCE_DIRS:
        for path in sorted((REPO / d).rglob("*")):
            if path.suffix not in (".h", ".cc"):
                continue
            rel = path.relative_to(REPO).as_posix()
            stripped = strip_comments_and_strings(read(path))
            check_file(rel, stripped, violations)
            if rel.startswith("src/") and rel not in SYNC_WRAPPER_FILES \
                    and MUTEX_MEMBER.search(stripped):
                mutex_files.append(rel)
    check_lock_hierarchy_doc(mutex_files, violations)
    check_nodiscard_attr(violations)
    for rel, line, rule, msg in violations:
        print(f"{rel}:{line}: [{rule}] {msg}")
    if violations:
        print(f"\ncheck_invariants: {len(violations)} violation(s)")
        return 1
    print("check_invariants: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
