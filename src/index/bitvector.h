// Packed bit vector used by the block-level bitmap index.

#ifndef FASTMATCH_INDEX_BITVECTOR_H_
#define FASTMATCH_INDEX_BITVECTOR_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace fastmatch {

/// \brief Fixed-size packed bit vector (64-bit words).
class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(int64_t num_bits)
      : num_bits_(num_bits),
        words_(static_cast<size_t>((num_bits + 63) / 64), 0) {}

  int64_t size() const { return num_bits_; }

  void Set(int64_t i) {
    words_[static_cast<size_t>(i >> 6)] |= (1ULL << (i & 63));
  }
  void Clear(int64_t i) {
    words_[static_cast<size_t>(i >> 6)] &= ~(1ULL << (i & 63));
  }
  bool Get(int64_t i) const {
    return (words_[static_cast<size_t>(i >> 6)] >> (i & 63)) & 1;
  }

  /// \brief Number of set bits.
  int64_t Popcount() const;

  /// \brief Number of set bits within [begin, end).
  int64_t PopcountRange(int64_t begin, int64_t end) const;

  /// \brief Whether any bit is set in [begin, end).
  bool AnyInRange(int64_t begin, int64_t end) const;

  /// \brief Raw words, for cache-conscious scanning (Algorithm 3).
  const std::vector<uint64_t>& words() const { return words_; }

  /// \brief Sets every bit in [0, size()).
  void SetAll();

 private:
  int64_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace fastmatch

#endif  // FASTMATCH_INDEX_BITVECTOR_H_
