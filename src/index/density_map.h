// Density maps (paper Appendix A.1.2, after Kim et al. [48]).
//
// A density map stores, for each (attribute value, block), a saturating
// 8-bit count of matching tuples. Unlike the 1-bit bitmap index, density
// maps can estimate how many tuples in a block satisfy a boolean
// combination of predicates (AND -> min, OR -> saturating sum), which is
// what the AnyActive policy needs when candidates are defined by arbitrary
// predicates rather than single attribute values.
//
// Memory cost is |V_A| * num_blocks bytes per indexed attribute (8x the
// bitmap index), so these are built on demand for predicate workloads.

#ifndef FASTMATCH_INDEX_DENSITY_MAP_H_
#define FASTMATCH_INDEX_DENSITY_MAP_H_

#include <memory>
#include <vector>

#include "storage/column_store.h"
#include "util/result.h"

namespace fastmatch {

/// \brief Per-(value, block) saturating tuple counts for one attribute.
class DensityMap {
 public:
  static Result<std::shared_ptr<DensityMap>> Build(const ColumnStore& store,
                                                   int attr);

  int attribute() const { return attr_; }
  int64_t num_blocks() const { return num_blocks_; }
  uint32_t num_values() const { return num_values_; }

  /// \brief Rows the map was built over. Like BitmapIndex::num_rows(),
  /// this is the covered-prefix authority for pre-skip consumers: only
  /// blocks fully built at build time (num_rows() / rows-per-block
  /// whole blocks) may be skipped on a zero count — a partial tail
  /// block can be filled by later appends the map never saw.
  int64_t num_rows() const { return num_rows_; }

  /// \brief Saturating count (capped at 255) of tuples with value v in
  /// block b.
  uint8_t Count(Value v, BlockId b) const {
    return cells_[static_cast<size_t>(v) * num_blocks_ + b];
  }

  /// \brief Value v's per-block count row (num_blocks() entries,
  /// block-contiguous): the block-inner loop of candidate-outer marking
  /// walks this sequentially.
  const uint8_t* Row(Value v) const {
    return cells_.data() + static_cast<size_t>(v) * num_blocks_;
  }

  int64_t ByteSize() const { return static_cast<int64_t>(cells_.size()); }

 private:
  int attr_ = -1;
  int64_t num_blocks_ = 0;
  int64_t num_rows_ = 0;
  uint32_t num_values_ = 0;
  std::vector<uint8_t> cells_;  // value-major: cells_[v * num_blocks + b]
};

/// \brief A predicate over one or two attributes of a store, in the shape
/// Appendix A.1.2 discusses: Z1 = a, optionally AND/OR Z2 = b.
struct CandidatePredicate {
  enum class Op { kSingle, kAnd, kOr };
  Op op = Op::kSingle;
  int attr1 = -1;
  Value value1 = 0;
  int attr2 = -1;
  Value value2 = 0;

  /// \brief Evaluates the predicate on one row.
  bool Matches(const ColumnStore& store, RowId row) const;
};

/// \brief Estimated matching-tuple count in a block, from density maps
/// (min for AND, saturating sum for OR). An estimate of 0 for AND may be a
/// false negative only when both sides saturate, which cannot happen at
/// 8-bit saturation vs. paper-sized blocks; for kSingle/kOr a 0 estimate is
/// exact.
uint8_t EstimateBlockMatches(const CandidatePredicate& pred,
                             const DensityMap& map1, const DensityMap* map2,
                             BlockId b);

}  // namespace fastmatch

#endif  // FASTMATCH_INDEX_DENSITY_MAP_H_
