#include "index/bitmap_index.h"

namespace fastmatch {

namespace {

template <typename T>
void FillBitmaps(const ColumnStore& store, int attr, const StorePin& pin,
                 std::vector<BitVector>* bitmaps) {
  const Column& col = store.column(attr);
  for (BlockId b = 0; b < pin.num_blocks; ++b) {
    RowId begin, end;
    pin.BlockRowRange(b, &begin, &end);
    // Chunk b holds block b's rows at local offsets.
    const T* data = col.chunk_data<T>(b);
    for (RowId r = begin; r < end; ++r) {
      (*bitmaps)[data[r - begin]].Set(b);
    }
  }
}

}  // namespace

Result<std::shared_ptr<BitmapIndex>> BitmapIndex::Build(
    const ColumnStore& store, int attr) {
  if (attr < 0 || attr >= store.schema().num_attributes()) {
    return Status::InvalidArgument("BitmapIndex::Build: bad attribute index " +
                                   std::to_string(attr));
  }
  // Build against a pinned snapshot: an append racing the build can
  // only add rows past the pin, which the index then simply does not
  // cover (num_rows() tells scans where coverage ends).
  const StorePin pin = store.Pin();
  auto index = std::make_shared<BitmapIndex>();
  index->attr_ = attr;
  index->num_blocks_ = pin.num_blocks;
  index->num_rows_ = pin.num_rows;
  const uint32_t card = store.schema().attribute(attr).cardinality;
  index->bitmaps_.assign(card, BitVector(index->num_blocks_));

  switch (store.schema().attribute(attr).type()) {
    case ValueType::kU8:
      FillBitmaps<uint8_t>(store, attr, pin, &index->bitmaps_);
      break;
    case ValueType::kU16:
      FillBitmaps<uint16_t>(store, attr, pin, &index->bitmaps_);
      break;
    case ValueType::kU32:
      FillBitmaps<uint32_t>(store, attr, pin, &index->bitmaps_);
      break;
  }

  index->block_counts_.resize(card);
  for (uint32_t v = 0; v < card; ++v) {
    index->block_counts_[v] = index->bitmaps_[v].Popcount();
  }
  return index;
}

int64_t BitmapIndex::ByteSize() const {
  int64_t total = 0;
  for (const auto& bv : bitmaps_) {
    total += static_cast<int64_t>(bv.words().size()) * 8;
  }
  return total;
}

}  // namespace fastmatch
