// Block-level bitmap index (paper Section 4.1).
//
// For one attribute A: for each attribute value v, a bitmap over blocks
// where bit p = 1 iff block p contains >= 1 tuple with A = v. This is
// orders of magnitude smaller than tuple-level bitmaps (one bit per block,
// not per tuple) and is what lets the sampling engine apply the AnyActive
// block selection policy without touching the data.

#ifndef FASTMATCH_INDEX_BITMAP_INDEX_H_
#define FASTMATCH_INDEX_BITMAP_INDEX_H_

#include <memory>
#include <vector>

#include "index/bitvector.h"
#include "storage/column_store.h"
#include "util/result.h"

namespace fastmatch {

/// \brief Per-attribute, per-value block bitmaps.
class BitmapIndex {
 public:
  /// \brief Builds the index for `attr` of `store` in one scan.
  static Result<std::shared_ptr<BitmapIndex>> Build(const ColumnStore& store,
                                                    int attr);

  int attribute() const { return attr_; }
  int64_t num_blocks() const { return num_blocks_; }

  /// \brief Row count of the store AT BUILD TIME. A generation-pinned
  /// scan over a store that has since grown derives the index's COVERED
  /// block prefix from this (num_rows() / rows_per_block — a partial
  /// tail block at build time may have been filled by later appends, so
  /// its bitmap is stale and only whole covered blocks may be skipped);
  /// blocks past the covered prefix must be read unconditionally.
  int64_t num_rows() const { return num_rows_; }
  uint32_t num_values() const {
    return static_cast<uint32_t>(bitmaps_.size());
  }

  /// \brief Does block `b` contain at least one tuple with value `v`?
  bool BlockContains(Value v, BlockId b) const {
    return bitmaps_[v].Get(b);
  }

  /// \brief Bitmap for value v (for word-level scanning, Algorithm 3).
  const BitVector& bitmap(Value v) const { return bitmaps_[v]; }

  /// \brief Number of blocks containing value v (cached popcount).
  int64_t BlockCount(Value v) const { return block_counts_[v]; }

  /// \brief Total index size in bytes (for reporting).
  int64_t ByteSize() const;

 private:
  int attr_ = -1;
  int64_t num_blocks_ = 0;
  int64_t num_rows_ = 0;
  std::vector<BitVector> bitmaps_;     // indexed by value
  std::vector<int64_t> block_counts_;  // popcount cache
};

}  // namespace fastmatch

#endif  // FASTMATCH_INDEX_BITMAP_INDEX_H_
