#include "index/bitvector.h"

#include <bit>

namespace fastmatch {

int64_t BitVector::Popcount() const {
  int64_t total = 0;
  for (uint64_t w : words_) total += std::popcount(w);
  return total;
}

int64_t BitVector::PopcountRange(int64_t begin, int64_t end) const {
  if (begin >= end) return 0;
  FASTMATCH_CHECK_GE(begin, 0);
  FASTMATCH_CHECK_LE(end, num_bits_);
  const int64_t first_word = begin >> 6;
  const int64_t last_word = (end - 1) >> 6;
  if (first_word == last_word) {
    const uint64_t mask = ((end - begin) == 64)
                              ? ~0ULL
                              : (((1ULL << (end - begin)) - 1) << (begin & 63));
    return std::popcount(words_[static_cast<size_t>(first_word)] & mask);
  }
  int64_t total = 0;
  // Head word: bits [begin & 63, 64).
  total += std::popcount(words_[static_cast<size_t>(first_word)] &
                         (~0ULL << (begin & 63)));
  for (int64_t w = first_word + 1; w < last_word; ++w) {
    total += std::popcount(words_[static_cast<size_t>(w)]);
  }
  // Tail word: bits [0, ((end-1) & 63) + 1).
  const int tail_bits = static_cast<int>(((end - 1) & 63) + 1);
  const uint64_t tail_mask =
      tail_bits == 64 ? ~0ULL : ((1ULL << tail_bits) - 1);
  total += std::popcount(words_[static_cast<size_t>(last_word)] & tail_mask);
  return total;
}

bool BitVector::AnyInRange(int64_t begin, int64_t end) const {
  if (begin >= end) return false;
  FASTMATCH_CHECK_GE(begin, 0);
  FASTMATCH_CHECK_LE(end, num_bits_);
  const int64_t first_word = begin >> 6;
  const int64_t last_word = (end - 1) >> 6;
  if (first_word == last_word) {
    const uint64_t mask = ((end - begin) == 64)
                              ? ~0ULL
                              : (((1ULL << (end - begin)) - 1) << (begin & 63));
    return (words_[static_cast<size_t>(first_word)] & mask) != 0;
  }
  if ((words_[static_cast<size_t>(first_word)] & (~0ULL << (begin & 63))) != 0)
    return true;
  for (int64_t w = first_word + 1; w < last_word; ++w) {
    if (words_[static_cast<size_t>(w)] != 0) return true;
  }
  const int tail_bits = static_cast<int>(((end - 1) & 63) + 1);
  const uint64_t tail_mask =
      tail_bits == 64 ? ~0ULL : ((1ULL << tail_bits) - 1);
  return (words_[static_cast<size_t>(last_word)] & tail_mask) != 0;
}

void BitVector::SetAll() {
  if (words_.empty()) return;
  for (auto& w : words_) w = ~0ULL;
  // Clear the bits beyond size() in the last word.
  const int used = static_cast<int>(num_bits_ & 63);
  if (used != 0) {
    words_.back() &= (1ULL << used) - 1;
  }
}

}  // namespace fastmatch
