#include "index/density_map.h"

#include <algorithm>

#include "util/logging.h"

namespace fastmatch {

Result<std::shared_ptr<DensityMap>> DensityMap::Build(const ColumnStore& store,
                                                      int attr) {
  if (attr < 0 || attr >= store.schema().num_attributes()) {
    return Status::InvalidArgument("DensityMap::Build: bad attribute index " +
                                   std::to_string(attr));
  }
  auto map = std::make_shared<DensityMap>();
  map->attr_ = attr;
  map->num_blocks_ = store.num_blocks();
  map->num_rows_ = store.num_rows();
  map->num_values_ = store.schema().attribute(attr).cardinality;
  map->cells_.assign(
      static_cast<size_t>(map->num_values_) * map->num_blocks_, 0);

  const Column& col = store.column(attr);
  for (BlockId b = 0; b < map->num_blocks_; ++b) {
    RowId begin, end;
    store.BlockRowRange(b, &begin, &end);
    for (RowId r = begin; r < end; ++r) {
      uint8_t& cell =
          map->cells_[static_cast<size_t>(col.Get(r)) * map->num_blocks_ + b];
      if (cell != 255) ++cell;  // saturate
    }
  }
  return map;
}

bool CandidatePredicate::Matches(const ColumnStore& store, RowId row) const {
  const bool first = store.column(attr1).Get(row) == value1;
  switch (op) {
    case Op::kSingle:
      return first;
    case Op::kAnd:
      return first && store.column(attr2).Get(row) == value2;
    case Op::kOr:
      return first || store.column(attr2).Get(row) == value2;
  }
  return false;
}

uint8_t EstimateBlockMatches(const CandidatePredicate& pred,
                             const DensityMap& map1, const DensityMap* map2,
                             BlockId b) {
  const uint8_t c1 = map1.Count(pred.value1, b);
  switch (pred.op) {
    case CandidatePredicate::Op::kSingle:
      return c1;
    case CandidatePredicate::Op::kAnd: {
      FASTMATCH_CHECK(map2 != nullptr);
      return std::min(c1, map2->Count(pred.value2, b));
    }
    case CandidatePredicate::Op::kOr: {
      FASTMATCH_CHECK(map2 != nullptr);
      const int sum = c1 + map2->Count(pred.value2, b);
      return static_cast<uint8_t>(std::min(sum, 255));
    }
  }
  return 0;
}

}  // namespace fastmatch
