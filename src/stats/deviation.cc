#include "stats/deviation.h"

#include <cmath>
#include <limits>

#include "util/logging.h"

namespace fastmatch {

namespace {

constexpr double kLog2 = 0.6931471805599453;

/// ceil with a saturating cast: casting a double >= 2^63 to int64_t is
/// undefined behaviour, and tiny eps (or huge |VX|) pushes the sample
/// bounds there. 2^63 is exactly representable as a double, so the
/// comparison below is exact; +inf (eps denormal enough that eps*eps
/// underflows to 0) also lands in the saturated branch.
int64_t SaturatingCeil(double n) {
  const double c = std::ceil(n);
  if (c >= 9223372036854775808.0 /* 2^63 */) return kSampleCountSaturated;
  return static_cast<int64_t>(c);
}

}  // namespace

double DeviationEpsilon(int64_t n, int64_t vx, double log_delta) {
  FASTMATCH_CHECK_GT(n, 0);
  FASTMATCH_CHECK_GT(vx, 0);
  FASTMATCH_CHECK_LE(log_delta, 0.0);
  return std::sqrt(2.0 / static_cast<double>(n) *
                   (static_cast<double>(vx) * kLog2 - log_delta));
}

int64_t DeviationSamples(double eps, int64_t vx, double log_delta) {
  FASTMATCH_CHECK_GT(eps, 0.0);
  FASTMATCH_CHECK_GT(vx, 0);
  FASTMATCH_CHECK_LE(log_delta, 0.0);
  const double n =
      2.0 * (static_cast<double>(vx) * kLog2 - log_delta) / (eps * eps);
  return SaturatingCeil(n);
}

double LogDeviationPValue(double eps, int64_t n, int64_t vx) {
  FASTMATCH_CHECK_GE(n, 0);
  FASTMATCH_CHECK_GT(vx, 0);
  if (eps <= 0.0) return 0.0;  // log(1): cannot reject.
  if (std::isinf(eps)) {
    // eps = +inf encodes a vacuous null (s - eps/2 < 0 in Algorithm 1
    // line 22): the null is impossible, reject for free.
    return -std::numeric_limits<double>::infinity();
  }
  const double lp = static_cast<double>(vx) * kLog2 -
                    eps * eps * static_cast<double>(n) / 2.0;
  return lp < 0.0 ? lp : 0.0;
}

int64_t Stage3Samples(double eps, int64_t vx, int64_t k, double delta) {
  FASTMATCH_CHECK_GT(eps, 0.0);
  FASTMATCH_CHECK_GT(vx, 0);
  FASTMATCH_CHECK_GT(k, 0);
  FASTMATCH_CHECK_GT(delta, 0.0);
  // ni >= (2/eps^2) (|VX| log 2 + log(3k/delta)): each winner fails
  // reconstruction with probability <= delta/(3k); union over k winners
  // gives the stage's delta/3 budget.
  const double n = 2.0 / (eps * eps) *
                   (static_cast<double>(vx) * kLog2 +
                    std::log(3.0 * static_cast<double>(k) / delta));
  return SaturatingCeil(n);
}

}  // namespace fastmatch
