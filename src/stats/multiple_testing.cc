#include "stats/multiple_testing.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace fastmatch {

std::vector<int> HolmBonferroniReject(const std::vector<double>& log_pvalues,
                                      double log_alpha) {
  const size_t n = log_pvalues.size();
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return log_pvalues[a] < log_pvalues[b];
  });

  std::vector<int> rejected;
  for (size_t r = 0; r < n; ++r) {
    // Rank r (0-based): threshold alpha / (n - r).
    const double log_threshold =
        log_alpha - std::log(static_cast<double>(n - r));
    if (log_pvalues[order[r]] <= log_threshold) {
      rejected.push_back(order[r]);
    } else {
      break;  // Step-down stops at the first retained hypothesis.
    }
  }
  return rejected;
}

std::vector<int> BonferroniReject(const std::vector<double>& log_pvalues,
                                  double log_alpha) {
  const size_t n = log_pvalues.size();
  if (n == 0) return {};
  const double log_threshold = log_alpha - std::log(static_cast<double>(n));
  std::vector<int> rejected;
  for (size_t i = 0; i < n; ++i) {
    if (log_pvalues[i] <= log_threshold) rejected.push_back(static_cast<int>(i));
  }
  return rejected;
}

bool SimultaneousReject(const std::vector<double>& log_pvalues,
                        double log_alpha) {
  for (double lp : log_pvalues) {
    if (lp > log_alpha) return false;
  }
  return true;
}

}  // namespace fastmatch
