#include "stats/hypergeometric.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/math.h"

namespace fastmatch {

namespace {

int64_t SupportLo(int64_t N, int64_t K, int64_t m) {
  return std::max<int64_t>(0, m - (N - K));
}

int64_t SupportHi(int64_t K, int64_t m) { return std::min(K, m); }

void CheckParams(int64_t N, int64_t K, int64_t m) {
  FASTMATCH_CHECK_GE(N, 0);
  FASTMATCH_CHECK_GE(K, 0);
  FASTMATCH_CHECK_LE(K, N);
  FASTMATCH_CHECK_GE(m, 0);
  FASTMATCH_CHECK_LE(m, N);
}

}  // namespace

double LogHypergeomPmf(int64_t j, int64_t N, int64_t K, int64_t m) {
  CheckParams(N, K, m);
  if (j < SupportLo(N, K, m) || j > SupportHi(K, m)) return NegInf();
  return LogChoose(K, j) + LogChoose(N - K, m - j) - LogChoose(N, m);
}

double LogHypergeomCdf(int64_t j, int64_t N, int64_t K, int64_t m) {
  CheckParams(N, K, m);
  const int64_t lo = SupportLo(N, K, m);
  const int64_t hi = SupportHi(K, m);
  if (j < lo) return NegInf();
  if (j >= hi) return 0.0;
  // Incremental pmf recurrence in log space:
  //   f(x+1)/f(x) = (K-x)(m-x) / ((x+1)(N-K-m+x+1))
  double log_pmf = LogHypergeomPmf(lo, N, K, m);
  double log_acc = log_pmf;
  for (int64_t x = lo; x < j; ++x) {
    log_pmf += std::log(static_cast<double>(K - x)) +
               std::log(static_cast<double>(m - x)) -
               std::log(static_cast<double>(x + 1)) -
               std::log(static_cast<double>(N - K - m + x + 1));
    log_acc = LogAdd(log_acc, log_pmf);
  }
  return std::min(0.0, log_acc);
}

double HypergeomPmf(int64_t j, int64_t N, int64_t K, int64_t m) {
  return std::exp(LogHypergeomPmf(j, N, K, m));
}

double HypergeomCdf(int64_t j, int64_t N, int64_t K, int64_t m) {
  return std::exp(LogHypergeomCdf(j, N, K, m));
}

HypergeomCdfTable::HypergeomCdfTable(int64_t N, int64_t K, int64_t m,
                                     int64_t j_max)
    : N_(N), K_(K), m_(m) {
  CheckParams(N, K, m);
  support_lo_ = SupportLo(N, K, m);
  support_hi_ = SupportHi(K, m);
  const int64_t top = std::min(j_max, support_hi_);
  if (top < support_lo_) return;  // Entire queried range is below support.
  log_cdf_.reserve(static_cast<size_t>(top - support_lo_ + 1));
  double log_pmf = LogHypergeomPmf(support_lo_, N, K, m);
  double log_acc = log_pmf;
  log_cdf_.push_back(std::min(0.0, log_acc));
  for (int64_t x = support_lo_; x < top; ++x) {
    log_pmf += std::log(static_cast<double>(K - x)) +
               std::log(static_cast<double>(m - x)) -
               std::log(static_cast<double>(x + 1)) -
               std::log(static_cast<double>(N - K - m + x + 1));
    log_acc = LogAdd(log_acc, log_pmf);
    log_cdf_.push_back(std::min(0.0, log_acc));
  }
}

double HypergeomCdfTable::LogCdf(int64_t j) const {
  if (j < support_lo_) return NegInf();
  if (j >= support_hi_) return 0.0;
  const size_t idx = static_cast<size_t>(j - support_lo_);
  if (idx < log_cdf_.size()) return log_cdf_[idx];
  // Beyond the precomputed range but inside the support: fall back to the
  // direct computation. (Callers sized j_max correctly should not hit this.)
  return LogHypergeomCdf(j, N_, K_, m_);
}

}  // namespace fastmatch
