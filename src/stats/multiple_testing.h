// Multiple hypothesis testing procedures (paper Sections 3.2 and 3.4.1).
//
// All P-values are handled in log space: after several HistSim stage-2
// rounds the working significance level is delta/3/2^t, and the Theorem-1
// P-values themselves routinely land around exp(-hundreds).

#ifndef FASTMATCH_STATS_MULTIPLE_TESTING_H_
#define FASTMATCH_STATS_MULTIPLE_TESTING_H_

#include <cstdint>
#include <vector>

namespace fastmatch {

/// \brief Holm-Bonferroni step-down at level exp(log_alpha).
///
/// Returns the indices (into `log_pvalues`) of rejected null hypotheses.
/// Sort P-values ascending; walking ranks r = 1..n, reject while
/// p_(r) <= alpha / (n - r + 1); stop at the first failure (all later
/// hypotheses are retained, even if individually below their threshold).
/// Controls family-wise error at alpha for arbitrary dependence.
std::vector<int> HolmBonferroniReject(const std::vector<double>& log_pvalues,
                                      double log_alpha);

/// \brief Plain Bonferroni: reject i iff p_i <= alpha / n.
///
/// Uniformly less powerful than Holm-Bonferroni; kept for the ablation
/// benchmark that quantifies the paper's Section 3.2 claim.
std::vector<int> BonferroniReject(const std::vector<double>& log_pvalues,
                                  double log_alpha);

/// \brief The all-or-nothing tester of Lemma 4.
///
/// Rejects every null iff max_i p_i <= alpha; rejecting one or more true
/// nulls then has probability <= alpha. Empty families reject vacuously.
bool SimultaneousReject(const std::vector<double>& log_pvalues,
                        double log_alpha);

}  // namespace fastmatch

#endif  // FASTMATCH_STATS_MULTIPLE_TESTING_H_
