// Hypergeometric distribution, in log space.
//
// Stage 1 of HistSim tests each candidate for under-representation: after
// drawing m tuples uniformly without replacement from N, the number of
// tuples n_i seen for a candidate with N_i total tuples follows
// HypGeo(N, N_i, m). The P-value of the test with null "N_i >= sigma*N" is
// the lower-tail CDF at the observed n_i with K = ceil(sigma*N) (paper
// Section 3.3).
//
// The paper uses Boost's implementation; we provide our own, numerically
// stable via an incremental log-ratio recurrence, plus a precomputed table
// so that P-values for all candidates share one O(max n_i) computation
// (the paper's Section 3.5 complexity note).

#ifndef FASTMATCH_STATS_HYPERGEOMETRIC_H_
#define FASTMATCH_STATS_HYPERGEOMETRIC_H_

#include <cstdint>
#include <vector>

namespace fastmatch {

/// \brief log P(X = j) for X ~ HypGeo(N, K, m); -inf outside the support.
///
/// N = population size, K = number of "successes" in the population,
/// m = number of draws without replacement.
double LogHypergeomPmf(int64_t j, int64_t N, int64_t K, int64_t m);

/// \brief Lower-tail log P(X <= j) for X ~ HypGeo(N, K, m).
double LogHypergeomCdf(int64_t j, int64_t N, int64_t K, int64_t m);

/// \brief Linear-space convenience wrappers.
double HypergeomPmf(int64_t j, int64_t N, int64_t K, int64_t m);
double HypergeomCdf(int64_t j, int64_t N, int64_t K, int64_t m);

/// \brief Precomputed lower-tail CDF table for fixed (N, K, m).
///
/// Building the table up to j_max costs O(j_max); each lookup is O(1).
/// HistSim stage 1 builds one table with K = ceil(sigma*N) and evaluates
/// every candidate against it.
class HypergeomCdfTable {
 public:
  /// \param N population size (total rows)
  /// \param K hypothesized success count (ceil(sigma*N))
  /// \param m draws (stage-1 sample size)
  /// \param j_max largest observation that will be queried
  HypergeomCdfTable(int64_t N, int64_t K, int64_t m, int64_t j_max);

  /// \brief log P(X <= j); j may exceed j_max (then the tail is complete
  /// and the result is 0 == log 1 when j >= min(K, m)).
  double LogCdf(int64_t j) const;

  int64_t population() const { return N_; }
  int64_t successes() const { return K_; }
  int64_t draws() const { return m_; }

 private:
  int64_t N_, K_, m_;
  int64_t support_lo_;  // max(0, m - (N - K))
  int64_t support_hi_;  // min(K, m)
  std::vector<double> log_cdf_;  // log_cdf_[i] = log P(X <= support_lo_ + i)
};

}  // namespace fastmatch

#endif  // FASTMATCH_STATS_HYPERGEOMETRIC_H_
