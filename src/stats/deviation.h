// Theorem 1 of the paper: the l1 deviation bound for empirical discrete
// distributions, and its inverses.
//
//   P( || r_hat - r_true ||_1 >= eps ) <= 2^{|VX|} * exp(-eps^2 * n / 2)
//
// Equivalently, with probability > 1 - delta the empirical distribution
// built from n samples is within
//   eps = sqrt( (2/n) * (|VX| log 2 + log(1/delta)) )
// of the truth. The bound is information-theoretically rate-optimal
// (Omega(|VX|/eps^2) samples are necessary). It also transfers to sampling
// without replacement (Hoeffding 1963 / Bardenet-Maillard 2015), which is
// how the FastMatch engine actually samples.

#ifndef FASTMATCH_STATS_DEVIATION_H_
#define FASTMATCH_STATS_DEVIATION_H_

#include <cstdint>
#include <limits>

namespace fastmatch {

/// \brief Sentinel returned by the sample-size inversions when the
/// real-valued requirement exceeds int64 (e.g. eps ~ 1e-10, where
/// 2/eps^2 alone is ~2e19). The formulas saturate here instead of
/// invoking undefined behaviour in the float->int cast; callers must
/// treat it as "more samples than any relation holds" — HistSim rejects
/// such parameter regimes with InvalidArgument up front.
inline constexpr int64_t kSampleCountSaturated =
    std::numeric_limits<int64_t>::max();

/// \brief eps such that n samples give eps-deviation w.p. > 1 - delta.
///
/// \param n number of samples (> 0)
/// \param vx support size |VX|
/// \param log_delta log of the failure probability (log space because
///        HistSim drives delta to delta/3/2^t across rounds)
double DeviationEpsilon(int64_t n, int64_t vx, double log_delta);

/// \brief Minimal n with eps-deviation w.p. > 1 - delta (Equation 1).
///
/// n = ceil( 2 * (|VX| log 2 - log_delta) / eps^2 ), saturating at
/// kSampleCountSaturated when the bound exceeds int64.
int64_t DeviationSamples(double eps, int64_t vx, double log_delta);

/// \brief log P-value of observing deviation >= eps after n samples:
/// min(0, |VX| log 2 - eps^2 n / 2). eps <= 0 yields log(1) = 0.
double LogDeviationPValue(double eps, int64_t n, int64_t vx);

/// \brief Stage-3 per-winner sample target:
/// ceil( (2/eps^2) * (|VX| log 2 + log(3k/delta)) )  (Algorithm 1 line 26),
/// saturating at kSampleCountSaturated when the bound exceeds int64.
int64_t Stage3Samples(double eps, int64_t vx, int64_t k, double delta);

}  // namespace fastmatch

#endif  // FASTMATCH_STATS_DEVIATION_H_
