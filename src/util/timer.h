// Wall-clock timing for the benchmark harness and engine phase accounting.

#ifndef FASTMATCH_UTIL_TIMER_H_
#define FASTMATCH_UTIL_TIMER_H_

#include <chrono>

namespace fastmatch {

/// \brief Monotonic wall-clock stopwatch; starts on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// \brief Seconds elapsed since construction or last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }
  double Micros() const { return Seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fastmatch

#endif  // FASTMATCH_UTIL_TIMER_H_
