#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace fastmatch {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  // All-zero state would lock the generator; SplitMix64 of any seed cannot
  // produce four zero outputs, but be defensive anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  FASTMATCH_CHECK_GT(bound, 0ULL);
  // Lemire's method: multiply into a 128-bit product; reject the small
  // biased region.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  FASTMATCH_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Uniform(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian() {
  // Box-Muller; draw u1 in (0,1] to avoid log(0).
  double u1 = (static_cast<double>(Next() >> 11) + 1.0) * 0x1.0p-53;
  double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  const size_t n = weights.size();
  FASTMATCH_CHECK_GT(n, 0u);
  double total = 0;
  for (double w : weights) {
    FASTMATCH_CHECK_GE(w, 0.0);
    total += w;
  }
  FASTMATCH_CHECK_GT(total, 0.0);

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Vose's algorithm: scale weights to mean 1, split into small/large piles,
  // pair each small cell with a large donor.
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) scaled[i] = weights[i] * n / total;

  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }

  while (!small.empty() && !large.empty()) {
    uint32_t s = small.back();
    small.pop_back();
    uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers are numerically == 1.
  for (uint32_t i : large) prob_[i] = 1.0;
  for (uint32_t i : small) prob_[i] = 1.0;
}

uint32_t AliasSampler::Sample(Rng* rng) const {
  const size_t n = prob_.size();
  uint32_t i = static_cast<uint32_t>(rng->Uniform(n));
  return rng->NextDouble() < prob_[i] ? i : alias_[i];
}

std::vector<double> ZipfWeights(size_t n, double s) {
  std::vector<double> w(n);
  for (size_t i = 0; i < n; ++i) {
    w[i] = 1.0 / std::pow(static_cast<double>(i + 1), s);
  }
  return w;
}

}  // namespace fastmatch
