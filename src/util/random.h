// Seeded, reproducible pseudo-random number generation.
//
// The library never uses std::random_device or global RNG state: every
// stochastic component takes an explicit seed so that runs are replayable.
// Rng is xoshiro256** (fast, high quality, 2^256-1 period) seeded through
// SplitMix64 as its authors recommend. AliasSampler draws from a fixed
// discrete distribution in O(1) per sample (Walker/Vose alias method) and
// is the workhorse of the synthetic data generators.

#ifndef FASTMATCH_UTIL_RANDOM_H_
#define FASTMATCH_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace fastmatch {

/// \brief SplitMix64 step; used for seeding and cheap hash mixing.
uint64_t SplitMix64(uint64_t* state);

/// \brief xoshiro256** engine with std::uniform_random_bit_generator shape.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// \brief Next raw 64 random bits.
  uint64_t Next();
  result_type operator()() { return Next(); }

  /// \brief Uniform integer in [0, bound). bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  uint64_t Uniform(uint64_t bound);

  /// \brief Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// \brief Uniform double in [0, 1) with 53 bits of randomness.
  double NextDouble();

  /// \brief Standard normal via Box-Muller (no cached spare; stateless).
  double NextGaussian();

  /// \brief Bernoulli draw with success probability p.
  bool NextBernoulli(double p);

  /// \brief Fisher-Yates shuffles `v` in place.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
};

/// \brief O(1)-per-draw sampler from a fixed discrete distribution.
///
/// Construction is O(n) (Vose's variant of the alias method). Weights need
/// not be normalized; they must be non-negative with a positive sum.
class AliasSampler {
 public:
  explicit AliasSampler(const std::vector<double>& weights);

  /// \brief Draws an index in [0, size()) with probability proportional to
  /// its weight.
  uint32_t Sample(Rng* rng) const;

  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

/// \brief Zipf(s) weights over n items: weight(i) = 1/(i+1)^s.
std::vector<double> ZipfWeights(size_t n, double s);

}  // namespace fastmatch

#endif  // FASTMATCH_UTIL_RANDOM_H_
