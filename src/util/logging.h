// Minimal leveled logging and CHECK macros.
//
// FASTMATCH_CHECK(cond) << "context"; aborts with the streamed message when
// `cond` is false. Internal invariants use CHECKs; user-facing failures use
// Status. Log level is controlled by FASTMATCH_LOG_LEVEL (env) or
// SetLogLevel().

#ifndef FASTMATCH_UTIL_LOGGING_H_
#define FASTMATCH_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace fastmatch {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// \brief Sets the minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it (or aborts, for kFatal) at
/// end-of-statement when the temporary is destroyed.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when a log statement is compiled out.
struct LogMessageVoidify {
  void operator&(LogMessage&) {}
};

}  // namespace internal
}  // namespace fastmatch

#define FASTMATCH_LOG(level)                                        \
  ::fastmatch::internal::LogMessage(::fastmatch::LogLevel::k##level, \
                                    __FILE__, __LINE__)

#define FASTMATCH_CHECK(cond)                              \
  (cond) ? (void)0                                         \
         : ::fastmatch::internal::LogMessageVoidify() &    \
               FASTMATCH_LOG(Fatal) << "Check failed: " #cond " "

#define FASTMATCH_CHECK_EQ(a, b) FASTMATCH_CHECK((a) == (b))
#define FASTMATCH_CHECK_NE(a, b) FASTMATCH_CHECK((a) != (b))
#define FASTMATCH_CHECK_LT(a, b) FASTMATCH_CHECK((a) < (b))
#define FASTMATCH_CHECK_LE(a, b) FASTMATCH_CHECK((a) <= (b))
#define FASTMATCH_CHECK_GT(a, b) FASTMATCH_CHECK((a) > (b))
#define FASTMATCH_CHECK_GE(a, b) FASTMATCH_CHECK((a) >= (b))

#endif  // FASTMATCH_UTIL_LOGGING_H_
