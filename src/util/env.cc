#include "util/env.h"

#include <cstdlib>
#include <filesystem>

namespace fastmatch {

int64_t GetEnvInt64(const char* name, int64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  long long v = std::strtoll(raw, &end, 10);
  if (end == raw) return fallback;
  return static_cast<int64_t>(v);
}

double GetEnvDouble(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  double v = std::strtod(raw, &end);
  if (end == raw) return fallback;
  return v;
}

std::string GetEnvString(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  return std::string(raw);
}

int CountProcessThreads() {
  int n = 0;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator("/proc/self/task", ec)) {
    (void)entry;
    ++n;
  }
  return ec ? -1 : n;
}

}  // namespace fastmatch
