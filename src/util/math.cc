#include "util/math.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace fastmatch {

double NegInf() { return -std::numeric_limits<double>::infinity(); }

double LogChoose(int64_t n, int64_t k) {
  FASTMATCH_CHECK_GE(k, 0);
  FASTMATCH_CHECK_LE(k, n);
  if (k == 0 || k == n) return 0.0;
  return std::lgamma(static_cast<double>(n) + 1) -
         std::lgamma(static_cast<double>(k) + 1) -
         std::lgamma(static_cast<double>(n - k) + 1);
}

double LogAdd(double a, double b) {
  if (a == NegInf()) return b;
  if (b == NegInf()) return a;
  double hi = std::max(a, b);
  double lo = std::min(a, b);
  return hi + std::log1p(std::exp(lo - hi));
}

double LogSumExp(const std::vector<double>& v) {
  double acc = NegInf();
  for (double x : v) acc = LogAdd(acc, x);
  return acc;
}

double Clamp(double x, double lo, double hi) {
  return std::min(hi, std::max(lo, x));
}

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  double m = Mean(v);
  double acc = 0;
  for (double x : v) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(v.size() - 1));
}

}  // namespace fastmatch
