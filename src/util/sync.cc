#include "util/sync.h"

namespace fastmatch {

// The waits adopt the already-held std::mutex into a unique_lock for
// the duration of the std::condition_variable call, then release the
// unique_lock's ownership claim so the Mutex wrapper keeps it. The
// REQUIRES(mu) annotation models the net effect correctly: held on
// entry, held on return.

void CondVar::Wait(Mutex* mu) {
  std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
  cv_.wait(lock);
  lock.release();
}

std::cv_status CondVar::WaitUntil(
    Mutex* mu, std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
  const std::cv_status status = cv_.wait_until(lock, deadline);
  lock.release();
  return status;
}

std::cv_status CondVar::WaitFor(Mutex* mu,
                                std::chrono::steady_clock::duration timeout) {
  std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
  const std::cv_status status = cv_.wait_for(lock, timeout);
  lock.release();
  return status;
}

}  // namespace fastmatch
