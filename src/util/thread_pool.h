// A fixed-size worker pool for CPU-parallel block scanning.
//
// Deliberately minimal: tasks are std::function thunks pushed through one
// mutex-guarded deque (queue contention is irrelevant at block-scan
// granularity — each task scans hundreds of blocks), and ParallelFor is a
// blocking fork-join over an atomic index, the shape the batch executor's
// per-chunk shard reads want.
//
// Determinism note: ParallelFor guarantees each index runs exactly once
// but on an unspecified thread. Callers that need reproducible output
// must make per-index results order-independent — the batch executor's
// shard merges are integer count sums, which commute, so its results are
// bit-for-bit identical for every pool size.

#ifndef FASTMATCH_UTIL_THREAD_POOL_H_
#define FASTMATCH_UTIL_THREAD_POOL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/sync.h"

namespace fastmatch {

class WorkerPool {
 public:
  /// \brief Spawns `num_threads` workers (clamped to >= 1).
  explicit WorkerPool(int num_threads);

  /// \brief Drains every outstanding task, then joins the workers.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int size() const { return static_cast<int>(threads_.size()); }

  /// \brief Enqueues one task for asynchronous execution.
  void Submit(std::function<void()> fn);

  /// \brief Blocks until every task submitted so far has finished.
  void Wait();

  /// \brief Runs fn(i) for every i in [0, n), distributing indices over
  /// the workers, and blocks until all calls return. fn must be safe to
  /// call concurrently. Runs inline on the caller when the pool has one
  /// worker (or n == 1). Must not be called from inside a pool task.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn);

  /// \brief ParallelFor bounded to at most `max_fanout` concurrently
  /// running fn calls (the caller's concurrency quota on this pool).
  /// Other callers' tasks interleave freely in the remaining capacity.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn,
                   int max_fanout);

 private:
  void WorkerLoop();

  Mutex mu_;
  CondVar cv_task_;  // workers wait for tasks or stop
  CondVar cv_idle_;  // Wait() waits for pending_ == 0
  std::deque<std::function<void()>> tasks_ FASTMATCH_GUARDED_BY(mu_);
  int64_t pending_ FASTMATCH_GUARDED_BY(mu_) = 0;  // queued + running tasks
  bool stop_ FASTMATCH_GUARDED_BY(mu_) = false;
  /// Written only by the constructor, joined only by the destructor;
  /// size() reads the stable vector length.
  std::vector<std::thread> threads_;
};

/// \brief One process-wide worker pool shared by every batch executor.
///
/// Each store pipeline used to spin up a private WorkerPool per batch:
/// under many concurrent stores the process thread count grew as
/// pipelines x pool size, and short batches paid pool construction on
/// their critical path. SharedWorkerPool fixes both: a fixed set of
/// workers serves every batch, and each batch's slice of it is bounded
/// by a per-call quota (ParallelFor's max_fanout) — a batch asking for
/// 4 workers occupies at most 4 of the shared threads while other
/// batches' tasks interleave in the rest.
///
/// Quotas are enforced by fanout, not by preemption: a batch submits at
/// most `quota` worker-slot tasks per chunk, so it can never hold more
/// than that many threads at once. FIFO task order keeps batches from
/// starving each other at equal quota.
class SharedWorkerPool {
 public:
  /// \brief Spawns `num_threads` shared workers (clamped to >= 1).
  explicit SharedWorkerPool(int num_threads) : pool_(num_threads) {}

  SharedWorkerPool(const SharedWorkerPool&) = delete;
  SharedWorkerPool& operator=(const SharedWorkerPool&) = delete;

  int size() const { return pool_.size(); }

  /// \brief Runs fn(i) for every i in [0, n) using at most `quota` of
  /// the shared workers concurrently, and blocks until all calls
  /// return. Runs inline on the caller when the effective fanout is 1.
  /// Must not be called from inside a pool task.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn,
                   int quota) {
    pool_.ParallelFor(n, fn, quota);
  }

  /// \brief Lazily-created process-wide instance, sized from
  /// FASTMATCH_POOL_THREADS when set, else hardware concurrency. Never
  /// destroyed (it must outlive every static-destruction-order client).
  static SharedWorkerPool& Process();

 private:
  WorkerPool pool_;
};

}  // namespace fastmatch

#endif  // FASTMATCH_UTIL_THREAD_POOL_H_
