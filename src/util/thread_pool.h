// A fixed-size worker pool for CPU-parallel block scanning.
//
// Deliberately minimal: tasks are std::function thunks pushed through one
// mutex-guarded deque (queue contention is irrelevant at block-scan
// granularity — each task scans hundreds of blocks), and ParallelFor is a
// blocking fork-join over an atomic index, the shape the batch executor's
// per-chunk shard reads want.
//
// Determinism note: ParallelFor guarantees each index runs exactly once
// but on an unspecified thread. Callers that need reproducible output
// must make per-index results order-independent — the batch executor's
// shard merges are integer count sums, which commute, so its results are
// bit-for-bit identical for every pool size.

#ifndef FASTMATCH_UTIL_THREAD_POOL_H_
#define FASTMATCH_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fastmatch {

class WorkerPool {
 public:
  /// \brief Spawns `num_threads` workers (clamped to >= 1).
  explicit WorkerPool(int num_threads);

  /// \brief Drains every outstanding task, then joins the workers.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int size() const { return static_cast<int>(threads_.size()); }

  /// \brief Enqueues one task for asynchronous execution.
  void Submit(std::function<void()> fn);

  /// \brief Blocks until every task submitted so far has finished.
  void Wait();

  /// \brief Runs fn(i) for every i in [0, n), distributing indices over
  /// the workers, and blocks until all calls return. fn must be safe to
  /// call concurrently. Runs inline on the caller when the pool has one
  /// worker (or n == 1). Must not be called from inside a pool task.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_task_;  // workers wait for tasks or stop
  std::condition_variable cv_idle_;  // Wait() waits for pending_ == 0
  std::deque<std::function<void()>> tasks_;
  int64_t pending_ = 0;  // queued + running tasks
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace fastmatch

#endif  // FASTMATCH_UTIL_THREAD_POOL_H_
