// Annotated synchronization primitives: every lock in the repo goes
// through these wrappers so Clang's thread-safety analysis
// (-Wthread-safety) can check locking discipline at compile time.
//
// The types mirror Abseil's Mutex/MutexLock/CondVar surface over
// std::mutex / std::condition_variable, carrying the Clang capability
// attributes (CAPABILITY, GUARDED_BY, REQUIRES, ACQUIRE/RELEASE,
// EXCLUDES, ...). Under Clang the annotations make lock contracts part
// of the type system: a GUARDED_BY member touched without its mutex, a
// REQUIRES method called unlocked, or a lock-order inversion against an
// ACQUIRED_AFTER declaration is a compile error (-Werror in CI's
// static-analysis job; tests/compile_fail/ proves the warnings fire).
// Under GCC the attribute macros expand to nothing and the wrappers are
// zero-cost aliases for the std primitives.
//
// Raw std::mutex / std::lock_guard / std::condition_variable are banned
// outside this header — scripts/check_invariants.py enforces it — so
// new concurrent code cannot opt out of the analysis by accident.
//
// Condition waits: CondVar deliberately has NO predicate overloads.
// The analysis cannot see through a predicate lambda (its body is
// analyzed without the caller's lock set), so waits are written as
// explicit loops in the caller, where every guarded access is visibly
// under the lock:
//
//   MutexLock lock(&mu_);
//   while (!ready_) cv_.Wait(&mu_);        // ready_ GUARDED_BY(mu_)
//
// The lock hierarchy these annotations encode is documented in
// docs/ARCHITECTURE.md ("Concurrency & lock hierarchy").

#ifndef FASTMATCH_UTIL_SYNC_H_
#define FASTMATCH_UTIL_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

// ---------------------------------------------------------------------------
// Clang thread-safety attribute macros (no-ops under other compilers).
// ---------------------------------------------------------------------------

#if defined(__clang__)
#define FASTMATCH_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define FASTMATCH_THREAD_ANNOTATION_(x)
#endif

/// Marks a type as a lockable capability ("mutex").
#define FASTMATCH_CAPABILITY(x) FASTMATCH_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII type whose lifetime acquires/releases a capability.
#define FASTMATCH_SCOPED_CAPABILITY FASTMATCH_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only with `x` held.
#define FASTMATCH_GUARDED_BY(x) FASTMATCH_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose POINTEE is protected by `x` (the pointer itself
/// may be read freely).
#define FASTMATCH_PT_GUARDED_BY(x) FASTMATCH_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Lock-order declarations, checked under -Wthread-safety-beta: this
/// mutex must be acquired before/after the listed ones.
#define FASTMATCH_ACQUIRED_BEFORE(...) \
  FASTMATCH_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define FASTMATCH_ACQUIRED_AFTER(...) \
  FASTMATCH_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// The function may only be called with the listed capabilities held.
#define FASTMATCH_REQUIRES(...) \
  FASTMATCH_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// The function acquires the listed capabilities (and does not release
/// them before returning).
#define FASTMATCH_ACQUIRE(...) \
  FASTMATCH_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// The function releases the listed capabilities.
#define FASTMATCH_RELEASE(...) \
  FASTMATCH_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// The function tries to acquire the capability and reports success via
/// its return value (`ret` is the success value).
#define FASTMATCH_TRY_ACQUIRE(ret, ...) \
  FASTMATCH_THREAD_ANNOTATION_(try_acquire_capability(ret, __VA_ARGS__))

/// The function must NOT be called with the listed capabilities held
/// (deadlock guard for non-reentrant locks).
#define FASTMATCH_EXCLUDES(...) \
  FASTMATCH_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held; informs the analysis.
#define FASTMATCH_ASSERT_CAPABILITY(x) \
  FASTMATCH_THREAD_ANNOTATION_(assert_capability(x))

/// The function returns a reference to the named capability.
#define FASTMATCH_RETURN_CAPABILITY(x) \
  FASTMATCH_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: the function's locking cannot be expressed to the
/// analysis. Use sparingly and leave a comment saying why.
#define FASTMATCH_NO_THREAD_SAFETY_ANALYSIS \
  FASTMATCH_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace fastmatch {

class CondVar;

/// \brief An annotated exclusive mutex (std::mutex underneath).
///
/// Prefer MutexLock for scoped holds; Lock()/Unlock() exist for the
/// rare hand-over-hand pattern and for CondVar's internals.
class FASTMATCH_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() FASTMATCH_ACQUIRE() { mu_.lock(); }
  void Unlock() FASTMATCH_RELEASE() { mu_.unlock(); }
  bool TryLock() FASTMATCH_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// \brief Tells the analysis the mutex is held on paths it cannot
  /// prove (e.g. a callback documented to run under the lock). Purely
  /// an analysis fact; no runtime check.
  void AssertHeld() const FASTMATCH_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// \brief RAII lock over a Mutex, releasable and re-acquirable
/// mid-scope (the pattern scheduler gathers use to fulfill promises
/// outside the lock, then re-enter).
///
/// The analysis tracks the held state across Unlock()/Lock() calls, so
/// a guarded access in the unlocked window is a compile error.
class FASTMATCH_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) FASTMATCH_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_->Lock();
  }
  ~MutexLock() FASTMATCH_RELEASE() {
    if (held_) mu_->Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// \brief Releases the mutex before scope end. The destructor then
  /// does nothing unless Lock() re-acquires.
  void Unlock() FASTMATCH_RELEASE() {
    held_ = false;
    mu_->Unlock();
  }

  /// \brief Re-acquires after Unlock().
  void Lock() FASTMATCH_ACQUIRE() {
    mu_->Lock();
    held_ = true;
  }

 private:
  Mutex* const mu_;
  bool held_;
};

/// \brief Condition variable paired with Mutex.
///
/// No predicate overloads ON PURPOSE: the analysis cannot check a
/// predicate lambda against the caller's lock set, so waits are written
/// as explicit `while (!cond) cv.Wait(&mu);` loops (see the header
/// comment). All waits assume (and the annotations require) the mutex
/// is held; it is atomically released during the block and re-acquired
/// before returning, which the REQUIRES annotation models soundly.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// \brief Blocks until notified (or spuriously woken — always re-test
  /// the condition in a loop).
  void Wait(Mutex* mu) FASTMATCH_REQUIRES(mu);

  /// \brief Blocks until notified or `deadline`; returns
  /// std::cv_status::timeout when the deadline passed.
  std::cv_status WaitUntil(Mutex* mu,
                           std::chrono::steady_clock::time_point deadline)
      FASTMATCH_REQUIRES(mu);

  /// \brief Blocks until notified or `timeout` elapsed.
  std::cv_status WaitFor(Mutex* mu, std::chrono::steady_clock::duration timeout)
      FASTMATCH_REQUIRES(mu);

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace fastmatch

#endif  // FASTMATCH_UTIL_SYNC_H_
