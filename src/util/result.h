// Result<T>: a value-or-Status, the library's fallible-return type.

#ifndef FASTMATCH_UTIL_RESULT_H_
#define FASTMATCH_UTIL_RESULT_H_

#include <optional>
#include <utility>

#include "util/logging.h"
#include "util/status.h"

namespace fastmatch {

/// \brief Holds either a value of type T or a non-OK Status.
///
/// Accessing the value of an errored Result is a checked fatal error
/// (never undefined behavior), so misuse fails loudly in tests. Marked
/// [[nodiscard]] like Status: discarding one drops the failure AND the
/// value, which is never intentional.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    FASTMATCH_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    FASTMATCH_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    FASTMATCH_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    FASTMATCH_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// \brief Returns the value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK when value_ is set.
};

}  // namespace fastmatch

/// Assigns the value of a Result expression to `lhs` or propagates the error.
#define FASTMATCH_ASSIGN_OR_RETURN(lhs, expr)        \
  auto FASTMATCH_CONCAT_(_res_, __LINE__) = (expr);  \
  if (!FASTMATCH_CONCAT_(_res_, __LINE__).ok())      \
    return FASTMATCH_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(FASTMATCH_CONCAT_(_res_, __LINE__)).value()

#define FASTMATCH_CONCAT_INNER_(a, b) a##b
#define FASTMATCH_CONCAT_(a, b) FASTMATCH_CONCAT_INNER_(a, b)

#endif  // FASTMATCH_UTIL_RESULT_H_
