// Numerically stable log-space helpers used by the statistics layer.

#ifndef FASTMATCH_UTIL_MATH_H_
#define FASTMATCH_UTIL_MATH_H_

#include <cstdint>
#include <vector>

namespace fastmatch {

/// \brief log(n choose k), exact-ish via lgamma; 0 <= k <= n required.
double LogChoose(int64_t n, int64_t k);

/// \brief log(exp(a) + exp(b)) without overflow.
double LogAdd(double a, double b);

/// \brief log(sum_i exp(v_i)); -inf for an empty vector.
double LogSumExp(const std::vector<double>& v);

/// \brief Clamps x into [lo, hi].
double Clamp(double x, double lo, double hi);

/// \brief Mean of v; 0 for empty.
double Mean(const std::vector<double>& v);

/// \brief Sample standard deviation of v; 0 for size < 2.
double StdDev(const std::vector<double>& v);

/// \brief Negative infinity constant for log-probability code.
double NegInf();

}  // namespace fastmatch

#endif  // FASTMATCH_UTIL_MATH_H_
