#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "util/env.h"
#include "util/logging.h"

namespace fastmatch {

WorkerPool::WorkerPool(int num_threads) {
  const int n = std::max(num_threads, 1);
  threads_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  cv_task_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!stop_ && tasks_.empty()) cv_task_.Wait(&mu_);
      if (tasks_.empty()) return;  // stop requested and queue drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
    {
      MutexLock lock(&mu_);
      if (--pending_ == 0) cv_idle_.NotifyAll();
    }
  }
}

void WorkerPool::Submit(std::function<void()> fn) {
  {
    MutexLock lock(&mu_);
    FASTMATCH_CHECK(!stop_) << "Submit on a stopping WorkerPool";
    tasks_.push_back(std::move(fn));
    ++pending_;
  }
  cv_task_.NotifyOne();
}

void WorkerPool::Wait() {
  MutexLock lock(&mu_);
  while (pending_ != 0) cv_idle_.Wait(&mu_);
}

void WorkerPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t)>& fn) {
  ParallelFor(n, fn, size());
}

void WorkerPool::ParallelFor(int64_t n, const std::function<void(int64_t)>& fn,
                             int max_fanout) {
  if (n <= 0) return;
  const int fanout = static_cast<int>(
      std::min<int64_t>(n, std::min(max_fanout, size())));
  if (fanout <= 1) {
    for (int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Fork-join state private to this call, so concurrent ParallelFors (or
  // unrelated Submits) never observe each other's completion.
  std::atomic<int64_t> next{0};
  Mutex mu;
  CondVar cv;
  int remaining = fanout;
  auto body = [&] {
    int64_t i;
    while ((i = next.fetch_add(1, std::memory_order_relaxed)) < n) fn(i);
    MutexLock lock(&mu);
    if (--remaining == 0) cv.NotifyOne();
  };
  for (int w = 0; w < fanout; ++w) Submit(body);
  MutexLock lock(&mu);
  while (remaining != 0) cv.Wait(&mu);
}

SharedWorkerPool& SharedWorkerPool::Process() {
  // Leaked on purpose: scheduler objects with static storage duration
  // may still run batches during exit, and thread count here is bounded
  // for the process lifetime anyway.
  static SharedWorkerPool* process = new SharedWorkerPool(static_cast<int>(
      GetEnvInt64("FASTMATCH_POOL_THREADS",
                  static_cast<int64_t>(std::max(
                      1u, std::thread::hardware_concurrency())))));
  return *process;
}

}  // namespace fastmatch
