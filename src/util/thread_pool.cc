#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "util/env.h"
#include "util/logging.h"

namespace fastmatch {

WorkerPool::WorkerPool(int num_threads) {
  const int n = std::max(num_threads, 1);
  threads_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop requested and queue drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--pending_ == 0) cv_idle_.notify_all();
    }
  }
}

void WorkerPool::Submit(std::function<void()> fn) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    FASTMATCH_CHECK(!stop_) << "Submit on a stopping WorkerPool";
    tasks_.push_back(std::move(fn));
    ++pending_;
  }
  cv_task_.notify_one();
}

void WorkerPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return pending_ == 0; });
}

void WorkerPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t)>& fn) {
  ParallelFor(n, fn, size());
}

void WorkerPool::ParallelFor(int64_t n, const std::function<void(int64_t)>& fn,
                             int max_fanout) {
  if (n <= 0) return;
  const int fanout = static_cast<int>(
      std::min<int64_t>(n, std::min(max_fanout, size())));
  if (fanout <= 1) {
    for (int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Fork-join state private to this call, so concurrent ParallelFors (or
  // unrelated Submits) never observe each other's completion.
  std::atomic<int64_t> next{0};
  std::mutex mu;
  std::condition_variable cv;
  int remaining = fanout;
  auto body = [&] {
    int64_t i;
    while ((i = next.fetch_add(1, std::memory_order_relaxed)) < n) fn(i);
    std::unique_lock<std::mutex> lock(mu);
    if (--remaining == 0) cv.notify_one();
  };
  for (int w = 0; w < fanout; ++w) Submit(body);
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return remaining == 0; });
}

SharedWorkerPool& SharedWorkerPool::Process() {
  // Leaked on purpose: scheduler objects with static storage duration
  // may still run batches during exit, and thread count here is bounded
  // for the process lifetime anyway.
  static SharedWorkerPool* process = new SharedWorkerPool(static_cast<int>(
      GetEnvInt64("FASTMATCH_POOL_THREADS",
                  static_cast<int64_t>(std::max(
                      1u, std::thread::hardware_concurrency())))));
  return *process;
}

}  // namespace fastmatch
