// Status: error model for the fastmatch library.
//
// Public library entry points that can fail return Status (or Result<T>,
// see util/result.h) instead of throwing. This follows the convention of
// mature storage engines (RocksDB, Arrow): exceptions never cross the
// library boundary, and callers can branch on a small closed set of codes.

#ifndef FASTMATCH_UTIL_STATUS_H_
#define FASTMATCH_UTIL_STATUS_H_

#include <string>
#include <string_view>

namespace fastmatch {

/// Closed set of error categories surfaced by the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kResourceExhausted = 6,
  kInternal = 7,
  kNotImplemented = 8,
  kDeadlineExceeded = 9,
  kCancelled = 10,
  kUnavailable = 11,
};

/// \brief Human-readable name of a status code ("InvalidArgument", ...).
std::string_view StatusCodeName(StatusCode code);

/// \brief Cheap value type describing success or a categorized failure.
///
/// An OK status carries no allocation; error statuses carry a message.
/// [[nodiscard]]: a dropped Status silently swallows a failure, so every
/// caller must branch on it, propagate it, or cast it away explicitly —
/// the build treats a discard as an error (-Werror=unused-result).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// \brief "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace fastmatch

/// Propagates a non-OK status to the caller, RocksDB/Arrow style.
#define FASTMATCH_RETURN_IF_ERROR(expr)              \
  do {                                               \
    ::fastmatch::Status _st = (expr);                \
    if (!_st.ok()) return _st;                       \
  } while (false)

#endif  // FASTMATCH_UTIL_STATUS_H_
