// Environment-variable helpers for benchmark/test scale knobs.

#ifndef FASTMATCH_UTIL_ENV_H_
#define FASTMATCH_UTIL_ENV_H_

#include <cstdint>
#include <string>

namespace fastmatch {

/// \brief Integer env var, or `fallback` when unset/unparseable.
int64_t GetEnvInt64(const char* name, int64_t fallback);

/// \brief Double env var, or `fallback` when unset/unparseable.
double GetEnvDouble(const char* name, double fallback);

/// \brief String env var, or `fallback` when unset.
std::string GetEnvString(const char* name, const std::string& fallback);

/// \brief Live threads of this process (Linux: /proc/self/task entries),
/// or -1 where that interface is unavailable. Used by the lifecycle
/// stress test and bench to assert the scheduler's thread bound.
int CountProcessThreads();

}  // namespace fastmatch

#endif  // FASTMATCH_UTIL_ENV_H_
