#include "workload/ascii_chart.h"

#include <algorithm>
#include <cstdio>

namespace fastmatch {

namespace {

double MaxOf(const Distribution& d) {
  double m = 0;
  for (double x : d) m = std::max(m, x);
  return m;
}

std::string Bar(double value, double max, int width) {
  const int filled =
      max > 0 ? static_cast<int>(value / max * width + 0.5) : 0;
  std::string bar(static_cast<size_t>(filled), '#');
  bar.append(static_cast<size_t>(width - filled), '.');
  return bar;
}

}  // namespace

std::string RenderHistogram(const Distribution& dist, int width) {
  std::string out;
  const double max = MaxOf(dist);
  char line[160];
  for (size_t i = 0; i < dist.size(); ++i) {
    std::snprintf(line, sizeof(line), "%4zu | %s %6.2f%%\n", i,
                  Bar(dist[i], max, width).c_str(), dist[i] * 100);
    out += line;
  }
  return out;
}

std::string RenderComparison(const Distribution& a, const Distribution& b,
                             const std::string& label_a,
                             const std::string& label_b, int width) {
  std::string out;
  char line[240];
  std::snprintf(line, sizeof(line), "%6s %-*s | %-*s\n", "bin", width + 8,
                label_a.c_str(), width + 8, label_b.c_str());
  out += line;
  const double max = std::max(MaxOf(a), MaxOf(b));
  const size_t n = std::max(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    const double va = i < a.size() ? a[i] : 0;
    const double vb = i < b.size() ? b[i] : 0;
    std::snprintf(line, sizeof(line), "%6zu %s %5.1f%% | %s %5.1f%%\n", i,
                  Bar(va, max, width).c_str(), va * 100,
                  Bar(vb, max, width).c_str(), vb * 100);
    out += line;
  }
  return out;
}

}  // namespace fastmatch
