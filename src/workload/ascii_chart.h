// Terminal rendering of histograms for the example programs.

#ifndef FASTMATCH_WORKLOAD_ASCII_CHART_H_
#define FASTMATCH_WORKLOAD_ASCII_CHART_H_

#include <string>
#include <vector>

#include "core/histogram.h"

namespace fastmatch {

/// \brief Horizontal bar chart of a distribution; one line per bin:
/// "  3 | #########----------  12.3%". `width` is the bar length of the
/// largest bin.
std::string RenderHistogram(const Distribution& dist, int width = 40);

/// \brief Two distributions side by side for visual comparison.
std::string RenderComparison(const Distribution& a, const Distribution& b,
                             const std::string& label_a,
                             const std::string& label_b, int width = 28);

}  // namespace fastmatch

#endif  // FASTMATCH_WORKLOAD_ASCII_CHART_H_
