#include "workload/traffic.h"

#include <utility>

#include "core/verify.h"
#include "util/random.h"

namespace fastmatch {

Result<std::vector<BoundQuery>> MakeQueryBatch(
    std::shared_ptr<const ColumnStore> store,
    std::shared_ptr<const BitmapIndex> index, int z_attr,
    std::vector<int> x_attrs, const TrafficOptions& options) {
  if (store == nullptr) return Status::InvalidArgument("null store");
  if (options.num_queries < 1) {
    return Status::InvalidArgument("num_queries must be >= 1");
  }
  FASTMATCH_RETURN_IF_ERROR(options.params.Validate());

  FASTMATCH_ASSIGN_OR_RETURN(CountMatrix exact,
                             ComputeExactCounts(*store, z_attr, x_attrs));
  const int vz = exact.num_candidates();
  const int vx = exact.num_groups();

  Rng rng(options.seed);
  std::vector<BoundQuery> batch;
  batch.reserve(static_cast<size_t>(options.num_queries));
  for (int q = 0; q < options.num_queries; ++q) {
    BoundQuery query;
    query.store = store;
    query.z_index = index;
    query.z_attr = z_attr;
    query.x_attrs = x_attrs;
    query.params = options.params;
    query.params.seed = options.seed + static_cast<uint64_t>(q) + 1;
    if (options.identical_targets) {
      query.target = UniformDistribution(vx);
    } else {
      // "Find candidates similar to this one": target the exact histogram
      // of a random non-empty candidate.
      Distribution target;
      for (int attempt = 0; attempt < vz && target.empty(); ++attempt) {
        const int c = static_cast<int>(rng.Uniform(static_cast<uint64_t>(vz)));
        target = exact.NormalizedRow(c);
      }
      if (target.empty()) target = UniformDistribution(vx);
      query.target = std::move(target);
    }
    batch.push_back(std::move(query));
  }
  return batch;
}

}  // namespace fastmatch
