#include "workload/traffic.h"

#include <cmath>
#include <utility>

#include "core/verify.h"
#include "util/random.h"

namespace fastmatch {

Result<std::vector<BoundQuery>> MakeQueryBatch(
    std::shared_ptr<const ColumnStore> store,
    std::shared_ptr<const BitmapIndex> index, int z_attr,
    std::vector<int> x_attrs, const TrafficOptions& options) {
  if (store == nullptr) return Status::InvalidArgument("null store");
  if (options.num_queries < 1) {
    return Status::InvalidArgument("num_queries must be >= 1");
  }
  FASTMATCH_RETURN_IF_ERROR(options.params.Validate());

  FASTMATCH_ASSIGN_OR_RETURN(CountMatrix exact,
                             ComputeExactCounts(*store, z_attr, x_attrs));
  const int vz = exact.num_candidates();
  const int vx = exact.num_groups();

  Rng rng(options.seed);
  std::vector<BoundQuery> batch;
  batch.reserve(static_cast<size_t>(options.num_queries));
  for (int q = 0; q < options.num_queries; ++q) {
    BoundQuery query;
    query.store = store;
    query.z_index = index;
    query.z_attr = z_attr;
    query.x_attrs = x_attrs;
    query.params = options.params;
    query.params.seed = options.seed + static_cast<uint64_t>(q) + 1;
    if (options.identical_targets) {
      query.target = UniformDistribution(vx);
    } else {
      // "Find candidates similar to this one": target the exact histogram
      // of a random non-empty candidate.
      Distribution target;
      for (int attempt = 0; attempt < vz && target.empty(); ++attempt) {
        const int c = static_cast<int>(rng.Uniform(static_cast<uint64_t>(vz)));
        target = exact.NormalizedRow(c);
      }
      if (target.empty()) target = UniformDistribution(vx);
      query.target = std::move(target);
    }
    batch.push_back(std::move(query));
  }
  return batch;
}

Result<std::vector<Arrival>> MakeTrafficStream(
    const std::vector<StoreTraffic>& stores,
    const TrafficStreamOptions& options) {
  if (stores.empty()) return Status::InvalidArgument("no stores");
  if (options.num_queries < 1) {
    return Status::InvalidArgument("num_queries must be >= 1");
  }
  if (!(options.mean_interarrival_seconds >= 0)) {
    return Status::InvalidArgument(
        "mean_interarrival_seconds must be >= 0");
  }
  if (options.deadline_fraction < 0 || options.deadline_fraction > 1 ||
      options.cancel_fraction < 0 || options.cancel_fraction > 1) {
    return Status::InvalidArgument(
        "deadline_fraction and cancel_fraction must be in [0, 1]");
  }
  if (options.deadline_fraction > 0 && !(options.deadline_seconds > 0)) {
    return Status::InvalidArgument(
        "deadline_seconds must be > 0 when deadline_fraction is set");
  }
  if (options.cancel_fraction > 0 &&
      !(options.mean_cancel_delay_seconds >= 0)) {
    return Status::InvalidArgument(
        "mean_cancel_delay_seconds must be >= 0 when cancel_fraction is set");
  }
  std::vector<double> weights;
  weights.reserve(stores.size());
  for (const StoreTraffic& st : stores) {
    if (st.store == nullptr) return Status::InvalidArgument("null store");
    if (!(st.weight > 0)) {
      return Status::InvalidArgument("store weight must be positive");
    }
    weights.push_back(st.weight);
  }

  // Per-store query pools (one exact-count preprocessing scan each);
  // the stream cycles through its store's pool in arrival order.
  std::vector<std::vector<BoundQuery>> pools(stores.size());
  std::vector<size_t> next(stores.size(), 0);
  for (size_t s = 0; s < stores.size(); ++s) {
    TrafficOptions topt;
    topt.num_queries = options.num_queries;
    topt.params = options.params;
    topt.identical_targets = options.identical_targets;
    topt.seed = options.seed + 0x9E3779B9u * static_cast<uint64_t>(s + 1);
    FASTMATCH_ASSIGN_OR_RETURN(
        pools[s], MakeQueryBatch(stores[s].store, stores[s].index,
                                 stores[s].z_attr, stores[s].x_attrs, topt));
  }

  Rng rng(options.seed);
  AliasSampler store_picker(weights);
  std::vector<Arrival> arrivals;
  arrivals.reserve(static_cast<size_t>(options.num_queries));
  double clock = 0;
  for (int q = 0; q < options.num_queries; ++q) {
    // Exponential gap; 1 - NextDouble() avoids log(0).
    clock += -options.mean_interarrival_seconds *
             std::log(1.0 - rng.NextDouble());
    const size_t s = store_picker.Sample(&rng);
    Arrival arrival;
    arrival.at_seconds = clock;
    arrival.query = pools[s][next[s]++ % pools[s].size()];
    // Lifecycle stamps. The draws happen unconditionally so that the
    // arrival sequence (stores, gaps, targets) is identical across
    // fraction settings — only the stamps differ, which lets benches
    // compare lifecycle policies on the same stream.
    const bool with_deadline = rng.NextDouble() < options.deadline_fraction;
    const bool with_cancel = rng.NextDouble() < options.cancel_fraction;
    const double cancel_gap = -options.mean_cancel_delay_seconds *
                              std::log(1.0 - rng.NextDouble());
    if (with_deadline) arrival.deadline_seconds = options.deadline_seconds;
    if (with_cancel) arrival.cancel_at_seconds = clock + cancel_gap;
    arrivals.push_back(std::move(arrival));
  }
  return arrivals;
}

}  // namespace fastmatch
