// Synthetic dataset generators standing in for the paper's real datasets
// (FLIGHTS / TAXI / POLICE; Table 2), which are not available here.
//
// HistSim/FastMatch behaviour is driven by a handful of statistical
// features, which the generators plant explicitly:
//   * candidate selectivity skew (hubs, a mid tier straddling the sigma
//     threshold, and heavy tails of near-empty candidates);
//   * clustered per-candidate histogram shapes: candidates in the same
//     cluster share a prototype distribution with per-candidate noise,
//     so targets have genuine near-matches at graded distances;
//   * planted special candidates (a high-selectivity hub "ORD" analogue
//     and a rare-but-matching "ATW" analogue for the FLIGHTS queries).
//
// Every attribute is generated from either a marginal distribution or a
// per-parent-value conditional (a tiny Bayes net), with all randomness
// seeded. Rows are i.i.d., hence exchangeable: a sequential scan is a
// uniform sample, exactly the property the paper's shuffle preprocessing
// establishes for real data.

#ifndef FASTMATCH_WORKLOAD_GENERATOR_H_
#define FASTMATCH_WORKLOAD_GENERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "core/histogram.h"
#include "storage/column_store.h"
#include "util/random.h"

namespace fastmatch {

/// \brief A generated dataset plus the planted structure tests and
/// benchmarks refer to.
struct SyntheticDataset {
  std::string name;
  std::shared_ptr<ColumnStore> store;
  /// FLIGHTS: the high-selectivity hub candidate (the "ORD" analogue).
  Value hub_candidate = 0;
  /// FLIGHTS: the low-selectivity matching candidate ("ATW" analogue).
  Value rare_candidate = 0;
};

/// FLIGHTS-like: 7 attributes, Z = Origin(347);
/// X in {DepartureHour(24), DayOfWeek(7), Dest(351)}.
SyntheticDataset MakeFlightsLike(int64_t rows, uint64_t seed);

/// TAXI-like: 7 attributes, Z = Location(7641) with > 3000 near-empty
/// candidates; X in {HourOfDay(24), MonthOfYear(12)}.
SyntheticDataset MakeTaxiLike(int64_t rows, uint64_t seed);

/// POLICE-like: 10 attributes, Z in {RoadID(210), Violation(2110)};
/// X in {ContrabandFound(2), OfficerRace(5), DriverGender(2)}.
SyntheticDataset MakePoliceLike(int64_t rows, uint64_t seed);

// ------------------------------------------------------------------
// Generator building blocks, exposed for tests and custom workloads.

/// \brief Log-normal weights: exp(sigma * N(0,1)) per item.
std::vector<double> LogNormalWeights(int n, double sigma, Rng* rng);

/// \brief `num` prototype distributions over vx bins, each normalized
/// log-normal with the given spread (larger = peakier shapes).
std::vector<Distribution> MakePrototypes(int num, int vx, double spread,
                                         Rng* rng);

/// \brief `num` prototypes with a deterministic distance floor: prototype
/// c puts `peak_mass` on bin (c * stride mod vx) and spreads the rest
/// log-normally. Any two prototypes with distinct peak bins are at l1
/// distance >= 2 * (peak_mass - 1/vx) - ..., and every prototype is at
/// least ~2 * (peak_mass - 1/vx) from uniform. Used so that "stranger"
/// candidates are provably far from the planted winner clusters, which
/// keeps their stage-2 sample targets small (see the note in
/// generator.cc).
std::vector<Distribution> PeakedPrototypes(int num, int vx, double peak_mass,
                                           Rng* rng);

/// \brief Per-candidate conditionals: candidate i's distribution is its
/// cluster's prototype perturbed bin-wise by exp(noise * N(0,1)).
std::vector<Distribution> MakeConditionals(
    const std::vector<int>& cluster_of,
    const std::vector<Distribution>& prototypes, double noise, Rng* rng);

/// \brief One attribute of the generative model.
struct GenAttr {
  std::string name;
  uint32_t cardinality = 0;
  /// Index of the parent attribute, or -1 for a marginal attribute.
  int parent = -1;
  /// parent == -1: weights over [0, cardinality).
  std::vector<double> marginal;
  /// parent >= 0: conditional distribution per parent value.
  std::vector<Distribution> conditional;
};

/// \brief Samples `rows` i.i.d. rows from the model (parents must precede
/// children in the vector) and materializes a column store.
std::shared_ptr<ColumnStore> GenerateRows(const std::string& name,
                                          const std::vector<GenAttr>& attrs,
                                          int64_t rows, Rng* rng);

}  // namespace fastmatch

#endif  // FASTMATCH_WORKLOAD_GENERATOR_H_
