#include "workload/queries.h"

#include "core/target.h"

namespace fastmatch {

std::vector<PaperQuery> PaperQueries() {
  using T = PaperQuery::Target;
  return {
      {"flights-q1", "flights", "Origin", "DepartureHour", 10,
       T::kHubCandidate},
      {"flights-q2", "flights", "Origin", "DepartureHour", 10,
       T::kRareCandidate},
      {"flights-q3", "flights", "Origin", "DayOfWeek", 5, T::kExplicitQ3},
      {"flights-q4", "flights", "Origin", "Dest", 10, T::kClosestToUniform},
      {"taxi-q1", "taxi", "Location", "HourOfDay", 10, T::kClosestToUniform},
      {"taxi-q2", "taxi", "Location", "MonthOfYear", 10,
       T::kClosestToUniform},
      {"police-q1", "police", "RoadID", "ContrabandFound", 10,
       T::kClosestToUniform},
      {"police-q2", "police", "RoadID", "OfficerRace", 10,
       T::kClosestToUniform},
      {"police-q3", "police", "Violation", "DriverGender", 5,
       T::kClosestToUniform},
  };
}

Result<PreparedQuery> PrepareQuery(const SyntheticDataset& ds,
                                   const PaperQuery& spec,
                                   const HistSimParams& params,
                                   std::shared_ptr<const BitmapIndex> index) {
  if (ds.store == nullptr) return Status::InvalidArgument("dataset not built");
  PreparedQuery out;
  out.spec = spec;
  out.bound.store = ds.store;
  out.bound.params = params;

  FASTMATCH_ASSIGN_OR_RETURN(out.bound.z_attr,
                             ds.store->schema().FindAttribute(spec.z_attr));
  FASTMATCH_ASSIGN_OR_RETURN(int x_attr,
                             ds.store->schema().FindAttribute(spec.x_attr));
  out.bound.x_attrs = {x_attr};
  out.bound.params.k = spec.k;

  FASTMATCH_ASSIGN_OR_RETURN(
      out.exact,
      ComputeExactCounts(*ds.store, out.bound.z_attr, out.bound.x_attrs));

  TargetSpec target_spec;
  switch (spec.target) {
    case PaperQuery::Target::kHubCandidate:
      target_spec = TargetSpec::Candidate(ds.hub_candidate);
      break;
    case PaperQuery::Target::kRareCandidate:
      target_spec = TargetSpec::Candidate(ds.rare_candidate);
      break;
    case PaperQuery::Target::kExplicitQ3:
      target_spec = TargetSpec::Explicit(
          {0.25, 0.125, 0.125, 0.125, 0.125, 0.125, 0.125});
      break;
    case PaperQuery::Target::kClosestToUniform:
      target_spec = TargetSpec::ClosestToUniform();
      break;
  }
  FASTMATCH_ASSIGN_OR_RETURN(
      out.bound.target,
      ResolveTarget(target_spec, out.exact, out.bound.params.metric));

  if (index == nullptr) {
    FASTMATCH_ASSIGN_OR_RETURN(auto built,
                               BitmapIndex::Build(*ds.store, out.bound.z_attr));
    out.bound.z_index = std::move(built);
  } else {
    out.bound.z_index = std::move(index);
  }

  out.truth = MakeTruth(out, out.bound.params);
  return out;
}

GroundTruth MakeTruth(const PreparedQuery& q, const HistSimParams& params) {
  return ComputeGroundTruth(q.exact, q.bound.target, params.metric,
                            params.sigma, params.k > 0 ? params.k : q.spec.k);
}

}  // namespace fastmatch
