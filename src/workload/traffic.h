// Multi-query traffic generation: batches of bound queries standing in
// for concurrent dashboard users probing one store.
//
// The paper's workload is a single interactive user; the ROADMAP's is
// heavy traffic from many. This module bridges them: it stamps out N
// BoundQuerys over one (store, z_attr, x_attrs) triple whose targets are
// either identical (the pure shared-scan regime: N users asking the same
// question) or drawn from the store's own per-candidate histograms
// ("find candidates similar to this one" — distinct work per user, still
// amortizable because every query marks blocks of the same relation).

#ifndef FASTMATCH_WORKLOAD_TRAFFIC_H_
#define FASTMATCH_WORKLOAD_TRAFFIC_H_

#include <memory>
#include <vector>

#include "engine/executor.h"
#include "index/bitmap_index.h"
#include "storage/column_store.h"
#include "util/result.h"

namespace fastmatch {

/// Traffic shape knobs.
struct TrafficOptions {
  int num_queries = 8;
  /// Base algorithm parameters applied to every query.
  HistSimParams params;
  /// When true, every query gets the same target distribution (uniform):
  /// the pure shared-scan case. Otherwise each query targets the exact
  /// histogram of a randomly drawn candidate.
  bool identical_targets = false;
  /// Seeds the target draws, and stamps distinct per-query params.seed
  /// values. Note: params.seed only drives scan-start randomness when a
  /// query is run individually through RunQuery; the batch executor uses
  /// one shared cursor seeded by BatchOptions.seed for the whole batch.
  uint64_t seed = 1;
};

/// \brief Builds a batch of `options.num_queries` engine-ready queries
/// over `store`, all on (z_attr, x_attrs), sharing `index` (which may be
/// null: the batch executor then degrades to sequential consumption).
/// Candidate-histogram targets come from one exact-count scan
/// (preprocessing, like index construction).
Result<std::vector<BoundQuery>> MakeQueryBatch(
    std::shared_ptr<const ColumnStore> store,
    std::shared_ptr<const BitmapIndex> index, int z_attr,
    std::vector<int> x_attrs, const TrafficOptions& options);

/// \brief One store's query population within a multi-store stream.
struct StoreTraffic {
  std::shared_ptr<const ColumnStore> store;
  /// May be null; the batch executor then scans sequentially.
  std::shared_ptr<const BitmapIndex> index;
  int z_attr = -1;
  std::vector<int> x_attrs;
  /// Relative share of arrivals routed to this store (need not sum
  /// to 1 across stores; must be positive).
  double weight = 1.0;
};

/// \brief Shape of an open-loop multi-store arrival stream.
struct TrafficStreamOptions {
  /// Total arrivals across all stores.
  int num_queries = 64;
  /// Mean of the exponential inter-arrival gap (Poisson arrivals); the
  /// offered load is num_stores-independent: one merged clock.
  double mean_interarrival_seconds = 0.001;
  /// Base algorithm parameters applied to every query.
  HistSimParams params;
  /// See TrafficOptions::identical_targets.
  bool identical_targets = false;
  /// Seeds store choice, arrival gaps, per-store target draws, and the
  /// lifecycle stamps below.
  uint64_t seed = 1;

  /// Lifecycle-bearing traffic (the service tier's adversarial diet).
  /// Fraction of arrivals carrying a queue deadline of
  /// `deadline_seconds`; the rest have none.
  double deadline_fraction = 0;
  /// Queue-time budget stamped on deadline-bearing arrivals.
  double deadline_seconds = 0.01;
  /// Fraction of arrivals whose issuer walks away: the query is
  /// cancelled `mean_cancel_delay_seconds` (exponentially distributed)
  /// after its arrival instant.
  double cancel_fraction = 0;
  /// Mean of the exponential submit-to-cancel delay.
  double mean_cancel_delay_seconds = 0.005;
};

/// \brief One timed arrival of the stream.
struct Arrival {
  /// Offset from stream start at which the query arrives (open loop:
  /// senders do not wait for earlier queries to finish).
  double at_seconds = 0;
  BoundQuery query;
  /// Queue deadline to pass to Submit; 0 means none.
  double deadline_seconds = 0;
  /// Offset from stream start at which the issuer cancels the query
  /// (always > at_seconds); negative means never.
  double cancel_at_seconds = -1;
};

/// \brief Builds an open-loop arrival stream over several stores: each
/// arrival picks a store with probability proportional to its weight and
/// carries an engine-ready query for it (targets drawn as in
/// MakeQueryBatch); inter-arrival gaps are exponential. Arrivals are
/// sorted by time. This is the service-tier scheduler's traffic model:
/// concurrent users probing different relations at independent times.
Result<std::vector<Arrival>> MakeTrafficStream(
    const std::vector<StoreTraffic>& stores,
    const TrafficStreamOptions& options);

}  // namespace fastmatch

#endif  // FASTMATCH_WORKLOAD_TRAFFIC_H_
