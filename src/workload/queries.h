// The paper's evaluation queries (Table 3) and query binding helpers.

#ifndef FASTMATCH_WORKLOAD_QUERIES_H_
#define FASTMATCH_WORKLOAD_QUERIES_H_

#include <string>
#include <vector>

#include "core/verify.h"
#include "engine/executor.h"
#include "workload/generator.h"

namespace fastmatch {

/// \brief One query template of Table 3.
struct PaperQuery {
  std::string id;       // e.g. "flights-q1"
  std::string dataset;  // "flights" | "taxi" | "police"
  std::string z_attr;   // candidate attribute
  std::string x_attr;   // grouping attribute
  int k = 10;
  enum class Target {
    kHubCandidate,      // the dataset's planted hub ("ORD")
    kRareCandidate,     // the dataset's planted rare match ("ATW")
    kExplicitQ3,        // [0.25, 0.125 x 6] (FLIGHTS-q3)
    kClosestToUniform,  // Table 3's default
  };
  Target target = Target::kClosestToUniform;
};

/// \brief All nine queries of Table 3 with the paper's k values.
std::vector<PaperQuery> PaperQueries();

/// \brief A query bound to data: engine-ready plus ground-truth state.
struct PreparedQuery {
  PaperQuery spec;
  BoundQuery bound;
  CountMatrix exact;  // exact counts for the (Z, X) template
  GroundTruth truth;  // under bound.params
};

/// \brief Resolves attribute names, computes exact counts, resolves the
/// target, builds the bitmap index (when `index` is null), and computes
/// ground truth under `params`.
Result<PreparedQuery> PrepareQuery(const SyntheticDataset& ds,
                                   const PaperQuery& spec,
                                   const HistSimParams& params,
                                   std::shared_ptr<const BitmapIndex> index);

/// \brief Recomputes ground truth after parameter changes (sigma, k,
/// metric) without rescanning.
GroundTruth MakeTruth(const PreparedQuery& q, const HistSimParams& params);

}  // namespace fastmatch

#endif  // FASTMATCH_WORKLOAD_QUERIES_H_
