#include "workload/generator.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace fastmatch {

std::vector<double> LogNormalWeights(int n, double sigma, Rng* rng) {
  std::vector<double> w(static_cast<size_t>(n));
  for (auto& x : w) x = std::exp(sigma * rng->NextGaussian());
  return w;
}

std::vector<Distribution> MakePrototypes(int num, int vx, double spread,
                                         Rng* rng) {
  std::vector<Distribution> protos;
  protos.reserve(static_cast<size_t>(num));
  for (int p = 0; p < num; ++p) {
    protos.push_back(Normalize(LogNormalWeights(vx, spread, rng)));
  }
  return protos;
}

std::vector<Distribution> PeakedPrototypes(int num, int vx, double peak_mass,
                                           Rng* rng) {
  FASTMATCH_CHECK_GT(vx, 1);
  FASTMATCH_CHECK_GT(peak_mass, 0.0);
  FASTMATCH_CHECK_LT(peak_mass, 1.0);
  std::vector<Distribution> protos;
  protos.reserve(static_cast<size_t>(num));
  for (int c = 0; c < num; ++c) {
    Distribution rest = Normalize(LogNormalWeights(vx, 0.6, rng));
    Distribution proto(static_cast<size_t>(vx));
    // Distinct peak bins while num <= vx; same-peak collisions beyond
    // that only make two *stranger* clusters close to each other, which
    // is harmless.
    const int peak = c % vx;
    for (int j = 0; j < vx; ++j) {
      proto[static_cast<size_t>(j)] =
          (1.0 - peak_mass) * rest[static_cast<size_t>(j)];
    }
    proto[static_cast<size_t>(peak)] += peak_mass;
    protos.push_back(std::move(proto));
  }
  return protos;
}

std::vector<Distribution> MakeConditionals(
    const std::vector<int>& cluster_of,
    const std::vector<Distribution>& prototypes, double noise, Rng* rng) {
  std::vector<Distribution> cond;
  cond.reserve(cluster_of.size());
  for (int c : cluster_of) {
    FASTMATCH_CHECK_GE(c, 0);
    FASTMATCH_CHECK_LT(static_cast<size_t>(c), prototypes.size());
    const Distribution& proto = prototypes[static_cast<size_t>(c)];
    std::vector<double> w(proto.size());
    for (size_t j = 0; j < proto.size(); ++j) {
      w[j] = proto[j] * std::exp(noise * rng->NextGaussian());
    }
    cond.push_back(Normalize(w));
  }
  return cond;
}

std::shared_ptr<ColumnStore> GenerateRows(const std::string& name,
                                          const std::vector<GenAttr>& attrs,
                                          int64_t rows, Rng* rng) {
  (void)name;
  // Build alias samplers up front: one per marginal attribute, one per
  // parent value for conditionals.
  struct Compiled {
    int parent = -1;
    std::unique_ptr<AliasSampler> marginal;
    std::vector<AliasSampler> conditional;
  };
  std::vector<Compiled> compiled(attrs.size());
  std::vector<AttributeSpec> specs;
  specs.reserve(attrs.size());
  for (size_t a = 0; a < attrs.size(); ++a) {
    const GenAttr& g = attrs[a];
    specs.push_back(AttributeSpec{g.name, g.cardinality});
    compiled[a].parent = g.parent;
    if (g.parent < 0) {
      FASTMATCH_CHECK_EQ(g.marginal.size(), g.cardinality);
      compiled[a].marginal = std::make_unique<AliasSampler>(g.marginal);
    } else {
      FASTMATCH_CHECK_LT(static_cast<size_t>(g.parent), a)
          << "parents must precede children";
      FASTMATCH_CHECK_EQ(g.conditional.size(),
                         attrs[static_cast<size_t>(g.parent)].cardinality);
      compiled[a].conditional.reserve(g.conditional.size());
      for (const auto& dist : g.conditional) {
        FASTMATCH_CHECK_EQ(dist.size(), g.cardinality);
        compiled[a].conditional.emplace_back(dist);
      }
    }
  }

  std::vector<std::vector<Value>> columns(attrs.size());
  for (auto& col : columns) col.reserve(static_cast<size_t>(rows));

  std::vector<Value> row(attrs.size());
  for (int64_t r = 0; r < rows; ++r) {
    for (size_t a = 0; a < attrs.size(); ++a) {
      const Compiled& c = compiled[a];
      Value v;
      if (c.parent < 0) {
        v = c.marginal->Sample(rng);
      } else {
        v = c.conditional[row[static_cast<size_t>(c.parent)]].Sample(rng);
      }
      row[a] = v;
      columns[a].push_back(v);
    }
  }

  auto store =
      ColumnStore::FromColumns(Schema(std::move(specs)), std::move(columns));
  FASTMATCH_CHECK(store.ok()) << store.status().ToString();
  return std::move(store).value();
}

namespace {

/// Round-robin cluster assignment with a seeded shuffle, so cluster mates
/// are scattered across the id space.
std::vector<int> RandomClusters(int n, int num_clusters, Rng* rng) {
  std::vector<int> cluster_of(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) cluster_of[static_cast<size_t>(i)] = i % num_clusters;
  rng->Shuffle(&cluster_of);
  return cluster_of;
}

}  // namespace

namespace {

/// One candidate's distribution: its cluster prototype perturbed bin-wise.
Distribution PerturbedFrom(const Distribution& proto, double noise,
                           Rng* rng) {
  std::vector<double> w(proto.size());
  for (size_t j = 0; j < proto.size(); ++j) {
    w[j] = proto[j] * std::exp(noise * rng->NextGaussian());
  }
  return Normalize(w);
}

/// Near-uniform prototype with mild structure.
Distribution NearUniform(int vx, double noise, Rng* rng) {
  return PerturbedFrom(Distribution(static_cast<size_t>(vx), 1.0 / vx),
                       noise, rng);
}

}  // namespace

// ---------------------------------------------------------------------------
// A note on planted gap structure.
//
// HistSim's stage-2 sample complexity for a candidate near the top-k
// boundary is ~ 2 |VX| log2 / gap^2, where `gap` is that candidate's true
// distance to the split point (floored at eps/2). At the paper's scale
// every candidate carries ~N/|VZ| = millions of tuples, so even boundary
// gaps of a few hundredths are resolvable from a small fraction of the
// data. At laptop scale (10^6..10^7 rows) the same absolute sample counts
// would exceed the candidates' total tuple counts; a smooth distance
// continuum around the boundary therefore forces exhaustion (degenerating
// every approach to a scan, paper Section 5.4's pathology). To evaluate
// the system in the paper's *operating regime*, each query's winner set
// is planted as a tight cluster of exactly the right size with all other
// candidates far from the target: the boundary gap (>~0.25 l1) is then
// resolvable within the per-candidate budgets, like it was for the
// paper's real queries at 450-680M rows.
// ---------------------------------------------------------------------------

SyntheticDataset MakeFlightsLike(int64_t rows, uint64_t seed) {
  Rng rng(seed);
  constexpr int kOrigins = 347;
  constexpr int kDests = 351;
  constexpr int kHours = 24;
  constexpr int kDow = 7;

  SyntheticDataset ds;
  ds.name = "flights";
  ds.hub_candidate = 0;
  ds.rare_candidate = 300;

  // Planted groups (ids chosen to be disjoint):
  //   q1 winners: hub 0 + mates 7,14,...,63 (9 ids), high selectivity;
  //   q2 winners: rare block 300..309 (10 ids), ~1.3% each;
  //   q3 winners: 30,60,90,120,150 (5 ids), DayOfWeek close to the
  //               explicit [.25, .125 x 6] target.
  std::vector<int> q1_mates;
  for (int i = 1; i <= 9; ++i) q1_mates.push_back(i * 7);
  std::vector<int> q3_ids = {30, 60, 90, 120, 150};

  std::vector<double> origin_w = LogNormalWeights(kOrigins, 1.2, &rng);
  {
    double total = 0;
    for (double w : origin_w) total += w;
    origin_w[ds.hub_candidate] = total * 0.06;  // the "ORD" analogue
    for (int id : q1_mates) origin_w[static_cast<size_t>(id)] = total * 0.025;
    for (int i = 300; i < 310; ++i) {
      origin_w[static_cast<size_t>(i)] = total * 0.013;
    }
    for (int id : q3_ids) origin_w[static_cast<size_t>(id)] = total * 0.010;
  }

  // --- DepartureHour | Origin: generic clustered shapes, then overwrite
  // the q1 winner group (tight around prototype 0) and the q2 rare block
  // (tight around prototype 9).
  std::vector<Distribution> hour_protos =
      PeakedPrototypes(10, kHours, 0.5, &rng);
  std::vector<int> hour_clusters(kOrigins);
  for (int i = 0; i < kOrigins; ++i) {
    hour_clusters[static_cast<size_t>(i)] = 1 + static_cast<int>(rng.Uniform(8));
  }
  auto hour_cond = MakeConditionals(hour_clusters, hour_protos, 0.25, &rng);
  hour_cond[ds.hub_candidate] = PerturbedFrom(hour_protos[0], 0.05, &rng);
  for (int id : q1_mates) {
    hour_cond[static_cast<size_t>(id)] = PerturbedFrom(hour_protos[0], 0.07, &rng);
  }
  for (int i = 300; i < 310; ++i) {
    hour_cond[static_cast<size_t>(i)] = PerturbedFrom(hour_protos[9], 0.09, &rng);
  }

  // --- DayOfWeek | Origin: prototype 3 is exactly the q3 target; only
  // the five planted ids sit near it.
  std::vector<Distribution> dow_protos = PeakedPrototypes(6, kDow, 0.5, &rng);
  dow_protos[3] = Distribution{0.25, 0.125, 0.125, 0.125, 0.125, 0.125, 0.125};
  std::vector<int> dow_clusters(kOrigins);
  for (int i = 0; i < kOrigins; ++i) {
    int c = static_cast<int>(rng.Uniform(5));
    dow_clusters[static_cast<size_t>(i)] = c >= 3 ? c + 1 : c;  // skip 3
  }
  auto dow_cond = MakeConditionals(dow_clusters, dow_protos, 0.12, &rng);
  for (int id : q3_ids) {
    dow_cond[static_cast<size_t>(id)] = PerturbedFrom(dow_protos[3], 0.05, &rng);
  }

  // --- Dest | Origin: high-cardinality grouping attribute (q4). Left as
  // a natural continuum: at |VX| = 351 the reconstruction bound needs
  // ~314k samples per winner, which at laptop scale exceeds the winners'
  // tuple counts, so q4 exercises the exhaustion path and shows the
  // smallest speedup -- matching its role as the slowest flights query in
  // the paper.
  std::vector<int> dest_clusters = RandomClusters(kOrigins, 12, &rng);
  std::vector<Distribution> dest_protos = MakePrototypes(12, kDests, 0.8, &rng);

  std::vector<GenAttr> attrs(7);
  attrs[0] = {"Origin", kOrigins, -1, std::move(origin_w), {}};
  attrs[1] = {"Dest", kDests, 0, {},
              MakeConditionals(dest_clusters, dest_protos, 0.2, &rng)};
  attrs[2] = {"DepartureHour", kHours, 0, {}, std::move(hour_cond)};
  attrs[3] = {"DayOfWeek", kDow, 0, {}, std::move(dow_cond)};
  attrs[4] = {"DayOfMonth", 31, -1, LogNormalWeights(31, 0.2, &rng), {}};
  attrs[5] = {"DepDelay", 12, -1, LogNormalWeights(12, 0.8, &rng), {}};
  attrs[6] = {"ArrDelay", 12, -1, LogNormalWeights(12, 0.8, &rng), {}};

  ds.store = GenerateRows(ds.name, attrs, rows, &rng);
  return ds;
}

SyntheticDataset MakeTaxiLike(int64_t rows, uint64_t seed) {
  Rng rng(seed);
  constexpr int kLocations = 7641;
  constexpr int kHours = 24;
  constexpr int kMonths = 12;

  SyntheticDataset ds;
  ds.name = "taxi";

  // --- Location selectivities, five tiers (fractions of total weight):
  //   60 hubs       0.6-0.8% each, skewed histogram shapes
  //   10 matchers   1.2% each, tight near-uniform cluster: the
  //                 closest-to-uniform winners for both taxi queries,
  //                 sized for stage-3 reconstruction without exhaustion
  //   300 mid       log-uniform straddling sigma = 0.0008
  //   3271 low      a few hundred tuples (pruned in stage 1)
  //   4000 near-empty (< 10 tuples: the paper's pruning stress)
  std::vector<double> loc_w(kLocations, 0.0);
  std::vector<int> ids(kLocations);
  for (int i = 0; i < kLocations; ++i) ids[static_cast<size_t>(i)] = i;
  rng.Shuffle(&ids);
  size_t pos = 0;
  std::vector<int> hubs, matchers;
  for (int i = 0; i < 60; ++i) {
    loc_w[static_cast<size_t>(ids[pos])] = i < 12 ? 0.008 : 0.006;
    hubs.push_back(ids[pos++]);
  }
  for (int i = 0; i < 10; ++i) {
    loc_w[static_cast<size_t>(ids[pos])] = 0.012;
    matchers.push_back(ids[pos++]);
  }
  for (int i = 0; i < 300; ++i) {
    // log-uniform in [0.5, 3] x sigma
    const double f =
        0.0008 * 0.5 * std::pow(6.0, rng.NextDouble());
    loc_w[static_cast<size_t>(ids[pos++])] = f;
  }
  for (int i = 0; i < 3271; ++i) {
    loc_w[static_cast<size_t>(ids[pos++])] = 0.00004;
  }
  for (int i = 0; i < 4000; ++i) {
    loc_w[static_cast<size_t>(ids[pos++])] = 0.00000025;
  }
  FASTMATCH_CHECK_EQ(pos, static_cast<size_t>(kLocations));
  ds.hub_candidate = static_cast<Value>(matchers[0]);

  // --- HourOfDay | Location: skewed prototypes for everyone, then the
  // matcher tier overwritten as a tight near-uniform cluster (the planted
  // winner group; everything else is far from uniform).
  std::vector<Distribution> hour_protos =
      PeakedPrototypes(12, kHours, 0.5, &rng);
  const Distribution hour_uniformish = NearUniform(kHours, 0.10, &rng);
  std::vector<int> hour_clusters(kLocations);
  for (int i = 0; i < kLocations; ++i) {
    hour_clusters[static_cast<size_t>(i)] = static_cast<int>(rng.Uniform(12));
  }
  auto hour_cond = MakeConditionals(hour_clusters, hour_protos, 0.2, &rng);
  for (int id : matchers) {
    hour_cond[static_cast<size_t>(id)] =
        PerturbedFrom(hour_uniformish, 0.05, &rng);
  }

  // --- MonthOfYear | Location: same structure.
  std::vector<Distribution> month_protos =
      PeakedPrototypes(9, kMonths, 0.5, &rng);
  const Distribution month_uniformish = NearUniform(kMonths, 0.08, &rng);
  std::vector<int> month_clusters(kLocations);
  for (int i = 0; i < kLocations; ++i) {
    month_clusters[static_cast<size_t>(i)] = static_cast<int>(rng.Uniform(9));
  }
  auto month_cond = MakeConditionals(month_clusters, month_protos, 0.15, &rng);
  for (int id : matchers) {
    month_cond[static_cast<size_t>(id)] =
        PerturbedFrom(month_uniformish, 0.04, &rng);
  }

  std::vector<GenAttr> attrs(7);
  attrs[0] = {"Location", kLocations, -1, std::move(loc_w), {}};
  attrs[1] = {"HourOfDay", kHours, 0, {}, std::move(hour_cond)};
  attrs[2] = {"MonthOfYear", kMonths, 0, {}, std::move(month_cond)};
  attrs[3] = {"DayOfWeek", 7, -1, LogNormalWeights(7, 0.15, &rng), {}};
  attrs[4] = {"MinuteBucket", 60, -1, LogNormalWeights(60, 0.1, &rng), {}};
  attrs[5] = {"PassengerCount", 9, -1, LogNormalWeights(9, 1.0, &rng), {}};
  attrs[6] = {"PassengerBucket", 4, -1, LogNormalWeights(4, 0.7, &rng), {}};

  ds.store = GenerateRows(ds.name, attrs, rows, &rng);
  return ds;
}

SyntheticDataset MakePoliceLike(int64_t rows, uint64_t seed) {
  Rng rng(seed);
  constexpr int kRoads = 210;
  constexpr int kViolations = 2110;

  SyntheticDataset ds;
  ds.name = "police";

  // q1/q2 winners: ten roads boosted to ~2% selectivity whose
  // ContrabandFound and OfficerRace shapes form tight clusters closest to
  // uniform; q3 winners: five violations at ~0.55% with DriverGender
  // balance exactly 0.5 and ~1.2% selectivity.
  std::vector<int> winner_roads = {5, 25, 45, 65, 85, 105, 125, 145, 165, 185};
  std::vector<int> winner_violations = {100, 500, 900, 1300, 1700};
  ds.hub_candidate = static_cast<Value>(winner_roads[0]);

  std::vector<double> road_w = LogNormalWeights(kRoads, 1.0, &rng);
  {
    double total = 0;
    for (double w : road_w) total += w;
    for (int id : winner_roads) road_w[static_cast<size_t>(id)] = total * 0.020;
  }

  std::vector<double> violation_w = ZipfWeights(kViolations, 1.05);
  {
    Rng shuffle_rng(seed ^ 0x5bd1e995u);
    shuffle_rng.Shuffle(&violation_w);
    double total = 0;
    for (double w : violation_w) total += w;
    for (int id : winner_violations) {
      violation_w[static_cast<size_t>(id)] = total * 0.012;
    }
  }

  // --- ContrabandFound | RoadID, |VX| = 2. Winner cluster at hit rate
  // 0.30 (closest to uniform); everyone else between 0.02 and 0.15, so
  // the top-10 boundary gap is ~2 * 0.15 = 0.3 in l1.
  std::vector<Distribution> contra_protos;
  for (int c = 0; c < 8; ++c) {
    const double p = 0.02 + 0.13 * c / 7.0;
    contra_protos.push_back(Distribution{p, 1.0 - p});
  }
  std::vector<int> contra_clusters = RandomClusters(kRoads, 8, &rng);
  auto contra_cond = MakeConditionals(contra_clusters, contra_protos, 0.12, &rng);
  for (int id : winner_roads) {
    const double p = 0.30 + 0.01 * rng.NextDouble();
    contra_cond[static_cast<size_t>(id)] = Distribution{p, 1.0 - p};
  }

  // --- OfficerRace | RoadID, |VX| = 5: skewed clusters, winners near
  // uniform.
  std::vector<Distribution> race_protos = PeakedPrototypes(7, 5, 0.6, &rng);
  const Distribution race_uniformish = NearUniform(5, 0.08, &rng);
  std::vector<int> race_clusters = RandomClusters(kRoads, 7, &rng);
  auto race_cond = MakeConditionals(race_clusters, race_protos, 0.2, &rng);
  for (int id : winner_roads) {
    race_cond[static_cast<size_t>(id)] = PerturbedFrom(race_uniformish, 0.05, &rng);
  }

  // --- DriverGender | Violation, |VX| = 2: clusters at p in
  // {0.68, 0.74, ..., 0.92}; the five winners at p ~ 0.5. With only two
  // bins, the per-candidate noise must stay well below the cluster
  // spacing or the top-k boundary blurs into a continuum.
  std::vector<Distribution> gender_protos;
  for (int c = 0; c < 5; ++c) {
    const double p = 0.68 + 0.06 * c;
    gender_protos.push_back(Distribution{p, 1.0 - p});
  }
  std::vector<int> gender_clusters = RandomClusters(kViolations, 5, &rng);
  auto gender_cond =
      MakeConditionals(gender_clusters, gender_protos, 0.025, &rng);
  for (int id : winner_violations) {
    const double p = 0.495 + 0.01 * rng.NextDouble();
    gender_cond[static_cast<size_t>(id)] = Distribution{p, 1.0 - p};
  }

  std::vector<GenAttr> attrs(10);
  attrs[0] = {"RoadID", kRoads, -1, std::move(road_w), {}};
  attrs[1] = {"Violation", kViolations, -1, std::move(violation_w), {}};
  attrs[2] = {"ContrabandFound", 2, 0, {}, std::move(contra_cond)};
  attrs[3] = {"OfficerRace", 5, 0, {}, std::move(race_cond)};
  attrs[4] = {"DriverGender", 2, 1, {}, std::move(gender_cond)};
  attrs[5] = {"County", 39, -1, LogNormalWeights(39, 0.8, &rng), {}};
  attrs[6] = {"OfficerGender", 2, -1, {0.85, 0.15}, {}};
  attrs[7] = {"DriverRace", 6, -1, LogNormalWeights(6, 0.9, &rng), {}};
  attrs[8] = {"StopOutcome", 8, -1, LogNormalWeights(8, 1.0, &rng), {}};
  attrs[9] = {"SearchConducted", 2, -1, {0.08, 0.92}, {}};

  ds.store = GenerateRows(ds.name, attrs, rows, &rng);
  return ds;
}

}  // namespace fastmatch
