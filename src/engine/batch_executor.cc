#include "engine/batch_executor.h"

#include <algorithm>
#include <utility>

#include "engine/block_policy.h"
#include "util/logging.h"
#include "util/random.h"

namespace fastmatch {

BatchExecutor::BatchExecutor(std::shared_ptr<const ColumnStore> store,
                             StorePin pin, BatchOptions options)
    : store_(std::move(store)),
      options_(std::move(options)),
      pin_(pin),
      num_blocks_(pin_.num_blocks),
      consumed_(num_blocks_) {
  // Degenerate partition list and segment table: the whole store at
  // offset 0. The sharded factory overwrites both before any query is
  // bound.
  Partition whole;
  whole.store = store_;
  whole.pin = pin_;
  parts_.push_back(std::move(whole));
  ScanSegment all;
  all.logical_begin = 0;
  all.part = 0;
  all.local_begin = 0;
  all.blocks = num_blocks_;
  segments_.push_back(all);
}

Status BatchExecutor::ValidateBatch(const std::vector<BoundQuery>& queries,
                                    const BatchOptions& options) {
  if (queries.empty()) {
    return Status::InvalidArgument("batch has no queries");
  }
  if (options.num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  if (options.chunk_blocks < 1) {
    return Status::InvalidArgument("chunk_blocks must be >= 1");
  }
  const std::shared_ptr<const ColumnStore>& store = queries.front().store;
  if (store == nullptr) {
    return Status::InvalidArgument("query has no store");
  }
  for (const BoundQuery& q : queries) {
    if (q.store.get() != store.get()) {
      return Status::InvalidArgument(
          "batch queries must share one ColumnStore");
    }
  }
  return Status::OK();
}

Status BatchExecutor::CheckResumeGeometry(const BatchOptions& options,
                                          const StorePin& pin) {
  if (pin.num_rows == 0) {
    return Status::FailedPrecondition("empty store");
  }
  if (options.resume.has_value()) {
    const ScanResume& resume = *options.resume;
    if (resume.consumed.size() != pin.num_blocks) {
      return Status::InvalidArgument(
          "resume consumed bitvector size does not match store block count");
    }
    if (resume.cursor < 0 || resume.cursor >= pin.num_blocks) {
      return Status::InvalidArgument("resume cursor out of range");
    }
  }
  return Status::OK();
}

Status BatchExecutor::Initialize(BatchExecutor* executor,
                                 const std::vector<BoundQuery>& queries) {
  if (executor->options_.resume.has_value()) {
    executor->consumed_ = executor->options_.resume->consumed;
    executor->consumed_blocks_ = executor->consumed_.Popcount();
    if (executor->consumed_blocks_ == executor->num_blocks_) {
      // Same condition Join() rejects: with no suffix left the machines
      // would "finish" instantly on zero samples and report fabricated
      // exact results.
      return Status::FailedPrecondition(
          "resume state has no unconsumed blocks; nothing to scan");
    }
  }
  for (const BoundQuery& q : queries) executor->AddQuery(q);
  if (executor->options_.resume.has_value() &&
      !executor->options_.resume->exhausted.empty()) {
    // Donor-scan exhaustion knowledge is per candidate of one template;
    // a multi-template resume has no well-defined recipient.
    if (executor->templates_.size() != 1) {
      return Status::InvalidArgument(
          "resume exhausted flags require a single-template batch");
    }
    TemplateState& ts = executor->templates_.front();
    if (executor->options_.resume->exhausted.size() != ts.exhausted.size()) {
      return Status::InvalidArgument(
          "resume exhausted flags do not match the template's candidate "
          "count");
    }
    ts.exhausted = executor->options_.resume->exhausted;
  }
  executor->stats_.num_templates =
      static_cast<int>(executor->templates_.size());
  executor->stats_.num_partitions = static_cast<int>(executor->parts_.size());
  return Status::OK();
}

Result<std::unique_ptr<BatchExecutor>> BatchExecutor::Create(
    const std::vector<BoundQuery>& queries, BatchOptions options) {
  FASTMATCH_RETURN_IF_ERROR(ValidateBatch(queries, options));
  for (const BoundQuery& q : queries) {
    if (q.partitions != nullptr) {
      return Status::InvalidArgument(
          "query carries a partition set; use ShardedBatchExecutor::Create");
    }
  }
  const std::shared_ptr<const ColumnStore>& store = queries.front().store;
  // Resolve the batch's pin BEFORE construction: a versioned resume
  // re-pins the donor's generation (the resumed scan runs in the
  // donor's block space even if the store has since grown); otherwise
  // pin the current generation.
  StorePin pin;
  if (options.resume.has_value() && options.resume->generation != 0) {
    FASTMATCH_ASSIGN_OR_RETURN(pin, store->PinAt(options.resume->generation));
  } else {
    pin = store->Pin();
  }
  FASTMATCH_RETURN_IF_ERROR(CheckResumeGeometry(options, pin));
  auto executor = std::unique_ptr<BatchExecutor>(
      new BatchExecutor(store, pin, std::move(options)));
  FASTMATCH_RETURN_IF_ERROR(Initialize(executor.get(), queries));
  return executor;
}

void BatchExecutor::AddQuery(const BoundQuery& query) {
  const size_t templates_before = templates_.size();
  QueryState qs(HistSimMachine(query.params, query.target));
  const Status status = BindQuery(query, &qs);
  if (!status.ok()) {
    qs.status = status;
    qs.active = false;
    // Drop a template created for a query that then failed binding
    // (index validation, machine Begin): it has no consumer, and its
    // existence must not change batch-level validation (the
    // single-template resume rule) or add per-chunk work.
    if (templates_.size() > templates_before) templates_.pop_back();
  }
  queries_.push_back(std::move(qs));
}

Status BatchExecutor::BindQuery(const BoundQuery& query, QueryState* qs) {
  if (query.x_attrs.empty()) {
    return Status::InvalidArgument("query has no x attributes");
  }
  size_t t = 0;
  for (; t < templates_.size(); ++t) {
    if (templates_[t].z_attr == query.z_attr &&
        templates_[t].x_attrs == query.x_attrs) {
      break;
    }
  }
  if (t == templates_.size()) {
    TemplateState ts;
    ts.z_attr = query.z_attr;
    ts.x_attrs = query.x_attrs;
    // One reader per partition; the degenerate single-partition list
    // makes this the whole-store reader of the unpartitioned path.
    // Each reader pins its partition's batch generation, so every block
    // read resolves against the batch's frozen geometry no matter how
    // the store grows mid-scan.
    for (const Partition& part : parts_) {
      FASTMATCH_ASSIGN_OR_RETURN(auto view,
                                 part.store->PinViewAt(part.pin.generation));
      FASTMATCH_ASSIGN_OR_RETURN(
          auto io, IoManager::Create(part.store, query.z_attr, query.x_attrs,
                                     std::move(view)));
      ts.ios.push_back(std::move(io));
    }
    const IoManager& domain = *ts.ios.front();
    ts.cum = CountMatrix(domain.num_candidates(), domain.num_groups());
    ts.exhausted.assign(domain.num_candidates(), false);
    ts.unmet_seen.assign(domain.num_candidates(), false);
    SizeShards(&ts);  // no-op before Start
    templates_.push_back(std::move(ts));
  }
  TemplateState& ts = templates_[t];
  // Validate every supplied index (not just the first bound one), so a
  // malformed index is rejected regardless of the query's batch position.
  // A block-count mismatch against the pin is NOT an error: an index
  // built at an older generation covers a PREFIX of the pinned blocks
  // (ReadChunk reads everything past index->num_rows() unconditionally —
  // the covered-prefix rule), and one built at a newer generation marks
  // a sound superset (a seam block's extra rows can only add bits).
  if (query.z_index != nullptr) {
    if (query.z_index->attribute() != query.z_attr) {
      return Status::InvalidArgument(
          "bitmap index was built for a different attribute");
    }
    if (ts.index == nullptr) ts.index = query.z_index;
  }
  // Density maps follow the same covered-prefix contract as bitmap
  // indexes (DensityMap::num_rows()), so a block-count mismatch is
  // likewise not an error.
  if (query.z_density != nullptr) {
    if (query.z_density->attribute() != query.z_attr) {
      return Status::InvalidArgument(
          "density map was built for a different attribute");
    }
    if (ts.density == nullptr) ts.density = query.z_density;
  }
  qs->tmpl = t;
  Stage1Prior prior;
  const Stage1Prior* prior_ptr = nullptr;
  // Merged warm-parts counts; declared at function scope because Begin
  // reads prior.counts synchronously (and copies when overlapping).
  CountMatrix merged_parts;
  if (!query.stage1_warm_parts.empty()) {
    if (partitions_ == nullptr) {
      return Status::InvalidArgument(
          "stage1_warm_parts requires a partitioned batch");
    }
    if (query.stage1_warm != nullptr) {
      return Status::InvalidArgument(
          "query carries both stage1_warm and stage1_warm_parts");
    }
    if (query.stage1_warm_parts.size() != parts_.size()) {
      return Status::InvalidArgument(
          "stage1_warm_parts size does not match the partition count");
    }
    // Generation guard: every partition snapshot must have been drawn
    // at that partition's pinned generation (0 = legacy/unversioned,
    // accepted as-is). One stale partition poisons the merge — the
    // merged prior's row positions would straddle generations — so any
    // mismatch drops the whole warm set and the query runs cold.
    bool stale = false;
    for (size_t p = 0; p < parts_.size(); ++p) {
      const std::shared_ptr<const Stage1Snapshot>& part =
          query.stage1_warm_parts[p];
      if (part != nullptr && part->scan.generation != 0 &&
          part->scan.generation != parts_[p].pin.generation) {
        stale = true;
        break;
      }
    }
    if (stale) ++stats_.stale_warm_dropped;
    const IoManager& domain = *ts.ios.front();
    merged_parts = CountMatrix(domain.num_candidates(), domain.num_groups());
    int64_t rows = 0;
    for (const std::shared_ptr<const Stage1Snapshot>& part :
         query.stage1_warm_parts) {
      if (part == nullptr) continue;  // partition without a warm sample
      if (part->counts.num_candidates() != domain.num_candidates() ||
          part->counts.num_groups() != domain.num_groups()) {
        return Status::InvalidArgument(
            "partition stage-1 snapshot does not match the sampling domain");
      }
      if (stale) continue;  // domain-checked but not consumed
      merged_parts.Merge(part->counts);
      rows += part->rows_drawn;
    }
    if (rows > 0) {
      // The union of per-partition scan prefixes occupies a fixed set
      // of positions of the pre-shuffled relation, so it is one uniform
      // without-replacement sample of size Σ rows_p — the stratified-
      // sampling argument (docs/PAPER_MAP.md). The partition-LOCAL
      // consumed maps don't translate into this scan's logical block
      // space, so the prior is conservatively marked overlapping: no
      // donor exhaustion flags are honored, and exactness is re-derived
      // from this scan's own window (the PR 5 overlap semantics) —
      // sound, merely forgoing an optimization. Disjoint partitions
      // with Σ rows_p == |relation| cover every row exactly once:
      // all_consumed completes the machine instantly with the exact
      // result.
      prior.counts = &merged_parts;
      prior.rows_drawn = rows;
      prior.overlapping = true;
      prior.all_consumed = rows >= pin_.num_rows;
      prior_ptr = &prior;
    }
  }
  // Generation guard for the whole-store warm start: the snapshot's own
  // scan generation and the caller's validation stamp
  // (stage1_warm_generation, set by the service tier after a cache hit
  // or passed revalidation) must both match the batch's pin — 0 means
  // legacy/unversioned and is accepted. A mismatch drops the warm start
  // (the query runs cold); it never silently serves a stale prior.
  bool warm_stale = false;
  if (query.stage1_warm != nullptr) {
    const uint64_t snapshot_gen = query.stage1_warm->scan.generation;
    const uint64_t effective_gen =
        std::max(snapshot_gen, query.stage1_warm_generation);
    if (effective_gen != 0 && effective_gen != pin_.generation) {
      warm_stale = true;
      ++stats_.stale_warm_dropped;
    }
  }
  if (query.stage1_warm != nullptr && !warm_stale) {
    const Stage1Snapshot& warm = *query.stage1_warm;
    prior.counts = &warm.counts;
    prior.rows_drawn = warm.rows_drawn;
    if (!warm.scan.exhausted.empty()) prior.exhausted = &warm.scan.exhausted;
    // A prior spanning the whole relation carries exact counts for every
    // candidate: the machine completes instantly without touching the
    // scan (handled below).
    prior.all_consumed = warm.rows_drawn >= pin_.num_rows;
    // Disjointness: when every block behind the prior is already in
    // this scan's consumed set (a resume from the snapshot's state, or
    // a join after the scan passed the prior's window), the remaining
    // scan can never revisit the prior's rows. Otherwise the machine
    // must treat the prior as overlapping: an exhaustion signal then
    // only certifies the scan window's counts, not prior + window.
    bool disjoint = warm.scan.consumed.size() == consumed_.size();
    if (disjoint) {
      const std::vector<uint64_t>& prior_words = warm.scan.consumed.words();
      const std::vector<uint64_t>& scan_words = consumed_.words();
      for (size_t w = 0; w < prior_words.size(); ++w) {
        if ((prior_words[w] & ~scan_words[w]) != 0) {
          disjoint = false;
          break;
        }
      }
    }
    prior.overlapping = !disjoint;
    prior_ptr = &prior;
  }
  FASTMATCH_RETURN_IF_ERROR(qs->machine.Begin(ts.ios.front()->num_candidates(),
                                              ts.ios.front()->num_groups(),
                                              pin_.num_rows, prior_ptr));
  if (prior_ptr != nullptr) ++stats_.warm_queries;
  // Fresh counts for the query's NEXT phase are cumulative minus this
  // snapshot. At Create the cumulative matrix is zero; a Join()ed query
  // re-snapshots at admission. A warm query's first phase is stage 2,
  // whose fresh rows likewise start at the current cumulative state.
  qs->snapshot = ts.cum;
  qs->snap_rows = ts.rows_cum;
  if (qs->machine.done()) {
    // Completed at bind (an all-consumed warm prior): the result exists
    // before the scan ever runs.
    qs->match = qs->machine.TakeResult();
    qs->active = false;
  } else {
    qs->active = true;
  }
  return Status::OK();
}

bool BatchExecutor::AnyActive() const {
  for (const QueryState& q : queries_) {
    if (q.active) return true;
  }
  return false;
}

int BatchExecutor::num_active() const {
  int n = 0;
  for (const QueryState& q : queries_) n += q.active;
  return n;
}

bool BatchExecutor::DemandSatisfied(const QueryState& q,
                                    bool all_consumed) const {
  // Full consumption makes every cumulative count exact, which completes
  // any phase (the machine observes all_consumed and finishes).
  if (all_consumed) return true;
  const TemplateState& ts = templates_[q.tmpl];
  const SampleDemand& demand = q.machine.demand();
  if (demand.kind == SampleDemand::Kind::kRows) {
    return ts.rows_cum - q.snap_rows >= demand.rows;
  }
  for (size_t i = 0; i < demand.targets.size(); ++i) {
    if (demand.targets[i] < 0 || ts.exhausted[i]) continue;
    const int c = static_cast<int>(i);
    if (ts.cum.RowTotal(c) - q.snapshot.RowTotal(c) < demand.targets[i]) {
      return false;
    }
  }
  return true;
}

void BatchExecutor::SupplyPhase(QueryState* q, bool all_consumed) {
  TemplateState& ts = templates_[q->tmpl];
  const bool stage1_phase =
      q->machine.demand().kind == SampleDemand::Kind::kRows;
  CountMatrix fresh = ts.cum;
  fresh.Subtract(q->snapshot);
  const int64_t drawn = ts.rows_cum - q->snap_rows;
  const Status status =
      q->machine.Supply(fresh, ts.exhausted, all_consumed, drawn);
  if (stage1_phase && options_.stage1_sink != nullptr && drawn > 0) {
    ExportStage1(*q, ts, std::move(fresh), drawn);
  }
  if (!status.ok()) {
    q->status = status;
    q->active = false;
    q->wall_seconds = timer_.Seconds();
  } else if (q->machine.done()) {
    q->match = q->machine.TakeResult();
    q->active = false;
    q->wall_seconds = timer_.Seconds();
  } else {
    q->snapshot = ts.cum;
    q->snap_rows = ts.rows_cum;
  }
}

void BatchExecutor::ExportStage1(const QueryState& q, const TemplateState& ts,
                                 CountMatrix fresh, int64_t drawn) {
  if (partitions_ == nullptr) {
    // Export the completed stage-1 phase. The counts are published even
    // when Supply failed (an all-pruned error is parameter-specific;
    // the sample itself is target-independent and reusable), and even
    // for mid-batch windows: any fresh window of the pre-shuffled
    // store's scan is a uniform without-replacement sample.
    auto snapshot = std::make_shared<Stage1Snapshot>();
    snapshot->counts = std::move(fresh);
    snapshot->rows_drawn = drawn;
    snapshot->scan.consumed = consumed_;
    snapshot->scan.cursor = cursor_;
    snapshot->scan.generation = pin_.generation;
    if (!options_.resume.has_value() && q.snap_rows == 0 &&
        ts.rows_cum == consumed_rows_) {
      // Only when the counts cover every consumed row does a template
      // exhaustion flag certify the counts as exact — the Stage1Snapshot
      // contract. A joined query's window (snap_rows > 0), a resumed
      // scan's hidden prefix, or a template that missed early chunks
      // (rows_cum < consumed_rows_) all break that coverage.
      snapshot->scan.exhausted = ts.exhausted;
    }
    options_.stage1_sink->Publish(store_->id(), kWholeStorePartition,
                                  ts.z_attr, ts.x_attrs, std::move(snapshot));
    ++stats_.stage1_exports;
    return;
  }
  // Sharded export: one snapshot per partition, each covering that
  // partition's share of the stage-1 draw. The per-partition
  // decomposition exists only for a query whose phase started at zero
  // (fresh == cum == Σ part_cum) on a template that saw every chunk of
  // an unresumed scan — joined queries' windows and resumed scans have
  // no per-partition split, so they simply don't export.
  if (ts.part_cum.empty() || options_.resume.has_value() || q.snap_rows != 0 ||
      ts.rows_cum != consumed_rows_) {
    return;
  }
  int cursor_part = 0;
  BlockId cursor_local = 0;
  Locate(cursor_, &cursor_part, &cursor_local);
  for (size_t p = 0; p < parts_.size(); ++p) {
    if (ts.part_rows_cum[p] <= 0) continue;
    const Partition& part = parts_[p];
    const int64_t local_blocks = part.pin.num_blocks;
    auto snapshot = std::make_shared<Stage1Snapshot>();
    snapshot->counts = ts.part_cum[p];
    snapshot->rows_drawn = ts.part_rows_cum[p];
    // Partition-local scan state: the slice of the logical consumed map
    // covering this partition's segments, cursor mapped when it lands
    // in this partition. Exhaustion flags are never published —
    // ts.exhausted certifies enumeration over the LOGICAL store, which
    // a partition-local consumer must not mistake for its own.
    snapshot->scan.consumed = BitVector(local_blocks);
    for (const ScanSegment& seg : segments_) {
      if (seg.part != static_cast<int>(p)) continue;
      for (int64_t j = 0; j < seg.blocks; ++j) {
        if (consumed_.Get(seg.logical_begin + j)) {
          snapshot->scan.consumed.Set(seg.local_begin + j);
        }
      }
    }
    snapshot->scan.cursor =
        cursor_part == static_cast<int>(p) ? cursor_local : 0;
    snapshot->scan.generation = part.pin.generation;
    options_.stage1_sink->Publish(partitions_->id(), part.store->id(),
                                  ts.z_attr, ts.x_attrs, std::move(snapshot));
    ++stats_.stage1_exports;
  }
}

void BatchExecutor::Settle() {
  const bool all_consumed = consumed_blocks_ == num_blocks_;
  for (QueryState& q : queries_) {
    // One supply may immediately issue a demand that is already satisfied
    // (exhausted candidates, zero targets): loop to fixpoint. Each pass
    // either finishes the machine or issues a demand needing fresh
    // samples of a non-exhausted candidate, so the loop terminates.
    while (q.active && DemandSatisfied(q, all_consumed)) {
      SupplyPhase(&q, all_consumed);
    }
  }
}

void BatchExecutor::ReadChunk() {
  const BlockId start = cursor_;
  const int count = static_cast<int>(
      std::min<int64_t>(options_.chunk_blocks, num_blocks_ - start));
  cursor_ += count;
  if (cursor_ >= num_blocks_) cursor_ = 0;
  ++stats_.chunks;

  // Gather the chunk's demand: per-template union of unmet candidates
  // over outstanding targets demands; a rows demand (stage 1), or a
  // targets demand on an index-less template, forces sequential
  // consumption of the whole window.
  bool read_all = false;
  for (TemplateState& ts : templates_) {
    ts.demand.unmet.clear();
    ts.demand.scan_all = false;
    ts.has_active = false;
    std::fill(ts.unmet_seen.begin(), ts.unmet_seen.end(), false);
  }
  for (const QueryState& q : queries_) {
    if (!q.active) continue;
    TemplateState& ts = templates_[q.tmpl];
    ts.has_active = true;
    const SampleDemand& demand = q.machine.demand();
    if (demand.kind == SampleDemand::Kind::kRows ||
        (ts.index == nullptr && ts.density == nullptr)) {
      read_all = true;
      continue;
    }
    for (size_t i = 0; i < demand.targets.size(); ++i) {
      if (demand.targets[i] < 0 || ts.exhausted[i] || ts.unmet_seen[i]) {
        continue;
      }
      const int c = static_cast<int>(i);
      if (ts.cum.RowTotal(c) - q.snapshot.RowTotal(c) >= demand.targets[i]) {
        continue;
      }
      ts.unmet_seen[i] = true;
      ts.demand.unmet.push_back(c);
    }
  }

  // Mark the window: a block is read iff some template's union demand
  // wants it (OR across templates).
  std::vector<BlockId> to_read;
  if (read_all) {
    for (int i = 0; i < count; ++i) {
      const BlockId b = start + i;
      if (!consumed_.Get(b)) to_read.push_back(b);
    }
  } else {
    marked_.assign(static_cast<size_t>(count), 0);
    for (TemplateState& ts : templates_) {
      if (ts.demand.unmet.empty()) continue;
      // Covered-prefix rule: the pre-skip authority (bitmap index, or
      // density map when the template has no index) only certifies
      // blocks fully built at its build time (num_rows() /
      // rows-per-block whole blocks — a partial tail block may have
      // been filled by later appends, so its bits/counts are stale).
      // Window positions past the covered prefix are read
      // unconditionally: marking is only ever conservative, never
      // skips a block the authority can't vouch for.
      const int64_t authority_rows = ts.index != nullptr
                                         ? ts.index->num_rows()
                                         : ts.density->num_rows();
      const int64_t covered = std::min<int64_t>(
          num_blocks_, authority_rows / pin_.rows_per_block);
      const int sub_count = static_cast<int>(
          std::clamp<int64_t>(covered - start, 0, count));
      if (sub_count > 0) {
        if (ts.index != nullptr) {
          MarkAnyActiveLookahead(*ts.index, ts.demand.unmet, start, sub_count,
                                 &ts.scratch, &ts.marks);
        } else {
          MarkAnyActiveDensity(*ts.density, ts.demand.unmet, start, sub_count,
                               &ts.marks);
        }
        for (int i = 0; i < sub_count; ++i) {
          marked_[static_cast<size_t>(i)] |= ts.marks[static_cast<size_t>(i)];
        }
      }
      for (int i = sub_count; i < count; ++i) {
        marked_[static_cast<size_t>(i)] = 1;
      }
    }
    for (int i = 0; i < count; ++i) {
      const BlockId b = start + i;
      if (consumed_.Get(b)) continue;
      if (marked_[static_cast<size_t>(i)]) {
        to_read.push_back(b);
      } else {
        ++stats_.blocks_skipped;
      }
    }
  }

  if (to_read.empty()) {
    streak_ += count;
    if (streak_ >= num_blocks_) {
      // One full cursor cycle without a read: no unconsumed block holds
      // any currently-unmet candidate, so each one is fully enumerated
      // (the single-query engine's exhaustion rule). The unmet sets are
      // stable across the cycle because counts only change on reads.
      for (TemplateState& ts : templates_) {
        for (int c : ts.demand.unmet) ts.exhausted[c] = true;
      }
      streak_ = 0;
    }
    return;
  }
  streak_ = 0;

  // Shared read: one pass over the chunk's blocks feeds every template
  // that still has a live query. Worker slots scan contiguous slices of
  // the SAME logical block list as the unpartitioned run into private
  // per-partition shards; the merge below is an integer sum, so the
  // cumulative matrix is identical for every pool size, shared-pool
  // quota, AND partition count (scatter changes which reader touches a
  // block, never which blocks are read or how counts add).
  const size_t num_reads = to_read.size();
  const size_t num_parts = parts_.size();
  if (num_parts > 1) {
    // Scatter: map each marked logical block to (partition, local
    // block) through the pinned segment table.
    read_part_.resize(num_reads);
    read_local_.resize(num_reads);
    for (size_t i = 0; i < num_reads; ++i) {
      Locate(to_read[i], &read_part_[i], &read_local_[i]);
    }
  }
  const size_t slots = static_cast<size_t>(NumSlots());
  const auto read_slice = [&](int64_t w) {
    const size_t begin = num_reads * static_cast<size_t>(w) / slots;
    const size_t end = num_reads * (static_cast<size_t>(w) + 1) / slots;
    if (begin == end) return;
    for (TemplateState& ts : templates_) {
      if (!ts.has_active) continue;
      if (num_parts == 1) {
        ts.ios.front()->ReadBlocks(
            to_read, begin, end,
            &ts.shards[static_cast<size_t>(w)]);
        continue;
      }
      for (size_t i = begin; i < end; ++i) {
        const size_t p = static_cast<size_t>(read_part_[i]);
        ts.ios[p]->ReadBlock(
            read_local_[i],
            &ts.shards[static_cast<size_t>(w) * num_parts + p],
            /*fresh_counts=*/nullptr);
      }
    }
  };
  if (options_.shared_pool != nullptr) {
    options_.shared_pool->ParallelFor(static_cast<int64_t>(slots), read_slice,
                                      options_.num_threads);
  } else {
    pool_->ParallelFor(static_cast<int64_t>(slots), read_slice);
  }

  // Gather accounting (single-threaded, deterministic): logical rows per
  // chunk plus each partition's share.
  chunk_part_rows_.assign(num_parts, 0);
  int64_t rows = 0;
  for (size_t i = 0; i < num_reads; ++i) {
    const BlockId b = to_read[i];
    RowId row_begin, row_end;
    // Pinned row range: the owning partition's pin clamps a seam block
    // to the rows that existed at the batch's generation.
    size_t p = 0;
    if (num_parts == 1) {
      pin_.BlockRowRange(b, &row_begin, &row_end);
    } else {
      p = static_cast<size_t>(read_part_[i]);
      parts_[p].pin.BlockRowRange(read_local_[i], &row_begin, &row_end);
    }
    const int64_t block_rows = row_end - row_begin;
    rows += block_rows;
    consumed_.Set(b);
    chunk_part_rows_[p] += block_rows;
    ++parts_[p].blocks_read;
    parts_[p].rows_read += block_rows;
  }
  consumed_blocks_ += static_cast<int64_t>(num_reads);
  consumed_rows_ += rows;
  stats_.blocks_read += static_cast<int64_t>(num_reads);
  stats_.rows_read += rows;

  for (TemplateState& ts : templates_) {
    if (!ts.has_active) continue;
    for (size_t s = 0; s < ts.shards.size(); ++s) {
      ts.cum.Merge(ts.shards[s]);
      if (!ts.part_cum.empty()) {
        ts.part_cum[s % num_parts].Merge(ts.shards[s]);
      }
      ts.shards[s].Reset();
    }
    ts.rows_cum += rows;
    if (!ts.part_rows_cum.empty()) {
      for (size_t p = 0; p < num_parts; ++p) {
        ts.part_rows_cum[p] += chunk_part_rows_[p];
      }
    }
    stats_.block_scans += static_cast<int64_t>(num_reads);
  }
}

void BatchExecutor::Locate(BlockId b, int* part, BlockId* local) const {
  // Last segment whose run starts at or before b; segments are ordered
  // by logical_begin and tile [0, num_blocks_).
  const auto it = std::upper_bound(
      segments_.begin(), segments_.end(), b,
      [](BlockId lhs, const ScanSegment& seg) {
        return lhs < seg.logical_begin;
      });
  FASTMATCH_CHECK(it != segments_.begin());
  const ScanSegment& seg = *(it - 1);
  *part = seg.part;
  *local = seg.local_begin + (b - seg.logical_begin);
}

int BatchExecutor::NumSlots() const {
  return options_.shared_pool != nullptr ? std::max(1, options_.num_threads)
                                         : pool_->size();
}

void BatchExecutor::SizeShards(TemplateState* ts) {
  if (!started_) return;
  const IoManager& domain = *ts->ios.front();
  const size_t num_parts = parts_.size();
  // Layout [slot * P + partition]: each worker slot owns a private run of
  // P matrices, so the scatter read writes without synchronization, and
  // the P=1 case degenerates to one matrix per slot (today's layout).
  ts->shards.assign(
      static_cast<size_t>(NumSlots()) * num_parts,
      CountMatrix(domain.num_candidates(), domain.num_groups()));
  if (partitions_ != nullptr && options_.stage1_sink != nullptr &&
      ts->part_cum.empty()) {
    ts->part_cum.assign(num_parts,
                        CountMatrix(domain.num_candidates(),
                                    domain.num_groups()));
    ts->part_rows_cum.assign(num_parts, 0);
  }
}

void BatchExecutor::SetCompletionCallback(
    std::function<void(size_t, BatchItem)> fn) {
  FASTMATCH_CHECK(!started_)
      << "SetCompletionCallback after Start: completions already missed";
  on_complete_ = std::move(fn);
}

void BatchExecutor::SetProgressCallback(
    std::function<void(size_t, const ProgressUpdate&)> fn) {
  FASTMATCH_CHECK(!started_)
      << "SetProgressCallback after Start: updates already missed";
  on_progress_ = std::move(fn);
}

void BatchExecutor::NotifyCompletions() {
  if (!on_complete_ && !on_progress_) return;
  for (size_t i = 0; i < queries_.size(); ++i) {
    QueryState& q = queries_[i];
    if (q.active || q.notified) continue;
    q.notified = true;
    if (on_progress_ && q.status.ok()) {
      // Final update, built FROM the delivered result so the streamed
      // view and the future's answer agree bit-for-bit (the progressive-
      // monotonicity contract's terminal condition).
      ProgressUpdate up;
      up.sequence = ++q.progress_seq;
      up.topk = q.match.topk;
      up.topk_distances = q.match.topk_distances;
      up.distances = q.match.distances;
      up.error_bars = q.match.error_bars;
      up.exact = q.match.exact;
      up.rows_consumed = q.match.diag.stage1_samples +
                         q.match.diag.stage2_samples +
                         q.match.diag.stage3_samples;
      up.blocks_read = stats_.blocks_read;
      up.final_update = true;
      on_progress_(i, up);
    }
    if (!on_complete_) continue;
    BatchItem item;
    item.status = q.status;
    item.match = q.match;  // copy: TakeItems still moves the original
    item.wall_seconds = q.wall_seconds;
    on_complete_(i, std::move(item));
  }
}

void BatchExecutor::EmitProgress() {
  if (!on_progress_) return;
  for (size_t i = 0; i < queries_.size(); ++i) {
    QueryState& q = queries_[i];
    if (!q.active) continue;
    const TemplateState& ts = templates_[q.tmpl];
    // The in-flight phase's fresh sample, by the same cumulative-minus-
    // snapshot rule SupplyPhase uses; the machine pools it with its
    // folded phases for the snapshot.
    CountMatrix partial = ts.cum;
    partial.Subtract(q.snapshot);
    const int64_t partial_rows = ts.rows_cum - q.snap_rows;
    ProgressUpdate up = q.machine.Progress(&partial, partial_rows);
    if (up.distances.empty()) continue;  // machine not live yet
    up.sequence = ++q.progress_seq;
    up.blocks_read = stats_.blocks_read;
    on_progress_(i, up);
  }
}

void BatchExecutor::Start() {
  FASTMATCH_CHECK(!started_) << "BatchExecutor::Start called twice";
  started_ = true;
  timer_.Restart();

  if (options_.shared_pool == nullptr) {
    pool_ = std::make_unique<WorkerPool>(options_.num_threads);
  }
  for (TemplateState& ts : templates_) SizeShards(&ts);
  if (options_.resume.has_value()) {
    cursor_ = options_.resume->cursor;
  } else {
    Rng rng(options_.seed);
    cursor_ = static_cast<BlockId>(
        rng.Uniform(static_cast<uint64_t>(num_blocks_)));
  }
  streak_ = 0;
  Settle();
  // Queries that failed binding at Create, or whose machine finished on
  // the first settle, complete here — the earliest a callback can fire.
  NotifyCompletions();
}

bool BatchExecutor::Step() {
  FASTMATCH_CHECK(started_) << "BatchExecutor::Step before Start";
  FASTMATCH_CHECK(!taken_) << "BatchExecutor::Step after TakeItems";
  if (!AnyActive()) return false;
  ReadChunk();
  Settle();
  NotifyCompletions();
  EmitProgress();
  return AnyActive();
}

Status BatchExecutor::Evict(size_t index) {
  if (!started_) {
    return Status::FailedPrecondition("Evict before Start");
  }
  if (taken_) {
    return Status::FailedPrecondition("batch already finished");
  }
  if (index >= queries_.size()) {
    return Status::OutOfRange("Evict index out of range");
  }
  QueryState& q = queries_[index];
  if (!q.active) {
    // Completed (or already evicted/failed): the item exists — deliver
    // it rather than discarding it. Callers racing a cancel against
    // completion branch on this code.
    return Status::FailedPrecondition("query already completed");
  }
  q.status = Status::Cancelled("evicted from running batch");
  q.active = false;
  q.wall_seconds = timer_.Seconds();
  ++stats_.evicted_queries;
  // From the next ReadChunk on, the union demand no longer carries this
  // query's unmet candidates (only active queries contribute), so
  // blocks only it wanted stop being marked — an abandoned query stops
  // consuming scan work at the next chunk boundary.
  NotifyCompletions();
  return Status::OK();
}

Status BatchExecutor::EvictWithResult(size_t index) {
  if (!started_) {
    return Status::FailedPrecondition("EvictWithResult before Start");
  }
  if (taken_) {
    return Status::FailedPrecondition("batch already finished");
  }
  if (index >= queries_.size()) {
    return Status::OutOfRange("EvictWithResult index out of range");
  }
  QueryState& q = queries_[index];
  if (!q.active) {
    // Completed (or already evicted/failed) first: the exact item
    // exists and MUST win the race — callers racing a budget expiry
    // against completion branch on this code and deliver it instead.
    return Status::FailedPrecondition("query already completed");
  }
  TemplateState& ts = templates_[q.tmpl];
  // Hand the machine its in-flight phase's fresh sample (cumulative
  // minus snapshot, exactly as SupplyPhase would) and harvest: the
  // machine folds everything pooled so far into a best-effort result
  // with honest non-exact error bars.
  CountMatrix fresh = ts.cum;
  fresh.Subtract(q.snapshot);
  const int64_t drawn = ts.rows_cum - q.snap_rows;
  const bool all_consumed = consumed_blocks_ == num_blocks_;
  const Status harvest =
      q.machine.HarvestBestEffort(fresh, ts.exhausted, all_consumed, drawn);
  if (harvest.ok()) {
    q.match = q.machine.TakeResult();
    q.status = Status::OK();
  } else {
    q.status = harvest;
  }
  q.active = false;
  q.wall_seconds = timer_.Seconds();
  ++stats_.harvested_queries;
  NotifyCompletions();
  return Status::OK();
}

Result<size_t> BatchExecutor::Join(const BoundQuery& query) {
  if (!started_) {
    return Status::FailedPrecondition(
        "Join before Start: add the query to the Create batch instead");
  }
  if (taken_) {
    return Status::FailedPrecondition("batch already finished");
  }
  if (query.store.get() != store_.get()) {
    return Status::InvalidArgument(
        "joined query must share the batch's ColumnStore");
  }
  if ((query.partitions != nullptr) != (partitions_ != nullptr) ||
      (query.partitions != nullptr &&
       query.partitions->id() != partitions_->id())) {
    return Status::InvalidArgument(
        "joined query must share the batch's partition set (or carry none "
        "for an unpartitioned batch)");
  }
  if (consumed_blocks_ == num_blocks_) {
    // Nothing left to feed the newcomer: every block is consumed, so its
    // machine would finish instantly on zero samples. The caller must
    // route it to a fresh batch.
    return Status::FailedPrecondition(
        "scan suffix is empty; route the query to a fresh batch");
  }
  const size_t index = queries_.size();
  AddQuery(query);
  QueryState& qs = queries_.back();
  if (!qs.active) {
    // Failed binding or instant warm completion (all-consumed prior):
    // the query "completed" at join time, not at batch start — stamp it
    // so item latencies stay monotone for late arrivals.
    qs.wall_seconds = timer_.Seconds();
  }
  if (qs.active) {
    // The join snapshot (fresh counts = cumulative minus admission
    // state, so the query is fed from the remaining scan suffix only)
    // was already taken inside BindQuery, which snapshots the
    // template's current state for every admission path.
    //
    // The exhaustion rule's "full zero-read cycle" invariant assumes
    // the unmet sets were stable for the whole streak; admitting a
    // query invalidates any streak in progress (windows already passed
    // were never checked against the newcomer's candidates), so
    // restart it.
    streak_ = 0;
    ++stats_.joined_queries;
  }
  stats_.num_templates = static_cast<int>(templates_.size());
  // A join whose binding failed is complete already; report it now so
  // the callback contract (every query, at its completion instant)
  // holds for joins too.
  NotifyCompletions();
  return index;
}

ScanResume BatchExecutor::CaptureScanState() const {
  ScanResume resume;
  resume.consumed = consumed_;
  resume.cursor = cursor_;
  if (templates_.size() == 1) {
    resume.exhausted = templates_.front().exhausted;
  }
  resume.generation = pin_.generation;
  return resume;
}

std::vector<BatchItem> BatchExecutor::TakeItems() {
  FASTMATCH_CHECK(started_) << "BatchExecutor::TakeItems before Start";
  FASTMATCH_CHECK(!taken_) << "BatchExecutor::TakeItems called twice";
  FASTMATCH_CHECK(!AnyActive())
      << "BatchExecutor::TakeItems with active queries";
  taken_ = true;
  pool_.reset();

  std::vector<BatchItem> items;
  items.reserve(queries_.size());
  for (QueryState& q : queries_) {
    BatchItem item;
    item.status = q.status;
    item.match = std::move(q.match);
    item.wall_seconds = q.wall_seconds;
    items.push_back(std::move(item));
  }
  return items;
}

std::vector<BatchItem> BatchExecutor::Run() {
  FASTMATCH_CHECK(!started_) << "BatchExecutor::Run after Start or Run";
  Start();
  while (Step()) {
  }
  return TakeItems();
}

}  // namespace fastmatch
