#include "engine/batch_executor.h"

#include <algorithm>
#include <utility>

#include "engine/block_policy.h"
#include "util/logging.h"
#include "util/random.h"

namespace fastmatch {

BatchExecutor::BatchExecutor(std::shared_ptr<const ColumnStore> store,
                             BatchOptions options)
    : store_(std::move(store)),
      options_(std::move(options)),
      num_blocks_(store_->num_blocks()),
      consumed_(num_blocks_) {}

Result<std::unique_ptr<BatchExecutor>> BatchExecutor::Create(
    const std::vector<BoundQuery>& queries, BatchOptions options) {
  if (queries.empty()) {
    return Status::InvalidArgument("batch has no queries");
  }
  if (options.num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  if (options.chunk_blocks < 1) {
    return Status::InvalidArgument("chunk_blocks must be >= 1");
  }
  const std::shared_ptr<const ColumnStore>& store = queries.front().store;
  if (store == nullptr) {
    return Status::InvalidArgument("query has no store");
  }
  for (const BoundQuery& q : queries) {
    if (q.store.get() != store.get()) {
      return Status::InvalidArgument(
          "batch queries must share one ColumnStore");
    }
  }
  if (store->num_rows() == 0) {
    return Status::FailedPrecondition("empty store");
  }
  if (options.resume.has_value()) {
    const ScanResume& resume = *options.resume;
    if (resume.consumed.size() != store->num_blocks()) {
      return Status::InvalidArgument(
          "resume consumed bitvector size does not match store block count");
    }
    if (resume.cursor < 0 || resume.cursor >= store->num_blocks()) {
      return Status::InvalidArgument("resume cursor out of range");
    }
  }

  auto executor =
      std::unique_ptr<BatchExecutor>(new BatchExecutor(store, options));
  if (executor->options_.resume.has_value()) {
    executor->consumed_ = executor->options_.resume->consumed;
    executor->consumed_blocks_ = executor->consumed_.Popcount();
    if (executor->consumed_blocks_ == executor->num_blocks_) {
      // Same condition Join() rejects: with no suffix left the machines
      // would "finish" instantly on zero samples and report fabricated
      // exact results.
      return Status::FailedPrecondition(
          "resume state has no unconsumed blocks; nothing to scan");
    }
  }
  for (const BoundQuery& q : queries) executor->AddQuery(q);
  if (executor->options_.resume.has_value() &&
      !executor->options_.resume->exhausted.empty()) {
    // Donor-scan exhaustion knowledge is per candidate of one template;
    // a multi-template resume has no well-defined recipient.
    if (executor->templates_.size() != 1) {
      return Status::InvalidArgument(
          "resume exhausted flags require a single-template batch");
    }
    TemplateState& ts = executor->templates_.front();
    if (executor->options_.resume->exhausted.size() != ts.exhausted.size()) {
      return Status::InvalidArgument(
          "resume exhausted flags do not match the template's candidate "
          "count");
    }
    ts.exhausted = executor->options_.resume->exhausted;
  }
  executor->stats_.num_templates =
      static_cast<int>(executor->templates_.size());
  return executor;
}

void BatchExecutor::AddQuery(const BoundQuery& query) {
  const size_t templates_before = templates_.size();
  QueryState qs(HistSimMachine(query.params, query.target));
  const Status status = BindQuery(query, &qs);
  if (!status.ok()) {
    qs.status = status;
    qs.active = false;
    // Drop a template created for a query that then failed binding
    // (index validation, machine Begin): it has no consumer, and its
    // existence must not change batch-level validation (the
    // single-template resume rule) or add per-chunk work.
    if (templates_.size() > templates_before) templates_.pop_back();
  }
  queries_.push_back(std::move(qs));
}

Status BatchExecutor::BindQuery(const BoundQuery& query, QueryState* qs) {
  if (query.x_attrs.empty()) {
    return Status::InvalidArgument("query has no x attributes");
  }
  size_t t = 0;
  for (; t < templates_.size(); ++t) {
    if (templates_[t].z_attr == query.z_attr &&
        templates_[t].x_attrs == query.x_attrs) {
      break;
    }
  }
  if (t == templates_.size()) {
    FASTMATCH_ASSIGN_OR_RETURN(
        auto io, IoManager::Create(store_, query.z_attr, query.x_attrs));
    TemplateState ts;
    ts.z_attr = query.z_attr;
    ts.x_attrs = query.x_attrs;
    ts.cum = CountMatrix(io->num_candidates(), io->num_groups());
    ts.exhausted.assign(io->num_candidates(), false);
    ts.unmet_seen.assign(io->num_candidates(), false);
    ts.io = std::move(io);
    SizeShards(&ts);  // no-op before Start
    templates_.push_back(std::move(ts));
  }
  TemplateState& ts = templates_[t];
  // Validate every supplied index (not just the first bound one), so a
  // malformed index is rejected regardless of the query's batch position.
  if (query.z_index != nullptr) {
    if (query.z_index->attribute() != query.z_attr) {
      return Status::InvalidArgument(
          "bitmap index was built for a different attribute");
    }
    if (query.z_index->num_blocks() != store_->num_blocks()) {
      return Status::InvalidArgument(
          "bitmap index block count does not match store");
    }
    if (ts.index == nullptr) ts.index = query.z_index;
  }
  qs->tmpl = t;
  Stage1Prior prior;
  const Stage1Prior* prior_ptr = nullptr;
  if (query.stage1_warm != nullptr) {
    const Stage1Snapshot& warm = *query.stage1_warm;
    prior.counts = &warm.counts;
    prior.rows_drawn = warm.rows_drawn;
    if (!warm.scan.exhausted.empty()) prior.exhausted = &warm.scan.exhausted;
    // A prior spanning the whole relation carries exact counts for every
    // candidate: the machine completes instantly without touching the
    // scan (handled below).
    prior.all_consumed = warm.rows_drawn >= store_->num_rows();
    // Disjointness: when every block behind the prior is already in
    // this scan's consumed set (a resume from the snapshot's state, or
    // a join after the scan passed the prior's window), the remaining
    // scan can never revisit the prior's rows. Otherwise the machine
    // must treat the prior as overlapping: an exhaustion signal then
    // only certifies the scan window's counts, not prior + window.
    bool disjoint = warm.scan.consumed.size() == consumed_.size();
    if (disjoint) {
      const std::vector<uint64_t>& prior_words = warm.scan.consumed.words();
      const std::vector<uint64_t>& scan_words = consumed_.words();
      for (size_t w = 0; w < prior_words.size(); ++w) {
        if ((prior_words[w] & ~scan_words[w]) != 0) {
          disjoint = false;
          break;
        }
      }
    }
    prior.overlapping = !disjoint;
    prior_ptr = &prior;
  }
  FASTMATCH_RETURN_IF_ERROR(qs->machine.Begin(ts.io->num_candidates(),
                                              ts.io->num_groups(),
                                              store_->num_rows(), prior_ptr));
  if (prior_ptr != nullptr) ++stats_.warm_queries;
  // Fresh counts for the query's NEXT phase are cumulative minus this
  // snapshot. At Create the cumulative matrix is zero; a Join()ed query
  // re-snapshots at admission. A warm query's first phase is stage 2,
  // whose fresh rows likewise start at the current cumulative state.
  qs->snapshot = ts.cum;
  qs->snap_rows = ts.rows_cum;
  if (qs->machine.done()) {
    // Completed at bind (an all-consumed warm prior): the result exists
    // before the scan ever runs.
    qs->match = qs->machine.TakeResult();
    qs->active = false;
  } else {
    qs->active = true;
  }
  return Status::OK();
}

bool BatchExecutor::AnyActive() const {
  for (const QueryState& q : queries_) {
    if (q.active) return true;
  }
  return false;
}

int BatchExecutor::num_active() const {
  int n = 0;
  for (const QueryState& q : queries_) n += q.active;
  return n;
}

bool BatchExecutor::DemandSatisfied(const QueryState& q,
                                    bool all_consumed) const {
  // Full consumption makes every cumulative count exact, which completes
  // any phase (the machine observes all_consumed and finishes).
  if (all_consumed) return true;
  const TemplateState& ts = templates_[q.tmpl];
  const SampleDemand& demand = q.machine.demand();
  if (demand.kind == SampleDemand::Kind::kRows) {
    return ts.rows_cum - q.snap_rows >= demand.rows;
  }
  for (size_t i = 0; i < demand.targets.size(); ++i) {
    if (demand.targets[i] < 0 || ts.exhausted[i]) continue;
    const int c = static_cast<int>(i);
    if (ts.cum.RowTotal(c) - q.snapshot.RowTotal(c) < demand.targets[i]) {
      return false;
    }
  }
  return true;
}

void BatchExecutor::SupplyPhase(QueryState* q, bool all_consumed) {
  TemplateState& ts = templates_[q->tmpl];
  const bool stage1_phase =
      q->machine.demand().kind == SampleDemand::Kind::kRows;
  CountMatrix fresh = ts.cum;
  fresh.Subtract(q->snapshot);
  const int64_t drawn = ts.rows_cum - q->snap_rows;
  const Status status =
      q->machine.Supply(fresh, ts.exhausted, all_consumed, drawn);
  if (stage1_phase && options_.stage1_sink != nullptr && drawn > 0) {
    // Export the completed stage-1 phase. The counts are published even
    // when Supply failed (an all-pruned error is parameter-specific;
    // the sample itself is target-independent and reusable), and even
    // for mid-batch windows: any fresh window of the pre-shuffled
    // store's scan is a uniform without-replacement sample.
    auto snapshot = std::make_shared<Stage1Snapshot>();
    snapshot->counts = std::move(fresh);
    snapshot->rows_drawn = drawn;
    snapshot->scan.consumed = consumed_;
    snapshot->scan.cursor = cursor_;
    if (!options_.resume.has_value() && q->snap_rows == 0 &&
        ts.rows_cum == consumed_rows_) {
      // Only when the counts cover every consumed row does a template
      // exhaustion flag certify the counts as exact — the Stage1Snapshot
      // contract. A joined query's window (snap_rows > 0), a resumed
      // scan's hidden prefix, or a template that missed early chunks
      // (rows_cum < consumed_rows_) all break that coverage.
      snapshot->scan.exhausted = ts.exhausted;
    }
    options_.stage1_sink->Publish(store_->id(), ts.z_attr, ts.x_attrs,
                                  std::move(snapshot));
    ++stats_.stage1_exports;
  }
  if (!status.ok()) {
    q->status = status;
    q->active = false;
    q->wall_seconds = timer_.Seconds();
  } else if (q->machine.done()) {
    q->match = q->machine.TakeResult();
    q->active = false;
    q->wall_seconds = timer_.Seconds();
  } else {
    q->snapshot = ts.cum;
    q->snap_rows = ts.rows_cum;
  }
}

void BatchExecutor::Settle() {
  const bool all_consumed = consumed_blocks_ == num_blocks_;
  for (QueryState& q : queries_) {
    // One supply may immediately issue a demand that is already satisfied
    // (exhausted candidates, zero targets): loop to fixpoint. Each pass
    // either finishes the machine or issues a demand needing fresh
    // samples of a non-exhausted candidate, so the loop terminates.
    while (q.active && DemandSatisfied(q, all_consumed)) {
      SupplyPhase(&q, all_consumed);
    }
  }
}

void BatchExecutor::ReadChunk() {
  const BlockId start = cursor_;
  const int count = static_cast<int>(
      std::min<int64_t>(options_.chunk_blocks, num_blocks_ - start));
  cursor_ += count;
  if (cursor_ >= num_blocks_) cursor_ = 0;
  ++stats_.chunks;

  // Gather the chunk's demand: per-template union of unmet candidates
  // over outstanding targets demands; a rows demand (stage 1), or a
  // targets demand on an index-less template, forces sequential
  // consumption of the whole window.
  bool read_all = false;
  for (TemplateState& ts : templates_) {
    ts.demand.unmet.clear();
    ts.demand.scan_all = false;
    ts.has_active = false;
    std::fill(ts.unmet_seen.begin(), ts.unmet_seen.end(), false);
  }
  for (const QueryState& q : queries_) {
    if (!q.active) continue;
    TemplateState& ts = templates_[q.tmpl];
    ts.has_active = true;
    const SampleDemand& demand = q.machine.demand();
    if (demand.kind == SampleDemand::Kind::kRows || ts.index == nullptr) {
      read_all = true;
      continue;
    }
    for (size_t i = 0; i < demand.targets.size(); ++i) {
      if (demand.targets[i] < 0 || ts.exhausted[i] || ts.unmet_seen[i]) {
        continue;
      }
      const int c = static_cast<int>(i);
      if (ts.cum.RowTotal(c) - q.snapshot.RowTotal(c) >= demand.targets[i]) {
        continue;
      }
      ts.unmet_seen[i] = true;
      ts.demand.unmet.push_back(c);
    }
  }

  // Mark the window: a block is read iff some template's union demand
  // wants it (OR across templates).
  std::vector<BlockId> to_read;
  if (read_all) {
    for (int i = 0; i < count; ++i) {
      const BlockId b = start + i;
      if (!consumed_.Get(b)) to_read.push_back(b);
    }
  } else {
    marked_.assign(static_cast<size_t>(count), 0);
    for (TemplateState& ts : templates_) {
      if (ts.demand.unmet.empty()) continue;
      MarkAnyActiveLookahead(*ts.index, ts.demand.unmet, start, count,
                             &ts.scratch, &ts.marks);
      for (int i = 0; i < count; ++i) {
        marked_[static_cast<size_t>(i)] |= ts.marks[static_cast<size_t>(i)];
      }
    }
    for (int i = 0; i < count; ++i) {
      const BlockId b = start + i;
      if (consumed_.Get(b)) continue;
      if (marked_[static_cast<size_t>(i)]) {
        to_read.push_back(b);
      } else {
        ++stats_.blocks_skipped;
      }
    }
  }

  if (to_read.empty()) {
    streak_ += count;
    if (streak_ >= num_blocks_) {
      // One full cursor cycle without a read: no unconsumed block holds
      // any currently-unmet candidate, so each one is fully enumerated
      // (the single-query engine's exhaustion rule). The unmet sets are
      // stable across the cycle because counts only change on reads.
      for (TemplateState& ts : templates_) {
        for (int c : ts.demand.unmet) ts.exhausted[c] = true;
      }
      streak_ = 0;
    }
    return;
  }
  streak_ = 0;

  // Shared read: one pass over the chunk's blocks feeds every template
  // that still has a live query. Worker slots scan contiguous slices into
  // private shards; the merge below is an integer sum, so the cumulative
  // matrix is identical for every pool size and for every shared-pool
  // quota.
  const size_t num_reads = to_read.size();
  const size_t slots = static_cast<size_t>(NumSlots());
  const auto read_slice = [&](int64_t w) {
    const size_t begin = num_reads * static_cast<size_t>(w) / slots;
    const size_t end = num_reads * (static_cast<size_t>(w) + 1) / slots;
    if (begin == end) return;
    for (TemplateState& ts : templates_) {
      if (!ts.has_active) continue;
      ts.io->ReadBlocks(to_read, begin, end,
                        &ts.shards[static_cast<size_t>(w)]);
    }
  };
  if (options_.shared_pool != nullptr) {
    options_.shared_pool->ParallelFor(static_cast<int64_t>(slots), read_slice,
                                      options_.num_threads);
  } else {
    pool_->ParallelFor(static_cast<int64_t>(slots), read_slice);
  }

  int64_t rows = 0;
  for (BlockId b : to_read) {
    RowId row_begin, row_end;
    store_->BlockRowRange(b, &row_begin, &row_end);
    rows += row_end - row_begin;
    consumed_.Set(b);
  }
  consumed_blocks_ += static_cast<int64_t>(num_reads);
  consumed_rows_ += rows;
  stats_.blocks_read += static_cast<int64_t>(num_reads);
  stats_.rows_read += rows;

  for (TemplateState& ts : templates_) {
    if (!ts.has_active) continue;
    for (CountMatrix& shard : ts.shards) {
      ts.cum.Merge(shard);
      shard.Reset();
    }
    ts.rows_cum += rows;
    stats_.block_scans += static_cast<int64_t>(num_reads);
  }
}

int BatchExecutor::NumSlots() const {
  return options_.shared_pool != nullptr ? std::max(1, options_.num_threads)
                                         : pool_->size();
}

void BatchExecutor::SizeShards(TemplateState* ts) {
  if (!started_) return;
  ts->shards.assign(
      static_cast<size_t>(NumSlots()),
      CountMatrix(ts->io->num_candidates(), ts->io->num_groups()));
}

void BatchExecutor::SetCompletionCallback(
    std::function<void(size_t, BatchItem)> fn) {
  FASTMATCH_CHECK(!started_)
      << "SetCompletionCallback after Start: completions already missed";
  on_complete_ = std::move(fn);
}

void BatchExecutor::NotifyCompletions() {
  if (!on_complete_) return;
  for (size_t i = 0; i < queries_.size(); ++i) {
    QueryState& q = queries_[i];
    if (q.active || q.notified) continue;
    q.notified = true;
    BatchItem item;
    item.status = q.status;
    item.match = q.match;  // copy: TakeItems still moves the original
    item.wall_seconds = q.wall_seconds;
    on_complete_(i, std::move(item));
  }
}

void BatchExecutor::Start() {
  FASTMATCH_CHECK(!started_) << "BatchExecutor::Start called twice";
  started_ = true;
  timer_.Restart();

  if (options_.shared_pool == nullptr) {
    pool_ = std::make_unique<WorkerPool>(options_.num_threads);
  }
  for (TemplateState& ts : templates_) SizeShards(&ts);
  if (options_.resume.has_value()) {
    cursor_ = options_.resume->cursor;
  } else {
    Rng rng(options_.seed);
    cursor_ = static_cast<BlockId>(
        rng.Uniform(static_cast<uint64_t>(num_blocks_)));
  }
  streak_ = 0;
  Settle();
  // Queries that failed binding at Create, or whose machine finished on
  // the first settle, complete here — the earliest a callback can fire.
  NotifyCompletions();
}

bool BatchExecutor::Step() {
  FASTMATCH_CHECK(started_) << "BatchExecutor::Step before Start";
  FASTMATCH_CHECK(!taken_) << "BatchExecutor::Step after TakeItems";
  if (!AnyActive()) return false;
  ReadChunk();
  Settle();
  NotifyCompletions();
  return AnyActive();
}

Status BatchExecutor::Evict(size_t index) {
  if (!started_) {
    return Status::FailedPrecondition("Evict before Start");
  }
  if (taken_) {
    return Status::FailedPrecondition("batch already finished");
  }
  if (index >= queries_.size()) {
    return Status::OutOfRange("Evict index out of range");
  }
  QueryState& q = queries_[index];
  if (!q.active) {
    // Completed (or already evicted/failed): the item exists — deliver
    // it rather than discarding it. Callers racing a cancel against
    // completion branch on this code.
    return Status::FailedPrecondition("query already completed");
  }
  q.status = Status::Cancelled("evicted from running batch");
  q.active = false;
  q.wall_seconds = timer_.Seconds();
  ++stats_.evicted_queries;
  // From the next ReadChunk on, the union demand no longer carries this
  // query's unmet candidates (only active queries contribute), so
  // blocks only it wanted stop being marked — an abandoned query stops
  // consuming scan work at the next chunk boundary.
  NotifyCompletions();
  return Status::OK();
}

Result<size_t> BatchExecutor::Join(const BoundQuery& query) {
  if (!started_) {
    return Status::FailedPrecondition(
        "Join before Start: add the query to the Create batch instead");
  }
  if (taken_) {
    return Status::FailedPrecondition("batch already finished");
  }
  if (query.store.get() != store_.get()) {
    return Status::InvalidArgument(
        "joined query must share the batch's ColumnStore");
  }
  if (consumed_blocks_ == num_blocks_) {
    // Nothing left to feed the newcomer: every block is consumed, so its
    // machine would finish instantly on zero samples. The caller must
    // route it to a fresh batch.
    return Status::FailedPrecondition(
        "scan suffix is empty; route the query to a fresh batch");
  }
  const size_t index = queries_.size();
  AddQuery(query);
  QueryState& qs = queries_.back();
  if (!qs.active) {
    // Failed binding or instant warm completion (all-consumed prior):
    // the query "completed" at join time, not at batch start — stamp it
    // so item latencies stay monotone for late arrivals.
    qs.wall_seconds = timer_.Seconds();
  }
  if (qs.active) {
    // The join snapshot (fresh counts = cumulative minus admission
    // state, so the query is fed from the remaining scan suffix only)
    // was already taken inside BindQuery, which snapshots the
    // template's current state for every admission path.
    //
    // The exhaustion rule's "full zero-read cycle" invariant assumes
    // the unmet sets were stable for the whole streak; admitting a
    // query invalidates any streak in progress (windows already passed
    // were never checked against the newcomer's candidates), so
    // restart it.
    streak_ = 0;
    ++stats_.joined_queries;
  }
  stats_.num_templates = static_cast<int>(templates_.size());
  // A join whose binding failed is complete already; report it now so
  // the callback contract (every query, at its completion instant)
  // holds for joins too.
  NotifyCompletions();
  return index;
}

ScanResume BatchExecutor::CaptureScanState() const {
  ScanResume resume;
  resume.consumed = consumed_;
  resume.cursor = cursor_;
  if (templates_.size() == 1) {
    resume.exhausted = templates_.front().exhausted;
  }
  return resume;
}

std::vector<BatchItem> BatchExecutor::TakeItems() {
  FASTMATCH_CHECK(started_) << "BatchExecutor::TakeItems before Start";
  FASTMATCH_CHECK(!taken_) << "BatchExecutor::TakeItems called twice";
  FASTMATCH_CHECK(!AnyActive())
      << "BatchExecutor::TakeItems with active queries";
  taken_ = true;
  pool_.reset();

  std::vector<BatchItem> items;
  items.reserve(queries_.size());
  for (QueryState& q : queries_) {
    BatchItem item;
    item.status = q.status;
    item.match = std::move(q.match);
    item.wall_seconds = q.wall_seconds;
    items.push_back(std::move(item));
  }
  return items;
}

std::vector<BatchItem> BatchExecutor::Run() {
  FASTMATCH_CHECK(!started_) << "BatchExecutor::Run after Start or Run";
  Start();
  while (Step()) {
  }
  return TakeItems();
}

}  // namespace fastmatch
