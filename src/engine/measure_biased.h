// Measure-biased sampling for SUM aggregations (paper Appendix A.1.1,
// after Ding et al. "Sample + Seek").
//
// To match histograms of SUM(Y) GROUP BY X instead of COUNT(*), one
// preprocessing pass draws rows with probability proportional to their Y
// value; COUNT-based matching on the biased sample then estimates the
// SUM-based histograms of the original relation. One biased sample is
// needed per measure attribute of interest.

#ifndef FASTMATCH_ENGINE_MEASURE_BIASED_H_
#define FASTMATCH_ENGINE_MEASURE_BIASED_H_

#include <memory>

#include "storage/column_store.h"
#include "util/result.h"

namespace fastmatch {

/// \brief Draws `sample_rows` rows of `store` i.i.d. with probability
/// proportional to attribute `y_attr` (whose dictionary codes are used as
/// magnitudes; rows with Y = 0 are never drawn), producing a new store
/// with the same schema.
///
/// The output is already in random order, so it can be scanned
/// sequentially by the engine like any pre-shuffled relation.
Result<std::shared_ptr<ColumnStore>> BuildMeasureBiasedSample(
    const ColumnStore& store, int y_attr, int64_t sample_rows, uint64_t seed);

}  // namespace fastmatch

#endif  // FASTMATCH_ENGINE_MEASURE_BIASED_H_
