#include "engine/measure_biased.h"

#include <vector>

#include "util/random.h"

namespace fastmatch {

Result<std::shared_ptr<ColumnStore>> BuildMeasureBiasedSample(
    const ColumnStore& store, int y_attr, int64_t sample_rows,
    uint64_t seed) {
  const int num_attrs = store.schema().num_attributes();
  if (y_attr < 0 || y_attr >= num_attrs) {
    return Status::InvalidArgument("y_attr out of range");
  }
  if (sample_rows <= 0) {
    return Status::InvalidArgument("sample_rows must be > 0");
  }
  const int64_t n = store.Pin().num_rows;
  if (n == 0) return Status::FailedPrecondition("empty store");

  // Row weights = Y magnitudes.
  std::vector<double> weights(static_cast<size_t>(n));
  const Column& y_col = store.column(y_attr);
  double total = 0;
  for (RowId r = 0; r < n; ++r) {
    weights[static_cast<size_t>(r)] = static_cast<double>(y_col.Get(r));
    total += weights[static_cast<size_t>(r)];
  }
  if (total <= 0) {
    return Status::FailedPrecondition(
        "measure attribute is zero everywhere; biased sample undefined");
  }

  AliasSampler row_sampler(weights);
  Rng rng(seed);

  auto sample =
      std::make_shared<ColumnStore>(store.schema(), StorageOptions{});
  sample->Reserve(sample_rows);
  std::vector<Value> row(num_attrs);
  for (int64_t i = 0; i < sample_rows; ++i) {
    const RowId r = static_cast<RowId>(row_sampler.Sample(&rng));
    for (int a = 0; a < num_attrs; ++a) {
      row[static_cast<size_t>(a)] = store.column(a).Get(r);
    }
    sample->AppendRow(row);
  }
  return sample;
}

}  // namespace fastmatch
