// Query execution: the four approaches of the paper's evaluation
// (Section 5.2) behind one interface.
//
//   Scan       exact heap scan; prunes by exact selectivity; always correct.
//   ScanMatch  HistSim termination, sequential reads, no block skipping.
//   SyncMatch  HistSim + AnyActive applied per block, synchronously (Alg 2).
//   FastMatch  HistSim + AnyActive with asynchronous lookahead (Alg 3).

#ifndef FASTMATCH_ENGINE_EXECUTOR_H_
#define FASTMATCH_ENGINE_EXECUTOR_H_

#include <memory>
#include <string_view>
#include <vector>

#include "core/histsim.h"
#include "core/params.h"
#include "engine/sampling_engine.h"
#include "index/bitmap_index.h"
#include "index/density_map.h"
#include "storage/column_store.h"
#include "util/result.h"

namespace fastmatch {

enum class Approach {
  kScan,
  kScanMatch,
  kSyncMatch,
  kFastMatch,
};

std::string_view ApproachName(Approach a);

struct Stage1Snapshot;   // engine/batch_executor.h
class PartitionedStore;  // storage/partitioned_store.h

/// \brief A fully bound query: data, index, attributes, resolved target,
/// algorithm parameters, engine knobs.
struct BoundQuery {
  std::shared_ptr<const ColumnStore> store;
  /// Bitmap index on the candidate attribute; required by SyncMatch and
  /// FastMatch, ignored by Scan and ScanMatch. Built once per (store,
  /// attribute) and shared across runs — index construction is
  /// preprocessing, not query time.
  std::shared_ptr<const BitmapIndex> z_index;
  /// Density map on the candidate attribute: the batch executor's
  /// second pre-skip authority. A template with no bitmap index but a
  /// density map skips blocks whose count is zero for every candidate
  /// in the chunk's union demand (instead of forcing sequential
  /// consumption); when both are present the bitmap index wins — a bit
  /// is set iff the count is non-zero, so the marks are identical and
  /// the bitmap's words are 8x denser. Ignored by the single-query
  /// RunQuery approaches.
  std::shared_ptr<const DensityMap> z_density;
  int z_attr = -1;
  std::vector<int> x_attrs;
  /// Resolved target distribution q (|VX| entries summing to 1).
  Distribution target;
  HistSimParams params;
  /// Lookahead batch size for FastMatch (paper default 1024).
  int lookahead = 1024;
  /// Warm start for the batch executor: when set, the query's machine
  /// begins past stage 1, seeded with this snapshot's counts (a stage-1
  /// cache hit made explicit). Must match the query's (store, z_attr,
  /// x_attrs) domain. Ignored by the single-query RunQuery approaches.
  std::shared_ptr<const Stage1Snapshot> stage1_warm;
  /// Store generation `stage1_warm` was validated against (0 = legacy,
  /// accept as-is). When the executor's pinned generation differs, the
  /// warm start is DROPPED and the query runs cold — a prior drawn at
  /// generation g must never silently stand in for generation g' > g
  /// (BatchStats::stale_warm_dropped counts these).
  uint64_t stage1_warm_generation = 0;
  /// Partition set for sharded execution: when set, `store` must be the
  /// set's source store and the query routes to a scatter-gather batch
  /// (ShardedBatchExecutor). Queries in one batch must all carry the
  /// same set. Ignored by the single-query RunQuery approaches.
  std::shared_ptr<const PartitionedStore> partitions;
  /// Per-partition warm starts for sharded execution: when non-empty,
  /// must have exactly `partitions->num_partitions()` slots (nulls mark
  /// partitions with no cached state); non-null entries merge into one
  /// overlapping stage-1 prior. Mutually exclusive with `stage1_warm`.
  std::vector<std::shared_ptr<const Stage1Snapshot>> stage1_warm_parts;
};

/// \brief Timing and I/O accounting for one run.
struct RunStats {
  double wall_seconds = 0;
  EngineStats engine;          // zeros for Scan
  HistSimDiagnostics histsim;  // zeros for Scan
};

struct RunOutput {
  MatchResult match;
  RunStats stats;
};

/// \brief Executes `query` with the given approach. End-to-end time
/// (sampling, statistics, output selection) is measured; index build and
/// data load are preprocessing and excluded, matching the paper's
/// methodology.
Result<RunOutput> RunQuery(const BoundQuery& query, Approach approach);

}  // namespace fastmatch

#endif  // FASTMATCH_ENGINE_EXECUTOR_H_
