#include "engine/sharded_batch_executor.h"

#include <memory>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace fastmatch {

Result<std::unique_ptr<ShardedBatchExecutor>> ShardedBatchExecutor::Create(
    const std::vector<BoundQuery>& queries,
    std::shared_ptr<const PartitionedStore> partitions, BatchOptions options) {
  if (partitions == nullptr) {
    return Status::InvalidArgument("Create: partition set is null");
  }
  FASTMATCH_RETURN_IF_ERROR(ValidateBatch(queries, options));
  if (queries.front().store.get() != partitions->source().get()) {
    return Status::InvalidArgument(
        "queries must run over the partition set's source store");
  }
  for (const BoundQuery& query : queries) {
    if (query.partitions == nullptr ||
        query.partitions->id() != partitions->id()) {
      return Status::InvalidArgument(
          "every query in a sharded batch must carry the batch's partition "
          "set");
    }
  }

  // Resolve the SET's pin: a versioned resume re-pins the donor's set
  // generation; otherwise pin the current one. The set pin carries a
  // consistent (logical geometry, per-partition pins, segment table)
  // snapshot — the whole scan runs against it.
  PartitionedPin ppin;
  if (options.resume.has_value() && options.resume->generation != 0) {
    FASTMATCH_ASSIGN_OR_RETURN(ppin,
                               partitions->PinAt(options.resume->generation));
  } else {
    ppin = partitions->Pin();
  }
  StorePin pin;
  pin.store_id = ppin.id;
  pin.generation = ppin.generation;
  pin.num_rows = ppin.num_rows;
  pin.num_blocks = ppin.num_blocks;
  pin.rows_per_block = ppin.rows_per_block;
  FASTMATCH_RETURN_IF_ERROR(CheckResumeGeometry(options, pin));

  auto executor = std::unique_ptr<ShardedBatchExecutor>(
      new ShardedBatchExecutor(queries.front().store, pin, std::move(options)));
  executor->partitions_ = std::move(partitions);
  executor->parts_.clear();
  const int num_parts = executor->partitions_->num_partitions();
  executor->parts_.reserve(static_cast<size_t>(num_parts));
  for (int p = 0; p < num_parts; ++p) {
    Partition part;
    part.store = executor->partitions_->partition(p);
    part.pin = ppin.parts[static_cast<size_t>(p)];
    executor->parts_.push_back(std::move(part));
  }
  executor->segments_ = std::move(ppin.segments);
  FASTMATCH_RETURN_IF_ERROR(Initialize(executor.get(), queries));
  return executor;
}

std::vector<PartitionIoStats> ShardedBatchExecutor::partition_stats() const {
  std::vector<PartitionIoStats> out;
  out.reserve(parts_.size());
  for (const Partition& part : parts_) {
    PartitionIoStats s;
    s.partition_store_id = part.store->id();
    s.blocks_read = part.blocks_read;
    s.rows_read = part.rows_read;
    out.push_back(s);
  }
  return out;
}

}  // namespace fastmatch
