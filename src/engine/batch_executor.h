// Shared-scan batch execution: N concurrent queries, one scan.
//
// A single FastMatch run reads blocks for one query; concurrent queries
// over the same store each re-read the same blocks. Under dashboard-style
// traffic (many users probing one relation) that is the dominant waste,
// and shared scans are the classic fix: touch each datum once for many
// consumers. The batch executor drives N HistSim state machines
// (core/histsim.h, HistSimMachine) round-robin and services all of their
// outstanding sample demands from ONE shared scan cursor, so a block read
// once feeds every query that needs it.
//
// Queries are grouped by (z_attr, x_attrs) "template". Queries sharing a
// template also share cumulative counts: a query's per-phase fresh counts
// are cumulative-minus-snapshot, where the snapshot is taken when the
// phase's demand is issued. Every query therefore folds a prefix of the
// shared block stream, which preserves the without-replacement sampling
// model per query (the store is pre-shuffled; the stream visits each
// block at most once).
//
// Per chunk (a window of `chunk_blocks` cursor positions):
//   1. union the unmet candidates of every outstanding targets demand per
//      template and mark the window with AnyActive (Algorithm 3's
//      word-wise marking, OR-ed across templates); any rows demand
//      (stage 1) — or a targets demand on an index-less template — forces
//      plain sequential consumption of the window;
//   2. read the marked, unconsumed blocks with the worker pool: each
//      worker slot scans a contiguous slice of the chunk into thread-
//      local CountMatrix shards (one per template), merged into the
//      template's cumulative matrix after the join. Counts are integer
//      sums over a deterministic block set, so results are bit-for-bit
//      identical for every thread count;
//   3. complete every phase whose demand is now satisfied (or whose
//      candidates are exhausted) and collect the next demands.
//
// Exhaustion mirrors the single-query engine: all blocks consumed =>
// every candidate's counts are exact; a full cursor cycle with zero reads
// => no unconsumed block contains any currently-unmet candidate, so those
// candidates are fully enumerated.
//
// Correctness of cross-query block sharing: for a candidate c that is
// unmet for some query, every block containing c is marked (c is in the
// union), so c's fresh samples arrive in cursor order — uniform without
// replacement, exactly as in the single-query engine. Blocks read for
// *other* queries' candidates add rows of already-satisfied candidates
// only, which the statistics tolerate by design (extra uniform samples
// never hurt; the single-query engine over-delivers the same way at
// block granularity).

#ifndef FASTMATCH_ENGINE_BATCH_EXECUTOR_H_
#define FASTMATCH_ENGINE_BATCH_EXECUTOR_H_

#include <memory>
#include <vector>

#include "core/histsim.h"
#include "engine/block_policy.h"
#include "engine/executor.h"
#include "engine/io_manager.h"
#include "index/bitmap_index.h"
#include "index/bitvector.h"
#include "storage/column_store.h"
#include "util/result.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace fastmatch {

/// Batch executor knobs.
struct BatchOptions {
  /// Block-reader worker threads (the WorkerPool size).
  int num_threads = 4;
  /// Shared-scan window: cursor positions marked and read per chunk.
  /// Plays the role of the single-query engine's lookahead batch.
  int chunk_blocks = 1024;
  /// Seed; chooses the shared cursor's random start position.
  uint64_t seed = 42;
};

/// I/O accounting for one batch run. `blocks_read` counts unique stream
/// blocks (the shared-scan win: B identical queries cost one read per
/// block, not B); `block_scans` counts block x template kernel passes.
struct BatchStats {
  int64_t blocks_read = 0;
  int64_t block_scans = 0;
  int64_t rows_read = 0;
  int64_t blocks_skipped = 0;  // unconsumed window positions left unread
  int64_t chunks = 0;          // scan rounds executed
  int num_templates = 0;
};

/// \brief Per-query outcome of a batch run (same order as the input).
struct BatchItem {
  /// Per-query status: one query failing (bad parameters, everything
  /// pruned) never sinks the rest of the batch.
  Status status;
  /// Valid when status.ok().
  MatchResult match;
  /// Seconds from batch start until this query completed.
  double wall_seconds = 0;
};

class BatchExecutor {
 public:
  /// \brief Creates an executor for one batch. All queries must share one
  /// ColumnStore (shared-scan batching is per store; route queries over
  /// different stores to different batches). Structural problems (empty
  /// batch, mixed stores, invalid index) fail here; per-query problems
  /// (bad parameters, wrong target size) surface as per-item statuses.
  static Result<std::unique_ptr<BatchExecutor>> Create(
      const std::vector<BoundQuery>& queries, BatchOptions options);

  /// \brief Runs every query to completion. Call exactly once.
  std::vector<BatchItem> Run();

  const BatchStats& stats() const { return stats_; }

 private:
  /// Per-(z_attr, x_attrs) shared state: one scan kernel, one cumulative
  /// count matrix, sticky exhaustion, and per-worker shards.
  struct TemplateState {
    int z_attr = -1;
    std::vector<int> x_attrs;
    std::unique_ptr<IoManager> io;
    std::shared_ptr<const BitmapIndex> index;  // null => no block skipping
    CountMatrix cum;
    int64_t rows_cum = 0;
    std::vector<bool> exhausted;  // sticky: candidate fully enumerated
    std::vector<CountMatrix> shards;  // one per worker slot
    std::vector<uint64_t> scratch;
    std::vector<uint8_t> marks;
    BlockDemand demand;            // per-chunk union of unmet candidates
    std::vector<bool> unmet_seen;  // per-chunk dedup scratch
    bool has_active = false;       // any live query this chunk
  };

  struct QueryState {
    explicit QueryState(HistSimMachine m) : machine(std::move(m)) {}
    HistSimMachine machine;
    size_t tmpl = 0;
    CountMatrix snapshot;  // cumulative counts at current phase start
    int64_t snap_rows = 0;
    bool active = false;
    Status status;
    MatchResult match;
    double wall_seconds = 0;
  };

  BatchExecutor(std::shared_ptr<const ColumnStore> store,
                BatchOptions options);

  void AddQuery(const BoundQuery& query);
  Status BindQuery(const BoundQuery& query, QueryState* qs);
  bool AnyActive() const;
  /// Completes every phase whose demand is satisfied, to fixpoint.
  void Settle(const WallTimer& timer);
  bool DemandSatisfied(const QueryState& q, bool all_consumed) const;
  void SupplyPhase(QueryState* q, bool all_consumed, const WallTimer& timer);
  /// Marks and reads one shared-scan window; maintains the zero-read
  /// streak that drives the exhaustion rule.
  void ReadChunk(int64_t* streak);

  std::shared_ptr<const ColumnStore> store_;
  BatchOptions options_;
  int64_t num_blocks_ = 0;
  BlockId cursor_ = 0;
  BitVector consumed_;
  int64_t consumed_blocks_ = 0;
  std::vector<TemplateState> templates_;
  std::vector<QueryState> queries_;
  std::unique_ptr<WorkerPool> pool_;
  std::vector<uint8_t> marked_;  // per-chunk OR of template marks
  BatchStats stats_;
  bool ran_ = false;
};

}  // namespace fastmatch

#endif  // FASTMATCH_ENGINE_BATCH_EXECUTOR_H_
