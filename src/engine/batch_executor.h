// Shared-scan batch execution: N concurrent queries, one scan.
//
// A single FastMatch run reads blocks for one query; concurrent queries
// over the same store each re-read the same blocks. Under dashboard-style
// traffic (many users probing one relation) that is the dominant waste,
// and shared scans are the classic fix: touch each datum once for many
// consumers. The batch executor drives N HistSim state machines
// (core/histsim.h, HistSimMachine) round-robin and services all of their
// outstanding sample demands from ONE shared scan cursor, so a block read
// once feeds every query that needs it.
//
// Queries are grouped by (z_attr, x_attrs) "template". Queries sharing a
// template also share cumulative counts: a query's per-phase fresh counts
// are cumulative-minus-snapshot, where the snapshot is taken when the
// phase's demand is issued. Every query therefore folds a prefix of the
// shared block stream, which preserves the without-replacement sampling
// model per query (the store is pre-shuffled; the stream visits each
// block at most once).
//
// Per chunk (a window of `chunk_blocks` cursor positions):
//   1. union the unmet candidates of every outstanding targets demand per
//      template and mark the window with AnyActive (Algorithm 3's
//      word-wise marking from the bitmap index, or density-map marking
//      for a template carrying only a DensityMap, OR-ed across
//      templates); any rows demand (stage 1) — or a targets demand on a
//      template with neither pre-skip authority — forces plain
//      sequential consumption of the window. Pre-skipped blocks are
//      never enqueued, stay UNCONSUMED (a later demand may still want
//      them — resume/pinned-scan semantics unchanged), and count into
//      BatchStats::blocks_skipped; a fully-skipped cursor cycle feeds
//      the exhaustion rule exactly as before;
//   2. read the marked, unconsumed blocks with the worker pool: each
//      worker slot scans a contiguous slice of the chunk into thread-
//      local CountMatrix shards (one per template), merged into the
//      template's cumulative matrix after the join. Counts are integer
//      sums over a deterministic block set, so results are bit-for-bit
//      identical for every thread count;
//   3. complete every phase whose demand is now satisfied (or whose
//      candidates are exhausted) and collect the next demands.
//
// Exhaustion mirrors the single-query engine: all blocks consumed =>
// every candidate's counts are exact; a full cursor cycle with zero reads
// => no unconsumed block contains any currently-unmet candidate, so those
// candidates are fully enumerated.
//
// Correctness of cross-query block sharing: for a candidate c that is
// unmet for some query, every block containing c is marked (c is in the
// union), so c's fresh samples arrive in cursor order — uniform without
// replacement, exactly as in the single-query engine. Blocks read for
// *other* queries' candidates add rows of already-satisfied candidates
// only, which the statistics tolerate by design (extra uniform samples
// never hurt; the single-query engine over-delivers the same way at
// block granularity).
//
// Streaming admission (mid-flight Join): a batch need not be closed at
// Create. A late query may Join() a running scan at any chunk boundary;
// it snapshots the shared cumulative counts at entry, so its per-phase
// fresh counts come from the remaining scan suffix only. This is sound
// for the same reason block-level sampling is sound: the store's rows are
// pre-shuffled across blocks, so marginally over the shuffle, any scan
// suffix is still a uniform without-replacement sample of the relation —
// the joined machine runs against the full-relation population (Begin is
// given the store's total row count) and simply starts drawing at a later
// position of the permutation. A joined query is therefore EQUIVALENT to
// a fresh solo batch resumed from the donor scan's state —
// *bit-for-bit* when no other query is still active (otherwise
// concurrent queries' union demand reads extra blocks, over-delivering
// uniform samples to the joined machine: statistically harmless, but
// not byte-identical to a solo resume driven by its demand alone) —
// and CaptureScanState() + BatchOptions::resume exist precisely so
// tests can assert that equivalence. One caveat is inherited
// exhaustion: when every block of candidate c is consumed, c is
// "exhausted" for a joined query too — meaning no further fresh samples
// of c can ever arrive, so its MatchResult::exact flag reports exactness
// over the query's own sampling window (the suffix), not over the full
// relation.
//
// Warm stage-1 starts: stage 1 is target-independent per template, so
// one query's completed stage-1 sample serves every later query on the
// same (store, template). The executor participates at both ends: it
// EXPORTS each stage-1 phase completed from the scan as a
// Stage1Snapshot (BatchOptions::stage1_sink, typically the service
// tier's Stage1Cache), and it CONSUMES a snapshot attached to a query
// (BoundQuery::stage1_warm) by warm-starting that query's machine past
// stage 1 — at Create or mid-flight at Join, where a warm newcomer no
// longer needs the scan suffix to cover its stage-1 draw. Soundness is
// the same pre-shuffled-store argument as suffix joins: the cached
// prefix is a uniform without-replacement sample, every later phase
// draws its own fresh sample, and each phase's statistics use only its
// own sample (the fresh-counter rule). A warm query resumed from the
// snapshot's scan state (BatchOptions::resume = snapshot.scan) is
// bit-for-bit identical to the cold run that produced the snapshot —
// the equivalence the warm-start tests assert.
//
// Horizontal sharding (ShardedBatchExecutor, engine/
// sharded_batch_executor.h): the scan substrate is partition-aware —
// every batch reads through a list of (partition store, block offset)
// slices, which has exactly one entry (the whole store) unless the
// batch was created over a PartitionedStore. The sharded run keeps the
// SAME logical cursor, chunk schedule, marking, and exhaustion logic in
// logical block space and only scatters each marked block's read to its
// partition's IoManager, gathering per-worker-per-partition CountMatrix
// shards with commutative integer-sum merges — which is why a P-way run
// is bit-for-bit identical to the P=1 run at every thread count.
//
// Concurrency contract: the executor itself holds NO locks — by design
// it has exactly one driver thread (the store's pipeline loop), which
// calls Start/Step/Join/Evict/TakeItems strictly sequentially, and the
// only parallelism is the per-chunk ParallelFor fork-join into the
// shared worker pool (whose own queue is guarded inside WorkerPool;
// see docs/ARCHITECTURE.md, "Concurrency & lock hierarchy"). Worker
// slots write disjoint CountMatrix shards, so no executor state needs
// a mutex and the class stays invisible to the lock hierarchy. The
// completion callback fires synchronously on the driver thread.

#ifndef FASTMATCH_ENGINE_BATCH_EXECUTOR_H_
#define FASTMATCH_ENGINE_BATCH_EXECUTOR_H_

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/histsim.h"
#include "engine/block_policy.h"
#include "engine/executor.h"
#include "engine/io_manager.h"
#include "index/bitmap_index.h"
#include "index/bitvector.h"
#include "storage/column_store.h"
#include "storage/partitioned_store.h"
#include "util/result.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace fastmatch {

/// \brief A scan position to resume from: which blocks a donor scan has
/// already consumed (they will never be read) and where its cursor
/// stands. Produced by BatchExecutor::CaptureScanState() and accepted via
/// BatchOptions::resume; a resumed solo run is the reference semantics of
/// a mid-flight Join() (bit-for-bit identical, see the header comment).
struct ScanResume {
  /// Blocks already consumed by the donor scan; size must equal the
  /// store's block count AT THE DONOR'S PINNED GENERATION.
  BitVector consumed;
  /// Cursor position the donor scan would read next; in [0, num_blocks).
  BlockId cursor = 0;
  /// Candidate-exhaustion knowledge learned by the donor scan. Optional;
  /// when non-empty the resumed batch must form exactly one (Z, X)
  /// template and the size must equal its candidate count.
  std::vector<bool> exhausted;
  /// Store generation the donor scan was pinned at. A resuming batch
  /// re-pins THIS generation (not the current one), so the resumed run
  /// scans exactly the donor's block space even if the store has grown
  /// since — the condition for bit-for-bit resume equivalence. 0 means
  /// legacy/unversioned: resume against the current generation.
  uint64_t generation = 0;
};

/// \brief One completed stage-1 phase, exported by the batch executor
/// at the chunk boundary that finished it and replayable as a warm
/// start (core Stage1Prior) by any later query on the same (store,
/// template) — stage 1 is target-independent, so the counts serve every
/// future target.
///
/// `counts`/`rows_drawn` follow the stage-1 Supply contract: the
/// phase's fresh rows and only those. `scan` is the shared scan's state
/// at export time: `consumed`/`cursor` always describe the donor scan
/// (feeding them to BatchOptions::resume yields the disjoint-suffix
/// solo run a warm start is equivalent to); `scan.exhausted` is filled
/// ONLY when `counts` covers every consumed row, so an exhausted flag
/// always certifies the row's counts as exact — a consumer may hand it
/// to Stage1Prior::exhausted as-is.
struct Stage1Snapshot {
  CountMatrix counts;
  int64_t rows_drawn = 0;
  ScanResume scan;
};

/// \brief Partition sub-key for stage-1 publishes that cover a whole
/// (unpartitioned) store's scan. ColumnStore ids start at 1, so 0 can
/// never collide with a real partition store's id.
inline constexpr uint64_t kWholeStorePartition = 0;

/// \brief Where the batch executor publishes stage-1 snapshots
/// (implemented by the service tier's Stage1Cache). One executor
/// publishes from its single driving thread, but many executors share a
/// sink, so implementations must be thread-safe.
class Stage1Sink {
 public:
  virtual ~Stage1Sink() = default;
  /// \brief Offers a snapshot for (store_id, partition_id, z_attr,
  /// x_attrs). An unpartitioned scan publishes under
  /// kWholeStorePartition; a sharded scan publishes one snapshot per
  /// partition, keyed by the partition store's own ColumnStore::id()
  /// with the partition SET's id as store_id — warm starts stay
  /// per-partition-sound (a partition's snapshot is a uniform sample of
  /// the relation drawn from THAT partition's rows only, so it must
  /// never serve another partition's sub-key). The sink owns admission
  /// policy (keep the bigger sample, TTL, capacity); a publish may be
  /// dropped silently.
  virtual void Publish(uint64_t store_id, uint64_t partition_id, int z_attr,
                       const std::vector<int>& x_attrs,
                       std::shared_ptr<const Stage1Snapshot> snapshot) = 0;
};

/// \brief Batch executor knobs.
struct BatchOptions {
  /// Block-reader worker slots. With a private pool this is the pool
  /// size; with `shared_pool` set it is the batch's concurrency quota
  /// on that pool (at most this many shared workers at once).
  int num_threads = 4;
  /// Shared-scan window: cursor positions marked and read per chunk.
  /// Plays the role of the single-query engine's lookahead batch.
  int chunk_blocks = 1024;
  /// Seed; chooses the shared cursor's random start position (ignored
  /// when `resume` is set).
  uint64_t seed = 42;
  /// When set, the scan continues a donor scan instead of starting
  /// fresh: pre-consumed blocks are never read and the cursor starts at
  /// the donor's position. See ScanResume.
  std::optional<ScanResume> resume;
  /// When non-null, block reads run on this process-wide pool (at most
  /// num_threads tasks at once — the batch's quota) instead of a
  /// private per-batch WorkerPool. The pool must outlive the executor.
  /// Shard layout and results are identical either way: shard count is
  /// num_threads and merges are commutative integer sums.
  SharedWorkerPool* shared_pool = nullptr;
  /// When non-null, every stage-1 phase completed from the scan is
  /// exported here as a Stage1Snapshot (warm-started queries complete
  /// stage 1 without the scan, so they never export). The sink must
  /// outlive the executor.
  Stage1Sink* stage1_sink = nullptr;
};

/// \brief I/O accounting for one batch run. `blocks_read` counts unique
/// stream blocks (the shared-scan win: B identical queries cost one read
/// per block, not B); `block_scans` counts block x template kernel
/// passes.
struct BatchStats {
  /// Unique blocks read from the store.
  int64_t blocks_read = 0;
  /// Block x template kernel passes (>= blocks_read with >1 template).
  int64_t block_scans = 0;
  /// Rows decoded across all read blocks.
  int64_t rows_read = 0;
  /// Unconsumed window positions the marking policy left unread.
  int64_t blocks_skipped = 0;
  /// Scan rounds (chunks) executed.
  int64_t chunks = 0;
  /// Queries admitted mid-flight through Join().
  int64_t joined_queries = 0;
  /// Queries removed mid-flight through Evict().
  int64_t evicted_queries = 0;
  /// Queries removed mid-flight through EvictWithResult(): their machine
  /// was harvested into a best-effort MatchResult instead of a
  /// Cancelled status.
  int64_t harvested_queries = 0;
  /// Queries that skipped stage 1 via BoundQuery::stage1_warm.
  int64_t warm_queries = 0;
  /// Warm starts DROPPED because their generation did not match the
  /// batch's pinned generation (the query ran cold instead): a stage-1
  /// prior drawn at generation g is never served at generation g' != g
  /// without the service tier's explicit revalidation.
  int64_t stale_warm_dropped = 0;
  /// Stage-1 snapshots published to BatchOptions::stage1_sink.
  int64_t stage1_exports = 0;
  /// Distinct (z_attr, x_attrs) templates in the batch.
  int num_templates = 0;
  /// Scan partitions fed by the scatter-gather read path (1 unless the
  /// batch runs over a PartitionedStore).
  int num_partitions = 1;
};

/// \brief Per-query outcome of a batch run (same order as the input;
/// joined queries follow in Join() order).
struct BatchItem {
  /// Per-query status: one query failing (bad parameters, everything
  /// pruned) never sinks the rest of the batch.
  Status status;
  /// Valid when status.ok().
  MatchResult match;
  /// Seconds from batch start (Start()/Run()) until this query
  /// completed. For a joined query this still counts from batch start,
  /// not from its Join().
  double wall_seconds = 0;
};

/// \brief Shared-scan executor for N concurrent queries over one store.
///
/// Two driving protocols:
///   * closed batch:  Create() then Run() — everything in one call;
///   * streaming:     Create(), Start(), then Step() until it returns
///     false, then TakeItems(). Between Step() calls (chunk boundaries)
///     late queries may be admitted with Join(). This is the protocol the
///     service-tier QueryScheduler drives.
class BatchExecutor {
 public:
  /// \brief Creates an executor for one batch. All queries must share one
  /// ColumnStore (shared-scan batching is per store; route queries over
  /// different stores to different batches). Structural problems (empty
  /// batch, mixed stores, invalid index, malformed resume state) fail
  /// here; per-query problems (bad parameters, wrong target size)
  /// surface as per-item statuses.
  static Result<std::unique_ptr<BatchExecutor>> Create(
      const std::vector<BoundQuery>& queries, BatchOptions options);

  /// \brief Runs every query to completion and returns the items. Call
  /// exactly once; mutually exclusive with the Start()/Step() protocol.
  std::vector<BatchItem> Run();

  /// \brief Starts the scan (worker pool, shard matrices, cursor) and
  /// settles any immediately-satisfiable phases. Call exactly once
  /// before Step()/Join().
  void Start();

  /// \brief Executes one shared-scan chunk (mark, read, settle) and
  /// returns true while any query is still active. Requires Start().
  /// A false return means every query completed: call TakeItems().
  bool Step();

  /// \brief Admits a late query into the running scan at the current
  /// chunk boundary. The query's machine snapshots the template's shared
  /// cumulative counts at entry, so it is fed exclusively from the
  /// remaining scan suffix (see the header comment for why that is a
  /// sound uniform without-replacement sample).
  ///
  /// Returns the query's index among TakeItems() on success. Structural
  /// errors return a Status: Join() before Start() or after TakeItems(),
  /// a query over a different store, or an empty scan suffix (every
  /// block already consumed — the caller must fall back to a fresh
  /// batch). Per-query binding problems are accepted and surface as the
  /// item's status, exactly as in Create().
  Result<size_t> Join(const BoundQuery& query);

  /// \brief Removes a still-active query from the running batch: its
  /// machine stops, its template's contribution leaves the union block
  /// demand from the next chunk on (blocks only its candidates wanted
  /// are no longer marked), and its item reports Cancelled. Fails with
  /// OutOfRange for an unknown index and FailedPrecondition when the
  /// query already completed — in that race the result exists and the
  /// caller should deliver it instead. The completion callback does
  /// fire for the evicted query (with the Cancelled item), so callers
  /// observe every query's terminal transition through one channel.
  Status Evict(size_t index);

  /// \brief Removes a still-active query like Evict(), but instead of a
  /// Cancelled item the query's machine is harvested: its pooled sample
  /// so far (all folded phases plus the in-flight phase's fresh counts)
  /// is finalized into a best-effort MatchResult with
  /// `best_effort = true` and honest non-exact error bars, delivered as
  /// an OK item. This is the execution-budget seam: an expired query
  /// still answers with whatever confidence its sample bought.
  ///
  /// Same failure contract as Evict(): OutOfRange for an unknown index,
  /// FailedPrecondition("query already completed") when the machine
  /// finished first — in that race the exact result exists and the
  /// caller must deliver IT, never a partial. The completion callback
  /// (and a final ProgressUpdate, if a progress callback is set) fires
  /// for the harvested query.
  Status EvictWithResult(size_t index);

  /// \brief Registers `fn`, called exactly once per query at the moment
  /// it completes — result ready, per-query failure, or eviction — with
  /// the query's TakeItems() index and a copy of its item (passed by
  /// value so the receiver can move it onward). This is the
  /// eager-delivery hook: a machine finishing mid-scan surfaces here at
  /// the chunk boundary that finished it, not at batch retire.
  ///
  /// Calls happen synchronously on the driving thread, inside Start(),
  /// Step(), Join() (a join whose binding fails completes instantly),
  /// and Evict(). Must be set before Start(); fn must not re-enter the
  /// executor. Queries already failed at Create() are reported from
  /// Start(). TakeItems() is unaffected: it still returns every item,
  /// so retire-time consumers need no callback.
  void SetCompletionCallback(std::function<void(size_t, BatchItem)> fn);

  /// \brief Registers `fn`, called at every chunk boundary for every
  /// still-active query with its current anytime snapshot (top-k so
  /// far, per-candidate distances and Theorem-1 error bars over the
  /// pooled sample — see HistSimMachine::Progress), and exactly once
  /// more per OK query at completion with `final_update = true`, where
  /// the update mirrors the delivered MatchResult bit-for-bit. Per
  /// query, `sequence` increases strictly from 1 and error bars shrink
  /// weakly (the pooled sample only grows).
  ///
  /// Same discipline as the completion callback: synchronous on the
  /// driving thread, set before Start(), fn must not re-enter the
  /// executor. Unset (the default) costs the scan nothing.
  void SetProgressCallback(std::function<void(size_t, const ProgressUpdate&)> fn);

  /// \brief Moves out the per-query outcomes. Requires Start() and no
  /// remaining active queries; valid once.
  std::vector<BatchItem> TakeItems();

  /// \brief True once every admitted query has completed (or failed).
  bool finished() const { return !AnyActive(); }

  /// \brief Queries still running (admitted minus completed/failed).
  int num_active() const;

  /// \brief Total queries admitted so far (Create() plus Join()).
  size_t num_queries() const { return queries_.size(); }

  /// \brief Snapshot of the scan position: consumed blocks, cursor, and
  /// (single-template batches only) candidate-exhaustion knowledge.
  /// Feeding this to BatchOptions::resume yields the suffix-only solo
  /// run a Join() at this boundary is equivalent to.
  ScanResume CaptureScanState() const;

  /// \brief Unique blocks consumed so far (pre-consumed resume blocks
  /// included). Equal to the store's block count iff the suffix is
  /// empty, at which point Join() is rejected.
  int64_t consumed_blocks() const { return consumed_blocks_; }

  /// \brief I/O accounting so far (final after the last Step()/Run()).
  const BatchStats& stats() const { return stats_; }

  /// \brief The logical scan geometry this batch is pinned to. Every
  /// size the batch reasons with (block count, row count, all-consumed
  /// checks, machine populations) comes from here, never from the live
  /// store — a concurrent append cannot move the scan's goalposts.
  const StorePin& pin() const { return pin_; }

 protected:
  /// One slice of the logical scan: a partition store plus its PINNED
  /// geometry, with per-partition I/O accounting. An unpartitioned
  /// batch has exactly one entry — the whole store — so the
  /// scatter-gather read path is the only read path. The mapping from
  /// logical blocks to (partition, local block) lives in segments_.
  struct Partition {
    std::shared_ptr<const ColumnStore> store;
    StorePin pin;
    int64_t blocks_read = 0;
    int64_t rows_read = 0;
  };

  BatchExecutor(std::shared_ptr<const ColumnStore> store, StorePin pin,
                BatchOptions options);

  /// Shared Create tail for the plain and sharded factories: installs
  /// resume state, binds every query, validates resume exhaustion
  /// flags. The caller has already validated options, store sharing,
  /// and (for the sharded factory) partition-set consistency.
  static Status Initialize(BatchExecutor* executor,
                           const std::vector<BoundQuery>& queries);

  /// Structural validation shared by both factories: options ranges and
  /// one shared store. Pin-dependent checks (empty store, resume
  /// geometry) live in CheckResumeGeometry, called by each factory
  /// after it resolved the batch's pin.
  static Status ValidateBatch(const std::vector<BoundQuery>& queries,
                              const BatchOptions& options);

  /// Pin-dependent structural checks: non-empty pinned store, resume
  /// consumed-bitvector size and cursor range against the pinned block
  /// count.
  static Status CheckResumeGeometry(const BatchOptions& options,
                                    const StorePin& pin);

  /// The logical scan's partitions (size 1 unless sharded). Filled by
  /// the constructor (whole store) or the sharded factory; immutable
  /// once the first query is bound.
  std::vector<Partition> parts_;
  /// Logical-to-physical block mapping: contiguous runs, ordered by
  /// logical_begin (the pinned prefix of the partition set's segment
  /// table; one whole-store segment when unpartitioned). Filled by the
  /// constructor or the sharded factory alongside parts_.
  std::vector<ScanSegment> segments_;
  /// Non-null iff this batch scatter-gathers over a PartitionedStore
  /// (set by ShardedBatchExecutor before Initialize).
  std::shared_ptr<const PartitionedStore> partitions_;

 private:
  /// Per-(z_attr, x_attrs) shared state: one scan kernel per partition,
  /// one cumulative count matrix, sticky exhaustion, and per-worker
  /// per-partition shards.
  struct TemplateState {
    int z_attr = -1;
    std::vector<int> x_attrs;
    /// One reader per partition (ios[p] reads parts_[p].store);
    /// ios.front() doubles as the domain authority (num_candidates /
    /// num_groups are schema-wide, identical across partitions).
    std::vector<std::unique_ptr<IoManager>> ios;
    std::shared_ptr<const BitmapIndex> index;  // pre-skip authority #1
    /// Pre-skip authority #2: used for AnyActive marking only when
    /// `index` is null (both null => no block skipping, targets demands
    /// force sequential consumption).
    std::shared_ptr<const DensityMap> density;
    CountMatrix cum;
    int64_t rows_cum = 0;
    /// Sharded stage-1 export bookkeeping (sized only when the batch is
    /// partitioned AND a stage1_sink is set): partition p's share of
    /// `cum` / `rows_cum`, so a completed stage-1 phase can be
    /// published per partition.
    std::vector<CountMatrix> part_cum;
    std::vector<int64_t> part_rows_cum;
    std::vector<bool> exhausted;  // sticky: candidate fully enumerated
    /// Worker-slot shard matrices, laid out [slot * P + partition]: a
    /// slot writes only its own P matrices, so shards stay disjoint
    /// across workers and merges stay commutative integer sums.
    std::vector<CountMatrix> shards;
    std::vector<uint64_t> scratch;
    std::vector<uint8_t> marks;
    BlockDemand demand;            // per-chunk union of unmet candidates
    std::vector<bool> unmet_seen;  // per-chunk dedup scratch
    bool has_active = false;       // any live query this chunk
  };

  struct QueryState {
    explicit QueryState(HistSimMachine m) : machine(std::move(m)) {}
    HistSimMachine machine;
    size_t tmpl = 0;
    CountMatrix snapshot;  // cumulative counts at current phase start
    int64_t snap_rows = 0;
    bool active = false;
    bool notified = false;  // terminal callbacks already fired
    Status status;
    MatchResult match;
    double wall_seconds = 0;
    uint64_t progress_seq = 0;  // last ProgressUpdate::sequence issued
  };

  void AddQuery(const BoundQuery& query);
  Status BindQuery(const BoundQuery& query, QueryState* qs);
  bool AnyActive() const;
  /// Completes every phase whose demand is satisfied, to fixpoint.
  void Settle();
  bool DemandSatisfied(const QueryState& q, bool all_consumed) const;
  void SupplyPhase(QueryState* q, bool all_consumed);
  /// Sizes a template's per-worker shard matrices (no-op before Start).
  void SizeShards(TemplateState* ts);
  /// Marks and reads one shared-scan window; maintains the zero-read
  /// streak that drives the exhaustion rule.
  void ReadChunk();
  /// Resolves logical block b to its (partition, partition-local block)
  /// through the pinned segment table.
  void Locate(BlockId b, int* part, BlockId* local) const;
  /// Publishes a completed stage-1 phase to the sink: one whole-store
  /// snapshot when unpartitioned, one snapshot per partition when
  /// sharded (and the per-partition decomposition is available).
  void ExportStage1(const QueryState& q, const TemplateState& ts,
                    CountMatrix fresh, int64_t drawn);
  /// Worker slots feeding per-chunk reads (private pool size or the
  /// shared-pool quota); valid after Start().
  int NumSlots() const;
  /// Fires the terminal callbacks for every newly-inactive query: the
  /// final ProgressUpdate (OK queries, progress callback set) then the
  /// completion callback.
  void NotifyCompletions();
  /// Fires the progress callback for every still-active query with its
  /// current pooled-sample snapshot (chunk-boundary emission).
  void EmitProgress();

  std::shared_ptr<const ColumnStore> store_;
  BatchOptions options_;
  /// The batch's pinned logical geometry (for a sharded batch the
  /// store_id is the partition SET's id and generation the set's).
  StorePin pin_;
  int64_t num_blocks_ = 0;  // == pin_.num_blocks
  BlockId cursor_ = 0;
  BitVector consumed_;
  int64_t consumed_blocks_ = 0;
  /// Rows across blocks consumed by THIS scan (resume-prefix blocks
  /// excluded): lets the stage-1 export tell when a template's
  /// cumulative rows cover every consumed row, which is the condition
  /// for publishing exhaustion flags (see Stage1Snapshot).
  int64_t consumed_rows_ = 0;
  int64_t streak_ = 0;  // zero-read cursor positions in a row
  std::vector<TemplateState> templates_;
  std::vector<QueryState> queries_;
  std::unique_ptr<WorkerPool> pool_;
  std::vector<uint8_t> marked_;  // per-chunk OR of template marks
  // Per-chunk scatter scratch: to_read[i] maps to partition
  // read_part_[i], local block read_local_[i]; chunk_part_rows_[p] is
  // the chunk's decoded rows in partition p.
  std::vector<int> read_part_;
  std::vector<BlockId> read_local_;
  std::vector<int64_t> chunk_part_rows_;
  std::function<void(size_t, BatchItem)> on_complete_;
  std::function<void(size_t, const ProgressUpdate&)> on_progress_;
  BatchStats stats_;
  WallTimer timer_;  // restarted at Start(); item wall_seconds base
  bool started_ = false;
  bool taken_ = false;
};

}  // namespace fastmatch

#endif  // FASTMATCH_ENGINE_BATCH_EXECUTOR_H_
