// The I/O manager (paper Section 4.1): synchronous block reads.
//
// Given a block id, scans the block's rows of the candidate (Z) and
// grouping (X) columns and accumulates (candidate, group) counts
// through the scan kernels in engine/scan_kernel.h (AVX2 when the
// build and host support it, the scalar reference otherwise — the two
// are bit-for-bit interchangeable). Per-candidate fresh-sample totals
// are additionally published through an optional atomic array so a
// concurrent marking thread (the sampling engine's lookahead) can
// observe progress without locking.

#ifndef FASTMATCH_ENGINE_IO_MANAGER_H_
#define FASTMATCH_ENGINE_IO_MANAGER_H_

#include <atomic>
#include <memory>
#include <optional>
#include <vector>

#include "core/histogram.h"
#include "storage/column_store.h"
#include "util/result.h"

namespace fastmatch {

class IoManager {
 public:
  /// \brief Creates a reader for (z_attr, x_attrs) of `store`. Multiple
  /// x attributes form a mixed-radix composite group (Appendix A.1.3).
  ///
  /// All reads go through a pinned StoreView: pass `view` to scan a
  /// specific generation (the caller got it from PinViewAt), or omit it
  /// to pin the store's current generation. Reads are immune to
  /// concurrent appends either way.
  static Result<std::unique_ptr<IoManager>> Create(
      std::shared_ptr<const ColumnStore> store, int z_attr,
      std::vector<int> x_attrs, std::optional<StoreView> view = std::nullopt);

  /// \brief Scans block `b`, adding counts into `out`. When
  /// `fresh_counts` is non-null, each candidate's per-call total is also
  /// incremented there. Returns the number of rows scanned.
  ///
  /// fresh_counts contract (SINGLE WRITER): the counters are published
  /// with a relaxed load+store — not a fetch_add — which is only sound
  /// when at most ONE thread ever passes a given `fresh_counts` array;
  /// a second concurrent writer would silently lose increments. The
  /// intended topology is the sampling engine's: one I/O thread writes,
  /// the marking thread reads (relaxed; the counters are monotone
  /// progress signals, not synchronization). The scan kernels tally a
  /// block's rows locally and flush ONCE per block, so a reader
  /// observes block-granular jumps — still monotone per candidate, at
  /// most one block behind. tests/test_io_manager.cc pins this contract
  /// under TSan.
  ///
  /// Thread safety: ReadBlock/ReadBlocks are const and touch only the
  /// immutable store, so concurrent calls are safe as long as each call
  /// targets a distinct `out` matrix (and, per the contract above, at
  /// most one concurrent caller passes fresh_counts). The batch
  /// executor exploits this by fanning a chunk's blocks across workers,
  /// one CountMatrix shard per worker (fresh_counts always null), and
  /// merging the shards after the join.
  int64_t ReadBlock(BlockId b, CountMatrix* out,
                    std::atomic<int64_t>* fresh_counts) const;

  /// \brief Shard read: scans blocks[begin, end) into `shard` (no fresh
  /// counters). Returns the number of rows scanned.
  int64_t ReadBlocks(const std::vector<BlockId>& blocks, size_t begin,
                     size_t end, CountMatrix* shard) const;

  int num_candidates() const { return num_candidates_; }
  int num_groups() const { return num_groups_; }
  const ColumnStore& store() const { return *store_; }

  /// \brief The pinned geometry every read resolves against.
  const StorePin& pin() const { return view_.pin(); }

 private:
  /// The candidate/group domain of one (z_attr, x_attrs) binding,
  /// computed and bound-checked in exactly one place: Create() rejects
  /// out-of-range attributes, composite group cardinalities over 2^24,
  /// and candidate cardinalities that do not fit an int; the
  /// constructor re-asserts the invariants instead of recomputing them
  /// (narrowing casts must not silently drift from the checks).
  struct Domain {
    int num_candidates = 0;
    int num_groups = 0;
    std::vector<int> x_cards;
  };
  static Result<Domain> ComputeDomain(const Schema& schema, int z_attr,
                                      const std::vector<int>& x_attrs);

  IoManager(std::shared_ptr<const ColumnStore> store, int z_attr,
            std::vector<int> x_attrs, Domain domain, StoreView view);

  template <typename ZT, typename XT>
  int64_t ReadBlockTyped(BlockId b, CountMatrix* out,
                         std::atomic<int64_t>* fresh_counts) const;
  int64_t ReadBlockGeneric(BlockId b, CountMatrix* out,
                           std::atomic<int64_t>* fresh_counts) const;
  /// Publishes a block's per-candidate tally into fresh_counts (the
  /// once-per-block flush of the single-writer contract above).
  void FlushFresh(const int64_t* tally,
                  std::atomic<int64_t>* fresh_counts) const;

  /// Keeps the chunk memory the view points into alive.
  std::shared_ptr<const ColumnStore> store_;
  /// Generation-pinned read handle: chunk pointers + frozen geometry.
  StoreView view_;
  int z_attr_;
  std::vector<int> x_attrs_;
  std::vector<int> x_cards_;
  int num_candidates_ = 0;
  int num_groups_ = 0;
};

}  // namespace fastmatch

#endif  // FASTMATCH_ENGINE_IO_MANAGER_H_
