// AVX2 scan-kernel bodies (see scan_kernel.h for the selection model).
//
// This is the only translation unit compiled with -mavx2 (the
// FASTMATCH_SIMD CMake option); everything here runs strictly behind
// the runtime ScanKernelSimdSupported() gate in scan_kernel.cc. When
// the option is OFF the same file compiles to CHECK-fail stubs, so the
// link interface never changes.
//
// Kernel shape, per tile of up to kKeyTile rows:
//
//   1. key precompute — 8 rows per step are widened to u32 lanes
//      (vpmovzxbd / vpmovzxwd / plain load, per ValueType) and folded
//      into flat cell keys z * |VX| + x with vpmulld + vpaddd; the
//      generic multi-x case folds one mul+add per x column
//      (mixed-radix). Keys spill to a stack tile; tail rows (< 8) are
//      computed scalar, which is why odd tail lengths are a dimension
//      of the differential suite.
//
//   2. accumulate — small domains (cells <= kLocalCells) count into
//      four interleaved u16 sub-histograms (four independent
//      read-modify-write chains instead of one) and fold them into the
//      int64 matrix once per tile; large domains add directly. A u16
//      sub-histogram cell cannot overflow: it sees at most kKeyTile
//      (< 65536) rows per tile.
//
//   3. tally flush — per-candidate row counts accumulate in a stack
//      tally (derived from the sub-histogram fold on the small-domain
//      path) and land in row_totals / the caller's tally once per
//      call, not per row.

#include "engine/scan_kernel.h"

#include "util/logging.h"

#if defined(__AVX2__) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

#include <algorithm>
#include <cstring>

namespace fastmatch {
namespace scan_kernel_detail {
namespace {

/// Rows of u32 keys staged on the stack per tile (16 KiB).
constexpr int kKeyTile = 4096;
/// Largest flat domain counted through the u16 sub-histograms (16 KiB).
constexpr int kLocalCells = 2048;
/// Interleaved sub-histogram count (independent RMW chains).
constexpr int kSubHists = 4;

inline __m256i WidenLoad8(const uint8_t* p) {
  return _mm256_cvtepu8_epi32(
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p)));
}
inline __m256i WidenLoad8(const uint16_t* p) {
  return _mm256_cvtepu16_epi32(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
}
inline __m256i WidenLoad8(const uint32_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

inline __m256i WidenLoad8Dyn(const uint8_t* base, ValueType t, int64_t row) {
  switch (t) {
    case ValueType::kU8:
      return WidenLoad8(base + row);
    case ValueType::kU16:
      return WidenLoad8(reinterpret_cast<const uint16_t*>(base) + row);
    case ValueType::kU32:
      return WidenLoad8(reinterpret_cast<const uint32_t*>(base) + row);
  }
  return _mm256_setzero_si256();
}

/// Folds one tile of flat keys into `counts`, adding each candidate's
/// tile row count into `ztally`. `h` is the caller's sub-histogram
/// scratch; `z_of_row` recovers a row's candidate on the large-domain
/// path (called only when cells > kLocalCells).
template <typename ZOfRow>
void AccumulateTile(const uint32_t* keys, int n, int cands, int groups,
                    int64_t cells, int64_t* counts, int64_t* ztally,
                    uint16_t (*h)[kLocalCells], ZOfRow&& z_of_row) {
  if (cells <= kLocalCells) {
    // Clear only the used prefix of each sub-histogram: a full 16 KiB
    // memset would cost several bytes of traffic per row on small
    // domains, dwarfing the counting itself.
    for (int j = 0; j < kSubHists; ++j) {
      std::memset(h[j], 0, sizeof(uint16_t) * static_cast<size_t>(cells));
    }
    int r = 0;
    for (; r + kSubHists <= n; r += kSubHists) {
      ++h[0][keys[r]];
      ++h[1][keys[r + 1]];
      ++h[2][keys[r + 2]];
      ++h[3][keys[r + 3]];
    }
    for (; r < n; ++r) ++h[0][keys[r]];
    size_t k = 0;
    for (int c = 0; c < cands; ++c) {
      int64_t zt = 0;
      for (int g = 0; g < groups; ++g, ++k) {
        const int64_t t = static_cast<int64_t>(h[0][k]) + h[1][k] + h[2][k] +
                          h[3][k];
        counts[k] += t;
        zt += t;
      }
      ztally[c] += zt;
    }
  } else {
    for (int r = 0; r < n; ++r) {
      ++counts[keys[r]];
      ++ztally[z_of_row(r)];
    }
  }
}

/// Flushes the per-call candidate tally into the matrix row totals and
/// the caller's tally.
inline void FlushTally(const int64_t* ztally, int cands, int64_t* row_totals,
                       int64_t* tally) {
  for (int c = 0; c < cands; ++c) {
    if (ztally[c] == 0) continue;
    row_totals[c] += ztally[c];
    if (tally != nullptr) tally[c] += ztally[c];
  }
}

}  // namespace

bool CompiledAvx2() { return true; }

template <typename ZT, typename XT>
void ScanBlockAvx2(const ZT* z, const XT* x, int64_t rows, CountMatrix* out,
                   int64_t* tally) {
  const int cands = out->num_candidates();
  const int groups = out->num_groups();
  const int64_t cells = static_cast<int64_t>(cands) * groups;
  int64_t* counts = out->MutableData();
  alignas(32) uint32_t keys[kKeyTile];
  alignas(32) uint16_t h[kSubHists][kLocalCells];
  int64_t ztally[kScanTallyMaxCandidates];
  std::fill(ztally, ztally + cands, 0);
  const __m256i vg = _mm256_set1_epi32(groups);
  for (int64_t done = 0; done < rows; done += kKeyTile) {
    const int n = static_cast<int>(std::min<int64_t>(kKeyTile, rows - done));
    const ZT* zt = z + done;
    const XT* xt = x + done;
    int i = 0;
    for (; i + 8 <= n; i += 8) {
      const __m256i zv = WidenLoad8(zt + i);
      const __m256i xv = WidenLoad8(xt + i);
      _mm256_store_si256(reinterpret_cast<__m256i*>(keys + i),
                         _mm256_add_epi32(_mm256_mullo_epi32(zv, vg), xv));
    }
    for (; i < n; ++i) {
      keys[i] = static_cast<uint32_t>(zt[i]) * static_cast<uint32_t>(groups) +
                static_cast<uint32_t>(xt[i]);
    }
    AccumulateTile(keys, n, cands, groups, cells, counts, ztally, h,
                   [zt](int r) { return static_cast<size_t>(zt[r]); });
  }
  FlushTally(ztally, cands, out->MutableRowTotals(), tally);
}

void ScanBlockGenericAvx2(const ScanColumn& z, const ScanColumn* xs, int num_x,
                          int64_t rows, CountMatrix* out, int64_t* tally) {
  const int cands = out->num_candidates();
  const int groups = out->num_groups();
  const int64_t cells = static_cast<int64_t>(cands) * groups;
  int64_t* counts = out->MutableData();
  alignas(32) uint32_t keys[kKeyTile];
  alignas(32) uint16_t h[kSubHists][kLocalCells];
  int64_t ztally[kScanTallyMaxCandidates];
  std::fill(ztally, ztally + cands, 0);
  for (int64_t done = 0; done < rows; done += kKeyTile) {
    const int n = static_cast<int>(std::min<int64_t>(kKeyTile, rows - done));
    int i = 0;
    for (; i + 8 <= n; i += 8) {
      // Widened mixed-radix fold: key = ((z * card_0 + x_0) * card_1 +
      // x_1) ... — the same digit order as ScanBlockGenericScalar, so
      // keys (and therefore counts) agree bit-for-bit.
      __m256i k = WidenLoad8Dyn(z.data, z.type, done + i);
      for (int a = 0; a < num_x; ++a) {
        k = _mm256_add_epi32(
            _mm256_mullo_epi32(k, _mm256_set1_epi32(xs[a].card)),
            WidenLoad8Dyn(xs[a].data, xs[a].type, done + i));
      }
      _mm256_store_si256(reinterpret_cast<__m256i*>(keys + i), k);
    }
    for (; i < n; ++i) {
      uint32_t k = ScanLoadValue(z.data, done + i, z.type);
      for (int a = 0; a < num_x; ++a) {
        k = k * static_cast<uint32_t>(xs[a].card) +
            ScanLoadValue(xs[a].data, done + i, xs[a].type);
      }
      keys[i] = k;
    }
    AccumulateTile(keys, n, cands, groups, cells, counts, ztally, h,
                   [&z, done](int r) {
                     return static_cast<size_t>(
                         ScanLoadValue(z.data, done + r, z.type));
                   });
  }
  FlushTally(ztally, cands, out->MutableRowTotals(), tally);
}

#define FASTMATCH_SCAN_KERNEL_INSTANTIATE_AVX2(ZT, XT)               \
  template void ScanBlockAvx2<ZT, XT>(const ZT*, const XT*, int64_t, \
                                      CountMatrix*, int64_t*);
FASTMATCH_SCAN_KERNEL_FOR_EACH_TYPED(FASTMATCH_SCAN_KERNEL_INSTANTIATE_AVX2)
#undef FASTMATCH_SCAN_KERNEL_INSTANTIATE_AVX2

}  // namespace scan_kernel_detail
}  // namespace fastmatch

#else  // !(__AVX2__ && x86)

namespace fastmatch {
namespace scan_kernel_detail {

// Link-compatible stubs: unreachable because every dispatcher gates on
// ScanKernelSimdSupported(), which is false when CompiledAvx2() is.

bool CompiledAvx2() { return false; }

template <typename ZT, typename XT>
void ScanBlockAvx2(const ZT*, const XT*, int64_t, CountMatrix*, int64_t*) {
  FASTMATCH_CHECK(false);
}

void ScanBlockGenericAvx2(const ScanColumn&, const ScanColumn*, int, int64_t,
                          CountMatrix*, int64_t*) {
  FASTMATCH_CHECK(false);
}

#define FASTMATCH_SCAN_KERNEL_INSTANTIATE_AVX2(ZT, XT)               \
  template void ScanBlockAvx2<ZT, XT>(const ZT*, const XT*, int64_t, \
                                      CountMatrix*, int64_t*);
FASTMATCH_SCAN_KERNEL_FOR_EACH_TYPED(FASTMATCH_SCAN_KERNEL_INSTANTIATE_AVX2)
#undef FASTMATCH_SCAN_KERNEL_INSTANTIATE_AVX2

}  // namespace scan_kernel_detail
}  // namespace fastmatch

#endif  // __AVX2__
