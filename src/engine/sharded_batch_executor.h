// Scatter-gather batch execution over a PartitionedStore.
//
// The sharded executor IS the batch executor with a partition-aware read
// path: it keeps ONE logical scan — the same cursor start (seed), chunk
// schedule, block marking, consumed set, zero-read streak, and
// exhaustion rule as the unpartitioned run, all in LOGICAL block space —
// and only the physical read of each marked block is scattered to the
// partition that owns it (partition-local block = logical block minus
// the partition's begin_block; see storage/partitioned_store.h for the
// block-alignment guarantee). Each worker slot scans into private
// per-partition CountMatrix shards ([slot * P + partition] layout), and
// the gather at the chunk boundary is a commutative integer-sum merge
// into the template's one cumulative matrix — so HistSimMachine sees ONE
// logical count stream and the P-way run is bit-for-bit identical to the
// P=1 run for every thread count, partition count, and seed (the
// equivalence the sharded property tests assert).
//
// What sharding adds on top of the base executor:
//   * per-partition I/O accounting (partition_stats());
//   * per-partition stage-1 export: a completed cold stage-1 phase is
//     published as P snapshots keyed (partition set id, partition store
//     id), each covering only its partition's rows — sound warm starts
//     for any future batch over the same partition set (stage-1 cache
//     entries never cross partitions);
//   * per-partition warm consumption: BoundQuery::stage1_warm_parts
//     merges the available partitions' snapshots into one overlapping
//     stage-1 prior (counts and rows add across disjoint partitions; the
//     merged set of row positions is fixed, hence a uniform
//     without-replacement sample of the pre-shuffled relation).
//
// Lifecycle (Start/Step/Join/Evict/TakeItems/completion callback) is
// inherited unchanged, and so is the concurrency contract: NO locks, one
// driver thread, per-chunk ParallelFor fork-join only.

#ifndef FASTMATCH_ENGINE_SHARDED_BATCH_EXECUTOR_H_
#define FASTMATCH_ENGINE_SHARDED_BATCH_EXECUTOR_H_

#include <memory>
#include <vector>

#include "engine/batch_executor.h"
#include "storage/partitioned_store.h"
#include "util/result.h"

namespace fastmatch {

/// \brief Per-partition share of one batch's I/O.
struct PartitionIoStats {
  uint64_t partition_store_id = 0;
  int64_t blocks_read = 0;
  int64_t rows_read = 0;
};

/// \brief BatchExecutor whose scan scatter-gathers over the partitions
/// of one PartitionedStore.
class ShardedBatchExecutor : public BatchExecutor {
 public:
  /// \brief Creates a sharded executor. Every query must carry
  /// `partitions` as its partition set (BoundQuery::partitions), and the
  /// set's source must be the queries' shared ColumnStore — the logical
  /// scan runs in the source's block space. Structural problems fail
  /// here; per-query problems surface as per-item statuses, exactly as
  /// in BatchExecutor::Create.
  static Result<std::unique_ptr<ShardedBatchExecutor>> Create(
      const std::vector<BoundQuery>& queries,
      std::shared_ptr<const PartitionedStore> partitions,
      BatchOptions options);

  const std::shared_ptr<const PartitionedStore>& partitions() const {
    return partitions_;
  }

  /// \brief Per-partition I/O so far (indices match the partition set).
  /// Sums to stats().blocks_read / stats().rows_read: the scatter
  /// re-routes reads, it never adds or drops any.
  std::vector<PartitionIoStats> partition_stats() const;

 private:
  using BatchExecutor::BatchExecutor;
};

}  // namespace fastmatch

#endif  // FASTMATCH_ENGINE_SHARDED_BATCH_EXECUTOR_H_
