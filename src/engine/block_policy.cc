#include "engine/block_policy.h"

#include "util/logging.h"

namespace fastmatch {

void MarkAnyActiveNaive(const BitmapIndex& index,
                        const std::vector<int>& active, BlockId start,
                        int count, std::vector<uint8_t>* marks) {
  FASTMATCH_CHECK_GE(start, 0);
  FASTMATCH_CHECK_LE(start + count, index.num_blocks());
  marks->assign(static_cast<size_t>(count), 0);
  for (int i = 0; i < count; ++i) {
    const BlockId b = start + i;
    for (int cand : active) {
      // Each lookup touches a different bitmap: deliberately the paper's
      // cache-inefficient per-block pattern.
      if (index.BlockContains(static_cast<Value>(cand), b)) {
        (*marks)[static_cast<size_t>(i)] = 1;
        break;
      }
    }
  }
}

void MarkAnyActiveLookahead(const BitmapIndex& index,
                            const std::vector<int>& active, BlockId start,
                            int count, std::vector<uint64_t>* scratch,
                            std::vector<uint8_t>* marks) {
  FASTMATCH_CHECK_GE(start, 0);
  FASTMATCH_CHECK_LE(start + count, index.num_blocks());
  marks->assign(static_cast<size_t>(count), 0);
  if (count == 0) return;

  const int64_t first_word = start >> 6;
  const int64_t last_word = (start + count - 1) >> 6;
  const size_t num_words = static_cast<size_t>(last_word - first_word + 1);
  scratch->assign(num_words, 0);

  // Candidate-outer: consume a run of consecutive words of one bitmap
  // before moving to the next candidate (one cache line yields 512 block
  // bits).
  for (int cand : active) {
    const auto& words = index.bitmap(static_cast<Value>(cand)).words();
    for (size_t w = 0; w < num_words; ++w) {
      (*scratch)[w] |= words[static_cast<size_t>(first_word) + w];
    }
  }

  for (int i = 0; i < count; ++i) {
    const int64_t bit = start + i;
    const uint64_t word =
        (*scratch)[static_cast<size_t>((bit >> 6) - first_word)];
    (*marks)[static_cast<size_t>(i)] =
        static_cast<uint8_t>((word >> (bit & 63)) & 1);
  }
}

void MarkAnyActiveDensity(const DensityMap& density,
                          const std::vector<int>& active, BlockId start,
                          int count, std::vector<uint8_t>* marks) {
  FASTMATCH_CHECK_GE(start, 0);
  FASTMATCH_CHECK_LE(start + count, density.num_blocks());
  marks->assign(static_cast<size_t>(count), 0);
  // Candidate-outer, block-inner: a candidate's per-block counts are
  // contiguous (value-major cells), so the inner loop is one sequential
  // sweep per candidate — the same cache shape as the word-wise OR.
  for (int cand : active) {
    const uint8_t* row = density.Row(static_cast<Value>(cand)) + start;
    for (int i = 0; i < count; ++i) {
      (*marks)[static_cast<size_t>(i)] |= (row[i] != 0);
    }
  }
}

int64_t CollectBlockDemand(const BitmapIndex* index, const BlockDemand& demand,
                           BlockId start, int count, const BitVector& consumed,
                           std::vector<uint64_t>* scratch,
                           std::vector<uint8_t>* marks,
                           std::vector<BlockId>* reads) {
  const bool scan_all = demand.scan_all || index == nullptr;
  if (!scan_all) {
    MarkAnyActiveLookahead(*index, demand.unmet, start, count, scratch, marks);
  }
  int64_t skipped = 0;
  for (int i = 0; i < count; ++i) {
    const BlockId b = start + i;
    if (consumed.Get(b)) continue;
    if (scan_all || (*marks)[static_cast<size_t>(i)]) {
      reads->push_back(b);
    } else {
      ++skipped;
    }
  }
  return skipped;
}

}  // namespace fastmatch
