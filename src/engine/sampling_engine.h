// The FastMatch sampling engine (paper Section 4).
//
// Implements core/sampler.h over the block grid of a ColumnStore:
//
//   * data is consumed at block granularity, sequentially from a random
//     start (the store is pre-shuffled, so this is uniform sampling
//     without replacement at block granularity);
//   * a consumed-block bitmap enforces exact without-replacement across
//     all stages of a run;
//   * stage-2/3 I/O phases apply a block selection policy:
//       kScanAll            ScanMatch: read every block in order
//       kAnyActiveSync      SyncMatch: per-block naive AnyActive (Alg. 2)
//       kAnyActiveLookahead FastMatch: batch marking on a separate
//                           lookahead thread (Alg. 3) feeding the I/O
//                           manager through a bounded queue, so marking
//                           never blocks I/O (paper Challenge 4).
//
// Exhaustion rule: if a full cursor cycle (num_blocks consecutive visited
// blocks) produces zero new reads while candidate c stays active, then
// every block containing c is consumed (or queued for reading), so c is
// fully enumerated once the queue drains; c's cumulative counts are then
// exact. This is what lets HistSim terminate on candidates whose sample
// targets exceed their total tuple counts.

#ifndef FASTMATCH_ENGINE_SAMPLING_ENGINE_H_
#define FASTMATCH_ENGINE_SAMPLING_ENGINE_H_

#include <atomic>
#include <memory>
#include <vector>

#include "core/sampler.h"
#include "engine/io_manager.h"
#include "index/bitmap_index.h"
#include "index/bitvector.h"
#include "storage/column_store.h"
#include "util/result.h"

namespace fastmatch {

/// Block selection policy for stage-2/3 I/O phases.
enum class BlockSelection {
  kScanAll,             // ScanMatch
  kAnyActiveSync,       // SyncMatch
  kAnyActiveLookahead,  // FastMatch
};

/// Engine knobs.
struct EngineOptions {
  BlockSelection policy = BlockSelection::kAnyActiveLookahead;
  /// Blocks marked per batch by the lookahead thread (paper default 1024).
  int lookahead = 1024;
  /// Seed; chooses the random scan start position.
  uint64_t seed = 42;
};

/// I/O counters for one engine lifetime (one query run).
struct EngineStats {
  int64_t blocks_read = 0;
  int64_t blocks_skipped = 0;  // visited and skipped by the policy
  int64_t rows_read = 0;
  int64_t marker_batches = 0;  // lookahead batches produced
};

class SamplingEngine : public Sampler {
 public:
  /// \brief Creates an engine for one query run.
  ///
  /// `z_index` is required for the AnyActive policies and ignored by
  /// kScanAll. The engine starts its scan cursor at a seed-derived random
  /// block, per the paper's experimental protocol.
  static Result<std::unique_ptr<SamplingEngine>> Create(
      std::shared_ptr<const ColumnStore> store,
      std::shared_ptr<const BitmapIndex> z_index, int z_attr,
      std::vector<int> x_attrs, EngineOptions options);

  // ------------------------------------------------------ Sampler interface
  int num_candidates() const override { return io_->num_candidates(); }
  int num_groups() const override { return io_->num_groups(); }
  int64_t total_rows() const override { return io_->pin().num_rows; }
  int64_t SampleRows(int64_t m, CountMatrix* out) override;
  void SampleUntilTargets(const std::vector<int64_t>& targets,
                          CountMatrix* out,
                          std::vector<bool>* exhausted) override;
  bool AllConsumed() const override {
    return consumed_blocks_ == num_blocks_;
  }
  int64_t rows_consumed() const override { return rows_consumed_; }

  const EngineStats& stats() const { return stats_; }

 private:
  SamplingEngine(std::shared_ptr<const ColumnStore> store,
                 std::shared_ptr<const BitmapIndex> z_index,
                 std::unique_ptr<IoManager> io, EngineOptions options);

  /// Advances the wrap-around cursor and returns the block to visit.
  BlockId NextBlock() {
    const BlockId b = cursor_;
    if (++cursor_ >= num_blocks_) cursor_ = 0;
    return b;
  }

  /// Reads block b into `out`, maintaining consumption state and stats.
  int64_t ConsumeBlock(BlockId b, CountMatrix* out,
                       std::atomic<int64_t>* fresh);

  void MarkAllExhausted();

  // Policy-specific SampleUntilTargets bodies.
  void RunScanAll(const std::vector<int64_t>& targets, CountMatrix* out);
  void RunSync(const std::vector<int64_t>& targets, CountMatrix* out);
  void RunLookahead(const std::vector<int64_t>& targets, CountMatrix* out);

  std::shared_ptr<const ColumnStore> store_;
  std::shared_ptr<const BitmapIndex> index_;
  std::unique_ptr<IoManager> io_;
  EngineOptions options_;

  int64_t num_blocks_ = 0;
  BlockId cursor_ = 0;
  BitVector consumed_;
  int64_t consumed_blocks_ = 0;
  int64_t rows_consumed_ = 0;
  std::vector<bool> exhausted_;  // sticky: candidate fully enumerated
  EngineStats stats_;

  // Per-call fresh-sample counters, shared with the lookahead thread.
  std::unique_ptr<std::atomic<int64_t>[]> fresh_;
};

}  // namespace fastmatch

#endif  // FASTMATCH_ENGINE_SAMPLING_ENGINE_H_
