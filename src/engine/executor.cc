#include "engine/executor.h"

#include <algorithm>

#include "core/verify.h"
#include "util/timer.h"

namespace fastmatch {

std::string_view ApproachName(Approach a) {
  switch (a) {
    case Approach::kScan:
      return "Scan";
    case Approach::kScanMatch:
      return "ScanMatch";
    case Approach::kSyncMatch:
      return "SyncMatch";
    case Approach::kFastMatch:
      return "FastMatch";
  }
  return "?";
}

namespace {

Status ValidateQuery(const BoundQuery& query) {
  if (query.store == nullptr) {
    return Status::InvalidArgument("query has no store");
  }
  if (query.x_attrs.empty()) {
    return Status::InvalidArgument("query has no x attributes");
  }
  if (query.target.empty()) {
    return Status::InvalidArgument("query target is unresolved");
  }
  return query.params.Validate();
}

/// The exact baseline: one pass, exact histograms, exact selectivity
/// pruning, exact top-k.
Result<RunOutput> RunScan(const BoundQuery& query) {
  WallTimer timer;
  const StorePin pin = query.store->Pin();
  FASTMATCH_ASSIGN_OR_RETURN(
      CountMatrix exact,
      ComputeExactCounts(*query.store, query.z_attr, query.x_attrs));
  GroundTruth truth =
      ComputeGroundTruth(exact, query.target, query.params.metric,
                         query.params.sigma, query.params.k);

  RunOutput out;
  out.match.topk = truth.topk;
  out.match.topk_distances.reserve(truth.topk.size());
  for (int i : truth.topk) {
    out.match.topk_distances.push_back(truth.distances[i]);
  }
  out.match.distances = truth.distances;
  out.match.counts = std::move(exact);
  const int vz = out.match.counts.num_candidates();
  out.match.pruned.resize(vz);
  for (int i = 0; i < vz; ++i) out.match.pruned[i] = !truth.eligible[i];
  out.match.exact.assign(vz, true);
  out.match.diag.chosen_k = static_cast<int>(truth.topk.size());
  out.match.diag.exact_candidates = vz;
  out.match.diag.data_exhausted = true;

  out.stats.wall_seconds = timer.Seconds();
  out.stats.engine.rows_read = pin.num_rows;
  out.stats.engine.blocks_read = pin.num_blocks;
  return out;
}

BlockSelection PolicyFor(Approach a) {
  switch (a) {
    case Approach::kScanMatch:
      return BlockSelection::kScanAll;
    case Approach::kSyncMatch:
      return BlockSelection::kAnyActiveSync;
    case Approach::kFastMatch:
    default:
      return BlockSelection::kAnyActiveLookahead;
  }
}

}  // namespace

Result<RunOutput> RunQuery(const BoundQuery& query, Approach approach) {
  FASTMATCH_RETURN_IF_ERROR(ValidateQuery(query));
  if (approach == Approach::kScan) return RunScan(query);

  WallTimer timer;
  EngineOptions options;
  options.policy = PolicyFor(approach);
  options.lookahead = query.lookahead;
  options.seed = query.params.seed;

  FASTMATCH_ASSIGN_OR_RETURN(
      auto engine,
      SamplingEngine::Create(query.store, query.z_index, query.z_attr,
                             query.x_attrs, options));

  HistSim histsim(query.params, query.target);
  FASTMATCH_ASSIGN_OR_RETURN(MatchResult match, histsim.Run(engine.get()));

  RunOutput out;
  out.stats.wall_seconds = timer.Seconds();
  out.stats.engine = engine->stats();
  out.stats.histsim = match.diag;
  out.match = std::move(match);
  return out;
}

}  // namespace fastmatch
