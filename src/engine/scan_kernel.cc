// Scalar scan kernels and the kernel dispatchers.
//
// This translation unit is compiled WITHOUT -mavx2 on purpose: the
// runtime CPU check below is the only gate in front of the AVX2 bodies
// in scan_kernel_avx2.cc, so no AVX2 instruction may be emitted here.

#include "engine/scan_kernel.h"

#include <cstdlib>
#include <string_view>

namespace fastmatch {
namespace {

/// Shapes the AVX2 kernels accept: the per-candidate tally must fit the
/// fixed stack buffers and every flat cell key z * |VX| + x must fit a
/// u32 lane.
bool ShapeSimdable(const CountMatrix& out) {
  const int64_t cells =
      static_cast<int64_t>(out.num_candidates()) * out.num_groups();
  return out.num_candidates() > 0 &&
         out.num_candidates() <= kScanTallyMaxCandidates &&
         cells <= static_cast<int64_t>(UINT32_MAX);
}

}  // namespace

bool ScanKernelSimdCompiled() { return scan_kernel_detail::CompiledAvx2(); }

bool ScanKernelSimdSupported() {
  static const bool supported = [] {
    if (!ScanKernelSimdCompiled()) return false;
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
  }();
  return supported;
}

bool ScanKernelSimdEnabled() {
  static const bool enabled = [] {
    if (!ScanKernelSimdSupported()) return false;
    const char* env = std::getenv("FASTMATCH_FORCE_SCALAR");
    return env == nullptr || *env == '\0' || std::string_view(env) == "0";
  }();
  return enabled;
}

const char* ScanKernelName() {
  return ScanKernelSimdEnabled() ? "avx2" : "scalar";
}

template <typename ZT, typename XT>
void ScanBlockScalar(const ZT* z, const XT* x, int64_t rows, CountMatrix* out,
                     int64_t* tally) {
  const int groups = out->num_groups();
  int64_t* counts = out->MutableData();
  int64_t* row_totals = out->MutableRowTotals();
  for (int64_t r = 0; r < rows; ++r) {
    const size_t c = static_cast<size_t>(z[r]);
    ++counts[c * static_cast<size_t>(groups) + x[r]];
    ++row_totals[c];
    if (tally != nullptr) ++tally[c];
  }
}

template <typename ZT, typename XT>
bool ScanBlockSimd(const ZT* z, const XT* x, int64_t rows, CountMatrix* out,
                   int64_t* tally) {
  if (!ScanKernelSimdSupported() || !ShapeSimdable(*out)) return false;
  scan_kernel_detail::ScanBlockAvx2<ZT, XT>(z, x, rows, out, tally);
  return true;
}

template <typename ZT, typename XT>
bool ScanBlock(const ZT* z, const XT* x, int64_t rows, CountMatrix* out,
               int64_t* tally) {
  if (ScanKernelSimdEnabled() && ScanBlockSimd(z, x, rows, out, tally)) {
    return true;
  }
  ScanBlockScalar(z, x, rows, out, tally);
  return false;
}

void ScanBlockGenericScalar(const ScanColumn& z, const ScanColumn* xs,
                            int num_x, int64_t rows, CountMatrix* out,
                            int64_t* tally) {
  for (int64_t r = 0; r < rows; ++r) {
    const uint32_t c = ScanLoadValue(z.data, r, z.type);
    uint32_t g = 0;
    for (int a = 0; a < num_x; ++a) {
      g = g * static_cast<uint32_t>(xs[a].card) +
          ScanLoadValue(xs[a].data, r, xs[a].type);
    }
    out->Add(static_cast<int>(c), static_cast<int>(g));
    if (tally != nullptr) ++tally[c];
  }
}

bool ScanBlockGenericSimd(const ScanColumn& z, const ScanColumn* xs, int num_x,
                          int64_t rows, CountMatrix* out, int64_t* tally) {
  // Each x column is one widened mul+add per 8 rows; past a handful of
  // columns (possible only with degenerate cardinality-1 attributes,
  // since |VX| is bounded by IoManager's 2^24 composite cap) the scalar
  // loop is no worse.
  constexpr int kMaxGenericX = 24;
  if (!ScanKernelSimdSupported() || !ShapeSimdable(*out) ||
      num_x > kMaxGenericX) {
    return false;
  }
  scan_kernel_detail::ScanBlockGenericAvx2(z, xs, num_x, rows, out, tally);
  return true;
}

bool ScanBlockGeneric(const ScanColumn& z, const ScanColumn* xs, int num_x,
                      int64_t rows, CountMatrix* out, int64_t* tally) {
  if (ScanKernelSimdEnabled() &&
      ScanBlockGenericSimd(z, xs, num_x, rows, out, tally)) {
    return true;
  }
  ScanBlockGenericScalar(z, xs, num_x, rows, out, tally);
  return false;
}

#define FASTMATCH_SCAN_KERNEL_INSTANTIATE(ZT, XT)                      \
  template void ScanBlockScalar<ZT, XT>(const ZT*, const XT*, int64_t, \
                                        CountMatrix*, int64_t*);       \
  template bool ScanBlockSimd<ZT, XT>(const ZT*, const XT*, int64_t,   \
                                      CountMatrix*, int64_t*);         \
  template bool ScanBlock<ZT, XT>(const ZT*, const XT*, int64_t,       \
                                  CountMatrix*, int64_t*);
FASTMATCH_SCAN_KERNEL_FOR_EACH_TYPED(FASTMATCH_SCAN_KERNEL_INSTANTIATE)
#undef FASTMATCH_SCAN_KERNEL_INSTANTIATE

}  // namespace fastmatch
