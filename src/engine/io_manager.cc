#include "engine/io_manager.h"

#include <algorithm>

#include "engine/scan_kernel.h"
#include "util/logging.h"

namespace fastmatch {

Result<IoManager::Domain> IoManager::ComputeDomain(
    const Schema& schema, int z_attr, const std::vector<int>& x_attrs) {
  const int num_attrs = schema.num_attributes();
  if (z_attr < 0 || z_attr >= num_attrs) {
    return Status::InvalidArgument("z_attr out of range");
  }
  if (x_attrs.empty()) {
    return Status::InvalidArgument("at least one x attribute required");
  }
  Domain domain;
  if (schema.attribute(z_attr).cardinality > (1u << 24)) {
    return Status::InvalidArgument("candidate cardinality too large");
  }
  domain.num_candidates =
      static_cast<int>(schema.attribute(z_attr).cardinality);
  int64_t groups = 1;
  for (int a : x_attrs) {
    if (a < 0 || a >= num_attrs) {
      return Status::InvalidArgument("x_attr out of range");
    }
    // Bound each factor before narrowing it: a u32 cardinality cast to
    // int could wrap negative and slip through the product check.
    if (schema.attribute(a).cardinality > (1u << 24)) {
      return Status::InvalidArgument("composite group cardinality too large");
    }
    const int card = static_cast<int>(schema.attribute(a).cardinality);
    domain.x_cards.push_back(card);
    groups *= card;
    if (groups > (1 << 24)) {
      return Status::InvalidArgument("composite group cardinality too large");
    }
  }
  domain.num_groups = static_cast<int>(groups);
  return domain;
}

Result<std::unique_ptr<IoManager>> IoManager::Create(
    std::shared_ptr<const ColumnStore> store, int z_attr,
    std::vector<int> x_attrs, std::optional<StoreView> view) {
  if (store == nullptr) return Status::InvalidArgument("null store");
  FASTMATCH_ASSIGN_OR_RETURN(Domain domain,
                             ComputeDomain(store->schema(), z_attr, x_attrs));
  if (!view.has_value()) view = store->PinView();
  if (view->pin().store_id != store->id()) {
    return Status::InvalidArgument("store view pins a different store");
  }
  return std::unique_ptr<IoManager>(
      new IoManager(std::move(store), z_attr, std::move(x_attrs),
                    std::move(domain), *std::move(view)));
}

IoManager::IoManager(std::shared_ptr<const ColumnStore> store, int z_attr,
                     std::vector<int> x_attrs, Domain domain, StoreView view)
    : store_(std::move(store)),
      view_(std::move(view)),
      z_attr_(z_attr),
      x_attrs_(std::move(x_attrs)),
      x_cards_(std::move(domain.x_cards)),
      num_candidates_(domain.num_candidates),
      num_groups_(domain.num_groups) {
  // The domain comes exclusively from the bound-checked ComputeDomain —
  // re-assert its invariants rather than recomputing (and possibly
  // re-narrowing) them here.
  FASTMATCH_CHECK_GE(num_candidates_, 0);
  FASTMATCH_CHECK_LE(num_candidates_, 1 << 24);
  FASTMATCH_CHECK_GE(num_groups_, 0);
  FASTMATCH_CHECK_LE(num_groups_, 1 << 24);
  FASTMATCH_CHECK_EQ(x_cards_.size(), x_attrs_.size());
}

void IoManager::FlushFresh(const int64_t* tally,
                           std::atomic<int64_t>* fresh_counts) const {
  // The once-per-block half of the single-writer contract (see
  // io_manager.h): a relaxed load+store per touched candidate, so the
  // marking thread sees monotone block-granular progress without the
  // scan paying a locked RMW per row.
  for (int c = 0; c < num_candidates_; ++c) {
    if (tally[c] == 0) continue;
    fresh_counts[c].store(
        fresh_counts[c].load(std::memory_order_relaxed) + tally[c],
        std::memory_order_relaxed);
  }
}

template <typename ZT, typename XT>
int64_t IoManager::ReadBlockTyped(BlockId b, CountMatrix* out,
                                  std::atomic<int64_t>* fresh_counts) const {
  RowId begin, end;
  view_.pin().BlockRowRange(b, &begin, &end);
  // Chunk b holds block b's rows at local offsets [0, end - begin).
  const ZT* z_data = view_.chunk_data<ZT>(z_attr_, b);
  const XT* x_data = view_.chunk_data<XT>(x_attrs_[0], b);
  const int64_t rows = end - begin;
  if (fresh_counts == nullptr) {
    ScanBlock(z_data, x_data, rows, out, static_cast<int64_t*>(nullptr));
  } else if (num_candidates_ <= kScanTallyMaxCandidates) {
    int64_t tally[kScanTallyMaxCandidates];
    std::fill(tally, tally + num_candidates_, 0);
    ScanBlock(z_data, x_data, rows, out, tally);
    FlushFresh(tally, fresh_counts);
  } else {
    // Domains past the kernels' stack tally publish per row (the
    // pre-kernel behavior; same single-writer contract, finer grain).
    for (int64_t r = 0; r < rows; ++r) {
      const int z = static_cast<int>(z_data[r]);
      out->Add(z, static_cast<int>(x_data[r]));
      fresh_counts[z].store(
          fresh_counts[z].load(std::memory_order_relaxed) + 1,
          std::memory_order_relaxed);
    }
  }
  return rows;
}

int64_t IoManager::ReadBlockGeneric(BlockId b, CountMatrix* out,
                                    std::atomic<int64_t>* fresh_counts) const {
  RowId begin, end;
  view_.pin().BlockRowRange(b, &begin, &end);
  const int64_t rows = end - begin;
  const ScanColumn z{view_.chunk_bytes(z_attr_, b), view_.type(z_attr_),
                     num_candidates_};
  // Column descriptors on the stack for any realistic composite width;
  // reads are const + concurrent, so there is no member scratch to use.
  constexpr size_t kStackX = 32;
  ScanColumn xbuf[kStackX];
  std::vector<ScanColumn> xheap;
  ScanColumn* xs = xbuf;
  const size_t num_x = x_attrs_.size();
  if (num_x > kStackX) {
    xheap.resize(num_x);
    xs = xheap.data();
  }
  for (size_t i = 0; i < num_x; ++i) {
    xs[i] = ScanColumn{view_.chunk_bytes(x_attrs_[i], b),
                       view_.type(x_attrs_[i]), x_cards_[i]};
  }
  if (fresh_counts == nullptr) {
    ScanBlockGeneric(z, xs, static_cast<int>(num_x), rows, out, nullptr);
  } else if (num_candidates_ <= kScanTallyMaxCandidates) {
    int64_t tally[kScanTallyMaxCandidates];
    std::fill(tally, tally + num_candidates_, 0);
    ScanBlockGeneric(z, xs, static_cast<int>(num_x), rows, out, tally);
    FlushFresh(tally, fresh_counts);
  } else {
    for (RowId r = begin; r < end; ++r) {
      const int zv = static_cast<int>(view_.Get(z_attr_, r));
      int g = 0;
      for (size_t i = 0; i < x_attrs_.size(); ++i) {
        g = g * x_cards_[i] + static_cast<int>(view_.Get(x_attrs_[i], r));
      }
      out->Add(zv, g);
      fresh_counts[zv].store(
          fresh_counts[zv].load(std::memory_order_relaxed) + 1,
          std::memory_order_relaxed);
    }
  }
  return rows;
}

int64_t IoManager::ReadBlocks(const std::vector<BlockId>& blocks,
                              size_t begin, size_t end,
                              CountMatrix* shard) const {
  int64_t rows = 0;
  for (size_t i = begin; i < end; ++i) {
    rows += ReadBlock(blocks[i], shard, nullptr);
  }
  return rows;
}

int64_t IoManager::ReadBlock(BlockId b, CountMatrix* out,
                             std::atomic<int64_t>* fresh_counts) const {
  if (x_attrs_.size() != 1) return ReadBlockGeneric(b, out, fresh_counts);
  const ValueType zt = store_->schema().attribute(z_attr_).type();
  const ValueType xt = store_->schema().attribute(x_attrs_[0]).type();
  switch (zt) {
    case ValueType::kU8:
      switch (xt) {
        case ValueType::kU8:
          return ReadBlockTyped<uint8_t, uint8_t>(b, out, fresh_counts);
        case ValueType::kU16:
          return ReadBlockTyped<uint8_t, uint16_t>(b, out, fresh_counts);
        case ValueType::kU32:
          return ReadBlockTyped<uint8_t, uint32_t>(b, out, fresh_counts);
      }
      break;
    case ValueType::kU16:
      switch (xt) {
        case ValueType::kU8:
          return ReadBlockTyped<uint16_t, uint8_t>(b, out, fresh_counts);
        case ValueType::kU16:
          return ReadBlockTyped<uint16_t, uint16_t>(b, out, fresh_counts);
        case ValueType::kU32:
          return ReadBlockTyped<uint16_t, uint32_t>(b, out, fresh_counts);
      }
      break;
    case ValueType::kU32:
      switch (xt) {
        case ValueType::kU8:
          return ReadBlockTyped<uint32_t, uint8_t>(b, out, fresh_counts);
        case ValueType::kU16:
          return ReadBlockTyped<uint32_t, uint16_t>(b, out, fresh_counts);
        case ValueType::kU32:
          return ReadBlockTyped<uint32_t, uint32_t>(b, out, fresh_counts);
      }
      break;
  }
  return ReadBlockGeneric(b, out, fresh_counts);
}

}  // namespace fastmatch
