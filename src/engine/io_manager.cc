#include "engine/io_manager.h"

namespace fastmatch {

Result<std::unique_ptr<IoManager>> IoManager::Create(
    std::shared_ptr<const ColumnStore> store, int z_attr,
    std::vector<int> x_attrs, std::optional<StoreView> view) {
  if (store == nullptr) return Status::InvalidArgument("null store");
  const int num_attrs = store->schema().num_attributes();
  if (z_attr < 0 || z_attr >= num_attrs) {
    return Status::InvalidArgument("z_attr out of range");
  }
  if (x_attrs.empty()) {
    return Status::InvalidArgument("at least one x attribute required");
  }
  int64_t groups = 1;
  for (int a : x_attrs) {
    if (a < 0 || a >= num_attrs) {
      return Status::InvalidArgument("x_attr out of range");
    }
    groups *= store->schema().attribute(a).cardinality;
    if (groups > (1 << 24)) {
      return Status::InvalidArgument("composite group cardinality too large");
    }
  }
  if (!view.has_value()) view = store->PinView();
  if (view->pin().store_id != store->id()) {
    return Status::InvalidArgument("store view pins a different store");
  }
  return std::unique_ptr<IoManager>(new IoManager(
      std::move(store), z_attr, std::move(x_attrs), *std::move(view)));
}

IoManager::IoManager(std::shared_ptr<const ColumnStore> store, int z_attr,
                     std::vector<int> x_attrs, StoreView view)
    : store_(std::move(store)),
      view_(std::move(view)),
      z_attr_(z_attr),
      x_attrs_(std::move(x_attrs)) {
  num_candidates_ =
      static_cast<int>(store_->schema().attribute(z_attr_).cardinality);
  int64_t groups = 1;
  for (int a : x_attrs_) {
    const int card =
        static_cast<int>(store_->schema().attribute(a).cardinality);
    x_cards_.push_back(card);
    groups *= card;
  }
  num_groups_ = static_cast<int>(groups);
}

template <typename ZT, typename XT>
int64_t IoManager::ReadBlockTyped(BlockId b, CountMatrix* out,
                                  std::atomic<int64_t>* fresh_counts) const {
  RowId begin, end;
  view_.pin().BlockRowRange(b, &begin, &end);
  // Chunk b holds block b's rows at local offsets [0, end - begin).
  const ZT* z_data = view_.chunk_data<ZT>(z_attr_, b);
  const XT* x_data = view_.chunk_data<XT>(x_attrs_[0], b);
  const int64_t rows = end - begin;
  for (int64_t r = 0; r < rows; ++r) {
    const int z = static_cast<int>(z_data[r]);
    out->Add(z, static_cast<int>(x_data[r]));
    if (fresh_counts != nullptr) {
      // Single-writer counters (only the I/O thread writes; the marking
      // thread reads): a relaxed load+store avoids the locked RMW that
      // would otherwise dominate the scan kernel.
      fresh_counts[z].store(
          fresh_counts[z].load(std::memory_order_relaxed) + 1,
          std::memory_order_relaxed);
    }
  }
  return rows;
}

int64_t IoManager::ReadBlockGeneric(BlockId b, CountMatrix* out,
                                    std::atomic<int64_t>* fresh_counts) const {
  RowId begin, end;
  view_.pin().BlockRowRange(b, &begin, &end);
  for (RowId r = begin; r < end; ++r) {
    const int z = static_cast<int>(view_.Get(z_attr_, r));
    int g = 0;
    for (size_t i = 0; i < x_attrs_.size(); ++i) {
      g = g * x_cards_[i] + static_cast<int>(view_.Get(x_attrs_[i], r));
    }
    out->Add(z, g);
    if (fresh_counts != nullptr) {
      fresh_counts[z].store(
          fresh_counts[z].load(std::memory_order_relaxed) + 1,
          std::memory_order_relaxed);
    }
  }
  return end - begin;
}

int64_t IoManager::ReadBlocks(const std::vector<BlockId>& blocks,
                              size_t begin, size_t end,
                              CountMatrix* shard) const {
  int64_t rows = 0;
  for (size_t i = begin; i < end; ++i) {
    rows += ReadBlock(blocks[i], shard, nullptr);
  }
  return rows;
}

int64_t IoManager::ReadBlock(BlockId b, CountMatrix* out,
                             std::atomic<int64_t>* fresh_counts) const {
  if (x_attrs_.size() != 1) return ReadBlockGeneric(b, out, fresh_counts);
  const ValueType zt = store_->schema().attribute(z_attr_).type();
  const ValueType xt = store_->schema().attribute(x_attrs_[0]).type();
  switch (zt) {
    case ValueType::kU8:
      switch (xt) {
        case ValueType::kU8:
          return ReadBlockTyped<uint8_t, uint8_t>(b, out, fresh_counts);
        case ValueType::kU16:
          return ReadBlockTyped<uint8_t, uint16_t>(b, out, fresh_counts);
        case ValueType::kU32:
          return ReadBlockTyped<uint8_t, uint32_t>(b, out, fresh_counts);
      }
      break;
    case ValueType::kU16:
      switch (xt) {
        case ValueType::kU8:
          return ReadBlockTyped<uint16_t, uint8_t>(b, out, fresh_counts);
        case ValueType::kU16:
          return ReadBlockTyped<uint16_t, uint16_t>(b, out, fresh_counts);
        case ValueType::kU32:
          return ReadBlockTyped<uint16_t, uint32_t>(b, out, fresh_counts);
      }
      break;
    case ValueType::kU32:
      switch (xt) {
        case ValueType::kU8:
          return ReadBlockTyped<uint32_t, uint8_t>(b, out, fresh_counts);
        case ValueType::kU16:
          return ReadBlockTyped<uint32_t, uint16_t>(b, out, fresh_counts);
        case ValueType::kU32:
          return ReadBlockTyped<uint32_t, uint32_t>(b, out, fresh_counts);
      }
      break;
  }
  return ReadBlockGeneric(b, out, fresh_counts);
}

}  // namespace fastmatch
