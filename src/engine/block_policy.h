// AnyActive block selection policies (paper Section 4.2, Challenge 3/4).
//
// Given the set of *active* candidates (those whose per-round sample
// targets are unmet), a block should be read iff it contains at least one
// tuple of an active candidate. Two implementations:
//
//  * Naive (paper Algorithm 2): per block, probe each active candidate's
//    bitmap until one hits. Each probe lands on a different bitmap (a
//    different cache line), so per-block evaluation thrashes the cache
//    when many candidates are active — this is the documented cause of
//    SyncMatch's pathological slowdowns on high-|VZ| queries.
//
//  * Lookahead (paper Algorithm 3): candidate-outer, block-inner over a
//    batch of `lookahead` blocks. We realize the inner loop as a word-wise
//    OR of bitmap words into an accumulator, consuming an entire cache
//    line of each candidate's bitmap per touch.

#ifndef FASTMATCH_ENGINE_BLOCK_POLICY_H_
#define FASTMATCH_ENGINE_BLOCK_POLICY_H_

#include <cstdint>
#include <vector>

#include "index/bitmap_index.h"
#include "index/bitvector.h"
#include "index/density_map.h"

namespace fastmatch {

/// \brief One window of block demand from a sampling phase: which
/// candidates still need fresh samples, and whether marking may be
/// bypassed entirely. This is the unit both the single-query engine's
/// lookahead marker and the batch executor's shared-scan chunks consume.
struct BlockDemand {
  /// Candidates whose fresh-sample targets are unmet (drives AnyActive).
  std::vector<int> unmet;
  /// Read every unconsumed block regardless of `unmet`: stage-1 style
  /// sequential consumption, or no bitmap index available.
  bool scan_all = false;
};

/// \brief Algorithm 2: per-block candidate probing.
///
/// Sets (*marks)[i] = 1 iff block (start + i) contains a tuple of at least
/// one candidate in `active`, for i in [0, count). `start + count` must not
/// exceed the index's block count. `marks` is resized to `count`.
void MarkAnyActiveNaive(const BitmapIndex& index,
                        const std::vector<int>& active, BlockId start,
                        int count, std::vector<uint8_t>* marks);

/// \brief Algorithm 3: candidate-outer batch marking via word-wise OR.
///
/// Same contract as MarkAnyActiveNaive; `scratch` (word accumulator) is
/// caller-provided so repeated calls do not allocate.
void MarkAnyActiveLookahead(const BitmapIndex& index,
                            const std::vector<int>& active, BlockId start,
                            int count, std::vector<uint64_t>* scratch,
                            std::vector<uint8_t>* marks);

/// \brief AnyActive marking from a density map: block (start + i) is
/// marked iff some candidate in `active` has a non-zero count there. A
/// zero saturating count is exact (saturation only loses precision
/// above zero), so density marking is exactly as conservative as the
/// bitmap's — this is the batch executor's pre-skip authority for
/// templates that carry a DensityMap but no BitmapIndex.
void MarkAnyActiveDensity(const DensityMap& density,
                          const std::vector<int>& active, BlockId start,
                          int count, std::vector<uint8_t>* marks);

/// \brief The reusable mark/consume step: applies AnyActive lookahead
/// marking for `demand` over the window [start, start + count) and
/// appends every block that must be read — not in `consumed`, and marked
/// (or every unconsumed block when demand.scan_all or `index` is null) —
/// to `reads`, in block order. Returns the number of unconsumed window
/// blocks the policy skipped. `scratch`/`marks` are caller-provided so
/// repeated calls do not allocate.
int64_t CollectBlockDemand(const BitmapIndex* index, const BlockDemand& demand,
                           BlockId start, int count, const BitVector& consumed,
                           std::vector<uint64_t>* scratch,
                           std::vector<uint8_t>* marks,
                           std::vector<BlockId>* reads);

}  // namespace fastmatch

#endif  // FASTMATCH_ENGINE_BLOCK_POLICY_H_
