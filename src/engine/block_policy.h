// AnyActive block selection policies (paper Section 4.2, Challenge 3/4).
//
// Given the set of *active* candidates (those whose per-round sample
// targets are unmet), a block should be read iff it contains at least one
// tuple of an active candidate. Two implementations:
//
//  * Naive (paper Algorithm 2): per block, probe each active candidate's
//    bitmap until one hits. Each probe lands on a different bitmap (a
//    different cache line), so per-block evaluation thrashes the cache
//    when many candidates are active — this is the documented cause of
//    SyncMatch's pathological slowdowns on high-|VZ| queries.
//
//  * Lookahead (paper Algorithm 3): candidate-outer, block-inner over a
//    batch of `lookahead` blocks. We realize the inner loop as a word-wise
//    OR of bitmap words into an accumulator, consuming an entire cache
//    line of each candidate's bitmap per touch.

#ifndef FASTMATCH_ENGINE_BLOCK_POLICY_H_
#define FASTMATCH_ENGINE_BLOCK_POLICY_H_

#include <cstdint>
#include <vector>

#include "index/bitmap_index.h"

namespace fastmatch {

/// \brief Algorithm 2: per-block candidate probing.
///
/// Sets (*marks)[i] = 1 iff block (start + i) contains a tuple of at least
/// one candidate in `active`, for i in [0, count). `start + count` must not
/// exceed the index's block count. `marks` is resized to `count`.
void MarkAnyActiveNaive(const BitmapIndex& index,
                        const std::vector<int>& active, BlockId start,
                        int count, std::vector<uint8_t>* marks);

/// \brief Algorithm 3: candidate-outer batch marking via word-wise OR.
///
/// Same contract as MarkAnyActiveNaive; `scratch` (word accumulator) is
/// caller-provided so repeated calls do not allocate.
void MarkAnyActiveLookahead(const BitmapIndex& index,
                            const std::vector<int>& active, BlockId start,
                            int count, std::vector<uint64_t>* scratch,
                            std::vector<uint8_t>* marks);

}  // namespace fastmatch

#endif  // FASTMATCH_ENGINE_BLOCK_POLICY_H_
