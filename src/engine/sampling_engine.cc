#include "engine/sampling_engine.h"

#include <algorithm>
#include <deque>
#include <thread>

#include "engine/block_policy.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/sync.h"

namespace fastmatch {

namespace {

/// One unit of work handed from the lookahead (marking) thread to the I/O
/// thread: the blocks of a batch that must be read. `done` flags the final
/// batch of a phase.
struct MarkBatch {
  std::vector<BlockId> reads;
  bool done = false;
};

/// Bounded SPSC queue; the marker blocks when the I/O side lags by more
/// than `capacity` batches (the paper's "waits to mark the next batch
/// until the I/O manager catches up").
class MarkQueue {
 public:
  explicit MarkQueue(size_t capacity) : capacity_(capacity) {}

  void Push(MarkBatch batch) {
    MutexLock lock(&mu_);
    while (queue_.size() >= capacity_) cv_space_.Wait(&mu_);
    queue_.push_back(std::move(batch));
    cv_item_.NotifyOne();
  }

  MarkBatch Pop() {
    MutexLock lock(&mu_);
    while (queue_.empty()) cv_item_.Wait(&mu_);
    MarkBatch batch = std::move(queue_.front());
    queue_.pop_front();
    cv_space_.NotifyOne();
    return batch;
  }

 private:
  const size_t capacity_;
  Mutex mu_;
  CondVar cv_item_, cv_space_;
  std::deque<MarkBatch> queue_ FASTMATCH_GUARDED_BY(mu_);
};

}  // namespace

Result<std::unique_ptr<SamplingEngine>> SamplingEngine::Create(
    std::shared_ptr<const ColumnStore> store,
    std::shared_ptr<const BitmapIndex> z_index, int z_attr,
    std::vector<int> x_attrs, EngineOptions options) {
  if (store == nullptr) return Status::InvalidArgument("null store");
  // Pin once up front: the whole run (geometry checks, cursor seeding,
  // every block read) resolves against this snapshot, so a concurrent
  // append cannot shift the grid mid-run.
  StoreView view = store->PinView();
  if (view.pin().num_rows == 0) {
    return Status::FailedPrecondition("empty store");
  }
  if (options.policy != BlockSelection::kScanAll) {
    if (z_index == nullptr) {
      return Status::InvalidArgument(
          "AnyActive policies require a bitmap index on the candidate "
          "attribute");
    }
    if (z_index->attribute() != z_attr) {
      return Status::InvalidArgument(
          "bitmap index was built for a different attribute");
    }
    // Single-query runs demand an exactly matching index (the batch
    // executor's covered-prefix rule is for shared scans that outlive
    // index builds; here a mismatch is a caller bug).
    if (z_index->num_blocks() != view.pin().num_blocks ||
        z_index->num_rows() != view.pin().num_rows) {
      return Status::InvalidArgument(
          "bitmap index block count does not match store");
    }
  }
  if (options.lookahead < 1) {
    return Status::InvalidArgument("lookahead must be >= 1");
  }
  FASTMATCH_ASSIGN_OR_RETURN(
      auto io,
      IoManager::Create(store, z_attr, std::move(x_attrs), std::move(view)));
  return std::unique_ptr<SamplingEngine>(new SamplingEngine(
      std::move(store), std::move(z_index), std::move(io), options));
}

SamplingEngine::SamplingEngine(std::shared_ptr<const ColumnStore> store,
                               std::shared_ptr<const BitmapIndex> z_index,
                               std::unique_ptr<IoManager> io,
                               EngineOptions options)
    : store_(std::move(store)),
      index_(std::move(z_index)),
      io_(std::move(io)),
      options_(options),
      num_blocks_(io_->pin().num_blocks),
      consumed_(num_blocks_) {
  Rng rng(options_.seed);
  cursor_ = static_cast<BlockId>(
      rng.Uniform(static_cast<uint64_t>(num_blocks_)));
  exhausted_.assign(io_->num_candidates(), false);
  fresh_.reset(new std::atomic<int64_t>[io_->num_candidates()]);
}

int64_t SamplingEngine::ConsumeBlock(BlockId b, CountMatrix* out,
                                     std::atomic<int64_t>* fresh) {
  const int64_t rows = io_->ReadBlock(b, out, fresh);
  consumed_.Set(b);
  ++consumed_blocks_;
  rows_consumed_ += rows;
  ++stats_.blocks_read;
  stats_.rows_read += rows;
  return rows;
}

void SamplingEngine::MarkAllExhausted() {
  std::fill(exhausted_.begin(), exhausted_.end(), true);
}

int64_t SamplingEngine::SampleRows(int64_t m, CountMatrix* out) {
  // Stage-1 I/O: plain sequential consumption; the paper's block choice
  // for the pruning stage is "just scan each block sequentially".
  int64_t drawn = 0;
  while (drawn < m && consumed_blocks_ < num_blocks_) {
    const BlockId b = NextBlock();
    if (consumed_.Get(b)) continue;
    drawn += ConsumeBlock(b, out, nullptr);
  }
  if (AllConsumed()) MarkAllExhausted();
  return drawn;
}

void SamplingEngine::SampleUntilTargets(const std::vector<int64_t>& targets,
                                        CountMatrix* out,
                                        std::vector<bool>* exhausted) {
  const int vz = io_->num_candidates();
  FASTMATCH_CHECK_EQ(static_cast<int>(targets.size()), vz);
  FASTMATCH_CHECK_EQ(static_cast<int>(exhausted->size()), vz);

  // Per-call fresh counters (shared with the marker thread in lookahead
  // mode). Targets demand samples drawn during this call, so the
  // counters start at zero regardless of what `out` already holds
  // (seeding from out->RowTotal conflated earlier rounds' samples with
  // this call's whenever a caller reused one matrix across rounds).
  for (int i = 0; i < vz; ++i) {
    fresh_[i].store(0, std::memory_order_relaxed);
  }

  switch (options_.policy) {
    case BlockSelection::kScanAll:
      RunScanAll(targets, out);
      break;
    case BlockSelection::kAnyActiveSync:
      RunSync(targets, out);
      break;
    case BlockSelection::kAnyActiveLookahead:
      RunLookahead(targets, out);
      break;
  }

  if (AllConsumed()) MarkAllExhausted();
  for (int i = 0; i < vz; ++i) {
    if (exhausted_[i]) (*exhausted)[i] = true;
    // Postcondition: every requested target is met or the candidate is
    // fully enumerated.
    FASTMATCH_CHECK(targets[i] < 0 || exhausted_[i] ||
                    fresh_[i].load(std::memory_order_relaxed) >= targets[i])
        << "candidate " << i << " target unmet without exhaustion";
  }
}

namespace {

/// Builds the list of candidates whose fresh-sample targets are unmet.
std::vector<int> UnmetList(const std::vector<int64_t>& targets,
                           const std::atomic<int64_t>* fresh,
                           const std::vector<bool>& exhausted) {
  std::vector<int> unmet;
  for (size_t i = 0; i < targets.size(); ++i) {
    if (targets[i] >= 0 && !exhausted[i] &&
        fresh[i].load(std::memory_order_relaxed) < targets[i]) {
      unmet.push_back(static_cast<int>(i));
    }
  }
  return unmet;
}

}  // namespace

void SamplingEngine::RunScanAll(const std::vector<int64_t>& targets,
                                CountMatrix* out) {
  std::vector<int> unmet = UnmetList(targets, fresh_.get(), exhausted_);
  int since_sweep = 0;
  while (!unmet.empty() && consumed_blocks_ < num_blocks_) {
    const BlockId b = NextBlock();
    if (consumed_.Get(b)) continue;
    ConsumeBlock(b, out, fresh_.get());
    if (++since_sweep >= 16) {
      since_sweep = 0;
      unmet = UnmetList(targets, fresh_.get(), exhausted_);
    }
  }
  if (consumed_blocks_ >= num_blocks_) MarkAllExhausted();
}

void SamplingEngine::RunSync(const std::vector<int64_t>& targets,
                             CountMatrix* out) {
  std::vector<int> unmet = UnmetList(targets, fresh_.get(), exhausted_);
  std::vector<uint8_t> mark(1);
  int64_t zero_read_streak = 0;
  int since_sweep = 0;

  while (!unmet.empty()) {
    if (consumed_blocks_ >= num_blocks_) {
      MarkAllExhausted();
      break;
    }
    // A full wrap-around cycle without a single read: every unconsumed
    // block lacks tuples of all unmet candidates, so they are fully
    // enumerated.
    if (zero_read_streak >= num_blocks_) {
      for (int i : unmet) exhausted_[i] = true;
      break;
    }
    const BlockId b = NextBlock();
    if (consumed_.Get(b)) {
      ++zero_read_streak;
      continue;
    }
    // Paper Algorithm 2: per-block candidate probing, synchronous.
    MarkAnyActiveNaive(*index_, unmet, b, 1, &mark);
    if (!mark[0]) {
      ++stats_.blocks_skipped;
      ++zero_read_streak;
      continue;
    }
    ConsumeBlock(b, out, fresh_.get());
    zero_read_streak = 0;
    if (++since_sweep >= 16) {
      since_sweep = 0;
      unmet = UnmetList(targets, fresh_.get(), exhausted_);
    }
  }
}

void SamplingEngine::RunLookahead(const std::vector<int64_t>& targets,
                                  CountMatrix* out) {
  // Marker state is private to the marking thread: a virtual view of
  // consumption that includes blocks queued but not yet read. Since the
  // marker is the only producer of reads, the view is consistent.
  BitVector virtual_consumed = consumed_;
  int64_t virtual_count = consumed_blocks_;
  BlockId marker_cursor = cursor_;

  MarkQueue queue(/*capacity=*/4);
  std::vector<int> marker_exhausted;
  int64_t marker_skipped = 0;
  int64_t marker_batches = 0;
  // Set by the I/O side the moment every target is met, so the marker
  // does not keep queueing reads against stale counts (lookahead
  // overshoot is bounded by the queue depth plus one batch).
  std::atomic<bool> stop{false};

  std::thread marker([&] {
    std::vector<uint64_t> scratch;
    std::vector<uint8_t> marks;
    int64_t zero_read_streak = 0;
    while (true) {
      if (stop.load(std::memory_order_relaxed)) {
        queue.Push(MarkBatch{{}, true});
        return;
      }
      std::vector<int> unmet = UnmetList(targets, fresh_.get(), exhausted_);
      if (unmet.empty()) {
        queue.Push(MarkBatch{{}, true});
        return;
      }
      if (virtual_count >= num_blocks_) {
        // Everything is consumed or queued: all candidates will be exact.
        for (int i = 0; i < io_->num_candidates(); ++i) {
          marker_exhausted.push_back(i);
        }
        queue.Push(MarkBatch{{}, true});
        return;
      }
      if (zero_read_streak >= num_blocks_) {
        marker_exhausted = unmet;
        queue.Push(MarkBatch{{}, true});
        return;
      }

      const int count = static_cast<int>(std::min<int64_t>(
          options_.lookahead, num_blocks_ - marker_cursor));
      MarkBatch batch;
      marker_skipped +=
          CollectBlockDemand(index_.get(), BlockDemand{std::move(unmet), false},
                             marker_cursor, count, virtual_consumed, &scratch,
                             &marks, &batch.reads);
      for (BlockId b : batch.reads) {
        virtual_consumed.Set(b);
        ++virtual_count;
      }
      marker_cursor += count;
      if (marker_cursor >= num_blocks_) marker_cursor = 0;
      if (batch.reads.empty()) {
        zero_read_streak += count;
      } else {
        zero_read_streak = 0;
        ++marker_batches;
        queue.Push(std::move(batch));
      }
    }
  });

  // This thread is the I/O manager: it executes read marks as they arrive,
  // never blocked by marking (paper Challenge 4). It also owns the
  // freshest counts, so it is the side that detects "all targets met" and
  // stops the pipeline; blocks still queued are discarded unread (their
  // consumed bits were never set).
  int since_check = 0;
  while (true) {
    MarkBatch batch = queue.Pop();
    if (!stop.load(std::memory_order_relaxed)) {
      for (BlockId b : batch.reads) {
        ConsumeBlock(b, out, fresh_.get());
        if (++since_check >= 16) {
          since_check = 0;
          if (UnmetList(targets, fresh_.get(), exhausted_).empty()) {
            stop.store(true, std::memory_order_relaxed);
            break;
          }
        }
      }
    }
    if (batch.done) break;
  }
  marker.join();

  cursor_ = marker_cursor;
  stats_.blocks_skipped += marker_skipped;
  stats_.marker_batches += marker_batches;
  // The marker's exhaustion conclusions presume every block it virtually
  // consumed was actually read. When the I/O side stopped early (all
  // targets met), queued reads were discarded and the claims are void --
  // and unneeded, since no target is left unmet.
  if (!stop.load(std::memory_order_relaxed)) {
    for (int i : marker_exhausted) exhausted_[i] = true;
  }
}

}  // namespace fastmatch
