// Block-scan count kernels: the per-row hot loop behind IoManager.
//
// A block scan folds (candidate z, group x) pairs into a CountMatrix.
// Two interchangeable kernels implement it:
//
//  * scalar  — the reference: one CountMatrix::Add-equivalent per row.
//  * avx2    — key precompute + tiled accumulate: 8 rows per step are
//    widened to u32 lanes (vpmovzxbd / vpmovzxwd / plain load per
//    ValueType), combined into flat cell keys z * |VX| + x with
//    vpmulld + vpaddd, and spilled to a stack tile; the tile is then
//    folded with interleaved sub-histograms (small domains) or direct
//    64-bit adds (large domains). Per-candidate row totals come from a
//    per-call tally flushed once at the end, not from a per-row
//    read-modify-write.
//
// Counts are commutative integer sums over the same rows, so both
// kernels produce bit-for-bit identical CountMatrix contents — the
// differential suite in tests/test_scan_kernel.cc asserts exactly that
// over every ValueType pair and tail length.
//
// Selection is layered:
//   compile time  — the FASTMATCH_SIMD CMake option (default ON)
//                   compiles src/engine/scan_kernel_avx2.cc with
//                   -mavx2; OFF leaves link-compatible stubs, so the
//                   scalar kernel is the only path (CI's force-scalar
//                   leg builds this way).
//   run time      — the AVX2 body runs only when the host CPU reports
//                   AVX2 and the FASTMATCH_FORCE_SCALAR environment
//                   variable is unset/"0" (checked once per process).
//   per call      — shapes the AVX2 kernel cannot hold on the stack
//                   (|VZ| > kScanTallyMaxCandidates) or whose flat key
//                   space overflows u32 fall back to scalar.
//
// The dispatchers live in this (non-AVX2) translation unit, so no AVX2
// instruction is reachable before the runtime check passes.

#ifndef FASTMATCH_ENGINE_SCAN_KERNEL_H_
#define FASTMATCH_ENGINE_SCAN_KERNEL_H_

#include <cstdint>
#include <cstring>

#include "core/histogram.h"
#include "storage/types.h"

namespace fastmatch {

/// Largest |VZ| for which kernels keep the per-candidate tally (and
/// callers the fresh-counts flush buffer) on the stack. Larger domains
/// take the scalar per-row path.
inline constexpr int kScanTallyMaxCandidates = 1024;

/// \brief True when scan_kernel_avx2.cc was compiled with AVX2 bodies
/// (the FASTMATCH_SIMD build option was ON and the compiler supports
/// -mavx2).
bool ScanKernelSimdCompiled();

/// \brief SimdCompiled and the host CPU reports AVX2.
bool ScanKernelSimdSupported();

/// \brief SimdSupported and FASTMATCH_FORCE_SCALAR is not set in the
/// environment (evaluated once per process). This is what the auto
/// dispatchers consult.
bool ScanKernelSimdEnabled();

/// \brief Human-readable name of the kernel the auto dispatchers would
/// pick: "avx2" or "scalar".
const char* ScanKernelName();

/// \brief One x column of a generic (multi-x) scan: a chunk base
/// pointer, its physical width, and the attribute's cardinality (the
/// mixed-radix digit base).
struct ScanColumn {
  const uint8_t* data = nullptr;
  ValueType type = ValueType::kU8;
  int card = 0;
};

// Kernel contract (all variants): fold `rows` rows into `out` — cell
// (z[r], x[r]) and row total z[r] both advance by one per row — and,
// when `tally` is non-null, additionally add each candidate's per-call
// row count into tally[candidate] (tally must have at least
// out->num_candidates() entries and is NOT cleared first). Values must
// lie inside out's domain, exactly as CountMatrix::Add requires.

/// \brief Reference kernel for one typed (z, x) block slice.
template <typename ZT, typename XT>
void ScanBlockScalar(const ZT* z, const XT* x, int64_t rows, CountMatrix* out,
                     int64_t* tally);

/// \brief AVX2 kernel for one typed (z, x) block slice. Returns false —
/// writing nothing — when the AVX2 path is physically unavailable (not
/// compiled, CPU without AVX2) or the shape is unsuitable (|VZ| >
/// kScanTallyMaxCandidates, flat key space wider than u32). The
/// FASTMATCH_FORCE_SCALAR override is a policy knob consulted only by
/// the auto dispatchers, so the differential tests can still reach this
/// kernel explicitly.
template <typename ZT, typename XT>
bool ScanBlockSimd(const ZT* z, const XT* x, int64_t rows, CountMatrix* out,
                   int64_t* tally);

/// \brief Auto dispatcher: the AVX2 kernel when enabled and suitable,
/// else scalar. Returns true iff the AVX2 kernel ran.
template <typename ZT, typename XT>
bool ScanBlock(const ZT* z, const XT* x, int64_t rows, CountMatrix* out,
               int64_t* tally);

/// \brief Reference kernel for the multi-x generic case: the composite
/// group is the mixed-radix fold g = (...(x_0) * card_1 + x_1...) the
/// paper's Appendix A.1.3 composite uses.
void ScanBlockGenericScalar(const ScanColumn& z, const ScanColumn* xs,
                            int num_x, int64_t rows, CountMatrix* out,
                            int64_t* tally);

/// \brief AVX2 kernel for the multi-x generic case: the mixed-radix
/// fold runs widened (one vpmulld + vpaddd per x column per 8 rows)
/// instead of through a per-row per-column switch. Same availability /
/// suitability contract as ScanBlockSimd.
bool ScanBlockGenericSimd(const ScanColumn& z, const ScanColumn* xs, int num_x,
                          int64_t rows, CountMatrix* out, int64_t* tally);

/// \brief Auto dispatcher for the generic case.
bool ScanBlockGeneric(const ScanColumn& z, const ScanColumn* xs, int num_x,
                      int64_t rows, CountMatrix* out, int64_t* tally);

/// \brief One dictionary code from a type-erased chunk (the scalar
/// building block of the generic kernels' per-row loads and tails).
inline uint32_t ScanLoadValue(const uint8_t* base, int64_t row, ValueType t) {
  switch (t) {
    case ValueType::kU8:
      return base[row];
    case ValueType::kU16: {
      uint16_t v;
      std::memcpy(&v, base + row * 2, 2);
      return v;
    }
    case ValueType::kU32: {
      uint32_t v;
      std::memcpy(&v, base + row * 4, 4);
      return v;
    }
  }
  return 0;
}

// Internal seam between the dispatchers (scan_kernel.cc, compiled
// without -mavx2) and the AVX2 bodies (scan_kernel_avx2.cc, compiled
// with -mavx2 when FASTMATCH_SIMD is ON — link-compatible CHECK-fail
// stubs otherwise). Callers must gate on ScanKernelSimdSupported() and
// the shape checks; use the public entry points above instead.
namespace scan_kernel_detail {

/// True when this build carries real AVX2 bodies.
bool CompiledAvx2();

template <typename ZT, typename XT>
void ScanBlockAvx2(const ZT* z, const XT* x, int64_t rows, CountMatrix* out,
                   int64_t* tally);

void ScanBlockGenericAvx2(const ScanColumn& z, const ScanColumn* xs, int num_x,
                          int64_t rows, CountMatrix* out, int64_t* tally);

}  // namespace scan_kernel_detail

// The nine typed instantiations live in scan_kernel.cc / _avx2.cc.
#define FASTMATCH_SCAN_KERNEL_FOR_EACH_TYPED(M) \
  M(uint8_t, uint8_t)                           \
  M(uint8_t, uint16_t)                          \
  M(uint8_t, uint32_t)                          \
  M(uint16_t, uint8_t)                          \
  M(uint16_t, uint16_t)                         \
  M(uint16_t, uint32_t)                         \
  M(uint32_t, uint8_t)                          \
  M(uint32_t, uint16_t)                         \
  M(uint32_t, uint32_t)

#define FASTMATCH_SCAN_KERNEL_EXTERN(ZT, XT)                                  \
  extern template void ScanBlockScalar<ZT, XT>(const ZT*, const XT*, int64_t, \
                                               CountMatrix*, int64_t*);       \
  extern template bool ScanBlockSimd<ZT, XT>(const ZT*, const XT*, int64_t,   \
                                             CountMatrix*, int64_t*);         \
  extern template bool ScanBlock<ZT, XT>(const ZT*, const XT*, int64_t,       \
                                         CountMatrix*, int64_t*);
FASTMATCH_SCAN_KERNEL_FOR_EACH_TYPED(FASTMATCH_SCAN_KERNEL_EXTERN)
#undef FASTMATCH_SCAN_KERNEL_EXTERN

}  // namespace fastmatch

#endif  // FASTMATCH_ENGINE_SCAN_KERNEL_H_
