#include "core/verify.h"

#include <algorithm>
#include <limits>
#include <cmath>

#include "util/logging.h"

namespace fastmatch {

namespace {

/// Typed inner loop: candidate codes ZT, single-group codes via a
/// precomputed per-row group id would cost memory, so composite groups are
/// computed inline (the common case is a single x attribute).
template <typename ZT>
void AccumulateExact(const ColumnStore& store, int z_attr,
                     const std::vector<int>& x_attrs, CountMatrix* out) {
  const Column& z_col = store.column(z_attr);
  const StorePin pin = store.Pin();
  if (x_attrs.size() == 1) {
    const Column& x_col = store.column(x_attrs[0]);
    for (BlockId b = 0; b < pin.num_blocks; ++b) {
      RowId begin, end;
      pin.BlockRowRange(b, &begin, &end);
      const ZT* z_data = z_col.chunk_data<ZT>(b);
      for (RowId r = begin; r < end; ++r) {
        out->Add(static_cast<int>(z_data[r - begin]),
                 static_cast<int>(x_col.Get(r)));
      }
    }
    return;
  }
  std::vector<int> cards;
  cards.reserve(x_attrs.size());
  for (int a : x_attrs) {
    cards.push_back(static_cast<int>(store.schema().attribute(a).cardinality));
  }
  for (BlockId b = 0; b < pin.num_blocks; ++b) {
    RowId begin, end;
    pin.BlockRowRange(b, &begin, &end);
    const ZT* z_data = z_col.chunk_data<ZT>(b);
    for (RowId r = begin; r < end; ++r) {
      int g = 0;
      for (size_t i = 0; i < x_attrs.size(); ++i) {
        g = g * cards[i] + static_cast<int>(store.column(x_attrs[i]).Get(r));
      }
      out->Add(static_cast<int>(z_data[r - begin]), g);
    }
  }
}

}  // namespace

Result<CountMatrix> ComputeExactCounts(const ColumnStore& store, int z_attr,
                                       const std::vector<int>& x_attrs) {
  const int num_attrs = store.schema().num_attributes();
  if (z_attr < 0 || z_attr >= num_attrs) {
    return Status::InvalidArgument("z_attr out of range");
  }
  if (x_attrs.empty()) {
    return Status::InvalidArgument("at least one x attribute required");
  }
  int64_t groups = 1;
  for (int a : x_attrs) {
    if (a < 0 || a >= num_attrs) {
      return Status::InvalidArgument("x_attr out of range");
    }
    groups *= store.schema().attribute(a).cardinality;
    if (groups > (1 << 24)) {
      return Status::InvalidArgument("composite group cardinality too large");
    }
  }
  const int vz = static_cast<int>(store.schema().attribute(z_attr).cardinality);
  CountMatrix out(vz, static_cast<int>(groups));
  switch (store.schema().attribute(z_attr).type()) {
    case ValueType::kU8:
      AccumulateExact<uint8_t>(store, z_attr, x_attrs, &out);
      break;
    case ValueType::kU16:
      AccumulateExact<uint16_t>(store, z_attr, x_attrs, &out);
      break;
    case ValueType::kU32:
      AccumulateExact<uint32_t>(store, z_attr, x_attrs, &out);
      break;
  }
  return out;
}

GroundTruth ComputeGroundTruth(const CountMatrix& exact,
                               const Distribution& target, Metric metric,
                               double sigma, int k) {
  GroundTruth truth;
  const int vz = exact.num_candidates();
  truth.distances.resize(vz);
  truth.eligible.resize(vz);
  int64_t total = 0;
  for (int i = 0; i < vz; ++i) total += exact.RowTotal(i);
  truth.total_rows = total;

  std::vector<int> eligible_ids;
  for (int i = 0; i < vz; ++i) {
    truth.distances[i] =
        HistDistance(metric, exact.NormalizedRow(i), target);
    const bool ok =
        static_cast<double>(exact.RowTotal(i)) >=
        sigma * static_cast<double>(total);
    truth.eligible[i] = ok;
    if (ok) eligible_ids.push_back(i);
  }
  std::sort(eligible_ids.begin(), eligible_ids.end(), [&](int a, int b) {
    return truth.distances[a] < truth.distances[b] ||
           (truth.distances[a] == truth.distances[b] && a < b);
  });
  const size_t kk = std::min<size_t>(static_cast<size_t>(k),
                                     eligible_ids.size());
  truth.topk.assign(eligible_ids.begin(), eligible_ids.begin() + kk);
  return truth;
}

GuaranteeCheck CheckGuarantees(const MatchResult& result,
                               const CountMatrix& exact,
                               const GroundTruth& truth,
                               const Distribution& target,
                               const HistSimParams& params) {
  GuaranteeCheck check;
  const double eps_sep = params.SeparationEps();
  const double eps_rec = params.ReconstructionEps();

  std::vector<bool> in_output(truth.distances.size(), false);
  for (int i : result.topk) in_output[i] = true;

  // ------------------------------------------------------- Guarantee 1
  // Furthest output, by *true* distance.
  double furthest_output = 0;
  for (int i : result.topk) {
    furthest_output = std::max(furthest_output, truth.distances[i]);
  }
  // Every eligible non-output candidate must be less than eps closer to
  // the target than the furthest output.
  check.worst_separation = 0;
  for (size_t i = 0; i < truth.distances.size(); ++i) {
    if (in_output[i] || !truth.eligible[i]) continue;
    const double slack = furthest_output - truth.distances[i];
    check.worst_separation = std::max(check.worst_separation, slack);
  }
  check.separation_ok = check.worst_separation < eps_sep;

  // ------------------------------------------------------- Guarantee 2
  check.worst_reconstruction = 0;
  for (int i : result.topk) {
    const Distribution est = result.counts.NormalizedRow(i);
    const Distribution tru = exact.NormalizedRow(i);
    double err;
    if (est.empty() && tru.empty()) {
      err = 0;  // both undefined: a candidate with zero tuples
    } else {
      err = HistDistance(params.metric, est, tru);
    }
    check.worst_reconstruction = std::max(check.worst_reconstruction, err);
  }
  check.reconstruction_ok = check.worst_reconstruction < eps_rec;

  // ----------------------------------------------------------- Delta_d
  double est_sum = 0;
  for (int i : result.topk) {
    est_sum += HistDistance(params.metric, result.counts.NormalizedRow(i),
                            target);
  }
  double true_sum = 0;
  for (int j : truth.topk) true_sum += truth.distances[j];
  if (true_sum > 0) {
    check.delta_d = (est_sum - true_sum) / true_sum;
  } else {
    check.delta_d = est_sum > 0 ? std::numeric_limits<double>::infinity() : 0;
  }
  return check;
}

}  // namespace fastmatch
