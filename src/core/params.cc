#include "core/params.h"

#include <string>

namespace fastmatch {

Status HistSimParams::Validate() const {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (k_hi != 0 && k_hi < k) {
    return Status::InvalidArgument("k_hi must be 0 (disabled) or >= k");
  }
  if (SeparationEps() <= 0 || ReconstructionEps() <= 0) {
    return Status::InvalidArgument("epsilon must be > 0");
  }
  if (delta <= 0 || delta >= 1) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  if (sigma < 0 || sigma >= 1) {
    return Status::InvalidArgument("sigma must be in [0, 1)");
  }
  if (stage1_samples < 0) {
    return Status::InvalidArgument("stage1_samples must be >= 0");
  }
  return Status::OK();
}

}  // namespace fastmatch
