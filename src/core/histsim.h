// HistSim (paper Algorithm 1): the three-stage sampling algorithm that
// returns the top-k candidates closest to a target under normalized l1,
// with the separation and reconstruction guarantees (Problem 1) holding
// jointly with probability > 1 - delta.
//
//   Stage 1  prune rare candidates: hypergeometric under-representation
//            test per candidate, Holm-Bonferroni at level delta/3.
//   Stage 2  identify top-k: rounds of fresh samples; per-round split
//            point s, null hypotheses "tau*_i >= s + eps/2" (i in M) /
//            "tau*_j <= s - eps/2" (j not in M); P-values from the
//            Theorem-1 l1 deviation bound; all-or-nothing simultaneous
//            rejection at level delta/3/2^t.
//   Stage 3  reconstruct: top up winners to
//            n_i >= 2/eps^2 (|VX| log 2 + log(3k/delta)).
//
// The class is deliberately ignorant of where samples come from: it talks
// to a core/sampler.h Sampler (row-level reference implementation, or the
// block-based FastMatch engine).

#ifndef FASTMATCH_CORE_HISTSIM_H_
#define FASTMATCH_CORE_HISTSIM_H_

#include <vector>

#include "core/histogram.h"
#include "core/params.h"
#include "core/sampler.h"
#include "util/result.h"

namespace fastmatch {

/// \brief Counters describing one HistSim run.
struct HistSimDiagnostics {
  int64_t stage1_samples = 0;   // fresh tuples drawn in stage 1
  int64_t stage2_samples = 0;   // fresh tuples drawn across stage-2 rounds
  int64_t stage3_samples = 0;   // fresh tuples drawn in stage 3
  int rounds = 0;               // stage-2 rounds executed
  int pruned_candidates = 0;    // flagged rare in stage 1
  int exact_candidates = 0;     // fully enumerated (exhausted) candidates
  bool data_exhausted = false;  // the whole relation was consumed
  int chosen_k = 0;             // k actually returned (k-range extension)
  double stage1_seconds = 0;
  double stage2_seconds = 0;
  double stage3_seconds = 0;
};

/// \brief Output of a run: the estimated top-k plus all estimate state.
struct MatchResult {
  /// Candidate ids, ascending estimated distance to the target.
  std::vector<int> topk;
  /// Estimated distances of the top-k (same order).
  std::vector<double> topk_distances;
  /// Final estimated distance per candidate (MaxDistance for zero-sample
  /// candidates).
  std::vector<double> distances;
  /// Final cumulative counts per candidate.
  CountMatrix counts;
  /// Stage-1 pruning decision per candidate.
  std::vector<bool> pruned;
  /// Candidates whose counts are exact (fully enumerated).
  std::vector<bool> exact;
  HistSimDiagnostics diag;
};

/// \brief One top-k-similar query execution over a Sampler.
class HistSim {
 public:
  /// \param params problem parameters (validated in Run)
  /// \param target resolved target distribution q, |VX| entries summing
  ///        to 1
  HistSim(HistSimParams params, Distribution target);

  /// \brief Runs all three stages to completion against `sampler`.
  Result<MatchResult> Run(Sampler* sampler);

 private:
  HistSimParams params_;
  Distribution target_;
};

}  // namespace fastmatch

#endif  // FASTMATCH_CORE_HISTSIM_H_
