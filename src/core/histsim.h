// HistSim (paper Algorithm 1): the three-stage sampling algorithm that
// returns the top-k candidates closest to a target under normalized l1,
// with the separation and reconstruction guarantees (Problem 1) holding
// jointly with probability > 1 - delta.
//
//   Stage 1  prune rare candidates: hypergeometric under-representation
//            test per candidate, Holm-Bonferroni at level delta/3.
//   Stage 2  identify top-k: rounds of fresh samples; per-round split
//            point s, null hypotheses "tau*_i >= s + eps/2" (i in M) /
//            "tau*_j <= s - eps/2" (j not in M); P-values from the
//            Theorem-1 l1 deviation bound; all-or-nothing simultaneous
//            rejection at level delta/3/2^t.
//   Stage 3  reconstruct: top up winners to
//            n_i >= 2/eps^2 (|VX| log 2 + log(3k/delta)).
//
// The algorithm lives in HistSimMachine, a resumable state machine that
// is deliberately ignorant of where samples come from: it publishes a
// SampleDemand (stage-1 row count or stage-2/3 per-candidate targets),
// the caller obtains the samples however it likes and feeds them back
// through Supply(), and the machine advances to the next demand. This
// inversion is what lets the batch executor interleave N query runs over
// one shared scan. HistSim is the single-query driver: it satisfies each
// demand from a core/sampler.h Sampler (row-level reference
// implementation, or the block-based FastMatch engine).

#ifndef FASTMATCH_CORE_HISTSIM_H_
#define FASTMATCH_CORE_HISTSIM_H_

#include <vector>

#include "core/histogram.h"
#include "core/params.h"
#include "core/sampler.h"
#include "util/result.h"
#include "util/timer.h"

namespace fastmatch {

/// \brief Counters describing one HistSim run.
struct HistSimDiagnostics {
  int64_t stage1_samples = 0;   ///< fresh tuples drawn in stage 1
  int64_t stage2_samples = 0;   ///< fresh tuples drawn across stage-2 rounds
  int64_t stage3_samples = 0;   ///< fresh tuples drawn in stage 3
  int rounds = 0;               ///< stage-2 rounds executed
  int pruned_candidates = 0;    ///< flagged rare in stage 1
  /// Stage 1 was served from a prior sample (HistSimMachine::Begin with
  /// a Stage1Prior): stage1_samples counts the prior's rows, none of
  /// which were drawn by this run.
  bool stage1_warm = false;
  int exact_candidates = 0;     ///< fully enumerated (exhausted) candidates
  bool data_exhausted = false;  ///< the whole relation was consumed
  int chosen_k = 0;             ///< k actually returned (k-range extension)
  // Wall time between the stage's phase boundaries (demand issue to final
  // Supply). Under the single-query driver this is the stage's cost;
  // under the batch executor it includes the shared scan's work for
  // co-scheduled queries, so per-query stage times must not be summed
  // across a batch (use BatchItem::wall_seconds / BatchStats instead).
  double stage1_seconds = 0;
  double stage2_seconds = 0;
  double stage3_seconds = 0;
};

/// \brief Output of a run: the estimated top-k plus all estimate state.
struct MatchResult {
  /// Candidate ids, ascending estimated distance to the target.
  std::vector<int> topk;
  /// Estimated distances of the top-k (same order).
  std::vector<double> topk_distances;
  /// Final estimated distance per candidate (MaxDistance for zero-sample
  /// candidates).
  std::vector<double> distances;
  /// Per-candidate deviation radius at confidence 1 - delta: with
  /// probability > 1 - delta, |distances[i] - true_distance_i| <=
  /// error_bars[i] simultaneously for every candidate (Theorem 1 at
  /// delta/|VZ| per candidate, |tau_hat - tau| <= ||r_hat - r||_1).
  /// 0 for exact candidates; MaxDistance for zero-sample candidates.
  std::vector<double> error_bars;
  /// Final cumulative counts per candidate.
  CountMatrix counts;
  /// Stage-1 pruning decision per candidate.
  std::vector<bool> pruned;
  /// Candidates whose counts are exact (fully enumerated).
  std::vector<bool> exact;
  /// The run was harvested before its three stages completed (execution
  /// budget expired): topk/distances rank whatever samples were pooled
  /// at harvest time and error_bars are the honest per-candidate radii
  /// over those samples. Guarantees 1 and 2 are NOT claimed; the
  /// per-candidate bars are the result's only confidence statement.
  bool best_effort = false;
  HistSimDiagnostics diag;
};

/// \brief A point-in-time snapshot of a running query's answer,
/// surfaced at chunk boundaries by the batch executor (the anytime /
/// progressive-results channel).
///
/// Soundness: every sample behind the snapshot is a scan prefix of the
/// pre-shuffled store (plus any warm prior, itself such a prefix), so
/// the pooled per-candidate counts are uniform without-replacement
/// samples and Theorem 1 applies at the pooled size — the same §4.1
/// argument that makes suffix joins and stage-1 reuse sound. Bars are
/// per-candidate at delta/|VZ| (union bound), so all of them contain
/// the true distances simultaneously with probability > 1 - delta, and
/// they shrink weakly as the scan pools more rows.
struct ProgressUpdate {
  /// Per-query update number, strictly increasing from 1.
  uint64_t sequence = 0;
  /// Current top-k guess, ascending estimated distance (ties by id).
  std::vector<int> topk;
  /// Estimated distances of the current top-k (same order).
  std::vector<double> topk_distances;
  /// Estimated distance per candidate over the pooled sample.
  std::vector<double> distances;
  /// Per-candidate deviation radius (see MatchResult::error_bars).
  std::vector<double> error_bars;
  /// Candidates whose pooled counts are exact (bar is 0).
  std::vector<bool> exact;
  /// Rows behind this query's pooled estimate (all phases + partial).
  int64_t rows_consumed = 0;
  /// Blocks the shared scan has read so far (batch-level).
  int64_t blocks_read = 0;
  /// True exactly once, on the update emitted at completion: its
  /// topk/distances/error_bars/exact equal the delivered MatchResult
  /// bit for bit.
  bool final_update = false;
};

/// \brief What the algorithm needs next from the data layer.
///
/// Targets follow the per-call fresh-counter rule (core/sampler.h):
/// a target counts only samples drawn for THIS phase, never counts the
/// machine already holds from earlier phases — the stage-2 tests are
/// computed over the round's fresh sample alone.
struct SampleDemand {
  enum class Kind {
    kNone,     ///< nothing outstanding (machine finished or not begun)
    kRows,     ///< stage 1: `rows` fresh tuples, uniform w/o replacement
    kTargets,  ///< stage 2/3: per-candidate fresh-sample targets
  };
  Kind kind = Kind::kNone;
  /// Fresh tuples requested (kRows only).
  int64_t rows = 0;
  /// Per-candidate fresh-sample targets; -1 means no requirement.
  std::vector<int64_t> targets;
};

/// \brief A completed stage-1 sample to warm-start a machine from,
/// skipping the stage-1 draw entirely.
///
/// Stage 1 is target-independent: it draws a fixed number of uniform
/// rows before any candidate targets exist, so one query's stage-1
/// counts are reusable by every other query on the same (store,
/// template). `counts`/`rows_drawn` follow the same per-call
/// fresh-counter contract as a stage-1 Supply(): counts cover the rows
/// drawn for that stage-1 phase and ONLY those rows (never later
/// phases' samples). The prior must itself be a uniform
/// without-replacement sample of the relation — e.g. a scan prefix of a
/// pre-shuffled store, which is exactly what the batch executor
/// exports (engine Stage1Snapshot).
struct Stage1Prior {
  /// Stage-1 counts, |VZ| x |VX|. Required.
  const CountMatrix* counts = nullptr;
  /// Rows behind `counts`; must be > 0.
  int64_t rows_drawn = 0;
  /// Optional per-candidate exhaustion knowledge: exhausted[i] asserts
  /// counts row i is EXACT (every row of candidate i is behind it), not
  /// merely that some sampling window ran dry. Empty = no knowledge.
  /// Ignored when `overlapping` is set: the caller's window may then
  /// re-deliver an exhausted candidate's rows, so honoring the flag
  /// would freeze an "exact" count that later Supplies keep inflating —
  /// exactness is instead re-derived from the caller's own exhaustion
  /// signal with the prior's row subtracted.
  const std::vector<bool>* exhausted = nullptr;
  /// Every row of the relation is behind `counts` (all rows exact); the
  /// machine then completes immediately with the exact result.
  bool all_consumed = false;
  /// The caller's later sampling window may revisit rows already behind
  /// `counts` (e.g. a warm start into a fresh scan that was NOT resumed
  /// from the prior's position). Pooled totals are statistically fine —
  /// two independent uniform samples — but an exactness signal from the
  /// caller then covers only the caller's own window: the machine
  /// subtracts the prior's row before trusting a candidate's counts as
  /// exact, restoring the cold window-exactness semantics. Leave false
  /// when the caller's window is disjoint from the prior's rows.
  bool overlapping = false;
};

/// \brief One HistSim run as a resumable state machine.
///
/// Protocol: Begin() once, then alternate demand() / Supply() until
/// done(), then TakeResult(). A demand may legally be over-satisfied
/// (block granularity and shared scans deliver more rows than asked;
/// extra uniform samples never hurt the statistics) — Supply() takes
/// whatever was actually consumed for the phase.
class HistSimMachine {
 public:
  /// \param params problem parameters (validated in Begin)
  /// \param target resolved target distribution q, |VX| entries summing
  ///        to 1
  HistSimMachine(HistSimParams params, Distribution target);

  /// \brief Validates parameters against the sampling domain and issues
  /// the stage-1 demand. With a `prior`, the stage-1 demand is satisfied
  /// immediately from the prior sample (a warm start: the machine
  /// advances past stage 1 — or straight to completion when the prior
  /// covers the whole relation — without the caller drawing a row);
  /// equivalent to a cold Begin followed by Supply(prior...), and the
  /// prior must meet Supply's stage-1 contract.
  Status Begin(int num_candidates, int num_groups, int64_t total_rows,
               const Stage1Prior* prior = nullptr);

  /// \brief True once the run completed; TakeResult() is then valid.
  bool done() const { return phase_ == Phase::kDone; }

  /// \brief True when Begin or Supply returned an error; the machine is
  /// then dead and must be discarded.
  bool failed() const { return phase_ == Phase::kFailed; }

  /// \brief The outstanding demand (Kind::kNone iff done or failed).
  const SampleDemand& demand() const { return demand_; }

  /// \brief Feeds the samples that satisfied the current demand and
  /// advances to the next demand (or to completion).
  ///
  /// `fresh` holds every tuple consumed for this phase — and ONLY this
  /// phase (the per-call fresh-counter rule; callers that keep
  /// cumulative counts must pass cumulative-minus-phase-snapshot, as
  /// the batch executor does); `exhausted[i]` marks candidate i fully
  /// enumerated within the caller's sampling window (its cumulative
  /// counts are treated as exact); `all_consumed` marks the whole
  /// window consumed; `rows_drawn` is the fresh-tuple count behind
  /// `fresh`.
  Status Supply(const CountMatrix& fresh, const std::vector<bool>& exhausted,
                bool all_consumed, int64_t rows_drawn);

  /// \brief Moves the finished result out. Requires done(); valid once.
  MatchResult TakeResult();

  /// \brief Point-in-time answer snapshot from a live machine (any
  /// phase with a demand outstanding; also valid when done). `partial`
  /// is the caller's not-yet-supplied fresh counts for the current
  /// phase (nullptr = none) and `partial_rows` the rows behind them;
  /// both pool with the machine's own totals. Const: never advances the
  /// machine. rows_consumed is filled from the pooled totals;
  /// blocks_read/sequence/final_update are the caller's to stamp.
  ProgressUpdate Progress(const CountMatrix* partial,
                          int64_t partial_rows) const;

  /// \brief Completes the machine NOW from whatever it holds plus the
  /// caller's partial phase sample, producing a best_effort MatchResult
  /// (TakeResult becomes valid). Arguments follow the Supply contract
  /// (fresh = the current phase's counts so far). Valid only with a
  /// demand outstanding; a failure leaves the machine failed, exactly
  /// like a bad Supply.
  Status HarvestBestEffort(const CountMatrix& fresh,
                           const std::vector<bool>& exhausted,
                           bool all_consumed, int64_t rows_drawn);

 private:
  enum class Phase { kCreated, kStage1, kStage2, kStage3, kDone, kFailed };

  void RefreshTau(int i);
  bool TauLess(int a, int b) const {
    return tau_[a] < tau_[b] || (tau_[a] == tau_[b] && a < b);
  }
  /// Marks candidate i exact on the caller's exhaustion signal. With an
  /// overlapping warm prior, the prior's row is first removed from the
  /// totals: the caller's exhaustion only proves ITS window's counts
  /// exact, and the prior's rows may double-count that window.
  void MarkExact(int i);

  /// Per-candidate deviation radius from `n` pooled rows: 0 when
  /// `is_exact`, MaxDistance when n == 0, else Theorem 1 at delta/|VZ|
  /// clamped to MaxDistance. Shared by Finalize and Progress so the
  /// final update equals the delivered result bit for bit.
  double ErrorBarFor(bool is_exact, int64_t n) const;

  Status FinishStage1(const CountMatrix& fresh, int64_t rows_drawn);
  /// Merges the previous round, picks M and the split point, and either
  /// issues the round's targets demand or falls through to stage 3 when
  /// every remaining estimate is exact.
  Status PrepareStage2RoundOrAdvance();
  Status FinishStage2Round(const CountMatrix& fresh, int64_t rows_drawn);
  Status BeginStage3();
  Status FinishStage3(const CountMatrix& fresh, int64_t rows_drawn);
  Status Finalize();

  HistSimParams params_;
  Distribution target_;
  Phase phase_ = Phase::kCreated;
  SampleDemand demand_;
  MatchResult result_;
  HistSimDiagnostics diag_;
  WallTimer stage_timer_;

  int vz_ = 0;
  int vx_ = 0;
  int64_t n_total_ = 0;
  double eps_sep_ = 0;
  double log_delta_third_ = 0;
  /// log(delta / |VZ|): the per-candidate level behind error bars.
  double log_delta_bar_ = 0;

  CountMatrix total_;  // cumulative counts across stages/rounds
  CountMatrix round_;  // fresh counts of the current stage-2/3 phase
  // Overlapping warm prior: its counts, kept to subtract when the
  // caller's own window exhausts a candidate. Empty when cold or when
  // the prior is disjoint from the caller's window.
  CountMatrix prior_counts_;
  std::vector<bool> pruned_;
  std::vector<bool> exact_;
  std::vector<double> tau_;     // estimated distance per candidate
  std::vector<int> active_set_;  // A: non-pruned candidate ids
  std::vector<int> matching_;    // M: current top-k guess
  std::vector<bool> in_m_;
  double split_s_ = 0;
  int k_eff_ = 0;
  bool chose_k_ = false;
  bool need_stage2_ = false;
  double log_dupper_ = 0;
  int round_t_ = 0;
  bool data_exhausted_ = false;
};

/// \brief One top-k-similar query execution over a Sampler (the
/// single-query driver around HistSimMachine).
class HistSim {
 public:
  /// \param params problem parameters (validated in Run)
  /// \param target resolved target distribution q
  HistSim(HistSimParams params, Distribution target);

  /// \brief Runs all three stages to completion against `sampler`.
  Result<MatchResult> Run(Sampler* sampler);

 private:
  HistSimParams params_;
  Distribution target_;
};

}  // namespace fastmatch

#endif  // FASTMATCH_CORE_HISTSIM_H_
