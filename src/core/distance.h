// Distance functions between normalized histograms (paper Definition 2).
//
// The paper's primary metric is l1 between normalized vectors (2x total
// variation distance); l2 is supported for the Table 5 comparison and as
// an alternative metric (Appendix A.2.2), with guarantees inherited from
// the l1 deviation bound since ||.||_2 <= ||.||_1. KL divergence is
// provided for the Section 2 discussion/examples only.

#ifndef FASTMATCH_CORE_DISTANCE_H_
#define FASTMATCH_CORE_DISTANCE_H_

#include <string_view>

#include "core/histogram.h"

namespace fastmatch {

enum class Metric {
  kL1,
  kL2,
};

std::string_view MetricName(Metric m);

/// Maximum possible distance between two distributions under a metric;
/// used as the conventional distance for candidates with zero samples so
/// they sort last and stay eligible for sampling.
double MaxDistance(Metric m);

/// \brief ||a - b||_1 over distributions of equal size.
double L1Distance(const Distribution& a, const Distribution& b);

/// \brief ||a - b||_2 over distributions of equal size.
double L2Distance(const Distribution& a, const Distribution& b);

/// \brief KL(a || b); +inf when b has a zero where a does not (the
/// drawback Section 2.1 calls out).
double KLDivergence(const Distribution& a, const Distribution& b);

/// \brief Metric dispatch. Either argument empty (zero-sample histogram)
/// yields MaxDistance(m).
double HistDistance(Metric m, const Distribution& a, const Distribution& b);

}  // namespace fastmatch

#endif  // FASTMATCH_CORE_DISTANCE_H_
