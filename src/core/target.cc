#include "core/target.h"

#include <string>

namespace fastmatch {

Result<Distribution> ResolveTarget(const TargetSpec& spec,
                                   const CountMatrix& exact_counts,
                                   Metric metric) {
  const int vx = exact_counts.num_groups();
  switch (spec.kind) {
    case TargetSpec::Kind::kExplicit: {
      if (static_cast<int>(spec.explicit_dist.size()) != vx) {
        return Status::InvalidArgument(
            "explicit target has " +
            std::to_string(spec.explicit_dist.size()) + " entries, expected " +
            std::to_string(vx));
      }
      Distribution d = Normalize(spec.explicit_dist);
      if (d.empty()) {
        return Status::InvalidArgument("explicit target sums to zero");
      }
      return d;
    }
    case TargetSpec::Kind::kCandidate: {
      if (spec.candidate >= static_cast<Value>(exact_counts.num_candidates())) {
        return Status::OutOfRange("target candidate id out of range");
      }
      Distribution d = exact_counts.NormalizedRow(
          static_cast<int>(spec.candidate));
      if (d.empty()) {
        return Status::FailedPrecondition(
            "target candidate has no tuples; its histogram is undefined");
      }
      return d;
    }
    case TargetSpec::Kind::kClosestToUniform: {
      const Distribution uniform = UniformDistribution(vx);
      int best = -1;
      double best_dist = 0;
      for (int i = 0; i < exact_counts.num_candidates(); ++i) {
        Distribution d = exact_counts.NormalizedRow(i);
        if (d.empty()) continue;
        const double dist = HistDistance(metric, d, uniform);
        if (best < 0 || dist < best_dist) {
          best = i;
          best_dist = dist;
        }
      }
      if (best < 0) {
        return Status::FailedPrecondition(
            "no candidate has tuples; cannot resolve closest-to-uniform");
      }
      return exact_counts.NormalizedRow(best);
    }
  }
  return Status::Internal("unreachable target kind");
}

}  // namespace fastmatch
