#include "core/histsim.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "stats/deviation.h"
#include "stats/hypergeometric.h"
#include "stats/multiple_testing.h"
#include "util/logging.h"

namespace fastmatch {

namespace {

constexpr double kLog2 = 0.6931471805599453;

/// Multiplies a sample count by a slack factor without overflowing past
/// the deviation formulas' saturation sentinel.
int64_t SaturatingScale(int64_t n, int64_t factor) {
  return n > kSampleCountSaturated / factor ? kSampleCountSaturated
                                            : n * factor;
}

}  // namespace

HistSimMachine::HistSimMachine(HistSimParams params, Distribution target)
    : params_(std::move(params)), target_(std::move(target)) {}

void HistSimMachine::RefreshTau(int i) {
  Distribution d = total_.NormalizedRow(i);
  tau_[i] = HistDistance(params_.metric, d, target_);
}

void HistSimMachine::MarkExact(int i) {
  if (exact_[i]) return;
  if (prior_counts_.num_candidates() == vz_) {
    // The caller's exhaustion proves ITS window's counts exact, and an
    // overlapping prior may double-count rows of that window: remove
    // the prior's row so the exact claim covers exactly the caller's
    // window (the same semantics a cold query has).
    int64_t* row =
        total_.MutableData() + static_cast<size_t>(i) * total_.num_groups();
    const auto prior_row = prior_counts_.Row(i);
    int64_t removed = 0;
    for (int g = 0; g < total_.num_groups(); ++g) {
      row[g] -= prior_row[static_cast<size_t>(g)];
      removed += prior_row[static_cast<size_t>(g)];
    }
    total_.MutableRowTotals()[i] -= removed;
    RefreshTau(i);
  }
  exact_[i] = true;
}

Status HistSimMachine::Begin(int num_candidates, int num_groups,
                             int64_t total_rows, const Stage1Prior* prior) {
  if (phase_ != Phase::kCreated) {
    return Status::FailedPrecondition("HistSimMachine::Begin called twice");
  }
  phase_ = Phase::kFailed;  // until every validation below passes
  FASTMATCH_RETURN_IF_ERROR(params_.Validate());
  vz_ = num_candidates;
  vx_ = num_groups;
  n_total_ = total_rows;
  if (vz_ <= 0 || vx_ <= 0) {
    return Status::InvalidArgument("sampler reports empty domain");
  }
  if (static_cast<int>(target_.size()) != vx_) {
    return Status::InvalidArgument("target has wrong number of groups");
  }
  if (n_total_ <= 0) {
    return Status::FailedPrecondition("relation is empty");
  }

  eps_sep_ = params_.SeparationEps();
  log_delta_third_ = std::log(params_.delta / 3.0);
  log_delta_bar_ = std::log(params_.delta) - std::log(static_cast<double>(vz_));

  // The deviation-bound inversions saturate at int64 max instead of
  // overflowing; a saturated requirement means the parameters demand more
  // samples than any relation can hold, so reject them up front. Checked
  // at the stage-3 target and at the round-1 stage-2 worst case
  // (eps'_i >= eps/2 by construction of the split point).
  if (Stage3Samples(params_.ReconstructionEps(), vx_,
                    std::max(params_.k, params_.k_hi), params_.delta) ==
          kSampleCountSaturated ||
      DeviationSamples(eps_sep_ / 2, vx_, log_delta_third_ - kLog2) ==
          kSampleCountSaturated) {
    return Status::InvalidArgument(
        "epsilon too small: the required sample count overflows int64");
  }

  total_ = CountMatrix(vz_, vx_);
  round_ = CountMatrix(vz_, vx_);
  pruned_.assign(vz_, false);
  exact_.assign(vz_, false);
  tau_.assign(vz_, MaxDistance(params_.metric));

  demand_.kind = SampleDemand::Kind::kRows;
  demand_.rows = params_.stage1_samples;
  demand_.targets.clear();
  phase_ = Phase::kStage1;
  stage_timer_.Restart();

  if (prior != nullptr) {
    // Warm start: the stage-1 demand just issued is satisfied from the
    // prior sample, exactly as if the caller had drawn it. Validation
    // failures leave the machine failed (same contract as a bad
    // Supply); the prior is caller data, so they are statuses, not
    // CHECKs.
    if (prior->counts == nullptr || prior->rows_drawn <= 0) {
      phase_ = Phase::kFailed;
      demand_ = SampleDemand{};
      return Status::InvalidArgument(
          "stage-1 prior has no counts or a non-positive row count");
    }
    if (prior->counts->num_candidates() != vz_ ||
        prior->counts->num_groups() != vx_) {
      phase_ = Phase::kFailed;
      demand_ = SampleDemand{};
      return Status::InvalidArgument(
          "stage-1 prior does not match the sampling domain");
    }
    if (prior->exhausted != nullptr &&
        static_cast<int>(prior->exhausted->size()) != vz_) {
      phase_ = Phase::kFailed;
      demand_ = SampleDemand{};
      return Status::InvalidArgument(
          "stage-1 prior exhausted flags do not match the candidate count");
    }
    diag_.stage1_warm = true;
    // An overlapping prior's exhaustion flags are dropped, not honored:
    // a candidate marked exact here would skip MarkExact's prior
    // subtraction forever, yet the caller's overlapping window keeps
    // merging that candidate's duplicate rows into the totals — an
    // inflated count reported as exact. Exactness is instead
    // re-established by the caller's own exhaustion signal (a small
    // candidate runs dry in the caller's window too), which MarkExact
    // makes sound by subtracting the prior's row.
    const bool overlapping = prior->overlapping && !prior->all_consumed;
    if (overlapping) prior_counts_ = *prior->counts;
    const std::vector<bool> no_exhaustion(static_cast<size_t>(vz_), false);
    return Supply(*prior->counts,
                  prior->exhausted != nullptr && !overlapping
                      ? *prior->exhausted
                      : no_exhaustion,
                  prior->all_consumed, prior->rows_drawn);
  }
  return Status::OK();
}

Status HistSimMachine::Supply(const CountMatrix& fresh,
                              const std::vector<bool>& exhausted,
                              bool all_consumed, int64_t rows_drawn) {
  if (phase_ != Phase::kStage1 && phase_ != Phase::kStage2 &&
      phase_ != Phase::kStage3) {
    return Status::FailedPrecondition(
        "HistSimMachine::Supply: no demand outstanding");
  }
  FASTMATCH_CHECK_EQ(fresh.num_candidates(), vz_);
  FASTMATCH_CHECK_EQ(fresh.num_groups(), vx_);
  FASTMATCH_CHECK_EQ(static_cast<int>(exhausted.size()), vz_);

  data_exhausted_ = all_consumed;
  if (all_consumed) {
    for (int i = 0; i < vz_; ++i) MarkExact(i);
  } else {
    for (int i = 0; i < vz_; ++i) {
      if (exhausted[i]) MarkExact(i);
    }
  }

  Status status;
  switch (phase_) {
    case Phase::kStage1:
      status = FinishStage1(fresh, rows_drawn);
      break;
    case Phase::kStage2:
      status = FinishStage2Round(fresh, rows_drawn);
      break;
    default:
      status = FinishStage3(fresh, rows_drawn);
      break;
  }
  if (!status.ok()) {
    phase_ = Phase::kFailed;
    demand_ = SampleDemand{};
  }
  return status;
}

Status HistSimMachine::FinishStage1(const CountMatrix& fresh,
                                    int64_t rows_drawn) {
  total_.Merge(fresh);
  diag_.stage1_samples = rows_drawn;

  // Under-representation test (null: N_i >= sigma * N) only when a
  // pruning threshold was requested and sampling was partial.
  const int64_t k_rare = static_cast<int64_t>(
      std::ceil(params_.sigma * static_cast<double>(n_total_)));
  if (params_.sigma > 0 && k_rare >= 1 && rows_drawn > 0 &&
      !data_exhausted_) {
    int64_t max_ni = 0;
    for (int i = 0; i < vz_; ++i) {
      max_ni = std::max(max_ni, total_.RowTotal(i));
    }
    HypergeomCdfTable table(n_total_, k_rare, rows_drawn, max_ni);
    std::vector<double> log_pvalues(vz_);
    for (int i = 0; i < vz_; ++i) {
      log_pvalues[i] = table.LogCdf(total_.RowTotal(i));
    }
    for (int i : HolmBonferroniReject(log_pvalues, log_delta_third_)) {
      pruned_[i] = true;
    }
  } else if (data_exhausted_ && params_.sigma > 0) {
    // Complete data: prune by exact selectivity (Scan's behaviour).
    for (int i = 0; i < vz_; ++i) {
      if (static_cast<double>(total_.RowTotal(i)) <
          params_.sigma * static_cast<double>(n_total_)) {
        pruned_[i] = true;
      }
    }
  }

  for (int i = 0; i < vz_; ++i) {
    if (!pruned_[i]) active_set_.push_back(i);
    RefreshTau(i);
  }
  diag_.pruned_candidates = vz_ - static_cast<int>(active_set_.size());
  diag_.stage1_seconds = stage_timer_.Seconds();
  stage_timer_.Restart();

  if (active_set_.empty()) {
    return Status::FailedPrecondition(
        "all candidates were pruned as rare; lower sigma or raise "
        "stage1_samples");
  }

  // Effective k: cannot return more candidates than survive pruning.
  k_eff_ = std::min<int>(params_.k, static_cast<int>(active_set_.size()));
  diag_.chosen_k = k_eff_;
  need_stage2_ = static_cast<int>(active_set_.size()) > k_eff_;
  chose_k_ = params_.k_hi <= 0;
  log_dupper_ = log_delta_third_;
  round_t_ = 0;
  phase_ = Phase::kStage2;
  return PrepareStage2RoundOrAdvance();
}

Status HistSimMachine::PrepareStage2RoundOrAdvance() {
  if (!need_stage2_) return BeginStage3();

  ++round_t_;
  log_dupper_ -= kLog2;  // delta/3 / 2^t at round t

  // Fold the previous round's samples into the totals (Alg. 1 l.15-16)
  // and refresh distance estimates.
  total_.Merge(round_);
  round_.Reset();
  for (int i : active_set_) RefreshTau(i);

  std::vector<int> order = active_set_;
  std::sort(order.begin(), order.end(),
            [this](int a, int b) { return TauLess(a, b); });

  // Appendix A.2.3: given a k-range [k, k_hi], pick the boundary with
  // the widest distance gap once initial estimates exist.
  if (!chose_k_) {
    const int hi =
        std::min<int>(params_.k_hi, static_cast<int>(order.size()) - 1);
    double best_gap = -1;
    for (int kk = params_.k; kk <= hi; ++kk) {
      const double gap = tau_[order[kk]] - tau_[order[kk - 1]];
      if (gap > best_gap) {
        best_gap = gap;
        k_eff_ = kk;
      }
    }
    diag_.chosen_k = k_eff_;
    chose_k_ = true;
  }

  matching_.assign(order.begin(), order.begin() + k_eff_);
  const double max_m_tau = tau_[matching_.back()];
  const double min_rest_tau = tau_[order[k_eff_]];
  split_s_ = 0.5 * (max_m_tau + min_rest_tau);
  in_m_.assign(vz_, false);
  for (int i : matching_) in_m_[i] = true;

  // All-exact shortcut: every remaining estimate is exact, so the
  // separation is exact and no further samples can help.
  bool all_exact = true;
  for (int i : active_set_) {
    if (!exact_[i]) {
      all_exact = false;
      break;
    }
  }
  if (all_exact) return BeginStage3();

  // Per-candidate fresh-sample targets for this round (Equation 1),
  // assuming tau_i is correct: the round must reconstruct candidate i
  // to within eps'_i for its test to reject.
  //
  // Equation 1 alone makes the round's P-value land exactly at
  // delta_upper when the observed round distance equals the estimate,
  // i.e. each test rejects with only ~50% probability (less for
  // i in M, since the empirical l1 distance is biased upward). The
  // paper's system oversampled implicitly -- whole blocks feed every
  // candidate, so all but the scan-length-limiting candidate receive
  // far more than n'_i -- and reports termination "within 4 or 5
  // iterations". We make the slack explicit with a 2x factor, which
  // drives the design-point P-value to ~delta_upper^2 * 2^-|VX| and
  // keeps round counts small even when targets are hit exactly.
  // Correctness is unaffected (extra samples never hurt the test).
  constexpr int64_t kRoundSafetyFactor = 2;
  std::vector<int64_t> targets(vz_, -1);
  for (int i : active_set_) {
    if (exact_[i]) continue;
    const double eps_prime = in_m_[i]
                                 ? (split_s_ + eps_sep_ / 2 - tau_[i])
                                 : (tau_[i] - (split_s_ - eps_sep_ / 2));
    // eps'_i >= eps/2 holds by construction of s; guard anyway against
    // floating-point equality corner cases.
    const double eps_safe = std::max(eps_prime, eps_sep_ / 2);
    targets[i] = SaturatingScale(DeviationSamples(eps_safe, vx_, log_dupper_),
                                 kRoundSafetyFactor);
  }
  demand_.kind = SampleDemand::Kind::kTargets;
  demand_.rows = 0;
  demand_.targets = std::move(targets);
  return Status::OK();
}

Status HistSimMachine::FinishStage2Round(const CountMatrix& fresh,
                                         int64_t rows_drawn) {
  round_.Merge(fresh);
  diag_.stage2_samples += rows_drawn;

  // The multiple hypothesis test of Lemma 4 over fresh samples.
  std::vector<double> log_pvalues;
  log_pvalues.reserve(active_set_.size());
  for (int i : active_set_) {
    double lp;
    if (exact_[i]) {
      // Fully enumerated candidate: its true distance is known, so the
      // null is simply true or false. A true null can never be
      // rejected; a false null is rejected error-free.
      const auto total_row = total_.Row(i);
      const auto round_row = round_.Row(i);
      std::vector<int64_t> merged(vx_);
      for (int g = 0; g < vx_; ++g) {
        merged[g] = total_row[g] + round_row[g];
      }
      Distribution nd = Normalize(merged);
      const double tau_exact = HistDistance(params_.metric, nd, target_);
      const bool null_true = in_m_[i]
                                 ? (tau_exact >= split_s_ + eps_sep_ / 2)
                                 : (tau_exact <= split_s_ - eps_sep_ / 2);
      lp = null_true ? 0.0 : -std::numeric_limits<double>::infinity();
    } else {
      const Distribution d_round = round_.NormalizedRow(i);
      const double tau_round = HistDistance(params_.metric, d_round, target_);
      double eps_i;
      if (in_m_[i]) {
        eps_i = split_s_ + eps_sep_ / 2 - tau_round;
      } else if (split_s_ - eps_sep_ / 2 >= 0) {
        eps_i = tau_round - (split_s_ - eps_sep_ / 2);
      } else {
        eps_i = std::numeric_limits<double>::infinity();
      }
      lp = LogDeviationPValue(eps_i, round_.RowTotal(i), vx_);
    }
    log_pvalues.push_back(lp);
  }

  if (SimultaneousReject(log_pvalues, log_dupper_)) {
    total_.Merge(round_);
    round_.Reset();
    for (int i : active_set_) RefreshTau(i);
    return BeginStage3();
  }
  return PrepareStage2RoundOrAdvance();
}

Status HistSimMachine::BeginStage3() {
  if (!need_stage2_ || matching_.empty()) {
    // Everything left is a winner (|A| <= k), or stage 2 never assigned:
    // recompute from current estimates.
    std::vector<int> order = active_set_;
    std::sort(order.begin(), order.end(),
              [this](int a, int b) { return TauLess(a, b); });
    matching_.assign(
        order.begin(),
        order.begin() + std::min<size_t>(order.size(),
                                         static_cast<size_t>(k_eff_)));
  }
  diag_.rounds = round_t_;
  diag_.stage2_seconds = stage_timer_.Seconds();
  stage_timer_.Restart();

  const int64_t needed = Stage3Samples(params_.ReconstructionEps(), vx_,
                                       k_eff_, params_.delta);
  std::vector<int64_t> targets(vz_, -1);
  bool any = false;
  for (int i : matching_) {
    if (exact_[i]) continue;
    const int64_t missing = needed - total_.RowTotal(i);
    if (missing > 0) {
      targets[i] = missing;
      any = true;
    }
  }
  if (any) {
    round_.Reset();
    demand_.kind = SampleDemand::Kind::kTargets;
    demand_.rows = 0;
    demand_.targets = std::move(targets);
    phase_ = Phase::kStage3;
    return Status::OK();
  }
  return Finalize();
}

Status HistSimMachine::FinishStage3(const CountMatrix& fresh,
                                    int64_t rows_drawn) {
  round_.Merge(fresh);
  diag_.stage3_samples = rows_drawn;
  total_.Merge(round_);
  round_.Reset();
  for (int i : matching_) RefreshTau(i);
  return Finalize();
}

double HistSimMachine::ErrorBarFor(bool is_exact, int64_t n) const {
  if (is_exact) return 0;
  const double max_distance = MaxDistance(params_.metric);
  if (n <= 0) return max_distance;
  // Theorem 1 at delta/|VZ| per candidate (union bound over candidates),
  // with |tau_hat - tau| <= ||r_hat - r||_1 transferring the l1
  // deviation radius to the distance estimate; clamped at the metric's
  // diameter, past which a bar carries no information.
  return std::min(DeviationEpsilon(n, vx_, log_delta_bar_), max_distance);
}

Status HistSimMachine::Finalize() {
  diag_.stage3_seconds = stage_timer_.Seconds();

  // Re-estimate every candidate from the final pooled counts: stages 2/3
  // over-deliver rows to non-matching candidates at block granularity,
  // and the reported per-candidate error bars assume the distance
  // reflects the full pooled sample.
  for (int i = 0; i < vz_; ++i) RefreshTau(i);
  std::sort(matching_.begin(), matching_.end(),
            [this](int a, int b) { return TauLess(a, b); });
  result_.topk = matching_;
  result_.topk_distances.clear();
  result_.topk_distances.reserve(matching_.size());
  for (int i : matching_) result_.topk_distances.push_back(tau_[i]);
  result_.distances = tau_;
  result_.error_bars.resize(static_cast<size_t>(vz_));
  for (int i = 0; i < vz_; ++i) {
    result_.error_bars[static_cast<size_t>(i)] =
        ErrorBarFor(exact_[i], total_.RowTotal(i));
  }
  result_.counts = std::move(total_);
  result_.pruned = std::move(pruned_);
  result_.exact = exact_;
  diag_.exact_candidates = static_cast<int>(
      std::count(exact_.begin(), exact_.end(), true));
  diag_.data_exhausted = data_exhausted_;
  result_.diag = diag_;

  phase_ = Phase::kDone;
  demand_ = SampleDemand{};
  return Status::OK();
}

MatchResult HistSimMachine::TakeResult() {
  FASTMATCH_CHECK(phase_ == Phase::kDone)
      << "HistSimMachine::TakeResult before completion";
  return std::move(result_);
}

ProgressUpdate HistSimMachine::Progress(const CountMatrix* partial,
                                        int64_t partial_rows) const {
  ProgressUpdate up;
  // Only a live machine has a pool to report: kDone has moved its counts
  // into the result, kCreated/kFailed never had one.
  if (phase_ != Phase::kStage1 && phase_ != Phase::kStage2 &&
      phase_ != Phase::kStage3) {
    return up;
  }
  // Pooled estimate: all folded phases (round_ is always folded back
  // into total_ before a demand goes outstanding; merged defensively
  // anyway) plus the caller's not-yet-supplied partial phase sample.
  CountMatrix pooled = total_;
  pooled.Merge(round_);
  if (partial != nullptr) pooled.Merge(*partial);
  up.distances.resize(static_cast<size_t>(vz_));
  up.error_bars.resize(static_cast<size_t>(vz_));
  up.exact = exact_;
  std::vector<double> tau(static_cast<size_t>(vz_));
  for (int i = 0; i < vz_; ++i) {
    const int64_t n = pooled.RowTotal(i);
    tau[static_cast<size_t>(i)] =
        HistDistance(params_.metric, pooled.NormalizedRow(i), target_);
    up.distances[static_cast<size_t>(i)] = tau[static_cast<size_t>(i)];
    up.error_bars[static_cast<size_t>(i)] = ErrorBarFor(exact_[i], n);
  }
  // Completed stages logged their drawn rows into the diag counters;
  // the in-flight phase's rows are the caller's partial.
  up.rows_consumed = diag_.stage1_samples + diag_.stage2_samples +
                     diag_.stage3_samples + partial_rows;
  // Current top-k guess: the pruning-surviving candidates once stage 1
  // decided (all candidates before), ranked by pooled distance.
  std::vector<int> order;
  if (!active_set_.empty()) {
    order = active_set_;
  } else {
    order.resize(static_cast<size_t>(vz_));
    for (int i = 0; i < vz_; ++i) order[static_cast<size_t>(i)] = i;
  }
  std::sort(order.begin(), order.end(), [&tau](int a, int b) {
    return tau[static_cast<size_t>(a)] < tau[static_cast<size_t>(b)] ||
           (tau[static_cast<size_t>(a)] == tau[static_cast<size_t>(b)] &&
            a < b);
  });
  const size_t k = std::min(
      order.size(),
      static_cast<size_t>(k_eff_ > 0 ? k_eff_ : std::max(params_.k, 1)));
  up.topk.assign(order.begin(), order.begin() + k);
  up.topk_distances.reserve(k);
  for (int i : up.topk) {
    up.topk_distances.push_back(tau[static_cast<size_t>(i)]);
  }
  return up;
}

Status HistSimMachine::HarvestBestEffort(const CountMatrix& fresh,
                                         const std::vector<bool>& exhausted,
                                         bool all_consumed,
                                         int64_t rows_drawn) {
  if (phase_ != Phase::kStage1 && phase_ != Phase::kStage2 &&
      phase_ != Phase::kStage3) {
    return Status::FailedPrecondition(
        "HistSimMachine::HarvestBestEffort: no demand outstanding");
  }
  FASTMATCH_CHECK_EQ(fresh.num_candidates(), vz_);
  FASTMATCH_CHECK_EQ(fresh.num_groups(), vx_);
  FASTMATCH_CHECK_EQ(static_cast<int>(exhausted.size()), vz_);

  // Same exhaustion semantics as Supply: the caller's signal certifies
  // window exactness (MarkExact handles overlapping warm priors).
  data_exhausted_ = all_consumed;
  if (all_consumed) {
    for (int i = 0; i < vz_; ++i) MarkExact(i);
  } else {
    for (int i = 0; i < vz_; ++i) {
      if (exhausted[i]) MarkExact(i);
    }
  }

  switch (phase_) {
    case Phase::kStage1:
      diag_.stage1_samples = rows_drawn;
      diag_.stage1_seconds = stage_timer_.Seconds();
      break;
    case Phase::kStage2:
      diag_.stage2_samples += rows_drawn;
      diag_.stage2_seconds = stage_timer_.Seconds();
      break;
    default:
      diag_.stage3_samples = rows_drawn;
      break;
  }
  diag_.rounds = round_t_;

  total_.Merge(round_);
  round_.Reset();
  total_.Merge(fresh);
  for (int i = 0; i < vz_; ++i) RefreshTau(i);

  // Rank whatever the pool says. Stage-1 pruning decisions are honored
  // when they exist (a harvest mid-stage-1 has none: every candidate is
  // still in play); k falls back to the requested k when stage 1 never
  // fixed k_eff_.
  std::vector<int> order;
  if (!active_set_.empty()) {
    order = active_set_;
  } else {
    order.resize(static_cast<size_t>(vz_));
    for (int i = 0; i < vz_; ++i) order[static_cast<size_t>(i)] = i;
  }
  std::sort(order.begin(), order.end(),
            [this](int a, int b) { return TauLess(a, b); });
  const size_t k = std::min(
      order.size(),
      static_cast<size_t>(k_eff_ > 0 ? k_eff_ : std::max(params_.k, 1)));
  matching_.assign(order.begin(), order.begin() + k);
  if (diag_.chosen_k == 0) diag_.chosen_k = static_cast<int>(k);

  result_.best_effort = true;
  const Status status = Finalize();
  if (!status.ok()) {
    phase_ = Phase::kFailed;
    demand_ = SampleDemand{};
  }
  return status;
}

// --------------------------------------------------------------- HistSim

HistSim::HistSim(HistSimParams params, Distribution target)
    : params_(std::move(params)), target_(std::move(target)) {}

Result<MatchResult> HistSim::Run(Sampler* sampler) {
  FASTMATCH_RETURN_IF_ERROR(params_.Validate());
  if (sampler == nullptr) {
    return Status::InvalidArgument("HistSim::Run: null sampler");
  }

  HistSimMachine machine(params_, target_);
  FASTMATCH_RETURN_IF_ERROR(machine.Begin(sampler->num_candidates(),
                                          sampler->num_groups(),
                                          sampler->total_rows()));

  const int vz = sampler->num_candidates();
  const int vx = sampler->num_groups();
  CountMatrix fresh(vz, vx);
  while (!machine.done()) {
    const SampleDemand& demand = machine.demand();
    fresh.Reset();
    std::vector<bool> exhausted(vz, false);
    int64_t drawn;
    if (demand.kind == SampleDemand::Kind::kRows) {
      drawn = sampler->SampleRows(demand.rows, &fresh);
    } else {
      const int64_t consumed_before = sampler->rows_consumed();
      sampler->SampleUntilTargets(demand.targets, &fresh, &exhausted);
      drawn = sampler->rows_consumed() - consumed_before;
    }
    FASTMATCH_RETURN_IF_ERROR(
        machine.Supply(fresh, exhausted, sampler->AllConsumed(), drawn));
  }
  return machine.TakeResult();
}

}  // namespace fastmatch
