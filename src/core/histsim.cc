#include "core/histsim.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "stats/deviation.h"
#include "stats/hypergeometric.h"
#include "stats/multiple_testing.h"
#include "util/logging.h"
#include "util/timer.h"

namespace fastmatch {

namespace {

constexpr double kLog2 = 0.6931471805599453;

/// Working state of one run, kept off the HistSim object so Run() is
/// re-entrant.
struct RunState {
  int vz = 0;
  int vx = 0;
  int64_t n_total = 0;  // N, total datapoints

  CountMatrix total;  // cumulative counts across stages/rounds
  CountMatrix round;  // fresh counts of the current stage-2/3 phase

  std::vector<bool> pruned;
  std::vector<bool> exact;
  std::vector<double> tau;  // estimated distance per candidate
  std::vector<int> active_set;  // A: non-pruned candidate ids
};

}  // namespace

HistSim::HistSim(HistSimParams params, Distribution target)
    : params_(std::move(params)), target_(std::move(target)) {}

Result<MatchResult> HistSim::Run(Sampler* sampler) {
  FASTMATCH_RETURN_IF_ERROR(params_.Validate());
  if (sampler == nullptr) {
    return Status::InvalidArgument("HistSim::Run: null sampler");
  }

  RunState st;
  st.vz = sampler->num_candidates();
  st.vx = sampler->num_groups();
  st.n_total = sampler->total_rows();
  if (st.vz <= 0 || st.vx <= 0) {
    return Status::InvalidArgument("sampler reports empty domain");
  }
  if (static_cast<int>(target_.size()) != st.vx) {
    return Status::InvalidArgument("target has wrong number of groups");
  }
  if (st.n_total <= 0) {
    return Status::FailedPrecondition("relation is empty");
  }

  st.total = CountMatrix(st.vz, st.vx);
  st.round = CountMatrix(st.vz, st.vx);
  st.pruned.assign(st.vz, false);
  st.exact.assign(st.vz, false);
  st.tau.assign(st.vz, MaxDistance(params_.metric));

  MatchResult result;
  HistSimDiagnostics& diag = result.diag;

  const double eps_sep = params_.SeparationEps();
  const double log_delta_third = std::log(params_.delta / 3.0);

  auto refresh_tau = [&](int i) {
    Distribution d = st.total.NormalizedRow(i);
    st.tau[i] = HistDistance(params_.metric, d, target_);
  };

  auto mark_exhausted = [&](const std::vector<bool>& exhausted) {
    for (int i = 0; i < st.vz; ++i) {
      if (exhausted[i]) st.exact[i] = true;
    }
  };

  // ---------------------------------------------------------------- stage 1
  {
    WallTimer timer;
    const int64_t drawn =
        sampler->SampleRows(params_.stage1_samples, &st.total);
    diag.stage1_samples = drawn;
    if (sampler->AllConsumed()) {
      std::fill(st.exact.begin(), st.exact.end(), true);
    }

    // Under-representation test (null: N_i >= sigma * N) only when a
    // pruning threshold was requested and sampling was partial.
    const int64_t k_rare =
        static_cast<int64_t>(std::ceil(params_.sigma * st.n_total));
    if (params_.sigma > 0 && k_rare >= 1 && drawn > 0 &&
        !sampler->AllConsumed()) {
      int64_t max_ni = 0;
      for (int i = 0; i < st.vz; ++i) {
        max_ni = std::max(max_ni, st.total.RowTotal(i));
      }
      HypergeomCdfTable table(st.n_total, k_rare, drawn, max_ni);
      std::vector<double> log_pvalues(st.vz);
      for (int i = 0; i < st.vz; ++i) {
        log_pvalues[i] = table.LogCdf(st.total.RowTotal(i));
      }
      for (int i : HolmBonferroniReject(log_pvalues, log_delta_third)) {
        st.pruned[i] = true;
      }
    } else if (sampler->AllConsumed() && params_.sigma > 0) {
      // Complete data: prune by exact selectivity (Scan's behaviour).
      for (int i = 0; i < st.vz; ++i) {
        if (static_cast<double>(st.total.RowTotal(i)) <
            params_.sigma * static_cast<double>(st.n_total)) {
          st.pruned[i] = true;
        }
      }
    }

    for (int i = 0; i < st.vz; ++i) {
      if (!st.pruned[i]) st.active_set.push_back(i);
      refresh_tau(i);
    }
    diag.pruned_candidates =
        st.vz - static_cast<int>(st.active_set.size());
    diag.stage1_seconds = timer.Seconds();
  }

  if (st.active_set.empty()) {
    return Status::FailedPrecondition(
        "all candidates were pruned as rare; lower sigma or raise "
        "stage1_samples");
  }

  // Effective k: cannot return more candidates than survive pruning.
  int k_eff = std::min<int>(params_.k, static_cast<int>(st.active_set.size()));
  diag.chosen_k = k_eff;

  const auto tau_less = [&](int a, int b) {
    return st.tau[a] < st.tau[b] || (st.tau[a] == st.tau[b] && a < b);
  };

  // ---------------------------------------------------------------- stage 2
  std::vector<int> matching;  // M: current top-k guess
  {
    WallTimer timer;
    const bool need_stage2 =
        static_cast<int>(st.active_set.size()) > k_eff;

    double log_dupper = log_delta_third;
    int round_t = 0;
    bool chose_k = params_.k_hi <= 0;

    while (need_stage2) {
      ++round_t;
      log_dupper -= kLog2;  // delta/3 / 2^t at round t

      // Fold the previous round's samples into the totals (Alg. 1 l.15-16)
      // and refresh distance estimates.
      st.total.Merge(st.round);
      st.round.Reset();
      for (int i : st.active_set) refresh_tau(i);

      std::vector<int> order = st.active_set;
      std::sort(order.begin(), order.end(), tau_less);

      // Appendix A.2.3: given a k-range [k, k_hi], pick the boundary with
      // the widest distance gap once initial estimates exist.
      if (!chose_k) {
        const int hi =
            std::min<int>(params_.k_hi, static_cast<int>(order.size()) - 1);
        double best_gap = -1;
        for (int kk = params_.k; kk <= hi; ++kk) {
          const double gap = st.tau[order[kk]] - st.tau[order[kk - 1]];
          if (gap > best_gap) {
            best_gap = gap;
            k_eff = kk;
          }
        }
        diag.chosen_k = k_eff;
        chose_k = true;
      }

      matching.assign(order.begin(), order.begin() + k_eff);
      const double max_m_tau = st.tau[matching.back()];
      const double min_rest_tau = st.tau[order[k_eff]];
      const double s = 0.5 * (max_m_tau + min_rest_tau);

      std::vector<bool> in_m(st.vz, false);
      for (int i : matching) in_m[i] = true;

      // All-exact shortcut: every remaining estimate is exact, so the
      // separation is exact and no further samples can help.
      bool all_exact = true;
      for (int i : st.active_set) {
        if (!st.exact[i]) {
          all_exact = false;
          break;
        }
      }
      if (all_exact) break;

      // Per-candidate fresh-sample targets for this round (Equation 1),
      // assuming tau_i is correct: the round must reconstruct candidate i
      // to within eps'_i for its test to reject.
      //
      // Equation 1 alone makes the round's P-value land exactly at
      // delta_upper when the observed round distance equals the estimate,
      // i.e. each test rejects with only ~50% probability (less for
      // i in M, since the empirical l1 distance is biased upward). The
      // paper's system oversampled implicitly -- whole blocks feed every
      // candidate, so all but the scan-length-limiting candidate receive
      // far more than n'_i -- and reports termination "within 4 or 5
      // iterations". We make the slack explicit with a 2x factor, which
      // drives the design-point P-value to ~delta_upper^2 * 2^-|VX| and
      // keeps round counts small even when targets are hit exactly.
      // Correctness is unaffected (extra samples never hurt the test).
      constexpr int64_t kRoundSafetyFactor = 2;
      std::vector<int64_t> targets(st.vz, -1);
      for (int i : st.active_set) {
        if (st.exact[i]) continue;
        const double eps_prime =
            in_m[i] ? (s + eps_sep / 2 - st.tau[i])
                    : (st.tau[i] - (s - eps_sep / 2));
        // eps'_i >= eps/2 holds by construction of s; guard anyway against
        // floating-point equality corner cases.
        const double eps_safe = std::max(eps_prime, eps_sep / 2);
        targets[i] =
            kRoundSafetyFactor * DeviationSamples(eps_safe, st.vx, log_dupper);
      }

      const int64_t consumed_before = sampler->rows_consumed();
      std::vector<bool> exhausted(st.vz, false);
      sampler->SampleUntilTargets(targets, &st.round, &exhausted);
      diag.stage2_samples += sampler->rows_consumed() - consumed_before;
      mark_exhausted(exhausted);

      // The multiple hypothesis test of Lemma 4 over fresh samples.
      std::vector<double> log_pvalues;
      log_pvalues.reserve(st.active_set.size());
      for (int i : st.active_set) {
        double lp;
        if (st.exact[i]) {
          // Fully enumerated candidate: its true distance is known, so the
          // null is simply true or false. A true null can never be
          // rejected; a false null is rejected error-free.
          Distribution d_exact(st.vx);
          const auto total_row = st.total.Row(i);
          const auto round_row = st.round.Row(i);
          std::vector<int64_t> merged(st.vx);
          for (int g = 0; g < st.vx; ++g) {
            merged[g] = total_row[g] + round_row[g];
          }
          Distribution nd = Normalize(merged);
          const double tau_exact =
              HistDistance(params_.metric, nd, target_);
          const bool null_true = in_m[i] ? (tau_exact >= s + eps_sep / 2)
                                         : (tau_exact <= s - eps_sep / 2);
          lp = null_true ? 0.0 : -std::numeric_limits<double>::infinity();
        } else {
          const Distribution d_round = st.round.NormalizedRow(i);
          const double tau_round =
              HistDistance(params_.metric, d_round, target_);
          double eps_i;
          if (in_m[i]) {
            eps_i = s + eps_sep / 2 - tau_round;
          } else if (s - eps_sep / 2 >= 0) {
            eps_i = tau_round - (s - eps_sep / 2);
          } else {
            eps_i = std::numeric_limits<double>::infinity();
          }
          lp = LogDeviationPValue(eps_i, st.round.RowTotal(i), st.vx);
        }
        log_pvalues.push_back(lp);
      }

      if (SimultaneousReject(log_pvalues, log_dupper)) {
        st.total.Merge(st.round);
        st.round.Reset();
        for (int i : st.active_set) refresh_tau(i);
        break;
      }
    }

    if (!need_stage2 || matching.empty()) {
      // Everything left is a winner (|A| <= k), or the loop broke on the
      // all-exact path before assigning: recompute from current estimates.
      std::vector<int> order = st.active_set;
      std::sort(order.begin(), order.end(), tau_less);
      matching.assign(order.begin(),
                      order.begin() + std::min<size_t>(order.size(), k_eff));
    }
    diag.rounds = round_t;
    diag.stage2_seconds = timer.Seconds();
  }

  // ---------------------------------------------------------------- stage 3
  {
    WallTimer timer;
    const int64_t needed = Stage3Samples(params_.ReconstructionEps(), st.vx,
                                         k_eff, params_.delta);
    std::vector<int64_t> targets(st.vz, -1);
    bool any = false;
    for (int i : matching) {
      if (st.exact[i]) continue;
      const int64_t missing = needed - st.total.RowTotal(i);
      if (missing > 0) {
        targets[i] = missing;
        any = true;
      }
    }
    if (any) {
      const int64_t consumed_before = sampler->rows_consumed();
      std::vector<bool> exhausted(st.vz, false);
      st.round.Reset();
      sampler->SampleUntilTargets(targets, &st.round, &exhausted);
      diag.stage3_samples = sampler->rows_consumed() - consumed_before;
      mark_exhausted(exhausted);
      st.total.Merge(st.round);
      st.round.Reset();
      for (int i : matching) refresh_tau(i);
    }
    diag.stage3_seconds = timer.Seconds();
  }

  // ------------------------------------------------------------------ output
  std::sort(matching.begin(), matching.end(), tau_less);
  result.topk = matching;
  result.topk_distances.reserve(matching.size());
  for (int i : matching) result.topk_distances.push_back(st.tau[i]);
  result.distances = st.tau;
  result.counts = std::move(st.total);
  result.pruned = std::move(st.pruned);
  result.exact = std::move(st.exact);
  diag.exact_candidates =
      static_cast<int>(std::count(result.exact.begin(), result.exact.end(),
                                  true));
  diag.data_exhausted = sampler->AllConsumed();
  return result;
}

}  // namespace fastmatch
