#include "core/histogram.h"

namespace fastmatch {

void CountMatrix::Merge(const CountMatrix& other) {
  FASTMATCH_CHECK_EQ(num_candidates_, other.num_candidates_);
  FASTMATCH_CHECK_EQ(num_groups_, other.num_groups_);
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  for (size_t i = 0; i < row_totals_.size(); ++i) {
    row_totals_[i] += other.row_totals_[i];
  }
}

void CountMatrix::Subtract(const CountMatrix& other) {
  FASTMATCH_CHECK_EQ(num_candidates_, other.num_candidates_);
  FASTMATCH_CHECK_EQ(num_groups_, other.num_groups_);
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] -= other.counts_[i];
    FASTMATCH_CHECK_GE(counts_[i], 0) << "Subtract of a non-snapshot";
  }
  for (size_t i = 0; i < row_totals_.size(); ++i) {
    row_totals_[i] -= other.row_totals_[i];
  }
}

void CountMatrix::Reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  std::fill(row_totals_.begin(), row_totals_.end(), 0);
}

Distribution CountMatrix::NormalizedRow(int candidate) const {
  return Normalize(Row(candidate));
}

Distribution Normalize(std::span<const int64_t> counts) {
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  if (total == 0) return {};
  Distribution out(counts.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    out[i] = static_cast<double>(counts[i]) / static_cast<double>(total);
  }
  return out;
}

Distribution Normalize(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) total += w;
  if (total <= 0) return {};
  Distribution out(weights.size());
  for (size_t i = 0; i < weights.size(); ++i) out[i] = weights[i] / total;
  return out;
}

Distribution UniformDistribution(int n) {
  FASTMATCH_CHECK_GT(n, 0);
  return Distribution(n, 1.0 / n);
}

}  // namespace fastmatch
