// Reference Sampler: uniform row-level sampling without replacement.
//
// Maintains a private random permutation of all row ids and walks it.
// This is the statistically cleanest sampler (exactly the model of the
// HistSim proofs) but does nothing to exploit locality — it exists to
// validate the statistics layer and as a baseline; the production path is
// engine/sampling_engine.h.
//
// Supports composite grouping attributes (Appendix A.1.3): when several
// x-attributes are given, the group id is their mixed-radix code and
// |VX| is the product of cardinalities.

#ifndef FASTMATCH_CORE_ROW_SAMPLER_H_
#define FASTMATCH_CORE_ROW_SAMPLER_H_

#include <memory>
#include <vector>

#include "core/sampler.h"
#include "storage/column_store.h"
#include "util/random.h"
#include "util/result.h"

namespace fastmatch {

class RowSampler : public Sampler {
 public:
  /// \brief Creates a sampler over `store` grouping by `x_attrs` with
  /// candidates from `z_attr`.
  static Result<std::unique_ptr<RowSampler>> Create(
      std::shared_ptr<const ColumnStore> store, int z_attr,
      std::vector<int> x_attrs, uint64_t seed);

  int num_candidates() const override { return num_candidates_; }
  int num_groups() const override { return num_groups_; }
  int64_t total_rows() const override { return store_->num_rows(); }

  int64_t SampleRows(int64_t m, CountMatrix* out) override;
  void SampleUntilTargets(const std::vector<int64_t>& targets,
                          CountMatrix* out,
                          std::vector<bool>* exhausted) override;
  bool AllConsumed() const override {
    return cursor_ >= static_cast<int64_t>(perm_.size());
  }
  int64_t rows_consumed() const override { return cursor_; }

 private:
  RowSampler(std::shared_ptr<const ColumnStore> store, int z_attr,
             std::vector<int> x_attrs, uint64_t seed);

  /// Mixed-radix group id of a row.
  int GroupOf(RowId row) const;

  std::shared_ptr<const ColumnStore> store_;
  int z_attr_;
  std::vector<int> x_attrs_;
  std::vector<int> x_cards_;
  int num_candidates_ = 0;
  int num_groups_ = 0;

  std::vector<RowId> perm_;  // private uniform permutation of row ids
  int64_t cursor_ = 0;       // rows consumed so far
};

}  // namespace fastmatch

#endif  // FASTMATCH_CORE_ROW_SAMPLER_H_
