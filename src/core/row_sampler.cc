#include "core/row_sampler.h"

#include <numeric>

namespace fastmatch {

Result<std::unique_ptr<RowSampler>> RowSampler::Create(
    std::shared_ptr<const ColumnStore> store, int z_attr,
    std::vector<int> x_attrs, uint64_t seed) {
  if (store == nullptr) return Status::InvalidArgument("null store");
  const int num_attrs = store->schema().num_attributes();
  if (z_attr < 0 || z_attr >= num_attrs) {
    return Status::InvalidArgument("z_attr out of range");
  }
  if (x_attrs.empty()) {
    return Status::InvalidArgument("at least one x attribute required");
  }
  int64_t groups = 1;
  for (int a : x_attrs) {
    if (a < 0 || a >= num_attrs) {
      return Status::InvalidArgument("x_attr out of range");
    }
    groups *= store->schema().attribute(a).cardinality;
    if (groups > (1 << 24)) {
      return Status::InvalidArgument(
          "composite group cardinality too large (> 2^24)");
    }
  }
  return std::unique_ptr<RowSampler>(
      new RowSampler(std::move(store), z_attr, std::move(x_attrs), seed));
}

RowSampler::RowSampler(std::shared_ptr<const ColumnStore> store, int z_attr,
                       std::vector<int> x_attrs, uint64_t seed)
    : store_(std::move(store)), z_attr_(z_attr), x_attrs_(std::move(x_attrs)) {
  num_candidates_ =
      static_cast<int>(store_->schema().attribute(z_attr_).cardinality);
  int64_t groups = 1;
  for (int a : x_attrs_) {
    const int card =
        static_cast<int>(store_->schema().attribute(a).cardinality);
    x_cards_.push_back(card);
    groups *= card;
  }
  num_groups_ = static_cast<int>(groups);

  perm_.resize(store_->num_rows());
  std::iota(perm_.begin(), perm_.end(), 0);
  Rng rng(seed);
  rng.Shuffle(&perm_);
}

int RowSampler::GroupOf(RowId row) const {
  int g = 0;
  for (size_t i = 0; i < x_attrs_.size(); ++i) {
    g = g * x_cards_[i] +
        static_cast<int>(store_->column(x_attrs_[i]).Get(row));
  }
  return g;
}

int64_t RowSampler::SampleRows(int64_t m, CountMatrix* out) {
  const int64_t n = static_cast<int64_t>(perm_.size());
  int64_t drawn = 0;
  const Column& z_col = store_->column(z_attr_);
  while (drawn < m && cursor_ < n) {
    const RowId row = perm_[cursor_++];
    out->Add(static_cast<int>(z_col.Get(row)), GroupOf(row));
    ++drawn;
  }
  return drawn;
}

void RowSampler::SampleUntilTargets(const std::vector<int64_t>& targets,
                                    CountMatrix* out,
                                    std::vector<bool>* exhausted) {
  FASTMATCH_CHECK_EQ(static_cast<int>(targets.size()), num_candidates_);
  FASTMATCH_CHECK_EQ(static_cast<int>(exhausted->size()), num_candidates_);

  // Fresh counts of this call only: targets demand newly drawn samples.
  // Seeding from out->RowTotal would conflate earlier rounds' samples
  // with this call's when the caller reuses one matrix across rounds.
  std::vector<int64_t> fresh(num_candidates_, 0);

  int64_t unmet = 0;
  for (int i = 0; i < num_candidates_; ++i) {
    if (targets[i] >= 0 && fresh[i] < targets[i]) ++unmet;
  }

  const int64_t n = static_cast<int64_t>(perm_.size());
  const Column& z_col = store_->column(z_attr_);
  while (cursor_ < n && unmet > 0) {
    const RowId row = perm_[cursor_++];
    const int z = static_cast<int>(z_col.Get(row));
    out->Add(z, GroupOf(row));
    ++fresh[z];
    if (targets[z] >= 0 && fresh[z] == targets[z]) --unmet;
  }

  if (cursor_ >= n) {
    // The whole relation has been consumed: every candidate's cumulative
    // counts are exact.
    std::fill(exhausted->begin(), exhausted->end(), true);
  }
}

}  // namespace fastmatch
