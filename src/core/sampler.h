// The sampling abstraction HistSim runs against.
//
// The paper stresses that HistSim's correctness is independent of how
// samples are obtained, as long as they are uniform without replacement
// ("our algorithm is agnostic to the sampling approach"). This interface
// is that seam: the statistics side (core/histsim) asks for samples; the
// implementation decides where they come from. Two implementations exist:
//
//  * core/row_sampler.h  - direct row-level sampling over a ColumnStore;
//    the reference implementation used to validate the statistics.
//  * engine/sampling_engine.h - the FastMatch block-based engine with
//    bitmap-driven AnyActive selection and lookahead.

#ifndef FASTMATCH_CORE_SAMPLER_H_
#define FASTMATCH_CORE_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "core/histogram.h"

namespace fastmatch {

/// \brief Source of uniform without-replacement samples, grouped into
/// (candidate, group) counts.
class Sampler {
 public:
  virtual ~Sampler() = default;

  /// Number of candidates |VZ|.
  virtual int num_candidates() const = 0;
  /// Number of x-axis groups |VX|.
  virtual int num_groups() const = 0;
  /// Total number of datapoints N.
  virtual int64_t total_rows() const = 0;

  /// \brief Stage-1 style sampling: draw up to `m` fresh tuples uniformly
  /// without replacement, adding them into `out`. Returns the number of
  /// tuples actually drawn (less than `m` only when the data ran out).
  virtual int64_t SampleRows(int64_t m, CountMatrix* out) = 0;

  /// \brief Stage-2/3 style sampling: draw fresh tuples until every
  /// candidate i with targets[i] >= 0 has received >= targets[i] samples
  /// *drawn during this call*, or until that candidate's tuples are
  /// exhausted. targets[i] < 0 means "no requirement for i". `out` may
  /// already hold counts from earlier phases (callers legally accumulate
  /// several rounds into one matrix); pre-existing counts never satisfy
  /// a target.
  ///
  /// This is the per-call fresh-counter rule, and it is load-bearing:
  /// HistSim's stage-2 tests are computed over each round's fresh
  /// sample, so counting carried-over tuples toward a target silently
  /// weakens the round's statistics. Implementations must track
  /// per-call progress with counters seeded from zero, never from
  /// `out`'s pre-existing totals (a conflation PR 2 fixed in both
  /// RowSampler and SamplingEngine; regression tests pin it).
  ///
  /// `exhausted` (size |VZ|) is set true for every candidate known to be
  /// fully enumerated across the sampler's lifetime (all its tuples have
  /// been consumed); such candidates' cumulative counts are exact.
  virtual void SampleUntilTargets(const std::vector<int64_t>& targets,
                                  CountMatrix* out,
                                  std::vector<bool>* exhausted) = 0;

  /// \brief True when every tuple has been consumed (cumulative counts of
  /// all candidates are exact).
  virtual bool AllConsumed() const = 0;

  /// \brief Fresh tuples drawn over the sampler's lifetime.
  virtual int64_t rows_consumed() const = 0;
};

}  // namespace fastmatch

#endif  // FASTMATCH_CORE_SAMPLER_H_
