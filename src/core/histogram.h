// Histogram count containers.
//
// A candidate's estimated visualization r_i is a vector of |VX| counts; a
// run of HistSim maintains one such vector per candidate. CountMatrix packs
// them row-major (|VZ| x |VX|) with per-candidate sample totals, which is
// the layout both the statistics and the scan kernels want.

#ifndef FASTMATCH_CORE_HISTOGRAM_H_
#define FASTMATCH_CORE_HISTOGRAM_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/logging.h"

namespace fastmatch {

/// A normalized histogram (discrete distribution), entries sum to 1.
using Distribution = std::vector<double>;

/// \brief Per-candidate histogram counts, row-major (|VZ| rows of |VX|).
class CountMatrix {
 public:
  CountMatrix() = default;
  CountMatrix(int num_candidates, int num_groups)
      : num_candidates_(num_candidates),
        num_groups_(num_groups),
        counts_(static_cast<size_t>(num_candidates) * num_groups, 0),
        row_totals_(num_candidates, 0) {}

  int num_candidates() const { return num_candidates_; }
  int num_groups() const { return num_groups_; }

  /// \brief Records one sampled tuple (candidate z, group x).
  void Add(int candidate, int group) {
    counts_[static_cast<size_t>(candidate) * num_groups_ + group] += 1;
    row_totals_[candidate] += 1;
  }

  /// \brief Counts row for one candidate.
  std::span<const int64_t> Row(int candidate) const {
    return {counts_.data() + static_cast<size_t>(candidate) * num_groups_,
            static_cast<size_t>(num_groups_)};
  }

  /// \brief Samples accumulated for a candidate (sum of its row).
  int64_t RowTotal(int candidate) const { return row_totals_[candidate]; }

  /// \brief Adds `other` cell-wise (accumulating a round into the total).
  void Merge(const CountMatrix& other);

  /// \brief Subtracts `other` cell-wise. `other` must be a snapshot of an
  /// earlier state of this matrix (counts never go negative); used to
  /// compute per-phase fresh counts as cumulative-minus-snapshot in the
  /// shared-scan batch executor.
  void Subtract(const CountMatrix& other);

  /// \brief Zeroes all cells and totals, keeping the shape.
  void Reset();

  /// \brief Normalized distribution of a candidate's row. Rows with zero
  /// total yield the empty vector (caller decides the convention).
  Distribution NormalizedRow(int candidate) const;

  /// \brief Direct cell access.
  int64_t At(int candidate, int group) const {
    return counts_[static_cast<size_t>(candidate) * num_groups_ + group];
  }

  /// \brief Mutable raw access for scan kernels (candidate-major).
  int64_t* MutableData() { return counts_.data(); }
  int64_t* MutableRowTotals() { return row_totals_.data(); }

 private:
  int num_candidates_ = 0;
  int num_groups_ = 0;
  std::vector<int64_t> counts_;
  std::vector<int64_t> row_totals_;
};

/// \brief Normalizes an integer count vector; empty result when total is 0.
Distribution Normalize(std::span<const int64_t> counts);

/// \brief Normalizes a non-negative weight vector; empty when sum is 0.
Distribution Normalize(const std::vector<double>& weights);

/// \brief Uniform distribution over n groups.
Distribution UniformDistribution(int n);

}  // namespace fastmatch

#endif  // FASTMATCH_CORE_HISTOGRAM_H_
