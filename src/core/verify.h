// Ground truth computation and guarantee verification.
//
// Used by (a) the Scan baseline, (b) target resolution, (c) tests and the
// benchmark harness, which count how often Guarantees 1 and 2 hold and
// compute the paper's Delta_d accuracy metric (Section 5.3).

#ifndef FASTMATCH_CORE_VERIFY_H_
#define FASTMATCH_CORE_VERIFY_H_

#include <memory>
#include <vector>

#include "core/distance.h"
#include "core/histogram.h"
#include "core/histsim.h"
#include "core/params.h"
#include "storage/column_store.h"
#include "util/result.h"

namespace fastmatch {

/// \brief Exact per-candidate histograms from a full scan; composite
/// grouping per Appendix A.1.3 when several x-attributes are given.
Result<CountMatrix> ComputeExactCounts(const ColumnStore& store, int z_attr,
                                       const std::vector<int>& x_attrs);

/// \brief The exact answer to a query, from exact counts.
struct GroundTruth {
  /// Exact distance to the target per candidate (MaxDistance convention
  /// for empty candidates).
  std::vector<double> distances;
  /// Exact top-k among candidates with selectivity >= sigma, ascending
  /// distance (ties by id).
  std::vector<int> topk;
  /// Selectivity-eligible flag per candidate (N_i / N >= sigma).
  std::vector<bool> eligible;
  int64_t total_rows = 0;
};

/// \brief Ranks candidates exactly: the Scan baseline's logic.
GroundTruth ComputeGroundTruth(const CountMatrix& exact,
                               const Distribution& target, Metric metric,
                               double sigma, int k);

/// \brief Outcome of checking one approximate answer against the truth.
struct GuaranteeCheck {
  bool separation_ok = true;      // Guarantee 1
  bool reconstruction_ok = true;  // Guarantee 2
  double delta_d = 0;             // total relative error in visual distance
  /// Worst observed slack: max over non-output eligible candidates of
  /// (furthest output's true distance) - (their true distance); guarantee 1
  /// requires this < eps.
  double worst_separation = 0;
  /// Worst reconstruction error among outputs.
  double worst_reconstruction = 0;
};

/// \brief Verifies Guarantees 1 and 2 and computes Delta_d (paper 5.3):
///
///   Delta_d = (sum_{i in M} d(r_i, q) - sum_{j in M*} d(r*_j, q))
///             / sum_{j in M*} d(r*_j, q)
///
/// where M is the approximate output with *estimated* histograms and M*
/// is the exact top-k (Delta_d can therefore be negative).
GuaranteeCheck CheckGuarantees(const MatchResult& result,
                               const CountMatrix& exact,
                               const GroundTruth& truth,
                               const Distribution& target,
                               const HistSimParams& params);

}  // namespace fastmatch

#endif  // FASTMATCH_CORE_VERIFY_H_
