// User-facing parameters of a HistSim run (paper Problem 1 + Appendix A.2).

#ifndef FASTMATCH_CORE_PARAMS_H_
#define FASTMATCH_CORE_PARAMS_H_

#include <cstdint>

#include "core/distance.h"
#include "util/status.h"

namespace fastmatch {

/// \brief Parameters of Problem 1 (TOP-K-SIMILAR) plus engine knobs.
struct HistSimParams {
  /// Number of matching histograms to retrieve.
  int k = 10;

  /// When > k, enables the Appendix A.2.3 extension: the algorithm may
  /// return any k' in [k, k_hi], picked at stage-2 start to maximize the
  /// distance gap at the boundary (easier separation).
  int k_hi = 0;

  /// Approximation error bound epsilon. When eps_separation /
  /// eps_reconstruction are 0, both guarantees use this value; setting
  /// them separately enables Appendix A.2.1.
  double epsilon = 0.04;
  double eps_separation = 0.0;
  double eps_reconstruction = 0.0;

  /// Failure probability bound for the joint guarantees.
  double delta = 0.01;

  /// Minimum selectivity: candidates with N_i/N below this may be pruned.
  double sigma = 0.0008;

  /// Stage-1 sample count m (paper default 5e5; footnote 1 notes
  /// insensitivity as long as it is neither tiny nor a large fraction of
  /// the data).
  int64_t stage1_samples = 500000;

  /// Distance metric (Appendix A.2.2).
  Metric metric = Metric::kL1;

  /// Seed for all randomness in the run (start offsets etc.).
  uint64_t seed = 42;

  double SeparationEps() const {
    return eps_separation > 0 ? eps_separation : epsilon;
  }
  double ReconstructionEps() const {
    return eps_reconstruction > 0 ? eps_reconstruction : epsilon;
  }

  /// \brief Validates ranges (k >= 1, 0 < eps, 0 < delta < 1, sigma >= 0).
  Status Validate() const;
};

}  // namespace fastmatch

#endif  // FASTMATCH_CORE_PARAMS_H_
