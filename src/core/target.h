// Visual target specification and resolution.
//
// A visual target q is an |VX|-vector the candidates are compared against
// (paper Section 2.1). Analysts supply it directly (an explicit shape such
// as FLIGHTS-q3's [0.25, 0.125 x 6]), by naming a candidate whose histogram
// they already have (the Greece / ORD scenarios), or as "the candidate
// closest to uniform" (the paper's default for most queries in Table 3).

#ifndef FASTMATCH_CORE_TARGET_H_
#define FASTMATCH_CORE_TARGET_H_

#include "core/distance.h"
#include "core/histogram.h"
#include "storage/types.h"
#include "util/result.h"

namespace fastmatch {

/// \brief How the target distribution is specified.
struct TargetSpec {
  enum class Kind {
    kExplicit,          // a literal distribution
    kCandidate,         // a named candidate's (exact) histogram
    kClosestToUniform,  // the candidate whose histogram is closest to uniform
  };

  Kind kind = Kind::kClosestToUniform;
  Distribution explicit_dist;  // kExplicit only
  Value candidate = 0;         // kCandidate only

  static TargetSpec Explicit(Distribution d) {
    TargetSpec s;
    s.kind = Kind::kExplicit;
    s.explicit_dist = std::move(d);
    return s;
  }
  static TargetSpec Candidate(Value v) {
    TargetSpec s;
    s.kind = Kind::kCandidate;
    s.candidate = v;
    return s;
  }
  static TargetSpec ClosestToUniform() { return TargetSpec{}; }
};

/// \brief Resolves a target spec into a concrete distribution, given the
/// exact per-candidate counts of the query template (see core/verify.h for
/// computing them). Explicit targets are normalized and size-checked.
Result<Distribution> ResolveTarget(const TargetSpec& spec,
                                   const CountMatrix& exact_counts,
                                   Metric metric);

}  // namespace fastmatch

#endif  // FASTMATCH_CORE_TARGET_H_
