#include "core/distance.h"

#include <cmath>
#include <limits>

#include "util/logging.h"

namespace fastmatch {

std::string_view MetricName(Metric m) {
  switch (m) {
    case Metric::kL1:
      return "l1";
    case Metric::kL2:
      return "l2";
  }
  return "?";
}

double MaxDistance(Metric m) {
  switch (m) {
    case Metric::kL1:
      return 2.0;  // disjoint supports
    case Metric::kL2:
      return std::sqrt(2.0);
  }
  return 2.0;
}

double L1Distance(const Distribution& a, const Distribution& b) {
  FASTMATCH_CHECK_EQ(a.size(), b.size());
  double acc = 0;
  for (size_t i = 0; i < a.size(); ++i) acc += std::fabs(a[i] - b[i]);
  return acc;
}

double L2Distance(const Distribution& a, const Distribution& b) {
  FASTMATCH_CHECK_EQ(a.size(), b.size());
  double acc = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

double KLDivergence(const Distribution& a, const Distribution& b) {
  FASTMATCH_CHECK_EQ(a.size(), b.size());
  double acc = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == 0.0) continue;
    if (b[i] == 0.0) return std::numeric_limits<double>::infinity();
    acc += a[i] * std::log(a[i] / b[i]);
  }
  return acc;
}

double HistDistance(Metric m, const Distribution& a, const Distribution& b) {
  if (a.empty() || b.empty()) return MaxDistance(m);
  switch (m) {
    case Metric::kL1:
      return L1Distance(a, b);
    case Metric::kL2:
      return L2Distance(a, b);
  }
  return MaxDistance(m);
}

}  // namespace fastmatch
