// Service-tier query scheduling: cross-store batching with streaming
// admission and per-query lifecycle management.
//
// engine::BatchExecutor amortizes block reads across queries, but it
// executes one batch over one ColumnStore. A service endpoint sees an
// open stream of queries over many stores, so something has to (a) group
// arrivals by store, (b) decide batch boundaries — the latency/
// amortization trade-off: waiting longer packs more queries per scan,
// answering sooner cuts queue time — and (c) push back when the worker
// pool saturates. QueryScheduler is that tier.
//
// One pipeline per logical store (keyed by the store's identity token —
// ColumnStore::id() for a plain query, PartitionedStore::id() for a
// query carrying a partition set — never an address), each with its own
// driver thread. Partitioned queries over a store and plain queries
// over the same store therefore run in SEPARATE pipelines: their
// batches are not mixable (a batch is either one shared scan or one
// scatter-gather), and distinct identity tokens keep the routing,
// janitor reaping, and stage-1 cache invalidation uniform across both
// kinds.
//
//   Submit(query) ──► per-store pending queue (bounded: back-pressure)
//                          │
//                          ▼  launch when the batch is full, the oldest
//                          │  arrival has waited max_queue_wait_seconds,
//                          │  or the scheduler is draining
//                          ▼
//                 BatchExecutor Start/Step loop (shared scan, block
//                 reads on the process-wide SharedWorkerPool under the
//                 batch's quota)
//                          ▲
//                          │  between chunks: late arrivals Join() the
//                          │  running scan mid-flight, expired/cancelled
//                          │  queued queries are shed, cancelled running
//                          │  queries are Evict()ed, and finished
//                          │  machines' futures are fulfilled eagerly
//
// Query lifecycle. Every accepted Submit terminates in EXACTLY one of
// four states, delivered through the handle's future exactly once:
//
//   queued ──► admitted ──► delivered        (item.status: result or a
//     │            │                          per-query error)
//     │            ├──► evicted               Cancelled
//     │            └──► budget-evicted        OK, best-effort result
//     ├──► shed (deadline passed in queue)    DeadlineExceeded
//     ├──► shed (cancelled in queue)          Cancelled
//     └──► shed (scheduler tearing down)      Unavailable
//
// Deadlines bound QUEUE time: a query that has not entered a scan when
// its deadline passes is shed with DeadlineExceeded at the next
// scheduling boundary (queue wait, chunk boundary, or launch). Once
// admitted, a query runs to completion unless cancelled or past its
// EXECUTION budget (SubmitOptions::budget_seconds, which starts at
// admission): a budget expiry harvests the query at the next chunk
// boundary into a best-effort result with honest non-exact error bars —
// an OK answer, never an error (and never if the machine completed
// first: the exact result always wins the race). Anytime streaming
// rides the same chunk boundaries: a query submitted with
// track_progress / on_progress surfaces its current top-k with
// per-candidate Theorem-1 error bars (ProgressUpdate) after every chunk,
// published by the driver with no pipeline lock held. Cancel() — or
// abandoning the QueryHandle without taking its result — marks the
// query; a queued query is shed, a running query is evicted from the
// batch at the next chunk boundary (its template's contribution leaves
// the union block demand, so abandoned queries stop consuming scan
// work). A cancel that races completion loses benignly: the finished
// result is delivered.
//
// Eager delivery: by default a query's future is fulfilled the moment
// its HistSim machine completes mid-scan (the executor's completion
// callback), not when the whole batch retires — the paper's per-query
// latency bound made real at the service boundary. eager_delivery=false
// restores retire-time delivery (the bench baseline).
//
// Threads. Submit may be called from any thread; QueryHandle::Cancel is
// thread-safe. Each pipeline thread is the only driver of its
// executors, so BatchExecutor itself needs no locking; the pipeline's
// pending deque is the sole shared state (one mutex per store). Block
// reads run on one process-wide SharedWorkerPool with per-batch quotas,
// so total worker threads stay bounded no matter how many stores are
// live. Pipelines idle past idle_pipeline_timeout_seconds are reaped (a
// janitor thread joins their drivers); a store seen again later simply
// gets a fresh pipeline.

#ifndef FASTMATCH_SERVICE_QUERY_SCHEDULER_H_
#define FASTMATCH_SERVICE_QUERY_SCHEDULER_H_

#include <atomic>
#include <chrono>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "engine/batch_executor.h"
#include "engine/executor.h"
#include "service/stage1_cache.h"
#include "util/result.h"
#include "util/sync.h"
#include "util/thread_pool.h"

namespace fastmatch {

/// \brief Admission, batching, and lifecycle policy for the scheduler.
struct SchedulerOptions {
  /// Per-batch executor knobs (quota, chunk size, seed). batch.shared_pool
  /// is overridden by the scheduler: every batch runs on `pool` (or the
  /// process pool) with batch.num_threads as its concurrency quota.
  BatchOptions batch;
  /// Maximum concurrently active queries per executor. A pipeline
  /// launches as soon as this many are pending, and mid-flight joins are
  /// admitted only while the live count is below it.
  int max_batch_queries = 16;
  /// A pending query waits at most this long for the batch to fill; the
  /// pipeline then launches a partial batch (never an empty one).
  double max_queue_wait_seconds = 0.010;
  /// Back-pressure bound: Submit returns ResourceExhausted once a
  /// store's pending queue holds this many queries.
  int max_pending_per_store = 1024;
  /// Streaming admission: let late arrivals Join() a running scan at
  /// chunk boundaries. When false every batch is closed at launch
  /// (PR 2 behaviour) — the baseline bench_scheduler compares against.
  bool allow_joins = true;
  /// Refuse mid-flight joins once less than this fraction of the
  /// store's blocks remains unconsumed; the query waits for a fresh
  /// batch instead. 0 admits joins until the scan's final chunk.
  double min_join_suffix_fraction = 0.05;
  /// Fulfill a query's future the moment its machine completes
  /// mid-scan. When false, every future of a batch is fulfilled at
  /// batch retire (pre-lifecycle behaviour; bench_lifecycle's
  /// baseline).
  bool eager_delivery = true;
  /// Reap a store pipeline (join its driver thread, drop its queue)
  /// once it has had no pending or running work for this long; <= 0
  /// disables reaping. A reaped store transparently gets a fresh
  /// pipeline on its next Submit.
  double idle_pipeline_timeout_seconds = 30.0;
  /// Per-store stage-1 sample cache (service Stage1Cache): stage-1
  /// snapshots exported by running batches are served back to later
  /// queries on the same (store, template), which skip stage 1
  /// entirely, and a warm template lifts the min_join_suffix_fraction
  /// refusal (stage 1 no longer needs the scan suffix). Reaping a
  /// store's pipeline invalidates its entries. Off by default: the
  /// cold path is the pre-cache baseline every bench compares against.
  bool stage1_cache = false;
  /// Cache retention knobs (see Stage1CacheOptions).
  int stage1_cache_capacity = 64;
  double stage1_cache_ttl_seconds = 0;
  /// Worker pool for every batch's block reads. nullptr selects the
  /// process-wide SharedWorkerPool::Process(). A non-null pool must
  /// outlive the scheduler.
  SharedWorkerPool* pool = nullptr;
};

/// \brief Per-Submit lifecycle knobs.
struct SubmitOptions {
  /// Queue-time budget, relative to Submit. A query still queued when
  /// the budget elapses is shed with DeadlineExceeded; once admitted
  /// into a scan it runs to completion (subject to budget_seconds).
  /// <= 0 means no deadline.
  double deadline_seconds = 0;
  /// EXECUTION budget, relative to admission into a scan (where
  /// deadline_seconds stops). A query still running when the budget
  /// elapses is evicted at the next chunk boundary and its future is
  /// fulfilled with a best-effort result: status OK,
  /// MatchResult::best_effort = true, and honest non-exact error bars
  /// over the sample pooled so far — NOT DeadlineExceeded. A budget
  /// expiry that races the machine's own completion loses benignly:
  /// the completed exact result is delivered. <= 0 means no budget.
  double budget_seconds = 0;
  /// Allocate a poll channel for this query: QueryHandle::Progress()
  /// then returns the latest anytime snapshot (see ProgressUpdate)
  /// published at each chunk boundary of the query's scan.
  bool track_progress = false;
  /// Streaming variant: invoked at every chunk boundary with the
  /// query's current anytime snapshot, and once more with
  /// final_update = true mirroring the delivered result bit-for-bit
  /// (OK terminals only). Runs on the store pipeline's driver thread —
  /// it must be fast and must not call back into the scheduler.
  std::function<void(const ProgressUpdate&)> on_progress;
};

/// \brief Counters describing scheduler behaviour (monotonic; snapshot
/// via QueryScheduler::stats()).
struct SchedulerStats {
  int64_t submitted = 0;          // accepted by Submit
  int64_t rejected = 0;           // refused by back-pressure
  int64_t completed = 0;          // futures fulfilled (any terminal state)
  int64_t batches_launched = 0;   // executors created
  int64_t timeout_flushes = 0;    // partial batches launched on deadline
  int64_t joined_midflight = 0;   // queries admitted via Join()
  // Once-refused joins whose query then launched in a fresh batch. A
  // refusal alone does not count: the driver re-consults every chunk,
  // and a mid-flight cache publish can still upgrade a refused cold
  // query to warm and join it (counted in joined_midflight instead).
  int64_t join_fallbacks = 0;
  int64_t pipelines = 0;          // pipelines ever created
  int64_t eager_delivered = 0;    // futures fulfilled before batch retire
  int64_t deadline_exceeded = 0;  // shed while queued, deadline passed
  int64_t cancelled = 0;          // terminal Cancelled (queued + evicted)
  int64_t evicted = 0;            // removed from a running batch (cancel)
  // Execution budget expiries: queries harvested from a running batch
  // with a best-effort result. These terminate OK (counted in
  // `completed` like any delivered result) and NEVER under
  // deadline_exceeded or cancelled — the budget path delivers an
  // answer, not an error.
  int64_t budget_evicted = 0;
  int64_t unavailable = 0;        // shed by scheduler teardown
  int64_t pipelines_reaped = 0;   // idle pipelines joined by the janitor
  // Stage-1 cache counters (all zero when the cache is disabled). These
  // mirror Stage1CacheStats. Lookups count consult EVENTS, not queries:
  // launch admission consults once per query, and a queued front query
  // is re-consulted at every chunk boundary of the running batch (a
  // mid-flight publish can upgrade it to warm), so one cold waiter can
  // accrue several misses. Every hit became a warm-started query.
  int64_t stage1_lookups = 0;
  int64_t stage1_hits = 0;
  int64_t stage1_misses = 0;
  int64_t stage1_inserts = 0;          // snapshots accepted from executors
  int64_t stage1_stale_evictions = 0;  // TTL expiries
  int64_t stage1_store_invalidations = 0;  // entries dropped on reap
  // Mutable-store drift lifecycle (zero while stores never grow):
  // lookups that found a generation-stale prior, how many of those
  // priors the drift test then promoted to the querier's generation,
  // and how many it evicted as drifted. With the invariant
  // stage1_lookups == stage1_hits + stage1_misses + stage1_revalidations.
  int64_t stage1_revalidations = 0;
  int64_t stage1_promotions = 0;
  int64_t stage1_drift_evictions = 0;
  int64_t joins_enabled_by_cache = 0;  // joins the suffix policy would have
                                       // refused, admitted because stage 1
                                       // came from cache
  // Sharded execution and warm-batch resume.
  int64_t sharded_batches = 0;        // batches run scatter-gather over a
                                      // PartitionedStore
  int64_t warm_batches_resumed = 0;   // fresh batches whose every query was
                                      // warm from one snapshot, launched with
                                      // BatchOptions::resume = snapshot.scan
                                      // (the donor's prefix is never re-read)
  int64_t batch_blocks_read = 0;      // blocks read across all retired
                                      // batches (executor stats, summed)
};

/// \brief Per-query outcome delivered through the handle's future.
struct SchedulerItem {
  /// Terminal state: OK (match valid), a per-query execution error, or
  /// one of the lifecycle codes DeadlineExceeded / Cancelled /
  /// Unavailable.
  Status status;
  /// Valid when status.ok().
  MatchResult match;
  /// Seconds from Submit until the query entered a scan (queueing), or
  /// until it was shed for queries that never entered one.
  double queue_seconds = 0;
  /// Seconds from Submit until the query's machine completed (queueing
  /// + execution). With eager delivery (the default) the future is
  /// fulfilled at that same moment; with retire-time delivery the
  /// future can become ready later than total_seconds suggests.
  double total_seconds = 0;
  /// True when the query joined a running scan mid-flight.
  bool joined_midflight = false;
};

class QueryScheduler;

/// \brief Latest-value mailbox for one query's anytime snapshots: the
/// pipeline driver publishes at each chunk boundary, any thread polls.
/// Its mutex is a LEAF of the lock hierarchy (held only around the
/// copy; Publish/Latest never take scheduler or pipeline locks), and
/// the driver publishes with NO pipeline lock held — the same
/// discipline as promise resolution.
class ProgressChannel {
 public:
  /// \brief Replaces the latest snapshot (driver thread).
  void Publish(const ProgressUpdate& update) FASTMATCH_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    latest_ = update;
    has_update_ = true;
  }

  /// \brief The most recent snapshot, or nullopt before the first
  /// publish. Safe from any thread.
  std::optional<ProgressUpdate> Latest() const FASTMATCH_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    if (!has_update_) return std::nullopt;
    return latest_;
  }

 private:
  mutable Mutex mu_;
  ProgressUpdate latest_ FASTMATCH_GUARDED_BY(mu_);
  bool has_update_ FASTMATCH_GUARDED_BY(mu_) = false;
};

/// \brief One query's cancellation state: a sticky flag plus a doorbell
/// that wakes the query's pipeline driver so a cancelled QUEUED query
/// is shed immediately instead of at the next flush wakeup.
///
/// The doorbell is installed at construction and immutable afterwards
/// (no set-after-publish race); it must be safe to invoke from any
/// thread at any time, including after the scheduler is gone — the
/// scheduler passes a weak_ptr-guarded notify.
class CancelToken {
 public:
  CancelToken() = default;
  explicit CancelToken(std::function<void()> doorbell)
      : doorbell_(std::move(doorbell)) {}

  /// \brief Sets the flag (idempotent) and rings the doorbell on the
  /// first call. Never blocks.
  void Cancel() {
    if (!cancelled_.exchange(true, std::memory_order_relaxed) &&
        doorbell_ != nullptr) {
      doorbell_();
    }
  }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
  const std::function<void()> doorbell_;
};

/// \brief Move-only owner of one submitted query's outcome: a future
/// plus a cancellation token.
///
/// Cancel() (thread-safe, idempotent) requests the query be shed from
/// the queue or evicted from its running batch at the next scheduling
/// boundary; the future then resolves with status Cancelled — unless
/// the result had already been produced, in which case it is delivered
/// (a cancel can never un-happen a completion, and every future
/// resolves exactly once either way).
///
/// Destroying a handle whose result was never taken counts as
/// abandoning the query and cancels it: callers that walk away stop
/// consuming scan work without any explicit bookkeeping.
class QueryHandle {
 public:
  QueryHandle() = default;
  QueryHandle(QueryHandle&&) = default;
  /// Overwriting a handle abandons its current query exactly like
  /// destruction does — the old query must not keep running for nobody.
  QueryHandle& operator=(QueryHandle&& other) noexcept {
    if (this != &other) {
      if (future_.valid()) Cancel();
      cancel_ = std::move(other.cancel_);
      future_ = std::move(other.future_);
      progress_ = std::move(other.progress_);
    }
    return *this;
  }
  QueryHandle(const QueryHandle&) = delete;
  QueryHandle& operator=(const QueryHandle&) = delete;

  /// \brief Cancels the query if its result has not been taken.
  ~QueryHandle() {
    if (future_.valid()) Cancel();
  }

  /// \brief Requests cancellation. Safe from any thread, any time,
  /// including after the scheduler is gone; never blocks. Rings the
  /// pipeline's doorbell so a queued query is shed (and its future
  /// resolved Cancelled) at the next driver wakeup, not the next flush
  /// deadline.
  void Cancel() {
    if (cancel_ != nullptr) cancel_->Cancel();
  }

  /// \brief Blocks for the terminal outcome. Valid exactly once.
  SchedulerItem Get() { return future_.get(); }

  /// \brief The query's latest anytime snapshot, or nullopt before the
  /// first chunk boundary of its scan (or when the query was submitted
  /// without SubmitOptions::track_progress). Safe from any thread; never
  /// blocks on the scan. The last snapshot before the future resolves
  /// has final_update = true and mirrors the delivered result.
  std::optional<ProgressUpdate> Progress() const {
    if (progress_ == nullptr) return std::nullopt;
    return progress_->Latest();
  }

  /// \brief True until Get() consumes the outcome.
  bool valid() const { return future_.valid(); }

  /// \brief The underlying future, for callers composing their own
  /// waits (timed wait_for, select loops). Get()/future().get() may be
  /// used interchangeably, once in total.
  std::future<SchedulerItem>& future() { return future_; }

 private:
  friend class QueryScheduler;
  std::shared_ptr<CancelToken> cancel_;
  std::future<SchedulerItem> future_;
  std::shared_ptr<ProgressChannel> progress_;
};

/// \brief Routes a stream of BoundQuerys to per-store shared-scan
/// pipelines with streaming batch admission and per-query lifecycle
/// management (deadlines, cancellation, eager delivery, idle reaping).
class QueryScheduler {
 public:
  explicit QueryScheduler(SchedulerOptions options);

  /// \brief Drains and joins every pipeline (Shutdown()).
  ~QueryScheduler();

  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  /// \brief Enqueues a query on its store's pipeline (created on first
  /// use, recreated transparently after a reap) and returns its handle.
  /// Fails fast with ResourceExhausted when the store's pending queue
  /// is full, with InvalidArgument for a query without a store, and
  /// with FailedPrecondition after Shutdown(). Per-query execution
  /// problems are NOT Submit errors; they arrive as the future's item
  /// status. Every accepted Submit's future resolves exactly once with
  /// a result, DeadlineExceeded, Cancelled, or Unavailable — including
  /// across Shutdown() and pipeline-reap races.
  Result<QueryHandle> Submit(BoundQuery query, SubmitOptions submit = {})
      FASTMATCH_EXCLUDES(mu_);

  /// \brief Stops accepting queries, drains every pending and running
  /// batch (all outstanding futures resolve), and joins the pipeline
  /// and janitor threads. Idempotent; called by the destructor.
  void Shutdown() FASTMATCH_EXCLUDES(mu_, shutdown_mu_);

  /// \brief Snapshot of the behaviour counters.
  SchedulerStats stats() const;

  /// \brief The stage-1 cache, or nullptr when disabled. Exposed for
  /// tests and tools; thread-safe.
  Stage1Cache* stage1_cache() { return stage1_cache_.get(); }

 private:
  using Clock = std::chrono::steady_clock;

  /// One not-yet-admitted query with its delivery promise.
  struct Pending {
    BoundQuery query;
    std::promise<SchedulerItem> promise;
    std::shared_ptr<CancelToken> cancel;
    Clock::time_point enqueued;
    /// Queue-time budget; time_point::max() when none.
    Clock::time_point deadline;
    /// Execution budget (seconds, <= 0 none); starts at admission.
    double budget_seconds = 0;
    /// Progress consumers, carried from SubmitOptions into Admitted.
    std::shared_ptr<ProgressChannel> progress;
    std::function<void(const ProgressUpdate&)> on_progress;
    /// A mid-flight join was refused at least once. Counted into
    /// join_fallbacks only if the query actually launches in a fresh
    /// batch — a later chunk boundary may still join it (the driver
    /// re-consults each chunk, and a cache publish can upgrade a
    /// refused cold query to warm).
    bool join_refused = false;
  };

  /// One query admitted into a running executor (same index space as
  /// BatchExecutor::TakeItems).
  struct Admitted {
    std::promise<SchedulerItem> promise;
    std::shared_ptr<CancelToken> cancel;
    Clock::time_point enqueued;
    Clock::time_point admitted;
    bool joined_midflight = false;
    /// Promise already resolved (eager delivery or eviction); the
    /// retire-time sweep must skip it — exactly-once is the contract.
    bool fulfilled = false;
    /// Evict() already issued for this query; don't re-issue each
    /// chunk boundary.
    bool evict_attempted = false;
    /// Execution-budget expiry instant; time_point::max() when none.
    Clock::time_point budget_deadline = Clock::time_point::max();
    /// EvictWithResult() already issued; don't re-issue each chunk.
    bool budget_evict_attempted = false;
    /// Progress consumers (null/empty when the query opted out).
    std::shared_ptr<ProgressChannel> progress;
    std::function<void(const ProgressUpdate&)> on_progress;
  };

  /// Per-store pipeline: bounded pending queue + driver thread.
  /// `mu` sits below the scheduler's map lock mu_ in the hierarchy
  /// (the janitor holds mu_ while claiming a pipeline) and above the
  /// Stage1Cache/WorkerPool leaf locks.
  struct Pipeline {
    Mutex mu;
    CondVar cv;
    std::deque<Pending> pending FASTMATCH_GUARDED_BY(mu);
    // global drain: finish the queue, then exit
    bool shutdown FASTMATCH_GUARDED_BY(mu) = false;
    // janitor claimed it: no new enqueues, exit
    bool retiring FASTMATCH_GUARDED_BY(mu) = false;
    bool busy FASTMATCH_GUARDED_BY(mu) = false;  // driver inside RunBatch
    Clock::time_point last_active FASTMATCH_GUARDED_BY(mu);
    /// Started under the scheduler map lock when the pipeline is
    /// created; joined by exactly one of {janitor, Shutdown} after the
    /// entry left the map — never concurrently, so no guard.
    std::thread thread;
  };

  /// A pending query shed before admission, with its terminal status.
  using Shed = std::pair<Pending, Status>;

  void PipelineLoop(Pipeline* pipeline) FASTMATCH_EXCLUDES(pipeline->mu);
  /// Pops pending queries into a full-or-flushed launch batch. Returns
  /// false when the pipeline should exit (shutdown/retire, queue
  /// drained).
  bool GatherLaunchBatch(Pipeline* pipeline, std::vector<BoundQuery>* queries,
                         std::vector<Admitted>* admitted)
      FASTMATCH_EXCLUDES(pipeline->mu);
  /// Runs one executor to completion: joins, sheds, evictions, and
  /// eager deliveries all happen at chunk boundaries.
  void RunBatch(Pipeline* pipeline, std::vector<BoundQuery> queries,
                std::vector<Admitted> admitted)
      FASTMATCH_EXCLUDES(pipeline->mu);
  /// Admits pending queries into the running scan while policy allows.
  void TryJoins(Pipeline* pipeline, BatchExecutor* executor,
                int64_t num_blocks, std::vector<Admitted>* admitted)
      FASTMATCH_EXCLUDES(pipeline->mu);
  /// Removes cancelled/expired entries from the pending deque; terminal
  /// fulfillment happens in FulfillShed, outside the lock (the
  /// promise-resolution rule, now compiler-visible: this method REQUIRES
  /// the lock FulfillShed must not run under).
  void ShedLocked(Pipeline* pipeline, std::vector<Shed>* shed)
      FASTMATCH_REQUIRES(pipeline->mu);
  /// True when any queued query's cancel flag is set — the condition
  /// the cancel doorbell wakes the gather wait to re-test.
  bool HasCancelledLocked(Pipeline* pipeline) const
      FASTMATCH_REQUIRES(pipeline->mu);
  /// Shed pass: lock, ShedLocked, unlock, FulfillShed.
  void ShedPending(Pipeline* pipeline) FASTMATCH_EXCLUDES(pipeline->mu);
  /// Resolves shed promises. Must run with NO pipeline lock held: a
  /// woken waiter may re-enter the scheduler (Submit, stats) from the
  /// future's continuation.
  void FulfillShed(std::vector<Shed> shed);
  /// Resolves one admitted query's promise with `item` (exactly once).
  void FulfillAdmitted(Admitted* a, BatchItem item, Clock::time_point batch_start,
                       bool eager);
  /// Issues Evict() for admitted queries whose cancel flag is set.
  void EvictCancelled(BatchExecutor* executor, std::vector<Admitted>* admitted);
  /// Issues EvictWithResult() for admitted queries past their execution
  /// budget: the harvested best-effort item (status OK,
  /// MatchResult::best_effort) rides the normal delivery paths. A
  /// budget expiry racing the machine's completion loses — the exact
  /// result is delivered.
  void EvictBudgetExpired(BatchExecutor* executor,
                          std::vector<Admitted>* admitted);
  /// Looks the query's template up in the stage-1 cache and attaches
  /// the snapshot on a hit (no-op when the cache is disabled or the
  /// query already carries warm state). The consult is GENERATION-
  /// AWARE: geometry comes from one pin taken here, the lookup carries
  /// the pinned generation, and a generation-stale whole-store prior is
  /// drift-tested synchronously (service/stage1_revalidator.h) — STABLE
  /// promotes the entry and attaches it, DRIFTING evicts it and the
  /// query runs cold. A cached prior is therefore never attached at a
  /// generation other than the pinned one, and the executor's own
  /// stale-warm guard backstops any append racing between this consult
  /// and batch creation. A partitioned query looks up every partition's
  /// entry — each partition's share of the stage-1 demand is
  /// proportional to its pinned row count — and attaches
  /// stage1_warm_parts only when ALL partitions hit (a partial warm set
  /// would leave the merged prior under the demand; a generation-stale
  /// partition entry counts as a miss — no per-partition revalidation
  /// fan-out). The cache lock is a leaf: callers may hold a pipeline
  /// lock.
  void AttachWarmStage1(BoundQuery* query);
  /// True when the query will skip stage 1 (whole-store snapshot or a
  /// full per-partition warm set) — the condition that lifts the
  /// min_join_suffix_fraction refusal.
  static bool IsWarm(const BoundQuery& query) {
    return query.stage1_warm != nullptr || !query.stage1_warm_parts.empty();
  }
  /// Janitor: joins pipelines idle past the timeout.
  void ReaperLoop() FASTMATCH_EXCLUDES(mu_);

  /// Lock-free counters (incremented under assorted mutexes; atomics
  /// keep stats() safe without a lock-order relationship to them).
  struct Counters {
    std::atomic<int64_t> submitted{0};
    std::atomic<int64_t> rejected{0};
    std::atomic<int64_t> completed{0};
    std::atomic<int64_t> batches_launched{0};
    std::atomic<int64_t> timeout_flushes{0};
    std::atomic<int64_t> joined_midflight{0};
    std::atomic<int64_t> join_fallbacks{0};
    std::atomic<int64_t> pipelines{0};
    std::atomic<int64_t> eager_delivered{0};
    std::atomic<int64_t> deadline_exceeded{0};
    std::atomic<int64_t> cancelled{0};
    std::atomic<int64_t> evicted{0};
    std::atomic<int64_t> budget_evicted{0};
    std::atomic<int64_t> unavailable{0};
    std::atomic<int64_t> pipelines_reaped{0};
    std::atomic<int64_t> joins_enabled_by_cache{0};
    std::atomic<int64_t> sharded_batches{0};
    std::atomic<int64_t> warm_batches_resumed{0};
    std::atomic<int64_t> batch_blocks_read{0};
  };

  /// Counts the terminal status into the right counters and resolves
  /// the promise (completed is incremented BEFORE set_value so a woken
  /// waiter never observes a stats() snapshot missing its query).
  void Resolve(std::promise<SchedulerItem>* promise, SchedulerItem item);

  const SchedulerOptions options_;
  SharedWorkerPool* const pool_;  // options_.pool or the process pool
  /// Created when options_.stage1_cache; executors publish into it
  /// (BatchOptions::stage1_sink) and admission/join paths Lookup it.
  /// Internally locked (leaf) — safe from pipeline threads and the
  /// janitor. The pointer itself is immutable after construction.
  const std::unique_ptr<Stage1Cache> stage1_cache_;

  /// Serializes Shutdown callers end to end; top of the lock hierarchy.
  Mutex shutdown_mu_;
  /// Map lock: pipelines_ / shutdown_ / the janitor's wait. Acquired
  /// after shutdown_mu_ and before any Pipeline::mu (the janitor claims
  /// pipelines under both).
  Mutex mu_ FASTMATCH_ACQUIRED_AFTER(shutdown_mu_);
  CondVar reaper_cv_;
  /// Keyed by ColumnStore::id(), NOT the store pointer: a freed store's
  /// address can be recycled for a new store, which must not alias the
  /// dead store's pipeline. shared_ptr, not unique_ptr: a Submit holds
  /// its pipeline reference across an unlocked window (mu_ released
  /// before pipeline->mu is taken), during which the janitor may reap
  /// the entry — the object must outlive every such holder.
  std::map<uint64_t, std::shared_ptr<Pipeline>> pipelines_
      FASTMATCH_GUARDED_BY(mu_);
  bool shutdown_ FASTMATCH_GUARDED_BY(mu_) = false;
  /// Started in the constructor, joined in Shutdown (which serializes
  /// via shutdown_mu_), never touched elsewhere.
  std::thread reaper_;
  Counters counters_;  // lint: unguarded (std::atomic members only)
};

}  // namespace fastmatch

#endif  // FASTMATCH_SERVICE_QUERY_SCHEDULER_H_
