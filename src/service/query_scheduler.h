// Service-tier query scheduling: cross-store batching with streaming
// admission.
//
// engine::BatchExecutor amortizes block reads across queries, but it
// executes one batch over one ColumnStore. A service endpoint sees an
// open stream of queries over many stores, so something has to (a) group
// arrivals by store, (b) decide batch boundaries — the latency/
// amortization trade-off: waiting longer packs more queries per scan,
// answering sooner cuts queue time — and (c) push back when the worker
// pools saturate. QueryScheduler is that tier.
//
// One pipeline per ColumnStore, each with its own driver thread:
//
//   Submit(query) ──► per-store pending queue (bounded: back-pressure)
//                          │
//                          ▼  launch when the batch is full, the oldest
//                          │  arrival has waited max_queue_wait_seconds,
//                          │  or the scheduler is draining
//                          ▼
//                 BatchExecutor Start/Step loop (shared scan)
//                          ▲
//                          │  between chunks: late arrivals Join() the
//                          │  running scan mid-flight (streaming
//                          │  admission) instead of waiting for the next
//                          │  batch
//
// Mid-flight joins are sound because a joined query is fed from the scan
// suffix only, which is still a uniform without-replacement sample of
// the relation (see engine/batch_executor.h). The quality caveat is
// suffix size: a query that joins when little data remains can exhaust
// before meeting its sample targets. min_join_suffix_fraction makes that
// trade-off an explicit admission knob — below the threshold the query
// waits for the next fresh batch instead (and a join is always refused
// once the final chunk has been consumed; the executor enforces that).
//
// Threading: Submit may be called from any thread. Each pipeline thread
// is the only driver of its executors, so BatchExecutor itself needs no
// locking; the pipeline's pending deque is the sole shared state (one
// mutex per store). Results are delivered through std::future, fulfilled
// by the pipeline thread when a batch completes.

#ifndef FASTMATCH_SERVICE_QUERY_SCHEDULER_H_
#define FASTMATCH_SERVICE_QUERY_SCHEDULER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "engine/batch_executor.h"
#include "engine/executor.h"
#include "util/result.h"

namespace fastmatch {

/// \brief Admission and batching policy for the scheduler.
struct SchedulerOptions {
  /// Per-batch executor knobs (worker threads, chunk size, seed). Every
  /// concurrently running store pipeline creates its own WorkerPool of
  /// batch.num_threads workers.
  BatchOptions batch;
  /// Maximum concurrently active queries per executor. A pipeline
  /// launches as soon as this many are pending, and mid-flight joins are
  /// admitted only while the live count is below it.
  int max_batch_queries = 16;
  /// A pending query waits at most this long for the batch to fill; the
  /// pipeline then launches a partial batch (never an empty one).
  double max_queue_wait_seconds = 0.010;
  /// Back-pressure bound: Submit returns ResourceExhausted once a
  /// store's pending queue holds this many queries.
  int max_pending_per_store = 1024;
  /// Streaming admission: let late arrivals Join() a running scan at
  /// chunk boundaries. When false every batch is closed at launch
  /// (PR 2 behaviour) — the baseline bench_scheduler compares against.
  bool allow_joins = true;
  /// Refuse mid-flight joins once less than this fraction of the
  /// store's blocks remains unconsumed; the query waits for a fresh
  /// batch instead. 0 admits joins until the scan's final chunk.
  double min_join_suffix_fraction = 0.05;
};

/// \brief Counters describing scheduler behaviour (monotonic; snapshot
/// via QueryScheduler::stats()).
struct SchedulerStats {
  int64_t submitted = 0;         // accepted by Submit
  int64_t rejected = 0;          // refused by back-pressure
  int64_t completed = 0;         // futures fulfilled
  int64_t batches_launched = 0;  // executors created
  int64_t timeout_flushes = 0;   // partial batches launched on deadline
  int64_t joined_midflight = 0;  // queries admitted via Join()
  int64_t join_fallbacks = 0;    // joins refused (suffix too small/empty)
  int64_t pipelines = 0;         // distinct stores seen
};

/// \brief Per-query outcome delivered through the Submit future.
struct SchedulerItem {
  /// Per-query status; scheduler-level failures (e.g. the batch's store
  /// is empty) surface here too.
  Status status;
  /// Valid when status.ok().
  MatchResult match;
  /// Seconds from Submit until the query entered a scan (queueing).
  double queue_seconds = 0;
  /// Seconds from Submit until the query's machine completed (queueing
  /// + execution). Note this is scheduler-internal completion: futures
  /// of a batch are all fulfilled when the batch retires, so a caller's
  /// future.get() can return later than total_seconds suggests (eager
  /// per-query delivery is a ROADMAP item).
  double total_seconds = 0;
  /// True when the query joined a running scan mid-flight.
  bool joined_midflight = false;
};

/// \brief Routes a stream of BoundQuerys to per-store shared-scan
/// pipelines with streaming batch admission.
class QueryScheduler {
 public:
  explicit QueryScheduler(SchedulerOptions options);

  /// \brief Drains and joins every pipeline (Shutdown()).
  ~QueryScheduler();

  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  /// \brief Enqueues a query on its store's pipeline (created on first
  /// use) and returns a future for its result. Fails fast with
  /// ResourceExhausted when the store's pending queue is full, with
  /// InvalidArgument for a query without a store, and with
  /// FailedPrecondition after Shutdown(). Per-query execution problems
  /// are NOT Submit errors; they arrive as the future's item status.
  ///
  /// Pipelines (queue + thread) live until Shutdown(): one per distinct
  /// ColumnStore ever submitted, keyed by store pointer. A process that
  /// churns through many short-lived stores should use one scheduler
  /// per working set (idle-pipeline reaping is a ROADMAP item).
  Result<std::future<SchedulerItem>> Submit(BoundQuery query);

  /// \brief Stops accepting queries, drains every pending and running
  /// batch (all outstanding futures complete), and joins the pipeline
  /// threads. Idempotent; called by the destructor.
  void Shutdown();

  /// \brief Snapshot of the behaviour counters.
  SchedulerStats stats() const;

 private:
  using Clock = std::chrono::steady_clock;

  /// One not-yet-admitted query with its delivery promise.
  struct Pending {
    BoundQuery query;
    std::promise<SchedulerItem> promise;
    Clock::time_point enqueued;
    /// Already counted in join_fallbacks (the stat is per refused
    /// query, not per chunk boundary that re-refuses it).
    bool join_refusal_counted = false;
  };

  /// One query admitted into a running executor (same index space as
  /// BatchExecutor::TakeItems).
  struct Admitted {
    std::promise<SchedulerItem> promise;
    Clock::time_point enqueued;
    Clock::time_point admitted;
    bool joined_midflight = false;
  };

  /// Per-store pipeline: bounded pending queue + driver thread.
  struct Pipeline {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Pending> pending;
    bool shutdown = false;
    std::thread thread;
  };

  void PipelineLoop(Pipeline* pipeline);
  /// Pops pending queries into a full-or-flushed launch batch. Returns
  /// false when the pipeline should exit (shutdown, queue drained).
  bool GatherLaunchBatch(Pipeline* pipeline, std::vector<BoundQuery>* queries,
                         std::vector<Admitted>* admitted);
  /// Runs one executor to completion, admitting joins between chunks.
  void RunBatch(Pipeline* pipeline, std::vector<BoundQuery> queries,
                std::vector<Admitted> admitted);
  /// Admits pending queries into the running scan while policy allows.
  void TryJoins(Pipeline* pipeline, BatchExecutor* executor,
                int64_t num_blocks, std::vector<Admitted>* admitted);

  /// Lock-free counters (incremented under assorted mutexes; atomics
  /// keep stats() safe without a lock-order relationship to them).
  struct Counters {
    std::atomic<int64_t> submitted{0};
    std::atomic<int64_t> rejected{0};
    std::atomic<int64_t> completed{0};
    std::atomic<int64_t> batches_launched{0};
    std::atomic<int64_t> timeout_flushes{0};
    std::atomic<int64_t> joined_midflight{0};
    std::atomic<int64_t> join_fallbacks{0};
    std::atomic<int64_t> pipelines{0};
  };

  SchedulerOptions options_;

  std::mutex mu_;           // guards pipelines_ map and shutdown_
  std::mutex shutdown_mu_;  // serializes Shutdown callers end to end
  std::map<const ColumnStore*, std::unique_ptr<Pipeline>> pipelines_;
  bool shutdown_ = false;
  Counters counters_;
};

}  // namespace fastmatch

#endif  // FASTMATCH_SERVICE_QUERY_SCHEDULER_H_
