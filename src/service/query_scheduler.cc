#include "service/query_scheduler.h"

#include <utility>

#include "util/logging.h"

namespace fastmatch {

namespace {

double ToSeconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

}  // namespace

QueryScheduler::QueryScheduler(SchedulerOptions options)
    : options_(std::move(options)) {
  FASTMATCH_CHECK(options_.max_batch_queries >= 1)
      << "max_batch_queries must be >= 1";
  FASTMATCH_CHECK(options_.max_pending_per_store >= 1)
      << "max_pending_per_store must be >= 1";
  FASTMATCH_CHECK(options_.max_queue_wait_seconds >= 0)
      << "max_queue_wait_seconds must be >= 0";
  FASTMATCH_CHECK(options_.min_join_suffix_fraction >= 0 &&
                  options_.min_join_suffix_fraction <= 1)
      << "min_join_suffix_fraction must be in [0, 1]";
}

QueryScheduler::~QueryScheduler() { Shutdown(); }

Result<std::future<SchedulerItem>> QueryScheduler::Submit(BoundQuery query) {
  if (query.store == nullptr) {
    return Status::InvalidArgument("query has no store");
  }
  Pipeline* pipeline = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return Status::FailedPrecondition("scheduler is shut down");
    }
    std::unique_ptr<Pipeline>& slot = pipelines_[query.store.get()];
    if (slot == nullptr) {
      slot = std::make_unique<Pipeline>();
      slot->thread =
          std::thread(&QueryScheduler::PipelineLoop, this, slot.get());
      counters_.pipelines.fetch_add(1, std::memory_order_relaxed);
    }
    pipeline = slot.get();
  }

  std::future<SchedulerItem> future;
  {
    std::lock_guard<std::mutex> lock(pipeline->mu);
    // Re-check under the pipeline lock: a Shutdown() racing with this
    // Submit may have already let the driver thread exit, and a query
    // enqueued after that would never be answered.
    if (pipeline->shutdown) {
      return Status::FailedPrecondition("scheduler is shut down");
    }
    if (static_cast<int>(pipeline->pending.size()) >=
        options_.max_pending_per_store) {
      counters_.rejected.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "store pipeline is saturated (max_pending_per_store); retry "
          "later");
    }
    Pending pend;
    pend.query = std::move(query);
    pend.enqueued = Clock::now();
    future = pend.promise.get_future();
    pipeline->pending.push_back(std::move(pend));
    counters_.submitted.fetch_add(1, std::memory_order_relaxed);
  }
  pipeline->cv.notify_all();
  return future;
}

bool QueryScheduler::GatherLaunchBatch(Pipeline* pipeline,
                                       std::vector<BoundQuery>* queries,
                                       std::vector<Admitted>* admitted) {
  std::unique_lock<std::mutex> lock(pipeline->mu);
  pipeline->cv.wait(
      lock, [&] { return !pipeline->pending.empty() || pipeline->shutdown; });
  if (pipeline->pending.empty()) {
    // Shutdown with nothing left to drain. A deadline alone never gets
    // here: the batch timer only starts once a query is pending, so an
    // empty flush cannot launch (or crash) an empty batch.
    return false;
  }

  // Batch-boundary policy: wait for a full batch, but never keep the
  // oldest arrival waiting past max_queue_wait_seconds; shutdown drains
  // immediately.
  const auto deadline =
      pipeline->pending.front().enqueued +
      std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(options_.max_queue_wait_seconds));
  pipeline->cv.wait_until(lock, deadline, [&] {
    return static_cast<int>(pipeline->pending.size()) >=
               options_.max_batch_queries ||
           pipeline->shutdown;
  });
  if (static_cast<int>(pipeline->pending.size()) <
          options_.max_batch_queries &&
      !pipeline->shutdown) {
    counters_.timeout_flushes.fetch_add(1, std::memory_order_relaxed);
  }

  const Clock::time_point now = Clock::now();
  while (!pipeline->pending.empty() &&
         static_cast<int>(queries->size()) < options_.max_batch_queries) {
    Pending pend = std::move(pipeline->pending.front());
    pipeline->pending.pop_front();
    queries->push_back(std::move(pend.query));
    Admitted a;
    a.promise = std::move(pend.promise);
    a.enqueued = pend.enqueued;
    a.admitted = now;
    admitted->push_back(std::move(a));
  }
  counters_.batches_launched.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void QueryScheduler::TryJoins(Pipeline* pipeline, BatchExecutor* executor,
                              int64_t num_blocks,
                              std::vector<Admitted>* admitted) {
  for (;;) {
    Pending pend;
    {
      std::lock_guard<std::mutex> lock(pipeline->mu);
      if (pipeline->pending.empty() ||
          executor->num_active() >= options_.max_batch_queries) {
        return;
      }
      const double suffix_fraction =
          1.0 - static_cast<double>(executor->consumed_blocks()) /
                    static_cast<double>(num_blocks);
      if (suffix_fraction < options_.min_join_suffix_fraction ||
          executor->consumed_blocks() == num_blocks) {
        // Too little scan left for a statistically useful join: leave
        // the query queued; it launches in a fresh batch when this one
        // ends. Counted once per query, not per chunk that re-refuses.
        Pending& front = pipeline->pending.front();
        if (!front.join_refusal_counted) {
          front.join_refusal_counted = true;
          counters_.join_fallbacks.fetch_add(1, std::memory_order_relaxed);
        }
        return;
      }
      pend = std::move(pipeline->pending.front());
      pipeline->pending.pop_front();
    }
    // Join (template binding, machine Begin) runs outside the pipeline
    // lock so Submit callers are never blocked on it; this thread is
    // the executor's sole driver, so no other synchronization applies.
    const int64_t bound_before = executor->stats().joined_queries;
    Result<size_t> joined = executor->Join(pend.query);
    if (!joined.ok()) {
      // Defensive (the suffix check above normally fires first): the
      // executor refused the join; requeue for a fresh batch.
      std::lock_guard<std::mutex> lock(pipeline->mu);
      if (!pend.join_refusal_counted) {
        pend.join_refusal_counted = true;
        counters_.join_fallbacks.fetch_add(1, std::memory_order_relaxed);
      }
      pipeline->pending.push_front(std::move(pend));
      return;
    }
    FASTMATCH_CHECK_EQ(*joined, admitted->size());
    // A join whose per-query binding failed still occupies an item slot
    // but never entered the scan: report it as a plain (failed) query,
    // keeping joined_midflight consistent with the executor's stat.
    const bool bound = executor->stats().joined_queries > bound_before;
    Admitted a;
    a.promise = std::move(pend.promise);
    a.enqueued = pend.enqueued;
    a.admitted = Clock::now();
    a.joined_midflight = bound;
    admitted->push_back(std::move(a));
    if (bound) {
      counters_.joined_midflight.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void QueryScheduler::RunBatch(Pipeline* pipeline,
                              std::vector<BoundQuery> queries,
                              std::vector<Admitted> admitted) {
  const int64_t num_blocks = queries.front().store->num_blocks();
  Result<std::unique_ptr<BatchExecutor>> create =
      BatchExecutor::Create(queries, options_.batch);
  if (!create.ok()) {
    // Structural failure (e.g. empty store): every query of the batch
    // learns the same status through its future.
    counters_.completed.fetch_add(static_cast<int64_t>(admitted.size()),
                                  std::memory_order_relaxed);
    for (Admitted& a : admitted) {
      SchedulerItem item;
      item.status = create.status();
      item.queue_seconds = ToSeconds(a.admitted - a.enqueued);
      item.total_seconds = ToSeconds(Clock::now() - a.enqueued);
      a.promise.set_value(std::move(item));
    }
    return;
  }
  std::unique_ptr<BatchExecutor> executor = std::move(*create);

  const Clock::time_point batch_start = Clock::now();
  executor->Start();
  for (;;) {
    // Joins land at chunk boundaries; checking before the finished test
    // also lets a late arrival revive an executor whose own queries all
    // completed while scan suffix remains.
    if (options_.allow_joins) {
      TryJoins(pipeline, executor.get(), num_blocks, &admitted);
    }
    if (executor->finished()) break;
    executor->Step();
  }

  std::vector<BatchItem> items = executor->TakeItems();
  FASTMATCH_CHECK_EQ(items.size(), admitted.size());
  // Count completions before fulfilling any promise so a caller woken by
  // future.get() never observes a stats() snapshot missing its query.
  counters_.completed.fetch_add(static_cast<int64_t>(items.size()),
                                std::memory_order_relaxed);
  for (size_t i = 0; i < items.size(); ++i) {
    Admitted& a = admitted[i];
    SchedulerItem item;
    item.status = std::move(items[i].status);
    item.match = std::move(items[i].match);
    item.joined_midflight = a.joined_midflight;
    item.queue_seconds = ToSeconds(a.admitted - a.enqueued);
    // Per-item completion instant: the executor stamps wall_seconds from
    // batch start, so batch_start + wall_seconds is when the query
    // actually finished (promises are all fulfilled later, at batch
    // end — using "now" would overstate early finishers' latency).
    const Clock::time_point completion =
        batch_start + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double>(items[i].wall_seconds));
    item.total_seconds = ToSeconds(completion - a.enqueued);
    a.promise.set_value(std::move(item));
  }
}

void QueryScheduler::PipelineLoop(Pipeline* pipeline) {
  for (;;) {
    std::vector<BoundQuery> queries;
    std::vector<Admitted> admitted;
    if (!GatherLaunchBatch(pipeline, &queries, &admitted)) return;
    RunBatch(pipeline, std::move(queries), std::move(admitted));
  }
}

void QueryScheduler::Shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  std::vector<Pipeline*> pipelines;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;  // no new pipelines after this
    for (auto& [store, pipeline] : pipelines_) {
      pipelines.push_back(pipeline.get());
    }
  }
  for (Pipeline* pipeline : pipelines) {
    {
      std::lock_guard<std::mutex> lock(pipeline->mu);
      pipeline->shutdown = true;
    }
    pipeline->cv.notify_all();
  }
  for (Pipeline* pipeline : pipelines) {
    if (pipeline->thread.joinable()) pipeline->thread.join();
  }
}

SchedulerStats QueryScheduler::stats() const {
  SchedulerStats s;
  s.submitted = counters_.submitted.load(std::memory_order_relaxed);
  s.rejected = counters_.rejected.load(std::memory_order_relaxed);
  s.completed = counters_.completed.load(std::memory_order_relaxed);
  s.batches_launched =
      counters_.batches_launched.load(std::memory_order_relaxed);
  s.timeout_flushes = counters_.timeout_flushes.load(std::memory_order_relaxed);
  s.joined_midflight =
      counters_.joined_midflight.load(std::memory_order_relaxed);
  s.join_fallbacks = counters_.join_fallbacks.load(std::memory_order_relaxed);
  s.pipelines = counters_.pipelines.load(std::memory_order_relaxed);
  return s;
}

}  // namespace fastmatch
