#include "service/query_scheduler.h"

#include <algorithm>
#include <utility>

#include "engine/sharded_batch_executor.h"
#include "service/stage1_revalidator.h"
#include "util/logging.h"

namespace fastmatch {

namespace {

double ToSeconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

std::chrono::steady_clock::duration FromSeconds(double seconds) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(seconds));
}

std::unique_ptr<Stage1Cache> MakeStage1Cache(const SchedulerOptions& options) {
  if (!options.stage1_cache) return nullptr;
  Stage1CacheOptions cache_options;
  cache_options.capacity = options.stage1_cache_capacity;
  cache_options.ttl_seconds = options.stage1_cache_ttl_seconds;
  return std::make_unique<Stage1Cache>(cache_options);
}

}  // namespace

QueryScheduler::QueryScheduler(SchedulerOptions options)
    : options_(std::move(options)),
      pool_(options_.pool != nullptr ? options_.pool
                                     : &SharedWorkerPool::Process()),
      stage1_cache_(MakeStage1Cache(options_)) {
  FASTMATCH_CHECK(options_.max_batch_queries >= 1)
      << "max_batch_queries must be >= 1";
  FASTMATCH_CHECK(options_.max_pending_per_store >= 1)
      << "max_pending_per_store must be >= 1";
  FASTMATCH_CHECK(options_.max_queue_wait_seconds >= 0)
      << "max_queue_wait_seconds must be >= 0";
  FASTMATCH_CHECK(options_.min_join_suffix_fraction >= 0 &&
                  options_.min_join_suffix_fraction <= 1)
      << "min_join_suffix_fraction must be in [0, 1]";
  FASTMATCH_CHECK(options_.batch.num_threads >= 1)
      << "batch.num_threads (the shared-pool quota) must be >= 1";
  if (options_.idle_pipeline_timeout_seconds > 0) {
    reaper_ = std::thread(&QueryScheduler::ReaperLoop, this);
  }
}

QueryScheduler::~QueryScheduler() { Shutdown(); }

Result<QueryHandle> QueryScheduler::Submit(BoundQuery query,
                                           SubmitOptions submit) {
  if (query.store == nullptr) {
    return Status::InvalidArgument("query has no store");
  }
  if (query.partitions != nullptr &&
      query.partitions->source().get() != query.store.get()) {
    return Status::InvalidArgument(
        "query's partition set was not split from its store");
  }
  // Partitioned queries route by the partition SET's identity: they can
  // only batch with queries over the same set, and the janitor's
  // invalidation of a reaped pipeline's cache entries matches this same
  // id.
  const uint64_t store_id = query.partitions != nullptr
                                ? query.partitions->id()
                                : query.store->id();
  for (;;) {
    // A shared_ptr copy, not a raw pointer: between releasing mu_ and
    // locking pipeline->mu the janitor may reap this entry, and the
    // object must stay alive for the retiring re-check below.
    std::shared_ptr<Pipeline> pipeline;
    {
      MutexLock lock(&mu_);
      if (shutdown_) {
        return Status::FailedPrecondition("scheduler is shut down");
      }
      std::shared_ptr<Pipeline>& slot = pipelines_[store_id];
      if (slot == nullptr) {
        slot = std::make_shared<Pipeline>();
        MutexLock slot_lock(&slot->mu);
        slot->last_active = Clock::now();
        slot->thread =
            std::thread(&QueryScheduler::PipelineLoop, this, slot.get());
        counters_.pipelines.fetch_add(1, std::memory_order_relaxed);
      }
      pipeline = slot;
    }

    std::future<SchedulerItem> future;
    std::shared_ptr<CancelToken> cancel;
    std::shared_ptr<ProgressChannel> progress;
    {
      MutexLock lock(&pipeline->mu);
      if (pipeline->retiring) {
        // The janitor claimed this pipeline between the map lookup and
        // here (it is already out of the map, its driver is exiting).
        // Retry: the next lookup creates a fresh pipeline — the reap is
        // invisible to callers.
        continue;
      }
      // Re-check under the pipeline lock: a Shutdown() racing with this
      // Submit may have already let the driver thread exit, and a query
      // enqueued after that would never be answered.
      if (pipeline->shutdown) {
        return Status::FailedPrecondition("scheduler is shut down");
      }
      if (static_cast<int>(pipeline->pending.size()) >=
          options_.max_pending_per_store) {
        counters_.rejected.fetch_add(1, std::memory_order_relaxed);
        return Status::ResourceExhausted(
            "store pipeline is saturated (max_pending_per_store); retry "
            "later");
      }
      Pending pend;
      pend.query = std::move(query);
      // The doorbell rings the pipeline's cv so a Cancel() on a queued
      // query is shed immediately instead of at the next flush
      // deadline; the weak_ptr keeps the ring safe after the pipeline
      // is reaped (handles outlive pipelines).
      pend.cancel = std::make_shared<CancelToken>(
          [wp = std::weak_ptr<Pipeline>(pipeline)] {
            if (std::shared_ptr<Pipeline> p = wp.lock()) p->cv.NotifyAll();
          });
      pend.enqueued = Clock::now();
      pend.deadline = submit.deadline_seconds > 0
                          ? pend.enqueued + FromSeconds(submit.deadline_seconds)
                          : Clock::time_point::max();
      pend.budget_seconds = submit.budget_seconds;
      if (submit.track_progress) {
        pend.progress = std::make_shared<ProgressChannel>();
        progress = pend.progress;
      }
      pend.on_progress = submit.on_progress;
      cancel = pend.cancel;
      future = pend.promise.get_future();
      pipeline->pending.push_back(std::move(pend));
      counters_.submitted.fetch_add(1, std::memory_order_relaxed);
    }
    pipeline->cv.NotifyAll();
    QueryHandle handle;
    handle.cancel_ = std::move(cancel);
    handle.future_ = std::move(future);
    // The channel is shared with the Admitted entry: handle polls never
    // touch scheduler state and stay valid after the pipeline is gone.
    handle.progress_ = std::move(progress);
    return handle;
  }
}

void QueryScheduler::Resolve(std::promise<SchedulerItem>* promise,
                             SchedulerItem item) {
  switch (item.status.code()) {
    case StatusCode::kDeadlineExceeded:
      counters_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kCancelled:
      counters_.cancelled.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kUnavailable:
      counters_.unavailable.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      break;
  }
  // Count the completion before fulfilling the promise so a caller
  // woken by the future never observes a stats() snapshot missing its
  // query.
  counters_.completed.fetch_add(1, std::memory_order_relaxed);
  promise->set_value(std::move(item));
}

void QueryScheduler::ShedLocked(Pipeline* pipeline, std::vector<Shed>* shed) {
  const Clock::time_point now = Clock::now();
  for (auto it = pipeline->pending.begin(); it != pipeline->pending.end();) {
    if (it->cancel->cancelled()) {
      shed->emplace_back(std::move(*it),
                         Status::Cancelled("cancelled while queued"));
      it = pipeline->pending.erase(it);
    } else if (now >= it->deadline) {
      shed->emplace_back(
          std::move(*it),
          Status::DeadlineExceeded("deadline passed while queued"));
      it = pipeline->pending.erase(it);
    } else {
      ++it;
    }
  }
}

void QueryScheduler::FulfillShed(std::vector<Shed> shed) {
  const Clock::time_point now = Clock::now();
  for (Shed& s : shed) {
    SchedulerItem item;
    item.status = std::move(s.second);
    item.queue_seconds = ToSeconds(now - s.first.enqueued);
    item.total_seconds = item.queue_seconds;
    Resolve(&s.first.promise, std::move(item));
  }
}

bool QueryScheduler::HasCancelledLocked(Pipeline* pipeline) const {
  for (const Pending& pend : pipeline->pending) {
    if (pend.cancel->cancelled()) return true;
  }
  return false;
}

void QueryScheduler::ShedPending(Pipeline* pipeline) {
  std::vector<Shed> shed;
  {
    MutexLock lock(&pipeline->mu);
    ShedLocked(pipeline, &shed);
  }
  FulfillShed(std::move(shed));
}

bool QueryScheduler::GatherLaunchBatch(Pipeline* pipeline,
                                       std::vector<BoundQuery>* queries,
                                       std::vector<Admitted>* admitted) {
  // Each iteration holds the lock for one decision round; shed queries
  // collected in the round are fulfilled after the scope ends (promises
  // always resolve outside the lock — a woken waiter may re-enter the
  // scheduler), and any round that sheds or is woken early simply
  // restarts, re-evaluating the queue from scratch.
  for (;;) {
    std::vector<Shed> shed;
    bool launch = false;
    bool drained = false;
    {
      MutexLock lock(&pipeline->mu);
      while (pipeline->pending.empty() && !pipeline->shutdown &&
             !pipeline->retiring) {
        pipeline->cv.Wait(&pipeline->mu);
      }
      ShedLocked(pipeline, &shed);
      if (shed.empty() && !pipeline->pending.empty()) {
        // Batch-boundary policy: wait for a full batch, but never keep
        // the oldest arrival waiting past max_queue_wait_seconds, wake
        // at the earliest queued deadline so expired queries are shed
        // on time, and drain immediately on shutdown.
        const Clock::time_point flush =
            pipeline->pending.front().enqueued +
            FromSeconds(options_.max_queue_wait_seconds);
        Clock::time_point wake = flush;
        for (const Pending& pend : pipeline->pending) {
          wake = std::min(wake, pend.deadline);
        }
        // Wait until the wake time unless something actionable happens
        // first: a new arrival (ends the wait so `wake` is recomputed —
        // a late Submit can carry a deadline earlier than every current
        // one), a full batch, a drain signal, or a cancelled queued
        // query (the cancel doorbell notifies the cv precisely so this
        // predicate re-runs and the shed below happens immediately, not
        // at the flush deadline).
        const size_t size_at_wait = pipeline->pending.size();
        while (!(pipeline->pending.size() != size_at_wait ||
                 static_cast<int>(pipeline->pending.size()) >=
                     options_.max_batch_queries ||
                 pipeline->shutdown || pipeline->retiring ||
                 HasCancelledLocked(pipeline))) {
          if (pipeline->cv.WaitUntil(&pipeline->mu, wake) ==
              std::cv_status::timeout) {
            break;
          }
        }
        ShedLocked(pipeline, &shed);
        if (shed.empty() && !pipeline->pending.empty()) {
          const bool full = static_cast<int>(pipeline->pending.size()) >=
                            options_.max_batch_queries;
          const bool draining = pipeline->shutdown || pipeline->retiring;
          // Launch on a full batch, a drain, or the flush deadline; a
          // wake before all three (new arrival, or a deadline/cancel
          // that shed nothing of ours) restarts the round to keep
          // filling the batch.
          if (full || draining || Clock::now() >= flush) {
            if (!full && !draining) {
              counters_.timeout_flushes.fetch_add(1,
                                                  std::memory_order_relaxed);
            }
            const Clock::time_point now = Clock::now();
            while (!pipeline->pending.empty() &&
                   static_cast<int>(queries->size()) <
                       options_.max_batch_queries) {
              Pending pend = std::move(pipeline->pending.front());
              pipeline->pending.pop_front();
              if (pend.join_refused) {
                // The fallback the earlier refusal predicted actually
                // happened: the query launches in a fresh batch.
                counters_.join_fallbacks.fetch_add(1,
                                                   std::memory_order_relaxed);
              }
              queries->push_back(std::move(pend.query));
              Admitted a;
              a.promise = std::move(pend.promise);
              a.cancel = std::move(pend.cancel);
              a.enqueued = pend.enqueued;
              a.admitted = now;
              if (pend.budget_seconds > 0) {
                a.budget_deadline = now + FromSeconds(pend.budget_seconds);
              }
              a.progress = std::move(pend.progress);
              a.on_progress = std::move(pend.on_progress);
              admitted->push_back(std::move(a));
            }
            pipeline->busy = true;
            pipeline->last_active = now;
            counters_.batches_launched.fetch_add(1, std::memory_order_relaxed);
            launch = true;
          }
        }
      }
      if (!launch && shed.empty() && pipeline->pending.empty() &&
          (pipeline->shutdown || pipeline->retiring)) {
        // Exit on drain/retire with nothing left. A deadline alone
        // never launches: the batch timer only starts once a query is
        // pending, so an empty flush cannot launch an empty batch.
        drained = true;
      }
    }
    FulfillShed(std::move(shed));
    if (launch) return true;
    if (drained) return false;
  }
}

void QueryScheduler::FulfillAdmitted(Admitted* a, BatchItem item,
                                     Clock::time_point batch_start,
                                     bool eager) {
  SchedulerItem out;
  out.status = std::move(item.status);
  out.match = std::move(item.match);
  out.joined_midflight = a->joined_midflight;
  out.queue_seconds = ToSeconds(a->admitted - a->enqueued);
  // Per-item completion instant: the executor stamps wall_seconds from
  // batch start, so batch_start + wall_seconds is when the query's
  // machine actually finished (with retire-time delivery, promises are
  // fulfilled later — using "now" would overstate early finishers'
  // latency).
  const Clock::time_point completion =
      batch_start + FromSeconds(item.wall_seconds);
  out.total_seconds = ToSeconds(completion - a->enqueued);
  a->fulfilled = true;
  if (eager) {
    counters_.eager_delivered.fetch_add(1, std::memory_order_relaxed);
  }
  Resolve(&a->promise, std::move(out));
}

void QueryScheduler::AttachWarmStage1(BoundQuery* query) {
  if (stage1_cache_ == nullptr || IsWarm(*query)) return;
  if (query->partitions != nullptr) {
    // Per-partition warm set, all-or-nothing: each partition's share of
    // the stage-1 demand is proportional to its row count (rounded up,
    // so the shares sum to at least the full demand) — a partial set
    // would leave the merged prior short and the machine would re-run
    // stage 1 anyway. Misses here count per lookup, like every other
    // consult event. All geometry comes from ONE set pin — live
    // num_rows() reads could straddle an append and compute shares
    // against a different relation than the lookups validate against.
    // A generation-stale partition entry is a plain miss (no
    // per-partition revalidation fan-out; only the whole-store path
    // drift-tests), so every attached snapshot is exactly at its
    // partition's pinned generation.
    const PartitionedPin ppin = query->partitions->Pin();
    const int64_t total_rows = ppin.num_rows;
    if (total_rows <= 0) return;
    std::vector<std::shared_ptr<const Stage1Snapshot>> warm(ppin.parts.size());
    for (size_t p = 0; p < ppin.parts.size(); ++p) {
      const StorePin& part_pin = ppin.parts[p];
      const int64_t min_rows =
          (query->params.stage1_samples * part_pin.num_rows + total_rows - 1) /
          total_rows;
      Stage1LookupResult found = stage1_cache_->Lookup(
          ppin.id, part_pin.store_id, query->z_attr, query->x_attrs, min_rows,
          part_pin.generation);
      if (found.outcome != Stage1Outcome::kHit) return;
      warm[p] = std::move(found.snapshot);
    }
    query->stage1_warm_parts = std::move(warm);
    return;
  }
  // A hit must cover the query's full stage-1 demand (the cache treats
  // smaller entries as misses) AND be valid at the pinned generation.
  const StorePin pin = query->store->Pin();
  Stage1LookupResult found = stage1_cache_->Lookup(
      query->store->id(), kWholeStorePartition, query->z_attr, query->x_attrs,
      query->params.stage1_samples, pin.generation);
  if (found.outcome == Stage1Outcome::kRevalidate) {
    // Generation-stale prior: drift-test it synchronously (a small
    // fresh draw — cheap next to the full stage-1 re-pay it may save).
    // STABLE promotes the cache entry and serves the prior at the
    // pinned generation; DRIFTING evicts it and the query runs cold. A
    // revalidation that itself fails (e.g. the pinned generation
    // vanished) is treated as a miss — never served unexamined.
    Result<RevalidationReport> report =
        RevalidateStage1(query->store, query->z_attr, query->x_attrs,
                         *found.snapshot, pin.generation);
    if (!report.ok()) return;
    if (report->verdict == RevalidationVerdict::kStable) {
      // The promotion may lose to a racing publish/eviction — the
      // verdict still holds for OUR snapshot at OUR pin, so it is
      // served either way; only the cache bookkeeping is best-effort.
      stage1_cache_->Promote(query->store->id(), kWholeStorePartition,
                             query->z_attr, query->x_attrs,
                             found.entry_generation, pin.generation);
      query->stage1_warm = std::move(found.snapshot);
      query->stage1_warm_generation = pin.generation;
    } else {
      stage1_cache_->EvictDrifted(query->store->id(), kWholeStorePartition,
                                  query->z_attr, query->x_attrs,
                                  found.entry_generation);
    }
    return;
  }
  if (found.outcome == Stage1Outcome::kHit) {
    query->stage1_warm = std::move(found.snapshot);
    query->stage1_warm_generation = pin.generation;
  }
}

void QueryScheduler::EvictCancelled(BatchExecutor* executor,
                                    std::vector<Admitted>* admitted) {
  for (size_t i = 0; i < admitted->size(); ++i) {
    Admitted& a = (*admitted)[i];
    if (a.fulfilled || a.evict_attempted || a.cancel == nullptr ||
        !a.cancel->cancelled()) {
      continue;
    }
    a.evict_attempted = true;
    const Status evicted = executor->Evict(i);
    if (evicted.ok()) {
      counters_.evicted.fetch_add(1, std::memory_order_relaxed);
      // The executor reported the Cancelled item through the completion
      // callback (eager mode) or will return it from TakeItems (retire
      // mode); delivery rides the normal paths either way.
    }
    // !ok means the query completed before the cancel landed: the
    // result exists and is delivered normally — a cancel never turns a
    // finished result into a Cancelled future.
  }
}

void QueryScheduler::EvictBudgetExpired(BatchExecutor* executor,
                                        std::vector<Admitted>* admitted) {
  const Clock::time_point now = Clock::now();
  for (size_t i = 0; i < admitted->size(); ++i) {
    Admitted& a = (*admitted)[i];
    if (a.fulfilled || a.evict_attempted || a.budget_evict_attempted ||
        now < a.budget_deadline) {
      continue;
    }
    a.budget_evict_attempted = true;
    const Status harvested = executor->EvictWithResult(i);
    if (harvested.ok()) {
      // The harvested best-effort item (status OK, match.best_effort)
      // rides the normal delivery paths: the completion callback in
      // eager mode, TakeItems at retire. Terminal accounting lands in
      // budget_evicted ONLY — the future resolves OK, so Resolve()
      // counts it as a plain completion, never deadline_exceeded or
      // cancelled.
      counters_.budget_evicted.fetch_add(1, std::memory_order_relaxed);
    }
    // !ok means the machine completed in this same chunk: the EXACT
    // result exists and is delivered normally — a budget expiry never
    // downgrades a finished result to a partial.
  }
}

void QueryScheduler::TryJoins(Pipeline* pipeline, BatchExecutor* executor,
                              int64_t num_blocks,
                              std::vector<Admitted>* admitted) {
  std::vector<Shed> shed;
  for (;;) {
    Pending pend;
    bool cache_lifted_refusal = false;
    {
      MutexLock lock(&pipeline->mu);
      // Never join a query that is already cancelled or past deadline.
      ShedLocked(pipeline, &shed);
      if (pipeline->pending.empty() ||
          executor->num_active() >= options_.max_batch_queries) {
        break;
      }
      // Serve stage 1 from the cache when it can: a warm join draws
      // only stage-2/3 samples from the suffix. The snapshot stays
      // attached if the join is refused, so a fresh-batch fallback
      // launches warm too. A front query that missed is re-looked-up at
      // each chunk boundary ON PURPOSE — the running batch's own
      // stage-1 completions publish mid-flight, upgrading a cold
      // waiter to warm — so stage1_lookups counts consult EVENTS, not
      // queries. (The cache's mutex is a leaf lock: Lookup never takes
      // pipeline or scheduler locks.)
      Pending& front = pipeline->pending.front();
      AttachWarmStage1(&front.query);
      const double suffix_fraction =
          1.0 - static_cast<double>(executor->consumed_blocks()) /
                    static_cast<double>(num_blocks);
      const bool below_policy =
          suffix_fraction < options_.min_join_suffix_fraction;
      if (executor->consumed_blocks() == num_blocks ||
          (below_policy && !IsWarm(front.query))) {
        // Too little scan left for a statistically useful join — the
        // suffix must still cover stage 1 for a cold query. Leave the
        // query queued; a later chunk may still join it (e.g. after a
        // publish turns it warm), else it launches in a fresh batch
        // when this one ends — join_fallbacks counts at that launch.
        front.join_refused = true;
        break;
      }
      cache_lifted_refusal = below_policy;
      pend = std::move(pipeline->pending.front());
      pipeline->pending.pop_front();
    }
    // Join (template binding, machine Begin) runs outside the pipeline
    // lock so Submit callers are never blocked on it; this thread is
    // the executor's sole driver, so no other synchronization applies.
    const int64_t bound_before = executor->stats().joined_queries;
    Result<size_t> joined = executor->Join(pend.query);
    if (!joined.ok()) {
      // Defensive (the suffix check above normally fires first): the
      // executor refused the join; requeue for a fresh batch.
      MutexLock lock(&pipeline->mu);
      pend.join_refused = true;
      pipeline->pending.push_front(std::move(pend));
      break;
    }
    FASTMATCH_CHECK_EQ(*joined, admitted->size());
    // A join whose per-query binding failed still occupies an item slot
    // but never entered the scan: report it as a plain (failed) query,
    // keeping joined_midflight consistent with the executor's stat.
    const bool bound = executor->stats().joined_queries > bound_before;
    Admitted a;
    a.promise = std::move(pend.promise);
    a.cancel = std::move(pend.cancel);
    a.enqueued = pend.enqueued;
    a.admitted = Clock::now();
    a.joined_midflight = bound;
    if (pend.budget_seconds > 0) {
      a.budget_deadline = a.admitted + FromSeconds(pend.budget_seconds);
    }
    a.progress = std::move(pend.progress);
    a.on_progress = std::move(pend.on_progress);
    admitted->push_back(std::move(a));
    if (bound) {
      counters_.joined_midflight.fetch_add(1, std::memory_order_relaxed);
      if (cache_lifted_refusal) {
        counters_.joins_enabled_by_cache.fetch_add(1,
                                                   std::memory_order_relaxed);
      }
    }
  }
  FulfillShed(std::move(shed));
}

void QueryScheduler::RunBatch(Pipeline* pipeline,
                              std::vector<BoundQuery> queries,
                              std::vector<Admitted> admitted) {
  // Admission-time cache consult: queries whose template is warm skip
  // stage 1 from the first chunk. (Queries requeued after a refused
  // join may already carry their snapshot; AttachWarmStage1 leaves
  // those untouched.)
  for (BoundQuery& query : queries) AttachWarmStage1(&query);
  BatchOptions batch_options = options_.batch;
  batch_options.shared_pool = pool_;
  batch_options.stage1_sink = stage1_cache_.get();
  // Warm-batch scan resume: when EVERY query of a fresh unpartitioned
  // batch is warm from the SAME snapshot, the batch continues the
  // donor's scan instead of starting fresh — the donor's prefix blocks
  // are pre-consumed and never re-read, and the disjointness makes each
  // warm prior exact (no overlapping downgrade). One shared snapshot
  // implies one template, so the resume's exhaustion flags are valid.
  // The resume runs AT THE DONOR'S GENERATION (the executor re-pins
  // it), so its geometry check uses the donor's pin, not the live
  // store's — and a PROMOTED snapshot (warm generation ahead of its
  // scan state) skips the resume: continuing the donor's scan would pin
  // the old generation while the prior is being served at the new one,
  // and the executor's stale-warm guard would rightly drop it.
  if (!batch_options.resume.has_value() &&
      queries.front().partitions == nullptr &&
      queries.front().stage1_warm != nullptr) {
    const std::shared_ptr<const Stage1Snapshot>& snap =
        queries.front().stage1_warm;
    const uint64_t warm_gen = queries.front().stage1_warm_generation;
    bool all_same = true;
    for (const BoundQuery& query : queries) {
      if (query.stage1_warm != snap ||
          query.stage1_warm_generation != warm_gen) {
        all_same = false;
        break;
      }
    }
    if (all_same && (warm_gen == 0 || warm_gen == snap->scan.generation)) {
      const std::shared_ptr<const ColumnStore>& store = queries.front().store;
      const Result<StorePin> donor =
          snap->scan.generation != 0
              ? store->PinAt(snap->scan.generation)
              : Result<StorePin>(store->Pin());
      if (donor.ok() && snap->scan.consumed.size() == donor->num_blocks &&
          snap->scan.consumed.Popcount() < donor->num_blocks) {
        batch_options.resume = snap->scan;
        counters_.warm_batches_resumed.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  Result<std::unique_ptr<BatchExecutor>> create = [&] {
    if (queries.front().partitions == nullptr) {
      return BatchExecutor::Create(queries, batch_options);
    }
    counters_.sharded_batches.fetch_add(1, std::memory_order_relaxed);
    Result<std::unique_ptr<ShardedBatchExecutor>> sharded =
        ShardedBatchExecutor::Create(queries, queries.front().partitions,
                                     batch_options);
    if (!sharded.ok()) {
      return Result<std::unique_ptr<BatchExecutor>>(sharded.status());
    }
    return Result<std::unique_ptr<BatchExecutor>>(
        std::unique_ptr<BatchExecutor>(std::move(*sharded)));
  }();
  if (!create.ok()) {
    // Structural failure (e.g. empty store): every query of the batch
    // learns the same status through its future.
    for (Admitted& a : admitted) {
      SchedulerItem item;
      item.status = create.status();
      item.queue_seconds = ToSeconds(a.admitted - a.enqueued);
      item.total_seconds = ToSeconds(Clock::now() - a.enqueued);
      a.fulfilled = true;
      Resolve(&a.promise, std::move(item));
    }
    return;
  }
  std::unique_ptr<BatchExecutor> executor = std::move(*create);
  // Join policy measures the scan the batch will ACTUALLY run — the
  // executor's pinned geometry — not the live store, whose block count
  // an append can move mid-batch.
  const int64_t num_blocks = executor->pin().num_blocks;

  const Clock::time_point batch_start = Clock::now();
  // Eager delivery: machine completions surface here, synchronously on
  // this thread from inside Start/Step/Join/Evict. Buffered rather than
  // fulfilled inline because a Join()'s instant completion (binding
  // failure) fires before its Admitted entry exists.
  std::vector<std::pair<size_t, BatchItem>> ready;
  if (options_.eager_delivery) {
    executor->SetCompletionCallback([&ready](size_t index, BatchItem item) {
      ready.emplace_back(index, std::move(item));
    });
  }
  // Anytime streaming: the executor emits per-query snapshots at every
  // chunk boundary; route each to its query's consumers. Runs on THIS
  // thread inside Step/EvictWithResult with no pipeline lock held (the
  // promise-resolution discipline applies to progress publication too);
  // `admitted` only grows, and only between Steps, so the index map is
  // stable whenever the callback fires. A query that opted out costs
  // one null check.
  executor->SetProgressCallback(
      [&admitted](size_t index, const ProgressUpdate& update) {
        if (index >= admitted.size()) return;
        Admitted& a = admitted[index];
        if (a.progress != nullptr) a.progress->Publish(update);
        if (a.on_progress) a.on_progress(update);
      });
  const auto deliver_ready = [&] {
    for (auto& [index, item] : ready) {
      FASTMATCH_CHECK(index < admitted.size());
      if (!admitted[index].fulfilled) {
        FulfillAdmitted(&admitted[index], std::move(item), batch_start,
                        /*eager=*/true);
      }
    }
    ready.clear();
  };

  executor->Start();
  deliver_ready();
  for (;;) {
    // Chunk-boundary lifecycle pass, in dependency order: shed the
    // queue (a cancelled/expired query must not be joined), evict
    // cancelled running queries (frees executor slots), then admit
    // joins — checking before the finished test also lets a late
    // arrival revive an executor whose own queries all completed while
    // scan suffix remains.
    ShedPending(pipeline);
    EvictCancelled(executor.get(), &admitted);
    EvictBudgetExpired(executor.get(), &admitted);
    if (options_.allow_joins) {
      TryJoins(pipeline, executor.get(), num_blocks, &admitted);
    }
    deliver_ready();
    if (executor->finished()) break;
    executor->Step();
    deliver_ready();
  }

  counters_.batch_blocks_read.fetch_add(executor->stats().blocks_read,
                                        std::memory_order_relaxed);
  std::vector<BatchItem> items = executor->TakeItems();
  FASTMATCH_CHECK_EQ(items.size(), admitted.size());
  for (size_t i = 0; i < items.size(); ++i) {
    // Retire-time delivery: everything eager delivery (or eviction)
    // did not already resolve — all items, when eager_delivery is off.
    if (admitted[i].fulfilled) continue;
    FulfillAdmitted(&admitted[i], std::move(items[i]), batch_start,
                    /*eager=*/false);
  }
}

void QueryScheduler::PipelineLoop(Pipeline* pipeline) {
  for (;;) {
    std::vector<BoundQuery> queries;
    std::vector<Admitted> admitted;
    if (!GatherLaunchBatch(pipeline, &queries, &admitted)) break;
    RunBatch(pipeline, std::move(queries), std::move(admitted));
    {
      MutexLock lock(&pipeline->mu);
      pipeline->busy = false;
      pipeline->last_active = Clock::now();
    }
  }
  // Exit sweep. By the locking protocol nothing can be pending here
  // (the drain gathers until empty, and shutdown/retiring block new
  // enqueues first), but the exactly-once contract must survive
  // refactors: anything still unanswered terminates Unavailable rather
  // than leaking a never-ready future.
  std::vector<Shed> orphans;
  {
    MutexLock lock(&pipeline->mu);
    while (!pipeline->pending.empty()) {
      orphans.emplace_back(
          std::move(pipeline->pending.front()),
          Status::Unavailable("scheduler shut down during drain"));
      pipeline->pending.pop_front();
    }
  }
  FulfillShed(std::move(orphans));
}

void QueryScheduler::ReaperLoop() {
  const Clock::duration timeout =
      FromSeconds(options_.idle_pipeline_timeout_seconds);
  const Clock::duration period = FromSeconds(
      std::max(options_.idle_pipeline_timeout_seconds / 4.0, 1e-3));
  MutexLock lock(&mu_);
  for (;;) {
    const Clock::time_point tick = Clock::now() + period;
    while (!shutdown_) {
      if (reaper_cv_.WaitUntil(&mu_, tick) == std::cv_status::timeout) break;
    }
    if (shutdown_) return;
    const Clock::time_point now = Clock::now();
    std::vector<std::shared_ptr<Pipeline>> dead;
    std::vector<uint64_t> dead_store_ids;
    for (auto it = pipelines_.begin(); it != pipelines_.end();) {
      Pipeline* pipeline = it->second.get();
      bool reap = false;
      {
        MutexLock plock(&pipeline->mu);
        if (!pipeline->busy && pipeline->pending.empty() &&
            !pipeline->shutdown &&
            now - pipeline->last_active >= timeout) {
          // Claim it under both locks: once `retiring` is visible no
          // Submit can enqueue here — Submit re-checks under
          // pipeline->mu and retries against the map, where this entry
          // is gone by then.
          pipeline->retiring = true;
          reap = true;
        }
      }
      if (reap) {
        dead.push_back(std::move(it->second));
        dead_store_ids.push_back(it->first);
        it = pipelines_.erase(it);
      } else {
        ++it;
      }
    }
    if (dead.empty()) continue;
    // Join outside mu_ so Submits to other stores are never blocked on
    // a dying driver.
    lock.Unlock();
    for (std::shared_ptr<Pipeline>& pipeline : dead) {
      pipeline->cv.NotifyAll();
      pipeline->thread.join();
      counters_.pipelines_reaped.fetch_add(1, std::memory_order_relaxed);
    }
    dead.clear();
    if (stage1_cache_ != nullptr) {
      // The reap is the scheduler's "store id disappeared" signal:
      // drop the store's warm entries so the cache cannot accumulate
      // counts for stores nothing will query again. (ColumnStore ids
      // are never reused, so this is hygiene, not aliasing defense; a
      // store that merely idled re-warms on its next cold batch.)
      for (uint64_t store_id : dead_store_ids) {
        stage1_cache_->InvalidateStore(store_id);
      }
    }
    lock.Lock();
  }
}

void QueryScheduler::Shutdown() {
  MutexLock shutdown_lock(&shutdown_mu_);
  {
    MutexLock lock(&mu_);
    shutdown_ = true;  // no new pipelines after this; janitor exits
  }
  reaper_cv_.NotifyAll();
  if (reaper_.joinable()) reaper_.join();
  // The janitor is gone: the pipeline map is stable from here on.
  std::vector<std::shared_ptr<Pipeline>> pipelines;
  {
    MutexLock lock(&mu_);
    for (auto& [store_id, pipeline] : pipelines_) {
      pipelines.push_back(pipeline);
    }
  }
  for (const std::shared_ptr<Pipeline>& pipeline : pipelines) {
    {
      MutexLock lock(&pipeline->mu);
      pipeline->shutdown = true;
    }
    pipeline->cv.NotifyAll();
  }
  for (const std::shared_ptr<Pipeline>& pipeline : pipelines) {
    if (pipeline->thread.joinable()) pipeline->thread.join();
  }
}

SchedulerStats QueryScheduler::stats() const {
  SchedulerStats s;
  s.submitted = counters_.submitted.load(std::memory_order_relaxed);
  s.rejected = counters_.rejected.load(std::memory_order_relaxed);
  s.completed = counters_.completed.load(std::memory_order_relaxed);
  s.batches_launched =
      counters_.batches_launched.load(std::memory_order_relaxed);
  s.timeout_flushes = counters_.timeout_flushes.load(std::memory_order_relaxed);
  s.joined_midflight =
      counters_.joined_midflight.load(std::memory_order_relaxed);
  s.join_fallbacks = counters_.join_fallbacks.load(std::memory_order_relaxed);
  s.pipelines = counters_.pipelines.load(std::memory_order_relaxed);
  s.eager_delivered =
      counters_.eager_delivered.load(std::memory_order_relaxed);
  s.deadline_exceeded =
      counters_.deadline_exceeded.load(std::memory_order_relaxed);
  s.cancelled = counters_.cancelled.load(std::memory_order_relaxed);
  s.evicted = counters_.evicted.load(std::memory_order_relaxed);
  s.budget_evicted = counters_.budget_evicted.load(std::memory_order_relaxed);
  s.unavailable = counters_.unavailable.load(std::memory_order_relaxed);
  s.pipelines_reaped =
      counters_.pipelines_reaped.load(std::memory_order_relaxed);
  s.joins_enabled_by_cache =
      counters_.joins_enabled_by_cache.load(std::memory_order_relaxed);
  s.sharded_batches = counters_.sharded_batches.load(std::memory_order_relaxed);
  s.warm_batches_resumed =
      counters_.warm_batches_resumed.load(std::memory_order_relaxed);
  s.batch_blocks_read =
      counters_.batch_blocks_read.load(std::memory_order_relaxed);
  if (stage1_cache_ != nullptr) {
    const Stage1CacheStats cache = stage1_cache_->stats();
    s.stage1_lookups = cache.lookups;
    s.stage1_hits = cache.hits;
    s.stage1_misses = cache.misses;
    s.stage1_inserts = cache.inserts;
    s.stage1_stale_evictions = cache.stale_evictions;
    s.stage1_store_invalidations = cache.store_invalidations;
    s.stage1_revalidations = cache.revalidations;
    s.stage1_promotions = cache.promotions;
    s.stage1_drift_evictions = cache.drift_evictions;
  }
  return s;
}

}  // namespace fastmatch
