#include "service/stage1_revalidator.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "engine/io_manager.h"
#include "stats/hypergeometric.h"
#include "util/random.h"

namespace fastmatch {

Result<RevalidationReport> RevalidateStage1(
    std::shared_ptr<const ColumnStore> store, int z_attr,
    const std::vector<int>& x_attrs, const Stage1Snapshot& prior,
    uint64_t generation, const RevalidatorOptions& options) {
  if (store == nullptr) {
    return Status::InvalidArgument("RevalidateStage1: store is null");
  }
  if (prior.rows_drawn <= 0) {
    return Status::InvalidArgument(
        "RevalidateStage1: prior has no rows (nothing to test against)");
  }
  if (options.sample_rows <= 0) {
    return Status::InvalidArgument(
        "RevalidateStage1: sample_rows must be positive");
  }
  if (options.delta <= 0 || options.delta >= 1) {
    return Status::InvalidArgument(
        "RevalidateStage1: delta must lie in (0, 1)");
  }
  FASTMATCH_ASSIGN_OR_RETURN(StoreView view, store->PinViewAt(generation));
  FASTMATCH_ASSIGN_OR_RETURN(
      auto io, IoManager::Create(store, z_attr,
                                 std::vector<int>(x_attrs), std::move(view)));
  const StorePin& pin = io->pin();
  if (io->num_candidates() != prior.counts.num_candidates()) {
    return Status::InvalidArgument(
        "RevalidateStage1: prior candidate count does not match the store's "
        "z-attribute cardinality");
  }
  const int64_t total_rows = pin.num_rows;
  if (total_rows <= 0) {
    return Status::FailedPrecondition(
        "RevalidateStage1: pinned generation is empty");
  }

  // Draw distinct uniform blocks until the row budget is met. Blocks of
  // a pre-shuffled store are themselves uniform row samples (§4.1), so
  // a uniform block subset is a uniform without-replacement row sample.
  std::vector<BlockId> blocks(static_cast<size_t>(pin.num_blocks));
  std::iota(blocks.begin(), blocks.end(), BlockId{0});
  Rng rng(options.seed);
  rng.Shuffle(&blocks);

  CountMatrix fresh(io->num_candidates(), io->num_groups());
  RevalidationReport report;
  for (BlockId b : blocks) {
    if (report.fresh_rows >= options.sample_rows) break;
    report.fresh_rows += io->ReadBlock(b, &fresh, nullptr);
    ++report.blocks_read;
  }

  // Per-candidate two-sided hypergeometric test of the prior's marginal
  // against the fresh draw. N = pinned rows, K_c = the prior's implied
  // candidate total at this generation, s = fresh sample size.
  const int num_candidates = fresh.num_candidates();
  const int64_t s = report.fresh_rows;
  const double bonferroni =
      options.delta / static_cast<double>(std::max(num_candidates, 1));
  for (int c = 0; c < num_candidates; ++c) {
    const double p_c = static_cast<double>(prior.counts.RowTotal(c)) /
                       static_cast<double>(prior.rows_drawn);
    const int64_t k = std::clamp<int64_t>(
        std::llround(p_c * static_cast<double>(total_rows)), 0, total_rows);
    const int64_t f = fresh.RowTotal(c);
    const double lower = HypergeomCdf(f, total_rows, k, s);
    const double upper =
        f > 0 ? 1.0 - HypergeomCdf(f - 1, total_rows, k, s) : 1.0;
    const double p_value = std::min(1.0, 2.0 * std::min(lower, upper));
    if (p_value < report.min_p_value) {
      report.min_p_value = p_value;
      report.worst_candidate = c;
    }
    if (p_value < bonferroni) {
      report.verdict = RevalidationVerdict::kDrifting;
    }
  }
  return report;
}

}  // namespace fastmatch
