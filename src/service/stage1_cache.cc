#include "service/stage1_cache.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace fastmatch {

Stage1Cache::Stage1Cache(Stage1CacheOptions options)
    : options_(options) {
  FASTMATCH_CHECK(options_.capacity >= 1)
      << "Stage1Cache capacity must be >= 1";
}

void Stage1Cache::Publish(uint64_t store_id, uint64_t partition_id,
                          int z_attr, const std::vector<int>& x_attrs,
                          std::shared_ptr<const Stage1Snapshot> snapshot) {
  if (snapshot == nullptr || snapshot->rows_drawn <= 0) return;
  MutexLock lock(&mu_);
  ++stats_.publishes;
  Key key{store_id, partition_id, z_attr, x_attrs};
  auto it = entries_.find(key);
  const Clock::time_point now = Clock::now();
  if (it != entries_.end()) {
    // The store is immutable, so both samples are valid forever; keep
    // the one that covers more demands. A rows_drawn tie is broken in
    // favor of a snapshot with a TRUE exhaustion flag over a resident
    // without one (the flag certifies a candidate's exact counts to a
    // disjoint consumer — strictly more information at equal coverage;
    // an all-false vector certifies nothing); otherwise the resident
    // wins, nothing to gain from the swap. Only a replacement counts
    // as an insert.
    const auto certifies = [](const Stage1Snapshot& s) {
      return std::any_of(s.scan.exhausted.begin(), s.scan.exhausted.end(),
                         [](bool flag) { return flag; });
    };
    const Entry& resident = it->second;
    const bool replace =
        snapshot->rows_drawn > resident.snapshot->rows_drawn ||
        (snapshot->rows_drawn == resident.snapshot->rows_drawn &&
         certifies(*snapshot) && !certifies(*resident.snapshot));
    if (replace) {
      it->second.snapshot = std::move(snapshot);
      ++stats_.inserts;
    }
    // The stamps renew even when the incoming data was dropped — ON
    // PURPOSE: the snapshot itself never goes stale (immutable store),
    // so TTL and LRU measure how long since the template last saw
    // traffic, and any publish proves the template is live.
    it->second.published = now;
    it->second.last_used = tick_++;
    return;
  }
  if (static_cast<int>(entries_.size()) >= options_.capacity) {
    auto lru = entries_.begin();
    for (auto cand = entries_.begin(); cand != entries_.end(); ++cand) {
      if (cand->second.last_used < lru->second.last_used) lru = cand;
    }
    entries_.erase(lru);
    ++stats_.capacity_evictions;
  }
  Entry entry;
  entry.snapshot = std::move(snapshot);
  entry.published = now;
  entry.last_used = tick_++;
  entries_.emplace(std::move(key), std::move(entry));
  ++stats_.inserts;
}

std::shared_ptr<const Stage1Snapshot> Stage1Cache::Lookup(
    uint64_t store_id, uint64_t partition_id, int z_attr,
    const std::vector<int>& x_attrs, int64_t min_rows) {
  MutexLock lock(&mu_);
  ++stats_.lookups;
  auto it = entries_.find(Key{store_id, partition_id, z_attr, x_attrs});
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  if (options_.ttl_seconds > 0 &&
      std::chrono::duration<double>(Clock::now() - it->second.published)
              .count() > options_.ttl_seconds) {
    entries_.erase(it);
    ++stats_.stale_evictions;
    ++stats_.misses;
    return nullptr;
  }
  if (it->second.snapshot->rows_drawn < min_rows) {
    // Too small for this demand; keep it (a smaller future demand may
    // still be served, and a bigger publish will replace it).
    ++stats_.misses;
    return nullptr;
  }
  it->second.last_used = tick_++;
  ++stats_.hits;
  return it->second.snapshot;
}

void Stage1Cache::InvalidateStore(uint64_t store_id) {
  MutexLock lock(&mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (std::get<0>(it->first) == store_id) {
      it = entries_.erase(it);
      ++stats_.store_invalidations;
    } else {
      ++it;
    }
  }
}

int64_t Stage1Cache::size() const {
  MutexLock lock(&mu_);
  return static_cast<int64_t>(entries_.size());
}

Stage1CacheStats Stage1Cache::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

}  // namespace fastmatch
