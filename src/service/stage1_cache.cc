#include "service/stage1_cache.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace fastmatch {

Stage1Cache::Stage1Cache(Stage1CacheOptions options)
    : options_(options) {
  FASTMATCH_CHECK(options_.capacity >= 1)
      << "Stage1Cache capacity must be >= 1";
}

void Stage1Cache::Publish(uint64_t store_id, uint64_t partition_id,
                          int z_attr, const std::vector<int>& x_attrs,
                          std::shared_ptr<const Stage1Snapshot> snapshot) {
  if (snapshot == nullptr || snapshot->rows_drawn <= 0) return;
  MutexLock lock(&mu_);
  ++stats_.publishes;
  Key key{store_id, partition_id, z_attr, x_attrs};
  auto it = entries_.find(key);
  const Clock::time_point now = Clock::now();
  const uint64_t incoming_gen = snapshot->scan.generation;
  if (it != entries_.end()) {
    // A snapshot from a NEWER generation than the resident replaces it
    // unconditionally: the resident describes a strict prefix of the
    // newer relation and would otherwise need a drift revalidation
    // before every future serve, while the incoming one is already
    // valid at the frontier. A snapshot from an OLDER generation than
    // the resident never replaces it (its rows are a subset of what the
    // resident already covers). At EQUAL generation both samples are
    // valid forever against that fixed prefix, so keep the one that
    // covers more demands: bigger rows_drawn wins; a rows_drawn tie is
    // broken in favor of a snapshot with a TRUE exhaustion flag over a
    // resident without one (the flag certifies a candidate's exact
    // counts to a disjoint consumer — strictly more information at
    // equal coverage; an all-false vector certifies nothing); otherwise
    // the resident wins, nothing to gain from the swap. Only a
    // replacement counts as an insert.
    const auto certifies = [](const Stage1Snapshot& s) {
      return std::any_of(s.scan.exhausted.begin(), s.scan.exhausted.end(),
                         [](bool flag) { return flag; });
    };
    const Entry& resident = it->second;
    const bool replace =
        incoming_gen > resident.generation ||
        (incoming_gen == resident.generation &&
         (snapshot->rows_drawn > resident.snapshot->rows_drawn ||
          (snapshot->rows_drawn == resident.snapshot->rows_drawn &&
           certifies(*snapshot) && !certifies(*resident.snapshot))));
    if (replace) {
      it->second.snapshot = std::move(snapshot);
      it->second.generation = incoming_gen;
      ++stats_.inserts;
    }
    // The stamps renew even when the incoming data was dropped — ON
    // PURPOSE: a publish at ANY generation proves the template is live,
    // and TTL/LRU measure how long since the template last saw traffic
    // (memory hygiene, not validity — generations own validity).
    it->second.published = now;
    it->second.last_used = tick_++;
    return;
  }
  if (static_cast<int>(entries_.size()) >= options_.capacity) {
    auto lru = entries_.begin();
    for (auto cand = entries_.begin(); cand != entries_.end(); ++cand) {
      if (cand->second.last_used < lru->second.last_used) lru = cand;
    }
    entries_.erase(lru);
    ++stats_.capacity_evictions;
  }
  Entry entry;
  entry.snapshot = std::move(snapshot);
  entry.published = now;
  entry.last_used = tick_++;
  entry.generation = incoming_gen;
  entries_.emplace(std::move(key), std::move(entry));
  ++stats_.inserts;
}

Stage1LookupResult Stage1Cache::Lookup(uint64_t store_id,
                                       uint64_t partition_id, int z_attr,
                                       const std::vector<int>& x_attrs,
                                       int64_t min_rows,
                                       uint64_t generation) {
  MutexLock lock(&mu_);
  ++stats_.lookups;
  Stage1LookupResult result;
  auto it = entries_.find(Key{store_id, partition_id, z_attr, x_attrs});
  if (it == entries_.end()) {
    ++stats_.misses;
    return result;
  }
  if (options_.ttl_seconds > 0 &&
      std::chrono::duration<double>(Clock::now() - it->second.published)
              .count() > options_.ttl_seconds) {
    entries_.erase(it);
    ++stats_.stale_evictions;
    ++stats_.misses;
    return result;
  }
  if (it->second.snapshot->rows_drawn < min_rows) {
    // Too small for this demand; keep it (a smaller future demand may
    // still be served, and a bigger publish will replace it).
    ++stats_.misses;
    return result;
  }
  if (generation != 0 && it->second.generation > generation) {
    // The entry samples rows beyond the querier's pinned prefix — its
    // counts are not a uniform sample of the pinned relation, and no
    // revalidation can shrink a sample. Keep the entry (it serves
    // current-generation queries); this querier runs cold.
    ++stats_.misses;
    return result;
  }
  if (generation != 0 && it->second.generation < generation) {
    // Older-generation prior: hand it back for a drift test, but do
    // NOT tick the LRU — only a passing revalidation (Promote) or a
    // real hit earns the entry its recency.
    ++stats_.revalidations;
    result.outcome = Stage1Outcome::kRevalidate;
    result.snapshot = it->second.snapshot;
    result.entry_generation = it->second.generation;
    return result;
  }
  it->second.last_used = tick_++;
  ++stats_.hits;
  result.outcome = Stage1Outcome::kHit;
  result.snapshot = it->second.snapshot;
  result.entry_generation = it->second.generation;
  return result;
}

std::shared_ptr<const Stage1Snapshot> Stage1Cache::Lookup(
    uint64_t store_id, uint64_t partition_id, int z_attr,
    const std::vector<int>& x_attrs, int64_t min_rows) {
  // generation == 0 can only classify kHit or kMiss, so the snapshot
  // alone carries the whole answer.
  return Lookup(store_id, partition_id, z_attr, x_attrs, min_rows, 0)
      .snapshot;
}

bool Stage1Cache::Promote(uint64_t store_id, uint64_t partition_id,
                          int z_attr, const std::vector<int>& x_attrs,
                          uint64_t from_generation, uint64_t to_generation) {
  MutexLock lock(&mu_);
  auto it = entries_.find(Key{store_id, partition_id, z_attr, x_attrs});
  if (it == entries_.end() || it->second.generation != from_generation) {
    // A racing publish/eviction moved the entry out from under the
    // revalidator; its verdict no longer describes what's resident.
    return false;
  }
  // Only the validity horizon moves: published/last_used are left
  // as-is, so a promotion neither rescues an entry from TTL expiry nor
  // bumps it in the LRU order — the entry's data saw no new traffic.
  it->second.generation = to_generation;
  ++stats_.promotions;
  return true;
}

bool Stage1Cache::EvictDrifted(uint64_t store_id, uint64_t partition_id,
                               int z_attr, const std::vector<int>& x_attrs,
                               uint64_t generation) {
  MutexLock lock(&mu_);
  auto it = entries_.find(Key{store_id, partition_id, z_attr, x_attrs});
  if (it == entries_.end() || it->second.generation != generation) {
    // The drift verdict was about an entry that is no longer resident
    // (e.g. a newer-generation publish replaced it); leave the
    // newcomer alone.
    return false;
  }
  entries_.erase(it);
  ++stats_.drift_evictions;
  return true;
}

void Stage1Cache::InvalidateStore(uint64_t store_id) {
  MutexLock lock(&mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (std::get<0>(it->first) == store_id) {
      it = entries_.erase(it);
      ++stats_.store_invalidations;
    } else {
      ++it;
    }
  }
}

int64_t Stage1Cache::size() const {
  MutexLock lock(&mu_);
  return static_cast<int64_t>(entries_.size());
}

Stage1CacheStats Stage1Cache::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

}  // namespace fastmatch
