// Per-store stage-1 sample cache: the service tier's memory of stage-1
// work already paid for.
//
// HistSim's stage 1 draws a fixed number of uniform rows before any
// candidate targets exist, so the counts it produces are
// target-independent per (store, template): every future query over the
// same ColumnStore and (z_attr, x_attrs) grouping could reuse them —
// yet without a cache each batch re-pays the draw, and a mid-flight
// Join() must carve stage 1 out of the scan suffix. Stage1Cache closes
// that loop: BatchExecutors publish Stage1Snapshots as batches run
// (BatchOptions::stage1_sink), and the QueryScheduler consults the
// cache at admission time — a query whose template has a warm entry
// covering its stage-1 demand skips stage 1 entirely
// (BoundQuery::stage1_warm), and a join no longer needs the suffix to
// cover stage 1 (the min_join_suffix_fraction refusal is lifted when
// the cache serves it).
//
// Soundness is the pre-shuffled-store argument already used for suffix
// joins: a cached scan prefix is a uniform without-replacement sample
// of the relation, and the warm query's later stages draw their own
// fresh uniform samples — each phase's test statistics use only that
// phase's sample (the per-call fresh-counter rule), so serving stage 1
// from an earlier scan's prefix changes nothing the statistics rely
// on. See docs/PAPER_MAP.md ("stage-1 cache soundness").
//
// Keys are (store id, partition id, z_attr, x_attrs). The store id is
// ColumnStore::id() — the process-unique identity token, never the
// store pointer — so a freed store's recycled address can never alias a
// dead store's counts; for a sharded scan it is the PartitionedStore's
// id. The partition id is kWholeStorePartition for whole-store
// snapshots and the partition store's own ColumnStore::id() for a
// sharded scan's per-partition snapshots — a partition's snapshot
// samples only THAT partition's rows, so it must never serve another
// partition (or the whole store). InvalidateStore() matches the store
// id alone and therefore drops ALL partitions' entries of a partitioned
// store at once, which is what the scheduler's janitor needs when it
// reaps the pipeline keyed on that id. Entries never go stale data-wise
// (stores are immutable after load); the TTL and capacity knobs are
// memory hygiene, not correctness.

#ifndef FASTMATCH_SERVICE_STAGE1_CACHE_H_
#define FASTMATCH_SERVICE_STAGE1_CACHE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "engine/batch_executor.h"
#include "util/sync.h"

namespace fastmatch {

/// \brief Retention policy knobs.
struct Stage1CacheOptions {
  /// Maximum entries across all stores and templates; the
  /// least-recently-used entry is evicted past it. Must be >= 1.
  int capacity = 64;
  /// Entries unpublished-to for longer than this are evicted when next
  /// looked up ("stale"). <= 0 disables expiry.
  double ttl_seconds = 0;
};

/// \brief Monotonic counters (snapshot via Stage1Cache::stats()).
/// `lookups == hits + misses` always; a stale eviction or a too-small
/// entry counts as a miss.
struct Stage1CacheStats {
  int64_t lookups = 0;             // Lookup calls
  int64_t hits = 0;                // served a covering snapshot
  int64_t misses = 0;              // lookups - hits
  int64_t publishes = 0;           // Publish calls
  int64_t inserts = 0;             // publishes that created/replaced an entry
  int64_t stale_evictions = 0;     // TTL expiries (at lookup)
  int64_t capacity_evictions = 0;  // LRU evictions (at publish)
  int64_t store_invalidations = 0; // entries dropped by InvalidateStore
};

/// \brief Thread-safe cache of stage-1 snapshots keyed by
/// (store id, partition id, z_attr, x_attrs).
class Stage1Cache : public Stage1Sink {
 public:
  explicit Stage1Cache(Stage1CacheOptions options = {});

  /// \brief Stage1Sink hook: keeps the snapshot unless the existing
  /// entry's sample is at least as large (then only the freshness stamp
  /// is renewed — the bigger sample covers every demand the smaller one
  /// could). A same-size snapshot still replaces the resident when it
  /// carries a true exhaustion flag and the resident has none. Evicts
  /// the least-recently-used entry when over capacity.
  void Publish(uint64_t store_id, uint64_t partition_id, int z_attr,
               const std::vector<int>& x_attrs,
               std::shared_ptr<const Stage1Snapshot> snapshot) override
      FASTMATCH_EXCLUDES(mu_);

  /// \brief Returns the template's snapshot when one exists, is within
  /// TTL, and holds at least `min_rows` rows (a smaller sample would
  /// under-satisfy the querier's stage-1 demand); null otherwise. Pass
  /// kWholeStorePartition for an unpartitioned scan's entry; a
  /// partition's entry only ever answers its exact (store id, partition
  /// id) pair.
  std::shared_ptr<const Stage1Snapshot> Lookup(uint64_t store_id,
                                               uint64_t partition_id,
                                               int z_attr,
                                               const std::vector<int>& x_attrs,
                                               int64_t min_rows)
      FASTMATCH_EXCLUDES(mu_);

  /// \brief Drops every entry of one store (the store id disappeared:
  /// janitor reap, store teardown). Matches the store id only, so a
  /// partitioned store's entries vanish for every partition at once.
  void InvalidateStore(uint64_t store_id) FASTMATCH_EXCLUDES(mu_);

  /// \brief Live entries.
  int64_t size() const FASTMATCH_EXCLUDES(mu_);

  Stage1CacheStats stats() const FASTMATCH_EXCLUDES(mu_);

 private:
  using Clock = std::chrono::steady_clock;
  /// (store id, partition id, z_attr, x_attrs); the store id leads so
  /// InvalidateStore can match on it alone.
  using Key = std::tuple<uint64_t, uint64_t, int, std::vector<int>>;
  struct Entry {
    std::shared_ptr<const Stage1Snapshot> snapshot;
    Clock::time_point published;
    uint64_t last_used = 0;  // LRU tick
  };

  const Stage1CacheOptions options_;
  /// Leaf lock of the service tier: Lookup/Publish run under the
  /// scheduler's pipeline lock, so mu_ must never wrap a call back into
  /// scheduler code (see docs/ARCHITECTURE.md, lock hierarchy).
  mutable Mutex mu_;
  std::map<Key, Entry> entries_ FASTMATCH_GUARDED_BY(mu_);
  uint64_t tick_ FASTMATCH_GUARDED_BY(mu_) = 0;
  Stage1CacheStats stats_ FASTMATCH_GUARDED_BY(mu_);
};

}  // namespace fastmatch

#endif  // FASTMATCH_SERVICE_STAGE1_CACHE_H_
